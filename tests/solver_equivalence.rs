//! Integration tests: the three solvers must produce the same physics for
//! the same configuration — the verification the paper performed for every
//! parallel result ("all the numerical results have been verified to be
//! correct by comparing the new result to that of the sequential
//! implementation").

use lbm_ib::verify::{compare_states, verify_all_solvers};
use lbm_ib::{
    CubeSolver, OpenMpSolver, SequentialSolver, SheetConfig, SimulationConfig, TetherConfig,
};

fn base_config() -> SimulationConfig {
    let mut c = SimulationConfig::quick_test();
    c.body_force = [3e-6, 0.0, 0.0];
    c
}

#[test]
fn all_solvers_agree_on_quick_config() {
    let (omp, cube) = verify_all_solvers(base_config(), 10, 4);
    assert!(omp.within(1e-11), "OpenMP: {omp:?}");
    assert!(cube.within(1e-11), "cube: {cube:?}");
}

#[test]
fn agreement_across_thread_counts() {
    let cfg = base_config();
    let mut seq = SequentialSolver::new(cfg);
    seq.run(8);
    for threads in [1, 2, 3, 5, 8] {
        let mut omp = OpenMpSolver::new(cfg, threads);
        omp.run(8);
        let d = compare_states(&seq.state, &omp.state);
        assert!(d.within(1e-11), "OpenMP {threads} threads: {d:?}");

        let mut cube = CubeSolver::new(cfg, threads);
        cube.run(8);
        let d = compare_states(&seq.state, &cube.to_state());
        assert!(d.within(1e-11), "cube {threads} threads: {d:?}");
    }
}

#[test]
fn agreement_across_cube_edges() {
    let mut cfg = base_config();
    let mut seq = SequentialSolver::new(cfg);
    seq.run(8);
    for k in [2, 4, 8] {
        cfg.cube_k = k;
        let mut cube = CubeSolver::new(cfg, 4);
        cube.run(8);
        let d = compare_states(&seq.state, &cube.to_state());
        assert!(d.within(1e-11), "cube edge {k}: {d:?}");
    }
}

#[test]
fn agreement_with_tethered_sheet() {
    let mut cfg = base_config();
    cfg.sheet.tether = TetherConfig::CenterRegion {
        radius: 2.5,
        stiffness: 0.1,
    };
    let (omp, cube) = verify_all_solvers(cfg, 12, 3);
    assert!(omp.within(1e-11), "OpenMP: {omp:?}");
    assert!(cube.within(1e-11), "cube: {cube:?}");
}

#[test]
fn agreement_with_leading_edge_tether() {
    let mut cfg = base_config();
    cfg.sheet.tether = TetherConfig::LeadingEdge { stiffness: 0.2 };
    let (omp, cube) = verify_all_solvers(cfg, 10, 2);
    assert!(omp.within(1e-11), "OpenMP: {omp:?}");
    assert!(cube.within(1e-11), "cube: {cube:?}");
}

#[test]
fn agreement_across_delta_kernels() {
    for delta in [
        ib::DeltaKind::Hat2,
        ib::DeltaKind::Roma3,
        ib::DeltaKind::Peskin4,
        ib::DeltaKind::Peskin4Poly,
    ] {
        let mut cfg = base_config();
        cfg.delta = delta;
        let (omp, cube) = verify_all_solvers(cfg, 6, 3);
        assert!(omp.within(1e-11), "{delta:?} OpenMP: {omp:?}");
        assert!(cube.within(1e-11), "{delta:?} cube: {cube:?}");
    }
}

#[test]
fn agreement_on_rectangular_grid_and_sheet() {
    let mut cfg = base_config();
    cfg.nx = 40;
    cfg.ny = 12;
    cfg.nz = 20;
    cfg.sheet = SheetConfig {
        num_fibers: 6,
        nodes_per_fiber: 11,
        width: 3.0,
        height: 4.0,
        center: [12.0, 6.0, 10.0],
        k_bend: 1e-4,
        k_stretch: 1e-2,
        tether: TetherConfig::None,
    };
    let (omp, cube) = verify_all_solvers(cfg, 8, 4);
    assert!(omp.within(1e-11), "OpenMP: {omp:?}");
    assert!(cube.within(1e-11), "cube: {cube:?}");
}

#[test]
fn agreement_over_longer_horizon() {
    // Longer runs accumulate rounding differences from the parallel
    // scatter; they must stay at rounding level, not grow systematically.
    let (omp, cube) = verify_all_solvers(base_config(), 60, 4);
    assert!(omp.within(1e-9), "OpenMP after 60 steps: {omp:?}");
    assert!(cube.within(1e-9), "cube after 60 steps: {cube:?}");
}

#[test]
fn cube_policy_variants_agree() {
    let cfg = base_config();
    let mut seq = SequentialSolver::new(cfg);
    seq.run(8);
    for policy in [
        lbm::Policy::Block,
        lbm::Policy::Cyclic,
        lbm::Policy::BlockCyclic { block: 2 },
    ] {
        let mut cube = CubeSolver::new(cfg, 4);
        cube.policy = policy;
        cube.run(8);
        let d = compare_states(&seq.state, &cube.to_state());
        assert!(d.within(1e-11), "{policy:?}: {d:?}");
    }
}

#[test]
fn distributed_prototype_agrees_with_all_solvers() {
    // The distributed-memory prototype (paper future work) must agree with
    // the shared-memory solvers across rank counts.
    let cfg = base_config();
    let mut seq = SequentialSolver::new(cfg);
    seq.run(10);
    for ranks in [1, 2, 4, 6] {
        let mut dist = lbm_ib::DistributedSolver::new(cfg, ranks);
        dist.try_run(10).unwrap();
        let d = compare_states(&seq.state, &dist.to_state());
        assert!(d.within(1e-11), "{ranks} ranks: {d:?}");
    }
}

#[test]
fn distributed_agrees_with_tethered_sheet_under_moving_structure() {
    let mut cfg = base_config();
    cfg.sheet.tether = TetherConfig::LeadingEdge { stiffness: 0.15 };
    cfg.body_force = [5e-6, 0.0, 0.0];
    let mut seq = SequentialSolver::new(cfg);
    seq.run(30);
    let mut dist = lbm_ib::DistributedSolver::new(cfg, 4);
    dist.try_run(30).unwrap();
    let d = compare_states(&seq.state, &dist.to_state());
    assert!(d.within(1e-10), "{d:?}");
}

#[test]
fn more_threads_than_cubes_still_correct() {
    let mut cfg = base_config();
    cfg.nx = 8;
    cfg.ny = 8;
    cfg.nz = 8;
    cfg.cube_k = 4; // 8 cubes
    cfg.sheet = SheetConfig::square(4, 2.0, [4.0, 4.0, 4.0]);
    let mut seq = SequentialSolver::new(cfg);
    seq.run(5);
    let mut cube = CubeSolver::new(cfg, 16); // idle threads exist
    cube.run(5);
    let d = compare_states(&seq.state, &cube.to_state());
    assert!(d.within(1e-11), "{d:?}");
}
