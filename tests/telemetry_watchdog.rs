//! Integration tests for the metrics subsystem and the run-health
//! watchdog: telemetry must account for the run without perturbing it,
//! and the watchdog must turn silent numerical blow-ups into typed
//! errors through the `Solver` trait.

use lbm_ib::profiling::KernelId;
use lbm_ib::solver::build_solver;
use lbm_ib::verify::compare_states;
use lbm_ib::{
    CubeSolver, DistributedSolver, SequentialSolver, SheetConfig, SimState, SimulationConfig,
    SolverError, TetherConfig, WatchdogConfig,
};

fn cfg() -> SimulationConfig {
    let mut c = SimulationConfig::quick_test();
    c.body_force = [4e-6, 0.0, 0.0];
    c
}

#[test]
fn seq_kernel_totals_account_for_the_wall_time() {
    let mut s = SequentialSolver::new(cfg());
    s.telemetry_enabled = true;
    let report = s.run(20);
    let t = report.telemetry.expect("telemetry enabled");
    let busy: f64 = t.kernel_totals().iter().sum();
    let wall = report.wall.as_secs_f64();
    let share = busy / wall;
    // The nine kernels are the whole step loop; everything outside them
    // (loop control, step counter) is noise.
    assert!(
        share > 0.4 && share < 1.05,
        "kernel totals {busy:.6}s vs wall {wall:.6}s (share {share:.3})"
    );
    // Split plan: the fused slot must stay empty.
    assert_eq!(t.kernel_seconds(KernelId::FusedCollideStream), 0.0);
    assert!(t.kernel_seconds(KernelId::Collision) > 0.0);
}

#[test]
fn telemetry_does_not_perturb_physics() {
    // Sequential: bit-exact with telemetry on vs off.
    let mut off = SequentialSolver::new(cfg());
    off.run(15);
    let mut on = SequentialSolver::new(cfg());
    on.telemetry_enabled = true;
    on.run(15);
    assert_eq!(off.state.fluid.f, on.state.fluid.f);
    assert_eq!(off.state.sheet.pos, on.state.sheet.pos);

    // Cube: the atomic scatter reorders float sums between runs, so the
    // cross-run guarantee is rounding-level with or without telemetry.
    let mut off = CubeSolver::new(cfg(), 4);
    off.run(15);
    let mut on = CubeSolver::new(cfg(), 4);
    on.telemetry_enabled = true;
    on.run(15);
    let d = compare_states(&off.to_state(), &on.to_state());
    assert!(d.within(1e-11), "{d:?}");
}

#[test]
fn cube_telemetry_counts_three_barriers_per_step() {
    let threads = 4;
    let steps = 12;
    let mut s = CubeSolver::new(cfg(), threads);
    s.telemetry_enabled = true;
    let t = s.run(steps).telemetry.expect("telemetry enabled");
    assert_eq!(t.n_threads(), threads);
    // Algorithm 4: exactly three barrier crossings per thread per step.
    for (tid, th) in t.per_thread.iter().enumerate() {
        assert_eq!(th.barrier_waits, 3 * steps, "thread {tid}");
    }
    assert_eq!(t.barrier_waits(), 3 * steps * threads as u64);
    assert!(t.barrier_wait_share() >= 0.0 && t.barrier_wait_share() < 1.0);
    assert!(t.imbalance_ratio() >= 1.0);
}

#[test]
fn cube_ownership_covers_the_whole_problem() {
    let c = cfg();
    let mut s = CubeSolver::new(c, 3);
    s.telemetry_enabled = true;
    let t = s.run(2).telemetry.expect("telemetry enabled");
    let k = c.cube_k;
    let total_cubes = (c.nx / k) * (c.ny / k) * (c.nz / k);
    let owned: u64 = t.per_thread.iter().map(|th| th.cubes_owned).sum();
    assert_eq!(owned as usize, total_cubes);
    let fibers: u64 = t.per_thread.iter().map(|th| th.fibers_owned).sum();
    assert_eq!(fibers as usize, c.sheet.num_fibers);
}

#[test]
fn dist_telemetry_covers_every_rank_and_plane() {
    let c = cfg();
    let mut s = DistributedSolver::new(c, 3);
    s.telemetry_enabled = true;
    let t = s.try_run(4).unwrap().telemetry.expect("telemetry enabled");
    assert_eq!(t.n_threads(), 3);
    // Rank "cubes" are owned x-planes; together they tile the axis.
    let planes: u64 = t.per_thread.iter().map(|th| th.cubes_owned).sum();
    assert_eq!(planes as usize, c.nx);
    // The sheet is replicated: every rank owns every fiber.
    for th in &t.per_thread {
        assert_eq!(th.fibers_owned as usize, c.sheet.num_fibers);
    }
    assert!(t.busy_seconds() > 0.0);
}

#[test]
fn telemetry_merges_across_cli_style_chunks() {
    // The CLI accumulates chunked reports with RunReport::merge; the
    // merged telemetry must cover the full run.
    let threads = 2;
    let mut solver = build_solver("cube", SimState::new(cfg()), threads).unwrap();
    solver.set_telemetry(true);
    let mut report = lbm_ib::RunReport::default();
    for _ in 0..3 {
        report.merge(solver.run(5).unwrap());
    }
    assert_eq!(report.steps, 15);
    let t = report.telemetry.expect("merged telemetry");
    assert_eq!(t.steps, 15);
    assert_eq!(t.n_threads(), threads);
    assert_eq!(t.barrier_waits(), 3 * 15 * threads as u64);
    assert!(t.busy_seconds() > 0.0);
}

#[test]
fn telemetry_json_is_complete_and_balanced() {
    let mut s = CubeSolver::new(cfg(), 2);
    s.telemetry_enabled = true;
    let t = s.run(3).telemetry.expect("telemetry enabled");
    let json = t.to_json();
    assert_eq!(json.matches("\"kernel\":").count(), KernelId::COUNT);
    for key in [
        "\"solver\": \"cube\"",
        "\"imbalance_ratio\":",
        "\"barrier_wait_share\":",
        "\"threads\":",
        "\"cubes_owned\":",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    let open = json.matches('{').count();
    let close = json.matches('}').count();
    assert_eq!(open, close, "unbalanced braces");
    assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
}

#[test]
fn watchdog_reports_stiff_blowup_as_typed_error() {
    // Near the tau -> 0.5+ viscosity limit with absurd stiffness the
    // structure feedback loop diverges within a few hundred steps. The
    // watchdog must surface that as SolverError::Unstable — pre-watchdog
    // the same run silently filled the state with NaNs.
    let mut c = SimulationConfig::quick_test();
    c.tau = 0.51;
    c.body_force = [1e-5, 0.0, 0.0];
    c.sheet = SheetConfig {
        k_bend: 50.0,
        k_stretch: 500.0,
        tether: TetherConfig::None,
        ..SheetConfig::square(8, 4.0, [8.0, 8.0, 8.0])
    };
    c.watchdog = Some(WatchdogConfig { check_every: 8 });
    let mut solver = build_solver("seq", SimState::new(c), 1).unwrap();
    let mut seen = 0u64;
    let err = loop {
        match solver.run(100) {
            Ok(r) => {
                seen += r.steps;
                assert!(seen < 1000, "blow-up never detected");
            }
            Err(e) => break e,
        }
    };
    match err {
        SolverError::Unstable { step, ref reason } => {
            assert!(step > 0 && step <= 1000 + 100, "step {step}");
            assert!(!reason.is_empty());
        }
        other => panic!("expected Unstable, got {other:?}"),
    }
    // And the same config without a watchdog really does go non-finite —
    // the failure the watchdog exists to catch.
    let mut c2 = c;
    c2.watchdog = None;
    let mut raw = SequentialSolver::new(c2);
    raw.run(1000);
    assert!(raw.state.has_nan(), "control run should blow up");
}

#[test]
fn watchdog_is_transparent_on_healthy_runs() {
    let mut watched_cfg = cfg();
    watched_cfg.watchdog = Some(WatchdogConfig { check_every: 4 });
    let mut watched = build_solver("seq", SimState::new(watched_cfg), 1).unwrap();
    watched.run(13).unwrap();
    let mut plain = SequentialSolver::new(cfg());
    plain.run(13);
    // The chunked re-entry the watchdog induces is bit-exact.
    assert_eq!(
        compare_states(&watched.to_state(), &plain.state).worst(),
        0.0
    );
}
