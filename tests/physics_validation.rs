//! Integration tests: the coupled LBM-IB solvers against physics —
//! conservation laws, analytic channel flow, and the qualitative behaviour
//! of the immersed structure.

use lbm::analytic::Poiseuille;
use lbm_ib::diagnostics::diagnostics;
use lbm_ib::{SequentialSolver, SheetConfig, SimulationConfig, TetherConfig};

#[test]
fn mass_conserved_over_long_coupled_run() {
    let mut cfg = SimulationConfig::quick_test();
    cfg.body_force = [4e-6, 0.0, 0.0];
    let mut s = SequentialSolver::new(cfg);
    let m0 = s.state.fluid.total_mass();
    s.run(150);
    let m1 = s.state.fluid.total_mass();
    assert!(((m1 - m0) / m0).abs() < 1e-12, "mass drift {m0} -> {m1}");
    assert!(!s.state.has_nan());
}

#[test]
fn momentum_grows_by_body_force_between_walls_and_saturates() {
    // In the tunnel, the x momentum added by the body force drains into
    // the walls as the channel approaches steady state: kinetic energy
    // must rise and then flatten, never explode.
    let mut cfg = SimulationConfig::quick_test();
    cfg.body_force = [5e-6, 0.0, 0.0];
    let mut s = SequentialSolver::new(cfg);
    let mut ke_prev = 0.0;
    let mut increments = Vec::new();
    for _ in 0..6 {
        s.run(40);
        let ke = diagnostics(&s.state).kinetic_energy;
        increments.push(ke - ke_prev);
        ke_prev = ke;
    }
    assert!(increments[0] > 0.0, "flow must start");
    let last = *increments.last().unwrap();
    assert!(
        last < increments[1],
        "energy growth should decelerate toward steady state: {increments:?}"
    );
    assert!(diagnostics(&s.state).max_velocity < 0.1);
}

#[test]
fn coupled_solver_reaches_poiseuille_without_structure_influence() {
    // A sheet with zero stiffness exerts no force: the coupled solver must
    // reproduce plain Poiseuille channel flow between the y walls.
    let g = 1e-6;
    let mut cfg = SimulationConfig::quick_test();
    cfg.nx = 16;
    cfg.ny = 12;
    cfg.nz = 12;
    cfg.tau = 0.9;
    cfg.body_force = [g, 0.0, 0.0];
    cfg.sheet = SheetConfig {
        k_bend: 0.0,
        k_stretch: 0.0,
        ..SheetConfig::square(4, 2.0, [6.0, 6.0, 6.0])
    };
    let mut s = SequentialSolver::new(cfg);
    s.run(4000);
    let relax = cfg.relaxation();
    // The z walls also drag, so compare only the mid-z column profile
    // against the y-parabola with a loose tolerance (the exact solution in
    // a square duct is a double series; the parabola bounds the shape).
    let profile = Poiseuille {
        ny: cfg.ny,
        g,
        nu: relax.viscosity(),
    };
    let dims = cfg.dims();
    let mid_z = cfg.nz / 2;
    let mid_y = cfg.ny / 2;
    let center = s.state.fluid.ux[dims.idx(8, mid_y, mid_z)];
    assert!(
        center > 0.5 * profile.u_max(),
        "duct centre too slow: {center}"
    );
    // Monotone decrease from the centre row toward the wall.
    let mut prev = center;
    for y in (0..mid_y).rev() {
        let v = s.state.fluid.ux[dims.idx(8, y, mid_z)];
        assert!(v <= prev + 1e-12, "profile not monotone at y={y}");
        prev = v;
    }
    // No-slip wall rows are much slower than the centre.
    let wall = s.state.fluid.ux[dims.idx(8, 0, mid_z)];
    assert!(wall < 0.35 * center, "wall row {wall} vs centre {center}");
}

#[test]
fn stiff_sheet_obstructs_the_flow() {
    // Compared to a no-structure channel, a stiff tethered sheet blocking
    // the cross-section must reduce the developed flow rate.
    let mut base = SimulationConfig::quick_test();
    base.body_force = [5e-6, 0.0, 0.0];
    base.sheet = SheetConfig {
        k_bend: 0.0,
        k_stretch: 0.0,
        ..SheetConfig::square(8, 4.0, [8.0, 8.0, 8.0])
    };
    let mut free = SequentialSolver::new(base);
    free.run(250);

    let mut blocked_cfg = base;
    blocked_cfg.sheet = SheetConfig {
        k_bend: 1e-3,
        k_stretch: 5e-2,
        // Hold the sheet in place so it acts as an obstacle.
        tether: TetherConfig::CenterRegion {
            radius: 100.0,
            stiffness: 0.3,
        },
        ..SheetConfig::square(12, 10.0, [8.0, 8.0, 8.0])
    };
    let mut blocked = SequentialSolver::new(blocked_cfg);
    blocked.run(250);

    let flux = |s: &SequentialSolver| -> f64 { s.state.fluid.ux.iter().sum() };
    let f_free = flux(&free);
    let f_blocked = flux(&blocked);
    assert!(
        f_blocked < 0.9 * f_free,
        "obstacle should reduce flow: blocked {f_blocked} vs free {f_free}"
    );
}

#[test]
fn sheet_is_carried_and_deformed_by_the_flow() {
    let mut cfg = SimulationConfig::quick_test();
    cfg.nx = 32;
    cfg.body_force = [6e-6, 0.0, 0.0];
    cfg.sheet = SheetConfig {
        k_bend: 2e-4,
        k_stretch: 2e-2,
        ..SheetConfig::square(10, 5.0, [10.0, 8.0, 8.0])
    };
    let mut s = SequentialSolver::new(cfg);
    let x0 = s.state.sheet.centroid()[0];
    s.run(200);
    let x1 = s.state.sheet.centroid()[0];
    assert!(x1 > x0 + 0.01, "sheet advected: {x0} -> {x1}");
    // The channel profile is faster in the middle: the sheet must bow.
    let (lo, hi) = s.state.sheet.bounding_box();
    assert!(hi[0] - lo[0] > 1e-3, "sheet should bow in the shear flow");
    assert!(!s.state.has_nan());
}

#[test]
fn structure_force_on_fluid_balances_total_elastic_force() {
    // After kernel 4 the Eulerian force (minus the body force) must equal
    // the Lagrangian elastic force times the area element: the coupling is
    // conservative.
    let mut cfg = SimulationConfig::quick_test();
    cfg.body_force = [0.0; 3];
    let mut s = SequentialSolver::new(cfg);
    s.run(5);
    // Deform the sheet, recompute forces and spread them.
    for (i, p) in s.state.sheet.pos.iter_mut().enumerate() {
        p[0] += 0.02 * ((i % 7) as f64 - 3.0);
    }
    lbm_ib::kernels::compute_bending_force_in_fibers(&mut s.state);
    lbm_ib::kernels::compute_stretching_force_in_fibers(&mut s.state);
    lbm_ib::kernels::compute_elastic_force_in_fibers(&mut s.state);
    lbm_ib::kernels::spread_force_from_fibers_to_fluid(&mut s.state);
    let lag = s.state.sheet.total_elastic_force();
    let area = s.state.sheet.area_element();
    let eul = ib::spread::total_grid_force(&s.state.fluid);
    for a in 0..3 {
        assert!(
            (eul[a] - lag[a] * area).abs() < 1e-10,
            "axis {a}: grid {} vs structure {}",
            eul[a],
            lag[a] * area
        );
    }
}

#[test]
fn table1_scale_config_runs_stably() {
    // A scaled-down version of the paper's Table I input runs without NaN
    // and with bounded velocity.
    let mut cfg = SimulationConfig::table1();
    cfg.nx = 32;
    cfg.ny = 16;
    cfg.nz = 16;
    cfg.sheet = SheetConfig {
        tether: TetherConfig::CenterRegion {
            radius: 2.0,
            stiffness: 5e-2,
        },
        ..SheetConfig::square(13, 5.0, [8.0, 8.0, 8.0])
    };
    cfg.validate().unwrap();
    let mut s = SequentialSolver::new(cfg);
    let m0 = s.state.fluid.total_mass();
    s.run(100);
    let d = diagnostics(&s.state);
    d.check_stability(m0).unwrap();
}
