//! Integration tests: reproducibility guarantees and failure-path
//! behaviour (invalid configurations, NaN injection, instability
//! detection).

use lbm_ib::diagnostics::diagnostics;
use lbm_ib::verify::compare_states;
use lbm_ib::{
    CubeSolver, OpenMpSolver, SequentialSolver, SheetConfig, SimulationConfig, TetherConfig,
};

fn cfg() -> SimulationConfig {
    let mut c = SimulationConfig::quick_test();
    c.body_force = [4e-6, 0.0, 0.0];
    c
}

#[test]
fn sequential_solver_is_bitwise_deterministic() {
    let mut a = SequentialSolver::new(cfg());
    let mut b = SequentialSolver::new(cfg());
    a.run(30);
    b.run(30);
    assert_eq!(a.state.fluid.f, b.state.fluid.f);
    assert_eq!(a.state.sheet.pos, b.state.sheet.pos);
}

#[test]
fn openmp_solver_reproducible_to_rounding() {
    // The atomic scatter can reorder float additions between runs, so the
    // guarantee is rounding-level, not bitwise.
    let mut a = OpenMpSolver::new(cfg(), 4);
    let mut b = OpenMpSolver::new(cfg(), 4);
    a.run(20);
    b.run(20);
    let d = compare_states(&a.state, &b.state);
    assert!(d.within(1e-11), "{d:?}");
}

#[test]
fn cube_solver_reproducible_to_rounding() {
    let mut a = CubeSolver::new(cfg(), 4);
    let mut b = CubeSolver::new(cfg(), 4);
    a.run(20);
    b.run(20);
    let d = compare_states(&a.to_state(), &b.to_state());
    assert!(d.within(1e-11), "{d:?}");
}

#[test]
fn solver_state_survives_team_relaunch() {
    // run(n) spawns and joins the worker team; calling it repeatedly must
    // continue the same trajectory.
    let mut once = CubeSolver::new(cfg(), 3);
    once.run(12);
    let mut resumed = CubeSolver::new(cfg(), 3);
    for _ in 0..4 {
        resumed.run(3);
    }
    let d = compare_states(&once.to_state(), &resumed.to_state());
    assert!(d.within(1e-11), "{d:?}");
}

#[test]
fn invalid_configs_are_rejected_with_reasons() {
    use lbm_ib::ConfigError;

    let mut c = cfg();
    c.tau = 0.3;
    let e = c.validate().unwrap_err();
    assert!(matches!(e, ConfigError::InvalidTau { .. }), "{e}");
    assert!(e.to_string().contains("tau"));

    let mut c = cfg();
    c.cube_k = 7;
    let e = c.validate().unwrap_err();
    assert!(
        matches!(e, ConfigError::DimNotDivisibleByCube { .. }),
        "{e}"
    );
    assert!(e.to_string().contains("divide"));

    let mut c = cfg();
    c.sheet.center = [8.0, 1.0, 8.0];
    let e = c.validate().unwrap_err();
    assert!(matches!(e, ConfigError::SheetNearWall { .. }), "{e}");
    assert!(e.to_string().contains("wall"));

    let mut c = cfg();
    c.body_force = [1.0, 0.0, 0.0];
    let e = c.validate().unwrap_err();
    assert!(matches!(e, ConfigError::UnstableBodyForce { .. }), "{e}");
    assert!(e.to_string().contains("unstable"));

    let mut c = cfg();
    c.sheet.num_fibers = 1;
    assert!(c.validate().is_err());
}

#[test]
fn nan_injection_is_detected_by_diagnostics() {
    let mut s = SequentialSolver::new(cfg());
    s.run(5);
    s.state.fluid.f[123] = f64::NAN;
    // One more step propagates the NaN into macroscopic fields.
    s.run(1);
    let d = diagnostics(&s.state);
    assert!(d.nan_detected);
    assert!(d.check_stability(1.0).is_err());
}

#[test]
fn runaway_stiffness_is_flagged_not_silent() {
    // Absurd stiffness with a large time step destabilises the structure;
    // the stability check must catch it (velocity blow-up or NaN) within a
    // bounded number of steps rather than silently producing garbage.
    let mut c = cfg();
    c.body_force = [1e-5, 0.0, 0.0];
    c.sheet = SheetConfig {
        k_bend: 50.0,
        k_stretch: 500.0,
        tether: TetherConfig::None,
        ..SheetConfig::square(8, 4.0, [8.0, 8.0, 8.0])
    };
    // Deliberately skip validate(): we are testing runtime detection.
    let mut s = SequentialSolver::new(c);
    let m0 = s.state.fluid.total_mass();
    let mut caught = false;
    for _ in 0..200 {
        s.step();
        if diagnostics(&s.state).check_stability(m0).is_err() {
            caught = true;
            break;
        }
    }
    assert!(caught, "instability was never detected");
}

#[test]
fn zero_body_force_stays_exactly_quiescent() {
    let mut c = cfg();
    c.body_force = [0.0; 3];
    let mut s = SequentialSolver::new(c);
    s.run(20);
    // Flat sheet at rest exerts no force; no driving force → no motion.
    assert!(s.state.fluid.ux.iter().all(|&v| v.abs() < 1e-15));
    assert_eq!(s.state.sheet.pos, lbm_ib::SimState::new(c).sheet.pos);
}
