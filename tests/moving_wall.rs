//! Integration tests with a moving-lid (Couette) boundary: the coupled
//! solvers must agree and the fluid must develop the analytic linear
//! profile, with the sheet dragged along by the shear.

use lbm::analytic::Couette;
use lbm::boundary::{AxisBoundary, BoundaryConfig};
use lbm_ib::verify::verify_all_solvers;
use lbm_ib::{SequentialSolver, SheetConfig, SimulationConfig};

fn couette_config(u_lid: f64) -> SimulationConfig {
    let mut c = SimulationConfig::quick_test();
    c.body_force = [0.0; 3];
    c.bc = BoundaryConfig {
        x: AxisBoundary::Periodic,
        y: AxisBoundary::Walls {
            lo: [0.0; 3],
            hi: [u_lid, 0.0, 0.0],
        },
        z: AxisBoundary::Periodic,
    };
    // A soft small sheet near the lower wall.
    c.sheet = SheetConfig {
        k_bend: 1e-4,
        k_stretch: 5e-3,
        ..SheetConfig::square(5, 2.0, [8.0, 6.0, 8.0])
    };
    c
}

#[test]
fn solvers_agree_under_moving_lid() {
    let (omp, cube) = verify_all_solvers(couette_config(0.02), 10, 4);
    assert!(omp.within(1e-11), "OpenMP: {omp:?}");
    assert!(cube.within(1e-11), "cube: {cube:?}");
}

#[test]
fn lid_drives_linear_profile_and_drags_sheet() {
    let u_lid = 0.02;
    let cfg = couette_config(u_lid);
    let mut s = SequentialSolver::new(cfg);
    let x0 = s.state.sheet.centroid()[0];
    s.run(2500);
    // Interior profile approaches the Couette line (compare away from the
    // sheet's wake, at a different x).
    let dims = cfg.dims();
    let couette = Couette { ny: cfg.ny, u_lid };
    for y in [2, 8, 13] {
        let node = dims.idx(20, y, 2);
        let want = couette.ux(y);
        let got = s.state.fluid.ux[node];
        assert!(
            (got - want).abs() < 0.15 * u_lid,
            "row {y}: {got} vs analytic {want}"
        );
    }
    // The sheet sits in moving fluid, so it must drift downstream.
    let x1 = s.state.sheet.centroid()[0];
    assert!(x1 > x0 + 0.05, "sheet not dragged: {x0} -> {x1}");
    assert!(!s.state.has_nan());
}

#[test]
fn reversing_the_lid_reverses_the_drift() {
    let forward = {
        let mut s = SequentialSolver::new(couette_config(0.02));
        s.run(400);
        s.state.sheet.centroid()[0]
    };
    let backward = {
        let mut s = SequentialSolver::new(couette_config(-0.02));
        s.run(400);
        s.state.sheet.centroid()[0]
    };
    let start = 8.0;
    assert!(forward > start, "forward drift failed: {forward}");
    assert!(backward < start, "backward drift failed: {backward}");
    assert!(
        (forward - start + (backward - start)).abs() < 1e-6,
        "drifts should mirror: {forward} vs {backward}"
    );
}
