//! Integration tests for multi-structure composition: the hand-rolled
//! kernel loop (as used by `examples/two_sheets.rs`) must match the
//! high-level `SequentialSolver` exactly in the single-structure case, and
//! multiple structures must interact with the fluid conservatively.

use ib::delta::DeltaKind;
use ib::forces;
use ib::interp;
use ib::sheet::FiberSheet;
use ib::spread;
use ib::tether::TetherSet;
use lbm::boundary::{add_uniform_body_force, stream_push_bounded, BoundaryConfig};
use lbm::collision::bgk_collide_node;
use lbm::grid::{Dims, FluidGrid};
use lbm::lattice::Q;
use lbm::macroscopic::{initialize_equilibrium, update_velocity_shifted};
use lbm_ib::{SequentialSolver, SimulationConfig};

struct HandRolled {
    fluid: FluidGrid,
    bodies: Vec<(FiberSheet, TetherSet)>,
    bc: BoundaryConfig,
    delta: DeltaKind,
    tau: f64,
    body_force: [f64; 3],
}

impl HandRolled {
    fn new(dims: Dims, bodies: Vec<(FiberSheet, TetherSet)>, tau: f64, g: [f64; 3]) -> Self {
        let mut fluid = FluidGrid::new(dims);
        initialize_equilibrium(&mut fluid, |_, _, _| 1.0, |_, _, _| [0.0; 3]);
        Self {
            fluid,
            bodies,
            bc: BoundaryConfig::tunnel(),
            delta: DeltaKind::Peskin4,
            tau,
            body_force: g,
        }
    }

    fn step(&mut self) {
        for (sheet, tethers) in self.bodies.iter_mut() {
            forces::compute_bending_force(sheet);
            forces::compute_stretching_force(sheet);
            forces::compute_elastic_force(sheet);
            tethers.apply(sheet);
        }
        self.fluid.clear_force();
        add_uniform_body_force(&mut self.fluid, self.body_force);
        let dims = self.fluid.dims;
        for (sheet, _) in &self.bodies {
            spread::spread_forces(sheet, self.delta, dims, &self.bc, &mut self.fluid);
        }
        for node in 0..self.fluid.n() {
            let ueq = [
                self.fluid.ueqx[node],
                self.fluid.ueqy[node],
                self.fluid.ueqz[node],
            ];
            let rho = self.fluid.rho[node];
            bgk_collide_node(
                &mut self.fluid.f[node * Q..node * Q + Q],
                rho,
                ueq,
                [0.0; 3],
                self.tau,
            );
        }
        stream_push_bounded(&mut self.fluid, &self.bc);
        update_velocity_shifted(&mut self.fluid, self.tau);
        for (sheet, _) in self.bodies.iter_mut() {
            interp::move_fibers(sheet, self.delta, dims, &self.bc, &self.fluid, 1.0);
        }
        self.fluid.copy_distributions();
    }
}

#[test]
fn hand_rolled_loop_matches_sequential_solver() {
    // One structure: the composition used by the two_sheets example must be
    // *exactly* the SequentialSolver's step.
    let config = SimulationConfig::quick_test();
    let mut solver = SequentialSolver::new(config);
    let (sheet, tethers) = config.sheet.build();
    let mut hand = HandRolled::new(
        config.dims(),
        vec![(sheet, tethers)],
        config.tau,
        config.body_force,
    );

    for _ in 0..12 {
        solver.step();
        hand.step();
    }
    let max_f = solver
        .state
        .fluid
        .f
        .iter()
        .zip(&hand.fluid.f)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_f < 1e-14,
        "hand-rolled loop diverged from the solver: {max_f}"
    );
    for (a, b) in solver.state.sheet.pos.iter().zip(&hand.bodies[0].0.pos) {
        for c in 0..3 {
            assert!((a[c] - b[c]).abs() < 1e-14);
        }
    }
}

#[test]
fn two_structures_conserve_mass_and_stay_finite() {
    let dims = Dims::new(32, 16, 16);
    let a = FiberSheet::paper_sheet(8, 4.0, [10.0, 8.0, 8.0], 2e-4, 3e-2);
    let ta = TetherSet::center_region(&a, 1.5, 0.1);
    let b = FiberSheet::paper_sheet(6, 3.0, [20.0, 8.0, 8.0], 3e-4, 3e-2);
    let mut sim = HandRolled::new(
        dims,
        vec![(a, ta), (b, TetherSet::none())],
        0.8,
        [5e-6, 0.0, 0.0],
    );
    let m0 = sim.fluid.total_mass();
    for _ in 0..80 {
        sim.step();
    }
    let m1 = sim.fluid.total_mass();
    let drift = ((m1 - m0) / m0).abs();
    assert!(drift < 1e-11, "mass drift with two bodies: {drift:.3e}");
    assert!(!sim.bodies.iter().any(|(s, _)| s.has_nan()));
    // The free downstream body must advect; the tethered one must not.
    assert!(sim.bodies[1].0.centroid()[0] > 20.0);
    assert!((sim.bodies[0].0.centroid()[0] - 10.0).abs() < 0.3);
}

#[test]
fn upstream_body_shadows_downstream_body() {
    // Physical coupling across structures: with a large stiff plate held
    // upstream, the downstream sheet sees a slower flow and advects less
    // than it would alone.
    let dims = Dims::new(40, 16, 16);
    let g = [6e-6, 0.0, 0.0];
    let free = || FiberSheet::paper_sheet(8, 4.0, [24.0, 8.0, 8.0], 3e-4, 3e-2);

    let mut alone = HandRolled::new(dims, vec![(free(), TetherSet::none())], 0.8, g);
    for _ in 0..150 {
        alone.step();
    }
    let drift_alone = alone.bodies[0].0.centroid()[0] - 24.0;

    let plate = FiberSheet::paper_sheet(12, 9.0, [10.0, 8.0, 8.0], 1e-3, 5e-2);
    let tp = TetherSet::center_region(&plate, 100.0, 0.3); // rigidly held
    let mut shadowed =
        HandRolled::new(dims, vec![(plate, tp), (free(), TetherSet::none())], 0.8, g);
    for _ in 0..150 {
        shadowed.step();
    }
    let drift_shadowed = shadowed.bodies[1].0.centroid()[0] - 24.0;

    assert!(drift_alone > 0.0);
    assert!(
        drift_shadowed < drift_alone,
        "plate should slow the downstream sheet: alone {drift_alone}, shadowed {drift_shadowed}"
    );
}
