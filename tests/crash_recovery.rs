//! Integration tests: crash-consistent checkpoint/restart.
//!
//! The contract under test is the one the paper's long-running inputs
//! need in practice: a run resumed from a checkpoint reproduces the
//! uninterrupted run **bit for bit** (for every solver, now that all
//! parallel scatters are deterministic), and no corrupted or truncated
//! checkpoint ever loads silently — corruption is a typed
//! [`lbm_ib::CheckpointError`], never garbage physics.

use lbm_ib::checkpoint::{self, read_checkpoint, write_checkpoint};
use lbm_ib::{
    build_solver, run_with_checkpoints, CheckpointPolicy, ResumeSource, SheetConfig, SimState,
    SimulationConfig,
};
use proptest::prelude::*;
use std::path::PathBuf;

fn cfg() -> SimulationConfig {
    let mut c = SimulationConfig::quick_test();
    c.body_force = [4e-6, 0.0, 0.0];
    c
}

/// Unique scratch directory per test so parallel tests don't collide.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lbmib_crash_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn resume_is_bit_exact_for_every_solver() {
    for (name, threads) in [("seq", 1), ("omp", 4), ("cube", 4), ("dist", 4)] {
        let mut full = build_solver(name, SimState::new(cfg()), threads).unwrap();
        full.run(10).unwrap();

        let mut first = build_solver(name, SimState::new(cfg()), threads).unwrap();
        first.run(4).unwrap();
        let mut buf = Vec::new();
        write_checkpoint(&first.to_state(), &mut buf).unwrap();
        let loaded = read_checkpoint(&buf[..]).unwrap();
        assert_eq!(loaded.step, 4, "{name}");
        let mut resumed = build_solver(name, loaded, threads).unwrap();
        resumed.run(6).unwrap();

        let (a, b) = (full.to_state(), resumed.to_state());
        assert_eq!(a.step, b.step, "{name}");
        assert_eq!(a.fluid.f, b.fluid.f, "{name}: f must resume bit-exactly");
        assert_eq!(a.fluid.ux, b.fluid.ux, "{name}: ux must resume bit-exactly");
        assert_eq!(
            a.sheet.pos, b.sheet.pos,
            "{name}: sheet must resume bit-exactly"
        );
    }
}

#[test]
fn torn_primary_falls_back_to_rotated_snapshot() {
    let dir = scratch_dir("fallback");
    let path = dir.join("run.ckpt");
    let mut s = build_solver("seq", SimState::new(cfg()), 1).unwrap();
    s.run(3).unwrap();
    checkpoint::save(&s.to_state(), &path).unwrap();
    s.run(3).unwrap();
    checkpoint::save(&s.to_state(), &path).unwrap(); // rotates step 3 to .prev

    // Tear the primary as a crash mid-write would.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let (state, source) = checkpoint::resume(&path).unwrap();
    assert_eq!(source, ResumeSource::Fallback);
    assert_eq!(state.step, 3, "fallback must hold the previous good save");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_with_checkpoints_is_bit_exact_for_cube() {
    let dir = scratch_dir("rwc_cube");
    let path = dir.join("cube.ckpt");
    let mut plain = build_solver("cube", SimState::new(cfg()), 3).unwrap();
    plain.run(10).unwrap();

    let mut chunked = build_solver("cube", SimState::new(cfg()), 3).unwrap();
    let policy = CheckpointPolicy {
        every: 3,
        path: path.clone(),
    };
    let report = run_with_checkpoints(chunked.as_mut(), 10, &policy).unwrap();
    assert_eq!(report.steps, 10);

    let (saved, source) = checkpoint::resume(&path).unwrap();
    assert_eq!(source, ResumeSource::Primary);
    assert_eq!(saved.step, 10);
    assert_eq!(saved.fluid.f, plain.to_state().fluid.f);
    std::fs::remove_dir_all(&dir).ok();
}

/// A small evolved state for the corruption properties; dims are drawn per
/// case so layout-dependent bugs can't hide behind one fixed file size.
fn small_state(nx: usize, ny: usize, nz: usize, steps: u64) -> SimState {
    let mut c = SimulationConfig::quick_test();
    c.nx = nx;
    c.ny = ny;
    c.nz = nz;
    c.cube_k = 1;
    // Extent 2.0 keeps the sheet (plus delta support) clear of the walls
    // for every sampled grid, so validation passes.
    c.sheet = SheetConfig::square(4, 2.0, [nx as f64 / 2.0, ny as f64 / 2.0, nz as f64 / 2.0]);
    let mut s = build_solver("seq", SimState::new(c), 1).unwrap();
    s.run(steps).unwrap();
    s.to_state()
}

proptest! {
    #[test]
    fn round_trip_is_bit_exact_on_any_grid(
        nx in 8usize..20,
        ny in 8usize..16,
        nz in 8usize..16,
        steps in 0u64..3,
    ) {
        let state = small_state(nx, ny, nz, steps);
        let mut buf = Vec::new();
        write_checkpoint(&state, &mut buf).unwrap();
        let loaded = read_checkpoint(&buf[..]).unwrap();
        prop_assert_eq!(loaded.step, state.step);
        prop_assert_eq!(&loaded.fluid.f, &state.fluid.f);
        prop_assert_eq!(&loaded.fluid.ux, &state.fluid.ux);
        prop_assert_eq!(&loaded.sheet.pos, &state.sheet.pos);
        prop_assert_eq!(loaded.config.nx, nx);
    }

    #[test]
    fn any_single_byte_corruption_is_a_typed_error(
        pos_frac in 0.0f64..1.0,
        mask in 1u8..=255u8,
    ) {
        let state = small_state(8, 8, 8, 1);
        let mut buf = Vec::new();
        write_checkpoint(&state, &mut buf).unwrap();
        let pos = ((buf.len() - 1) as f64 * pos_frac) as usize;
        buf[pos] ^= mask;
        // Every single-byte flip must surface as a typed CheckpointError
        // (Format for header/guard damage, Crc for payload bit rot) —
        // never a silent load, never a panic or runaway allocation.
        match read_checkpoint(&buf[..]) {
            Err(
                lbm_ib::CheckpointError::Format(_)
                | lbm_ib::CheckpointError::Crc { .. }
                | lbm_ib::CheckpointError::Io(_),
            ) => {}
            Ok(_) => return Err(format!(
                "flip of byte {pos}/{} (mask {mask:#04x}) loaded silently",
                buf.len()
            )),
        }
    }

    #[test]
    fn any_truncation_is_a_typed_error(keep_frac in 0.0f64..1.0) {
        let state = small_state(8, 8, 8, 0);
        let mut buf = Vec::new();
        write_checkpoint(&state, &mut buf).unwrap();
        let keep = ((buf.len() - 1) as f64 * keep_frac) as usize;
        buf.truncate(keep);
        prop_assert!(
            read_checkpoint(&buf[..]).is_err(),
            "truncation to {keep} bytes must not load"
        );
    }
}
