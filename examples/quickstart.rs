//! Quickstart: the smallest end-to-end LBM-IB simulation, driven through
//! the unified [`Solver`] trait.
//!
//! A flexible 8×8-node sheet is placed in a small periodic-x tunnel, the
//! flow is driven by a uniform body force, and all four solvers advance
//! the same configuration behind `Box<dyn Solver>`. The example prints
//! diagnostics as the sheet is carried downstream and verifies every
//! parallel solver against the sequential one — the same check the paper
//! performed for every result — plus the fused-vs-split kernel-plan
//! cross-check.
//!
//! Run with: `cargo run --release --example quickstart`

use lbm_ib::diagnostics::diagnostics;
use lbm_ib::verify::{compare_states, cross_check};
use lbm_ib::{build_solver, SimState, SimulationConfig, Solver};

fn main() {
    // 1. Configure: a 24x16x16 tunnel with a small driving force and an
    //    8x8 fiber sheet. The builder validates at `build()`; any field
    //    can be overridden first.
    let config = SimulationConfig::builder()
        .body_force([4e-6, 0.0, 0.0])
        .build()
        .expect("configuration is sane");

    println!("LBM-IB quickstart");
    println!(
        "fluid {}x{}x{}, sheet {}x{} nodes, tau = {}",
        config.nx,
        config.ny,
        config.nz,
        config.sheet.num_fibers,
        config.sheet.nodes_per_fiber,
        config.tau
    );

    // 2. Simulate with the sequential solver behind the trait, printing
    //    diagnostics. `run` reports steps and wall time.
    let mut seq: Box<dyn Solver> =
        build_solver("seq", SimState::new(config), 1).expect("sequential solver");
    let steps = 60;
    let mut report = lbm_ib::RunReport::default();
    for _ in 0..6 {
        report.merge(seq.run(steps / 6).expect("run"));
        println!("{}", diagnostics(&seq.to_state()).summary());
    }
    println!(
        "{} steps in {:.1} ms",
        report.steps,
        report.wall.as_secs_f64() * 1e3
    );

    // 3. The built-in profiler reproduces the paper's Table I layout.
    println!("\nper-kernel profile (Table I layout):");
    print!("{}", seq.profile().expect("seq profiles").table());

    // 4. Run the parallel solvers on the same configuration — same trait,
    //    different name — and verify they produce the same physics.
    let reference = seq.to_state();
    println!("\nverification against the sequential solver after {steps} steps:");
    for kind in ["omp", "cube", "dist"] {
        let mut solver = build_solver(kind, SimState::new(config), 4).expect("solver");
        solver.run(steps).expect("run");
        let diff = compare_states(&reference, &solver.to_state());
        println!("  {:<4} (4 threads): max |Δ| = {:.3e}", kind, diff.worst());
        assert!(diff.within(1e-10), "{kind} solver diverged");
    }

    // 5. The fused collide–stream plan must match the split plan on every
    //    solver — it performs the same arithmetic in one sweep.
    for (kind, diff) in cross_check(config, 10, 4) {
        assert!(diff.within(1e-12), "{kind}: fused plan diverged");
    }
    println!("all solvers agree, split and fused ✓");
}
