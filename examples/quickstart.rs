//! Quickstart: the smallest end-to-end LBM-IB simulation.
//!
//! A flexible 8×8-node sheet is placed in a small periodic-x tunnel, the
//! flow is driven by a uniform body force, and all three solvers advance
//! the same configuration. The example prints diagnostics as the sheet is
//! carried downstream and verifies the parallel solvers against the
//! sequential one — the same check the paper performed for every result.
//!
//! Run with: `cargo run --release --example quickstart`

use lbm_ib::diagnostics::diagnostics;
use lbm_ib::verify::compare_states;
use lbm_ib::{CubeSolver, OpenMpSolver, SequentialSolver, SimulationConfig};

fn main() {
    // 1. Configure: a 24x16x16 tunnel with a small driving force and an
    //    8x8 fiber sheet. `quick_test` is the library's smallest sane
    //    preset; any field can be overridden.
    let mut config = SimulationConfig::quick_test();
    config.body_force = [4e-6, 0.0, 0.0];
    config.validate().expect("configuration is sane");

    println!("LBM-IB quickstart");
    println!(
        "fluid {}x{}x{}, sheet {}x{} nodes, tau = {}",
        config.nx,
        config.ny,
        config.nz,
        config.sheet.num_fibers,
        config.sheet.nodes_per_fiber,
        config.tau
    );

    // 2. Simulate with the sequential solver, printing diagnostics.
    let mut seq = SequentialSolver::new(config);
    let steps = 60;
    for chunk in 0..6 {
        seq.run(steps / 6);
        let d = diagnostics(&seq.state);
        println!("{}", d.summary());
        let _ = chunk;
    }

    // 3. The built-in profiler reproduces the paper's Table I layout.
    println!("\nper-kernel profile (Table I layout):");
    print!("{}", seq.profile.table());

    // 4. Run the two parallel solvers on the same configuration and verify
    //    they produce the same physics.
    let mut omp = OpenMpSolver::new(config, 4);
    omp.run(steps);
    let mut cube = CubeSolver::new(config, 4);
    cube.run(steps);

    let omp_diff = compare_states(&seq.state, &omp.state);
    let cube_diff = compare_states(&seq.state, &cube.to_state());
    println!("\nverification against the sequential solver after {steps} steps:");
    println!(
        "  OpenMP-style (4 threads): max |Δ| = {:.3e}",
        omp_diff.worst()
    );
    println!(
        "  cube-centric (4 threads): max |Δ| = {:.3e}",
        cube_diff.worst()
    );
    assert!(omp_diff.within(1e-10), "OpenMP solver diverged");
    assert!(cube_diff.within(1e-10), "cube solver diverged");
    println!("all solvers agree ✓");
}
