//! Physics validation example: the decaying Taylor–Green vortex, the
//! classic analytic benchmark for the fluid substrate. Demonstrates the
//! pure-LBM API (no structure) and prints measured vs analytic kinetic
//! energy decay plus the L2 velocity error at several resolutions,
//! exhibiting the method's second-order convergence.
//!
//! Run with: `cargo run --release --example taylor_green`

use lbm::analytic::{kinetic_energy, velocity_l2_error, TaylorGreen};
use lbm::{boundary::BoundaryConfig, collision::Relaxation, grid::Dims, stepper::PlainLbm};

fn run_resolution(n: usize, steps: u64) -> (f64, f64, f64) {
    let dims = Dims::new(n, n, 1);
    let relax = Relaxation::new(0.8);
    // Diffusive scaling: velocity shrinks with resolution so the Mach
    // regime matches across runs.
    let tg = TaylorGreen {
        dims,
        u0: 0.04 * 8.0 / n as f64,
        nu: relax.viscosity(),
    };
    let mut solver = PlainLbm::new(dims, relax, BoundaryConfig::periodic());
    solver.initialize(|_, _, _| 1.0, |x, y, z| tg.velocity(x, y, z, 0.0));
    let e0 = kinetic_energy(&solver.grid);
    solver.run(steps);
    let e1 = kinetic_energy(&solver.grid);
    let t = steps as f64;
    let err = velocity_l2_error(&solver.grid, |x, y, z| tg.velocity(x, y, z, t)) / tg.u0;
    (e1 / e0, tg.energy_ratio(t), err)
}

fn main() {
    println!("Taylor–Green vortex validation (periodic 2D vortex embedded in 3D)");
    println!();
    println!(
        "{:>6} {:>8} {:>14} {:>14} {:>12}",
        "N", "steps", "E(t)/E(0)", "analytic", "rel L2 err"
    );
    println!("{}", "-".repeat(58));

    let mut errors = Vec::new();
    for (n, steps) in [(8usize, 32u64), (16, 128), (32, 512)] {
        let (measured, analytic, err) = run_resolution(n, steps);
        println!("{n:>6} {steps:>8} {measured:>14.6} {analytic:>14.6} {err:>12.3e}");
        errors.push(err);
    }

    println!();
    let order1 = (errors[0] / errors[1]).log2();
    let order2 = (errors[1] / errors[2]).log2();
    println!("observed convergence order: {order1:.2} (8→16), {order2:.2} (16→32)");
    println!("(the lattice Boltzmann method is second-order accurate in space)");
    assert!(order1 > 1.5 && order2 > 1.5, "convergence order regressed");
}
