//! Two independent flexible sheets in one flow — the paper's remark that
//! "a 3D flexible structure can be comprised of a number of 2-D sheets".
//!
//! The high-level solvers are configured for the single-sheet benchmark
//! inputs of the paper, so this example shows how to compose a
//! *multi-structure* simulation directly from the substrate crates: the
//! nine kernels are spelled out by hand over a `lbm::FluidGrid` and two
//! `ib::FiberSheet`s. This hand-rolled loop is verified against the
//! high-level `SequentialSolver` in `tests/multi_structure.rs` for the
//! single-sheet case.
//!
//! Run with: `cargo run --release --example two_sheets [-- steps]`

use ib::delta::DeltaKind;
use ib::forces;
use ib::interp;
use ib::sheet::FiberSheet;
use ib::spread;
use ib::tether::TetherSet;
use lbm::boundary::{add_uniform_body_force, BoundaryConfig};
use lbm::fused::fused_collide_stream_grid;
use lbm::grid::{Dims, FluidGrid};
use lbm::macroscopic::{initialize_equilibrium, update_velocity_shifted};

const TAU: f64 = 0.8;
const BODY_FORCE: [f64; 3] = [6e-6, 0.0, 0.0];

/// One structure: a sheet plus its anchors.
struct Body {
    sheet: FiberSheet,
    tethers: TetherSet,
}

impl Body {
    /// Kernels 1–3 for this body.
    fn compute_elastic_forces(&mut self) {
        forces::compute_bending_force(&mut self.sheet);
        forces::compute_stretching_force(&mut self.sheet);
        forces::compute_elastic_force(&mut self.sheet);
        self.tethers.apply(&mut self.sheet);
    }
}

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let dims = Dims::new(64, 24, 24);
    let bc = BoundaryConfig::tunnel();
    let delta = DeltaKind::Peskin4;

    // The fluid.
    let mut fluid = FluidGrid::new(dims);
    initialize_equilibrium(&mut fluid, |_, _, _| 1.0, |_, _, _| [0.0; 3]);

    // Structure 1: a fastened plate upstream.
    let plate = FiberSheet::paper_sheet(13, 6.0, [16.0, 12.0, 12.0], 2e-4, 4e-2);
    let plate_tethers = TetherSet::center_region(&plate, 2.5, 0.15);
    // Structure 2: a free sheet downstream, offset in y.
    let free_sheet = FiberSheet::paper_sheet(11, 5.0, [34.0, 13.5, 12.0], 5e-4, 5e-2);

    let mut bodies = vec![
        Body {
            sheet: plate,
            tethers: plate_tethers,
        },
        Body {
            sheet: free_sheet,
            tethers: TetherSet::none(),
        },
    ];

    println!("two structures in one tunnel flow, {steps} steps");
    let plate_x0 = bodies[0].sheet.centroid()[0];
    let free_x0 = bodies[1].sheet.centroid()[0];

    for step in 0..steps {
        // Kernels 1–3 per body.
        for body in bodies.iter_mut() {
            body.compute_elastic_forces();
        }
        // Kernel 4: all bodies spread into the same force field.
        fluid.clear_force();
        add_uniform_body_force(&mut fluid, BODY_FORCE);
        for body in &bodies {
            spread::spread_forces(&body.sheet, delta, dims, &bc, &mut fluid);
        }
        // Kernels 5+6 as one fused sweep: collision in registers toward
        // the shift-velocity equilibrium, pushed straight into f_new.
        fused_collide_stream_grid(&mut fluid, &bc, TAU);
        // Kernel 7.
        update_velocity_shifted(&mut fluid, TAU);
        // Kernel 8 per body.
        for body in bodies.iter_mut() {
            interp::move_fibers(&mut body.sheet, delta, dims, &bc, &fluid, 1.0);
        }
        // Kernel 9.
        fluid.copy_distributions();

        if (step + 1) % (steps / 8).max(1) == 0 {
            let p = bodies[0].sheet.centroid();
            let f = bodies[1].sheet.centroid();
            println!(
                "step {:>5}: plate x {:.3} (excursion {:.4}), free sheet x {:.3}",
                step + 1,
                p[0],
                bodies[0].tethers.max_excursion(&bodies[0].sheet),
                f[0]
            );
        }
    }

    let plate_x1 = bodies[0].sheet.centroid()[0];
    let free_x1 = bodies[1].sheet.centroid()[0];
    println!(
        "\nplate drift: {:.4} (tethered, should be ~0)",
        plate_x1 - plate_x0
    );
    println!(
        "free sheet drift: {:.4} (should be downstream > 0)",
        free_x1 - free_x0
    );
    assert!((plate_x1 - plate_x0).abs() < 0.5, "fastened plate drifted");
    assert!(free_x1 > free_x0, "free sheet must advect");
    assert!(
        !bodies.iter().any(|b| b.sheet.has_nan()),
        "NaN in structure"
    );
}
