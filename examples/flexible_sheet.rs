//! The paper's Figure 7 scenario: a free flexible sheet carried by a
//! tunnel flow, deforming as it interacts with the fluid.
//!
//! The simulation runs with the cube-centric parallel solver under the
//! fused collide–stream kernel plan (kernels 5+6 in one per-cube sweep)
//! and writes two artifacts into `target/flexible_sheet/`:
//!
//! * `trajectory.csv` — sheet centroid and extents per sampling interval;
//! * `sheet_XXXXX.vtk` — structure snapshots viewable in ParaView.
//!
//! Run with: `cargo run --release --example flexible_sheet [-- steps]`

use std::fs::File;
use std::io::BufWriter;

use lbm_ib::diagnostics::diagnostics;
use lbm_ib::output::{append_trajectory_row, dump_sheet_snapshot, trajectory_header};
use lbm_ib::{build_solver, SheetConfig, SimState, SimulationConfig, Solver};

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);

    // A longer tunnel than quickstart, with a 20x20-node sheet starting in
    // the first quarter, free to move (no tethers) — Figure 7's moving
    // elastic sheet.
    let mut config = SimulationConfig::quick_test();
    config.nx = 64;
    config.ny = 24;
    config.nz = 24;
    config.body_force = [6e-6, 0.0, 0.0];
    config.sheet = SheetConfig {
        k_bend: 5e-4,
        k_stretch: 5e-2,
        ..SheetConfig::square(20, 8.0, [14.0, 12.0, 12.0])
    };
    // The fused plan is bit-identical to split and touches the
    // distribution arrays half as often.
    config.plan = lbm_ib::config::KernelPlan::Fused;
    config.validate().expect("config");

    let out_dir = std::path::Path::new("target/flexible_sheet");
    std::fs::create_dir_all(out_dir).expect("create output dir");
    let mut traj = BufWriter::new(File::create(out_dir.join("trajectory.csv")).unwrap());
    trajectory_header(&mut traj).unwrap();

    println!("Figure 7 scenario: flexible sheet in a tunnel flow ({steps} steps)");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(4);
    let mut solver: Box<dyn Solver> =
        build_solver("cube", SimState::new(config), threads).expect("solver");

    let sample_every = (steps / 20).max(1);
    let mut snapshot = 0;
    let mut done = 0;
    while done < steps {
        let n = sample_every.min(steps - done);
        done += solver.run(n).expect("run").steps;
        let state = solver.to_state();
        append_trajectory_row(&state, &mut traj).unwrap();
        let d = diagnostics(&state);
        println!("{}", d.summary());
        assert!(!d.nan_detected, "simulation blew up");
        dump_sheet_snapshot(&state, out_dir, snapshot).unwrap();
        snapshot += 1;
    }

    let final_state = solver.to_state();
    let c = final_state.sheet.centroid();
    println!(
        "\nsheet centroid moved to x = {:.2} (started at 14.0)",
        c[0]
    );
    assert!(c[0] > 14.0, "the sheet should be advected downstream");
    println!(
        "wrote {} snapshots and trajectory.csv into {}",
        snapshot,
        out_dir.display()
    );
}
