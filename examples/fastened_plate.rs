//! The paper's Figure 1 scenario: a flexible circular-ish plate fastened
//! in its middle region, immersed in a moving fluid. The free rim flaps
//! and bends with the flow while the tethered core stays put.
//!
//! Writes `target/fastened_plate/plate_XXXXX.vtk` snapshots plus a final
//! deformation report.
//!
//! Run with: `cargo run --release --example fastened_plate [-- steps]`

use lbm_ib::diagnostics::diagnostics;
use lbm_ib::output::dump_sheet_snapshot;
use lbm_ib::{build_solver, SheetConfig, SimState, SimulationConfig, Solver, TetherConfig};

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(240);

    let mut config = SimulationConfig::quick_test();
    config.nx = 48;
    config.ny = 24;
    config.nz = 24;
    config.body_force = [8e-6, 0.0, 0.0];
    config.sheet = SheetConfig {
        k_bend: 2e-4,
        k_stretch: 4e-2,
        // Fasten every node within 3 index units of the centre — the
        // "fastened in the middle region" plate of Figure 1.
        tether: TetherConfig::CenterRegion {
            radius: 3.0,
            stiffness: 0.15,
        },
        ..SheetConfig::square(17, 8.0, [16.0, 12.0, 12.0])
    };
    config.validate().expect("config");

    let out_dir = std::path::Path::new("target/fastened_plate");
    std::fs::create_dir_all(out_dir).expect("create output dir");

    println!("Figure 1 scenario: plate fastened in the middle ({steps} steps)");
    let mut solver: Box<dyn Solver> =
        build_solver("omp", SimState::new(config), 2).expect("solver");

    let sample_every = (steps / 12).max(1);
    let mut snapshot = 0;
    let mut done = 0;
    while done < steps {
        let n = sample_every.min(steps - done);
        done += solver.run(n).expect("run").steps;
        let state = solver.to_state();
        let d = diagnostics(&state);
        println!("{}", d.summary());
        assert!(!d.nan_detected, "simulation blew up");
        dump_sheet_snapshot(&state, out_dir, snapshot).unwrap();
        snapshot += 1;
    }

    // Deformation report: the tethered core must stay near its anchors
    // while the free rim is pushed downstream and bends.
    let state = &solver.to_state();
    let anchors_excursion = state.tethers.max_excursion(&state.sheet);
    let (lo, hi) = state.sheet.bounding_box();
    let bow = hi[0] - lo[0]; // how far the plate bowed along the flow
    println!("\ncore max excursion from anchors: {anchors_excursion:.4} lattice units");
    println!("plate bow along the flow (x extent): {bow:.3} lattice units");
    assert!(anchors_excursion < 1.0, "the fastened core must hold");
    assert!(bow > 0.05, "the free rim should bend with the flow");
    println!("wrote {snapshot} snapshots into {}", out_dir.display());
}
