#!/usr/bin/env bash
# Kill -9 crash/resume smoke test for the crash-consistent checkpoint
# protocol (CI's `chaos-smoke` job; also runnable locally).
#
# 1. Start a long `lbmib` run with periodic checkpointing and SIGKILL it
#    the moment the first checkpoint appears — so the kill can land
#    anywhere, including mid-save, which the temp-file + atomic-rename +
#    `.prev` rotation protocol must survive.
# 2. Resume from whatever survived on disk and advance to a fixed target
#    step.
# 3. Run the same simulation fresh and uninterrupted to the same target.
# 4. The two final checkpoints must be byte-identical: resume is bit-exact,
#    not merely approximately right.
#
# With `--supervise` (or SUPERVISE=1) both the killed run and the resumed
# run go through the self-healing supervisor, which then owns the periodic
# checkpoint commits and the rollback anchor — proving supervised runs
# survive kill -9 with the same byte-exactness as bare ones.
set -euo pipefail

cd "$(dirname "$0")/.."

SOLVER=${SOLVER:-cube}
THREADS=${THREADS:-4}
EVERY=${EVERY:-25}
BIN=${LBMIB_BIN:-target/release/lbmib}
SUPERVISE=${SUPERVISE:-0}
[ "${1:-}" = "--supervise" ] && SUPERVISE=1
SUP_FLAGS=()
if [ "$SUPERVISE" = 1 ]; then
    SUP_FLAGS=(--supervise --backoff-ms 1)
    echo "running the kill -9 smoke under --supervise"
fi

[ -x "$BIN" ] || cargo build --release --bin lbmib

DIR=$(mktemp -d)
BG=
trap '[ -n "$BG" ] && kill -9 "$BG" 2>/dev/null; rm -rf "$DIR"' EXIT

"$BIN" --preset quick --solver "$SOLVER" --threads "$THREADS" \
    --steps 100000000 --report-every "$EVERY" \
    --checkpoint-every "$EVERY" --checkpoint-path "$DIR/crash.ckpt" \
    ${SUP_FLAGS[@]+"${SUP_FLAGS[@]}"} \
    >"$DIR/crash.log" 2>&1 &
BG=$!

for _ in $(seq 1 600); do
    [ -f "$DIR/crash.ckpt" ] && break
    kill -0 "$BG" 2>/dev/null || { echo "FAIL: run died early:"; cat "$DIR/crash.log"; exit 1; }
    sleep 0.1
done
[ -f "$DIR/crash.ckpt" ] || { echo "FAIL: no checkpoint appeared within 60s"; exit 1; }

kill -9 "$BG"
wait "$BG" 2>/dev/null || true
BG=

# A --steps 0 invocation just loads (with .prev fallback if the kill tore
# the primary) and reports where the surviving snapshot left us.
S=$("$BIN" --resume "$DIR/crash.ckpt" --steps 0 | sed -n 's/^resumed at step \([0-9]*\)$/\1/p')
[ -n "$S" ] || { echo "FAIL: could not parse the resumed step"; exit 1; }
T=$((S + 40))
echo "killed run survived at step $S; driving both runs to step $T"

"$BIN" --resume "$DIR/crash.ckpt" --solver "$SOLVER" --threads "$THREADS" \
    --steps 40 --report-every 40 --save "$DIR/final_resumed.ckpt" \
    ${SUP_FLAGS[@]+"${SUP_FLAGS[@]}"} >/dev/null

"$BIN" --preset quick --solver "$SOLVER" --threads "$THREADS" \
    --steps "$T" --report-every "$T" --save "$DIR/final_fresh.ckpt" >/dev/null

cmp "$DIR/final_resumed.ckpt" "$DIR/final_fresh.ckpt"
echo "OK: final state after kill -9 + resume is byte-identical to the uninterrupted run"
