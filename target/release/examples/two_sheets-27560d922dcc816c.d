/root/repo/target/release/examples/two_sheets-27560d922dcc816c.d: examples/two_sheets.rs

/root/repo/target/release/examples/two_sheets-27560d922dcc816c: examples/two_sheets.rs

examples/two_sheets.rs:
