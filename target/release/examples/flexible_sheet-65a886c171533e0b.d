/root/repo/target/release/examples/flexible_sheet-65a886c171533e0b.d: examples/flexible_sheet.rs

/root/repo/target/release/examples/flexible_sheet-65a886c171533e0b: examples/flexible_sheet.rs

examples/flexible_sheet.rs:
