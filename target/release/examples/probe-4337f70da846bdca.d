/root/repo/target/release/examples/probe-4337f70da846bdca.d: crates/cachesim/examples/probe.rs

/root/repo/target/release/examples/probe-4337f70da846bdca: crates/cachesim/examples/probe.rs

crates/cachesim/examples/probe.rs:
