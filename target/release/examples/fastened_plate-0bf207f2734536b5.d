/root/repo/target/release/examples/fastened_plate-0bf207f2734536b5.d: examples/fastened_plate.rs

/root/repo/target/release/examples/fastened_plate-0bf207f2734536b5: examples/fastened_plate.rs

examples/fastened_plate.rs:
