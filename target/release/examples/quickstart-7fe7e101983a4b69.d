/root/repo/target/release/examples/quickstart-7fe7e101983a4b69.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-7fe7e101983a4b69: examples/quickstart.rs

examples/quickstart.rs:
