/root/repo/target/release/examples/taylor_green-acf4ee60a6567173.d: examples/taylor_green.rs

/root/repo/target/release/examples/taylor_green-acf4ee60a6567173: examples/taylor_green.rs

examples/taylor_green.rs:
