/root/repo/target/release/deps/fused_vs_split-a84991131354021f.d: crates/bench/src/bin/fused_vs_split.rs

/root/repo/target/release/deps/fused_vs_split-a84991131354021f: crates/bench/src/bin/fused_vs_split.rs

crates/bench/src/bin/fused_vs_split.rs:
