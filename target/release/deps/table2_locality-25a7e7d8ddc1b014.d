/root/repo/target/release/deps/table2_locality-25a7e7d8ddc1b014.d: crates/bench/src/bin/table2_locality.rs

/root/repo/target/release/deps/table2_locality-25a7e7d8ddc1b014: crates/bench/src/bin/table2_locality.rs

crates/bench/src/bin/table2_locality.rs:
