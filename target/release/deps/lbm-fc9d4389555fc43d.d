/root/repo/target/release/deps/lbm-fc9d4389555fc43d.d: crates/lbm/src/lib.rs crates/lbm/src/analytic.rs crates/lbm/src/boundary.rs crates/lbm/src/collision.rs crates/lbm/src/cube_grid.rs crates/lbm/src/distribution.rs crates/lbm/src/equilibrium.rs crates/lbm/src/fused.rs crates/lbm/src/grid.rs crates/lbm/src/lattice.rs crates/lbm/src/macroscopic.rs crates/lbm/src/observables.rs crates/lbm/src/stepper.rs crates/lbm/src/streaming.rs crates/lbm/src/units.rs

/root/repo/target/release/deps/lbm-fc9d4389555fc43d: crates/lbm/src/lib.rs crates/lbm/src/analytic.rs crates/lbm/src/boundary.rs crates/lbm/src/collision.rs crates/lbm/src/cube_grid.rs crates/lbm/src/distribution.rs crates/lbm/src/equilibrium.rs crates/lbm/src/fused.rs crates/lbm/src/grid.rs crates/lbm/src/lattice.rs crates/lbm/src/macroscopic.rs crates/lbm/src/observables.rs crates/lbm/src/stepper.rs crates/lbm/src/streaming.rs crates/lbm/src/units.rs

crates/lbm/src/lib.rs:
crates/lbm/src/analytic.rs:
crates/lbm/src/boundary.rs:
crates/lbm/src/collision.rs:
crates/lbm/src/cube_grid.rs:
crates/lbm/src/distribution.rs:
crates/lbm/src/equilibrium.rs:
crates/lbm/src/fused.rs:
crates/lbm/src/grid.rs:
crates/lbm/src/lattice.rs:
crates/lbm/src/macroscopic.rs:
crates/lbm/src/observables.rs:
crates/lbm/src/stepper.rs:
crates/lbm/src/streaming.rs:
crates/lbm/src/units.rs:
