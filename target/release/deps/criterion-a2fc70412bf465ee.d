/root/repo/target/release/deps/criterion-a2fc70412bf465ee.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-a2fc70412bf465ee: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
