/root/repo/target/release/deps/ib-41e0cc9c68ec6567.d: crates/ib/src/lib.rs crates/ib/src/delta.rs crates/ib/src/forces.rs crates/ib/src/interp.rs crates/ib/src/sheet.rs crates/ib/src/spread.rs crates/ib/src/tether.rs

/root/repo/target/release/deps/libib-41e0cc9c68ec6567.rlib: crates/ib/src/lib.rs crates/ib/src/delta.rs crates/ib/src/forces.rs crates/ib/src/interp.rs crates/ib/src/sheet.rs crates/ib/src/spread.rs crates/ib/src/tether.rs

/root/repo/target/release/deps/libib-41e0cc9c68ec6567.rmeta: crates/ib/src/lib.rs crates/ib/src/delta.rs crates/ib/src/forces.rs crates/ib/src/interp.rs crates/ib/src/sheet.rs crates/ib/src/spread.rs crates/ib/src/tether.rs

crates/ib/src/lib.rs:
crates/ib/src/delta.rs:
crates/ib/src/forces.rs:
crates/ib/src/interp.rs:
crates/ib/src/sheet.rs:
crates/ib/src/spread.rs:
crates/ib/src/tether.rs:
