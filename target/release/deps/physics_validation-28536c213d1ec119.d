/root/repo/target/release/deps/physics_validation-28536c213d1ec119.d: tests/physics_validation.rs

/root/repo/target/release/deps/physics_validation-28536c213d1ec119: tests/physics_validation.rs

tests/physics_validation.rs:
