/root/repo/target/release/deps/criterion-1448f5a99f20e68d.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-1448f5a99f20e68d.rlib: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-1448f5a99f20e68d.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
