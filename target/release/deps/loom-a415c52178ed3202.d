/root/repo/target/release/deps/loom-a415c52178ed3202.d: crates/core/tests/loom.rs

/root/repo/target/release/deps/loom-a415c52178ed3202: crates/core/tests/loom.rs

crates/core/tests/loom.rs:
