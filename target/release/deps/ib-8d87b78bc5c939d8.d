/root/repo/target/release/deps/ib-8d87b78bc5c939d8.d: crates/ib/src/lib.rs crates/ib/src/delta.rs crates/ib/src/forces.rs crates/ib/src/interp.rs crates/ib/src/sheet.rs crates/ib/src/spread.rs crates/ib/src/tether.rs

/root/repo/target/release/deps/ib-8d87b78bc5c939d8: crates/ib/src/lib.rs crates/ib/src/delta.rs crates/ib/src/forces.rs crates/ib/src/interp.rs crates/ib/src/sheet.rs crates/ib/src/spread.rs crates/ib/src/tether.rs

crates/ib/src/lib.rs:
crates/ib/src/delta.rs:
crates/ib/src/forces.rs:
crates/ib/src/interp.rs:
crates/ib/src/sheet.rs:
crates/ib/src/spread.rs:
crates/ib/src/tether.rs:
