/root/repo/target/release/deps/fused_vs_split-8726fb6a1ebc7d88.d: crates/bench/benches/fused_vs_split.rs

/root/repo/target/release/deps/fused_vs_split-8726fb6a1ebc7d88: crates/bench/benches/fused_vs_split.rs

crates/bench/benches/fused_vs_split.rs:
