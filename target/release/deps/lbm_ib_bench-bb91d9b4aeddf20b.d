/root/repo/target/release/deps/lbm_ib_bench-bb91d9b4aeddf20b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/lbm_ib_bench-bb91d9b4aeddf20b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
