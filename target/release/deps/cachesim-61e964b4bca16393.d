/root/repo/target/release/deps/cachesim-61e964b4bca16393.d: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/trace.rs

/root/repo/target/release/deps/cachesim-61e964b4bca16393: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/trace.rs

crates/cachesim/src/lib.rs:
crates/cachesim/src/cache.rs:
crates/cachesim/src/hierarchy.rs:
crates/cachesim/src/trace.rs:
