/root/repo/target/release/deps/proptest-eda75b5f3b6b1b65.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-eda75b5f3b6b1b65: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
