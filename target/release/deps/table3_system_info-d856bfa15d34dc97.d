/root/repo/target/release/deps/table3_system_info-d856bfa15d34dc97.d: crates/bench/src/bin/table3_system_info.rs

/root/repo/target/release/deps/table3_system_info-d856bfa15d34dc97: crates/bench/src/bin/table3_system_info.rs

crates/bench/src/bin/table3_system_info.rs:
