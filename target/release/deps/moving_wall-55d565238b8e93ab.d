/root/repo/target/release/deps/moving_wall-55d565238b8e93ab.d: tests/moving_wall.rs

/root/repo/target/release/deps/moving_wall-55d565238b8e93ab: tests/moving_wall.rs

tests/moving_wall.rs:
