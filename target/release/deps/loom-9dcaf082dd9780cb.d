/root/repo/target/release/deps/loom-9dcaf082dd9780cb.d: crates/loom/src/lib.rs crates/loom/src/rt.rs

/root/repo/target/release/deps/loom-9dcaf082dd9780cb: crates/loom/src/lib.rs crates/loom/src/rt.rs

crates/loom/src/lib.rs:
crates/loom/src/rt.rs:
