/root/repo/target/release/deps/table1_kernel_breakdown-e6c1527146cf8153.d: crates/bench/src/bin/table1_kernel_breakdown.rs

/root/repo/target/release/deps/table1_kernel_breakdown-e6c1527146cf8153: crates/bench/src/bin/table1_kernel_breakdown.rs

crates/bench/src/bin/table1_kernel_breakdown.rs:
