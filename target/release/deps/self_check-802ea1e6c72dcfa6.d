/root/repo/target/release/deps/self_check-802ea1e6c72dcfa6.d: crates/loom/tests/self_check.rs

/root/repo/target/release/deps/self_check-802ea1e6c72dcfa6: crates/loom/tests/self_check.rs

crates/loom/tests/self_check.rs:
