/root/repo/target/release/deps/multi_structure-fd9b4df03b9cf2f0.d: tests/multi_structure.rs

/root/repo/target/release/deps/multi_structure-fd9b4df03b9cf2f0: tests/multi_structure.rs

tests/multi_structure.rs:
