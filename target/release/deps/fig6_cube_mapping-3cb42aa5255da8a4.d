/root/repo/target/release/deps/fig6_cube_mapping-3cb42aa5255da8a4.d: crates/bench/src/bin/fig6_cube_mapping.rs

/root/repo/target/release/deps/fig6_cube_mapping-3cb42aa5255da8a4: crates/bench/src/bin/fig6_cube_mapping.rs

crates/bench/src/bin/fig6_cube_mapping.rs:
