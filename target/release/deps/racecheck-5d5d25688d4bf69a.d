/root/repo/target/release/deps/racecheck-5d5d25688d4bf69a.d: crates/core/tests/racecheck.rs

/root/repo/target/release/deps/racecheck-5d5d25688d4bf69a: crates/core/tests/racecheck.rs

crates/core/tests/racecheck.rs:
