/root/repo/target/release/deps/determinism_and_failure-d3bfbf3c448558c2.d: tests/determinism_and_failure.rs

/root/repo/target/release/deps/determinism_and_failure-d3bfbf3c448558c2: tests/determinism_and_failure.rs

tests/determinism_and_failure.rs:
