/root/repo/target/release/deps/fused_vs_split-5bdbcf02a1ece8c9.d: crates/bench/src/bin/fused_vs_split.rs

/root/repo/target/release/deps/fused_vs_split-5bdbcf02a1ece8c9: crates/bench/src/bin/fused_vs_split.rs

crates/bench/src/bin/fused_vs_split.rs:
