/root/repo/target/release/deps/lbm_ib-4f7b69c534530c64.d: crates/core/src/lib.rs crates/core/src/atomicf64.rs crates/core/src/barrier.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/cube.rs crates/core/src/diagnostics.rs crates/core/src/distributed.rs crates/core/src/kernels.rs crates/core/src/openmp.rs crates/core/src/output.rs crates/core/src/profiling.rs crates/core/src/sequential.rs crates/core/src/sharedgrid.rs crates/core/src/solver.rs crates/core/src/state.rs crates/core/src/sync_shim.rs crates/core/src/threadpool.rs crates/core/src/tuning.rs crates/core/src/verify.rs

/root/repo/target/release/deps/liblbm_ib-4f7b69c534530c64.rlib: crates/core/src/lib.rs crates/core/src/atomicf64.rs crates/core/src/barrier.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/cube.rs crates/core/src/diagnostics.rs crates/core/src/distributed.rs crates/core/src/kernels.rs crates/core/src/openmp.rs crates/core/src/output.rs crates/core/src/profiling.rs crates/core/src/sequential.rs crates/core/src/sharedgrid.rs crates/core/src/solver.rs crates/core/src/state.rs crates/core/src/sync_shim.rs crates/core/src/threadpool.rs crates/core/src/tuning.rs crates/core/src/verify.rs

/root/repo/target/release/deps/liblbm_ib-4f7b69c534530c64.rmeta: crates/core/src/lib.rs crates/core/src/atomicf64.rs crates/core/src/barrier.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/cube.rs crates/core/src/diagnostics.rs crates/core/src/distributed.rs crates/core/src/kernels.rs crates/core/src/openmp.rs crates/core/src/output.rs crates/core/src/profiling.rs crates/core/src/sequential.rs crates/core/src/sharedgrid.rs crates/core/src/solver.rs crates/core/src/state.rs crates/core/src/sync_shim.rs crates/core/src/threadpool.rs crates/core/src/tuning.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/atomicf64.rs:
crates/core/src/barrier.rs:
crates/core/src/checkpoint.rs:
crates/core/src/config.rs:
crates/core/src/cube.rs:
crates/core/src/diagnostics.rs:
crates/core/src/distributed.rs:
crates/core/src/kernels.rs:
crates/core/src/openmp.rs:
crates/core/src/output.rs:
crates/core/src/profiling.rs:
crates/core/src/sequential.rs:
crates/core/src/sharedgrid.rs:
crates/core/src/solver.rs:
crates/core/src/state.rs:
crates/core/src/sync_shim.rs:
crates/core/src/threadpool.rs:
crates/core/src/tuning.rs:
crates/core/src/verify.rs:
