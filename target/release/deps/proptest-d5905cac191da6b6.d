/root/repo/target/release/deps/proptest-d5905cac191da6b6.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d5905cac191da6b6.rlib: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d5905cac191da6b6.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
