/root/repo/target/release/deps/proptest-1367002070e0f4fb.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-1367002070e0f4fb.rlib: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-1367002070e0f4fb.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
