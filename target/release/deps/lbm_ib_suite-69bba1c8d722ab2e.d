/root/repo/target/release/deps/lbm_ib_suite-69bba1c8d722ab2e.d: src/lib.rs

/root/repo/target/release/deps/liblbm_ib_suite-69bba1c8d722ab2e.rlib: src/lib.rs

/root/repo/target/release/deps/liblbm_ib_suite-69bba1c8d722ab2e.rmeta: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
