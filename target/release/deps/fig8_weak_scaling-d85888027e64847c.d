/root/repo/target/release/deps/fig8_weak_scaling-d85888027e64847c.d: crates/bench/src/bin/fig8_weak_scaling.rs

/root/repo/target/release/deps/fig8_weak_scaling-d85888027e64847c: crates/bench/src/bin/fig8_weak_scaling.rs

crates/bench/src/bin/fig8_weak_scaling.rs:
