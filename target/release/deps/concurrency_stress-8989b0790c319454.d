/root/repo/target/release/deps/concurrency_stress-8989b0790c319454.d: crates/core/tests/concurrency_stress.rs

/root/repo/target/release/deps/concurrency_stress-8989b0790c319454: crates/core/tests/concurrency_stress.rs

crates/core/tests/concurrency_stress.rs:
