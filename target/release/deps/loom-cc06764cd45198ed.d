/root/repo/target/release/deps/loom-cc06764cd45198ed.d: crates/core/tests/loom.rs

/root/repo/target/release/deps/loom-cc06764cd45198ed: crates/core/tests/loom.rs

crates/core/tests/loom.rs:
