/root/repo/target/release/deps/lbmib-32da0bb79fb86563.d: src/bin/lbmib.rs

/root/repo/target/release/deps/lbmib-32da0bb79fb86563: src/bin/lbmib.rs

src/bin/lbmib.rs:
