/root/repo/target/release/deps/table1_kernel_breakdown-e298fb807384ae69.d: crates/bench/src/bin/table1_kernel_breakdown.rs

/root/repo/target/release/deps/table1_kernel_breakdown-e298fb807384ae69: crates/bench/src/bin/table1_kernel_breakdown.rs

crates/bench/src/bin/table1_kernel_breakdown.rs:
