/root/repo/target/release/deps/racecheck-e3c03b937cedd259.d: crates/core/tests/racecheck.rs

/root/repo/target/release/deps/racecheck-e3c03b937cedd259: crates/core/tests/racecheck.rs

crates/core/tests/racecheck.rs:
