/root/repo/target/release/deps/concurrency_stress-3dc410089647d0c3.d: crates/core/tests/concurrency_stress.rs

/root/repo/target/release/deps/concurrency_stress-3dc410089647d0c3: crates/core/tests/concurrency_stress.rs

crates/core/tests/concurrency_stress.rs:
