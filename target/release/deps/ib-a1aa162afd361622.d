/root/repo/target/release/deps/ib-a1aa162afd361622.d: crates/ib/src/lib.rs crates/ib/src/delta.rs crates/ib/src/forces.rs crates/ib/src/interp.rs crates/ib/src/sheet.rs crates/ib/src/spread.rs crates/ib/src/tether.rs

/root/repo/target/release/deps/libib-a1aa162afd361622.rlib: crates/ib/src/lib.rs crates/ib/src/delta.rs crates/ib/src/forces.rs crates/ib/src/interp.rs crates/ib/src/sheet.rs crates/ib/src/spread.rs crates/ib/src/tether.rs

/root/repo/target/release/deps/libib-a1aa162afd361622.rmeta: crates/ib/src/lib.rs crates/ib/src/delta.rs crates/ib/src/forces.rs crates/ib/src/interp.rs crates/ib/src/sheet.rs crates/ib/src/spread.rs crates/ib/src/tether.rs

crates/ib/src/lib.rs:
crates/ib/src/delta.rs:
crates/ib/src/forces.rs:
crates/ib/src/interp.rs:
crates/ib/src/sheet.rs:
crates/ib/src/spread.rs:
crates/ib/src/tether.rs:
