/root/repo/target/release/deps/fig6_cube_mapping-b96ebd81215c0583.d: crates/bench/src/bin/fig6_cube_mapping.rs

/root/repo/target/release/deps/fig6_cube_mapping-b96ebd81215c0583: crates/bench/src/bin/fig6_cube_mapping.rs

crates/bench/src/bin/fig6_cube_mapping.rs:
