/root/repo/target/release/deps/lbmib-7c752ba9ddae40c7.d: src/bin/lbmib.rs

/root/repo/target/release/deps/lbmib-7c752ba9ddae40c7: src/bin/lbmib.rs

src/bin/lbmib.rs:
