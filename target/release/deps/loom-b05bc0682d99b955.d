/root/repo/target/release/deps/loom-b05bc0682d99b955.d: crates/core/tests/loom.rs

/root/repo/target/release/deps/loom-b05bc0682d99b955: crates/core/tests/loom.rs

crates/core/tests/loom.rs:
