/root/repo/target/release/deps/cachesim-91c3d2283e6f52f9.d: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/trace.rs

/root/repo/target/release/deps/libcachesim-91c3d2283e6f52f9.rlib: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/trace.rs

/root/repo/target/release/deps/libcachesim-91c3d2283e6f52f9.rmeta: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/trace.rs

crates/cachesim/src/lib.rs:
crates/cachesim/src/cache.rs:
crates/cachesim/src/hierarchy.rs:
crates/cachesim/src/trace.rs:
