/root/repo/target/release/deps/fig5_openmp_scaling-93c88725f35d3338.d: crates/bench/src/bin/fig5_openmp_scaling.rs

/root/repo/target/release/deps/fig5_openmp_scaling-93c88725f35d3338: crates/bench/src/bin/fig5_openmp_scaling.rs

crates/bench/src/bin/fig5_openmp_scaling.rs:
