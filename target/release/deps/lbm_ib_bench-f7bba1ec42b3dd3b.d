/root/repo/target/release/deps/lbm_ib_bench-f7bba1ec42b3dd3b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/liblbm_ib_bench-f7bba1ec42b3dd3b.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/liblbm_ib_bench-f7bba1ec42b3dd3b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
