/root/repo/target/release/deps/loom-201817376dac5c13.d: crates/loom/src/lib.rs crates/loom/src/rt.rs

/root/repo/target/release/deps/libloom-201817376dac5c13.rlib: crates/loom/src/lib.rs crates/loom/src/rt.rs

/root/repo/target/release/deps/libloom-201817376dac5c13.rmeta: crates/loom/src/lib.rs crates/loom/src/rt.rs

crates/loom/src/lib.rs:
crates/loom/src/rt.rs:
