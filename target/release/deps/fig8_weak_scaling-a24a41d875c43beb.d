/root/repo/target/release/deps/fig8_weak_scaling-a24a41d875c43beb.d: crates/bench/src/bin/fig8_weak_scaling.rs

/root/repo/target/release/deps/fig8_weak_scaling-a24a41d875c43beb: crates/bench/src/bin/fig8_weak_scaling.rs

crates/bench/src/bin/fig8_weak_scaling.rs:
