/root/repo/target/release/deps/table3_system_info-a8e432e57a814f8a.d: crates/bench/src/bin/table3_system_info.rs

/root/repo/target/release/deps/table3_system_info-a8e432e57a814f8a: crates/bench/src/bin/table3_system_info.rs

crates/bench/src/bin/table3_system_info.rs:
