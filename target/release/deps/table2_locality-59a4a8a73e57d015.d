/root/repo/target/release/deps/table2_locality-59a4a8a73e57d015.d: crates/bench/src/bin/table2_locality.rs

/root/repo/target/release/deps/table2_locality-59a4a8a73e57d015: crates/bench/src/bin/table2_locality.rs

crates/bench/src/bin/table2_locality.rs:
