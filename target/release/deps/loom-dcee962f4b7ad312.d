/root/repo/target/release/deps/loom-dcee962f4b7ad312.d: crates/loom/src/lib.rs crates/loom/src/rt.rs

/root/repo/target/release/deps/libloom-dcee962f4b7ad312.rlib: crates/loom/src/lib.rs crates/loom/src/rt.rs

/root/repo/target/release/deps/libloom-dcee962f4b7ad312.rmeta: crates/loom/src/lib.rs crates/loom/src/rt.rs

crates/loom/src/lib.rs:
crates/loom/src/rt.rs:
