/root/repo/target/release/deps/lbm_ib_suite-a07310cd5525b8f4.d: src/lib.rs

/root/repo/target/release/deps/lbm_ib_suite-a07310cd5525b8f4: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
