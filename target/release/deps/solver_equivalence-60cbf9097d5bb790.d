/root/repo/target/release/deps/solver_equivalence-60cbf9097d5bb790.d: tests/solver_equivalence.rs

/root/repo/target/release/deps/solver_equivalence-60cbf9097d5bb790: tests/solver_equivalence.rs

tests/solver_equivalence.rs:
