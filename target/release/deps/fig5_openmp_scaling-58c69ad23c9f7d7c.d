/root/repo/target/release/deps/fig5_openmp_scaling-58c69ad23c9f7d7c.d: crates/bench/src/bin/fig5_openmp_scaling.rs

/root/repo/target/release/deps/fig5_openmp_scaling-58c69ad23c9f7d7c: crates/bench/src/bin/fig5_openmp_scaling.rs

crates/bench/src/bin/fig5_openmp_scaling.rs:
