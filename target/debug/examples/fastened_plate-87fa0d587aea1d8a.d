/root/repo/target/debug/examples/fastened_plate-87fa0d587aea1d8a.d: examples/fastened_plate.rs

/root/repo/target/debug/examples/fastened_plate-87fa0d587aea1d8a: examples/fastened_plate.rs

examples/fastened_plate.rs:
