/root/repo/target/debug/examples/taylor_green-f1f525dbbc88fddd.d: examples/taylor_green.rs Cargo.toml

/root/repo/target/debug/examples/libtaylor_green-f1f525dbbc88fddd.rmeta: examples/taylor_green.rs Cargo.toml

examples/taylor_green.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
