/root/repo/target/debug/examples/probe-5ffda45fa4f0e3aa.d: crates/cachesim/examples/probe.rs

/root/repo/target/debug/examples/probe-5ffda45fa4f0e3aa: crates/cachesim/examples/probe.rs

crates/cachesim/examples/probe.rs:
