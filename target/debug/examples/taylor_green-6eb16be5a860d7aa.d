/root/repo/target/debug/examples/taylor_green-6eb16be5a860d7aa.d: examples/taylor_green.rs

/root/repo/target/debug/examples/taylor_green-6eb16be5a860d7aa: examples/taylor_green.rs

examples/taylor_green.rs:
