/root/repo/target/debug/examples/quickstart-c6ed464a09ecfe3c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c6ed464a09ecfe3c: examples/quickstart.rs

examples/quickstart.rs:
