/root/repo/target/debug/examples/fastened_plate-758460bda253b648.d: examples/fastened_plate.rs Cargo.toml

/root/repo/target/debug/examples/libfastened_plate-758460bda253b648.rmeta: examples/fastened_plate.rs Cargo.toml

examples/fastened_plate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
