/root/repo/target/debug/examples/two_sheets-e1665a10b06684c3.d: examples/two_sheets.rs Cargo.toml

/root/repo/target/debug/examples/libtwo_sheets-e1665a10b06684c3.rmeta: examples/two_sheets.rs Cargo.toml

examples/two_sheets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
