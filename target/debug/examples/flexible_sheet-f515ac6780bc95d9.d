/root/repo/target/debug/examples/flexible_sheet-f515ac6780bc95d9.d: examples/flexible_sheet.rs

/root/repo/target/debug/examples/flexible_sheet-f515ac6780bc95d9: examples/flexible_sheet.rs

examples/flexible_sheet.rs:
