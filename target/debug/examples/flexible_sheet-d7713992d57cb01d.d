/root/repo/target/debug/examples/flexible_sheet-d7713992d57cb01d.d: examples/flexible_sheet.rs Cargo.toml

/root/repo/target/debug/examples/libflexible_sheet-d7713992d57cb01d.rmeta: examples/flexible_sheet.rs Cargo.toml

examples/flexible_sheet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
