/root/repo/target/debug/examples/two_sheets-1b5edc2483fb6f26.d: examples/two_sheets.rs Cargo.toml

/root/repo/target/debug/examples/libtwo_sheets-1b5edc2483fb6f26.rmeta: examples/two_sheets.rs Cargo.toml

examples/two_sheets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
