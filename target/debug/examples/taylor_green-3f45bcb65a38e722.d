/root/repo/target/debug/examples/taylor_green-3f45bcb65a38e722.d: examples/taylor_green.rs Cargo.toml

/root/repo/target/debug/examples/libtaylor_green-3f45bcb65a38e722.rmeta: examples/taylor_green.rs Cargo.toml

examples/taylor_green.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
