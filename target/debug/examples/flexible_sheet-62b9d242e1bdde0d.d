/root/repo/target/debug/examples/flexible_sheet-62b9d242e1bdde0d.d: examples/flexible_sheet.rs Cargo.toml

/root/repo/target/debug/examples/libflexible_sheet-62b9d242e1bdde0d.rmeta: examples/flexible_sheet.rs Cargo.toml

examples/flexible_sheet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
