/root/repo/target/debug/examples/two_sheets-e22f7cfbc120890d.d: examples/two_sheets.rs

/root/repo/target/debug/examples/two_sheets-e22f7cfbc120890d: examples/two_sheets.rs

examples/two_sheets.rs:
