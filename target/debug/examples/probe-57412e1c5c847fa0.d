/root/repo/target/debug/examples/probe-57412e1c5c847fa0.d: crates/cachesim/examples/probe.rs Cargo.toml

/root/repo/target/debug/examples/libprobe-57412e1c5c847fa0.rmeta: crates/cachesim/examples/probe.rs Cargo.toml

crates/cachesim/examples/probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
