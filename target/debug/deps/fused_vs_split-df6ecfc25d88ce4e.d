/root/repo/target/debug/deps/fused_vs_split-df6ecfc25d88ce4e.d: crates/bench/src/bin/fused_vs_split.rs Cargo.toml

/root/repo/target/debug/deps/libfused_vs_split-df6ecfc25d88ce4e.rmeta: crates/bench/src/bin/fused_vs_split.rs Cargo.toml

crates/bench/src/bin/fused_vs_split.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
