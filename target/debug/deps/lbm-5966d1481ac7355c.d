/root/repo/target/debug/deps/lbm-5966d1481ac7355c.d: crates/lbm/src/lib.rs crates/lbm/src/analytic.rs crates/lbm/src/boundary.rs crates/lbm/src/collision.rs crates/lbm/src/cube_grid.rs crates/lbm/src/distribution.rs crates/lbm/src/equilibrium.rs crates/lbm/src/fused.rs crates/lbm/src/grid.rs crates/lbm/src/lattice.rs crates/lbm/src/macroscopic.rs crates/lbm/src/observables.rs crates/lbm/src/stepper.rs crates/lbm/src/streaming.rs crates/lbm/src/units.rs Cargo.toml

/root/repo/target/debug/deps/liblbm-5966d1481ac7355c.rmeta: crates/lbm/src/lib.rs crates/lbm/src/analytic.rs crates/lbm/src/boundary.rs crates/lbm/src/collision.rs crates/lbm/src/cube_grid.rs crates/lbm/src/distribution.rs crates/lbm/src/equilibrium.rs crates/lbm/src/fused.rs crates/lbm/src/grid.rs crates/lbm/src/lattice.rs crates/lbm/src/macroscopic.rs crates/lbm/src/observables.rs crates/lbm/src/stepper.rs crates/lbm/src/streaming.rs crates/lbm/src/units.rs Cargo.toml

crates/lbm/src/lib.rs:
crates/lbm/src/analytic.rs:
crates/lbm/src/boundary.rs:
crates/lbm/src/collision.rs:
crates/lbm/src/cube_grid.rs:
crates/lbm/src/distribution.rs:
crates/lbm/src/equilibrium.rs:
crates/lbm/src/fused.rs:
crates/lbm/src/grid.rs:
crates/lbm/src/lattice.rs:
crates/lbm/src/macroscopic.rs:
crates/lbm/src/observables.rs:
crates/lbm/src/stepper.rs:
crates/lbm/src/streaming.rs:
crates/lbm/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
