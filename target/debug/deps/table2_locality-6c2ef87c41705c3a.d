/root/repo/target/debug/deps/table2_locality-6c2ef87c41705c3a.d: crates/bench/src/bin/table2_locality.rs

/root/repo/target/debug/deps/table2_locality-6c2ef87c41705c3a: crates/bench/src/bin/table2_locality.rs

crates/bench/src/bin/table2_locality.rs:
