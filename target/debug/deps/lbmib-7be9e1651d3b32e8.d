/root/repo/target/debug/deps/lbmib-7be9e1651d3b32e8.d: src/bin/lbmib.rs Cargo.toml

/root/repo/target/debug/deps/liblbmib-7be9e1651d3b32e8.rmeta: src/bin/lbmib.rs Cargo.toml

src/bin/lbmib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
