/root/repo/target/debug/deps/determinism_and_failure-46df380e9bde962c.d: tests/determinism_and_failure.rs

/root/repo/target/debug/deps/determinism_and_failure-46df380e9bde962c: tests/determinism_and_failure.rs

tests/determinism_and_failure.rs:
