/root/repo/target/debug/deps/table2_locality-82aee16786861f44.d: crates/bench/src/bin/table2_locality.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_locality-82aee16786861f44.rmeta: crates/bench/src/bin/table2_locality.rs Cargo.toml

crates/bench/src/bin/table2_locality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
