/root/repo/target/debug/deps/cachesim-961c07911d576f05.d: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/trace.rs

/root/repo/target/debug/deps/cachesim-961c07911d576f05: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/trace.rs

crates/cachesim/src/lib.rs:
crates/cachesim/src/cache.rs:
crates/cachesim/src/hierarchy.rs:
crates/cachesim/src/trace.rs:
