/root/repo/target/debug/deps/racecheck-efbf4ca268d8d4e5.d: crates/core/tests/racecheck.rs Cargo.toml

/root/repo/target/debug/deps/libracecheck-efbf4ca268d8d4e5.rmeta: crates/core/tests/racecheck.rs Cargo.toml

crates/core/tests/racecheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
