/root/repo/target/debug/deps/self_check-572415dcb7691395.d: crates/loom/tests/self_check.rs Cargo.toml

/root/repo/target/debug/deps/libself_check-572415dcb7691395.rmeta: crates/loom/tests/self_check.rs Cargo.toml

crates/loom/tests/self_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
