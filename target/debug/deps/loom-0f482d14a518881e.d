/root/repo/target/debug/deps/loom-0f482d14a518881e.d: crates/core/tests/loom.rs

/root/repo/target/debug/deps/loom-0f482d14a518881e: crates/core/tests/loom.rs

crates/core/tests/loom.rs:
