/root/repo/target/debug/deps/self_check-ffe03c9c0ecb3b93.d: crates/loom/tests/self_check.rs

/root/repo/target/debug/deps/self_check-ffe03c9c0ecb3b93: crates/loom/tests/self_check.rs

crates/loom/tests/self_check.rs:
