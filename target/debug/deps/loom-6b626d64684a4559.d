/root/repo/target/debug/deps/loom-6b626d64684a4559.d: crates/core/tests/loom.rs Cargo.toml

/root/repo/target/debug/deps/libloom-6b626d64684a4559.rmeta: crates/core/tests/loom.rs Cargo.toml

crates/core/tests/loom.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
