/root/repo/target/debug/deps/loom-8bffabf78af637d8.d: crates/loom/src/lib.rs crates/loom/src/rt.rs

/root/repo/target/debug/deps/libloom-8bffabf78af637d8.rmeta: crates/loom/src/lib.rs crates/loom/src/rt.rs

crates/loom/src/lib.rs:
crates/loom/src/rt.rs:
