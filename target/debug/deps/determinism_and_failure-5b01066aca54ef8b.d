/root/repo/target/debug/deps/determinism_and_failure-5b01066aca54ef8b.d: tests/determinism_and_failure.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism_and_failure-5b01066aca54ef8b.rmeta: tests/determinism_and_failure.rs Cargo.toml

tests/determinism_and_failure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
