/root/repo/target/debug/deps/solver_equivalence-6194b50f9ace4ed1.d: tests/solver_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libsolver_equivalence-6194b50f9ace4ed1.rmeta: tests/solver_equivalence.rs Cargo.toml

tests/solver_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
