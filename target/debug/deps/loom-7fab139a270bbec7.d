/root/repo/target/debug/deps/loom-7fab139a270bbec7.d: crates/loom/src/lib.rs crates/loom/src/rt.rs Cargo.toml

/root/repo/target/debug/deps/libloom-7fab139a270bbec7.rmeta: crates/loom/src/lib.rs crates/loom/src/rt.rs Cargo.toml

crates/loom/src/lib.rs:
crates/loom/src/rt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
