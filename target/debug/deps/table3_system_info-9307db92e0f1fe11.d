/root/repo/target/debug/deps/table3_system_info-9307db92e0f1fe11.d: crates/bench/src/bin/table3_system_info.rs

/root/repo/target/debug/deps/table3_system_info-9307db92e0f1fe11: crates/bench/src/bin/table3_system_info.rs

crates/bench/src/bin/table3_system_info.rs:
