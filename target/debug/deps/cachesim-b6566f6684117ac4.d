/root/repo/target/debug/deps/cachesim-b6566f6684117ac4.d: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libcachesim-b6566f6684117ac4.rmeta: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/trace.rs Cargo.toml

crates/cachesim/src/lib.rs:
crates/cachesim/src/cache.rs:
crates/cachesim/src/hierarchy.rs:
crates/cachesim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
