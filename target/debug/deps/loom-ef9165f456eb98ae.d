/root/repo/target/debug/deps/loom-ef9165f456eb98ae.d: crates/loom/src/lib.rs crates/loom/src/rt.rs

/root/repo/target/debug/deps/loom-ef9165f456eb98ae: crates/loom/src/lib.rs crates/loom/src/rt.rs

crates/loom/src/lib.rs:
crates/loom/src/rt.rs:
