/root/repo/target/debug/deps/racecheck-1e897217b4fc3a8e.d: crates/core/tests/racecheck.rs

/root/repo/target/debug/deps/racecheck-1e897217b4fc3a8e: crates/core/tests/racecheck.rs

crates/core/tests/racecheck.rs:
