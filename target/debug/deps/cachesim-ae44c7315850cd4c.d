/root/repo/target/debug/deps/cachesim-ae44c7315850cd4c.d: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libcachesim-ae44c7315850cd4c.rmeta: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/trace.rs Cargo.toml

crates/cachesim/src/lib.rs:
crates/cachesim/src/cache.rs:
crates/cachesim/src/hierarchy.rs:
crates/cachesim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
