/root/repo/target/debug/deps/lbmib-eb5258669f67d2ad.d: src/bin/lbmib.rs

/root/repo/target/debug/deps/lbmib-eb5258669f67d2ad: src/bin/lbmib.rs

src/bin/lbmib.rs:
