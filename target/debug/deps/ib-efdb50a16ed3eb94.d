/root/repo/target/debug/deps/ib-efdb50a16ed3eb94.d: crates/ib/src/lib.rs crates/ib/src/delta.rs crates/ib/src/forces.rs crates/ib/src/interp.rs crates/ib/src/sheet.rs crates/ib/src/spread.rs crates/ib/src/tether.rs

/root/repo/target/debug/deps/libib-efdb50a16ed3eb94.rmeta: crates/ib/src/lib.rs crates/ib/src/delta.rs crates/ib/src/forces.rs crates/ib/src/interp.rs crates/ib/src/sheet.rs crates/ib/src/spread.rs crates/ib/src/tether.rs

crates/ib/src/lib.rs:
crates/ib/src/delta.rs:
crates/ib/src/forces.rs:
crates/ib/src/interp.rs:
crates/ib/src/sheet.rs:
crates/ib/src/spread.rs:
crates/ib/src/tether.rs:
