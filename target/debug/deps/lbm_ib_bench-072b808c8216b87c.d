/root/repo/target/debug/deps/lbm_ib_bench-072b808c8216b87c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblbm_ib_bench-072b808c8216b87c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
