/root/repo/target/debug/deps/full_step-8fffe76ca9fc5030.d: crates/bench/benches/full_step.rs Cargo.toml

/root/repo/target/debug/deps/libfull_step-8fffe76ca9fc5030.rmeta: crates/bench/benches/full_step.rs Cargo.toml

crates/bench/benches/full_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
