/root/repo/target/debug/deps/racecheck-4c2761b8dbd50a5b.d: crates/core/tests/racecheck.rs Cargo.toml

/root/repo/target/debug/deps/libracecheck-4c2761b8dbd50a5b.rmeta: crates/core/tests/racecheck.rs Cargo.toml

crates/core/tests/racecheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
