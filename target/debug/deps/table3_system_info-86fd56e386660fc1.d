/root/repo/target/debug/deps/table3_system_info-86fd56e386660fc1.d: crates/bench/src/bin/table3_system_info.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_system_info-86fd56e386660fc1.rmeta: crates/bench/src/bin/table3_system_info.rs Cargo.toml

crates/bench/src/bin/table3_system_info.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
