/root/repo/target/debug/deps/lbm_ib_bench-78278f5aa70c20e4.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblbm_ib_bench-78278f5aa70c20e4.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
