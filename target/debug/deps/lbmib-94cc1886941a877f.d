/root/repo/target/debug/deps/lbmib-94cc1886941a877f.d: src/bin/lbmib.rs Cargo.toml

/root/repo/target/debug/deps/liblbmib-94cc1886941a877f.rmeta: src/bin/lbmib.rs Cargo.toml

src/bin/lbmib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
