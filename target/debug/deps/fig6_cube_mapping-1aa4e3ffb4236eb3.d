/root/repo/target/debug/deps/fig6_cube_mapping-1aa4e3ffb4236eb3.d: crates/bench/src/bin/fig6_cube_mapping.rs

/root/repo/target/debug/deps/libfig6_cube_mapping-1aa4e3ffb4236eb3.rmeta: crates/bench/src/bin/fig6_cube_mapping.rs

crates/bench/src/bin/fig6_cube_mapping.rs:
