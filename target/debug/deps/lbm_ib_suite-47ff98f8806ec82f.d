/root/repo/target/debug/deps/lbm_ib_suite-47ff98f8806ec82f.d: src/lib.rs

/root/repo/target/debug/deps/liblbm_ib_suite-47ff98f8806ec82f.rlib: src/lib.rs

/root/repo/target/debug/deps/liblbm_ib_suite-47ff98f8806ec82f.rmeta: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
