/root/repo/target/debug/deps/fig8_weak_scaling-420f0e40b4b27d5f.d: crates/bench/src/bin/fig8_weak_scaling.rs

/root/repo/target/debug/deps/libfig8_weak_scaling-420f0e40b4b27d5f.rmeta: crates/bench/src/bin/fig8_weak_scaling.rs

crates/bench/src/bin/fig8_weak_scaling.rs:
