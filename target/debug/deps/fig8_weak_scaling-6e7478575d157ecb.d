/root/repo/target/debug/deps/fig8_weak_scaling-6e7478575d157ecb.d: crates/bench/src/bin/fig8_weak_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_weak_scaling-6e7478575d157ecb.rmeta: crates/bench/src/bin/fig8_weak_scaling.rs Cargo.toml

crates/bench/src/bin/fig8_weak_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
