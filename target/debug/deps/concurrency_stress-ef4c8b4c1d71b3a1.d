/root/repo/target/debug/deps/concurrency_stress-ef4c8b4c1d71b3a1.d: crates/core/tests/concurrency_stress.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency_stress-ef4c8b4c1d71b3a1.rmeta: crates/core/tests/concurrency_stress.rs Cargo.toml

crates/core/tests/concurrency_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
