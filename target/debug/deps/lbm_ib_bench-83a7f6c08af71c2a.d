/root/repo/target/debug/deps/lbm_ib_bench-83a7f6c08af71c2a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblbm_ib_bench-83a7f6c08af71c2a.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblbm_ib_bench-83a7f6c08af71c2a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
