/root/repo/target/debug/deps/table1_kernel_breakdown-fed306816578b49c.d: crates/bench/src/bin/table1_kernel_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_kernel_breakdown-fed306816578b49c.rmeta: crates/bench/src/bin/table1_kernel_breakdown.rs Cargo.toml

crates/bench/src/bin/table1_kernel_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
