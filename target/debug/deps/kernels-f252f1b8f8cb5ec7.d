/root/repo/target/debug/deps/kernels-f252f1b8f8cb5ec7.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-f252f1b8f8cb5ec7.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
