/root/repo/target/debug/deps/cachesim-5c47e4deb5b53b43.d: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/trace.rs

/root/repo/target/debug/deps/libcachesim-5c47e4deb5b53b43.rlib: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/trace.rs

/root/repo/target/debug/deps/libcachesim-5c47e4deb5b53b43.rmeta: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/trace.rs

crates/cachesim/src/lib.rs:
crates/cachesim/src/cache.rs:
crates/cachesim/src/hierarchy.rs:
crates/cachesim/src/trace.rs:
