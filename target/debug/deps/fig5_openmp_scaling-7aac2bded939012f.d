/root/repo/target/debug/deps/fig5_openmp_scaling-7aac2bded939012f.d: crates/bench/src/bin/fig5_openmp_scaling.rs

/root/repo/target/debug/deps/libfig5_openmp_scaling-7aac2bded939012f.rmeta: crates/bench/src/bin/fig5_openmp_scaling.rs

crates/bench/src/bin/fig5_openmp_scaling.rs:
