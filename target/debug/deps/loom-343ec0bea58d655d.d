/root/repo/target/debug/deps/loom-343ec0bea58d655d.d: crates/loom/src/lib.rs crates/loom/src/rt.rs

/root/repo/target/debug/deps/libloom-343ec0bea58d655d.rmeta: crates/loom/src/lib.rs crates/loom/src/rt.rs

crates/loom/src/lib.rs:
crates/loom/src/rt.rs:
