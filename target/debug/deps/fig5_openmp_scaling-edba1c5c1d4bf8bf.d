/root/repo/target/debug/deps/fig5_openmp_scaling-edba1c5c1d4bf8bf.d: crates/bench/src/bin/fig5_openmp_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_openmp_scaling-edba1c5c1d4bf8bf.rmeta: crates/bench/src/bin/fig5_openmp_scaling.rs Cargo.toml

crates/bench/src/bin/fig5_openmp_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
