/root/repo/target/debug/deps/fig8_weak_scaling-ea78ddaf52bc406d.d: crates/bench/src/bin/fig8_weak_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_weak_scaling-ea78ddaf52bc406d.rmeta: crates/bench/src/bin/fig8_weak_scaling.rs Cargo.toml

crates/bench/src/bin/fig8_weak_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
