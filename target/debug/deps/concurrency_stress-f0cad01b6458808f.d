/root/repo/target/debug/deps/concurrency_stress-f0cad01b6458808f.d: crates/core/tests/concurrency_stress.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency_stress-f0cad01b6458808f.rmeta: crates/core/tests/concurrency_stress.rs Cargo.toml

crates/core/tests/concurrency_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
