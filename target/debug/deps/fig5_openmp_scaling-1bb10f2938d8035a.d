/root/repo/target/debug/deps/fig5_openmp_scaling-1bb10f2938d8035a.d: crates/bench/src/bin/fig5_openmp_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_openmp_scaling-1bb10f2938d8035a.rmeta: crates/bench/src/bin/fig5_openmp_scaling.rs Cargo.toml

crates/bench/src/bin/fig5_openmp_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
