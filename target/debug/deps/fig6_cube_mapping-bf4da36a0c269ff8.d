/root/repo/target/debug/deps/fig6_cube_mapping-bf4da36a0c269ff8.d: crates/bench/src/bin/fig6_cube_mapping.rs

/root/repo/target/debug/deps/fig6_cube_mapping-bf4da36a0c269ff8: crates/bench/src/bin/fig6_cube_mapping.rs

crates/bench/src/bin/fig6_cube_mapping.rs:
