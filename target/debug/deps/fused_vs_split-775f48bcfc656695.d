/root/repo/target/debug/deps/fused_vs_split-775f48bcfc656695.d: crates/bench/benches/fused_vs_split.rs Cargo.toml

/root/repo/target/debug/deps/libfused_vs_split-775f48bcfc656695.rmeta: crates/bench/benches/fused_vs_split.rs Cargo.toml

crates/bench/benches/fused_vs_split.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
