/root/repo/target/debug/deps/moving_wall-04205d7b6becc56e.d: tests/moving_wall.rs

/root/repo/target/debug/deps/moving_wall-04205d7b6becc56e: tests/moving_wall.rs

tests/moving_wall.rs:
