/root/repo/target/debug/deps/fig8_weak_scaling-7480d81400dac804.d: crates/bench/src/bin/fig8_weak_scaling.rs

/root/repo/target/debug/deps/fig8_weak_scaling-7480d81400dac804: crates/bench/src/bin/fig8_weak_scaling.rs

crates/bench/src/bin/fig8_weak_scaling.rs:
