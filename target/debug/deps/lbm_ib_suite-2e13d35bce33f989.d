/root/repo/target/debug/deps/lbm_ib_suite-2e13d35bce33f989.d: src/lib.rs

/root/repo/target/debug/deps/lbm_ib_suite-2e13d35bce33f989: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
