/root/repo/target/debug/deps/lbm_ib_suite-83df776c06d4ca8c.d: src/lib.rs

/root/repo/target/debug/deps/liblbm_ib_suite-83df776c06d4ca8c.rmeta: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
