/root/repo/target/debug/deps/solver_equivalence-aa4f96826f3cd1a3.d: tests/solver_equivalence.rs

/root/repo/target/debug/deps/solver_equivalence-aa4f96826f3cd1a3: tests/solver_equivalence.rs

tests/solver_equivalence.rs:
