/root/repo/target/debug/deps/proptest-3856c54773feaefa.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-3856c54773feaefa: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
