/root/repo/target/debug/deps/table3_system_info-6d485a06c0751228.d: crates/bench/src/bin/table3_system_info.rs

/root/repo/target/debug/deps/libtable3_system_info-6d485a06c0751228.rmeta: crates/bench/src/bin/table3_system_info.rs

crates/bench/src/bin/table3_system_info.rs:
