/root/repo/target/debug/deps/multi_structure-f12bd999c1c16a5e.d: tests/multi_structure.rs

/root/repo/target/debug/deps/multi_structure-f12bd999c1c16a5e: tests/multi_structure.rs

tests/multi_structure.rs:
