/root/repo/target/debug/deps/proptest-1c1921aa09e5a835.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-1c1921aa09e5a835.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
