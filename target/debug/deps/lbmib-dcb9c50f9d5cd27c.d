/root/repo/target/debug/deps/lbmib-dcb9c50f9d5cd27c.d: src/bin/lbmib.rs Cargo.toml

/root/repo/target/debug/deps/liblbmib-dcb9c50f9d5cd27c.rmeta: src/bin/lbmib.rs Cargo.toml

src/bin/lbmib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
