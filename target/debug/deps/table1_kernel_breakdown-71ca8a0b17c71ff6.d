/root/repo/target/debug/deps/table1_kernel_breakdown-71ca8a0b17c71ff6.d: crates/bench/src/bin/table1_kernel_breakdown.rs

/root/repo/target/debug/deps/libtable1_kernel_breakdown-71ca8a0b17c71ff6.rmeta: crates/bench/src/bin/table1_kernel_breakdown.rs

crates/bench/src/bin/table1_kernel_breakdown.rs:
