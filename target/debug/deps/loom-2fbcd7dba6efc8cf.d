/root/repo/target/debug/deps/loom-2fbcd7dba6efc8cf.d: crates/core/tests/loom.rs Cargo.toml

/root/repo/target/debug/deps/libloom-2fbcd7dba6efc8cf.rmeta: crates/core/tests/loom.rs Cargo.toml

crates/core/tests/loom.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
