/root/repo/target/debug/deps/lbm_ib_bench-786e737457170fcf.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/lbm_ib_bench-786e737457170fcf: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
