/root/repo/target/debug/deps/lbmib-47cd44a0c8079c82.d: src/bin/lbmib.rs

/root/repo/target/debug/deps/liblbmib-47cd44a0c8079c82.rmeta: src/bin/lbmib.rs

src/bin/lbmib.rs:
