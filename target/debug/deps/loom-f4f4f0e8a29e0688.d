/root/repo/target/debug/deps/loom-f4f4f0e8a29e0688.d: crates/loom/src/lib.rs crates/loom/src/rt.rs

/root/repo/target/debug/deps/libloom-f4f4f0e8a29e0688.rlib: crates/loom/src/lib.rs crates/loom/src/rt.rs

/root/repo/target/debug/deps/libloom-f4f4f0e8a29e0688.rmeta: crates/loom/src/lib.rs crates/loom/src/rt.rs

crates/loom/src/lib.rs:
crates/loom/src/rt.rs:
