/root/repo/target/debug/deps/loom-c521cf6e3c3d7521.d: crates/loom/src/lib.rs crates/loom/src/rt.rs Cargo.toml

/root/repo/target/debug/deps/libloom-c521cf6e3c3d7521.rmeta: crates/loom/src/lib.rs crates/loom/src/rt.rs Cargo.toml

crates/loom/src/lib.rs:
crates/loom/src/rt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
