/root/repo/target/debug/deps/fused_vs_split-34a36c7a1802844b.d: crates/bench/benches/fused_vs_split.rs Cargo.toml

/root/repo/target/debug/deps/libfused_vs_split-34a36c7a1802844b.rmeta: crates/bench/benches/fused_vs_split.rs Cargo.toml

crates/bench/benches/fused_vs_split.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
