/root/repo/target/debug/deps/ib-639e51c9f256fa99.d: crates/ib/src/lib.rs crates/ib/src/delta.rs crates/ib/src/forces.rs crates/ib/src/interp.rs crates/ib/src/sheet.rs crates/ib/src/spread.rs crates/ib/src/tether.rs

/root/repo/target/debug/deps/ib-639e51c9f256fa99: crates/ib/src/lib.rs crates/ib/src/delta.rs crates/ib/src/forces.rs crates/ib/src/interp.rs crates/ib/src/sheet.rs crates/ib/src/spread.rs crates/ib/src/tether.rs

crates/ib/src/lib.rs:
crates/ib/src/delta.rs:
crates/ib/src/forces.rs:
crates/ib/src/interp.rs:
crates/ib/src/sheet.rs:
crates/ib/src/spread.rs:
crates/ib/src/tether.rs:
