/root/repo/target/debug/deps/concurrency_stress-d7ecf221fbc2c315.d: crates/core/tests/concurrency_stress.rs

/root/repo/target/debug/deps/concurrency_stress-d7ecf221fbc2c315: crates/core/tests/concurrency_stress.rs

crates/core/tests/concurrency_stress.rs:
