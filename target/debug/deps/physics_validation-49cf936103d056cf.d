/root/repo/target/debug/deps/physics_validation-49cf936103d056cf.d: tests/physics_validation.rs

/root/repo/target/debug/deps/physics_validation-49cf936103d056cf: tests/physics_validation.rs

tests/physics_validation.rs:
