/root/repo/target/debug/deps/fused_vs_split-07db46b078ae2f01.d: crates/bench/src/bin/fused_vs_split.rs Cargo.toml

/root/repo/target/debug/deps/libfused_vs_split-07db46b078ae2f01.rmeta: crates/bench/src/bin/fused_vs_split.rs Cargo.toml

crates/bench/src/bin/fused_vs_split.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
