/root/repo/target/debug/deps/moving_wall-322b34e8015c1732.d: tests/moving_wall.rs Cargo.toml

/root/repo/target/debug/deps/libmoving_wall-322b34e8015c1732.rmeta: tests/moving_wall.rs Cargo.toml

tests/moving_wall.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
