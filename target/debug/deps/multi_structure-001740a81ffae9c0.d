/root/repo/target/debug/deps/multi_structure-001740a81ffae9c0.d: tests/multi_structure.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_structure-001740a81ffae9c0.rmeta: tests/multi_structure.rs Cargo.toml

tests/multi_structure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
