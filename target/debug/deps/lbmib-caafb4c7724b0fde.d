/root/repo/target/debug/deps/lbmib-caafb4c7724b0fde.d: src/bin/lbmib.rs Cargo.toml

/root/repo/target/debug/deps/liblbmib-caafb4c7724b0fde.rmeta: src/bin/lbmib.rs Cargo.toml

src/bin/lbmib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
