/root/repo/target/debug/deps/lbmib-1b9073bb60b48357.d: src/bin/lbmib.rs

/root/repo/target/debug/deps/lbmib-1b9073bb60b48357: src/bin/lbmib.rs

src/bin/lbmib.rs:
