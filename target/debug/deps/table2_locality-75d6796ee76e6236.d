/root/repo/target/debug/deps/table2_locality-75d6796ee76e6236.d: crates/bench/src/bin/table2_locality.rs

/root/repo/target/debug/deps/libtable2_locality-75d6796ee76e6236.rmeta: crates/bench/src/bin/table2_locality.rs

crates/bench/src/bin/table2_locality.rs:
