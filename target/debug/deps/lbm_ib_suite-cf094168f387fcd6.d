/root/repo/target/debug/deps/lbm_ib_suite-cf094168f387fcd6.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblbm_ib_suite-cf094168f387fcd6.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CARGO_PKG_VERSION=0.1.0
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
