/root/repo/target/debug/deps/ib-e783fdf6aab4538d.d: crates/ib/src/lib.rs crates/ib/src/delta.rs crates/ib/src/forces.rs crates/ib/src/interp.rs crates/ib/src/sheet.rs crates/ib/src/spread.rs crates/ib/src/tether.rs

/root/repo/target/debug/deps/libib-e783fdf6aab4538d.rmeta: crates/ib/src/lib.rs crates/ib/src/delta.rs crates/ib/src/forces.rs crates/ib/src/interp.rs crates/ib/src/sheet.rs crates/ib/src/spread.rs crates/ib/src/tether.rs

crates/ib/src/lib.rs:
crates/ib/src/delta.rs:
crates/ib/src/forces.rs:
crates/ib/src/interp.rs:
crates/ib/src/sheet.rs:
crates/ib/src/spread.rs:
crates/ib/src/tether.rs:
