/root/repo/target/debug/deps/fig6_cube_mapping-e4da76d9030d246a.d: crates/bench/src/bin/fig6_cube_mapping.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_cube_mapping-e4da76d9030d246a.rmeta: crates/bench/src/bin/fig6_cube_mapping.rs Cargo.toml

crates/bench/src/bin/fig6_cube_mapping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
