/root/repo/target/debug/deps/lbm_ib-0bbdd6eeee2dcf1b.d: crates/core/src/lib.rs crates/core/src/atomicf64.rs crates/core/src/barrier.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/cube.rs crates/core/src/diagnostics.rs crates/core/src/distributed.rs crates/core/src/kernels.rs crates/core/src/openmp.rs crates/core/src/output.rs crates/core/src/profiling.rs crates/core/src/racecheck.rs crates/core/src/sequential.rs crates/core/src/sharedgrid.rs crates/core/src/solver.rs crates/core/src/state.rs crates/core/src/sync_shim.rs crates/core/src/threadpool.rs crates/core/src/tuning.rs crates/core/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/liblbm_ib-0bbdd6eeee2dcf1b.rmeta: crates/core/src/lib.rs crates/core/src/atomicf64.rs crates/core/src/barrier.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/cube.rs crates/core/src/diagnostics.rs crates/core/src/distributed.rs crates/core/src/kernels.rs crates/core/src/openmp.rs crates/core/src/output.rs crates/core/src/profiling.rs crates/core/src/racecheck.rs crates/core/src/sequential.rs crates/core/src/sharedgrid.rs crates/core/src/solver.rs crates/core/src/state.rs crates/core/src/sync_shim.rs crates/core/src/threadpool.rs crates/core/src/tuning.rs crates/core/src/verify.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/atomicf64.rs:
crates/core/src/barrier.rs:
crates/core/src/checkpoint.rs:
crates/core/src/config.rs:
crates/core/src/cube.rs:
crates/core/src/diagnostics.rs:
crates/core/src/distributed.rs:
crates/core/src/kernels.rs:
crates/core/src/openmp.rs:
crates/core/src/output.rs:
crates/core/src/profiling.rs:
crates/core/src/racecheck.rs:
crates/core/src/sequential.rs:
crates/core/src/sharedgrid.rs:
crates/core/src/solver.rs:
crates/core/src/state.rs:
crates/core/src/sync_shim.rs:
crates/core/src/threadpool.rs:
crates/core/src/tuning.rs:
crates/core/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
