/root/repo/target/debug/deps/cachesim-71382f8ae64be4b5.d: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/trace.rs

/root/repo/target/debug/deps/libcachesim-71382f8ae64be4b5.rmeta: crates/cachesim/src/lib.rs crates/cachesim/src/cache.rs crates/cachesim/src/hierarchy.rs crates/cachesim/src/trace.rs

crates/cachesim/src/lib.rs:
crates/cachesim/src/cache.rs:
crates/cachesim/src/hierarchy.rs:
crates/cachesim/src/trace.rs:
