/root/repo/target/debug/deps/ib-353c1ce6e6087e2a.d: crates/ib/src/lib.rs crates/ib/src/delta.rs crates/ib/src/forces.rs crates/ib/src/interp.rs crates/ib/src/sheet.rs crates/ib/src/spread.rs crates/ib/src/tether.rs

/root/repo/target/debug/deps/libib-353c1ce6e6087e2a.rlib: crates/ib/src/lib.rs crates/ib/src/delta.rs crates/ib/src/forces.rs crates/ib/src/interp.rs crates/ib/src/sheet.rs crates/ib/src/spread.rs crates/ib/src/tether.rs

/root/repo/target/debug/deps/libib-353c1ce6e6087e2a.rmeta: crates/ib/src/lib.rs crates/ib/src/delta.rs crates/ib/src/forces.rs crates/ib/src/interp.rs crates/ib/src/sheet.rs crates/ib/src/spread.rs crates/ib/src/tether.rs

crates/ib/src/lib.rs:
crates/ib/src/delta.rs:
crates/ib/src/forces.rs:
crates/ib/src/interp.rs:
crates/ib/src/sheet.rs:
crates/ib/src/spread.rs:
crates/ib/src/tether.rs:
