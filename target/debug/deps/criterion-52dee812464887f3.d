/root/repo/target/debug/deps/criterion-52dee812464887f3.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-52dee812464887f3.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
