/root/repo/target/debug/deps/physics_validation-28bbce3964aa07a3.d: tests/physics_validation.rs Cargo.toml

/root/repo/target/debug/deps/libphysics_validation-28bbce3964aa07a3.rmeta: tests/physics_validation.rs Cargo.toml

tests/physics_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
