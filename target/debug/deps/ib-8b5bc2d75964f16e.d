/root/repo/target/debug/deps/ib-8b5bc2d75964f16e.d: crates/ib/src/lib.rs crates/ib/src/delta.rs crates/ib/src/forces.rs crates/ib/src/interp.rs crates/ib/src/sheet.rs crates/ib/src/spread.rs crates/ib/src/tether.rs Cargo.toml

/root/repo/target/debug/deps/libib-8b5bc2d75964f16e.rmeta: crates/ib/src/lib.rs crates/ib/src/delta.rs crates/ib/src/forces.rs crates/ib/src/interp.rs crates/ib/src/sheet.rs crates/ib/src/spread.rs crates/ib/src/tether.rs Cargo.toml

crates/ib/src/lib.rs:
crates/ib/src/delta.rs:
crates/ib/src/forces.rs:
crates/ib/src/interp.rs:
crates/ib/src/sheet.rs:
crates/ib/src/spread.rs:
crates/ib/src/tether.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
