/root/repo/target/debug/deps/table1_kernel_breakdown-2e590050d0b434cc.d: crates/bench/src/bin/table1_kernel_breakdown.rs

/root/repo/target/debug/deps/table1_kernel_breakdown-2e590050d0b434cc: crates/bench/src/bin/table1_kernel_breakdown.rs

crates/bench/src/bin/table1_kernel_breakdown.rs:
