/root/repo/target/debug/deps/fig5_openmp_scaling-9505c51196ed78be.d: crates/bench/src/bin/fig5_openmp_scaling.rs

/root/repo/target/debug/deps/fig5_openmp_scaling-9505c51196ed78be: crates/bench/src/bin/fig5_openmp_scaling.rs

crates/bench/src/bin/fig5_openmp_scaling.rs:
