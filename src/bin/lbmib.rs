//! `lbmib` — command-line driver for the LBM-IB library.
//!
//! Runs a coupled fluid–structure simulation from flags, with any of the
//! four solvers behind the [`lbm_ib::Solver`] trait, periodic progress
//! reports, and optional CSV/VTK output.
//!
//! ```text
//! lbmib [--solver seq|omp|cube|dist] [--plan split|fused]
//!       [--preset quick|table1|fig8] [--cores N]
//!       [--steps N] [--threads N] [--nx N --ny N --nz N] [--tau T]
//!       [--gx G] [--sheet N] [--sheet-extent E] [--tether none|center|edge]
//!       [--cube-k K] [--out DIR] [--report-every N] [--profile]
//!       [--metrics FILE] [--watchdog-every N]
//!       [--checkpoint-every N] [--checkpoint-path FILE]
//!       [--halo-timeout-ms MS]
//!       [--supervise] [--retry-limit N] [--backoff-ms MS]
//!       [--max-backoff-ms MS] [--degrade on|off]
//! ```
//!
//! Examples:
//! ```text
//! lbmib --preset quick --solver cube --threads 4 --steps 200 --profile
//! lbmib --nx 64 --ny 32 --nz 32 --sheet 20 --steps 500 --out run1/
//! lbmib --preset quick --autotune            # pick the best cube edge first
//! lbmib --preset quick --steps 500 --save run.ckpt
//! lbmib --resume run.ckpt --steps 500        # continue bit-exactly
//! lbmib --preset quick --metrics run.json    # per-thread kernel telemetry
//! lbmib --preset quick --watchdog-every 16   # in-solver stability checks
//! lbmib --steps 600 --checkpoint-every 50 --checkpoint-path run.ckpt
//! lbmib --resume run.ckpt --steps 600 --checkpoint-every 50 \
//!       --checkpoint-path run.ckpt           # survive kill -9 mid-run
//! lbmib --solver dist --halo-timeout-ms 5000 # bound halo-exchange waits
//! lbmib --preset quick --supervise           # self-healing run
//! lbmib --supervise --retry-limit 5 --backoff-ms 250 --degrade off
//! lbmib --supervise --checkpoint-every 50 --checkpoint-path run.ckpt \
//!       --metrics run.json                   # disk rollback + recovery JSON
//! ```
//!
//! Periodic checkpoints are crash-consistent: each save goes to a temp
//! file, is fsynced, then atomically renamed over `--checkpoint-path`,
//! with the previous good save rotated to `<path>.prev`. `--resume` falls
//! back to `.prev` automatically if the primary file is torn or corrupt,
//! and a resumed run reproduces the uninterrupted run bit for bit.
//!
//! `--supervise` wraps the chosen solver in [`lbm_ib::Supervisor`]: typed
//! solver failures roll the run back to the last good chunk boundary
//! (through the on-disk checkpoint when `--checkpoint-path` is set) and
//! retry with deterministic exponential backoff; when the same failure
//! keeps recurring the run degrades gracefully — a panicking cube worker
//! is quarantined by shrinking the thread mesh, then the backend falls
//! back `dist → cube → omp → seq`. Every intervention lands in the
//! `recovery` block of the `--metrics` JSON.
//!
//! Builds with `--features faultinject` additionally accept
//! `--fault-panic T:S:PHASE`, `--fault-nan-step N`,
//! `--fault-halo-drop RANK` and `--fault-sticky` to arm failpoints from
//! the command line — the recovery smoke jobs use these to prove the
//! supervisor heals a mid-run fault.

use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;

use lbm_ib::config::KernelPlan;
use lbm_ib::diagnostics::diagnostics;
use lbm_ib::output::{append_trajectory_row, dump_sheet_snapshot, trajectory_header};
use lbm_ib::{build_solver, SheetConfig, SimState, SimulationConfig, Solver, TetherConfig};
use lbm_ib_bench::Args;

/// Prints `error: <msg>` to stderr and exits with status 1.
fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// Arms the fault-injection failpoints requested on the command line and
/// returns the guard that keeps them live for the whole run.
#[cfg(feature = "faultinject")]
fn arm_faults(args: &Args) -> Option<lbm_ib::faultinject::Armed> {
    use lbm_ib::faultinject::{FaultPlan, HaloFault, PanicAt};
    let mut plan = FaultPlan::default();
    if let Some(spec) = args.get::<String>("fault-panic") {
        let parts: Vec<&str> = spec.split(':').collect();
        let [thread, step, phase] = parts[..] else {
            die(format!(
                "--fault-panic expects THREAD:STEP:PHASE, got '{spec}'"
            ));
        };
        let phase = lbm_ib::cube::WORKER_PHASES
            .into_iter()
            .find(|p| *p == phase)
            .unwrap_or_else(|| {
                die(format!(
                    "unknown phase '{phase}' (expected one of {:?})",
                    lbm_ib::cube::WORKER_PHASES
                ))
            });
        plan.panic_at = Some(PanicAt {
            thread: thread
                .parse()
                .unwrap_or_else(|e| die(format!("--fault-panic thread: {e}"))),
            step: step
                .parse()
                .unwrap_or_else(|e| die(format!("--fault-panic step: {e}"))),
            phase,
        });
    }
    plan.nan_at_step = args.get("fault-nan-step");
    if let Some(rank) = args.get::<usize>("fault-halo-drop") {
        plan.halo = Some(HaloFault::DropSend { from: rank });
    }
    plan.sticky = args.flag("fault-sticky");
    (plan != FaultPlan::default()).then(|| lbm_ib::faultinject::arm(plan))
}

fn build_config(args: &Args) -> SimulationConfig {
    let mut config = match args.get::<String>("preset").as_deref() {
        Some("table1") => SimulationConfig::table1(),
        Some("fig8") => SimulationConfig::fig8(args.get_or("cores", 1)),
        _ => SimulationConfig::quick_test(),
    };
    if let Some(nx) = args.get("nx") {
        config.nx = nx;
    }
    if let Some(ny) = args.get("ny") {
        config.ny = ny;
    }
    if let Some(nz) = args.get("nz") {
        config.nz = nz;
    }
    if let Some(tau) = args.get("tau") {
        config.tau = tau;
    }
    if let Some(gx) = args.get("gx") {
        config.body_force = [gx, 0.0, 0.0];
    }
    if let Some(k) = args.get("cube-k") {
        config.cube_k = k;
    }
    if args.get::<usize>("nx").is_some() || args.get::<usize>("sheet").is_some() {
        // Re-centre the sheet for the chosen grid.
        let n = args.get_or("sheet", config.sheet.num_fibers);
        let extent = args.get_or("sheet-extent", (config.ny as f64 / 3.0).max(2.0));
        config.sheet = SheetConfig::square(
            n,
            extent,
            [
                config.nx as f64 / 4.0,
                config.ny as f64 / 2.0,
                config.nz as f64 / 2.0,
            ],
        );
    }
    config.plan = match args.get::<String>("plan").as_deref() {
        Some("fused") => KernelPlan::Fused,
        Some("split") | None => KernelPlan::Split,
        Some(other) => {
            eprintln!("error: unknown plan '{other}' (expected split|fused)");
            std::process::exit(1);
        }
    };
    config.sheet.tether = match args.get::<String>("tether").as_deref() {
        Some("center") => TetherConfig::CenterRegion {
            radius: args.get_or("tether-radius", 3.0),
            stiffness: args.get_or("tether-stiffness", 0.1),
        },
        Some("edge") => TetherConfig::LeadingEdge {
            stiffness: args.get_or("tether-stiffness", 0.1),
        },
        Some("none") => TetherConfig::None,
        _ => config.sheet.tether,
    };
    config
}

fn main() {
    let args = Args::parse();
    if args.flag("help") {
        println!("see the module docs at the top of src/bin/lbmib.rs for usage");
        return;
    }

    // Resume from a checkpoint (falling back to the rotated `.prev` save
    // if the primary is torn or corrupt), or build a fresh configuration.
    let resumed_state = args.get::<String>("resume").map(|p| {
        let (state, source) = lbm_ib::checkpoint::resume(std::path::Path::new(&p))
            .unwrap_or_else(|e| die(format!("cannot resume from {p}: {e}")));
        if source == lbm_ib::ResumeSource::Fallback {
            eprintln!("warning: {p} was unreadable; resumed from rotated fallback {p}.prev");
        }
        state
    });
    let mut config = match &resumed_state {
        Some(s) => s.config,
        None => build_config(&args),
    };
    if let Err(e) = config.validate() {
        die(e);
    }

    let steps: u64 = args.get_or("steps", 100);
    let threads: usize = args.get_or(
        "threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let solver_name = args.get_or("solver", "cube".to_string());

    if args.flag("autotune") && solver_name == "cube" {
        let report =
            lbm_ib::tuning::autotune_cube_k(config, threads, None, 3).unwrap_or_else(|e| die(e));
        println!("auto-tuning cube edge:\n{}", report.table());
        config.cube_k = report.best_k().unwrap_or(config.cube_k);
        println!("selected cube_k = {}", config.cube_k);
    }

    println!(
        "lbmib: {}x{}x{} fluid, {}x{} sheet, tau {}, solver {}, plan {:?}, {} threads, {} steps",
        config.nx,
        config.ny,
        config.nz,
        config.sheet.num_fibers,
        config.sheet.nodes_per_fiber,
        config.tau,
        solver_name,
        config.plan,
        if solver_name == "seq" { 1 } else { threads },
        steps
    );

    let metrics_path: Option<PathBuf> = args.get::<String>("metrics").map(PathBuf::from);
    let mut initial_state = match resumed_state {
        Some(s) => s,
        None => SimState::try_new(config).unwrap_or_else(|e| die(e)),
    };
    initial_state.config.plan = config.plan; // resumed checkpoints default to Split
    if let Some(every) = args.get::<u64>("watchdog-every") {
        initial_state.config.watchdog = Some(lbm_ib::WatchdogConfig { check_every: every });
    }
    if let Some(ms) = args.get::<u64>("halo-timeout-ms") {
        initial_state.config.halo_timeout = Some(std::time::Duration::from_millis(ms));
    }
    if initial_state.step > 0 {
        println!("resumed at step {}", initial_state.step);
    }

    #[cfg(feature = "faultinject")]
    let _armed = arm_faults(&args);

    // Periodic crash-consistent checkpointing. `--checkpoint-every` alone
    // saves to `lbmib.ckpt`; `--checkpoint-path` alone saves once, at the
    // end of the run.
    let ckpt_every: Option<u64> = args.get("checkpoint-every");
    let ckpt_path: Option<String> = args.get("checkpoint-path");
    let ckpt = match (ckpt_every, ckpt_path) {
        (Some(e), p) => Some((
            e.max(1),
            PathBuf::from(p.unwrap_or_else(|| "lbmib.ckpt".to_string())),
        )),
        (None, Some(p)) => Some((steps.max(1), PathBuf::from(p))),
        (None, None) => None,
    };

    let supervise = args.flag("supervise");
    let mut solver: Box<dyn Solver> = if supervise {
        let policy = lbm_ib::RecoveryPolicy {
            retry_limit: args.get_or("retry-limit", 3),
            backoff: std::time::Duration::from_millis(args.get_or("backoff-ms", 100)),
            max_backoff: std::time::Duration::from_millis(args.get_or("max-backoff-ms", 5000)),
            degrade: match args.get::<String>("degrade").as_deref() {
                Some("off") => false,
                Some("on") | None => true,
                Some(other) => die(format!("unknown --degrade '{other}' (expected on|off)")),
            },
            // The supervisor owns the checkpoint file: it commits a save
            // after every successful chunk and rolls back through it.
            checkpoint: ckpt.as_ref().map(|(_, path)| path.clone()),
        };
        Box::new(
            lbm_ib::Supervisor::new(&solver_name, initial_state, threads, policy)
                .unwrap_or_else(|e| die(e)),
        )
    } else {
        build_solver(&solver_name, initial_state, threads).unwrap_or_else(|e| die(e))
    };
    if metrics_path.is_some() {
        solver.set_telemetry(true);
    }

    let out_dir: Option<PathBuf> = args.get::<String>("out").map(PathBuf::from);
    let mut traj = out_dir.as_ref().map(|dir| {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| die(format!("create output dir: {e}")));
        let mut w = BufWriter::new(
            File::create(dir.join("trajectory.csv"))
                .unwrap_or_else(|e| die(format!("create trajectory.csv: {e}"))),
        );
        trajectory_header(&mut w).unwrap_or_else(|e| die(format!("write trajectory.csv: {e}")));
        w
    });

    let report_every: u64 = args.get_or("report-every", (steps / 10).max(1));
    let mut report = lbm_ib::RunReport::default();
    let mut snapshot = 0usize;
    let start_step = solver.to_state().step;
    let initial_mass = diagnostics(&solver.to_state()).mass;
    while report.steps < steps {
        // Advance to whichever boundary comes first: the next progress
        // report, the next checkpoint, or the end of the run.
        let mut n = report_every.min(steps - report.steps);
        if let Some((every, _)) = &ckpt {
            let abs = start_step + report.steps;
            let to_ckpt = every - abs % every;
            n = n.min(to_ckpt);
        }
        let chunk = solver.run(n).unwrap_or_else(|e| {
            if matches!(e, lbm_ib::SolverError::Unstable { .. }) {
                eprintln!("UNSTABLE: {e}");
                std::process::exit(2);
            }
            die(e);
        });
        report.merge(chunk);
        let state = solver.to_state();
        if let Some((every, path)) = &ckpt {
            // Under --supervise the supervisor already committed a save at
            // this chunk boundary; a second save here would only rotate
            // the identical snapshot into `.prev`.
            if !supervise && (state.step % every == 0 || report.steps == steps) {
                lbm_ib::checkpoint::save(&state, path)
                    .unwrap_or_else(|e| die(format!("checkpoint save: {e}")));
            }
        }
        let d = diagnostics(&state);
        println!("{}", d.summary());
        if let Err(e) = d.check_stability(initial_mass) {
            eprintln!("UNSTABLE: {e}");
            std::process::exit(2);
        }
        if let Some(dir) = &out_dir {
            let w = traj
                .as_mut()
                .expect("trajectory writer exists when --out is set");
            append_trajectory_row(&state, w)
                .unwrap_or_else(|e| die(format!("write trajectory.csv: {e}")));
            dump_sheet_snapshot(&state, dir, snapshot)
                .unwrap_or_else(|e| die(format!("write sheet snapshot: {e}")));
            snapshot += 1;
        }
    }
    let wall = report.wall.as_secs_f64();
    let state = solver.to_state();
    println!(
        "\ncompleted {} steps in {wall:.2} s ({:.1} Mnode-updates/s)",
        report.steps,
        report.steps as f64 * state.fluid.n() as f64 / wall / 1e6
    );
    if let Some(rec) = &report.recovery {
        if rec.events.is_empty() {
            println!("supervisor: no interventions");
        } else {
            println!(
                "supervisor: {} intervention(s), {} ms backoff, finished on {} with {} thread(s)",
                rec.events.len(),
                rec.total_backoff.as_millis(),
                rec.final_backend,
                rec.final_threads
            );
        }
    }

    if let Some(path) = &metrics_path {
        if report.telemetry.is_some() || report.recovery.is_some() {
            let doc = lbm_ib::metrics_document(report.telemetry.as_ref(), report.recovery.as_ref());
            std::fs::write(path, doc).unwrap_or_else(|e| die(format!("write metrics file: {e}")));
            if let Some(t) = &report.telemetry {
                println!("\n{}", t.summary());
            }
            println!("telemetry written to {}", path.display());
        } else {
            eprintln!(
                "warning: solver produced no telemetry; {} not written",
                path.display()
            );
        }
    }
    if let Some(path) = args.get::<String>("save") {
        lbm_ib::checkpoint::save(&state, std::path::Path::new(&path))
            .unwrap_or_else(|e| die(format!("save checkpoint: {e}")));
        println!("checkpoint written to {path}");
    }
    if args.flag("profile") {
        println!("\nper-kernel profile:");
        match solver.profile() {
            Some(p) => print!("{}", p.table()),
            None => println!("(no per-kernel profile for the distributed prototype)"),
        }
    }
    if let Some(dir) = out_dir {
        println!("output written to {}", dir.display());
    }
}
