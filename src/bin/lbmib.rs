//! `lbmib` — command-line driver for the LBM-IB library.
//!
//! Runs a coupled fluid–structure simulation from flags, with any of the
//! four solvers behind the [`lbm_ib::Solver`] trait, periodic progress
//! reports, and optional CSV/VTK output.
//!
//! ```text
//! lbmib [--solver seq|omp|cube|dist] [--plan split|fused]
//!       [--preset quick|table1|fig8] [--cores N]
//!       [--steps N] [--threads N] [--nx N --ny N --nz N] [--tau T]
//!       [--gx G] [--sheet N] [--sheet-extent E] [--tether none|center|edge]
//!       [--cube-k K] [--out DIR] [--report-every N] [--profile]
//!       [--metrics FILE] [--watchdog-every N]
//! ```
//!
//! Examples:
//! ```text
//! lbmib --preset quick --solver cube --threads 4 --steps 200 --profile
//! lbmib --nx 64 --ny 32 --nz 32 --sheet 20 --steps 500 --out run1/
//! lbmib --preset quick --autotune            # pick the best cube edge first
//! lbmib --preset quick --steps 500 --save run.ckpt
//! lbmib --resume run.ckpt --steps 500        # continue bit-exactly
//! lbmib --preset quick --metrics run.json    # per-thread kernel telemetry
//! lbmib --preset quick --watchdog-every 16   # in-solver stability checks
//! ```

use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;

use lbm_ib::config::KernelPlan;
use lbm_ib::diagnostics::diagnostics;
use lbm_ib::output::{append_trajectory_row, dump_sheet_snapshot, trajectory_header};
use lbm_ib::{build_solver, SheetConfig, SimState, SimulationConfig, Solver, TetherConfig};
use lbm_ib_bench::Args;

fn build_config(args: &Args) -> SimulationConfig {
    let mut config = match args.get::<String>("preset").as_deref() {
        Some("table1") => SimulationConfig::table1(),
        Some("fig8") => SimulationConfig::fig8(args.get_or("cores", 1)),
        _ => SimulationConfig::quick_test(),
    };
    if let Some(nx) = args.get("nx") {
        config.nx = nx;
    }
    if let Some(ny) = args.get("ny") {
        config.ny = ny;
    }
    if let Some(nz) = args.get("nz") {
        config.nz = nz;
    }
    if let Some(tau) = args.get("tau") {
        config.tau = tau;
    }
    if let Some(gx) = args.get("gx") {
        config.body_force = [gx, 0.0, 0.0];
    }
    if let Some(k) = args.get("cube-k") {
        config.cube_k = k;
    }
    if args.get::<usize>("nx").is_some() || args.get::<usize>("sheet").is_some() {
        // Re-centre the sheet for the chosen grid.
        let n = args.get_or("sheet", config.sheet.num_fibers);
        let extent = args.get_or("sheet-extent", (config.ny as f64 / 3.0).max(2.0));
        config.sheet = SheetConfig::square(
            n,
            extent,
            [
                config.nx as f64 / 4.0,
                config.ny as f64 / 2.0,
                config.nz as f64 / 2.0,
            ],
        );
    }
    config.plan = match args.get::<String>("plan").as_deref() {
        Some("fused") => KernelPlan::Fused,
        Some("split") | None => KernelPlan::Split,
        Some(other) => {
            eprintln!("error: unknown plan '{other}' (expected split|fused)");
            std::process::exit(1);
        }
    };
    config.sheet.tether = match args.get::<String>("tether").as_deref() {
        Some("center") => TetherConfig::CenterRegion {
            radius: args.get_or("tether-radius", 3.0),
            stiffness: args.get_or("tether-stiffness", 0.1),
        },
        Some("edge") => TetherConfig::LeadingEdge {
            stiffness: args.get_or("tether-stiffness", 0.1),
        },
        Some("none") => TetherConfig::None,
        _ => config.sheet.tether,
    };
    config
}

fn main() {
    let args = Args::parse();
    if args.flag("help") {
        println!("see the module docs at the top of src/bin/lbmib.rs for usage");
        return;
    }

    // Resume from a checkpoint, or build a fresh configuration.
    let resumed_state = args.get::<String>("resume").map(|p| {
        lbm_ib::checkpoint::load(std::path::Path::new(&p)).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        })
    });
    let mut config = match &resumed_state {
        Some(s) => s.config,
        None => build_config(&args),
    };
    if let Err(e) = config.validate() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }

    let steps: u64 = args.get_or("steps", 100);
    let threads: usize = args.get_or(
        "threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let solver_name = args.get_or("solver", "cube".to_string());

    if args.flag("autotune") && solver_name == "cube" {
        let report =
            lbm_ib::tuning::autotune_cube_k(config, threads, None, 3).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
        println!("auto-tuning cube edge:\n{}", report.table());
        config.cube_k = report.best_k().unwrap_or(config.cube_k);
        println!("selected cube_k = {}", config.cube_k);
    }

    println!(
        "lbmib: {}x{}x{} fluid, {}x{} sheet, tau {}, solver {}, plan {:?}, {} threads, {} steps",
        config.nx,
        config.ny,
        config.nz,
        config.sheet.num_fibers,
        config.sheet.nodes_per_fiber,
        config.tau,
        solver_name,
        config.plan,
        if solver_name == "seq" { 1 } else { threads },
        steps
    );

    let metrics_path: Option<PathBuf> = args.get::<String>("metrics").map(PathBuf::from);
    let mut initial_state = resumed_state.unwrap_or_else(|| SimState::new(config));
    initial_state.config.plan = config.plan; // resumed checkpoints default to Split
    if let Some(every) = args.get::<u64>("watchdog-every") {
        initial_state.config.watchdog = Some(lbm_ib::WatchdogConfig { check_every: every });
    }
    if initial_state.step > 0 {
        println!("resumed at step {}", initial_state.step);
    }
    let mut solver: Box<dyn Solver> = build_solver(&solver_name, initial_state, threads)
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
    if metrics_path.is_some() {
        solver.set_telemetry(true);
    }

    let out_dir: Option<PathBuf> = args.get::<String>("out").map(PathBuf::from);
    let mut traj = out_dir.as_ref().map(|dir| {
        std::fs::create_dir_all(dir).expect("create output dir");
        let mut w = BufWriter::new(File::create(dir.join("trajectory.csv")).unwrap());
        trajectory_header(&mut w).unwrap();
        w
    });

    let report_every: u64 = args.get_or("report-every", (steps / 10).max(1));
    let mut report = lbm_ib::RunReport::default();
    let mut snapshot = 0usize;
    let initial_mass = diagnostics(&solver.to_state()).mass;
    while report.steps < steps {
        let n = report_every.min(steps - report.steps);
        let chunk = solver.run(n).unwrap_or_else(|e| {
            if matches!(e, lbm_ib::SolverError::Unstable { .. }) {
                eprintln!("UNSTABLE: {e}");
                std::process::exit(2);
            }
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        report.merge(chunk);
        let state = solver.to_state();
        let d = diagnostics(&state);
        println!("{}", d.summary());
        if let Err(e) = d.check_stability(initial_mass) {
            eprintln!("UNSTABLE: {e}");
            std::process::exit(2);
        }
        if let Some(dir) = &out_dir {
            append_trajectory_row(&state, traj.as_mut().unwrap()).unwrap();
            dump_sheet_snapshot(&state, dir, snapshot).unwrap();
            snapshot += 1;
        }
    }
    let wall = report.wall.as_secs_f64();
    let state = solver.to_state();
    println!(
        "\ncompleted {} steps in {wall:.2} s ({:.1} Mnode-updates/s)",
        report.steps,
        report.steps as f64 * state.fluid.n() as f64 / wall / 1e6
    );

    if let Some(path) = &metrics_path {
        match &report.telemetry {
            Some(t) => {
                std::fs::write(path, t.to_json()).expect("write metrics file");
                println!("\n{}", t.summary());
                println!("telemetry written to {}", path.display());
            }
            None => eprintln!(
                "warning: solver produced no telemetry; {} not written",
                path.display()
            ),
        }
    }
    if let Some(path) = args.get::<String>("save") {
        lbm_ib::checkpoint::save(&state, std::path::Path::new(&path)).expect("save checkpoint");
        println!("checkpoint written to {path}");
    }
    if args.flag("profile") {
        println!("\nper-kernel profile:");
        match solver.profile() {
            Some(p) => print!("{}", p.table()),
            None => println!("(no per-kernel profile for the distributed prototype)"),
        }
    }
    if let Some(dir) = out_dir {
        println!("output written to {}", dir.display());
    }
}
