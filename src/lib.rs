//! # lbm-ib-suite
//!
//! Top-level crate of the LBM-IB reproduction workspace. It re-exports the
//! member crates for convenience and hosts the runnable examples
//! (`examples/`) and the cross-crate integration tests (`tests/`).
//!
//! The actual functionality lives in:
//!
//! * [`lbm`] — the D3Q19 lattice Boltzmann fluid substrate;
//! * [`ib`] — the immersed-boundary structure substrate;
//! * [`lbm_ib`] — the coupled sequential / OpenMP-style / cube-centric
//!   solvers;
//! * [`cachesim`] — the cache-hierarchy simulator behind the Table II
//!   reproduction.

pub use cachesim;
pub use ib;
pub use lbm;
pub use lbm_ib;

/// Workspace version, shared by all member crates.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
