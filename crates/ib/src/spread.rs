//! Kernel 4, `spread_force_from_fibers_to_fluid`: each fiber node exerts its
//! elastic force onto the fluid nodes of its 4×4×4 influential domain,
//! weighted by the smoothed delta function and the Lagrangian area element.

use lbm::boundary::BoundaryConfig;
use lbm::grid::{Dims, FluidGrid};

use crate::delta::{for_each_influence, DeltaKind};
use crate::sheet::FiberSheet;

/// Destination of spread forces. The sequential solver implements it on
/// [`FluidGrid`] directly; the parallel solvers implement it with atomic
/// adds (OpenMP-style) or owner-locked cube writes (cube-centric).
pub trait ForceSink {
    /// Adds `df` to the Eulerian force at node `(x, y, z)`.
    fn add_force(&mut self, x: usize, y: usize, z: usize, df: [f64; 3]);
}

impl ForceSink for FluidGrid {
    #[inline]
    fn add_force(&mut self, x: usize, y: usize, z: usize, df: [f64; 3]) {
        let node = self.dims.idx(x, y, z);
        self.fx[node] += df[0];
        self.fy[node] += df[1];
        self.fz[node] += df[2];
    }
}

/// Spreads a single Lagrangian force `f_l` (already scaled by the area
/// element) from position `pos` into the sink. Exposed for the parallel
/// solvers, which iterate fiber nodes themselves.
#[inline]
pub fn spread_node<S: ForceSink>(
    pos: [f64; 3],
    f_l: [f64; 3],
    kind: DeltaKind,
    dims: Dims,
    bc: &BoundaryConfig,
    sink: &mut S,
) {
    for_each_influence(pos, kind, dims, bc, |inf| {
        sink.add_force(
            inf.x,
            inf.y,
            inf.z,
            [
                f_l[0] * inf.weight,
                f_l[1] * inf.weight,
                f_l[2] * inf.weight,
            ],
        );
    });
}

/// Kernel 4 over the whole structure: spreads every node's elastic force.
/// `F(x) += Σ_l f_l δ³(x − X_l) Δs₁Δs₂`.
pub fn spread_forces<S: ForceSink>(
    sheet: &FiberSheet,
    kind: DeltaKind,
    dims: Dims,
    bc: &BoundaryConfig,
    sink: &mut S,
) {
    let area = sheet.area_element();
    for (pos, f) in sheet.pos.iter().zip(&sheet.elastic) {
        let f_l = [f[0] * area, f[1] * area, f[2] * area];
        spread_node(*pos, f_l, kind, dims, bc, sink);
    }
}

/// Total Eulerian force over the grid (diagnostic: spreading is
/// conservative, so this equals the total Lagrangian force × area element).
pub fn total_grid_force(grid: &FluidGrid) -> [f64; 3] {
    [
        grid.fx.iter().sum(),
        grid.fy.iter().sum(),
        grid.fz.iter().sum(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::{compute_bending_force, compute_elastic_force, compute_stretching_force};

    fn domain() -> (Dims, BoundaryConfig) {
        (Dims::new(24, 24, 24), BoundaryConfig::periodic())
    }

    #[test]
    fn single_node_force_is_conserved() {
        let (dims, bc) = domain();
        let mut grid = FluidGrid::new(dims);
        spread_node(
            [10.3, 11.7, 12.1],
            [1.0, -2.0, 0.5],
            DeltaKind::Peskin4,
            dims,
            &bc,
            &mut grid,
        );
        let t = total_grid_force(&grid);
        assert!((t[0] - 1.0).abs() < 1e-12, "{t:?}");
        assert!((t[1] + 2.0).abs() < 1e-12);
        assert!((t[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn spread_is_local_to_influential_domain() {
        let (dims, bc) = domain();
        let mut grid = FluidGrid::new(dims);
        let p = [10.5, 10.5, 10.5];
        spread_node(p, [1.0, 0.0, 0.0], DeltaKind::Peskin4, dims, &bc, &mut grid);
        for (x, y, z) in dims.iter_coords() {
            let node = dims.idx(x, y, z);
            if grid.fx[node] != 0.0 {
                assert!(
                    (x as f64 - p[0]).abs() < 2.0
                        && (y as f64 - p[1]).abs() < 2.0
                        && (z as f64 - p[2]).abs() < 2.0,
                    "force leaked to ({x},{y},{z})"
                );
            }
        }
    }

    #[test]
    fn whole_sheet_spread_conserves_total_force() {
        let (dims, bc) = domain();
        let mut sheet = FiberSheet::paper_sheet(8, 4.0, [12.0, 12.0, 12.0], 1e-3, 0.5);
        // Deform so elastic forces are non-trivial.
        for (i, p) in sheet.pos.iter_mut().enumerate() {
            p[0] += 0.05 * ((i * 37 % 11) as f64 - 5.0) * 0.1;
        }
        compute_bending_force(&mut sheet);
        compute_stretching_force(&mut sheet);
        compute_elastic_force(&mut sheet);
        let mut grid = FluidGrid::new(dims);
        spread_forces(&sheet, DeltaKind::Peskin4, dims, &bc, &mut grid);
        let lag = sheet.total_elastic_force();
        let area = sheet.area_element();
        let eul = total_grid_force(&grid);
        for a in 0..3 {
            assert!(
                (eul[a] - lag[a] * area).abs() < 1e-10,
                "axis {a}: grid {} vs lagrangian {}",
                eul[a],
                lag[a] * area
            );
        }
    }

    #[test]
    fn spreading_accumulates_rather_than_overwrites() {
        let (dims, bc) = domain();
        let mut grid = FluidGrid::new(dims);
        spread_node(
            [10.0, 10.0, 10.0],
            [1.0, 0.0, 0.0],
            DeltaKind::Hat2,
            dims,
            &bc,
            &mut grid,
        );
        spread_node(
            [10.0, 10.0, 10.0],
            [1.0, 0.0, 0.0],
            DeltaKind::Hat2,
            dims,
            &bc,
            &mut grid,
        );
        let node = dims.idx(10, 10, 10);
        assert!((grid.fx[node] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn periodic_spread_wraps_across_boundary() {
        let dims = Dims::new(8, 8, 8);
        let bc = BoundaryConfig::periodic();
        let mut grid = FluidGrid::new(dims);
        spread_node(
            [0.1, 4.0, 4.0],
            [1.0, 0.0, 0.0],
            DeltaKind::Peskin4,
            dims,
            &bc,
            &mut grid,
        );
        // Some force must land on the wrapped x = 7 plane.
        let wrapped: f64 = (0..8)
            .flat_map(|y| (0..8).map(move |z| (y, z)))
            .map(|(y, z)| grid.fx[dims.idx(7, y, z)])
            .sum();
        assert!(wrapped > 0.0, "no force wrapped to x = 7");
        let t = total_grid_force(&grid);
        assert!((t[0] - 1.0).abs() < 1e-12, "conservation with wrap: {t:?}");
    }
}
