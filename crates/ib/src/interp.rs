//! Kernel 8, `move_fibers`: interpolate the fluid velocity at each fiber
//! node through the same smoothed delta function used for spreading, then
//! advance the node with it (`dX/dt = U(X)`, forward Euler with the LBM
//! time step, dt = 1 in lattice units).

use lbm::boundary::BoundaryConfig;
use lbm::grid::{Dims, FluidGrid};

use crate::delta::{for_each_influence, DeltaKind};
use crate::sheet::FiberSheet;

/// Source of Eulerian velocities. The sequential solver reads the flat
/// grid; the cube solver reads cube-blocked storage.
pub trait VelocityField {
    /// Velocity at lattice node `(x, y, z)`.
    fn velocity_at(&self, x: usize, y: usize, z: usize) -> [f64; 3];
}

impl VelocityField for FluidGrid {
    #[inline]
    fn velocity_at(&self, x: usize, y: usize, z: usize) -> [f64; 3] {
        let node = self.dims.idx(x, y, z);
        [self.ux[node], self.uy[node], self.uz[node]]
    }
}

/// Interpolates the fluid velocity at a Lagrangian position:
/// `U(X) = Σ_x u(x) δ³(x − X)` (h³ = 1).
#[inline]
pub fn interpolate_velocity<V: VelocityField>(
    pos: [f64; 3],
    kind: DeltaKind,
    dims: Dims,
    bc: &BoundaryConfig,
    field: &V,
) -> [f64; 3] {
    let mut u = [0.0; 3];
    for_each_influence(pos, kind, dims, bc, |inf| {
        let v = field.velocity_at(inf.x, inf.y, inf.z);
        u[0] += v[0] * inf.weight;
        u[1] += v[1] * inf.weight;
        u[2] += v[2] * inf.weight;
    });
    u
}

/// Kernel 8 over the whole structure: moves every fiber node with the
/// interpolated fluid velocity, `X ← X + U(X) dt`.
pub fn move_fibers<V: VelocityField>(
    sheet: &mut FiberSheet,
    kind: DeltaKind,
    dims: Dims,
    bc: &BoundaryConfig,
    field: &V,
    dt: f64,
) {
    for pos in sheet.pos.iter_mut() {
        let u = interpolate_velocity(*pos, kind, dims, bc, field);
        pos[0] += u[0] * dt;
        pos[1] += u[1] * dt;
        pos[2] += u[2] * dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    struct Uniform([f64; 3]);
    impl VelocityField for Uniform {
        fn velocity_at(&self, _: usize, _: usize, _: usize) -> [f64; 3] {
            self.0
        }
    }

    struct Linear;
    impl VelocityField for Linear {
        fn velocity_at(&self, x: usize, y: usize, z: usize) -> [f64; 3] {
            [x as f64, 2.0 * y as f64, -0.5 * z as f64]
        }
    }

    #[test]
    fn constant_field_interpolated_exactly() {
        let dims = Dims::new(16, 16, 16);
        let bc = BoundaryConfig::periodic();
        let u = interpolate_velocity(
            [7.3, 8.9, 5.1],
            DeltaKind::Peskin4,
            dims,
            &bc,
            &Uniform([0.1, -0.2, 0.3]),
        );
        assert!((u[0] - 0.1).abs() < 1e-13);
        assert!((u[1] + 0.2).abs() < 1e-13);
        assert!((u[2] - 0.3).abs() < 1e-13);
    }

    #[test]
    fn linear_field_interpolated_exactly_by_poly_kernel() {
        // The polynomial 4-point kernel's vanishing first moment reproduces
        // linear fields exactly away from wrap-around.
        let dims = Dims::new(32, 32, 32);
        let bc = BoundaryConfig::periodic();
        let p = [10.25, 14.75, 9.5];
        let u = interpolate_velocity(p, DeltaKind::Peskin4Poly, dims, &bc, &Linear);
        assert!((u[0] - p[0]).abs() < 1e-11, "{u:?}");
        assert!((u[1] - 2.0 * p[1]).abs() < 1e-11);
        assert!((u[2] + 0.5 * p[2]).abs() < 1e-11);
        // The cosine kernel of the paper is close but not exact: its first
        // moment error peaks at ~0.021 per unit slope.
        let uc = interpolate_velocity(p, DeltaKind::Peskin4, dims, &bc, &Linear);
        assert!((uc[0] - p[0]).abs() < 0.022, "{uc:?}");
        assert!((uc[1] - 2.0 * p[1]).abs() < 0.044);
    }

    #[test]
    fn move_fibers_advects_with_dt() {
        let dims = Dims::new(16, 16, 16);
        let bc = BoundaryConfig::periodic();
        let mut sheet = FiberSheet::paper_sheet(3, 2.0, [8.0, 8.0, 8.0], 1.0, 1.0);
        let before = sheet.pos.clone();
        move_fibers(
            &mut sheet,
            DeltaKind::Peskin4,
            dims,
            &bc,
            &Uniform([0.5, 0.0, -0.25]),
            2.0,
        );
        for (p, q) in sheet.pos.iter().zip(&before) {
            assert!((p[0] - (q[0] + 1.0)).abs() < 1e-12);
            assert!((p[1] - q[1]).abs() < 1e-12);
            assert!((p[2] - (q[2] - 0.5)).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_velocity_keeps_structure_still() {
        let dims = Dims::new(16, 16, 16);
        let bc = BoundaryConfig::tunnel();
        let mut sheet = FiberSheet::paper_sheet(4, 3.0, [8.0, 8.0, 8.0], 1.0, 1.0);
        let before = sheet.pos.clone();
        move_fibers(
            &mut sheet,
            DeltaKind::Peskin4,
            dims,
            &bc,
            &Uniform([0.0; 3]),
            1.0,
        );
        assert_eq!(sheet.pos, before);
    }

    #[test]
    fn spread_then_interpolate_round_trip_is_symmetric() {
        // The spread and interpolation operators are adjoint: interpolating
        // the field produced by spreading a unit force returns
        // Σ w² — and two different Lagrangian points X, Y satisfy
        // interp_X(spread_Y) = interp_Y(spread_X). Verify the symmetry.
        use crate::spread::spread_node;
        use lbm::grid::FluidGrid;
        let dims = Dims::new(16, 16, 16);
        let bc = BoundaryConfig::periodic();
        let x_pt = [7.3, 8.1, 6.9];
        let y_pt = [8.2, 7.4, 7.7];

        let field_from = |p: [f64; 3]| -> FluidGrid {
            let mut g = FluidGrid::new(dims);
            spread_node(p, [1.0, 0.0, 0.0], DeltaKind::Peskin4, dims, &bc, &mut g);
            // Treat the spread force as a velocity field for the adjoint test.
            g.ux.copy_from_slice(&g.fx.clone());
            g
        };
        let gx = field_from(x_pt);
        let gy = field_from(y_pt);
        let a = interpolate_velocity(x_pt, DeltaKind::Peskin4, dims, &bc, &gy)[0];
        let b = interpolate_velocity(y_pt, DeltaKind::Peskin4, dims, &bc, &gx)[0];
        assert!((a - b).abs() < 1e-13, "adjointness violated: {a} vs {b}");
        assert!(a > 0.0, "overlapping kernels must couple");
    }

    proptest! {
        /// Constant fields are interpolated exactly at any interior point,
        /// any kernel (partition of unity in action).
        #[test]
        fn prop_constant_reproduction(
            px in 4.0f64..12.0,
            py in 4.0f64..12.0,
            pz in 4.0f64..12.0,
        ) {
            let dims = Dims::new(16, 16, 16);
            let bc = BoundaryConfig::periodic();
            for kind in [DeltaKind::Peskin4, DeltaKind::Peskin4Poly, DeltaKind::Hat2, DeltaKind::Roma3] {
                let u = interpolate_velocity([px, py, pz], kind, dims, &bc, &Uniform([1.0, 2.0, 3.0]));
                prop_assert!((u[0] - 1.0).abs() < 1e-12, "{:?}", kind);
                prop_assert!((u[1] - 2.0).abs() < 1e-12);
                prop_assert!((u[2] - 3.0).abs() < 1e-12);
            }
        }
    }
}
