//! # ib — immersed boundary structure substrate
//!
//! The structure half of the LBM-IB method: flexible fiber sheets
//! ([`sheet::FiberSheet`], Figure 4 of the paper), their elastic forces
//! (kernels 1–3: [`forces`]), and the Dirac-delta coupling to the fluid —
//! force spreading (kernel 4: [`spread`]) and velocity interpolation /
//! fiber motion (kernel 8: [`interp`]). Tether springs ([`tether`])
//! reproduce the "fastened plate" of the paper's Figure 1.
//!
//! ## Quick example
//!
//! ```
//! use ib::{delta::DeltaKind, forces, sheet::FiberSheet, spread};
//! use lbm::{boundary::BoundaryConfig, grid::{Dims, FluidGrid}};
//!
//! let mut sheet = FiberSheet::paper_sheet(8, 4.0, [12.0, 12.0, 12.0], 1e-3, 0.1);
//! sheet.pos[30][0] += 0.3; // deform it
//! forces::compute_bending_force(&mut sheet);
//! forces::compute_stretching_force(&mut sheet);
//! forces::compute_elastic_force(&mut sheet);
//!
//! let dims = Dims::new(24, 24, 24);
//! let mut fluid = FluidGrid::new(dims);
//! spread::spread_forces(&sheet, DeltaKind::Peskin4, dims, &BoundaryConfig::periodic(), &mut fluid);
//! ```

pub mod delta;
pub mod forces;
pub mod interp;
pub mod sheet;
pub mod spread;
pub mod tether;

pub use delta::DeltaKind;
pub use sheet::FiberSheet;
pub use tether::TetherSet;
