//! The flexible structure of the paper: a 2D sheet made of an array of
//! fibers, each fiber a list of fiber nodes (Figure 4). Node storage is
//! fiber-major and contiguous, so the per-fiber loops of Algorithms 3 and 4
//! walk sequential memory.

/// A fiber sheet: `num_fibers` fibers of `nodes_per_fiber` Lagrangian nodes.
///
/// Node `(fiber, node)` lives at flat index `fiber * nodes_per_fiber + node`.
/// Positions are in lattice units (fluid grid spacing h = 1). The three
/// force arrays mirror the paper's kernels 1–3, which compute bending and
/// stretching separately before summing them into the elastic force.
#[derive(Clone, Debug)]
pub struct FiberSheet {
    pub num_fibers: usize,
    pub nodes_per_fiber: usize,
    /// Rest spacing between consecutive nodes along a fiber.
    pub ds_node: f64,
    /// Rest spacing between adjacent fibers (across the sheet).
    pub ds_fiber: f64,
    /// Bending stiffness coefficient k_b.
    pub k_bend: f64,
    /// Stretching stiffness coefficient k_s.
    pub k_stretch: f64,
    /// Node positions.
    pub pos: Vec<[f64; 3]>,
    /// Kernel 1 output: bending force per node.
    pub bending: Vec<[f64; 3]>,
    /// Kernel 2 output: stretching force per node.
    pub stretching: Vec<[f64; 3]>,
    /// Kernel 3 output: total elastic force per node (what gets spread).
    pub elastic: Vec<[f64; 3]>,
}

impl FiberSheet {
    /// Total node count.
    #[inline]
    pub fn n(&self) -> usize {
        self.num_fibers * self.nodes_per_fiber
    }

    /// Flat index of node `node` on fiber `fiber`.
    #[inline]
    pub fn idx(&self, fiber: usize, node: usize) -> usize {
        debug_assert!(fiber < self.num_fibers && node < self.nodes_per_fiber);
        fiber * self.nodes_per_fiber + node
    }

    /// Lagrangian area element `Δs₁ Δs₂` used when spreading force.
    #[inline]
    pub fn area_element(&self) -> f64 {
        self.ds_node * self.ds_fiber
    }

    /// Builds a flat rectangular sheet. `origin` is the position of node
    /// (0, 0); `fiber_dir` advances along each fiber (scaled by `ds_node`
    /// per node) and `sheet_dir` advances from fiber to fiber (scaled by
    /// `ds_fiber`). Both direction vectors should be unit length.
    #[allow(clippy::too_many_arguments)]
    pub fn flat(
        num_fibers: usize,
        nodes_per_fiber: usize,
        origin: [f64; 3],
        fiber_dir: [f64; 3],
        sheet_dir: [f64; 3],
        ds_node: f64,
        ds_fiber: f64,
        k_bend: f64,
        k_stretch: f64,
    ) -> Self {
        assert!(
            num_fibers >= 1 && nodes_per_fiber >= 1,
            "sheet must have nodes"
        );
        assert!(
            ds_node > 0.0 && ds_fiber > 0.0,
            "rest spacings must be positive"
        );
        let n = num_fibers * nodes_per_fiber;
        let mut pos = Vec::with_capacity(n);
        for f in 0..num_fibers {
            for m in 0..nodes_per_fiber {
                let a = m as f64 * ds_node;
                let b = f as f64 * ds_fiber;
                pos.push([
                    origin[0] + a * fiber_dir[0] + b * sheet_dir[0],
                    origin[1] + a * fiber_dir[1] + b * sheet_dir[1],
                    origin[2] + a * fiber_dir[2] + b * sheet_dir[2],
                ]);
            }
        }
        Self {
            num_fibers,
            nodes_per_fiber,
            ds_node,
            ds_fiber,
            k_bend,
            k_stretch,
            pos,
            bending: vec![[0.0; 3]; n],
            stretching: vec![[0.0; 3]; n],
            elastic: vec![[0.0; 3]; n],
        }
    }

    /// The paper's benchmark structure: a square sheet of `n × n` fiber
    /// nodes (e.g. 52×52 for Table I, 104×104 for Figure 8) spanning a
    /// square of physical side `extent`, placed perpendicular to the x axis
    /// (fibers run along y, the sheet stacks along z), centred at `center`.
    pub fn paper_sheet(
        n: usize,
        extent: f64,
        center: [f64; 3],
        k_bend: f64,
        k_stretch: f64,
    ) -> Self {
        assert!(n >= 2, "paper sheet needs at least 2x2 nodes");
        let ds = extent / (n - 1) as f64;
        let origin = [
            center[0],
            center[1] - extent / 2.0,
            center[2] - extent / 2.0,
        ];
        Self::flat(
            n,
            n,
            origin,
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            ds,
            ds,
            k_bend,
            k_stretch,
        )
    }

    /// Geometric centroid of all fiber nodes.
    pub fn centroid(&self) -> [f64; 3] {
        let mut c = [0.0; 3];
        for p in &self.pos {
            for a in 0..3 {
                c[a] += p[a];
            }
        }
        let n = self.n() as f64;
        [c[0] / n, c[1] / n, c[2] / n]
    }

    /// Axis-aligned bounding box `(min, max)` of the sheet.
    pub fn bounding_box(&self) -> ([f64; 3], [f64; 3]) {
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for p in &self.pos {
            for a in 0..3 {
                lo[a] = lo[a].min(p[a]);
                hi[a] = hi[a].max(p[a]);
            }
        }
        (lo, hi)
    }

    /// Sum of the elastic forces over all nodes — zero for a free sheet
    /// (internal forces are action–reaction pairs), used as a diagnostic.
    pub fn total_elastic_force(&self) -> [f64; 3] {
        let mut t = [0.0; 3];
        for f in &self.elastic {
            for a in 0..3 {
                t[a] += f[a];
            }
        }
        t
    }

    /// True if any node position or force is non-finite.
    pub fn has_nan(&self) -> bool {
        self.pos
            .iter()
            .chain(&self.elastic)
            .any(|v| v.iter().any(|c| !c.is_finite()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_sheet_geometry() {
        let s = FiberSheet::flat(
            8,
            5,
            [1.0, 2.0, 3.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            0.5,
            0.25,
            1e-3,
            1e-1,
        );
        assert_eq!(s.n(), 40);
        // Figure 4: 8 fibers, each with 5 fiber nodes.
        assert_eq!(s.num_fibers, 8);
        assert_eq!(s.nodes_per_fiber, 5);
        // Node (0,0) at origin; last node of first fiber 4*ds_node along y.
        assert_eq!(s.pos[s.idx(0, 0)], [1.0, 2.0, 3.0]);
        assert_eq!(s.pos[s.idx(0, 4)], [1.0, 4.0, 3.0]);
        // Last fiber offset 7*ds_fiber along z.
        assert_eq!(s.pos[s.idx(7, 0)], [1.0, 2.0, 4.75]);
    }

    #[test]
    fn paper_sheet_is_centred_and_square() {
        let s = FiberSheet::paper_sheet(52, 20.0, [30.0, 32.0, 32.0], 1e-3, 1e-1);
        assert_eq!(s.n(), 52 * 52);
        let c = s.centroid();
        for (a, want) in c.iter().zip([30.0, 32.0, 32.0]) {
            assert!((a - want).abs() < 1e-9, "centroid {c:?}");
        }
        let (lo, hi) = s.bounding_box();
        assert!((hi[1] - lo[1] - 20.0).abs() < 1e-9);
        assert!((hi[2] - lo[2] - 20.0).abs() < 1e-9);
        assert!((hi[0] - lo[0]).abs() < 1e-12, "sheet is initially planar");
    }

    #[test]
    fn idx_is_fiber_major() {
        let s = FiberSheet::paper_sheet(4, 3.0, [0.0; 3], 1.0, 1.0);
        assert_eq!(s.idx(0, 0), 0);
        assert_eq!(s.idx(0, 3), 3);
        assert_eq!(s.idx(1, 0), 4);
        assert_eq!(s.idx(3, 3), 15);
    }

    #[test]
    fn bounding_box_tracks_motion() {
        let mut s = FiberSheet::paper_sheet(4, 3.0, [5.0, 5.0, 5.0], 1.0, 1.0);
        s.pos[0][0] = -2.0;
        let (lo, _) = s.bounding_box();
        assert_eq!(lo[0], -2.0);
    }

    #[test]
    fn has_nan_detects_poison() {
        let mut s = FiberSheet::paper_sheet(3, 2.0, [0.0; 3], 1.0, 1.0);
        assert!(!s.has_nan());
        s.pos[4][1] = f64::NAN;
        assert!(s.has_nan());
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn degenerate_paper_sheet_rejected() {
        FiberSheet::paper_sheet(1, 2.0, [0.0; 3], 1.0, 1.0);
    }
}
