//! Elastic force kernels 1–3 of the paper: bending, stretching, and their
//! sum. Forces are the negative gradients of discrete elastic energies, so
//! the invariants *zero force at rest* and *zero net internal force* hold
//! exactly, and every node's force depends only on the positions of its
//! neighbours — 2 on each side along the fiber and across the sheet for
//! bending (the paper's "8 neighbor fiber nodes"), 1 on each side for
//! stretching (the paper's four neighbours).
//!
//! All per-node functions are pure gathers (read neighbour positions, write
//! the node's own force), which is what lets the parallel solvers run them
//! without any synchronisation.

use crate::sheet::FiberSheet;

/// The geometric/material parameters of a sheet, copyable into hot loops
/// and worker threads without borrowing the whole sheet.
#[derive(Clone, Copy, Debug)]
pub struct SheetTopology {
    pub num_fibers: usize,
    pub nodes_per_fiber: usize,
    pub ds_node: f64,
    pub ds_fiber: f64,
    pub k_bend: f64,
    pub k_stretch: f64,
}

impl FiberSheet {
    /// Extracts the topology descriptor used by the force kernels.
    pub fn topology(&self) -> SheetTopology {
        SheetTopology {
            num_fibers: self.num_fibers,
            nodes_per_fiber: self.nodes_per_fiber,
            ds_node: self.ds_node,
            ds_fiber: self.ds_fiber,
            k_bend: self.k_bend,
            k_stretch: self.k_stretch,
        }
    }
}

#[inline]
fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

#[inline]
fn axpy(acc: &mut [f64; 3], s: f64, v: [f64; 3]) {
    acc[0] += s * v[0];
    acc[1] += s * v[1];
    acc[2] += s * v[2];
}

#[inline]
fn norm(v: [f64; 3]) -> f64 {
    (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt()
}

/// Discrete curvature vector at interior index `m` of a 1D chain accessed
/// through `at`: `C_m = X_{m+1} − 2 X_m + X_{m−1}`; zero at the free ends.
#[inline]
fn curvature<F: Fn(usize) -> [f64; 3]>(at: &F, m: i64, len: usize) -> [f64; 3] {
    if m < 1 || m as usize >= len - 1 {
        return [0.0; 3];
    }
    let m = m as usize;
    let a = at(m - 1);
    let b = at(m);
    let c = at(m + 1);
    [
        a[0] - 2.0 * b[0] + c[0],
        a[1] - 2.0 * b[1] + c[1],
        a[2] - 2.0 * b[2] + c[2],
    ]
}

/// Bending force on element `m` of a chain of length `len`:
/// the negative gradient of `E_b = (k/2) Σ |C_i|²`, i.e.
/// `F_m = −k (C_{m−1} − 2 C_m + C_{m+1})` with out-of-range `C` zero —
/// the classic (1, −4, 6, −4, 1) stencil in the interior with free-end
/// boundary handling built in.
#[inline]
fn chain_bending_force<F: Fn(usize) -> [f64; 3]>(at: &F, m: usize, len: usize, k: f64) -> [f64; 3] {
    if len < 3 {
        return [0.0; 3];
    }
    let mi = m as i64;
    let cm1 = curvature(at, mi - 1, len);
    let c0 = curvature(at, mi, len);
    let cp1 = curvature(at, mi + 1, len);
    let mut f = [0.0; 3];
    axpy(&mut f, -k, cm1);
    axpy(&mut f, 2.0 * k, c0);
    axpy(&mut f, -k, cp1);
    f
}

/// Stretching force on element `m` of a chain: Hookean segments of rest
/// length `ds`, `E_s = (k/2) Σ (|d_i| − ds)²/ds`. The gather form sums over
/// the (at most two) incident segments:
/// `F_m = Σ_j k (|X_j − X_m| − ds)/ds · unit(X_j − X_m)`.
#[inline]
fn chain_stretching_force<F: Fn(usize) -> [f64; 3]>(
    at: &F,
    m: usize,
    len: usize,
    ds: f64,
    k: f64,
) -> [f64; 3] {
    let mut f = [0.0; 3];
    let xm = at(m);
    if m + 1 < len {
        let d = sub(at(m + 1), xm);
        let l = norm(d);
        if l > 0.0 {
            axpy(&mut f, k * (l - ds) / (ds * l), d);
        }
    }
    if m >= 1 {
        let d = sub(at(m - 1), xm);
        let l = norm(d);
        if l > 0.0 {
            axpy(&mut f, k * (l - ds) / (ds * l), d);
        }
    }
    f
}

/// Bending force on node `(fiber, node)`: chain stencils along the fiber
/// and across the sheet (the two 1D directions of the 2D surface).
#[inline]
pub fn bending_at(topo: &SheetTopology, pos: &[[f64; 3]], fiber: usize, node: usize) -> [f64; 3] {
    let nn = topo.nodes_per_fiber;
    let along = |m: usize| pos[fiber * nn + m];
    let across = |f: usize| pos[f * nn + node];
    // Scale stiffness by the rest spacing so the discrete energy
    // approximates k/2 ∫ |X_ss|² ds: k_eff = k / ds³.
    let ka = topo.k_bend / (topo.ds_node * topo.ds_node * topo.ds_node);
    let kb = topo.k_bend / (topo.ds_fiber * topo.ds_fiber * topo.ds_fiber);
    let mut f = chain_bending_force(&along, node, nn, ka);
    let g = chain_bending_force(&across, fiber, topo.num_fibers, kb);
    axpy(&mut f, 1.0, g);
    f
}

/// Stretching force on node `(fiber, node)`: Hookean links to the left and
/// right neighbours along the fiber and to the neighbouring fibers.
#[inline]
pub fn stretching_at(
    topo: &SheetTopology,
    pos: &[[f64; 3]],
    fiber: usize,
    node: usize,
) -> [f64; 3] {
    let nn = topo.nodes_per_fiber;
    let along = |m: usize| pos[fiber * nn + m];
    let across = |f: usize| pos[f * nn + node];
    let mut f = chain_stretching_force(&along, node, nn, topo.ds_node, topo.k_stretch);
    let g = chain_stretching_force(
        &across,
        fiber,
        topo.num_fibers,
        topo.ds_fiber,
        topo.k_stretch,
    );
    axpy(&mut f, 1.0, g);
    f
}

/// Kernel 1, `compute_bending_force_in_fibers`: fills `sheet.bending`.
pub fn compute_bending_force(sheet: &mut FiberSheet) {
    let topo = sheet.topology();
    let pos = &sheet.pos;
    for fiber in 0..topo.num_fibers {
        for node in 0..topo.nodes_per_fiber {
            sheet.bending[fiber * topo.nodes_per_fiber + node] =
                bending_at(&topo, pos, fiber, node);
        }
    }
}

/// Kernel 2, `compute_stretching_force_in_fibers`: fills `sheet.stretching`.
pub fn compute_stretching_force(sheet: &mut FiberSheet) {
    let topo = sheet.topology();
    let pos = &sheet.pos;
    for fiber in 0..topo.num_fibers {
        for node in 0..topo.nodes_per_fiber {
            sheet.stretching[fiber * topo.nodes_per_fiber + node] =
                stretching_at(&topo, pos, fiber, node);
        }
    }
}

/// Kernel 3, `compute_elastic_force_in_fibers`: elastic = bending + stretching.
pub fn compute_elastic_force(sheet: &mut FiberSheet) {
    for i in 0..sheet.n() {
        for a in 0..3 {
            sheet.elastic[i][a] = sheet.bending[i][a] + sheet.stretching[i][a];
        }
    }
}

/// Total bending energy (for the finite-difference gradient tests).
pub fn bending_energy(topo: &SheetTopology, pos: &[[f64; 3]]) -> f64 {
    let nn = topo.nodes_per_fiber;
    let ka = topo.k_bend / (topo.ds_node * topo.ds_node * topo.ds_node);
    let kb = topo.k_bend / (topo.ds_fiber * topo.ds_fiber * topo.ds_fiber);
    let mut e = 0.0;
    for fiber in 0..topo.num_fibers {
        let at = |m: usize| pos[fiber * nn + m];
        for m in 1..nn.saturating_sub(1) {
            let c = curvature(&at, m as i64, nn);
            e += 0.5 * ka * (c[0] * c[0] + c[1] * c[1] + c[2] * c[2]);
        }
    }
    for node in 0..nn {
        let at = |f: usize| pos[f * nn + node];
        for f in 1..topo.num_fibers.saturating_sub(1) {
            let c = curvature(&at, f as i64, topo.num_fibers);
            e += 0.5 * kb * (c[0] * c[0] + c[1] * c[1] + c[2] * c[2]);
        }
    }
    e
}

/// Total stretching energy (for the finite-difference gradient tests).
pub fn stretching_energy(topo: &SheetTopology, pos: &[[f64; 3]]) -> f64 {
    let nn = topo.nodes_per_fiber;
    let mut e = 0.0;
    for fiber in 0..topo.num_fibers {
        for m in 0..nn - 1 {
            let d = sub(pos[fiber * nn + m + 1], pos[fiber * nn + m]);
            let s = norm(d) - topo.ds_node;
            e += 0.5 * topo.k_stretch * s * s / topo.ds_node;
        }
    }
    for node in 0..nn {
        for f in 0..topo.num_fibers - 1 {
            let d = sub(pos[(f + 1) * nn + node], pos[f * nn + node]);
            let s = norm(d) - topo.ds_fiber;
            e += 0.5 * topo.k_stretch * s * s / topo.ds_fiber;
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn test_sheet() -> FiberSheet {
        FiberSheet::paper_sheet(6, 2.5, [8.0, 8.0, 8.0], 1e-3, 0.5)
    }

    #[test]
    fn rest_configuration_has_zero_forces() {
        let mut s = test_sheet();
        compute_bending_force(&mut s);
        compute_stretching_force(&mut s);
        compute_elastic_force(&mut s);
        for i in 0..s.n() {
            for a in 0..3 {
                assert!(s.bending[i][a].abs() < 1e-12, "bending node {i} axis {a}");
                assert!(
                    s.stretching[i][a].abs() < 1e-12,
                    "stretching node {i} axis {a}"
                );
                assert!(s.elastic[i][a].abs() < 1e-12, "elastic node {i} axis {a}");
            }
        }
    }

    #[test]
    fn rigid_translation_keeps_zero_forces() {
        let mut s = test_sheet();
        for p in s.pos.iter_mut() {
            p[0] += 3.7;
            p[1] -= 1.2;
            p[2] += 0.4;
        }
        compute_bending_force(&mut s);
        compute_stretching_force(&mut s);
        for i in 0..s.n() {
            for a in 0..3 {
                assert!(s.bending[i][a].abs() < 1e-12);
                assert!(s.stretching[i][a].abs() < 1e-12);
            }
        }
    }

    fn perturb(s: &mut FiberSheet, seed: u64, amp: f64) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for p in s.pos.iter_mut() {
            for c in p.iter_mut() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c += ((state >> 33) as f64 / 2f64.powi(31) - 1.0) * amp;
            }
        }
    }

    #[test]
    fn internal_forces_sum_to_zero() {
        let mut s = test_sheet();
        perturb(&mut s, 7, 0.2);
        compute_bending_force(&mut s);
        compute_stretching_force(&mut s);
        compute_elastic_force(&mut s);
        let total = s.total_elastic_force();
        // Translation invariance of the energies ⇒ net internal force is 0.
        let scale: f64 = s.elastic.iter().map(|f| norm(*f)).sum();
        assert!(scale > 1e-6, "perturbation should generate forces");
        for a in 0..3 {
            assert!(
                total[a].abs() < 1e-10 * scale.max(1.0),
                "axis {a}: {}",
                total[a]
            );
        }
    }

    #[test]
    fn stretched_segment_pulls_back() {
        // A single fiber of two nodes (no cross-fiber links); stretch along y.
        let mut s = FiberSheet::flat(
            1,
            2,
            [0.0; 3],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            1.0,
            1.0,
            0.0,
            2.0,
        );
        let i1 = s.idx(0, 1);
        s.pos[i1][1] += 0.5; // stretch segment to 1.5 (rest 1.0)
        compute_stretching_force(&mut s);
        // Node 1 is pulled back toward node 0 (−y); node 0 pulled toward +y.
        assert!(s.stretching[i1][1] < 0.0);
        assert!(s.stretching[s.idx(0, 0)][1] > 0.0);
        // Expected magnitude along the fiber: k (l − ds)/ds = 2*0.5 = 1.
        assert!((s.stretching[i1][1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn bent_chain_straightens() {
        // A single fiber of 3 nodes with the middle node displaced: bending
        // force pushes the middle node back and the ends the other way.
        let mut s = FiberSheet::flat(
            1,
            3,
            [0.0; 3],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            1.0,
            1.0,
            0.5,
            0.0,
        );
        s.pos[1][0] += 0.1; // bow out along x
        compute_bending_force(&mut s);
        assert!(
            s.bending[1][0] < 0.0,
            "middle node pushed back: {:?}",
            s.bending[1]
        );
        assert!(s.bending[0][0] > 0.0);
        assert!(s.bending[2][0] > 0.0);
        let sum: f64 = (0..3).map(|i| s.bending[i][0]).sum();
        assert!(sum.abs() < 1e-14);
    }

    #[test]
    fn interior_bending_stencil_is_1_4_6_4_1() {
        // For a 1-fiber chain, displacing one node and reading the force at
        // distance 0..2 recovers the classic pentadiagonal stencil.
        let nn = 9;
        let mut s = FiberSheet::flat(
            1,
            nn,
            [0.0; 3],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            1.0,
            1.0,
            1.0,
            0.0,
        );
        let mid = 4;
        s.pos[mid][0] += 1e-3;
        compute_bending_force(&mut s);
        let f = |i: usize| s.bending[i][0] / 1e-3;
        assert!((f(mid) + 6.0).abs() < 1e-9, "centre: {}", f(mid));
        assert!((f(mid - 1) - 4.0).abs() < 1e-9);
        assert!((f(mid + 1) - 4.0).abs() < 1e-9);
        assert!((f(mid - 2) + 1.0).abs() < 1e-9);
        assert!((f(mid + 2) + 1.0).abs() < 1e-9);
        assert!(f(mid - 3).abs() < 1e-9, "beyond the 8-neighbour stencil");
    }

    #[test]
    fn forces_are_negative_energy_gradients() {
        // Central finite differences of the energies must match the
        // analytic forces at a random non-degenerate configuration.
        let mut s = test_sheet();
        perturb(&mut s, 42, 0.15);
        let topo = s.topology();
        compute_bending_force(&mut s);
        compute_stretching_force(&mut s);
        let h = 1e-6;
        for &(fiber, node) in &[(0usize, 0usize), (2, 3), (5, 5), (3, 0)] {
            let i = s.idx(fiber, node);
            for a in 0..3 {
                let mut pp = s.pos.clone();
                pp[i][a] += h;
                let mut pm = s.pos.clone();
                pm[i][a] -= h;
                let fd_bend =
                    -(bending_energy(&topo, &pp) - bending_energy(&topo, &pm)) / (2.0 * h);
                let fd_str =
                    -(stretching_energy(&topo, &pp) - stretching_energy(&topo, &pm)) / (2.0 * h);
                assert!(
                    (fd_bend - s.bending[i][a]).abs() < 1e-5 * (1.0 + fd_bend.abs()),
                    "bending ({fiber},{node}) axis {a}: fd {fd_bend} vs {}",
                    s.bending[i][a]
                );
                assert!(
                    (fd_str - s.stretching[i][a]).abs() < 1e-5 * (1.0 + fd_str.abs()),
                    "stretching ({fiber},{node}) axis {a}: fd {fd_str} vs {}",
                    s.stretching[i][a]
                );
            }
        }
    }

    #[test]
    fn elastic_is_sum_of_parts() {
        let mut s = test_sheet();
        perturb(&mut s, 3, 0.1);
        compute_bending_force(&mut s);
        compute_stretching_force(&mut s);
        compute_elastic_force(&mut s);
        for i in 0..s.n() {
            for a in 0..3 {
                assert_eq!(s.elastic[i][a], s.bending[i][a] + s.stretching[i][a]);
            }
        }
    }

    #[test]
    fn tiny_sheets_do_not_panic() {
        // 1x1, 1x2, 2x1 sheets have no bending stencils and few segments.
        for (nf, nn) in [(1, 1), (1, 2), (2, 1), (2, 2)] {
            let mut s = FiberSheet::flat(
                nf,
                nn,
                [0.0; 3],
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
                1.0,
                1.0,
                1.0,
                1.0,
            );
            compute_bending_force(&mut s);
            compute_stretching_force(&mut s);
            compute_elastic_force(&mut s);
            for i in 0..s.n() {
                for a in 0..3 {
                    assert!(s.elastic[i][a].abs() < 1e-14, "({nf},{nn}) node {i}");
                }
            }
        }
    }

    proptest! {
        /// Net internal force vanishes for random perturbations (gather and
        /// scatter formulations agree via Newton's third law).
        #[test]
        fn prop_zero_net_force(seed in 0u64..500, amp in 0.0f64..0.3) {
            let mut s = test_sheet();
            perturb(&mut s, seed, amp);
            compute_bending_force(&mut s);
            compute_stretching_force(&mut s);
            compute_elastic_force(&mut s);
            let total = s.total_elastic_force();
            let scale: f64 = s.elastic.iter().map(|f| norm(*f)).sum::<f64>().max(1.0);
            for a in 0..3 {
                prop_assert!(total[a].abs() < 1e-9 * scale, "axis {}: {}", a, total[a]);
            }
        }
    }
}
