//! Smoothed approximations of the Dirac delta function — the mathematical
//! heart of the immersed boundary method (Section II-A of the paper). The
//! default is Peskin's 4-point cosine kernel, whose 3D tensor product covers
//! exactly the 4×4×4 "influential domain" of Section III-B. A 2-point hat
//! and the 3-point Roma kernel are provided for the support-width ablation.

use lbm::boundary::{AxisBoundary, BoundaryConfig};
use lbm::grid::Dims;

/// Choice of 1D delta kernel (the 3D kernel is the tensor product).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DeltaKind {
    /// Peskin's cosine kernel, support `|r| < 2`:
    /// `δ(r) = ¼ (1 + cos(πr/2))` — the kernel of the LBM-IB paper's
    /// lineage (Zhu et al. 2011). Partition of unity is exact; the first
    /// moment vanishes only approximately (|Σ (r−j) δ| ≲ 0.0065).
    #[default]
    Peskin4,
    /// Peskin's piecewise-polynomial 4-point kernel, support `|r| < 2`,
    /// constructed to satisfy the even/odd sum *and* the exact first-moment
    /// condition, so it reproduces linear fields exactly.
    Peskin4Poly,
    /// Piecewise-linear hat, support `|r| < 1`: `δ(r) = 1 − |r|`.
    Hat2,
    /// Roma–Peskin 3-point kernel, support `|r| < 1.5`.
    Roma3,
}

impl DeltaKind {
    /// Support half-width in lattice cells: the kernel vanishes for
    /// `|r| >= half_support`.
    pub fn half_support(self) -> f64 {
        match self {
            DeltaKind::Peskin4 | DeltaKind::Peskin4Poly => 2.0,
            DeltaKind::Hat2 => 1.0,
            DeltaKind::Roma3 => 1.5,
        }
    }

    /// Number of lattice nodes the kernel touches along one axis.
    pub fn stencil_width(self) -> usize {
        match self {
            DeltaKind::Peskin4 | DeltaKind::Peskin4Poly => 4,
            DeltaKind::Hat2 => 2,
            DeltaKind::Roma3 => 3,
        }
    }

    /// 1D kernel value at signed distance `r` (lattice units, h = 1).
    #[inline]
    pub fn eval(self, r: f64) -> f64 {
        let a = r.abs();
        match self {
            DeltaKind::Peskin4 => {
                if a < 2.0 {
                    0.25 * (1.0 + (std::f64::consts::FRAC_PI_2 * r).cos())
                } else {
                    0.0
                }
            }
            DeltaKind::Peskin4Poly => {
                if a < 1.0 {
                    0.125 * (3.0 - 2.0 * a + (1.0 + 4.0 * a - 4.0 * a * a).sqrt())
                } else if a < 2.0 {
                    0.125 * (5.0 - 2.0 * a - (-7.0 + 12.0 * a - 4.0 * a * a).max(0.0).sqrt())
                } else {
                    0.0
                }
            }
            DeltaKind::Hat2 => {
                if a < 1.0 {
                    1.0 - a
                } else {
                    0.0
                }
            }
            DeltaKind::Roma3 => {
                if a <= 0.5 {
                    (1.0 + (1.0 - 3.0 * r * r).sqrt()) / 3.0
                } else if a < 1.5 {
                    (5.0 - 3.0 * a - (1.0 - 3.0 * (1.0 - a) * (1.0 - a)).max(0.0).sqrt()) / 6.0
                } else {
                    0.0
                }
            }
        }
    }

    /// 3D tensor-product kernel `δ(dx) δ(dy) δ(dz)`.
    #[inline]
    pub fn eval3(self, dx: f64, dy: f64, dz: f64) -> f64 {
        self.eval(dx) * self.eval(dy) * self.eval(dz)
    }
}

/// One lattice node inside a fiber node's influential domain, with its
/// kernel weight.
#[derive(Clone, Copy, Debug)]
pub struct Influence {
    pub x: usize,
    pub y: usize,
    pub z: usize,
    pub weight: f64,
}

/// Enumerates the influential domain of a Lagrangian point `pos`: every
/// lattice node within the kernel support, with the tensor-product weight.
///
/// Axes marked periodic in `bc` wrap; on wall axes, nodes beyond the grid
/// are skipped (the structure is expected to stay at least the kernel
/// half-support away from walls, as in the paper's tunnel setup).
///
/// Weights over a full (unclipped) domain sum to exactly 1 for all three
/// kernels — the discrete partition-of-unity property that makes force
/// spreading conservative.
pub fn for_each_influence<F>(
    pos: [f64; 3],
    kind: DeltaKind,
    dims: Dims,
    bc: &BoundaryConfig,
    mut f: F,
) where
    F: FnMut(Influence),
{
    let hs = kind.half_support();
    let ext = [dims.nx, dims.ny, dims.nz];
    let periodic = [
        matches!(bc.x, AxisBoundary::Periodic),
        matches!(bc.y, AxisBoundary::Periodic),
        matches!(bc.z, AxisBoundary::Periodic),
    ];

    // Candidate integer coordinates per axis: ceil(p - hs) ..= floor(p + hs),
    // trimmed to open support.
    let mut coords: [[Option<(usize, f64)>; 5]; 3] = [[None; 5]; 3];
    let mut counts = [0usize; 3];
    for a in 0..3 {
        let p = pos[a];
        let lo = (p - hs).ceil() as i64;
        let hi = (p + hs).floor() as i64;
        for j in lo..=hi {
            let w = kind.eval(p - j as f64);
            if w == 0.0 {
                continue;
            }
            let idx = if periodic[a] {
                (j.rem_euclid(ext[a] as i64)) as usize
            } else if j < 0 || j >= ext[a] as i64 {
                continue;
            } else {
                j as usize
            };
            debug_assert!(counts[a] < 5, "kernel support wider than expected");
            coords[a][counts[a]] = Some((idx, w));
            counts[a] += 1;
        }
    }

    for ix in 0..counts[0] {
        let (x, wx) = coords[0][ix].unwrap();
        for iy in 0..counts[1] {
            let (y, wy) = coords[1][iy].unwrap();
            let wxy = wx * wy;
            for iz in 0..counts[2] {
                let (z, wz) = coords[2][iz].unwrap();
                f(Influence {
                    x,
                    y,
                    z,
                    weight: wxy * wz,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const KINDS: [DeltaKind; 4] = [
        DeltaKind::Peskin4,
        DeltaKind::Peskin4Poly,
        DeltaKind::Hat2,
        DeltaKind::Roma3,
    ];

    #[test]
    fn kernels_are_even_and_supported() {
        for kind in KINDS {
            for r in [0.0, 0.25, 0.5, 0.9, 1.3, 1.9] {
                assert!(
                    (kind.eval(r) - kind.eval(-r)).abs() < 1e-15,
                    "{kind:?} at {r}"
                );
            }
            assert_eq!(
                kind.eval(kind.half_support()),
                0.0,
                "{kind:?} at support edge"
            );
            assert_eq!(kind.eval(kind.half_support() + 0.5), 0.0);
            assert!(kind.eval(0.0) > 0.0);
        }
    }

    #[test]
    fn peskin4_peak_value() {
        assert!((DeltaKind::Peskin4.eval(0.0) - 0.5).abs() < 1e-15);
        assert!((DeltaKind::Peskin4.eval(1.0) - 0.25).abs() < 1e-15);
    }

    fn lattice_sum(kind: DeltaKind, frac: f64) -> f64 {
        // Σ_j δ(frac - j) over all integers in support.
        (-4i32..=4).map(|j| kind.eval(frac - j as f64)).sum()
    }

    #[test]
    fn partition_of_unity_at_sample_offsets() {
        for kind in KINDS {
            for frac in [0.0, 0.1, 0.25, 0.5, 0.73, 0.99] {
                let s = lattice_sum(kind, frac);
                assert!((s - 1.0).abs() < 1e-12, "{kind:?} at offset {frac}: {s}");
            }
        }
    }

    #[test]
    fn peskin4_even_odd_sum_identity() {
        // Peskin's construction also balances mass between even and odd
        // lattice points: each sums to 1/2.
        let frac = 0.37;
        let even: f64 = (-4i32..=4)
            .filter(|j| j % 2 == 0)
            .map(|j| DeltaKind::Peskin4.eval(frac - j as f64))
            .sum();
        assert!((even - 0.5).abs() < 1e-12, "even sum {even}");
    }

    #[test]
    fn stencil_width_matches_observed_support() {
        for kind in KINDS {
            // Generic (non-degenerate) offset touches exactly stencil_width nodes.
            let n = (-4i32..=4)
                .filter(|&j| kind.eval(0.3 - j as f64) != 0.0)
                .count();
            assert_eq!(n, kind.stencil_width(), "{kind:?}");
        }
    }

    #[test]
    fn influential_domain_is_4x4x4_for_peskin() {
        let dims = Dims::new(16, 16, 16);
        let bc = BoundaryConfig::periodic();
        let mut count = 0;
        let mut total = 0.0;
        for_each_influence([8.3, 7.6, 9.1], DeltaKind::Peskin4, dims, &bc, |inf| {
            count += 1;
            total += inf.weight;
        });
        assert_eq!(count, 64, "paper's 4x4x4 influential domain");
        assert!(
            (total - 1.0).abs() < 1e-12,
            "3D partition of unity: {total}"
        );
    }

    #[test]
    fn influence_wraps_on_periodic_axes() {
        let dims = Dims::new(8, 8, 8);
        let bc = BoundaryConfig::periodic();
        let mut xs = std::collections::BTreeSet::new();
        for_each_influence([0.2, 4.0, 4.0], DeltaKind::Peskin4, dims, &bc, |inf| {
            xs.insert(inf.x);
        });
        // Support covers x in {-1, 0, 1, 2} → wraps to {7, 0, 1, 2}.
        assert!(xs.contains(&7), "x = -1 must wrap to 7: {xs:?}");
        assert!(xs.contains(&0) && xs.contains(&1) && xs.contains(&2));
    }

    #[test]
    fn influence_clips_at_walls() {
        let dims = Dims::new(8, 8, 8);
        let bc = BoundaryConfig::tunnel(); // y and z walls
        let mut count = 0;
        for_each_influence([4.3, 0.2, 4.6], DeltaKind::Peskin4, dims, &bc, |inf| {
            assert!(inf.y < 8);
            count += 1;
        });
        // y support {-1,0,1,2} clips to {0,1,2}: 4 * 3 * 4 nodes.
        assert_eq!(count, 48);
    }

    #[test]
    fn on_lattice_point_degenerates_peskin_stencil() {
        // Exactly on a lattice plane the |r| = 2 end points carry zero
        // weight, so the axis stencil shrinks from 4 to 3 nodes.
        let dims = Dims::new(8, 8, 8);
        let bc = BoundaryConfig::periodic();
        let mut count = 0;
        for_each_influence([4.0, 4.0, 4.0], DeltaKind::Peskin4, dims, &bc, |_| {
            count += 1
        });
        assert_eq!(count, 27);
    }

    #[test]
    fn node_exactly_on_lattice_point() {
        // When the fiber node coincides with a lattice node the hat kernel
        // degenerates to a single point with weight 1.
        let dims = Dims::new(8, 8, 8);
        let bc = BoundaryConfig::periodic();
        let mut hits = Vec::new();
        for_each_influence([3.0, 3.0, 3.0], DeltaKind::Hat2, dims, &bc, |inf| {
            hits.push(((inf.x, inf.y, inf.z), inf.weight));
        });
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, (3, 3, 3));
        assert!((hits[0].1 - 1.0).abs() < 1e-15);
    }

    proptest! {
        /// Partition of unity at arbitrary offsets, all kernels.
        #[test]
        fn prop_partition_of_unity(frac in 0.0f64..1.0) {
            for kind in KINDS {
                let s = lattice_sum(kind, frac);
                prop_assert!((s - 1.0).abs() < 1e-12, "{:?}: {}", kind, s);
            }
        }

        /// 3D weights over an unclipped domain sum to 1 at arbitrary positions.
        #[test]
        fn prop_3d_weights_sum_to_one(
            px in 4.0f64..12.0,
            py in 4.0f64..12.0,
            pz in 4.0f64..12.0,
        ) {
            let dims = Dims::new(16, 16, 16);
            let bc = BoundaryConfig::periodic();
            for kind in KINDS {
                let mut total = 0.0;
                for_each_influence([px, py, pz], kind, dims, &bc, |inf| total += inf.weight);
                prop_assert!((total - 1.0).abs() < 1e-12, "{:?}: {}", kind, total);
            }
        }

        /// The discrete first moment vanishes exactly for the polynomial
        /// 4-point kernel (it reproduces linear fields exactly), and is
        /// small but non-zero for the cosine kernel.
        #[test]
        fn prop_first_moment(frac in 0.0f64..1.0) {
            let m = |kind: DeltaKind| -> f64 {
                (-4i32..=4).map(|j| (frac - j as f64) * kind.eval(frac - j as f64)).sum()
            };
            prop_assert!(m(DeltaKind::Peskin4Poly).abs() < 1e-12,
                "poly first moment {}", m(DeltaKind::Peskin4Poly));
            prop_assert!(m(DeltaKind::Hat2).abs() < 1e-12,
                "hat first moment {}", m(DeltaKind::Hat2));
            prop_assert!(m(DeltaKind::Peskin4).abs() < 0.022,
                "cosine first moment {}", m(DeltaKind::Peskin4));
        }

        /// All kernel values are non-negative (needed for stability).
        #[test]
        fn prop_nonnegative(r in -3.0f64..3.0) {
            for kind in KINDS {
                prop_assert!(kind.eval(r) >= 0.0, "{:?} at {}", kind, r);
            }
        }
    }
}
