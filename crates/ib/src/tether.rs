//! Tether (target-point) forces: stiff springs pinning selected fiber nodes
//! to fixed anchor positions. This is how the Figure 1 experiment fastens
//! the plate "in the middle region" while the rest of the structure flaps
//! freely in the flow.

use crate::sheet::FiberSheet;

/// One tethered node: a spring of the given stiffness between the node and
/// a fixed anchor point.
#[derive(Clone, Copy, Debug)]
pub struct Tether {
    /// Flat node index into the sheet.
    pub node: usize,
    /// Anchor position (lattice units).
    pub anchor: [f64; 3],
    /// Spring stiffness.
    pub stiffness: f64,
}

/// A set of tethers applied to a sheet each time step.
#[derive(Clone, Debug, Default)]
pub struct TetherSet {
    pub tethers: Vec<Tether>,
}

impl TetherSet {
    /// No tethers (a free structure, as in the Figure 7/8 experiment).
    pub fn none() -> Self {
        Self::default()
    }

    /// Pins every node within `radius` (in node units, Euclidean over the
    /// fiber/node index plane) of the sheet's index-space centre at its
    /// *current* position — Figure 1's plate fastened in the middle region.
    pub fn center_region(sheet: &FiberSheet, radius: f64, stiffness: f64) -> Self {
        let cf = (sheet.num_fibers as f64 - 1.0) / 2.0;
        let cn = (sheet.nodes_per_fiber as f64 - 1.0) / 2.0;
        let mut tethers = Vec::new();
        for fiber in 0..sheet.num_fibers {
            for node in 0..sheet.nodes_per_fiber {
                let df = fiber as f64 - cf;
                let dn = node as f64 - cn;
                if (df * df + dn * dn).sqrt() <= radius {
                    let idx = sheet.idx(fiber, node);
                    tethers.push(Tether {
                        node: idx,
                        anchor: sheet.pos[idx],
                        stiffness,
                    });
                }
            }
        }
        Self { tethers }
    }

    /// Pins the leading edge (node 0 of every fiber) at its current
    /// position — a flag anchored at its pole.
    pub fn leading_edge(sheet: &FiberSheet, stiffness: f64) -> Self {
        let tethers = (0..sheet.num_fibers)
            .map(|fiber| {
                let idx = sheet.idx(fiber, 0);
                Tether {
                    node: idx,
                    anchor: sheet.pos[idx],
                    stiffness,
                }
            })
            .collect();
        Self { tethers }
    }

    /// Adds the tether forces `−k (X − X₀)` into the sheet's elastic force
    /// (run after kernel 3, before spreading).
    pub fn apply(&self, sheet: &mut FiberSheet) {
        for t in &self.tethers {
            let p = sheet.pos[t.node];
            for a in 0..3 {
                sheet.elastic[t.node][a] -= t.stiffness * (p[a] - t.anchor[a]);
            }
        }
    }

    /// Number of tethered nodes.
    pub fn len(&self) -> usize {
        self.tethers.len()
    }

    /// True if no nodes are tethered.
    pub fn is_empty(&self) -> bool {
        self.tethers.is_empty()
    }

    /// Largest distance of any tethered node from its anchor (diagnostic:
    /// how much the "fastened" region is slipping).
    pub fn max_excursion(&self, sheet: &FiberSheet) -> f64 {
        self.tethers
            .iter()
            .map(|t| {
                let p = sheet.pos[t.node];
                let d = [p[0] - t.anchor[0], p[1] - t.anchor[1], p[2] - t.anchor[2]];
                (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt()
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sheet() -> FiberSheet {
        FiberSheet::paper_sheet(9, 4.0, [10.0, 10.0, 10.0], 1e-3, 0.5)
    }

    #[test]
    fn center_region_pins_middle_only() {
        let s = sheet();
        let t = TetherSet::center_region(&s, 1.5, 10.0);
        assert!(!t.is_empty());
        assert!(t.len() < s.n(), "only the middle region is pinned");
        // The exact centre node (4,4) of the 9x9 sheet must be pinned.
        let centre = s.idx(4, 4);
        assert!(t.tethers.iter().any(|th| th.node == centre));
        // A corner must not be pinned.
        assert!(!t.tethers.iter().any(|th| th.node == s.idx(0, 0)));
    }

    #[test]
    fn leading_edge_pins_one_node_per_fiber() {
        let s = sheet();
        let t = TetherSet::leading_edge(&s, 5.0);
        assert_eq!(t.len(), s.num_fibers);
        for (fiber, th) in t.tethers.iter().enumerate() {
            assert_eq!(th.node, s.idx(fiber, 0));
        }
    }

    #[test]
    fn apply_is_zero_at_anchor_and_restoring_away() {
        let mut s = sheet();
        let t = TetherSet::center_region(&s, 1.0, 3.0);
        s.elastic.iter_mut().for_each(|f| *f = [0.0; 3]);
        t.apply(&mut s);
        assert!(s.elastic.iter().all(|f| f.iter().all(|c| c.abs() < 1e-15)));

        // Displace the centre node: the force must point back to the anchor.
        let centre = s.idx(4, 4);
        s.pos[centre][0] += 0.2;
        s.elastic.iter_mut().for_each(|f| *f = [0.0; 3]);
        t.apply(&mut s);
        assert!((s.elastic[centre][0] + 3.0 * 0.2).abs() < 1e-14);
        assert_eq!(s.elastic[centre][1], 0.0);
        assert!((t.max_excursion(&s) - 0.2).abs() < 1e-14);
    }

    #[test]
    fn apply_accumulates_into_existing_elastic_force() {
        let mut s = sheet();
        let t = TetherSet::leading_edge(&s, 2.0);
        let node = t.tethers[0].node;
        s.elastic[node] = [1.0, 1.0, 1.0];
        s.pos[node][2] += 0.5;
        t.apply(&mut s);
        assert_eq!(s.elastic[node][0], 1.0);
        assert!((s.elastic[node][2] - (1.0 - 2.0 * 0.5)).abs() < 1e-14);
    }

    #[test]
    fn none_is_empty() {
        assert!(TetherSet::none().is_empty());
        assert_eq!(TetherSet::none().max_excursion(&sheet()), 0.0);
    }
}
