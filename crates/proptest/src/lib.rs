//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace builds in an offline container, so the real `proptest`
//! cannot be fetched. The test suites only use a narrow slice of its API —
//! the `proptest!` macro with `name in strategy` bindings over numeric
//! ranges, plus `prop_assert!`/`prop_assert_eq!` — so this crate provides
//! exactly that slice with compatible syntax:
//!
//! * strategies: `Range<T>` for the primitive numeric types (uniform
//!   sampling, end-exclusive) and `RangeInclusive<T>`;
//! * each property runs [`CASES`] times with a deterministic per-test seed
//!   (derived from the property's name), so failures reproduce exactly;
//! * no shrinking — the failing inputs are printed instead.
//!
//! The point is API compatibility for the existing tests, not feature
//! parity; if a future test needs combinators, extend [`Strategy`].

/// Number of cases each property is executed with.
pub const CASES: u32 = 192;

/// Deterministic splitmix64 generator; good enough for test-input
/// sampling and completely reproducible.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seeds from a test name so every property gets a distinct but stable
    /// stream (FNV-1a over the name).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::new(h)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift reduction; the tiny modulo bias is irrelevant for
        // test-case generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A source of test values (the subset of proptest's `Strategy` the suite
/// uses: pure sampling, no value tree / shrinking).
pub trait Strategy {
    /// The values produced.
    type Value: std::fmt::Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Everything a `proptest!`-based test module needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy, TestRng};
}

/// Drop-in subset of proptest's `proptest!` macro: any number of
/// `#[test] fn name(binding in strategy, ...) { body }` items, each run
/// [`CASES`](crate::CASES) times with deterministic sampling.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    // Describe the inputs before the body can consume them.
                    let inputs = format!(concat!($(stringify!($arg), " = {:?}  "),+), $($arg),+);
                    let outcome = (move || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        Ok(())
                    })();
                    if let Err(msg) = outcome {
                        panic!(
                            "property {} failed on case {case}\ninputs: {inputs}\n{msg}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
}

/// proptest-compatible assertion: fails the current case (and test) with
/// the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// proptest-compatible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return Err(format!("assertion failed: {} == {} ({left:?} vs {right:?})",
                stringify!($a), stringify!($b)));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return Err(format!($($fmt)*));
        }
    }};
}

/// proptest-compatible inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err(format!(
                "assertion failed: {} != {} (both {left:?})",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..2000 {
            let v = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..3.5).sample(&mut rng);
            assert!((-2.0..3.5).contains(&f));
            let i = (-5i64..=5).sample(&mut rng);
            assert!((-5..=5).contains(&i));
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(a in 0u64..100, b in 1usize..4) {
            prop_assert!(a < 100);
            prop_assert_eq!(b * 2 / 2, b);
            prop_assert_ne!(b, 0);
        }
    }
}
