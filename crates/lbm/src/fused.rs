//! Fused collide–stream sweep (kernels 5+6 in one pass).
//!
//! The split schedule runs collision as a read-modify-write of all 19
//! populations in `f` and then streams with a second full traversal that
//! re-reads `f` and scatters into `f_new`. The fused sweep computes the
//! BGK post-collision populations in registers and pushes them straight
//! into `f_new` — periodic wrap and half-way bounce-back handled in the
//! same inner loop — so the distribution array is touched twice per step
//! (one read of `f`, one write of `f_new`) instead of four times.
//!
//! Because the register pipeline performs *exactly* the same f64
//! arithmetic as [`crate::collision::bgk_collide_node`] followed by
//! [`crate::boundary::stream_push_routed_node`], the fused plan is
//! bit-identical to the split plan, not merely close. The only observable
//! difference is that `f` is left holding pre-collision values — which no
//! downstream kernel reads: the macroscopic update (kernel 7) reads
//! `f_new`, and the buffer copy (kernel 9) overwrites `f` wholesale.

use crate::boundary::{moving_wall_correction, BoundaryConfig, CoordRoute, StreamRouter};
use crate::collision::bgk_collide_node;
use crate::grid::{Dims, FluidGrid};
use crate::lattice::Q;

/// Collides one node's populations into a register block without writing
/// them back: copies the node's Q-slice of `f` and applies the same BGK
/// relaxation as [`bgk_collide_node`] (velocity-shift forcing — `ueq`
/// already carries the force, so the Guo source term is zero).
#[inline]
pub fn collide_to_registers(f_node: &[f64], rho: f64, ueq: [f64; 3], tau: f64) -> [f64; Q] {
    debug_assert_eq!(f_node.len(), Q);
    let mut regs = [0.0; Q];
    regs.copy_from_slice(f_node);
    bgk_collide_node(&mut regs, rho, ueq, [0.0; 3], tau);
    regs
}

/// Pushes a node's post-collision register block into `f_new`, mirroring
/// [`crate::boundary::stream_push_routed_node`] arm for arm: periodic /
/// interior directions write the neighbour's slot, wall crossings bounce
/// back into the origin node's opposite slot with the moving-wall
/// correction.
#[inline]
pub fn push_registers_node(
    dims: Dims,
    router: &StreamRouter,
    regs: &[f64; Q],
    f_new: &mut [f64],
    node: usize,
    x: usize,
    y: usize,
    z: usize,
) {
    f_new[node * Q] = regs[0];
    for i in 1..Q {
        let v = regs[i];
        match router.route(x, y, z, i) {
            CoordRoute::Neighbor(d) => {
                let dst = (d[0] * dims.ny + d[1]) * dims.nz + d[2];
                f_new[dst * Q + i] = v;
            }
            CoordRoute::BounceBack {
                opposite,
                wall_velocity,
            } => {
                f_new[node * Q + opposite] = v - moving_wall_correction(i, wall_velocity);
            }
        }
    }
}

/// Fused collide+stream over one node: collision in registers, push into
/// `f_new`. `f` is read-only — the post-collision values never land in it.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn fused_node(
    dims: Dims,
    router: &StreamRouter,
    f: &[f64],
    f_new: &mut [f64],
    rho: f64,
    ueq: [f64; 3],
    tau: f64,
    node: usize,
    x: usize,
    y: usize,
    z: usize,
) {
    let regs = collide_to_registers(&f[node * Q..node * Q + Q], rho, ueq, tau);
    push_registers_node(dims, router, &regs, f_new, node, x, y, z);
}

/// Whole-grid fused sweep using the stored macroscopic fields (`rho`,
/// `ueqx..z`) exactly as the split kernels 5+6 would. After this call
/// `f_new` equals what `collide`-then-`stream_push_bounded` would have
/// produced, while `f` still holds the pre-collision populations.
pub fn fused_collide_stream_grid(grid: &mut FluidGrid, bc: &BoundaryConfig, tau: f64) {
    let dims = grid.dims;
    let router = StreamRouter::new(dims, bc);
    // Interior fast path: a node all of whose 18 neighbours are in-grid
    // pushes with constant signed strides — no routing. The strided write
    // targets the same slot `route` would produce, so bit-identity with
    // the split schedule is preserved.
    let mut strides = [0isize; Q];
    for (i, s) in strides.iter_mut().enumerate() {
        let e = crate::lattice::E[i];
        *s = ((e[0] as isize * dims.ny as isize + e[1] as isize) * dims.nz as isize
            + e[2] as isize)
            * Q as isize;
    }
    let f = &grid.f;
    let f_new = &mut grid.f_new;
    for x in 0..dims.nx {
        let x_in = x >= 1 && x + 2 <= dims.nx;
        for y in 0..dims.ny {
            let xy_in = x_in && y >= 1 && y + 2 <= dims.ny;
            for z in 0..dims.nz {
                let node = (x * dims.ny + y) * dims.nz + z;
                let rho = grid.rho[node];
                let ueq = [grid.ueqx[node], grid.ueqy[node], grid.ueqz[node]];
                if xy_in && z >= 1 && z + 2 <= dims.nz {
                    let regs = collide_to_registers(&f[node * Q..node * Q + Q], rho, ueq, tau);
                    let base = (node * Q) as isize;
                    f_new[node * Q] = regs[0];
                    for i in 1..Q {
                        f_new[(base + strides[i]) as usize + i] = regs[i];
                    }
                } else {
                    fused_node(dims, &router, f, f_new, rho, ueq, tau, node, x, y, z);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::{stream_push_bounded, AxisBoundary};
    use crate::equilibrium::feq;
    use crate::macroscopic::update_velocity_shifted;
    use proptest::prelude::*;

    /// Builds a grid with a perturbed near-equilibrium state and matching
    /// macroscopic fields, the way the solvers leave it before kernel 5.
    fn perturbed_grid(dims: Dims, tau: f64, seed: u64) -> FluidGrid {
        let mut g = FluidGrid::new(dims);
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for node in 0..g.n() {
            for i in 0..Q {
                g.f[node * Q + i] = feq(i, 1.0, [0.02, -0.01, 0.015]) * (1.0 + 0.05 * next());
            }
            g.fx[node] = 1e-4 * (next() - 0.5);
            g.fy[node] = 1e-4 * (next() - 0.5);
            g.fz[node] = 1e-4 * (next() - 0.5);
        }
        // Derive consistent rho / ueq fields from the perturbed state.
        let f = g.f.clone();
        g.f_new.copy_from_slice(&f);
        update_velocity_shifted(&mut g, tau);
        g
    }

    /// Split reference: kernel 5 (BGK toward feq(rho, ueq)) then kernel 6.
    fn split_reference(grid: &mut FluidGrid, bc: &BoundaryConfig, tau: f64) {
        for node in 0..grid.n() {
            let rho = grid.rho[node];
            let ueq = [grid.ueqx[node], grid.ueqy[node], grid.ueqz[node]];
            let f = &mut grid.f[node * Q..node * Q + Q];
            bgk_collide_node(f, rho, ueq, [0.0; 3], tau);
        }
        stream_push_bounded(grid, bc);
    }

    fn boundary_cases() -> Vec<BoundaryConfig> {
        let walls = AxisBoundary::Walls {
            lo: [0.0; 3],
            hi: [0.0; 3],
        };
        let lid = AxisBoundary::Walls {
            lo: [0.0; 3],
            hi: [0.01, 0.0, 0.0],
        };
        vec![
            BoundaryConfig::periodic(),
            BoundaryConfig::tunnel(),
            BoundaryConfig {
                x: walls,
                y: walls,
                z: walls,
            },
            BoundaryConfig {
                x: AxisBoundary::Periodic,
                y: lid,
                z: walls,
            },
        ]
    }

    #[test]
    fn fused_is_bit_identical_to_split_one_sweep() {
        let tau = 0.8;
        for (case, bc) in boundary_cases().into_iter().enumerate() {
            let dims = Dims::new(5, 4, 3);
            let mut split = perturbed_grid(dims, tau, case as u64 + 1);
            let mut fused = split.clone();
            split_reference(&mut split, &bc, tau);
            fused_collide_stream_grid(&mut fused, &bc, tau);
            assert_eq!(
                split.f_new, fused.f_new,
                "case {case}: fused f_new must be bit-identical to split"
            );
        }
    }

    #[test]
    fn fused_leaves_f_untouched() {
        let dims = Dims::new(4, 4, 4);
        let tau = 0.9;
        let g0 = perturbed_grid(dims, tau, 7);
        let mut g = g0.clone();
        fused_collide_stream_grid(&mut g, &BoundaryConfig::tunnel(), tau);
        assert_eq!(g.f, g0.f, "fused sweep must not write the source buffer");
    }

    #[test]
    fn collide_to_registers_matches_in_place_collision() {
        let tau = 0.7;
        let mut f = [0.0; Q];
        for (i, v) in f.iter_mut().enumerate() {
            *v = feq(i, 1.1, [0.01, 0.02, -0.03]) * (1.0 + 0.01 * i as f64);
        }
        let rho = 1.1;
        let ueq = [0.012, 0.018, -0.031];
        let regs = collide_to_registers(&f, rho, ueq, tau);
        let mut reference = f;
        bgk_collide_node(&mut reference, rho, ueq, [0.0; 3], tau);
        assert_eq!(regs, reference);
    }

    proptest! {
        /// Bit-identical to split over random shapes, boundary mixes and
        /// repeated sweeps (with the kernel-7 + kernel-9 glue between
        /// sweeps, like a real multi-step run).
        #[test]
        fn prop_fused_equals_split_multi_sweep(
            nx in 2usize..6,
            ny in 2usize..6,
            nz in 2usize..6,
            case in 0usize..4,
            seed in 0u64..1000,
        ) {
            let dims = Dims::new(nx, ny, nz);
            let tau = 0.75;
            let bc = boundary_cases()[case];
            let mut split = perturbed_grid(dims, tau, seed);
            let mut fused = split.clone();
            for sweep in 0..10 {
                split_reference(&mut split, &bc, tau);
                fused_collide_stream_grid(&mut fused, &bc, tau);
                prop_assert_eq!(
                    &split.f_new, &fused.f_new,
                    "sweep {} diverged", sweep
                );
                for g in [&mut split, &mut fused] {
                    update_velocity_shifted(g, tau);
                    g.copy_distributions();
                }
            }
        }
    }
}
