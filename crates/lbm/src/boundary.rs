//! Boundary conditions: periodic axes and half-way bounce-back walls
//! (optionally moving, for Couette-flow validation), plus the uniform body
//! force that drives the paper's tunnel flow (Figure 7).
//!
//! Bounce-back is fused into streaming: a population that would cross a wall
//! is reflected back into its origin node with the opposite direction, which
//! places the no-slip plane half a lattice spacing beyond the last fluid
//! node (second-order accurate).

use crate::grid::{Dims, FluidGrid};
use crate::lattice::{E, EF, OPPOSITE, Q, W};

/// Boundary treatment of one axis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AxisBoundary {
    /// Populations wrap around.
    Periodic,
    /// Solid walls just outside both end planes, each with a tangential
    /// velocity (zero for no-slip).
    Walls { lo: [f64; 3], hi: [f64; 3] },
}

impl AxisBoundary {
    /// No-slip walls at both ends.
    pub const fn no_slip() -> Self {
        AxisBoundary::Walls {
            lo: [0.0; 3],
            hi: [0.0; 3],
        }
    }

    /// True if this axis wraps.
    pub fn is_periodic(&self) -> bool {
        matches!(self, AxisBoundary::Periodic)
    }
}

/// Boundary configuration of the whole box. The paper's tunnel is periodic
/// in x with no-slip walls in y and z.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoundaryConfig {
    pub x: AxisBoundary,
    pub y: AxisBoundary,
    pub z: AxisBoundary,
}

impl BoundaryConfig {
    /// Fully periodic box (used by the Taylor–Green validation).
    pub const fn periodic() -> Self {
        Self {
            x: AxisBoundary::Periodic,
            y: AxisBoundary::Periodic,
            z: AxisBoundary::Periodic,
        }
    }

    /// The paper's tunnel: periodic in x, no-slip walls in y and z.
    pub const fn tunnel() -> Self {
        Self {
            x: AxisBoundary::Periodic,
            y: AxisBoundary::no_slip(),
            z: AxisBoundary::no_slip(),
        }
    }

    #[inline]
    fn axis(&self, a: usize) -> AxisBoundary {
        match a {
            0 => self.x,
            1 => self.y,
            _ => self.z,
        }
    }

    /// Decides where a population leaving `(x, y, z)` along direction `i`
    /// lands: either a (possibly wrapped) neighbour node, or reflected back
    /// off a wall with momentum exchange for a moving wall.
    #[inline]
    pub fn route(&self, dims: Dims, x: usize, y: usize, z: usize, i: usize) -> Route {
        match self.route_coords(dims, x, y, z, i) {
            CoordRoute::Neighbor(dst) => Route::Neighbor(dims.idx(dst[0], dst[1], dst[2])),
            CoordRoute::BounceBack {
                opposite,
                wall_velocity,
            } => Route::BounceBack {
                opposite,
                wall_velocity,
            },
        }
    }

    /// Like [`BoundaryConfig::route`] but returns the destination
    /// *coordinates*, so layouts with a different flat index (the cube grid)
    /// can share the routing logic.
    #[inline]
    pub fn route_coords(&self, dims: Dims, x: usize, y: usize, z: usize, i: usize) -> CoordRoute {
        let e = E[i];
        let pos = [x as i64, y as i64, z as i64];
        let ext = [dims.nx as i64, dims.ny as i64, dims.nz as i64];
        let mut dst = [0usize; 3];
        for a in 0..3 {
            let t = pos[a] + e[a] as i64;
            if t < 0 || t >= ext[a] {
                match self.axis(a) {
                    AxisBoundary::Periodic => dst[a] = (t.rem_euclid(ext[a])) as usize,
                    AxisBoundary::Walls { lo, hi } => {
                        let uw = if t < 0 { lo } else { hi };
                        return CoordRoute::BounceBack {
                            opposite: OPPOSITE[i],
                            wall_velocity: uw,
                        };
                    }
                }
            } else {
                dst[a] = t as usize;
            }
        }
        CoordRoute::Neighbor(dst)
    }
}

/// Coordinate-space routing result (layout-independent form of [`Route`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CoordRoute {
    /// Lands in the node at these coordinates, same direction index.
    Neighbor([usize; 3]),
    /// Reflected off a wall back into the origin node.
    BounceBack {
        opposite: usize,
        wall_velocity: [f64; 3],
    },
}

/// Precomputed routing tables for streaming: per-axis neighbour maps with a
/// wall sentinel, so the hot loop replaces the generic modular arithmetic
/// of [`BoundaryConfig::route_coords`] with three table lookups per
/// direction. Semantically identical to `route_coords` (tested).
pub struct StreamRouter {
    /// `fwd[a][v]` = coordinate of `v + 1` on axis `a`, or `WALL`.
    fwd: [Vec<usize>; 3],
    /// `bwd[a][v]` = coordinate of `v - 1` on axis `a`, or `WALL`.
    bwd: [Vec<usize>; 3],
    /// Wall velocities per axis: [lo, hi].
    wall: [[[f64; 3]; 2]; 3],
}

impl StreamRouter {
    /// Sentinel marking a wall crossing in the neighbour tables.
    const WALL: usize = usize::MAX;

    /// Builds the tables for a grid and boundary configuration.
    pub fn new(dims: Dims, bc: &BoundaryConfig) -> Self {
        let ext = [dims.nx, dims.ny, dims.nz];
        let mut fwd: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut bwd: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut wall = [[[0.0; 3]; 2]; 3];
        for a in 0..3 {
            let n = ext[a];
            let axis = match a {
                0 => bc.x,
                1 => bc.y,
                _ => bc.z,
            };
            let periodic = axis.is_periodic();
            if let AxisBoundary::Walls { lo, hi } = axis {
                wall[a] = [lo, hi];
            }
            fwd[a] = (0..n)
                .map(|v| {
                    if v + 1 < n {
                        v + 1
                    } else if periodic {
                        0
                    } else {
                        Self::WALL
                    }
                })
                .collect();
            bwd[a] = (0..n)
                .map(|v| {
                    if v > 0 {
                        v - 1
                    } else if periodic {
                        n - 1
                    } else {
                        Self::WALL
                    }
                })
                .collect();
        }
        Self { fwd, bwd, wall }
    }

    /// Routes a population leaving `(x, y, z)` along direction `i`.
    /// Matches [`BoundaryConfig::route_coords`] exactly, including which
    /// wall's velocity applies when a diagonal crosses two walls (the
    /// lowest-numbered axis wins, as in the generic routine).
    #[inline]
    pub fn route(&self, x: usize, y: usize, z: usize, i: usize) -> CoordRoute {
        let e = E[i];
        let pos = [x, y, z];
        let mut dst = [0usize; 3];
        for a in 0..3 {
            let t = match e[a] {
                0 => pos[a],
                1 => self.fwd[a][pos[a]],
                _ => self.bwd[a][pos[a]],
            };
            if t == Self::WALL {
                let side = usize::from(e[a] > 0);
                return CoordRoute::BounceBack {
                    opposite: OPPOSITE[i],
                    wall_velocity: self.wall[a][side],
                };
            }
            dst[a] = t;
        }
        CoordRoute::Neighbor(dst)
    }
}

/// Destination of one streamed population.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Route {
    /// Lands in the given node, same direction index.
    Neighbor(usize),
    /// Reflected off a wall back into the origin node.
    BounceBack {
        opposite: usize,
        wall_velocity: [f64; 3],
    },
}

/// Momentum-exchange correction for a population of weight index `i`
/// bouncing off a wall moving with `u_w`:
/// `f'_{opp(i)} = f_i − 6 w_i ρ_w (e_i · u_w)` with `ρ_w ≈ 1`.
#[inline]
pub fn moving_wall_correction(i: usize, wall_velocity: [f64; 3]) -> f64 {
    let eu =
        EF[i][0] * wall_velocity[0] + EF[i][1] * wall_velocity[1] + EF[i][2] * wall_velocity[2];
    6.0 * W[i] * eu
}

/// Push streaming over the whole grid honouring the boundary configuration.
/// With an all-periodic config this equals [`crate::streaming::stream_push`].
pub fn stream_push_bounded(grid: &mut FluidGrid, bc: &BoundaryConfig) {
    let dims = grid.dims;
    let router = StreamRouter::new(dims, bc);
    for x in 0..dims.nx {
        for y in 0..dims.ny {
            for z in 0..dims.nz {
                let node = dims.idx(x, y, z);
                stream_push_routed_node(dims, &router, &grid.f, &mut grid.f_new, node, x, y, z);
            }
        }
    }
}

/// Pushes one node's populations using precomputed routing tables. Exactly
/// equivalent to [`stream_push_bounded_node`], several times faster.
#[inline]
pub fn stream_push_routed_node(
    dims: Dims,
    router: &StreamRouter,
    f: &[f64],
    f_new: &mut [f64],
    node: usize,
    x: usize,
    y: usize,
    z: usize,
) {
    f_new[node * Q] = f[node * Q];
    for i in 1..Q {
        let v = f[node * Q + i];
        match router.route(x, y, z, i) {
            CoordRoute::Neighbor(d) => {
                let dst = (d[0] * dims.ny + d[1]) * dims.nz + d[2];
                f_new[dst * Q + i] = v;
            }
            CoordRoute::BounceBack {
                opposite,
                wall_velocity,
            } => {
                f_new[node * Q + opposite] = v - moving_wall_correction(i, wall_velocity);
            }
        }
    }
}

/// Pushes one node's populations with boundary routing. Reused per-cube by
/// the cube-centric solver.
#[inline]
pub fn stream_push_bounded_node(
    dims: Dims,
    bc: &BoundaryConfig,
    f: &[f64],
    f_new: &mut [f64],
    node: usize,
    x: usize,
    y: usize,
    z: usize,
) {
    f_new[node * Q] = f[node * Q];
    for i in 1..Q {
        let v = f[node * Q + i];
        match bc.route(dims, x, y, z, i) {
            Route::Neighbor(dst) => f_new[dst * Q + i] = v,
            Route::BounceBack {
                opposite,
                wall_velocity,
            } => {
                f_new[node * Q + opposite] = v - moving_wall_correction(i, wall_velocity);
            }
        }
    }
}

/// Pull streaming honouring the boundary configuration: node `(x,y,z)`
/// receives along `i` either the upwind neighbour's population or its own
/// reflected population when the upwind node lies beyond a wall.
#[inline]
pub fn stream_pull_bounded_node(
    dims: Dims,
    bc: &BoundaryConfig,
    f: &[f64],
    out: &mut [f64],
    x: usize,
    y: usize,
    z: usize,
) {
    debug_assert_eq!(out.len(), Q);
    let node = dims.idx(x, y, z);
    out[0] = f[node * Q];
    for i in 1..Q {
        // The population arriving along i left the upwind node along i; the
        // upwind node sits at -e_i. Routing the *outgoing* opposite
        // population from this node tells us whether the upwind node exists.
        let o = OPPOSITE[i];
        match bc.route(dims, x, y, z, o) {
            Route::Neighbor(src) => out[i] = f[src * Q + i],
            Route::BounceBack { wall_velocity, .. } => {
                // Own population toward the wall comes back reversed.
                out[i] = f[node * Q + o] - moving_wall_correction(o, wall_velocity);
            }
        }
    }
}

/// Pulls one node's `f_new` values using precomputed routing tables.
/// Exactly equivalent to [`stream_pull_bounded_node`].
#[inline]
pub fn stream_pull_routed_node(
    dims: Dims,
    router: &StreamRouter,
    f: &[f64],
    out: &mut [f64],
    x: usize,
    y: usize,
    z: usize,
) {
    debug_assert_eq!(out.len(), Q);
    let node = dims.idx(x, y, z);
    out[0] = f[node * Q];
    for i in 1..Q {
        let o = OPPOSITE[i];
        match router.route(x, y, z, o) {
            CoordRoute::Neighbor(d) => {
                let src = (d[0] * dims.ny + d[1]) * dims.nz + d[2];
                out[i] = f[src * Q + i];
            }
            CoordRoute::BounceBack { wall_velocity, .. } => {
                out[i] = f[node * Q + o] - moving_wall_correction(o, wall_velocity);
            }
        }
    }
}

/// Pull streaming over the whole grid honouring the boundary configuration.
pub fn stream_pull_bounded(grid: &mut FluidGrid, bc: &BoundaryConfig) {
    let dims = grid.dims;
    let router = StreamRouter::new(dims, bc);
    let f = &grid.f;
    let f_new = &mut grid.f_new;
    for x in 0..dims.nx {
        for y in 0..dims.ny {
            for z in 0..dims.nz {
                let node = dims.idx(x, y, z);
                stream_pull_routed_node(
                    dims,
                    &router,
                    f,
                    &mut f_new[node * Q..node * Q + Q],
                    x,
                    y,
                    z,
                );
            }
        }
    }
}

/// Adds a uniform body force (e.g. the pressure-gradient surrogate that
/// drives the tunnel flow) to the grid's force field.
pub fn add_uniform_body_force(grid: &mut FluidGrid, g: [f64; 3]) {
    for v in grid.fx.iter_mut() {
        *v += g[0];
    }
    for v in grid.fy.iter_mut() {
        *v += g[1];
    }
    for v in grid.fz.iter_mut() {
        *v += g[2];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::stream_push;

    #[test]
    fn periodic_config_matches_plain_streaming() {
        let dims = Dims::new(3, 4, 5);
        let mut a = FluidGrid::new(dims);
        for (k, v) in a.f.iter_mut().enumerate() {
            *v = (k % 97) as f64;
        }
        let mut b = a.clone();
        stream_push(&mut a);
        stream_push_bounded(&mut b, &BoundaryConfig::periodic());
        assert_eq!(a.f_new, b.f_new);
    }

    #[test]
    fn wall_reflects_population_into_opposite_slot() {
        let dims = Dims::new(4, 4, 4);
        let bc = BoundaryConfig::tunnel();
        let mut g = FluidGrid::new(dims);
        // Direction 3 is +y; from y = ny-1 it must bounce back into slot 4.
        let node = dims.idx(1, 3, 2);
        g.f[node * Q + 3] = 2.5;
        stream_push_bounded(&mut g, &bc);
        assert_eq!(g.f_new[node * Q + 4], 2.5);
        let total: f64 = g.f_new.iter().sum();
        assert_eq!(total, 2.5, "population must not leak through the wall");
    }

    #[test]
    fn periodic_axis_still_wraps_in_tunnel() {
        let dims = Dims::new(4, 4, 4);
        let bc = BoundaryConfig::tunnel();
        let mut g = FluidGrid::new(dims);
        let node = dims.idx(3, 1, 1); // +x from the last x-plane wraps
        g.f[node * Q + 1] = 1.0;
        stream_push_bounded(&mut g, &bc);
        assert_eq!(g.f_new[dims.idx(0, 1, 1) * Q + 1], 1.0);
    }

    #[test]
    fn diagonal_population_bounces_on_wall_crossing() {
        let dims = Dims::new(4, 4, 4);
        let bc = BoundaryConfig::tunnel();
        let mut g = FluidGrid::new(dims);
        // Direction 7 is (+1,+1,0); from (0, ny-1, 0) it crosses the y wall.
        let node = dims.idx(0, 3, 0);
        g.f[node * Q + 7] = 1.5;
        stream_push_bounded(&mut g, &bc);
        assert_eq!(g.f_new[node * Q + OPPOSITE[7]], 1.5);
    }

    #[test]
    fn mass_conserved_with_static_walls() {
        let dims = Dims::new(5, 4, 3);
        let bc = BoundaryConfig::tunnel();
        let mut g = FluidGrid::new(dims);
        for (k, v) in g.f.iter_mut().enumerate() {
            *v = 1.0 + (k % 13) as f64 * 0.1;
        }
        let before: f64 = g.f.iter().sum();
        stream_push_bounded(&mut g, &bc);
        let after: f64 = g.f_new.iter().sum();
        assert!((before - after).abs() < 1e-9);
    }

    #[test]
    fn moving_wall_injects_momentum() {
        let uw = [0.05, 0.0, 0.0];
        // Population 3 (+y) hitting a lid moving along +x: the reflected
        // value is reduced by 6 w ρ (e·u_w) — zero here since e_3 ⊥ u_w.
        assert_eq!(moving_wall_correction(3, uw), 0.0);
        // Population 7 (+1,+1,0) has e·u_w = 0.05.
        let c = moving_wall_correction(7, uw);
        assert!((c - 6.0 * W[7] * 0.05).abs() < 1e-15);
    }

    #[test]
    fn pull_bounded_matches_push_bounded() {
        let dims = Dims::new(4, 3, 5);
        let bc = BoundaryConfig {
            x: AxisBoundary::Periodic,
            y: AxisBoundary::no_slip(),
            z: AxisBoundary::Walls {
                lo: [0.0; 3],
                hi: [0.02, 0.0, 0.0],
            },
        };
        let mut a = FluidGrid::new(dims);
        for (k, v) in a.f.iter_mut().enumerate() {
            *v = 0.5 + ((k * 31) % 101) as f64 * 0.01;
        }
        let mut b = a.clone();
        stream_push_bounded(&mut a, &bc);
        stream_pull_bounded(&mut b, &bc);
        for (k, (x, y)) in a.f_new.iter().zip(&b.f_new).enumerate() {
            assert!((x - y).abs() < 1e-15, "slot {k}: {x} vs {y}");
        }
    }

    #[test]
    fn route_classifies_interior_and_boundary() {
        let dims = Dims::new(4, 4, 4);
        let bc = BoundaryConfig::tunnel();
        // Interior node: all routes are neighbours.
        for i in 1..Q {
            assert!(
                matches!(bc.route(dims, 1, 1, 1, i), Route::Neighbor(_)),
                "dir {i}"
            );
        }
        // Node on the y = 0 face: -y populations bounce.
        assert!(matches!(
            bc.route(dims, 1, 0, 1, 4),
            Route::BounceBack { opposite: 3, .. }
        ));
    }

    #[test]
    fn stream_router_matches_generic_routing() {
        let dims = Dims::new(5, 4, 3);
        for bc in [
            BoundaryConfig::periodic(),
            BoundaryConfig::tunnel(),
            BoundaryConfig {
                x: AxisBoundary::Walls {
                    lo: [0.0; 3],
                    hi: [0.03, 0.0, 0.0],
                },
                y: AxisBoundary::Periodic,
                z: AxisBoundary::no_slip(),
            },
        ] {
            let router = StreamRouter::new(dims, &bc);
            for (x, y, z) in dims.iter_coords() {
                for i in 0..Q {
                    assert_eq!(
                        router.route(x, y, z, i),
                        bc.route_coords(dims, x, y, z, i),
                        "({x},{y},{z}) dir {i} bc {bc:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn routed_streaming_functions_match_reference() {
        // The routed push/pull node functions must equal the generic ones
        // over a full wall-ful grid.
        let dims = Dims::new(4, 4, 4);
        let bc = BoundaryConfig {
            x: AxisBoundary::Walls {
                lo: [0.0; 3],
                hi: [0.01, 0.0, 0.0],
            },
            y: AxisBoundary::no_slip(),
            z: AxisBoundary::Periodic,
        };
        let router = StreamRouter::new(dims, &bc);
        let mut f = vec![0.0; dims.n() * Q];
        for (k, v) in f.iter_mut().enumerate() {
            *v = ((k * 17) % 23) as f64 * 0.01 + 0.4;
        }
        let mut a = vec![0.0; dims.n() * Q];
        let mut b = vec![0.0; dims.n() * Q];
        for (x, y, z) in dims.iter_coords() {
            let node = dims.idx(x, y, z);
            stream_push_bounded_node(dims, &bc, &f, &mut a, node, x, y, z);
            stream_push_routed_node(dims, &router, &f, &mut b, node, x, y, z);
        }
        assert_eq!(a, b, "routed push differs from generic push");
        let mut pa = vec![0.0; Q];
        let mut pb = vec![0.0; Q];
        for (x, y, z) in dims.iter_coords() {
            stream_pull_bounded_node(dims, &bc, &f, &mut pa, x, y, z);
            stream_pull_routed_node(dims, &router, &f, &mut pb, x, y, z);
            assert_eq!(pa, pb, "routed pull differs at ({x},{y},{z})");
        }
    }

    #[test]
    fn add_uniform_body_force_accumulates() {
        let mut g = FluidGrid::new(Dims::new(2, 2, 2));
        add_uniform_body_force(&mut g, [1e-3, 0.0, -2e-3]);
        add_uniform_body_force(&mut g, [1e-3, 0.0, 0.0]);
        assert!(g.fx.iter().all(|&v| (v - 2e-3).abs() < 1e-18));
        assert!(g.fy.iter().all(|&v| v == 0.0));
        assert!(g.fz.iter().all(|&v| (v + 2e-3).abs() < 1e-18));
    }
}
