//! Collision operators: BGK single-relaxation-time with Guo forcing (the
//! operator used by the LBM-IB method) and a two-relaxation-time (TRT)
//! variant kept as an ablation.
//!
//! This is kernel 5 of the paper (`compute_fluid_collision`), the kernel
//! Table I charges 73.2% of the sequential run time to.

use crate::equilibrium::feq_all;
use crate::grid::FluidGrid;
use crate::lattice::{EF, OPPOSITE, Q, W};

/// Relaxation parameters of the collision operator.
#[derive(Clone, Copy, Debug)]
pub struct Relaxation {
    /// BGK relaxation time τ (in units of the time step). Must exceed 0.5
    /// for positive viscosity.
    pub tau: f64,
}

impl Relaxation {
    /// Creates a relaxation setting, validating τ > 0.5.
    pub fn new(tau: f64) -> Self {
        assert!(
            tau > 0.5,
            "tau must exceed 0.5 for positive viscosity, got {tau}"
        );
        Self { tau }
    }

    /// Kinematic viscosity implied by τ: `ν = c_s² (τ − ½) = (τ − ½)/3`.
    pub fn viscosity(&self) -> f64 {
        (self.tau - 0.5) / 3.0
    }

    /// Relaxation time for a target viscosity.
    pub fn from_viscosity(nu: f64) -> Self {
        assert!(nu > 0.0, "viscosity must be positive, got {nu}");
        Self::new(3.0 * nu + 0.5)
    }
}

/// Guo et al. discrete forcing term for direction `i`:
///
/// `S_i = (1 − 1/2τ) w_i [3 (e_i − u) + 9 (e_i·u) e_i] · F`
///
/// Its zeroth moment vanishes (mass is untouched) and its first moment is
/// `(1 − 1/2τ) F`, which combined with the `F/2` shift in the velocity
/// definition makes the scheme second-order accurate in the presence of the
/// spread elastic force.
#[inline]
pub fn guo_source(i: usize, u: [f64; 3], force: [f64; 3], tau: f64) -> f64 {
    let eu = EF[i][0] * u[0] + EF[i][1] * u[1] + EF[i][2] * u[2];
    let ef = EF[i][0] * force[0] + EF[i][1] * force[1] + EF[i][2] * force[2];
    let uf = u[0] * force[0] + u[1] * force[1] + u[2] * force[2];
    (1.0 - 0.5 / tau) * W[i] * (3.0 * (ef - uf) + 9.0 * eu * ef)
}

/// Applies the BGK collision with Guo forcing to one node's distributions,
/// in place. `f` must have length [`Q`].
#[inline]
pub fn bgk_collide_node(f: &mut [f64], rho: f64, u: [f64; 3], force: [f64; 3], tau: f64) {
    debug_assert_eq!(f.len(), Q);
    let mut eq = [0.0; Q];
    feq_all(rho, u, &mut eq);
    let omega = 1.0 / tau;
    let pref = 1.0 - 0.5 * omega;
    let uf = u[0] * force[0] + u[1] * force[1] + u[2] * force[2];
    for i in 0..Q {
        let eu = EF[i][0] * u[0] + EF[i][1] * u[1] + EF[i][2] * u[2];
        let ef = EF[i][0] * force[0] + EF[i][1] * force[1] + EF[i][2] * force[2];
        let src = pref * W[i] * (3.0 * (ef - uf) + 9.0 * eu * ef);
        f[i] += omega * (eq[i] - f[i]) + src;
    }
}

/// Two-relaxation-time collision with Guo forcing, used only by the
/// ablation benchmarks. The symmetric part relaxes with `1/τ` (fixing the
/// viscosity), the antisymmetric part with a rate chosen by the "magic"
/// parameter `Λ = 3/16`, which places half-way bounce-back walls exactly on
/// the wall plane.
#[inline]
pub fn trt_collide_node(f: &mut [f64], rho: f64, u: [f64; 3], force: [f64; 3], tau: f64) {
    debug_assert_eq!(f.len(), Q);
    const LAMBDA: f64 = 3.0 / 16.0;
    let mut eq = [0.0; Q];
    feq_all(rho, u, &mut eq);
    let omega_plus = 1.0 / tau;
    let tau_minus = 0.5 + LAMBDA / (tau - 0.5);
    let omega_minus = 1.0 / tau_minus;
    let pref = 1.0 - 0.5 * omega_plus;
    let uf = u[0] * force[0] + u[1] * force[1] + u[2] * force[2];

    let mut post = [0.0; Q];
    for i in 0..Q {
        let o = OPPOSITE[i];
        let f_plus = 0.5 * (f[i] + f[o]);
        let f_minus = 0.5 * (f[i] - f[o]);
        let eq_plus = 0.5 * (eq[i] + eq[o]);
        let eq_minus = 0.5 * (eq[i] - eq[o]);
        let eu = EF[i][0] * u[0] + EF[i][1] * u[1] + EF[i][2] * u[2];
        let ef = EF[i][0] * force[0] + EF[i][1] * force[1] + EF[i][2] * force[2];
        let src = pref * W[i] * (3.0 * (ef - uf) + 9.0 * eu * ef);
        post[i] = f[i] - omega_plus * (f_plus - eq_plus) - omega_minus * (f_minus - eq_minus) + src;
    }
    f.copy_from_slice(&post);
}

/// Sequential whole-grid collision (kernel 5): applies [`bgk_collide_node`]
/// to every node using the macroscopic fields stored in the grid (computed
/// by kernel 7 of the previous step) and the current body force.
pub fn collide_grid(grid: &mut FluidGrid, relax: Relaxation) {
    let n = grid.n();
    for node in 0..n {
        let rho = grid.rho[node];
        let u = [grid.ux[node], grid.uy[node], grid.uz[node]];
        let force = [grid.fx[node], grid.fy[node], grid.fz[node]];
        bgk_collide_node(
            &mut grid.f[node * Q..node * Q + Q],
            rho,
            u,
            force,
            relax.tau,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::feq;
    use crate::grid::Dims;
    use proptest::prelude::*;

    fn node_at_equilibrium(rho: f64, u: [f64; 3]) -> [f64; Q] {
        let mut f = [0.0; Q];
        for i in 0..Q {
            f[i] = feq(i, rho, u);
        }
        f
    }

    #[test]
    fn relaxation_viscosity_round_trip() {
        let r = Relaxation::from_viscosity(0.1);
        assert!((r.viscosity() - 0.1).abs() < 1e-15);
        assert!((Relaxation::new(1.0).viscosity() - 1.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "tau must exceed 0.5")]
    fn tau_below_half_rejected() {
        Relaxation::new(0.5);
    }

    #[test]
    fn equilibrium_is_fixed_point_without_force() {
        let u = [0.02, -0.04, 0.01];
        let mut f = node_at_equilibrium(1.1, u);
        let want = f;
        bgk_collide_node(&mut f, 1.1, u, [0.0; 3], 0.8);
        for i in 0..Q {
            assert!((f[i] - want[i]).abs() < 1e-14, "dir {i}");
        }
    }

    #[test]
    fn guo_source_zeroth_moment_vanishes() {
        let u = [0.03, 0.05, -0.02];
        let force = [1e-4, -2e-4, 5e-5];
        let s: f64 = (0..Q).map(|i| guo_source(i, u, force, 0.7)).sum();
        assert!(s.abs() < 1e-18, "mass injected by source: {s}");
    }

    #[test]
    fn guo_source_first_moment_is_scaled_force() {
        let u = [0.03, 0.05, -0.02];
        let force = [1e-4, -2e-4, 5e-5];
        let tau = 0.9;
        for a in 0..3 {
            let m: f64 = (0..Q)
                .map(|i| guo_source(i, u, force, tau) * EF[i][a])
                .sum();
            let want = (1.0 - 0.5 / tau) * force[a];
            assert!((m - want).abs() < 1e-16, "axis {a}: {m} vs {want}");
        }
    }

    #[test]
    fn bgk_conserves_mass_exactly() {
        let u = [0.05, 0.01, -0.03];
        let mut f = node_at_equilibrium(1.0, u);
        // Perturb away from equilibrium, keeping a record of the mass.
        f[3] += 0.01;
        f[11] -= 0.004;
        let mass_before: f64 = f.iter().sum();
        bgk_collide_node(&mut f, mass_before, u, [1e-4, 0.0, -1e-4], 0.8);
        let mass_after: f64 = f.iter().sum();
        assert!((mass_after - mass_before).abs() < 1e-15);
    }

    #[test]
    fn tau_one_lands_on_equilibrium_plus_source() {
        let rho = 1.02;
        let u = [0.01, 0.02, 0.03];
        let force = [2e-4, 0.0, -1e-4];
        let mut f = [0.0; Q];
        for i in 0..Q {
            f[i] = feq(i, rho, u) + 0.001 * (i as f64 - 9.0);
        }
        bgk_collide_node(&mut f, rho, u, force, 1.0);
        for i in 0..Q {
            let want = feq(i, rho, u) + guo_source(i, u, force, 1.0);
            assert!((f[i] - want).abs() < 1e-14, "dir {i}");
        }
    }

    #[test]
    fn trt_matches_bgk_viscous_moments_at_equilibrium() {
        // At equilibrium both operators are the identity (plus source).
        let rho = 1.0;
        let u = [0.04, -0.01, 0.02];
        let mut f_bgk = node_at_equilibrium(rho, u);
        let mut f_trt = f_bgk;
        bgk_collide_node(&mut f_bgk, rho, u, [0.0; 3], 0.75);
        trt_collide_node(&mut f_trt, rho, u, [0.0; 3], 0.75);
        for i in 0..Q {
            assert!((f_bgk[i] - f_trt[i]).abs() < 1e-14, "dir {i}");
        }
    }

    #[test]
    fn trt_conserves_mass_and_momentum_at_consistent_moments() {
        // Collision operators conserve mass/momentum only when fed the
        // moments of the actual state, so compute (rho, u) from f itself.
        let mut f = node_at_equilibrium(1.0, [0.02, 0.00, -0.01]);
        f[7] += 0.003;
        f[8] += 0.001;
        let rho: f64 = f.iter().sum();
        let mom = |f: &[f64; Q], a: usize| -> f64 { (0..Q).map(|i| f[i] * EF[i][a]).sum() };
        let u = [mom(&f, 0) / rho, mom(&f, 1) / rho, mom(&f, 2) / rho];
        let p_before = [mom(&f, 0), mom(&f, 1), mom(&f, 2)];
        let mut f_trt = f;
        trt_collide_node(&mut f_trt, rho, u, [0.0; 3], 0.8);
        let mass_after: f64 = f_trt.iter().sum();
        assert!((mass_after - rho).abs() < 1e-15);
        for a in 0..3 {
            assert!((mom(&f_trt, a) - p_before[a]).abs() < 1e-15, "axis {a}");
        }
        // BGK at the same consistent moments also conserves both.
        let mut f_bgk = f;
        bgk_collide_node(&mut f_bgk, rho, u, [0.0; 3], 0.8);
        let mass_bgk: f64 = f_bgk.iter().sum();
        assert!((mass_bgk - rho).abs() < 1e-15);
        for a in 0..3 {
            assert!((mom(&f_bgk, a) - p_before[a]).abs() < 1e-15, "axis {a}");
        }
    }

    #[test]
    fn collide_grid_touches_every_node() {
        let mut g = FluidGrid::new(Dims::new(3, 3, 3));
        for node in 0..g.n() {
            let f = node_at_equilibrium(1.0, [0.0; 3]);
            g.node_f_mut(node).copy_from_slice(&f);
            g.fx[node] = 1e-3; // uniform force: every node must change
        }
        let before = g.f.clone();
        collide_grid(&mut g, Relaxation::new(0.8));
        let mut changed_nodes = 0;
        for node in 0..g.n() {
            if g.node_f(node) != &before[node * Q..node * Q + Q] {
                changed_nodes += 1;
            }
        }
        assert_eq!(changed_nodes, g.n());
    }

    proptest! {
        /// Mass conservation of BGK+Guo for arbitrary perturbed states.
        #[test]
        fn prop_bgk_mass_conservation(
            seed in 0u64..1000,
            tau in 0.55f64..2.0,
        ) {
            // Deterministic pseudo-perturbation from the seed.
            let mut f = node_at_equilibrium(1.0, [0.01, -0.02, 0.03]);
            let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            for v in f.iter_mut() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                *v += ((s >> 33) as f64 / 2f64.powi(31) - 1.0) * 1e-3;
            }
            let before: f64 = f.iter().sum();
            bgk_collide_node(&mut f, before, [0.01, -0.02, 0.03], [1e-4, -1e-4, 2e-4], tau);
            let after: f64 = f.iter().sum();
            prop_assert!((after - before).abs() < 1e-14);
        }
    }
}
