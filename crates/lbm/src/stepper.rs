//! A plain (no structure) sequential LBM time stepper. This is the fluid
//! part of Algorithm 1 on its own — kernels 5, 6, 7 and 9 — used by the
//! analytic validation tests and the pure-LBM benchmarks.

use crate::boundary::{add_uniform_body_force, stream_push_bounded, BoundaryConfig};
use crate::collision::{collide_grid, Relaxation};
use crate::grid::{Dims, FluidGrid};
use crate::macroscopic::{initialize_equilibrium, update_velocity};

/// Sequential lattice Boltzmann solver over a [`FluidGrid`].
pub struct PlainLbm {
    pub grid: FluidGrid,
    pub relax: Relaxation,
    pub bc: BoundaryConfig,
    /// Constant body force applied to every node every step.
    pub body_force: [f64; 3],
    steps_done: u64,
}

impl PlainLbm {
    /// Creates a solver with the fluid at rest, unit density.
    pub fn new(dims: Dims, relax: Relaxation, bc: BoundaryConfig) -> Self {
        let mut grid = FluidGrid::new(dims);
        initialize_equilibrium(&mut grid, |_, _, _| 1.0, |_, _, _| [0.0; 3]);
        Self {
            grid,
            relax,
            bc,
            body_force: [0.0; 3],
            steps_done: 0,
        }
    }

    /// Re-initialises the fluid to equilibrium at the given fields.
    pub fn initialize<Frho, Fu>(&mut self, rho_of: Frho, u_of: Fu)
    where
        Frho: Fn(usize, usize, usize) -> f64,
        Fu: Fn(usize, usize, usize) -> [f64; 3],
    {
        initialize_equilibrium(&mut self.grid, rho_of, u_of);
        self.steps_done = 0;
    }

    /// Advances one time step in the paper's kernel order (minus the fiber
    /// kernels): force setup, collision (5), streaming (6), velocity
    /// update (7), buffer copy (9).
    pub fn step(&mut self) {
        self.grid.clear_force();
        if self.body_force != [0.0; 3] {
            add_uniform_body_force(&mut self.grid, self.body_force);
        }
        collide_grid(&mut self.grid, self.relax);
        stream_push_bounded(&mut self.grid, &self.bc);
        update_velocity(&mut self.grid);
        self.grid.copy_distributions();
        self.steps_done += 1;
    }

    /// Advances `n` steps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Number of completed steps.
    pub fn steps_done(&self) -> u64 {
        self.steps_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rest_fluid_stays_at_rest() {
        let mut s = PlainLbm::new(
            Dims::new(6, 6, 6),
            Relaxation::new(0.8),
            BoundaryConfig::periodic(),
        );
        s.run(5);
        assert_eq!(s.steps_done(), 5);
        for node in 0..s.grid.n() {
            assert!((s.grid.rho[node] - 1.0).abs() < 1e-14);
            assert!(s.grid.ux[node].abs() < 1e-14);
            assert!(s.grid.uy[node].abs() < 1e-14);
            assert!(s.grid.uz[node].abs() < 1e-14);
        }
    }

    #[test]
    fn mass_conserved_over_steps() {
        let mut s = PlainLbm::new(
            Dims::new(8, 6, 4),
            Relaxation::new(0.7),
            BoundaryConfig::tunnel(),
        );
        s.initialize(
            |_, _, _| 1.0,
            |x, y, _| [0.01 * (x as f64).sin(), 0.005 * (y as f64).cos(), 0.0],
        );
        let m0 = s.grid.total_mass();
        s.run(20);
        let m1 = s.grid.total_mass();
        assert!((m1 - m0).abs() / m0 < 1e-12, "mass drifted: {m0} -> {m1}");
    }

    #[test]
    fn body_force_accelerates_periodic_fluid() {
        let tau = 0.9;
        let g = 1e-4;
        let n = 10u64;
        let mut s = PlainLbm::new(
            Dims::new(4, 4, 4),
            Relaxation::new(tau),
            BoundaryConfig::periodic(),
        );
        s.body_force = [g, 0.0, 0.0];
        s.run(n);
        // With no walls the fluid accelerates uniformly by exactly g per
        // step, except the very first step: its collision uses the initial
        // stored velocity (no F/2 shift yet, matching the paper's kernel
        // order where kernel 7 runs after streaming), gaining only
        // (1 - 1/2τ) g. The reported velocity carries the +g/2 shift.
        let mean: f64 = s.grid.ux.iter().sum::<f64>() / s.grid.n() as f64;
        let expected = ((n - 1) as f64 + (1.0 - 0.5 / tau) + 0.5) * g;
        assert!(
            (mean - expected).abs() < 1e-12,
            "mean ux {mean} vs expected {expected}"
        );
    }

    #[test]
    fn walls_resist_body_force() {
        // With no-slip walls the mean velocity saturates instead of growing
        // linearly (momentum drains into the walls).
        let mut free = PlainLbm::new(
            Dims::new(4, 6, 4),
            Relaxation::new(0.8),
            BoundaryConfig::periodic(),
        );
        let mut walled = PlainLbm::new(
            Dims::new(4, 6, 4),
            Relaxation::new(0.8),
            BoundaryConfig::tunnel(),
        );
        free.body_force = [1e-4, 0.0, 0.0];
        walled.body_force = [1e-4, 0.0, 0.0];
        free.run(200);
        walled.run(200);
        let mean = |s: &PlainLbm| s.grid.ux.iter().sum::<f64>() / s.grid.n() as f64;
        assert!(
            mean(&walled) < 0.8 * mean(&free),
            "walls should slow the channel"
        );
        assert!(mean(&walled) > 0.0);
    }
}
