//! Derived fluid observables: pressure, vorticity, and the strain-rate /
//! shear-stress tensor. Section III-A of the paper lists these among the
//! "properties of a fluid node" the library must expose.
//!
//! Pressure comes from the LBM equation of state `p = c_s² ρ`. Vorticity
//! is the curl of the velocity field by central differences. The
//! strain-rate tensor uses the lattice Boltzmann shortcut: it is available
//! *locally* from the non-equilibrium part of the distributions,
//! `S_ab = −(1 / 2 ρ c_s² τ)) Σ_i (f_i − f_i^eq) e_ia e_ib`,
//! with no finite differences at all — one of the practical advantages of
//! LBM the paper's Section II-B alludes to.

use crate::equilibrium::feq_all;
use crate::grid::FluidGrid;
use crate::lattice::{CS2, EF, Q};

/// Pressure at a node: `p = c_s² ρ` (lattice units).
#[inline]
pub fn pressure(rho: f64) -> f64 {
    CS2 * rho
}

/// Pressure field of the whole grid.
pub fn pressure_field(grid: &FluidGrid) -> Vec<f64> {
    grid.rho.iter().map(|&r| pressure(r)).collect()
}

/// Strain-rate tensor at one node from the non-equilibrium populations.
///
/// `f` must be the *pre-collision* distributions and `(rho, u)` their
/// moments (the velocity used for the equilibrium).
pub fn strain_rate_node(f: &[f64], rho: f64, u: [f64; 3], tau: f64) -> [[f64; 3]; 3] {
    debug_assert_eq!(f.len(), Q);
    let mut eq = [0.0; Q];
    feq_all(rho, u, &mut eq);
    let mut pi = [[0.0; 3]; 3];
    for i in 0..Q {
        let fneq = f[i] - eq[i];
        for a in 0..3 {
            for b in 0..3 {
                pi[a][b] += fneq * EF[i][a] * EF[i][b];
            }
        }
    }
    let c = -1.0 / (2.0 * rho * CS2 * tau);
    let mut s = [[0.0; 3]; 3];
    for a in 0..3 {
        for b in 0..3 {
            s[a][b] = c * pi[a][b];
        }
    }
    s
}

/// Deviatoric shear stress at one node: `σ_ab = 2 ρ ν S_ab` with
/// `ν = c_s² (τ − ½)`.
pub fn shear_stress_node(f: &[f64], rho: f64, u: [f64; 3], tau: f64) -> [[f64; 3]; 3] {
    let s = strain_rate_node(f, rho, u, tau);
    let nu = CS2 * (tau - 0.5);
    let mut sigma = [[0.0; 3]; 3];
    for a in 0..3 {
        for b in 0..3 {
            sigma[a][b] = 2.0 * rho * nu * s[a][b];
        }
    }
    sigma
}

/// Vorticity `ω = ∇ × u` at every node by central differences, with
/// periodic wrap-around on all axes (one-sided differencing at walls is
/// the caller's concern — vorticity within two cells of a wall should be
/// read with that caveat).
pub fn vorticity_field(grid: &FluidGrid) -> Vec<[f64; 3]> {
    let dims = grid.dims;
    let mut out = vec![[0.0; 3]; dims.n()];
    let d = |arr: &[f64], x: usize, y: usize, z: usize, axis: usize| -> f64 {
        let (e_p, e_m) = match axis {
            0 => (dims.wrap(x, y, z, 1, 0, 0), dims.wrap(x, y, z, -1, 0, 0)),
            1 => (dims.wrap(x, y, z, 0, 1, 0), dims.wrap(x, y, z, 0, -1, 0)),
            _ => (dims.wrap(x, y, z, 0, 0, 1), dims.wrap(x, y, z, 0, 0, -1)),
        };
        0.5 * (arr[dims.idx(e_p.0, e_p.1, e_p.2)] - arr[dims.idx(e_m.0, e_m.1, e_m.2)])
    };
    for (x, y, z) in dims.iter_coords() {
        let node = dims.idx(x, y, z);
        let duz_dy = d(&grid.uz, x, y, z, 1);
        let duy_dz = d(&grid.uy, x, y, z, 2);
        let dux_dz = d(&grid.ux, x, y, z, 2);
        let duz_dx = d(&grid.uz, x, y, z, 0);
        let duy_dx = d(&grid.uy, x, y, z, 0);
        let dux_dy = d(&grid.ux, x, y, z, 1);
        out[node] = [duz_dy - duy_dz, dux_dz - duz_dx, duy_dx - dux_dy];
    }
    out
}

/// Maximum vorticity magnitude over the grid (a compact turbulence/shear
/// indicator for progress reports).
pub fn max_vorticity(grid: &FluidGrid) -> f64 {
    vorticity_field(grid)
        .iter()
        .map(|w| (w[0] * w[0] + w[1] * w[1] + w[2] * w[2]).sqrt())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::TaylorGreen;
    use crate::boundary::{AxisBoundary, BoundaryConfig};
    use crate::collision::Relaxation;
    use crate::equilibrium::feq;
    use crate::grid::Dims;
    use crate::stepper::PlainLbm;

    #[test]
    fn pressure_is_cs2_rho() {
        assert!((pressure(1.0) - 1.0 / 3.0).abs() < 1e-15);
        assert!((pressure(0.9) - 0.3).abs() < 1e-12);
        let mut g = FluidGrid::new(Dims::new(2, 2, 2));
        g.rho[3] = 1.2;
        let p = pressure_field(&g);
        assert!((p[3] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn equilibrium_has_zero_strain() {
        let rho = 1.05;
        let u = [0.03, -0.01, 0.02];
        let mut f = [0.0; Q];
        for i in 0..Q {
            f[i] = feq(i, rho, u);
        }
        let s = strain_rate_node(&f, rho, u, 0.8);
        for row in s {
            for v in row {
                assert!(v.abs() < 1e-15, "{s:?}");
            }
        }
    }

    #[test]
    fn strain_tensor_is_symmetric() {
        let rho = 1.0;
        let u = [0.02, 0.0, 0.0];
        let mut f = [0.0; Q];
        for i in 0..Q {
            f[i] = feq(i, rho, u) + 1e-4 * ((i * 7 % 5) as f64 - 2.0);
        }
        let s = strain_rate_node(&f, rho, u, 0.9);
        for a in 0..3 {
            for b in 0..3 {
                assert!((s[a][b] - s[b][a]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn couette_strain_and_vorticity_match_analytic() {
        // Steady Couette flow: du_x/dy = u_lid / ny everywhere, so
        // S_xy = ½ du/dy and ω_z = −du/dy.
        let ny = 8;
        let u_lid = 0.02;
        let dims = Dims::new(4, ny, 4);
        let relax = Relaxation::new(0.8);
        let bc = BoundaryConfig {
            x: AxisBoundary::Periodic,
            y: AxisBoundary::Walls {
                lo: [0.0; 3],
                hi: [u_lid, 0.0, 0.0],
            },
            z: AxisBoundary::Periodic,
        };
        let mut s = PlainLbm::new(dims, relax, bc);
        s.run(3000);
        let dudy = u_lid / ny as f64;

        // Strain from the non-equilibrium populations at an interior node.
        let node = dims.idx(2, ny / 2, 2);
        let u = [s.grid.ux[node], s.grid.uy[node], s.grid.uz[node]];
        let strain = strain_rate_node(s.grid.node_f(node), s.grid.rho[node], u, relax.tau);
        assert!(
            (strain[0][1] - 0.5 * dudy).abs() < 0.05 * 0.5 * dudy,
            "S_xy {} vs analytic {}",
            strain[0][1],
            0.5 * dudy
        );

        // Vorticity by finite differences (interior rows only: the wrap at
        // the walls corrupts the boundary rows).
        let w = vorticity_field(&s.grid);
        let wz = w[node][2];
        assert!(
            (wz + dudy).abs() < 0.05 * dudy,
            "omega_z {wz} vs analytic {}",
            -dudy
        );

        // Shear stress: sigma_xy = 2 rho nu S_xy = rho nu du/dy.
        let sigma = shear_stress_node(s.grid.node_f(node), s.grid.rho[node], u, relax.tau);
        let want = s.grid.rho[node] * relax.viscosity() * dudy;
        assert!(
            (sigma[0][1] - want).abs() < 0.05 * want,
            "sigma {} vs {want}",
            sigma[0][1]
        );
    }

    #[test]
    fn taylor_green_vorticity_peaks_at_vortex_cores() {
        let dims = Dims::new(16, 16, 1);
        let relax = Relaxation::new(0.8);
        let tg = TaylorGreen {
            dims,
            u0: 0.02,
            nu: relax.viscosity(),
        };
        let mut s = PlainLbm::new(dims, relax, BoundaryConfig::periodic());
        s.initialize(|_, _, _| 1.0, |x, y, z| tg.velocity(x, y, z, 0.0));
        // Measure at t = 0: the velocity field is exactly the analytic one.
        let w = vorticity_field(&s.grid);
        // All vorticity is in the z component for a 2D flow.
        for (i, wi) in w.iter().enumerate() {
            assert!(
                wi[0].abs() < 1e-12 && wi[1].abs() < 1e-12,
                "node {i}: {wi:?}"
            );
        }
        let max = max_vorticity(&s.grid);
        // ω_z = 2 u0 k sin(kx x) sin(ky y); central differences of a sine
        // underestimate the derivative by sin(k)/k.
        let (kx, _) = tg.wavenumbers();
        let analytic_peak = 2.0 * tg.u0 * kx * (kx.sin() / kx);
        assert!(
            (max - analytic_peak).abs() < 0.01 * analytic_peak,
            "peak vorticity {max} vs analytic {analytic_peak}"
        );
        // And the field decays: after 50 steps the peak must shrink by the
        // viscous factor.
        s.run(50);
        let decayed = max_vorticity(&s.grid);
        let expect = max * (-2.0 * tg.nu * kx * kx * 50.0).exp();
        assert!(
            (decayed - expect).abs() < 0.05 * expect,
            "decayed peak {decayed} vs {expect}"
        );
    }
}
