//! # lbm — D3Q19 lattice Boltzmann substrate
//!
//! The fluid half of the LBM-IB method (Nagar, Song, Zhu, Lin — ICPP 2015):
//! a from-scratch D3Q19 lattice Boltzmann solver with BGK collision, Guo
//! forcing (so the immersed boundary's elastic force enters consistently),
//! half-way bounce-back walls, and two storage layouts —
//!
//! * [`grid::FluidGrid`]: flat structure-of-arrays over the whole grid, the
//!   layout of the paper's sequential and OpenMP implementations;
//! * [`cube_grid::CubeFluidGrid`]: the cube-blocked layout of the paper's
//!   Section V, where each `k³` block of nodes is contiguous in memory.
//!
//! The crate also hosts the paper's data-distribution functions
//! ([`distribution::CubeDistribution`] implements `cube2thread`,
//! [`distribution::FiberDistribution`] implements `fiber2thread`), analytic
//! Navier–Stokes solutions for validation, and a plain sequential stepper.
//!
//! ## Quick example
//!
//! ```
//! use lbm::{
//!     boundary::BoundaryConfig, collision::Relaxation, grid::Dims, stepper::PlainLbm,
//! };
//!
//! let mut solver = PlainLbm::new(Dims::new(16, 8, 8), Relaxation::new(0.8), BoundaryConfig::tunnel());
//! solver.body_force = [1e-5, 0.0, 0.0]; // drive a channel flow
//! solver.run(10);
//! assert!(solver.grid.ux.iter().sum::<f64>() > 0.0);
//! ```

pub mod analytic;
pub mod boundary;
pub mod collision;
pub mod cube_grid;
pub mod distribution;
pub mod equilibrium;
pub mod fused;
pub mod grid;
pub mod lattice;
pub mod macroscopic;
pub mod observables;
pub mod stepper;
pub mod streaming;
pub mod units;

pub use boundary::BoundaryConfig;
pub use collision::Relaxation;
pub use cube_grid::{CubeDims, CubeFluidGrid};
pub use distribution::{CubeDistribution, FiberDistribution, Policy, ThreadMesh};
pub use grid::{Dims, FluidGrid};
pub use lattice::Q;
