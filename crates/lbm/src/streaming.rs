//! Streaming (kernel 6, `stream_fluid_velocity_distribution`): propagate each
//! post-collision population to the neighbouring node its velocity points at.
//!
//! Two formulations are provided. *Push* copies a node's populations outward
//! into `f_new` of its 18 neighbours — the formulation of the paper, which in
//! the cube solver forces cross-cube writes protected by owner locks. *Pull*
//! gathers into a node's own `f_new` from the 18 upwind neighbours, so every
//! write is owned — the formulation the rayon (OpenMP-style) solver uses.
//! Both compute exactly the same permutation of values.

use crate::grid::{Dims, FluidGrid};
use crate::lattice::{E, Q};

/// Push streaming over the whole grid with periodic wrap on all axes.
pub fn stream_push(grid: &mut FluidGrid) {
    let dims = grid.dims;
    for x in 0..dims.nx {
        for y in 0..dims.ny {
            for z in 0..dims.nz {
                let node = dims.idx(x, y, z);
                stream_push_node(dims, &grid.f, &mut grid.f_new, node, x, y, z);
            }
        }
    }
}

/// Pushes one node's populations into `f_new`. Exposed so the cube solver
/// can reuse the inner body on intra-cube nodes.
#[inline]
pub fn stream_push_node(
    dims: Dims,
    f: &[f64],
    f_new: &mut [f64],
    node: usize,
    x: usize,
    y: usize,
    z: usize,
) {
    f_new[node * Q] = f[node * Q]; // rest population stays put
    for i in 1..Q {
        let dst = dims.neighbor_idx(x, y, z, E[i]);
        f_new[dst * Q + i] = f[node * Q + i];
    }
}

/// Pull streaming over the whole grid with periodic wrap on all axes.
pub fn stream_pull(grid: &mut FluidGrid) {
    let dims = grid.dims;
    let f = &grid.f;
    let f_new = &mut grid.f_new;
    for x in 0..dims.nx {
        for y in 0..dims.ny {
            for z in 0..dims.nz {
                let node = dims.idx(x, y, z);
                stream_pull_node(dims, f, &mut f_new[node * Q..node * Q + Q], x, y, z);
            }
        }
    }
}

/// Gathers one node's `f_new` values from its upwind neighbours. `out` is the
/// destination node's Q-slice. Safe for any caller that owns the destination.
#[inline]
pub fn stream_pull_node(dims: Dims, f: &[f64], out: &mut [f64], x: usize, y: usize, z: usize) {
    debug_assert_eq!(out.len(), Q);
    let node = dims.idx(x, y, z);
    out[0] = f[node * Q];
    for i in 1..Q {
        let src = dims.neighbor_idx(x, y, z, [-E[i][0], -E[i][1], -E[i][2]]);
        out[i] = f[src * Q + i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tagged_grid(dims: Dims) -> FluidGrid {
        // Give every (node, direction) slot a unique value so streaming is a
        // verifiable permutation.
        let mut g = FluidGrid::new(dims);
        for (k, v) in g.f.iter_mut().enumerate() {
            *v = k as f64 + 1.0;
        }
        g
    }

    #[test]
    fn push_moves_single_population_to_neighbor() {
        let dims = Dims::new(4, 4, 4);
        let mut g = FluidGrid::new(dims);
        let src = dims.idx(1, 2, 3);
        g.f[src * Q + 1] = 7.0; // direction +x
        stream_push(&mut g);
        let dst = dims.idx(2, 2, 3);
        assert_eq!(g.f_new[dst * Q + 1], 7.0);
        // Nothing else received that population.
        let total: f64 = g.f_new.iter().sum();
        assert_eq!(total, 7.0);
    }

    #[test]
    fn push_wraps_periodically() {
        let dims = Dims::new(3, 3, 3);
        let mut g = FluidGrid::new(dims);
        let src = dims.idx(2, 0, 0);
        g.f[src * Q + 1] = 5.0; // +x from the last plane wraps to x=0
        stream_push(&mut g);
        assert_eq!(g.f_new[dims.idx(0, 0, 0) * Q + 1], 5.0);
    }

    #[test]
    fn pull_equals_push() {
        let dims = Dims::new(3, 4, 5);
        let mut a = tagged_grid(dims);
        let mut b = a.clone();
        stream_push(&mut a);
        stream_pull(&mut b);
        assert_eq!(a.f_new, b.f_new);
    }

    #[test]
    fn streaming_is_a_permutation() {
        let dims = Dims::new(4, 3, 2);
        let mut g = tagged_grid(dims);
        stream_push(&mut g);
        let mut before: Vec<u64> = g.f.iter().map(|v| v.to_bits()).collect();
        let mut after: Vec<u64> = g.f_new.iter().map(|v| v.to_bits()).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after, "streaming must permute values bit-exactly");
    }

    #[test]
    fn rest_population_never_moves() {
        let dims = Dims::new(3, 3, 3);
        let mut g = FluidGrid::new(dims);
        for node in 0..g.n() {
            g.f[node * Q] = node as f64 + 1.0;
        }
        stream_push(&mut g);
        for node in 0..g.n() {
            assert_eq!(g.f_new[node * Q], node as f64 + 1.0);
        }
    }

    #[test]
    fn streaming_preserves_per_direction_mass() {
        let dims = Dims::new(4, 4, 4);
        let mut g = tagged_grid(dims);
        stream_push(&mut g);
        for i in 0..Q {
            let before: f64 = (0..g.n()).map(|n| g.f[n * Q + i]).sum();
            let after: f64 = (0..g.n()).map(|n| g.f_new[n * Q + i]).sum();
            assert!((before - after).abs() < 1e-9, "direction {i}");
        }
    }

    #[test]
    fn opposite_streams_cancel() {
        // Streaming +x then -x returns a population to its origin.
        let dims = Dims::new(5, 2, 2);
        let mut g = FluidGrid::new(dims);
        let start = dims.idx(2, 1, 1);
        g.f[start * Q + 1] = 1.0;
        stream_push(&mut g);
        g.copy_distributions();
        // Move the value into the opposite direction slot to send it back.
        let here = dims.idx(3, 1, 1);
        g.f[here * Q + 2] = g.f[here * Q + 1];
        g.f[here * Q + 1] = 0.0;
        g.f_new.fill(0.0);
        stream_push(&mut g);
        assert_eq!(g.f_new[start * Q + 2], 1.0);
    }

    proptest! {
        /// Push/pull equivalence over random grid shapes.
        #[test]
        fn prop_push_pull_equivalence(
            nx in 1usize..6,
            ny in 1usize..6,
            nz in 1usize..6,
        ) {
            let dims = Dims::new(nx, ny, nz);
            let mut a = tagged_grid(dims);
            let mut b = a.clone();
            stream_push(&mut a);
            stream_pull(&mut b);
            prop_assert_eq!(a.f_new, b.f_new);
        }
    }
}
