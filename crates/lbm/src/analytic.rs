//! Analytic solutions of the incompressible Navier–Stokes equations used to
//! validate the LBM substrate: the decaying Taylor–Green vortex (periodic),
//! body-force-driven Poiseuille channel flow, and lid-driven Couette flow.
//!
//! The paper verifies its parallel results against the sequential program;
//! we additionally verify the sequential program against physics.

use crate::grid::{Dims, FluidGrid};

/// Decaying 2D Taylor–Green vortex embedded in a 3D periodic box:
///
/// `u = U sin(kx·x') cos(ky·y') exp(−ν(kx²+ky²) t)`
/// `v = −U (kx/ky) cos(kx·x') sin(ky·y') exp(−ν(kx²+ky²) t)`
///
/// with `x' = x + ½`, `kx = 2π/Nx`, `ky = 2π/Ny` (the half shift centres the
/// vortex pattern on the half-way lattice, which is immaterial for the decay
/// rate). The z velocity vanishes.
#[derive(Clone, Copy, Debug)]
pub struct TaylorGreen {
    pub dims: Dims,
    /// Peak initial velocity U (keep well below c_s ≈ 0.577).
    pub u0: f64,
    /// Kinematic viscosity ν.
    pub nu: f64,
}

impl TaylorGreen {
    /// Wavenumbers `(kx, ky)`.
    pub fn wavenumbers(&self) -> (f64, f64) {
        let kx = 2.0 * std::f64::consts::PI / self.dims.nx as f64;
        let ky = 2.0 * std::f64::consts::PI / self.dims.ny as f64;
        (kx, ky)
    }

    /// Analytic velocity at node `(x, y, z)` and time `t` (lattice units).
    pub fn velocity(&self, x: usize, y: usize, _z: usize, t: f64) -> [f64; 3] {
        let (kx, ky) = self.wavenumbers();
        let decay = (-self.nu * (kx * kx + ky * ky) * t).exp();
        let xf = x as f64;
        let yf = y as f64;
        [
            self.u0 * (kx * xf).sin() * (ky * yf).cos() * decay,
            -self.u0 * (kx / ky) * (kx * xf).cos() * (ky * yf).sin() * decay,
            0.0,
        ]
    }

    /// Total kinetic energy decays as `E(t) = E(0) exp(−2ν(kx²+ky²) t)`.
    pub fn energy_ratio(&self, t: f64) -> f64 {
        let (kx, ky) = self.wavenumbers();
        (-2.0 * self.nu * (kx * kx + ky * ky) * t).exp()
    }
}

/// Steady Poiseuille flow in a channel of `ny` nodes driven by a uniform
/// body force `g` along x, with half-way bounce-back walls (the physical
/// walls sit at `y = −½` and `y = ny − ½`, so the channel width is `H = ny`):
///
/// `u(y) = g/(2ν) · [ (H/2)² − (y − (ny−1)/2)² ]`
#[derive(Clone, Copy, Debug)]
pub struct Poiseuille {
    pub ny: usize,
    pub g: f64,
    pub nu: f64,
}

impl Poiseuille {
    /// Analytic x velocity at node row `y`.
    pub fn ux(&self, y: usize) -> f64 {
        let h = self.ny as f64;
        let c = (self.ny as f64 - 1.0) / 2.0;
        let d = y as f64 - c;
        self.g / (2.0 * self.nu) * ((h / 2.0) * (h / 2.0) - d * d)
    }

    /// Peak (centre-line) velocity.
    pub fn u_max(&self) -> f64 {
        let h = self.ny as f64;
        self.g * h * h / (8.0 * self.nu)
    }
}

/// Steady Couette flow: lid at `y = ny − ½` moving with `u_lid` along x,
/// fixed wall at `y = −½`. The velocity profile is linear between the
/// half-way wall planes: `u(y) = u_lid (y + ½) / ny`.
#[derive(Clone, Copy, Debug)]
pub struct Couette {
    pub ny: usize,
    pub u_lid: f64,
}

impl Couette {
    /// Analytic x velocity at node row `y`.
    pub fn ux(&self, y: usize) -> f64 {
        self.u_lid * (y as f64 + 0.5) / self.ny as f64
    }
}

/// L2 norm of the difference between the grid's velocity field and an
/// analytic field, normalised by node count.
pub fn velocity_l2_error<F>(grid: &FluidGrid, reference: F) -> f64
where
    F: Fn(usize, usize, usize) -> [f64; 3],
{
    let dims = grid.dims;
    let mut acc = 0.0;
    for (x, y, z) in dims.iter_coords() {
        let node = dims.idx(x, y, z);
        let want = reference(x, y, z);
        let dx = grid.ux[node] - want[0];
        let dy = grid.uy[node] - want[1];
        let dz = grid.uz[node] - want[2];
        acc += dx * dx + dy * dy + dz * dz;
    }
    (acc / dims.n() as f64).sqrt()
}

/// L∞ norm of the velocity error against an analytic field.
pub fn velocity_linf_error<F>(grid: &FluidGrid, reference: F) -> f64
where
    F: Fn(usize, usize, usize) -> [f64; 3],
{
    let dims = grid.dims;
    let mut worst: f64 = 0.0;
    for (x, y, z) in dims.iter_coords() {
        let node = dims.idx(x, y, z);
        let want = reference(x, y, z);
        worst = worst
            .max((grid.ux[node] - want[0]).abs())
            .max((grid.uy[node] - want[1]).abs())
            .max((grid.uz[node] - want[2]).abs());
    }
    worst
}

/// Total kinetic energy of the grid, `½ Σ ρ |u|²`.
pub fn kinetic_energy(grid: &FluidGrid) -> f64 {
    let mut e = 0.0;
    for node in 0..grid.n() {
        let u2 = grid.ux[node] * grid.ux[node]
            + grid.uy[node] * grid.uy[node]
            + grid.uz[node] * grid.uz[node];
        e += 0.5 * grid.rho[node] * u2;
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::{AxisBoundary, BoundaryConfig};
    use crate::collision::Relaxation;
    use crate::stepper::PlainLbm;

    #[test]
    fn taylor_green_decay_rate_matches_lbm() {
        // 2D Taylor–Green in a 16x16x1 periodic box: measured kinetic-energy
        // decay over 200 steps must match exp(-2 nu k^2 t) within ~1%.
        let dims = Dims::new(16, 16, 1);
        let relax = Relaxation::new(0.8);
        let tg = TaylorGreen {
            dims,
            u0: 0.02,
            nu: relax.viscosity(),
        };
        let mut s = PlainLbm::new(dims, relax, BoundaryConfig::periodic());
        s.initialize(|_, _, _| 1.0, |x, y, z| tg.velocity(x, y, z, 0.0));
        // Measure the decay *rate* between two simulated times (skipping the
        // initialisation transient) and compare against the analytic rate.
        // At 16³ the lattice dispersion error on the rate is below 1%.
        s.run(50);
        let e_a = kinetic_energy(&s.grid);
        s.run(200);
        let e_b = kinetic_energy(&s.grid);
        let measured_rate = (e_a / e_b).ln() / 200.0;
        let (kx, ky) = tg.wavenumbers();
        let analytic_rate = 2.0 * tg.nu * (kx * kx + ky * ky);
        assert!(
            (measured_rate / analytic_rate - 1.0).abs() < 0.02,
            "decay rate {measured_rate} vs analytic {analytic_rate}"
        );
    }

    #[test]
    fn taylor_green_pointwise_error_small() {
        let dims = Dims::new(16, 16, 1);
        let relax = Relaxation::new(0.8);
        let tg = TaylorGreen {
            dims,
            u0: 0.02,
            nu: relax.viscosity(),
        };
        let mut s = PlainLbm::new(dims, relax, BoundaryConfig::periodic());
        s.initialize(|_, _, _| 1.0, |x, y, z| tg.velocity(x, y, z, 0.0));
        let steps = 100u64;
        s.run(steps);
        // The dominant error at 16³ is the ~1% lattice correction to the
        // decay rate, so allow 0.5% of the initial amplitude.
        let err = velocity_l2_error(&s.grid, |x, y, z| tg.velocity(x, y, z, steps as f64));
        assert!(err < 5e-3 * 0.02, "L2 error {err}");
    }

    #[test]
    fn taylor_green_second_order_convergence() {
        // Doubling resolution (same physical setup) must cut the relative
        // error by roughly 4x. Scale u0 and steps so the physical time and
        // Mach regime match across resolutions.
        let err_at = |n: usize, steps: u64| -> f64 {
            let dims = Dims::new(n, n, 1);
            let relax = Relaxation::new(0.8);
            let tg = TaylorGreen {
                dims,
                u0: 0.04 / (n as f64 / 8.0),
                nu: relax.viscosity(),
            };
            let mut s = PlainLbm::new(dims, relax, BoundaryConfig::periodic());
            s.initialize(|_, _, _| 1.0, |x, y, z| tg.velocity(x, y, z, 0.0));
            s.run(steps);
            let t = steps as f64;
            velocity_l2_error(&s.grid, |x, y, z| tg.velocity(x, y, z, t)) / (tg.u0)
        };
        // Diffusive scaling: steps quadruple when n doubles.
        let e8 = err_at(8, 32);
        let e16 = err_at(16, 128);
        let order = (e8 / e16).log2();
        assert!(order > 1.5, "observed order {order} (e8={e8}, e16={e16})");
    }

    #[test]
    fn poiseuille_profile_reached() {
        // Channel: periodic x/z, walls in y. Run to steady state and compare
        // with the parabolic profile.
        let ny = 9;
        let dims = Dims::new(4, ny, 4);
        let relax = Relaxation::new(0.9);
        let g = 1e-5;
        let bc = BoundaryConfig {
            x: AxisBoundary::Periodic,
            y: AxisBoundary::no_slip(),
            z: AxisBoundary::Periodic,
        };
        let mut s = PlainLbm::new(dims, relax, bc);
        s.body_force = [g, 0.0, 0.0];
        s.run(4000);
        let profile = Poiseuille {
            ny,
            g,
            nu: relax.viscosity(),
        };
        for y in 0..ny {
            let node = dims.idx(2, y, 2);
            let want = profile.ux(y);
            assert!(
                (s.grid.ux[node] - want).abs() < 0.02 * profile.u_max(),
                "row {y}: measured {} vs analytic {want}",
                s.grid.ux[node]
            );
        }
    }

    #[test]
    fn couette_profile_reached() {
        let ny = 8;
        let dims = Dims::new(4, ny, 4);
        let relax = Relaxation::new(0.8);
        let u_lid = 0.02;
        let bc = BoundaryConfig {
            x: AxisBoundary::Periodic,
            y: AxisBoundary::Walls {
                lo: [0.0; 3],
                hi: [u_lid, 0.0, 0.0],
            },
            z: AxisBoundary::Periodic,
        };
        let mut s = PlainLbm::new(dims, relax, bc);
        s.run(3000);
        let couette = Couette { ny, u_lid };
        for y in 0..ny {
            let node = dims.idx(1, y, 1);
            let want = couette.ux(y);
            assert!(
                (s.grid.ux[node] - want).abs() < 0.02 * u_lid,
                "row {y}: measured {} vs analytic {want}",
                s.grid.ux[node]
            );
        }
    }

    #[test]
    fn error_norms_zero_for_exact_field() {
        let dims = Dims::new(3, 3, 3);
        let mut g = FluidGrid::new(dims);
        for (x, y, z) in dims.iter_coords() {
            let node = dims.idx(x, y, z);
            g.ux[node] = x as f64;
            g.uy[node] = y as f64;
            g.uz[node] = z as f64;
        }
        let l2 = velocity_l2_error(&g, |x, y, z| [x as f64, y as f64, z as f64]);
        let linf = velocity_linf_error(&g, |x, y, z| [x as f64, y as f64, z as f64]);
        assert_eq!(l2, 0.0);
        assert_eq!(linf, 0.0);
    }

    #[test]
    fn kinetic_energy_of_uniform_flow() {
        let dims = Dims::new(2, 2, 2);
        let mut g = FluidGrid::new(dims);
        g.ux.fill(0.1);
        let e = kinetic_energy(&g);
        assert!((e - 0.5 * 8.0 * 0.01).abs() < 1e-14);
    }
}
