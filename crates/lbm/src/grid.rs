//! Flat structure-of-arrays storage for the Eulerian fluid grid.
//!
//! This is the layout used by the sequential and OpenMP-style solvers in the
//! paper: one contiguous allocation per field over the whole
//! `Nx × Ny × Nz` grid, with the 19 distribution values of a node stored
//! next to each other (node-major interleaving) so the collision kernel —
//! 73% of the sequential run time in Table I — touches one small contiguous
//! span per node.

use crate::lattice::Q;

/// Dimensions of a 3D fluid grid and its index algebra.
///
/// A coordinate `(x, y, z)` maps to the flat node index
/// `(x * ny + y) * nz + z`, i.e. z is the fastest-varying axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Dims {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl Dims {
    /// Creates grid dimensions. Panics if any extent is zero.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "grid extents must be positive: {nx}x{ny}x{nz}"
        );
        Self { nx, ny, nz }
    }

    /// Total number of fluid nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Flat index of node `(x, y, z)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        (x * self.ny + y) * self.nz + z
    }

    /// Inverse of [`Dims::idx`].
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        debug_assert!(idx < self.n());
        let z = idx % self.nz;
        let y = (idx / self.nz) % self.ny;
        let x = idx / (self.nz * self.ny);
        (x, y, z)
    }

    /// Adds an integer offset to a coordinate with periodic wrap-around.
    #[inline]
    pub fn wrap(
        &self,
        x: usize,
        y: usize,
        z: usize,
        dx: i32,
        dy: i32,
        dz: i32,
    ) -> (usize, usize, usize) {
        (
            wrap_axis(x, dx, self.nx),
            wrap_axis(y, dy, self.ny),
            wrap_axis(z, dz, self.nz),
        )
    }

    /// Flat index of the periodic neighbour of `(x, y, z)` displaced by `e`.
    #[inline]
    pub fn neighbor_idx(&self, x: usize, y: usize, z: usize, e: [i32; 3]) -> usize {
        let (xn, yn, zn) = self.wrap(x, y, z, e[0], e[1], e[2]);
        self.idx(xn, yn, zn)
    }

    /// Iterates all coordinates in index order (x outermost, z innermost).
    pub fn iter_coords(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        (0..nx).flat_map(move |x| (0..ny).flat_map(move |y| (0..nz).map(move |z| (x, y, z))))
    }
}

/// Adds a signed offset to `v` modulo `n`, assuming `|d| <= n`.
#[inline]
pub fn wrap_axis(v: usize, d: i32, n: usize) -> usize {
    debug_assert!(d.unsigned_abs() as usize <= n);
    let s = v as i64 + d as i64;
    let n = n as i64;
    (((s % n) + n) % n) as usize
}

/// Structure-of-arrays fluid state over a [`Dims`] grid.
///
/// `f` is the *present* distribution buffer and `f_new` the buffer streamed
/// into; kernel 9 of the paper (`copy_fluid_velocity_distribution`) copies
/// `f_new` back into `f` at the end of every step. Both buffers interleave
/// the 19 directions per node: entry `node * Q + dir`.
#[derive(Clone, Debug)]
pub struct FluidGrid {
    pub dims: Dims,
    /// Present distribution functions, `n * Q` entries, node-major.
    pub f: Vec<f64>,
    /// New (post-streaming) distribution functions, same layout.
    pub f_new: Vec<f64>,
    /// Macroscopic density per node.
    pub rho: Vec<f64>,
    /// Macroscopic velocity components per node.
    pub ux: Vec<f64>,
    pub uy: Vec<f64>,
    pub uz: Vec<f64>,
    /// Equilibrium-shift velocity (`u + τF/ρ`) used by the coupled solvers'
    /// velocity-shift forcing, where the collision kernel must not read the
    /// force directly (that is what makes the paper's three-barrier
    /// Algorithm 4 race-free).
    pub ueqx: Vec<f64>,
    pub ueqy: Vec<f64>,
    pub ueqz: Vec<f64>,
    /// External/elastic body force per node (what the fibers spread into).
    pub fx: Vec<f64>,
    pub fy: Vec<f64>,
    pub fz: Vec<f64>,
}

impl FluidGrid {
    /// Allocates a grid with all distributions zero and unit density.
    pub fn new(dims: Dims) -> Self {
        let n = dims.n();
        Self {
            dims,
            f: vec![0.0; n * Q],
            f_new: vec![0.0; n * Q],
            rho: vec![1.0; n],
            ux: vec![0.0; n],
            uy: vec![0.0; n],
            uz: vec![0.0; n],
            ueqx: vec![0.0; n],
            ueqy: vec![0.0; n],
            ueqz: vec![0.0; n],
            fx: vec![0.0; n],
            fy: vec![0.0; n],
            fz: vec![0.0; n],
        }
    }

    /// Number of fluid nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.dims.n()
    }

    /// Present distributions of one node as a slice of length `Q`.
    #[inline]
    pub fn node_f(&self, node: usize) -> &[f64] {
        &self.f[node * Q..node * Q + Q]
    }

    /// Mutable present distributions of one node.
    #[inline]
    pub fn node_f_mut(&mut self, node: usize) -> &mut [f64] {
        &mut self.f[node * Q..node * Q + Q]
    }

    /// New-buffer distributions of one node.
    #[inline]
    pub fn node_f_new(&self, node: usize) -> &[f64] {
        &self.f_new[node * Q..node * Q + Q]
    }

    /// Velocity vector at a node.
    #[inline]
    pub fn velocity(&self, node: usize) -> [f64; 3] {
        [self.ux[node], self.uy[node], self.uz[node]]
    }

    /// Body-force vector at a node.
    #[inline]
    pub fn force(&self, node: usize) -> [f64; 3] {
        [self.fx[node], self.fy[node], self.fz[node]]
    }

    /// Clears the per-node body force. Run before each spreading pass.
    pub fn clear_force(&mut self) {
        self.fx.fill(0.0);
        self.fy.fill(0.0);
        self.fz.fill(0.0);
    }

    /// Kernel 9 of the paper: copy the new-distribution buffer into the
    /// present buffer so `f_new` can be reused next step.
    pub fn copy_distributions(&mut self) {
        self.f.copy_from_slice(&self.f_new);
    }

    /// The obvious optimisation of kernel 9: swap the buffers instead of
    /// copying. Offered separately because Table I charges 5.9% of run time
    /// to the literal copy and the reproduction harness keeps it.
    pub fn swap_distributions(&mut self) {
        std::mem::swap(&mut self.f, &mut self.f_new);
    }

    /// Total fluid mass, `Σ_nodes Σ_i f_i`.
    pub fn total_mass(&self) -> f64 {
        self.f.iter().sum()
    }

    /// Total fluid momentum from the present distributions (no force
    /// correction), one component per axis.
    pub fn total_momentum(&self) -> [f64; 3] {
        use crate::lattice::EF;
        let mut p = [0.0; 3];
        for node in 0..self.n() {
            let fs = self.node_f(node);
            for (i, &fi) in fs.iter().enumerate() {
                p[0] += fi * EF[i][0];
                p[1] += fi * EF[i][1];
                p[2] += fi * EF[i][2];
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_is_bijective_on_coords() {
        let d = Dims::new(3, 4, 5);
        let mut seen = vec![false; d.n()];
        for (x, y, z) in d.iter_coords() {
            let i = d.idx(x, y, z);
            assert!(!seen[i], "index {i} hit twice");
            seen[i] = true;
            assert_eq!(d.coords(i), (x, y, z));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn z_is_fastest_axis() {
        let d = Dims::new(4, 4, 4);
        assert_eq!(d.idx(0, 0, 1) - d.idx(0, 0, 0), 1);
        assert_eq!(d.idx(0, 1, 0) - d.idx(0, 0, 0), 4);
        assert_eq!(d.idx(1, 0, 0) - d.idx(0, 0, 0), 16);
    }

    #[test]
    fn wrap_axis_behaves_periodically() {
        assert_eq!(wrap_axis(0, -1, 8), 7);
        assert_eq!(wrap_axis(7, 1, 8), 0);
        assert_eq!(wrap_axis(3, 0, 8), 3);
        assert_eq!(wrap_axis(0, -8, 8), 0);
    }

    #[test]
    fn neighbor_idx_wraps_all_directions() {
        use crate::lattice::E;
        let d = Dims::new(4, 3, 5);
        // From the corner every direction must land on a valid node.
        for e in E {
            let i = d.neighbor_idx(0, 0, 0, e);
            assert!(i < d.n());
            let (x, y, z) = d.coords(i);
            assert_eq!(x, wrap_axis(0, e[0], 4));
            assert_eq!(y, wrap_axis(0, e[1], 3));
            assert_eq!(z, wrap_axis(0, e[2], 5));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_rejected() {
        Dims::new(0, 4, 4);
    }

    #[test]
    fn grid_allocation_sizes() {
        let g = FluidGrid::new(Dims::new(2, 3, 4));
        assert_eq!(g.n(), 24);
        assert_eq!(g.f.len(), 24 * Q);
        assert_eq!(g.f_new.len(), 24 * Q);
        assert_eq!(g.rho.len(), 24);
        assert!(g.rho.iter().all(|&r| r == 1.0));
    }

    #[test]
    fn copy_and_swap_distributions() {
        let mut g = FluidGrid::new(Dims::new(2, 2, 2));
        for (i, v) in g.f_new.iter_mut().enumerate() {
            *v = i as f64;
        }
        let want = g.f_new.clone();
        g.copy_distributions();
        assert_eq!(g.f, want);
        // Swap moves the buffers without copying.
        g.f_new.fill(-1.0);
        g.swap_distributions();
        assert!(g.f.iter().all(|&v| v == -1.0));
        assert_eq!(g.f_new, want);
    }

    #[test]
    fn clear_force_zeroes_all_components() {
        let mut g = FluidGrid::new(Dims::new(2, 2, 2));
        g.fx.fill(1.0);
        g.fy.fill(2.0);
        g.fz.fill(3.0);
        g.clear_force();
        assert!(g.fx.iter().chain(&g.fy).chain(&g.fz).all(|&v| v == 0.0));
    }

    #[test]
    fn total_mass_and_momentum_of_rest_populations() {
        use crate::lattice::W;
        let mut g = FluidGrid::new(Dims::new(3, 3, 3));
        for node in 0..g.n() {
            g.node_f_mut(node).copy_from_slice(&W);
        }
        assert!((g.total_mass() - 27.0).abs() < 1e-12);
        let p = g.total_momentum();
        for c in p {
            assert!(c.abs() < 1e-12);
        }
    }
}
