//! The cube-blocked fluid layout of Section V: the `Nx × Ny × Nz` grid is
//! divided into `(Nx/k) × (Ny/k) × (Nz/k)` cubes of `k³` nodes each, and
//! every cube is stored in one contiguous memory block. This is the layout
//! the cube-centric solver owns and the working-set argument of the paper
//! rests on.

use crate::grid::{Dims, FluidGrid};
use crate::lattice::Q;

/// Geometry of a cube-blocked grid: global dimensions plus the cube edge `k`.
///
/// All extents must be divisible by `k` (the paper makes the same
/// assumption); [`CubeDims::new`] enforces it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CubeDims {
    pub dims: Dims,
    /// Cube edge length in nodes.
    pub k: usize,
    /// Number of cubes along each axis.
    pub cx: usize,
    pub cy: usize,
    pub cz: usize,
}

impl CubeDims {
    /// Creates a cube decomposition. Panics unless `k` divides every extent.
    pub fn new(dims: Dims, k: usize) -> Self {
        assert!(k > 0, "cube edge must be positive");
        assert!(
            dims.nx % k == 0 && dims.ny % k == 0 && dims.nz % k == 0,
            "cube edge {k} must divide grid {}x{}x{}",
            dims.nx,
            dims.ny,
            dims.nz
        );
        Self {
            dims,
            k,
            cx: dims.nx / k,
            cy: dims.ny / k,
            cz: dims.nz / k,
        }
    }

    /// Total number of cubes.
    #[inline]
    pub fn num_cubes(&self) -> usize {
        self.cx * self.cy * self.cz
    }

    /// Nodes per cube (`k³`).
    #[inline]
    pub fn nodes_per_cube(&self) -> usize {
        self.k * self.k * self.k
    }

    /// Flat cube index of cube coordinates `(ci, cj, ck)`.
    #[inline]
    pub fn cube_idx(&self, ci: usize, cj: usize, ck: usize) -> usize {
        debug_assert!(ci < self.cx && cj < self.cy && ck < self.cz);
        (ci * self.cy + cj) * self.cz + ck
    }

    /// Inverse of [`CubeDims::cube_idx`].
    #[inline]
    pub fn cube_coords(&self, c: usize) -> (usize, usize, usize) {
        let ck = c % self.cz;
        let cj = (c / self.cz) % self.cy;
        let ci = c / (self.cz * self.cy);
        (ci, cj, ck)
    }

    /// Local node index within a cube for local coordinates `(lx, ly, lz)`.
    #[inline]
    pub fn local_idx(&self, lx: usize, ly: usize, lz: usize) -> usize {
        debug_assert!(lx < self.k && ly < self.k && lz < self.k);
        (lx * self.k + ly) * self.k + lz
    }

    /// Splits a global coordinate into (cube index, local node index).
    #[inline]
    pub fn split(&self, x: usize, y: usize, z: usize) -> (usize, usize) {
        let (ci, lx) = (x / self.k, x % self.k);
        let (cj, ly) = (y / self.k, y % self.k);
        let (ck, lz) = (z / self.k, z % self.k);
        (self.cube_idx(ci, cj, ck), self.local_idx(lx, ly, lz))
    }

    /// Global coordinates of (cube index, local node index).
    #[inline]
    pub fn join(&self, cube: usize, local: usize) -> (usize, usize, usize) {
        let (ci, cj, ck) = self.cube_coords(cube);
        let lz = local % self.k;
        let ly = (local / self.k) % self.k;
        let lx = local / (self.k * self.k);
        (ci * self.k + lx, cj * self.k + ly, ck * self.k + lz)
    }

    /// Flat scalar-field index of (cube, local): cube-major storage.
    #[inline]
    pub fn flat(&self, cube: usize, local: usize) -> usize {
        cube * self.nodes_per_cube() + local
    }

    /// Flat scalar-field index of a global coordinate.
    #[inline]
    pub fn flat_of_global(&self, x: usize, y: usize, z: usize) -> usize {
        let (c, l) = self.split(x, y, z);
        self.flat(c, l)
    }
}

/// Fluid state stored cube-blocked. Field meanings match [`FluidGrid`]; only
/// the index mapping differs: scalar entry `flat(cube, local)`, distribution
/// entry `flat(cube, local) * Q + dir`. All nodes of a cube — and all 19
/// directions of all its nodes — are contiguous.
#[derive(Clone, Debug)]
pub struct CubeFluidGrid {
    pub cdims: CubeDims,
    pub f: Vec<f64>,
    pub f_new: Vec<f64>,
    pub rho: Vec<f64>,
    pub ux: Vec<f64>,
    pub uy: Vec<f64>,
    pub uz: Vec<f64>,
    /// Equilibrium-shift velocity, see [`FluidGrid::ueqx`].
    pub ueqx: Vec<f64>,
    pub ueqy: Vec<f64>,
    pub ueqz: Vec<f64>,
    pub fx: Vec<f64>,
    pub fy: Vec<f64>,
    pub fz: Vec<f64>,
}

impl CubeFluidGrid {
    /// Allocates a cube-blocked grid with zero distributions, unit density.
    pub fn new(cdims: CubeDims) -> Self {
        let n = cdims.dims.n();
        Self {
            cdims,
            f: vec![0.0; n * Q],
            f_new: vec![0.0; n * Q],
            rho: vec![1.0; n],
            ux: vec![0.0; n],
            uy: vec![0.0; n],
            uz: vec![0.0; n],
            ueqx: vec![0.0; n],
            ueqy: vec![0.0; n],
            ueqz: vec![0.0; n],
            fx: vec![0.0; n],
            fy: vec![0.0; n],
            fz: vec![0.0; n],
        }
    }

    /// Total number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.cdims.dims.n()
    }

    /// Reorders a node-major [`FluidGrid`] into cube-blocked storage.
    pub fn from_flat(grid: &FluidGrid, k: usize) -> Self {
        let cdims = CubeDims::new(grid.dims, k);
        let mut out = Self::new(cdims);
        for (x, y, z) in grid.dims.iter_coords() {
            let src = grid.dims.idx(x, y, z);
            let dst = cdims.flat_of_global(x, y, z);
            out.f[dst * Q..dst * Q + Q].copy_from_slice(&grid.f[src * Q..src * Q + Q]);
            out.f_new[dst * Q..dst * Q + Q].copy_from_slice(&grid.f_new[src * Q..src * Q + Q]);
            out.rho[dst] = grid.rho[src];
            out.ux[dst] = grid.ux[src];
            out.uy[dst] = grid.uy[src];
            out.uz[dst] = grid.uz[src];
            out.ueqx[dst] = grid.ueqx[src];
            out.ueqy[dst] = grid.ueqy[src];
            out.ueqz[dst] = grid.ueqz[src];
            out.fx[dst] = grid.fx[src];
            out.fy[dst] = grid.fy[src];
            out.fz[dst] = grid.fz[src];
        }
        out
    }

    /// Reorders back to a node-major [`FluidGrid`] (used by the verification
    /// machinery to compare cube and flat solvers).
    pub fn to_flat(&self) -> FluidGrid {
        let dims = self.cdims.dims;
        let mut out = FluidGrid::new(dims);
        for (x, y, z) in dims.iter_coords() {
            let src = self.cdims.flat_of_global(x, y, z);
            let dst = dims.idx(x, y, z);
            out.f[dst * Q..dst * Q + Q].copy_from_slice(&self.f[src * Q..src * Q + Q]);
            out.f_new[dst * Q..dst * Q + Q].copy_from_slice(&self.f_new[src * Q..src * Q + Q]);
            out.rho[dst] = self.rho[src];
            out.ux[dst] = self.ux[src];
            out.uy[dst] = self.uy[src];
            out.uz[dst] = self.uz[src];
            out.ueqx[dst] = self.ueqx[src];
            out.ueqy[dst] = self.ueqy[src];
            out.ueqz[dst] = self.ueqz[src];
            out.fx[dst] = self.fx[src];
            out.fy[dst] = self.fy[src];
            out.fz[dst] = self.fz[src];
        }
        out
    }

    /// Clears the per-node body force.
    pub fn clear_force(&mut self) {
        self.fx.fill(0.0);
        self.fy.fill(0.0);
        self.fz.fill(0.0);
    }

    /// Kernel 9 restricted to one cube: copy its `f_new` block into `f`.
    #[inline]
    pub fn copy_distributions_cube(&mut self, cube: usize) {
        let npc = self.cdims.nodes_per_cube();
        let a = cube * npc * Q;
        let b = a + npc * Q;
        let (f, f_new) = (&mut self.f, &self.f_new);
        f[a..b].copy_from_slice(&f_new[a..b]);
    }

    /// Total fluid mass.
    pub fn total_mass(&self) -> f64 {
        self.f.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn divisibility_enforced() {
        let d = Dims::new(8, 8, 8);
        let c = CubeDims::new(d, 4);
        assert_eq!((c.cx, c.cy, c.cz), (2, 2, 2));
        assert_eq!(c.num_cubes(), 8);
        assert_eq!(c.nodes_per_cube(), 64);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_k_rejected() {
        CubeDims::new(Dims::new(9, 8, 8), 4);
    }

    #[test]
    fn split_join_round_trip() {
        let c = CubeDims::new(Dims::new(8, 12, 4), 4);
        for (x, y, z) in c.dims.iter_coords() {
            let (cube, local) = c.split(x, y, z);
            assert_eq!(c.join(cube, local), (x, y, z));
        }
    }

    #[test]
    fn flat_covers_every_scalar_slot_once() {
        let c = CubeDims::new(Dims::new(8, 4, 8), 2);
        let mut seen = vec![false; c.dims.n()];
        for (x, y, z) in c.dims.iter_coords() {
            let i = c.flat_of_global(x, y, z);
            assert!(!seen[i], "slot {i} hit twice");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cube_nodes_are_contiguous() {
        let c = CubeDims::new(Dims::new(4, 4, 4), 2);
        // All 8 nodes of cube 0 occupy flat slots 0..8.
        for lx in 0..2 {
            for ly in 0..2 {
                for lz in 0..2 {
                    let i = c.flat_of_global(lx, ly, lz);
                    assert!(i < 8, "node ({lx},{ly},{lz}) of cube 0 at slot {i}");
                }
            }
        }
    }

    #[test]
    fn figure6_mapping_example() {
        // The paper's Figure 6: a 4x4x4 grid with k = 2 yields 2x2x2 cubes.
        let c = CubeDims::new(Dims::new(4, 4, 4), 2);
        assert_eq!((c.cx, c.cy, c.cz), (2, 2, 2));
        assert_eq!(c.num_cubes(), 8);
        // Node (3,3,3) lives in the last cube, last local slot.
        let (cube, local) = c.split(3, 3, 3);
        assert_eq!(cube, 7);
        assert_eq!(local, 7);
    }

    #[test]
    fn round_trip_through_flat_grid() {
        let dims = Dims::new(4, 6, 2);
        let mut g = FluidGrid::new(dims);
        for (i, v) in g.f.iter_mut().enumerate() {
            *v = i as f64 * 0.5;
        }
        for (i, v) in g.rho.iter_mut().enumerate() {
            *v = 1.0 + i as f64 * 0.01;
        }
        for (i, v) in g.fy.iter_mut().enumerate() {
            *v = -(i as f64);
        }
        let cube = CubeFluidGrid::from_flat(&g, 2);
        let back = cube.to_flat();
        assert_eq!(back.f, g.f);
        assert_eq!(back.rho, g.rho);
        assert_eq!(back.fy, g.fy);
    }

    #[test]
    fn copy_distributions_cube_is_local() {
        let c = CubeDims::new(Dims::new(4, 4, 4), 2);
        let mut g = CubeFluidGrid::new(c);
        for (i, v) in g.f_new.iter_mut().enumerate() {
            *v = i as f64;
        }
        g.copy_distributions_cube(3);
        let npc = c.nodes_per_cube();
        for slot in 0..g.f.len() {
            let in_cube3 = (3 * npc * Q..4 * npc * Q).contains(&slot);
            if in_cube3 {
                assert_eq!(g.f[slot], slot as f64);
            } else {
                assert_eq!(g.f[slot], 0.0, "slot {slot} outside cube 3 was touched");
            }
        }
    }

    proptest! {
        /// split/join bijection for random geometry.
        #[test]
        fn prop_split_join(
            cx in 1usize..4,
            cy in 1usize..4,
            cz in 1usize..4,
            k in 1usize..5,
        ) {
            let c = CubeDims::new(Dims::new(cx * k, cy * k, cz * k), k);
            for cube in 0..c.num_cubes() {
                for local in 0..c.nodes_per_cube() {
                    let (x, y, z) = c.join(cube, local);
                    prop_assert_eq!(c.split(x, y, z), (cube, local));
                }
            }
        }
    }
}
