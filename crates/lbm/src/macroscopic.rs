//! Macroscopic field update (kernel 7, `update_fluid_velocity`): recover the
//! density and velocity of every fluid node from the freshly streamed
//! distributions and the elastic force spread by the fibers.
//!
//! With Guo forcing the physically consistent velocity carries a half-force
//! correction: `ρ = Σ_i f_i`, `ρ u = Σ_i f_i e_i + F/2`.

use crate::grid::FluidGrid;
use crate::lattice::{EF, Q};

/// Density and force-corrected velocity of a single node's distributions.
#[inline]
pub fn node_moments(f: &[f64], force: [f64; 3]) -> (f64, [f64; 3]) {
    debug_assert_eq!(f.len(), Q);
    let mut rho = 0.0;
    let mut m = [0.0; 3];
    for i in 0..Q {
        let fi = f[i];
        rho += fi;
        m[0] += fi * EF[i][0];
        m[1] += fi * EF[i][1];
        m[2] += fi * EF[i][2];
    }
    let inv = 1.0 / rho;
    (
        rho,
        [
            (m[0] + 0.5 * force[0]) * inv,
            (m[1] + 0.5 * force[1]) * inv,
            (m[2] + 0.5 * force[2]) * inv,
        ],
    )
}

/// Sequential whole-grid macroscopic update from the **new** (post-streaming)
/// distribution buffer, exactly as the paper places kernel 7 after kernel 6.
pub fn update_velocity(grid: &mut FluidGrid) {
    for node in 0..grid.n() {
        let force = [grid.fx[node], grid.fy[node], grid.fz[node]];
        let (rho, u) = node_moments(&grid.f_new[node * Q..node * Q + Q], force);
        grid.rho[node] = rho;
        grid.ux[node] = u[0];
        grid.uy[node] = u[1];
        grid.uz[node] = u[2];
    }
}

/// Moments for the velocity-shift (Shan–Chen style) forcing used by the
/// coupled LBM-IB solvers: returns `(ρ, u_phys, u_eq)` where
/// `u_phys = (Σ f e + F/2)/ρ` is the physical velocity reported to the
/// structure and the diagnostics, and `u_eq = (Σ f e + τF)/ρ` is the
/// velocity the next collision's equilibrium is built around (so the
/// collision itself never reads the force — the property Algorithm 4's
/// three-barrier schedule depends on). Relaxing toward `feq(ρ, u_eq)` adds
/// exactly `F` of momentum per step.
#[inline]
pub fn node_moments_shifted(f: &[f64], force: [f64; 3], tau: f64) -> (f64, [f64; 3], [f64; 3]) {
    debug_assert_eq!(f.len(), Q);
    let mut rho = 0.0;
    let mut m = [0.0; 3];
    for i in 0..Q {
        let fi = f[i];
        rho += fi;
        m[0] += fi * EF[i][0];
        m[1] += fi * EF[i][1];
        m[2] += fi * EF[i][2];
    }
    let inv = 1.0 / rho;
    let u_phys = [
        (m[0] + 0.5 * force[0]) * inv,
        (m[1] + 0.5 * force[1]) * inv,
        (m[2] + 0.5 * force[2]) * inv,
    ];
    let u_eq = [
        (m[0] + tau * force[0]) * inv,
        (m[1] + tau * force[1]) * inv,
        (m[2] + tau * force[2]) * inv,
    ];
    (rho, u_phys, u_eq)
}

/// Kernel 7 for the coupled solvers: whole-grid shifted macroscopic update
/// from the new (post-streaming) buffer. Fills `rho`, the physical
/// velocity (`ux..uz`) and the equilibrium-shift velocity (`ueqx..ueqz`).
pub fn update_velocity_shifted(grid: &mut FluidGrid, tau: f64) {
    for node in 0..grid.n() {
        let force = [grid.fx[node], grid.fy[node], grid.fz[node]];
        let (rho, u, ueq) = node_moments_shifted(&grid.f_new[node * Q..node * Q + Q], force, tau);
        grid.rho[node] = rho;
        grid.ux[node] = u[0];
        grid.uy[node] = u[1];
        grid.uz[node] = u[2];
        grid.ueqx[node] = ueq[0];
        grid.ueqy[node] = ueq[1];
        grid.ueqz[node] = ueq[2];
    }
}

/// Initialises a grid to equilibrium at the given density and velocity
/// fields (functions of the node coordinate), storing matching macroscopic
/// values. This stands in for the paper's `create_fluid_grid()`.
pub fn initialize_equilibrium<Frho, Fu>(grid: &mut FluidGrid, rho_of: Frho, u_of: Fu)
where
    Frho: Fn(usize, usize, usize) -> f64,
    Fu: Fn(usize, usize, usize) -> [f64; 3],
{
    use crate::equilibrium::feq_all;
    let dims = grid.dims;
    for (x, y, z) in dims.iter_coords() {
        let node = dims.idx(x, y, z);
        let rho = rho_of(x, y, z);
        let u = u_of(x, y, z);
        let mut eq = [0.0; Q];
        feq_all(rho, u, &mut eq);
        grid.f[node * Q..node * Q + Q].copy_from_slice(&eq);
        grid.f_new[node * Q..node * Q + Q].copy_from_slice(&eq);
        grid.rho[node] = rho;
        grid.ux[node] = u[0];
        grid.uy[node] = u[1];
        grid.uz[node] = u[2];
        grid.ueqx[node] = u[0];
        grid.ueqy[node] = u[1];
        grid.ueqz[node] = u[2];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::feq;
    use crate::grid::Dims;

    #[test]
    fn moments_of_equilibrium_recover_inputs() {
        let rho_in = 1.07;
        let u_in = [0.03, -0.02, 0.05];
        let mut f = [0.0; Q];
        for i in 0..Q {
            f[i] = feq(i, rho_in, u_in);
        }
        let (rho, u) = node_moments(&f, [0.0; 3]);
        assert!((rho - rho_in).abs() < 1e-13);
        for a in 0..3 {
            assert!((u[a] - u_in[a]).abs() < 1e-13, "axis {a}");
        }
    }

    #[test]
    fn half_force_correction_applied() {
        let rho_in = 1.0;
        let mut f = [0.0; Q];
        for i in 0..Q {
            f[i] = feq(i, rho_in, [0.0; 3]);
        }
        let force = [2e-3, -4e-3, 6e-3];
        let (_, u) = node_moments(&f, force);
        for a in 0..3 {
            assert!((u[a] - 0.5 * force[a]).abs() < 1e-15, "axis {a}");
        }
    }

    #[test]
    fn update_velocity_reads_new_buffer() {
        let dims = Dims::new(2, 2, 2);
        let mut g = FluidGrid::new(dims);
        // Put junk in the present buffer and equilibrium in the new buffer:
        // kernel 7 must look at the new buffer only.
        g.f.fill(99.0);
        let u_in = [0.01, 0.02, 0.03];
        for node in 0..g.n() {
            for i in 0..Q {
                g.f_new[node * Q + i] = feq(i, 1.0, u_in);
            }
        }
        update_velocity(&mut g);
        for node in 0..g.n() {
            assert!((g.rho[node] - 1.0).abs() < 1e-13);
            assert!((g.ux[node] - u_in[0]).abs() < 1e-13);
            assert!((g.uy[node] - u_in[1]).abs() < 1e-13);
            assert!((g.uz[node] - u_in[2]).abs() < 1e-13);
        }
    }

    #[test]
    fn shifted_moments_relations() {
        let tau = 0.85;
        let mut f = [0.0; Q];
        for i in 0..Q {
            f[i] = feq(i, 1.2, [0.01, -0.02, 0.03]);
        }
        let force = [4e-3, 0.0, -2e-3];
        let (rho, u, ueq) = node_moments_shifted(&f, force, tau);
        let (rho_plain, u_half) = node_moments(&f, force);
        assert_eq!(rho, rho_plain);
        for a in 0..3 {
            // u_phys matches the F/2-corrected Guo velocity definition.
            assert!((u[a] - u_half[a]).abs() < 1e-15, "axis {a}");
            // u_eq differs from the bare velocity by τF/ρ.
            let (_, bare) = node_moments(&f, [0.0; 3]);
            assert!(
                (ueq[a] - (bare[a] + tau * force[a] / rho)).abs() < 1e-15,
                "axis {a}"
            );
        }
    }

    #[test]
    fn shifted_collision_adds_exactly_f_momentum() {
        // Relaxing toward feq(rho, u_eq) must inject exactly F per step.
        use crate::collision::bgk_collide_node;
        use crate::lattice::EF;
        let tau = 0.7;
        let force = [3e-4, -1e-4, 2e-4];
        let mut f = [0.0; Q];
        for i in 0..Q {
            f[i] = feq(i, 1.0, [0.02, 0.01, -0.01]);
        }
        let mom = |f: &[f64; Q], a: usize| -> f64 { (0..Q).map(|i| f[i] * EF[i][a]).sum() };
        let p_before = [mom(&f, 0), mom(&f, 1), mom(&f, 2)];
        let (rho, _, ueq) = node_moments_shifted(&f, force, tau);
        bgk_collide_node(&mut f, rho, ueq, [0.0; 3], tau);
        for a in 0..3 {
            let dp = mom(&f, a) - p_before[a];
            assert!(
                (dp - force[a]).abs() < 1e-15,
                "axis {a}: dp {dp} vs F {}",
                force[a]
            );
        }
    }

    #[test]
    fn update_velocity_shifted_fills_all_fields() {
        let dims = Dims::new(2, 2, 2);
        let mut g = FluidGrid::new(dims);
        for node in 0..g.n() {
            for i in 0..Q {
                g.f_new[node * Q + i] = feq(i, 1.0, [0.0; 3]);
            }
            g.fx[node] = 1e-3;
        }
        update_velocity_shifted(&mut g, 0.9);
        for node in 0..g.n() {
            assert!((g.ux[node] - 0.5e-3).abs() < 1e-15);
            assert!((g.ueqx[node] - 0.9e-3).abs() < 1e-15);
            assert_eq!(g.uy[node], 0.0);
            assert_eq!(g.ueqz[node], 0.0);
        }
    }

    #[test]
    fn initialize_equilibrium_sets_consistent_state() {
        let dims = Dims::new(3, 2, 2);
        let mut g = FluidGrid::new(dims);
        initialize_equilibrium(
            &mut g,
            |x, _, _| 1.0 + 0.01 * x as f64,
            |_, y, _| [0.01 * y as f64, 0.0, 0.0],
        );
        for (x, y, z) in dims.iter_coords() {
            let node = dims.idx(x, y, z);
            assert!((g.rho[node] - (1.0 + 0.01 * x as f64)).abs() < 1e-15);
            assert!((g.ux[node] - 0.01 * y as f64).abs() < 1e-15);
            // Present and new buffers start identical.
            assert_eq!(g.node_f(node), g.node_f_new(node));
            // Moments of the stored distributions agree with the fields.
            let (rho, u) = node_moments(g.node_f(node), [0.0; 3]);
            assert!((rho - g.rho[node]).abs() < 1e-13);
            assert!((u[0] - g.ux[node]).abs() < 1e-13);
            let _ = z;
        }
    }
}
