//! The Maxwell–Boltzmann equilibrium distribution truncated to second order
//! in the fluid velocity, which is what the BGK collision relaxes toward.

use crate::lattice::{CS2, EF, Q, W};

/// Equilibrium distribution for direction `i` at density `rho` and
/// velocity `u`:
///
/// `f^eq_i = w_i ρ (1 + e·u / c_s² + (e·u)² / 2c_s⁴ − u·u / 2c_s²)`
///
/// With `c_s² = 1/3` the familiar coefficients 3, 4.5, 1.5 appear.
#[inline]
pub fn feq(i: usize, rho: f64, u: [f64; 3]) -> f64 {
    let eu = EF[i][0] * u[0] + EF[i][1] * u[1] + EF[i][2] * u[2];
    let uu = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
    W[i] * rho * (1.0 + 3.0 * eu + 4.5 * eu * eu - 1.5 * uu)
}

/// Computes all 19 equilibrium values at once into `out`.
///
/// This is the hot-loop form used by the collision kernel: the common
/// subexpressions (`u·u`, per-direction `e·u`) are evaluated once.
#[inline]
pub fn feq_all(rho: f64, u: [f64; 3], out: &mut [f64; Q]) {
    let uu = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
    let base = 1.0 - 1.5 * uu;
    for i in 0..Q {
        let eu = EF[i][0] * u[0] + EF[i][1] * u[1] + EF[i][2] * u[2];
        out[i] = W[i] * rho * (base + 3.0 * eu + 4.5 * eu * eu);
    }
}

/// Zeroth moment of the equilibrium: recovers `rho` exactly.
pub fn feq_density(rho: f64, u: [f64; 3]) -> f64 {
    (0..Q).map(|i| feq(i, rho, u)).sum()
}

/// First moment of the equilibrium: recovers `rho * u` exactly.
pub fn feq_momentum(rho: f64, u: [f64; 3]) -> [f64; 3] {
    let mut m = [0.0; 3];
    for i in 0..Q {
        let fi = feq(i, rho, u);
        m[0] += fi * EF[i][0];
        m[1] += fi * EF[i][1];
        m[2] += fi * EF[i][2];
    }
    m
}

/// Second moment `Σ f^eq_i e_ia e_ib = ρ c_s² δ_ab + ρ u_a u_b`
/// (the Euler-level momentum flux). Exposed for the validation tests.
pub fn feq_stress(rho: f64, u: [f64; 3]) -> [[f64; 3]; 3] {
    let mut s = [[0.0; 3]; 3];
    for i in 0..Q {
        let fi = feq(i, rho, u);
        for a in 0..3 {
            for b in 0..3 {
                s[a][b] += fi * EF[i][a] * EF[i][b];
            }
        }
    }
    let _ = CS2;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rest_fluid_equilibrium_is_weights() {
        for i in 0..Q {
            assert!((feq(i, 1.0, [0.0; 3]) - W[i]).abs() < 1e-15);
        }
    }

    #[test]
    fn feq_all_matches_feq() {
        let u = [0.03, -0.05, 0.02];
        let mut out = [0.0; Q];
        feq_all(1.1, u, &mut out);
        for i in 0..Q {
            assert!((out[i] - feq(i, 1.1, u)).abs() < 1e-15, "dir {i}");
        }
    }

    #[test]
    fn moments_recover_density_and_momentum() {
        let rho = 0.97;
        let u = [0.04, 0.01, -0.06];
        assert!((feq_density(rho, u) - rho).abs() < 1e-13);
        let m = feq_momentum(rho, u);
        for a in 0..3 {
            assert!((m[a] - rho * u[a]).abs() < 1e-13, "axis {a}");
        }
    }

    #[test]
    fn stress_moment_is_euler_flux() {
        let rho = 1.05;
        let u = [0.05, -0.02, 0.03];
        let s = feq_stress(rho, u);
        for a in 0..3 {
            for b in 0..3 {
                let want = rho * u[a] * u[b] + if a == b { rho * CS2 } else { 0.0 };
                assert!(
                    (s[a][b] - want).abs() < 1e-13,
                    "({a},{b}): {} vs {want}",
                    s[a][b]
                );
            }
        }
    }

    proptest! {
        /// Density and momentum identities hold for arbitrary small velocities
        /// and densities near 1 — the regime the solver operates in.
        #[test]
        fn prop_moment_identities(
            rho in 0.5f64..2.0,
            ux in -0.15f64..0.15,
            uy in -0.15f64..0.15,
            uz in -0.15f64..0.15,
        ) {
            let u = [ux, uy, uz];
            prop_assert!((feq_density(rho, u) - rho).abs() < 1e-12);
            let m = feq_momentum(rho, u);
            for a in 0..3 {
                prop_assert!((m[a] - rho * u[a]).abs() < 1e-12);
            }
        }

        /// Equilibrium values stay positive for the velocities the CFL-like
        /// stability constraint allows (|u| well below c_s).
        #[test]
        fn prop_positivity_at_low_mach(
            ux in -0.1f64..0.1,
            uy in -0.1f64..0.1,
            uz in -0.1f64..0.1,
        ) {
            for i in 0..Q {
                prop_assert!(feq(i, 1.0, [ux, uy, uz]) > 0.0, "dir {}", i);
            }
        }
    }
}
