//! The user-defined data-distribution functions of Section V-A:
//! `cube2thread(ci, cj, ck)` maps cubes onto a 3D thread mesh `P × Q × R`,
//! and `fiber2thread(i)` maps fibers onto threads. Block, cyclic and
//! block-cyclic policies are provided, with block distribution as the
//! paper's default.

use crate::cube_grid::CubeDims;

/// A 3D mesh of `p × q × r` threads (`n = p·q·r` total), Figure 6's
/// "thread grid".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadMesh {
    pub p: usize,
    pub q: usize,
    pub r: usize,
}

impl ThreadMesh {
    /// Creates a thread mesh. Panics if any extent is zero.
    pub fn new(p: usize, q: usize, r: usize) -> Self {
        assert!(
            p > 0 && q > 0 && r > 0,
            "thread mesh extents must be positive"
        );
        Self { p, q, r }
    }

    /// Total thread count.
    #[inline]
    pub fn n(&self) -> usize {
        self.p * self.q * self.r
    }

    /// Thread ID of mesh position `(ti, tj, tk)`.
    #[inline]
    pub fn id(&self, ti: usize, tj: usize, tk: usize) -> usize {
        debug_assert!(ti < self.p && tj < self.q && tk < self.r);
        (ti * self.q + tj) * self.r + tk
    }

    /// Chooses a mesh for `n` threads that is as close to cubic as possible:
    /// the factorisation `p ≥ q ≥ r` minimising `p − r`. This is the shape
    /// the paper's examples use (e.g. 8 threads → 2×2×2).
    pub fn for_threads(n: usize) -> Self {
        assert!(n > 0, "thread count must be positive");
        let mut best = (n, 1, 1);
        let mut best_spread = n;
        for r in 1..=n {
            if n % r != 0 {
                continue;
            }
            let m = n / r;
            for q in r..=m {
                if m % q != 0 {
                    continue;
                }
                let p = m / q;
                if p < q {
                    continue;
                }
                let spread = p - r;
                if spread < best_spread {
                    best_spread = spread;
                    best = (p, q, r);
                }
            }
        }
        Self::new(best.0, best.1, best.2)
    }
}

/// Distribution policy for mapping cube/fiber indices to threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Contiguous blocks: cube axis is cut into `P` (resp. Q, R) runs.
    Block,
    /// Round-robin along each axis.
    Cyclic,
    /// Round-robin of fixed-size blocks along each axis.
    BlockCyclic { block: usize },
}

/// Maps one axis position to a mesh coordinate under a policy.
#[inline]
fn axis_map(policy: Policy, pos: usize, extent: usize, threads: usize) -> usize {
    debug_assert!(pos < extent);
    match policy {
        Policy::Block => {
            // Balanced block distribution: the first `extent % threads`
            // threads get one extra element.
            let base = extent / threads;
            let rem = extent % threads;
            let cut = rem * (base + 1);
            if pos < cut {
                pos / (base + 1)
            } else {
                rem + (pos - cut) / base.max(1)
            }
        }
        Policy::Cyclic => pos % threads,
        Policy::BlockCyclic { block } => (pos / block.max(1)) % threads,
    }
}

/// The paper's `cube2thread` distribution function: thread ID owning cube
/// `(ci, cj, ck)` of the decomposition, on the given thread mesh.
#[derive(Clone, Copy, Debug)]
pub struct CubeDistribution {
    pub mesh: ThreadMesh,
    pub policy: Policy,
}

impl CubeDistribution {
    /// Block distribution on a near-cubic mesh for `n` threads — the
    /// default configuration evaluated in the paper.
    pub fn block(n_threads: usize) -> Self {
        Self {
            mesh: ThreadMesh::for_threads(n_threads),
            policy: Policy::Block,
        }
    }

    /// Thread ID owning cube `(ci, cj, ck)`.
    #[inline]
    pub fn cube2thread(&self, cdims: &CubeDims, ci: usize, cj: usize, ck: usize) -> usize {
        let ti = axis_map(self.policy, ci, cdims.cx, self.mesh.p);
        let tj = axis_map(self.policy, cj, cdims.cy, self.mesh.q);
        let tk = axis_map(self.policy, ck, cdims.cz, self.mesh.r);
        self.mesh.id(ti, tj, tk)
    }

    /// Thread ID owning the cube with flat index `cube`.
    #[inline]
    pub fn owner_of(&self, cdims: &CubeDims, cube: usize) -> usize {
        let (ci, cj, ck) = cdims.cube_coords(cube);
        self.cube2thread(cdims, ci, cj, ck)
    }

    /// Owner of every cube, indexed by flat cube index. Computed once at
    /// solver start so the hot loops do a table lookup.
    pub fn ownership_table(&self, cdims: &CubeDims) -> Vec<usize> {
        (0..cdims.num_cubes())
            .map(|c| self.owner_of(cdims, c))
            .collect()
    }

    /// Number of cubes owned by each thread (load-balance diagnostics).
    pub fn loads(&self, cdims: &CubeDims) -> Vec<usize> {
        let mut loads = vec![0usize; self.mesh.n()];
        for c in 0..cdims.num_cubes() {
            loads[self.owner_of(cdims, c)] += 1;
        }
        loads
    }
}

/// The paper's `fiber2thread`: fibers are dealt to threads. Block
/// distribution over the fiber index by default.
#[derive(Clone, Copy, Debug)]
pub struct FiberDistribution {
    pub n_threads: usize,
    pub policy: Policy,
}

impl FiberDistribution {
    /// Block distribution over `n_threads`.
    pub fn block(n_threads: usize) -> Self {
        assert!(n_threads > 0);
        Self {
            n_threads,
            policy: Policy::Block,
        }
    }

    /// Thread ID owning fiber `i` out of `num_fibers`.
    #[inline]
    pub fn fiber2thread(&self, i: usize, num_fibers: usize) -> usize {
        axis_map(self.policy, i, num_fibers, self.n_threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Dims;
    use proptest::prelude::*;

    #[test]
    fn mesh_for_threads_prefers_cubic() {
        assert_eq!(ThreadMesh::for_threads(8), ThreadMesh::new(2, 2, 2));
        assert_eq!(ThreadMesh::for_threads(64), ThreadMesh::new(4, 4, 4));
        assert_eq!(ThreadMesh::for_threads(1), ThreadMesh::new(1, 1, 1));
        let m = ThreadMesh::for_threads(12);
        assert_eq!(m.n(), 12);
        assert!(m.p >= m.q && m.q >= m.r);
    }

    #[test]
    fn mesh_ids_cover_range() {
        let m = ThreadMesh::new(2, 3, 2);
        let mut seen = vec![false; m.n()];
        for ti in 0..m.p {
            for tj in 0..m.q {
                for tk in 0..m.r {
                    let id = m.id(ti, tj, tk);
                    assert!(!seen[id]);
                    seen[id] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn figure6_block_mapping() {
        // Paper Figure 6: 4x4x4 nodes, k = 2 → 2x2x2 cubes on a 2x2x2 thread
        // mesh; each thread owns exactly one cube, thread T0 gets cube
        // (0,0,0) and thread T7 gets cube (1,1,1).
        let cdims = CubeDims::new(Dims::new(4, 4, 4), 2);
        let dist = CubeDistribution::block(8);
        assert_eq!(dist.mesh, ThreadMesh::new(2, 2, 2));
        let loads = dist.loads(&cdims);
        assert_eq!(loads, vec![1; 8]);
        assert_eq!(dist.cube2thread(&cdims, 0, 0, 0), 0);
        assert_eq!(dist.cube2thread(&cdims, 1, 1, 1), 7);
    }

    #[test]
    fn block_distribution_is_contiguous_per_axis() {
        // 8 positions over 3 threads: loads 3,3,2 and runs contiguous.
        let owners: Vec<usize> = (0..8).map(|p| axis_map(Policy::Block, p, 8, 3)).collect();
        assert_eq!(owners, vec![0, 0, 0, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn cyclic_distribution_round_robins() {
        let owners: Vec<usize> = (0..6).map(|p| axis_map(Policy::Cyclic, p, 6, 3)).collect();
        assert_eq!(owners, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn block_cyclic_distribution_blocks_then_cycles() {
        let owners: Vec<usize> = (0..8)
            .map(|p| axis_map(Policy::BlockCyclic { block: 2 }, p, 8, 2))
            .collect();
        assert_eq!(owners, vec![0, 0, 1, 1, 0, 0, 1, 1]);
    }

    #[test]
    fn ownership_table_matches_owner_of() {
        let cdims = CubeDims::new(Dims::new(8, 8, 8), 2);
        let dist = CubeDistribution::block(4);
        let table = dist.ownership_table(&cdims);
        for c in 0..cdims.num_cubes() {
            assert_eq!(table[c], dist.owner_of(&cdims, c));
        }
    }

    #[test]
    fn every_thread_gets_work_when_enough_cubes() {
        let cdims = CubeDims::new(Dims::new(16, 16, 16), 4); // 64 cubes
        for n in [1, 2, 4, 8, 16, 32, 64] {
            let dist = CubeDistribution::block(n);
            let loads = dist.loads(&cdims);
            assert_eq!(loads.iter().sum::<usize>(), 64, "{n} threads");
            assert!(
                loads.iter().all(|&l| l > 0),
                "{n} threads: idle thread, loads {loads:?}"
            );
        }
    }

    #[test]
    fn fiber2thread_block_is_balanced() {
        let d = FiberDistribution::block(4);
        let mut loads = [0usize; 4];
        for i in 0..52 {
            loads[d.fiber2thread(i, 52)] += 1;
        }
        assert_eq!(loads, [13, 13, 13, 13]);
    }

    proptest! {
        /// Each cube is owned by exactly one valid thread and block loads
        /// differ by at most... (for per-axis block: max/min within 1 per
        /// axis, so product ratio is bounded; we just check validity and
        /// full coverage of cube set).
        #[test]
        fn prop_ownership_is_total_and_valid(
            cx in 1usize..5,
            cy in 1usize..5,
            cz in 1usize..5,
            n_threads in 1usize..9,
        ) {
            let cdims = CubeDims::new(Dims::new(cx * 2, cy * 2, cz * 2), 2);
            let dist = CubeDistribution::block(n_threads);
            let loads = dist.loads(&cdims);
            prop_assert_eq!(loads.iter().sum::<usize>(), cdims.num_cubes());
            for c in 0..cdims.num_cubes() {
                prop_assert!(dist.owner_of(&cdims, c) < n_threads);
            }
        }

        /// Per-axis block mapping is monotone (preserves contiguity).
        #[test]
        fn prop_block_axis_monotone(extent in 1usize..40, threads in 1usize..9) {
            let mut prev = 0;
            for pos in 0..extent {
                let t = axis_map(Policy::Block, pos, extent, threads);
                prop_assert!(t < threads);
                prop_assert!(t >= prev, "owner decreased at {}", pos);
                prop_assert!(t - prev <= 1, "owner jumped at {}", pos);
                prev = t;
            }
        }
    }
}
