//! Lattice ↔ physical unit conversion. The solver works in lattice units
//! (dx = dt = 1); real FSI problems — blood cells in vessels, sheets in
//! water tunnels — are posed in SI units. The converter fixes the three
//! free scales (length, time, density) and derives everything else,
//! keeping the Reynolds number invariant by construction.

use crate::collision::Relaxation;

/// Conversion factors between lattice and physical (SI) units.
#[derive(Clone, Copy, Debug)]
pub struct UnitConverter {
    /// Physical size of one lattice spacing, metres.
    pub dx: f64,
    /// Physical duration of one time step, seconds.
    pub dt: f64,
    /// Physical density of one lattice density unit, kg/m³.
    pub rho0: f64,
}

impl UnitConverter {
    /// Builds a converter from explicit scales. Panics on non-positive
    /// scales.
    pub fn new(dx: f64, dt: f64, rho0: f64) -> Self {
        assert!(
            dx > 0.0 && dt > 0.0 && rho0 > 0.0,
            "scales must be positive"
        );
        Self { dx, dt, rho0 }
    }

    /// Derives the converter (and relaxation time) for a target physical
    /// problem: resolve a physical length `l_phys` with `l_lattice` nodes,
    /// map the characteristic physical velocity `u_phys` to the lattice
    /// velocity `u_lattice` (keep it ≲ 0.1 for accuracy), with kinematic
    /// viscosity `nu_phys` (m²/s) and density `rho_phys` (kg/m³). Returns
    /// the converter and the τ the simulation must use.
    pub fn from_physical(
        l_phys: f64,
        l_lattice: f64,
        u_phys: f64,
        u_lattice: f64,
        nu_phys: f64,
        rho_phys: f64,
    ) -> (Self, Relaxation) {
        assert!(l_phys > 0.0 && l_lattice > 0.0 && u_phys > 0.0 && u_lattice > 0.0);
        let dx = l_phys / l_lattice;
        let dt = u_lattice / u_phys * dx;
        let conv = Self::new(dx, dt, rho_phys);
        let nu_lattice = nu_phys * dt / (dx * dx);
        (conv, Relaxation::from_viscosity(nu_lattice))
    }

    /// Lattice velocity → m/s.
    pub fn velocity_to_physical(&self, u: f64) -> f64 {
        u * self.dx / self.dt
    }

    /// m/s → lattice velocity.
    pub fn velocity_to_lattice(&self, u: f64) -> f64 {
        u * self.dt / self.dx
    }

    /// Lattice kinematic viscosity → m²/s.
    pub fn viscosity_to_physical(&self, nu: f64) -> f64 {
        nu * self.dx * self.dx / self.dt
    }

    /// Lattice time steps → seconds.
    pub fn time_to_physical(&self, steps: f64) -> f64 {
        steps * self.dt
    }

    /// Lattice length → metres.
    pub fn length_to_physical(&self, l: f64) -> f64 {
        l * self.dx
    }

    /// Lattice pressure (c_s² ρ) → Pa.
    pub fn pressure_to_physical(&self, p: f64) -> f64 {
        p * self.rho0 * self.dx * self.dx / (self.dt * self.dt)
    }

    /// Lattice force density (force per node volume) → N/m³.
    pub fn force_density_to_physical(&self, f: f64) -> f64 {
        f * self.rho0 * self.dx / (self.dt * self.dt)
    }

    /// Reynolds number of a lattice-scale flow: `Re = u L / ν` — the same
    /// in both unit systems.
    pub fn reynolds(u_lattice: f64, l_lattice: f64, relax: Relaxation) -> f64 {
        u_lattice * l_lattice / relax.viscosity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn velocity_round_trip() {
        let c = UnitConverter::new(1e-3, 2e-5, 1000.0);
        let u_phys = 0.37;
        let u_lat = c.velocity_to_lattice(u_phys);
        assert!((c.velocity_to_physical(u_lat) - u_phys).abs() < 1e-15);
    }

    #[test]
    fn from_physical_preserves_reynolds() {
        // Water tunnel: 2 cm channel resolved by 64 nodes, 0.1 m/s inflow
        // mapped to lattice velocity 0.05, water viscosity 1e-6 m²/s.
        let (conv, relax) = UnitConverter::from_physical(0.02, 64.0, 0.1, 0.05, 1e-6, 1000.0);
        let re_phys = 0.1 * 0.02 / 1e-6;
        let re_lat = UnitConverter::reynolds(0.05, 64.0, relax);
        assert!(
            (re_lat / re_phys - 1.0).abs() < 1e-12,
            "Re mismatch: lattice {re_lat} vs physical {re_phys}"
        );
        // Sanity: derived scales reproduce the inputs.
        assert!((conv.length_to_physical(64.0) - 0.02).abs() < 1e-15);
        assert!((conv.velocity_to_physical(0.05) - 0.1).abs() < 1e-15);
        assert!((conv.viscosity_to_physical(relax.viscosity()) - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn from_physical_yields_stable_tau() {
        // A coarse resolution of a fast flow needs a small dt; tau must
        // stay above 1/2 by construction of Relaxation.
        let (_, relax) = UnitConverter::from_physical(0.01, 32.0, 0.5, 0.08, 1e-6, 1000.0);
        assert!(relax.tau > 0.5);
    }

    #[test]
    fn pressure_and_force_scales() {
        let c = UnitConverter::new(1e-3, 1e-4, 1000.0);
        // One lattice pressure unit = rho0 dx²/dt² Pa.
        assert!((c.pressure_to_physical(1.0) - 1000.0 * 1e-6 / 1e-8).abs() < 1e-9);
        assert!(c.force_density_to_physical(1e-5) > 0.0);
        assert!((c.time_to_physical(100.0) - 0.01).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_scale_rejected() {
        UnitConverter::new(0.0, 1.0, 1.0);
    }
}
