//! The D3Q19 lattice: discrete velocity set, quadrature weights, and the
//! index algebra (opposites, component lookups) every other module builds on.
//!
//! Direction `0` is the rest particle; directions `1..=6` point along the
//! coordinate axes and `7..=18` along the face diagonals, matching Figure 2
//! of the paper (a particle may move along 18 directions or stay put).

/// Number of discrete velocities in the D3Q19 model.
pub const Q: usize = 19;

/// Lattice speed of sound squared, `c_s² = 1/3` in lattice units.
pub const CS2: f64 = 1.0 / 3.0;

/// Discrete velocity vectors `e_i` of the D3Q19 model.
///
/// Ordering: rest, the six axis directions (+x, -x, +y, -y, +z, -z), then the
/// twelve diagonals grouped by plane (xy, xz, yz).
pub const E: [[i32; 3]; Q] = [
    [0, 0, 0],
    [1, 0, 0],
    [-1, 0, 0],
    [0, 1, 0],
    [0, -1, 0],
    [0, 0, 1],
    [0, 0, -1],
    [1, 1, 0],
    [-1, -1, 0],
    [1, -1, 0],
    [-1, 1, 0],
    [1, 0, 1],
    [-1, 0, -1],
    [1, 0, -1],
    [-1, 0, 1],
    [0, 1, 1],
    [0, -1, -1],
    [0, 1, -1],
    [0, -1, 1],
];

/// Quadrature weights `w_i`: 1/3 for rest, 1/18 for axis directions, 1/36 for
/// diagonals. They sum to exactly 1.
pub const W: [f64; Q] = [
    1.0 / 3.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];

/// Index of the direction opposite to `i`, i.e. `E[OPPOSITE[i]] == -E[i]`.
/// Used by half-way bounce-back boundaries.
pub const OPPOSITE: [usize; Q] = [
    0, 2, 1, 4, 3, 6, 5, 8, 7, 10, 9, 12, 11, 14, 13, 16, 15, 18, 17,
];

/// Velocity components as `f64`, convenient for arithmetic without casts.
pub const EF: [[f64; 3]; Q] = {
    let mut ef = [[0.0; 3]; Q];
    let mut i = 0;
    while i < Q {
        ef[i] = [E[i][0] as f64, E[i][1] as f64, E[i][2] as f64];
        i += 1;
    }
    ef
};

/// Returns the direction index whose velocity equals `(ex, ey, ez)`, if any.
///
/// Only vectors with components in `{-1, 0, 1}` and at most two non-zero
/// components correspond to D3Q19 directions.
pub fn direction_of(ex: i32, ey: i32, ez: i32) -> Option<usize> {
    E.iter()
        .position(|e| e[0] == ex && e[1] == ey && e[2] == ez)
}

/// True if direction `i` has a positive component along axis `axis`
/// (0 = x, 1 = y, 2 = z). Used to pick the set of populations that cross a
/// given boundary face.
pub fn moves_along(i: usize, axis: usize, sign: i32) -> bool {
    E[i][axis] == sign
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        let s: f64 = W.iter().sum();
        assert!((s - 1.0).abs() < 1e-15, "sum of weights = {s}");
    }

    #[test]
    fn weight_classes() {
        assert_eq!(W[0], 1.0 / 3.0);
        for i in 1..=6 {
            assert_eq!(W[i], 1.0 / 18.0, "axis direction {i}");
        }
        for i in 7..19 {
            assert_eq!(W[i], 1.0 / 36.0, "diagonal direction {i}");
        }
    }

    #[test]
    fn velocities_have_expected_speeds() {
        // Rest particle has speed 0, axis directions speed 1, diagonals sqrt(2).
        assert_eq!(E[0], [0, 0, 0]);
        for i in 1..=6 {
            let n2: i32 = E[i].iter().map(|c| c * c).sum();
            assert_eq!(n2, 1, "axis direction {i}");
        }
        for i in 7..19 {
            let n2: i32 = E[i].iter().map(|c| c * c).sum();
            assert_eq!(n2, 2, "diagonal direction {i}");
        }
    }

    #[test]
    fn all_directions_distinct() {
        for i in 0..Q {
            for j in (i + 1)..Q {
                assert_ne!(E[i], E[j], "directions {i} and {j} coincide");
            }
        }
    }

    #[test]
    fn opposite_is_involution_and_negation() {
        for i in 0..Q {
            let o = OPPOSITE[i];
            assert_eq!(OPPOSITE[o], i, "opposite not an involution at {i}");
            for a in 0..3 {
                assert_eq!(E[o][a], -E[i][a], "E[{o}] != -E[{i}]");
            }
        }
    }

    #[test]
    fn first_moment_vanishes() {
        // Σ w_i e_i = 0 (lattice isotropy, first moment).
        for a in 0..3 {
            let m: f64 = (0..Q).map(|i| W[i] * EF[i][a]).sum();
            assert!(m.abs() < 1e-15, "axis {a}: {m}");
        }
    }

    #[test]
    fn second_moment_is_cs2_identity() {
        // Σ w_i e_ia e_ib = c_s² δ_ab.
        for a in 0..3 {
            for b in 0..3 {
                let m: f64 = (0..Q).map(|i| W[i] * EF[i][a] * EF[i][b]).sum();
                let want = if a == b { CS2 } else { 0.0 };
                assert!((m - want).abs() < 1e-15, "({a},{b}): {m} vs {want}");
            }
        }
    }

    #[test]
    fn third_moment_vanishes() {
        // Σ w_i e_ia e_ib e_ic = 0 for all index triples (odd moment).
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    let m: f64 = (0..Q).map(|i| W[i] * EF[i][a] * EF[i][b] * EF[i][c]).sum();
                    assert!(m.abs() < 1e-15, "({a},{b},{c}): {m}");
                }
            }
        }
    }

    #[test]
    fn fourth_moment_isotropy() {
        // Σ w_i e_ia e_ib e_ic e_id = c_s⁴ (δ_ab δ_cd + δ_ac δ_bd + δ_ad δ_bc).
        let d = |x: usize, y: usize| if x == y { 1.0 } else { 0.0 };
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    for e in 0..3 {
                        let m: f64 = (0..Q)
                            .map(|i| W[i] * EF[i][a] * EF[i][b] * EF[i][c] * EF[i][e])
                            .sum();
                        let want =
                            CS2 * CS2 * (d(a, b) * d(c, e) + d(a, c) * d(b, e) + d(a, e) * d(b, c));
                        assert!((m - want).abs() < 1e-15, "({a},{b},{c},{e}): {m} vs {want}");
                    }
                }
            }
        }
    }

    #[test]
    fn direction_of_finds_every_velocity() {
        for (i, e) in E.iter().enumerate() {
            assert_eq!(direction_of(e[0], e[1], e[2]), Some(i));
        }
        assert_eq!(
            direction_of(1, 1, 1),
            None,
            "corner velocities are not in D3Q19"
        );
        assert_eq!(direction_of(2, 0, 0), None);
    }

    #[test]
    fn moves_along_partitions_faces() {
        // Exactly 5 populations leave through each face of a node.
        for axis in 0..3 {
            for sign in [-1, 1] {
                let n = (0..Q).filter(|&i| moves_along(i, axis, sign)).count();
                assert_eq!(n, 5, "axis {axis} sign {sign}");
            }
        }
    }
}
