//! Falsifiability tests for the model checker itself: each known-buggy
//! pattern must be *caught* (the test expects the reported failure), and
//! each correct pattern must pass exhaustively. These run in the ordinary
//! test suite — no `--cfg loom` needed, since the checker is a library.

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

#[test]
fn atomic_counter_is_race_free() {
    loom::model(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        c.fetch_add(1, Ordering::Relaxed);
        h.join().unwrap();
        assert_eq!(c.load(Ordering::Relaxed), 2);
    });
}

#[test]
#[should_panic(expected = "data race")]
fn detects_concurrent_plain_writes() {
    loom::model(|| {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let cell2 = Arc::clone(&cell);
        let h = thread::spawn(move || {
            // SAFETY: deliberately racy — the checker must reject it.
            cell2.with_mut(|p| unsafe { *p = 1 });
        });
        // SAFETY: deliberately racy — the checker must reject it.
        cell.with_mut(|p| unsafe { *p = 2 });
        h.join().unwrap();
    });
}

#[test]
#[should_panic(expected = "data race")]
fn detects_relaxed_publication() {
    // The classic broken publish: data write + Relaxed flag store gives
    // the reader no happens-before edge to the data.
    loom::model(|| {
        let data = Arc::new(UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let h = thread::spawn(move || {
            // SAFETY: would be sound only with Release/Acquire ordering;
            // the checker must catch the Relaxed version.
            d2.with_mut(|p| unsafe { *p = 42 });
            f2.store(1, Ordering::Relaxed);
        });
        while flag.load(Ordering::Acquire) == 0 {
            loom::hint::spin_loop();
        }
        // SAFETY: racy — no edge from the writer (see above).
        let v = data.with(|p| unsafe { *p });
        assert_eq!(v, 42);
        h.join().unwrap();
    });
}

#[test]
fn release_acquire_publication_is_clean() {
    loom::model(|| {
        let data = Arc::new(UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let h = thread::spawn(move || {
            // SAFETY: published to the reader by the Release store below,
            // which the reader Acquire-loads before reading.
            d2.with_mut(|p| unsafe { *p = 42 });
            f2.store(1, Ordering::Release);
        });
        while flag.load(Ordering::Acquire) == 0 {
            loom::hint::spin_loop();
        }
        // SAFETY: the Acquire load of `flag == 1` ordered this read after
        // the writer's Release store.
        let v = data.with(|p| unsafe { *p });
        assert_eq!(v, 42);
        h.join().unwrap();
    });
}

#[test]
fn mutex_protects_plain_data() {
    loom::model(|| {
        let m = Arc::new(Mutex::new(()));
        let cell = Arc::new(UnsafeCell::new(0u64));
        let (m2, c2) = (Arc::clone(&m), Arc::clone(&cell));
        let h = thread::spawn(move || {
            let _g = m2.lock().unwrap();
            // SAFETY: the mutex serialises both read-modify-writes.
            c2.with_mut(|p| unsafe { *p += 1 });
        });
        {
            let _g = m.lock().unwrap();
            // SAFETY: the mutex serialises both read-modify-writes.
            cell.with_mut(|p| unsafe { *p += 1 });
        }
        h.join().unwrap();
        let _g = m.lock().unwrap();
        // SAFETY: lock held; the final value is published by the unlocks.
        let v = cell.with(|p| unsafe { *p });
        assert_eq!(v, 2, "an interleaving lost an increment");
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn detects_self_deadlock() {
    loom::model(|| {
        let m = Mutex::new(());
        let _g1 = m.lock().unwrap();
        let _g2 = m.lock().unwrap(); // non-reentrant: blocks forever
    });
}

#[test]
fn join_publishes_child_writes() {
    loom::model(|| {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let h = thread::spawn(move || {
            // SAFETY: published to the parent by the join edge.
            c2.with_mut(|p| unsafe { *p = 7 });
        });
        h.join().unwrap();
        // SAFETY: join happened-before this read.
        let v = cell.with(|p| unsafe { *p });
        assert_eq!(v, 7);
    });
}

#[test]
fn compare_exchange_loop_never_loses_updates() {
    // The AtomicF64 pattern: CAS-retry increment from two threads.
    loom::model(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let a2 = Arc::clone(&a);
        let bump = |a: &AtomicUsize| {
            let mut cur = a.load(Ordering::Relaxed);
            loop {
                match a.compare_exchange_weak(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        };
        let h = thread::spawn(move || bump(&a2));
        bump(&a);
        h.join().unwrap();
        assert_eq!(a.load(Ordering::Relaxed), 2);
    });
}
