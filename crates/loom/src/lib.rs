//! Minimal offline stand-in for the [loom](https://docs.rs/loom) model
//! checker, API-compatible with the subset used by this workspace.
//!
//! `loom::model(f)` runs `f` many times, exploring the possible thread
//! interleavings of the `loom::` primitives it uses. Exploration is
//! depth-first over "which thread takes the next step", bounded by a
//! preemption budget (`LOOM_MAX_PREEMPTIONS`, default 2 — the CHESS
//! observation: almost all concurrency bugs manifest within two
//! preemptions).
//!
//! Differences from real loom, by design:
//!
//! - Atomics are explored under **sequential consistency**; weaker
//!   orderings are not given their full set of allowed load results.
//!   Instead, orderings feed a **vector-clock happens-before analysis**:
//!   an `Acquire` load joins the clock released by the matching `Release`
//!   store, relaxed operations do not, and every [`cell::UnsafeCell`]
//!   access is checked against those clocks. A missing
//!   `Release`/`Acquire` pair is therefore still caught — reported as a
//!   data race on the cell the synchronisation was supposed to publish —
//!   rather than by simulating the stale load itself.
//! - Spin loops must call [`hint::spin_loop`] (or `thread::yield_now`),
//!   which parks the thread until some other thread performs a write;
//!   this makes busy-wait loops finite for the explorer.
//!
//! Failures (assertion panics, detected races, deadlocks, livelocks)
//! abort the run and re-panic with the failing thread-choice trace
//! printed to stderr.

mod rt;

pub use rt::model;

pub mod sync {
    pub use std::sync::Arc;

    use super::rt::{Op, VClock};

    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        use super::super::rt::{Op, VClock};
        use std::cell::UnsafeCell;

        /// Whether an ordering has acquire semantics on a load (or the
        /// load half of an RMW).
        fn acquires(o: Ordering) -> bool {
            matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
        }

        /// Whether an ordering has release semantics on a store (or the
        /// store half of an RMW).
        fn releases(o: Ordering) -> bool {
            matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
        }

        struct State<T> {
            value: T,
            /// Clock released by the last release-store, joined into
            /// acquire-loads. RMWs join into it (preserving release
            /// sequences); relaxed plain stores clear it.
            release: VClock,
        }

        /// A model-checked atomic scalar. The value lives behind the
        /// scheduler token, so every access is serialized and explored.
        pub struct Atomic<T> {
            state: UnsafeCell<State<T>>,
        }

        // SAFETY: all accesses to `state` go through `Op::start()`, which
        // blocks until the calling thread holds the execution's scheduler
        // token; exactly one thread holds it at a time, so the raw
        // accesses in `with_state` are mutually exclusive.
        unsafe impl<T: Send> Sync for Atomic<T> {}
        // SAFETY: `State<T>` owns its contents; sending the wrapper moves
        // them wholesale, exactly as for a plain `T: Send`.
        unsafe impl<T: Send> Send for Atomic<T> {}

        impl<T: Copy + PartialEq> Atomic<T> {
            pub fn new(value: T) -> Self {
                Self {
                    state: UnsafeCell::new(State {
                        value,
                        release: VClock::default(),
                    }),
                }
            }

            /// Runs `f` on the state while holding the scheduler token.
            fn with_state<R>(&self, f: impl FnOnce(&Op, &mut State<T>) -> R) -> R {
                let op = Op::start();
                // SAFETY: the token acquired by `Op::start` serializes all
                // threads of the execution; no other reference to `state`
                // exists while it is held.
                let state = unsafe { &mut *self.state.get() };
                f(&op, state)
            }

            pub fn load(&self, order: Ordering) -> T {
                self.with_state(|op, s| {
                    if acquires(order) {
                        op.join_thread_clock(&s.release);
                    }
                    s.value
                })
            }

            pub fn store(&self, value: T, order: Ordering) {
                self.with_state(|op, s| {
                    s.release = if releases(order) {
                        op.thread_clock()
                    } else {
                        VClock::default()
                    };
                    s.value = value;
                    op.note_write();
                })
            }

            fn rmw(&self, order: Ordering, f: impl FnOnce(T) -> T) -> T {
                self.with_state(|op, s| {
                    if acquires(order) {
                        op.join_thread_clock(&s.release);
                    }
                    let prev = s.value;
                    s.value = f(prev);
                    if releases(order) {
                        let clock = op.thread_clock();
                        s.release.join(&clock);
                    }
                    // A relaxed RMW continues the release sequence: the
                    // existing release clock stays as-is.
                    op.note_write();
                    prev
                })
            }

            pub fn swap(&self, value: T, order: Ordering) -> T {
                self.rmw(order, |_| value)
            }

            pub fn compare_exchange(
                &self,
                current: T,
                new: T,
                success: Ordering,
                failure: Ordering,
            ) -> Result<T, T> {
                self.with_state(|op, s| {
                    if s.value == current {
                        if acquires(success) {
                            op.join_thread_clock(&s.release);
                        }
                        s.value = new;
                        if releases(success) {
                            let clock = op.thread_clock();
                            s.release.join(&clock);
                        }
                        op.note_write();
                        Ok(current)
                    } else {
                        if acquires(failure) {
                            op.join_thread_clock(&s.release);
                        }
                        Err(s.value)
                    }
                })
            }

            pub fn compare_exchange_weak(
                &self,
                current: T,
                new: T,
                success: Ordering,
                failure: Ordering,
            ) -> Result<T, T> {
                // Deterministic stand-in: never fails spuriously. The
                // schedule explorer still exercises the retry loop via
                // genuine interference from other threads.
                self.compare_exchange(current, new, success, failure)
            }
        }

        macro_rules! int_atomic {
            ($name:ident, $ty:ty) => {
                pub struct $name(Atomic<$ty>);

                impl $name {
                    pub fn new(v: $ty) -> Self {
                        Self(Atomic::new(v))
                    }

                    pub fn load(&self, order: Ordering) -> $ty {
                        self.0.load(order)
                    }

                    pub fn store(&self, v: $ty, order: Ordering) {
                        self.0.store(v, order)
                    }

                    pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                        self.0.swap(v, order)
                    }

                    pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                        self.0.rmw(order, |p| p.wrapping_add(v))
                    }

                    pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                        self.0.rmw(order, |p| p.wrapping_sub(v))
                    }

                    pub fn compare_exchange(
                        &self,
                        current: $ty,
                        new: $ty,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$ty, $ty> {
                        self.0.compare_exchange(current, new, success, failure)
                    }

                    pub fn compare_exchange_weak(
                        &self,
                        current: $ty,
                        new: $ty,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$ty, $ty> {
                        self.0.compare_exchange_weak(current, new, success, failure)
                    }
                }
            };
        }

        int_atomic!(AtomicUsize, usize);
        int_atomic!(AtomicU64, u64);
        int_atomic!(AtomicU32, u32);

        pub struct AtomicBool(Atomic<bool>);

        impl AtomicBool {
            pub fn new(v: bool) -> Self {
                Self(Atomic::new(v))
            }

            pub fn load(&self, order: Ordering) -> bool {
                self.0.load(order)
            }

            pub fn store(&self, v: bool, order: Ordering) {
                self.0.store(v, order)
            }

            pub fn swap(&self, v: bool, order: Ordering) -> bool {
                self.0.swap(v, order)
            }
        }
    }

    struct MutexState {
        locked: bool,
        /// Clock of the last unlock; joined by the next lock.
        clock: VClock,
        id: Option<usize>,
    }

    /// A model-checked mutex. Contention is explored; lock/unlock form
    /// happens-before edges like `std::sync::Mutex`.
    pub struct Mutex<T> {
        state: std::cell::UnsafeCell<MutexState>,
        data: std::cell::UnsafeCell<T>,
    }

    // SAFETY: `state` is only touched while holding the scheduler token
    // (one thread at a time), and `data` only between a successful lock
    // and the guard's drop, which the model serializes per mutex.
    unsafe impl<T: Send> Sync for Mutex<T> {}
    // SAFETY: moving the mutex moves its owned contents, as for `T: Send`.
    unsafe impl<T: Send> Send for Mutex<T> {}

    impl<T> Mutex<T> {
        pub fn new(data: T) -> Self {
            Self {
                state: std::cell::UnsafeCell::new(MutexState {
                    locked: false,
                    clock: VClock::default(),
                    id: None,
                }),
                data: std::cell::UnsafeCell::new(data),
            }
        }

        #[allow(clippy::result_unit_err)]
        pub fn lock(&self) -> Result<MutexGuard<'_, T>, ()> {
            loop {
                let op = Op::start();
                // SAFETY: serialized by the scheduler token held via `op`.
                let state = unsafe { &mut *self.state.get() };
                let id = *state.id.get_or_insert_with(|| op.new_mutex_id());
                if !state.locked {
                    state.locked = true;
                    op.join_thread_clock(&state.clock);
                    return Ok(MutexGuard { mutex: self });
                }
                op.mutex_block(id);
            }
        }
    }

    pub struct MutexGuard<'a, T> {
        mutex: &'a Mutex<T>,
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;

        fn deref(&self) -> &T {
            // SAFETY: the guard proves the lock is held, so this is the
            // only live access path to `data`.
            unsafe { &*self.mutex.data.get() }
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: as for `deref`; `&mut self` makes it unique.
            unsafe { &mut *self.mutex.data.get() }
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                // Unwinding (e.g. execution abort): skip the model step —
                // a panic inside drop would abort the whole process.
                return;
            }
            let op = Op::start();
            // SAFETY: serialized by the scheduler token held via `op`.
            let state = unsafe { &mut *self.mutex.state.get() };
            state.locked = false;
            state.clock = op.thread_clock();
            if let Some(id) = state.id {
                op.mutex_unblock(id);
            }
        }
    }
}

pub mod cell {
    use super::rt::{Op, VClock};

    struct Access {
        /// `(thread, clock component)` epoch of the last write.
        write: Option<(usize, u32)>,
        /// Epochs of reads since the last write, one slot per thread.
        reads: Vec<(usize, u32)>,
    }

    /// A model-checked `UnsafeCell`: every access is recorded and checked
    /// for happens-before races against prior accesses (FastTrack-style:
    /// last-write epoch plus a read set).
    pub struct UnsafeCell<T> {
        access: std::cell::UnsafeCell<Access>,
        data: std::cell::UnsafeCell<T>,
    }

    // SAFETY: `access` is only touched while holding the scheduler token;
    // `data` is handed out as a raw pointer and the race detector reports
    // any pair of unsynchronized conflicting accesses, enforcing the
    // discipline the caller's `unsafe` code claims.
    unsafe impl<T: Send> Sync for UnsafeCell<T> {}
    // SAFETY: moving the cell moves its owned contents, as for `T: Send`.
    unsafe impl<T: Send> Send for UnsafeCell<T> {}

    impl<T> UnsafeCell<T> {
        pub fn new(data: T) -> Self {
            Self {
                access: std::cell::UnsafeCell::new(Access {
                    write: None,
                    reads: Vec::new(),
                }),
                data: std::cell::UnsafeCell::new(data),
            }
        }

        pub fn into_inner(self) -> T {
            self.data.into_inner()
        }

        fn check(&self, op: &Op, is_write: bool) {
            // SAFETY: serialized by the scheduler token held via `op`.
            let access = unsafe { &mut *self.access.get() };
            let clock: VClock = op.thread_clock();
            if let Some((t, c)) = access.write {
                if t != op.tid && !clock.covers_epoch(t, c) {
                    op.fail(format!(
                        "data race: thread {} {} an UnsafeCell last written by thread {t} \
                         without a happens-before edge in between",
                        op.tid,
                        if is_write { "writes" } else { "reads" },
                    ));
                }
            }
            if is_write {
                for &(t, c) in access.reads.iter() {
                    if t != op.tid && !clock.covers_epoch(t, c) {
                        op.fail(format!(
                            "data race: thread {} writes an UnsafeCell concurrently read \
                             by thread {t}",
                            op.tid,
                        ));
                    }
                }
                access.write = Some((op.tid, clock.component(op.tid)));
                access.reads.clear();
                op.note_write();
            } else {
                let epoch = (op.tid, clock.component(op.tid));
                match access.reads.iter_mut().find(|(t, _)| *t == op.tid) {
                    Some(slot) => slot.1 = epoch.1,
                    None => access.reads.push(epoch),
                }
            }
        }

        /// Immutable (read) access to the cell contents.
        pub fn with<F, R>(&self, f: F) -> R
        where
            F: FnOnce(*const T) -> R,
        {
            let op = Op::start();
            self.check(&op, false);
            f(self.data.get())
        }

        /// Mutable (write) access to the cell contents.
        pub fn with_mut<F, R>(&self, f: F) -> R
        where
            F: FnOnce(*mut T) -> R,
        {
            let op = Op::start();
            self.check(&op, true);
            f(self.data.get())
        }
    }
}

pub mod thread {
    use super::rt;
    use std::sync::{Arc, Mutex};

    /// Handle to a model-checked spawned thread.
    pub struct JoinHandle<T> {
        tid: usize,
        result: Arc<Mutex<Option<T>>>,
    }

    impl<T> JoinHandle<T> {
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            let op = rt::Op::start();
            op.join_on(self.tid);
            match self.result.lock().unwrap_or_else(|e| e.into_inner()).take() {
                Some(v) => Ok(v),
                None => Err(Box::new("loom thread terminated without a value")),
            }
        }
    }

    /// Spawns a logical thread under the model (backed by a real OS
    /// thread, serialized by the scheduler).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let op = rt::Op::start();
        let exec = Arc::clone(&op.exec);
        let tid = rt::register_thread(&exec, op.tid);
        let result = Arc::new(Mutex::new(None));
        let result2 = Arc::clone(&result);
        let exec2 = Arc::clone(&exec);
        let handle = std::thread::Builder::new()
            .name(format!("loom-{tid}"))
            .spawn(move || {
                rt::set_context(Some((Arc::clone(&exec2), tid)));
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    rt::initial_arrival(&exec2, tid);
                    f()
                }));
                match outcome {
                    Ok(v) => *result2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v),
                    Err(p) => {
                        if !rt::is_abort(&p) {
                            rt::report_failure(&exec2, p);
                        }
                    }
                }
                rt::finish_thread(&exec2, tid);
                rt::set_context(None);
            })
            .expect("failed to spawn loom thread");
        rt::store_os_handle(&exec, handle);
        JoinHandle { tid, result }
    }

    /// Models a polite spin: parks until another thread writes.
    pub fn yield_now() {
        let op = rt::Op::start();
        op.spin_park();
    }
}

pub mod hint {
    /// Models one spin-loop iteration: parks the thread until some other
    /// thread performs a write, keeping busy-wait loops finite.
    pub fn spin_loop() {
        let op = super::rt::Op::start();
        op.spin_park();
    }
}
