//! The execution runtime behind [`model`]: a cooperative scheduler that
//! serialises logical threads (exactly one holds the *token* and runs at a
//! time, handing it over at every visible operation), explores schedules by
//! depth-first search over the choice of which thread steps next, and
//! maintains vector clocks for happens-before race detection.
//!
//! Protocol invariant: only the token holder ever enters the decision
//! section of [`Execution::pick_and_grant`], so the recorded decision
//! sequence is deterministic and replayable. A spawned thread first parks
//! in [`initial_arrival`] until it is granted a step; its code up to the
//! first visible operation runs under that grant.
//!
//! Bounds: schedules are explored exhaustively up to a preemption budget
//! (`LOOM_MAX_PREEMPTIONS`, default 2) — CHESS-style preemption bounding,
//! which keeps the state space polynomial while catching almost all real
//! interleaving bugs.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Sentinel panic payload used to unwind logical threads when an execution
/// aborts (because another thread failed); swallowed by thread wrappers.
pub(crate) struct AbortToken;

/// True if a caught panic payload is the runtime's abort sentinel.
pub(crate) fn is_abort(p: &Box<dyn Any + Send>) -> bool {
    p.is::<AbortToken>()
}

/// A vector clock: `clock.0[t]` = how much of thread `t`'s history is
/// known to happen-before the clock's owner.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// This clock's view of thread `t`.
    pub fn component(&self, t: usize) -> u32 {
        self.0.get(t).copied().unwrap_or(0)
    }

    /// True if the epoch `(t, c)` happens-before (or is) this clock.
    pub fn covers_epoch(&self, t: usize, c: u32) -> bool {
        self.component(t) >= c
    }

    /// Pointwise maximum (`self ⊔ other`).
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, &b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(b);
        }
    }

    fn bump(&mut self, t: usize) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] += 1;
    }
}

#[derive(Clone, Debug, PartialEq)]
enum Status {
    /// Can take a step when scheduled.
    Runnable,
    /// In a spin/yield loop: not eligible until some write (atomic store,
    /// cell write, or mutex unlock) happens after `seen_writes`.
    SpinParked {
        seen_writes: u64,
    },
    /// Waiting for a mutex; woken (made Runnable) by its unlock.
    MutexBlocked {
        mutex: usize,
    },
    /// Waiting for a thread to finish.
    JoinBlocked {
        target: usize,
    },
    Finished,
}

struct ThreadState {
    status: Status,
    /// Final clock, recorded at exit, joined into joiners.
    final_clock: Option<VClock>,
    /// `write_count` when the thread last entered the scheduler — i.e. at
    /// the end of its previous exclusive window. A spin park must compare
    /// against this, not the current count: writes that landed while the
    /// thread was waiting to be granted its spin step would otherwise be
    /// missed, turning a productive re-check into a false deadlock.
    entered_writes: u64,
}

/// One scheduling decision: which thread stepped, out of which candidates.
struct Decision {
    /// Thread ids eligible at this point, in exploration order.
    allowed: Vec<usize>,
    chosen_idx: usize,
}

struct Inner {
    threads: Vec<ThreadState>,
    clocks: Vec<VClock>,
    current: usize,
    /// Forced choices replayed from a previous execution (DFS prefix).
    script: Vec<usize>,
    script_pos: usize,
    decisions: Vec<Decision>,
    preemptions: u32,
    max_preemptions: u32,
    steps: u64,
    max_steps: u64,
    /// Bumped on every write-like operation; spin-parked threads become
    /// eligible again when it advances past their snapshot.
    write_count: u64,
    /// Monotonic ids for mutexes within this execution.
    next_mutex_id: usize,
    aborted: bool,
    failure: Option<Box<dyn Any + Send>>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
    /// Logical threads not yet finished.
    live: usize,
}

/// Shared state of one execution.
pub(crate) struct Execution {
    inner: Mutex<Inner>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The execution and logical-thread id of the calling OS thread. Panics
/// outside `loom::model`.
fn context() -> (Arc<Execution>, usize) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("loom primitives may only be used inside loom::model")
    })
}

pub(crate) fn set_context(exec: Option<(Arc<Execution>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = exec);
}

impl Execution {
    fn new(script: Vec<usize>, max_preemptions: u32, max_steps: u64) -> Self {
        Self {
            inner: Mutex::new(Inner {
                threads: vec![ThreadState {
                    status: Status::Runnable,
                    final_clock: None,
                    entered_writes: 0,
                }],
                clocks: vec![{
                    let mut c = VClock::default();
                    c.bump(0);
                    c
                }],
                current: 0,
                script,
                script_pos: 0,
                decisions: Vec::new(),
                preemptions: 0,
                max_preemptions,
                steps: 0,
                max_steps,
                write_count: 0,
                next_mutex_id: 0,
                aborted: false,
                failure: None,
                os_handles: Vec::new(),
                live: 1,
            }),
            cv: Condvar::new(),
        }
    }

    /// Poison-proof lock: an aborting execution unwinds logical threads
    /// while they hold this mutex, and the cleanup paths still need it.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn abort_check(&self, inner: &Inner) {
        if inner.aborted {
            std::panic::panic_any(AbortToken);
        }
    }

    /// Re-evaluates which threads can step right now (waking spin-parked
    /// threads whose snapshot is stale) and returns their ids in order.
    fn runnable(inner: &mut Inner) -> Vec<usize> {
        let writes = inner.write_count;
        for t in inner.threads.iter_mut() {
            if let Status::SpinParked { seen_writes } = t.status {
                if writes > seen_writes {
                    t.status = Status::Runnable;
                }
            }
        }
        inner
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    /// The decision section: picks the next thread to step (replaying the
    /// script, else the first allowed candidate), records the decision,
    /// and grants the token. Caller must be the token holder. Returns
    /// false when no thread is runnable.
    fn pick_and_grant(&self, inner: &mut Inner) -> bool {
        let runnable = Self::runnable(inner);
        if runnable.is_empty() {
            return false;
        }
        // Exploration order: the non-preempting continuation first, then
        // the other candidates. Switching away from a still-runnable
        // current thread is a preemption; choices beyond the budget are
        // not offered to the DFS.
        let current_runnable = runnable.contains(&inner.current);
        let default = if current_runnable {
            inner.current
        } else {
            runnable[0]
        };
        let mut allowed = vec![default];
        if !current_runnable || inner.preemptions < inner.max_preemptions {
            allowed.extend(runnable.iter().copied().filter(|&t| t != default));
        }
        let chosen = if inner.script_pos < inner.script.len() {
            let c = inner.script[inner.script_pos];
            inner.script_pos += 1;
            assert!(allowed.contains(&c), "loom-lite: schedule replay diverged");
            c
        } else {
            allowed[0]
        };
        let chosen_idx = allowed.iter().position(|&t| t == chosen).unwrap_or(0);
        inner.decisions.push(Decision {
            allowed,
            chosen_idx,
        });
        if chosen != inner.current && current_runnable {
            inner.preemptions += 1;
        }
        inner.current = chosen;
        // Each granted step gets a fresh epoch on the stepping thread.
        inner.clocks[chosen].bump(chosen);
        true
    }

    /// Called by the token holder `me` at a yield point: either to take
    /// its next step, or after marking itself blocked. Picks the next
    /// thread to run and waits until `me` is scheduled and runnable again.
    fn advance(self: &Arc<Self>, me: usize) {
        let mut inner = self.lock();
        self.abort_check(&inner);
        inner.threads[me].entered_writes = inner.write_count;
        inner.steps += 1;
        if inner.steps > inner.max_steps {
            drop(inner);
            self.fail_with_message(
                "loom-lite: execution exceeded the step bound (livelock or unbounded loop?)",
            );
        }
        if !self.pick_and_grant(&mut inner) {
            // `me` just blocked and nobody else can run: deadlock.
            drop(inner);
            self.fail_with_message("loom-lite: deadlock — no runnable thread");
        }
        self.cv.notify_all();
        while !(inner.current == me && inner.threads[me].status == Status::Runnable) {
            self.abort_check(&inner);
            inner = self.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
        self.abort_check(&inner);
    }

    /// Records a failure (test panic, detected race, limit overrun), wakes
    /// everyone, and unwinds the calling thread.
    fn fail(self: &Arc<Self>, payload: Box<dyn Any + Send>) -> ! {
        report_failure(self, payload);
        std::panic::panic_any(AbortToken);
    }

    fn fail_with_message(self: &Arc<Self>, msg: &str) -> ! {
        self.fail(Box::new(msg.to_string()))
    }
}

/// Records a failure without unwinding (safe to call while panicking).
pub(crate) fn report_failure(exec: &Arc<Execution>, payload: Box<dyn Any + Send>) {
    let mut inner = exec.lock();
    if inner.failure.is_none() {
        inner.failure = Some(payload);
    }
    inner.aborted = true;
    drop(inner);
    exec.cv.notify_all();
}

/// Handle used by the primitives: one visible operation of the calling
/// logical thread. Constructing it schedules; the holder then runs
/// exclusively until its next visible operation.
pub(crate) struct Op {
    pub exec: Arc<Execution>,
    pub tid: usize,
}

impl Op {
    /// Enters a visible operation: schedules, then returns with the token
    /// held (exclusive access until the next visible operation).
    pub fn start() -> Op {
        let (exec, tid) = context();
        exec.advance(tid);
        Op { exec, tid }
    }

    pub fn thread_clock(&self) -> VClock {
        self.exec.lock().clocks[self.tid].clone()
    }

    pub fn join_thread_clock(&self, other: &VClock) {
        self.exec.lock().clocks[self.tid].join(other);
    }

    pub fn note_write(&self) {
        self.exec.lock().write_count += 1;
    }

    pub fn fail(&self, msg: String) -> ! {
        self.exec.fail(Box::new(msg))
    }

    /// Parks the calling thread until any write happens (models a spin
    /// iteration without letting the DFS schedule busy loops forever).
    pub fn spin_park(&self) {
        {
            let mut inner = self.exec.lock();
            // Park against the snapshot taken when this spin op entered
            // the scheduler (see `ThreadState::entered_writes`): any write
            // since the loop's last probe makes a re-check worthwhile.
            let seen = inner.threads[self.tid].entered_writes;
            inner.threads[self.tid].status = Status::SpinParked { seen_writes: seen };
        }
        self.exec.advance(self.tid);
    }

    /// Blocks on a mutex until its unlock (the caller then retries).
    pub fn mutex_block(&self, mutex: usize) {
        {
            let mut inner = self.exec.lock();
            inner.threads[self.tid].status = Status::MutexBlocked { mutex };
        }
        self.exec.advance(self.tid);
    }

    /// Wakes every thread blocked on `mutex`; they re-attempt the lock.
    pub fn mutex_unblock(&self, mutex: usize) {
        let mut inner = self.exec.lock();
        for t in inner.threads.iter_mut() {
            if t.status == (Status::MutexBlocked { mutex }) {
                t.status = Status::Runnable;
            }
        }
        inner.write_count += 1;
        drop(inner);
        self.exec.cv.notify_all();
    }

    pub fn new_mutex_id(&self) -> usize {
        let mut inner = self.exec.lock();
        inner.next_mutex_id += 1;
        inner.next_mutex_id - 1
    }

    /// Blocks until `target` finishes, then joins its final clock.
    pub fn join_on(&self, target: usize) {
        loop {
            {
                let mut inner = self.exec.lock();
                if inner.threads[target].status == Status::Finished {
                    let fc = inner.threads[target]
                        .final_clock
                        .clone()
                        .unwrap_or_default();
                    inner.clocks[self.tid].join(&fc);
                    return;
                }
                inner.threads[self.tid].status = Status::JoinBlocked { target };
            }
            self.exec.advance(self.tid);
        }
    }
}

/// Registers a new logical thread; returns its id. Called by
/// `loom::thread::spawn` while the parent holds the token; the child
/// inherits the parent's clock (the spawn edge).
pub(crate) fn register_thread(exec: &Arc<Execution>, parent: usize) -> usize {
    let mut inner = exec.lock();
    let tid = inner.threads.len();
    let entered_writes = inner.write_count;
    inner.threads.push(ThreadState {
        status: Status::Runnable,
        final_clock: None,
        entered_writes,
    });
    let mut clock = inner.clocks[parent].clone();
    clock.bump(tid);
    inner.clocks.push(clock);
    inner.live += 1;
    tid
}

pub(crate) fn store_os_handle(exec: &Arc<Execution>, h: std::thread::JoinHandle<()>) {
    exec.lock().os_handles.push(h);
}

/// First thing a spawned logical thread does: park until granted a step.
/// Keeps the invariant that only the token holder enters the scheduler's
/// decision section, so decision order stays deterministic.
pub(crate) fn initial_arrival(exec: &Arc<Execution>, tid: usize) {
    let mut inner = exec.lock();
    while inner.current != tid {
        exec.abort_check(&inner);
        inner = exec.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
    }
    exec.abort_check(&inner);
}

/// Marks the calling logical thread finished and hands the token on.
pub(crate) fn finish_thread(exec: &Arc<Execution>, tid: usize) {
    let mut inner = exec.lock();
    let clock = inner.clocks[tid].clone();
    inner.threads[tid].status = Status::Finished;
    inner.threads[tid].final_clock = Some(clock);
    inner.live -= 1;
    for t in inner.threads.iter_mut() {
        if t.status == (Status::JoinBlocked { target: tid }) {
            t.status = Status::Runnable;
        }
    }
    if inner.aborted {
        drop(inner);
        exec.cv.notify_all();
        return;
    }
    // Hand the token on through the ordinary decision section (so the
    // choice of successor is explored too), or detect completion/deadlock.
    if exec.pick_and_grant(&mut inner) {
        drop(inner);
        exec.cv.notify_all();
    } else if inner.live > 0 {
        drop(inner);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            exec.fail_with_message("loom-lite: deadlock — all remaining threads blocked");
        }));
    } else {
        drop(inner);
        exec.cv.notify_all();
    }
}

fn run_one(
    f: Arc<dyn Fn() + Send + Sync>,
    script: Vec<usize>,
    max_preemptions: u32,
    max_steps: u64,
) -> (Arc<Execution>, Option<Box<dyn Any + Send>>) {
    let exec = Arc::new(Execution::new(script, max_preemptions, max_steps));
    let exec_root = Arc::clone(&exec);
    let root = std::thread::Builder::new()
        .name("loom-0".into())
        .spawn(move || {
            set_context(Some((Arc::clone(&exec_root), 0)));
            let outcome = catch_unwind(AssertUnwindSafe(|| f()));
            if let Err(p) = outcome {
                if !is_abort(&p) {
                    report_failure(&exec_root, p);
                }
            }
            finish_thread(&exec_root, 0);
            set_context(None);
        })
        .expect("failed to spawn loom root thread");
    let _ = root.join();
    // Join OS threads of logical threads the test did not join itself.
    loop {
        let handle = exec.lock().os_handles.pop();
        match handle {
            Some(h) => {
                let _ = h.join();
            }
            None => break,
        }
    }
    let failure = exec.lock().failure.take();
    (exec, failure)
}

/// Explores interleavings of `f` until exhaustion (within the preemption
/// bound) or failure; panics with the first failure found, printing the
/// failing thread-choice trace to stderr.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let max_preemptions: u32 = std::env::var("LOOM_MAX_PREEMPTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let max_executions: u64 = std::env::var("LOOM_MAX_BRANCHES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500_000);
    let max_steps: u64 = 200_000;

    let mut script: Vec<usize> = Vec::new();
    let mut executions: u64 = 0;
    loop {
        executions += 1;
        assert!(
            executions <= max_executions,
            "loom-lite: exceeded {max_executions} executions — reduce the model size"
        );
        let (exec, failure) = run_one(Arc::clone(&f), script.clone(), max_preemptions, max_steps);
        let inner = exec.lock();
        if let Some(p) = failure {
            let trace: Vec<usize> = inner
                .decisions
                .iter()
                .map(|d| d.allowed[d.chosen_idx])
                .collect();
            drop(inner);
            eprintln!(
                "loom-lite: failing schedule found on execution {executions}; \
                 thread choices: {trace:?}"
            );
            if let Some(msg) = p.downcast_ref::<String>() {
                panic!("{msg}");
            }
            std::panic::resume_unwind(p);
        }
        // Depth-first: branch from the deepest decision that still has an
        // unexplored alternative.
        let mut next: Option<Vec<usize>> = None;
        for d in (0..inner.decisions.len()).rev() {
            let dec = &inner.decisions[d];
            if dec.chosen_idx + 1 < dec.allowed.len() {
                let mut s: Vec<usize> = inner.decisions[..d]
                    .iter()
                    .map(|x| x.allowed[x.chosen_idx])
                    .collect();
                s.push(dec.allowed[dec.chosen_idx + 1]);
                next = Some(s);
                break;
            }
        }
        drop(inner);
        match next {
            Some(s) => script = s,
            None => break,
        }
    }
}
