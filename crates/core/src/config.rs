//! Simulation configuration: the "create the input" step of Section III-A,
//! with validation and the paper's benchmark presets.

use ib::delta::DeltaKind;
use ib::sheet::FiberSheet;
use ib::tether::TetherSet;
use lbm::boundary::{AxisBoundary, BoundaryConfig};
use lbm::collision::Relaxation;
use lbm::grid::Dims;

/// How (and whether) the sheet is anchored.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TetherConfig {
    /// Free sheet (the moving sheet of Figures 7/8).
    None,
    /// Pinned in the middle region (the fastened plate of Figure 1).
    CenterRegion { radius: f64, stiffness: f64 },
    /// Pinned along the leading edge (flag-like).
    LeadingEdge { stiffness: f64 },
}

/// Geometry and material of the immersed fiber sheet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SheetConfig {
    /// Number of fibers (and, for the paper's square sheets, nodes per
    /// fiber; the struct allows rectangles).
    pub num_fibers: usize,
    pub nodes_per_fiber: usize,
    /// Physical side lengths in lattice units (across fibers × along fibers).
    pub width: f64,
    pub height: f64,
    /// Centre of the sheet in the fluid box.
    pub center: [f64; 3],
    pub k_bend: f64,
    pub k_stretch: f64,
    pub tether: TetherConfig,
}

impl SheetConfig {
    /// The paper's square sheet: `n × n` fiber nodes over `extent × extent`.
    pub fn square(n: usize, extent: f64, center: [f64; 3]) -> Self {
        Self {
            num_fibers: n,
            nodes_per_fiber: n,
            width: extent,
            height: extent,
            center,
            k_bend: 1e-3,
            k_stretch: 3e-2,
            tether: TetherConfig::None,
        }
    }

    /// Builds the sheet and its tethers.
    pub fn build(&self) -> (FiberSheet, TetherSet) {
        let ds_node = self.height / (self.nodes_per_fiber.max(2) - 1) as f64;
        let ds_fiber = self.width / (self.num_fibers.max(2) - 1) as f64;
        let origin = [
            self.center[0],
            self.center[1] - self.height / 2.0,
            self.center[2] - self.width / 2.0,
        ];
        let sheet = FiberSheet::flat(
            self.num_fibers,
            self.nodes_per_fiber,
            origin,
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            ds_node,
            ds_fiber,
            self.k_bend,
            self.k_stretch,
        );
        let tethers = match self.tether {
            TetherConfig::None => TetherSet::none(),
            TetherConfig::CenterRegion { radius, stiffness } => {
                TetherSet::center_region(&sheet, radius, stiffness)
            }
            TetherConfig::LeadingEdge { stiffness } => TetherSet::leading_edge(&sheet, stiffness),
        };
        (sheet, tethers)
    }
}

/// Full configuration of a coupled LBM-IB simulation.
#[derive(Clone, Copy, Debug)]
pub struct SimulationConfig {
    /// Fluid grid dimensions.
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// BGK relaxation time.
    pub tau: f64,
    /// Uniform driving force (the tunnel's pressure-gradient surrogate).
    pub body_force: [f64; 3],
    /// Boundary configuration.
    pub bc: BoundaryConfig,
    /// Delta kernel for the fluid–structure coupling.
    pub delta: DeltaKind,
    /// The immersed structure.
    pub sheet: SheetConfig,
    /// Cube edge for the cube-centric solver (must divide nx, ny, nz).
    pub cube_k: usize,
    /// Which collide/stream schedule the solvers execute.
    pub plan: KernelPlan,
    /// In-solver run-health watchdog; `None` (the default) disables it.
    pub watchdog: Option<WatchdogConfig>,
    /// Upper bound on any single blocking receive in the distributed
    /// prototype (halo exchange and velocity reduction). `None` (the
    /// default) blocks forever; with a timeout, a silent peer surfaces as
    /// [`crate::solver::SolverError::HaloTimeout`] instead of a hang.
    /// Runtime-only: not part of the checkpointed physics state.
    pub halo_timeout: Option<std::time::Duration>,
}

/// Configuration of the in-solver run-health watchdog. When enabled on a
/// [`SimulationConfig`], every [`crate::solver::Solver::run`] call checks
/// the stability invariants (NaN, mass drift, runaway velocity — the
/// shared limits in [`crate::diagnostics`]) every `check_every` steps and
/// returns [`crate::solver::SolverError::Unstable`] at the first
/// violation instead of silently producing garbage fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Check cadence in time steps (0 disables the watchdog).
    pub check_every: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self { check_every: 64 }
    }
}

/// Policy driving the self-healing [`crate::supervisor::Supervisor`]:
/// how many times to retry a failing backend/mesh rung, how long to back
/// off between attempts, and whether to degrade (shrink the thread mesh,
/// fall back across backends) when the same rung keeps failing. Not part
/// of [`SimulationConfig`]: recovery is a runtime choice, like the
/// watchdog cadence, and never enters the checkpointed physics state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Failures tolerated on one rung (a fixed backend + thread mesh)
    /// before the ladder escalates — or, with [`RecoveryPolicy::degrade`]
    /// off or the ladder exhausted, before the supervisor gives up. The
    /// total attempt budget is therefore bounded by
    /// `retry_limit × number_of_rungs`.
    pub retry_limit: u32,
    /// Base delay before the first retry; doubles on every consecutive
    /// failure (jitter-free, so healed runs stay reproducible). Zero
    /// disables backoff entirely.
    pub backoff: std::time::Duration,
    /// Cap on the exponential backoff delay.
    pub max_backoff: std::time::Duration,
    /// Walk the degradation ladder (quarantine-shrink the cube mesh, then
    /// cube → omp → seq across backends) when a rung's retry budget is
    /// exhausted. Off, the supervisor retries in place and then gives up.
    pub degrade: bool,
    /// Disk anchor for rollback. When set, the supervisor saves a
    /// crash-consistent checkpoint (CRC + `.prev` rotation, see
    /// [`crate::checkpoint::save`]) after every committed chunk and rolls
    /// back through [`crate::checkpoint::resume`]; when `None`, rollback
    /// uses the in-memory last-good snapshot only.
    pub checkpoint: Option<std::path::PathBuf>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            retry_limit: 3,
            backoff: std::time::Duration::from_millis(100),
            max_backoff: std::time::Duration::from_secs(5),
            degrade: true,
            checkpoint: None,
        }
    }
}

/// Execution schedule for kernels 5 and 6. `Split` runs collision and
/// streaming as two full-grid passes (the paper's Algorithm 1); `Fused`
/// collides in registers and pushes straight into `f_new` in one sweep
/// (see `lbm::fused`). Both produce bit-identical physics; `Fused` halves
/// the distribution-array traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelPlan {
    /// Separate collision and streaming passes (kernels 5 then 6).
    #[default]
    Split,
    /// Single fused collide–stream sweep.
    Fused,
}

/// A configuration problem found by [`SimulationConfig::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// `tau` must exceed 0.5 for a positive viscosity.
    InvalidTau { tau: f64 },
    /// One of the grid extents is zero.
    ZeroExtent { nx: usize, ny: usize, nz: usize },
    /// The cube edge is zero or does not divide every grid extent.
    DimNotDivisibleByCube {
        cube_k: usize,
        nx: usize,
        ny: usize,
        nz: usize,
    },
    /// The sheet has fewer than 2×2 fiber nodes.
    EmptySheet {
        num_fibers: usize,
        nodes_per_fiber: usize,
    },
    /// The sheet (plus delta support) reaches into a wall.
    SheetNearWall {
        axis: usize,
        lo: f64,
        hi: f64,
        margin: f64,
    },
    /// The sheet centre is nowhere near the fluid box.
    SheetOutsideBox { axis: usize },
    /// The driving force implies an unstable channel velocity.
    UnstableBodyForce { g: f64, umax: f64 },
    /// Several independent problems; `validate` reports all of them.
    Multiple(Vec<ConfigError>),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InvalidTau { tau } => {
                write!(f, "invalid configuration: tau = {tau} must exceed 0.5")
            }
            ConfigError::ZeroExtent { nx, ny, nz } => write!(
                f,
                "invalid configuration: grid extents {nx}x{ny}x{nz} must be positive"
            ),
            ConfigError::DimNotDivisibleByCube {
                cube_k,
                nx,
                ny,
                nz,
            } => write!(
                f,
                "invalid configuration: cube edge {cube_k} must divide grid {nx}x{ny}x{nz}"
            ),
            ConfigError::EmptySheet {
                num_fibers,
                nodes_per_fiber,
            } => write!(
                f,
                "invalid configuration: sheet is {num_fibers}x{nodes_per_fiber}, needs at least 2x2 fiber nodes"
            ),
            ConfigError::SheetNearWall {
                axis,
                lo,
                hi,
                margin,
            } => write!(
                f,
                "invalid configuration: sheet spans [{lo}, {hi}] on axis {axis}, too close to the walls (margin {margin})"
            ),
            ConfigError::SheetOutsideBox { axis } => write!(
                f,
                "invalid configuration: sheet wildly outside the box on axis {axis}"
            ),
            ConfigError::UnstableBodyForce { g, umax } => write!(
                f,
                "invalid configuration: body force {g} implies steady channel velocity {umax:.3} — unstable (reduce g or grid)"
            ),
            ConfigError::Multiple(errors) => {
                write!(f, "invalid configuration: {} problems: ", errors.len())?;
                for (k, e) in errors.iter().enumerate() {
                    if k > 0 {
                        write!(f, "; ")?;
                    }
                    // Strip the common prefix for readability.
                    let s = e.to_string();
                    write!(
                        f,
                        "{}",
                        s.strip_prefix("invalid configuration: ").unwrap_or(&s)
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl SimulationConfig {
    /// Grid dimensions as a [`Dims`].
    pub fn dims(&self) -> Dims {
        Dims::new(self.nx, self.ny, self.nz)
    }

    /// Relaxation parameters.
    pub fn relaxation(&self) -> Relaxation {
        Relaxation::new(self.tau)
    }

    /// Checks physical and geometric sanity. Returns the single problem
    /// found, or [`ConfigError::Multiple`] listing every problem.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let mut problems = Vec::new();
        if self.tau <= 0.5 {
            problems.push(ConfigError::InvalidTau { tau: self.tau });
        }
        if self.nx == 0 || self.ny == 0 || self.nz == 0 {
            problems.push(ConfigError::ZeroExtent {
                nx: self.nx,
                ny: self.ny,
                nz: self.nz,
            });
        }
        if self.cube_k == 0
            || self.nx % self.cube_k != 0
            || self.ny % self.cube_k != 0
            || self.nz % self.cube_k != 0
        {
            problems.push(ConfigError::DimNotDivisibleByCube {
                cube_k: self.cube_k,
                nx: self.nx,
                ny: self.ny,
                nz: self.nz,
            });
        }
        if self.sheet.num_fibers < 2 || self.sheet.nodes_per_fiber < 2 {
            problems.push(ConfigError::EmptySheet {
                num_fibers: self.sheet.num_fibers,
                nodes_per_fiber: self.sheet.nodes_per_fiber,
            });
        }
        // The sheet (plus the delta support) must fit inside the box; on
        // wall axes force would otherwise leak through the clipping.
        let margin = self.delta.half_support();
        let half = [0.0, self.sheet.height / 2.0, self.sheet.width / 2.0];
        let ext = [self.nx as f64, self.ny as f64, self.nz as f64];
        let walls = [
            !matches!(self.bc.x, AxisBoundary::Periodic),
            !matches!(self.bc.y, AxisBoundary::Periodic),
            !matches!(self.bc.z, AxisBoundary::Periodic),
        ];
        for a in 0..3 {
            let lo = self.sheet.center[a] - half[a];
            let hi = self.sheet.center[a] + half[a];
            if walls[a] && (lo < margin || hi > ext[a] - 1.0 - margin) {
                problems.push(ConfigError::SheetNearWall {
                    axis: a,
                    lo,
                    hi,
                    margin,
                });
            }
            if lo < -ext[a] || hi > 2.0 * ext[a] {
                problems.push(ConfigError::SheetOutsideBox { axis: a });
            }
        }
        // Crude velocity-scale check: a steady channel driven by g reaches
        // u_max = g ny² / (8 ν); keep it below ~0.1 c_s for stability.
        // Meaningless when tau is already invalid (ν ≤ 0).
        if self.tau > 0.5 {
            let nu = (self.tau - 0.5) / 3.0;
            let g = self.body_force.iter().map(|c| c.abs()).fold(0.0, f64::max);
            let umax = g * (self.ny as f64) * (self.ny as f64) / (8.0 * nu);
            if umax > 0.17 {
                problems.push(ConfigError::UnstableBodyForce { g, umax });
            }
        }
        match problems.len() {
            0 => Ok(()),
            1 => Err(problems.pop().expect("len checked")),
            _ => Err(ConfigError::Multiple(problems)),
        }
    }

    /// Starts a [`ConfigBuilder`] seeded with the
    /// [`SimulationConfig::quick_test`] defaults; `build()` validates.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder {
            config: Self::quick_test(),
        }
    }

    /// A small, fast configuration for unit and integration tests.
    pub fn quick_test() -> Self {
        Self {
            nx: 24,
            ny: 16,
            nz: 16,
            tau: 0.8,
            body_force: [1e-6, 0.0, 0.0],
            bc: BoundaryConfig::tunnel(),
            delta: DeltaKind::Peskin4,
            sheet: SheetConfig {
                k_bend: 1e-4,
                k_stretch: 1e-2,
                ..SheetConfig::square(8, 4.0, [8.0, 8.0, 8.0])
            },
            cube_k: 4,
            plan: KernelPlan::Split,
            watchdog: None,
            halo_timeout: None,
        }
    }

    /// The Table I / Figure 5 input: 124×64×64 fluid nodes, a 20×20 sheet
    /// of 52×52 fiber nodes. (124 = 4·31, so the default cube edge is 4.)
    pub fn table1() -> Self {
        Self {
            nx: 124,
            ny: 64,
            nz: 64,
            tau: 0.8,
            body_force: [5e-7, 0.0, 0.0],
            bc: BoundaryConfig::tunnel(),
            delta: DeltaKind::Peskin4,
            sheet: SheetConfig {
                tether: TetherConfig::CenterRegion {
                    radius: 5.0,
                    stiffness: 5e-2,
                },
                ..SheetConfig::square(52, 20.0, [30.0, 32.0, 32.0])
            },
            cube_k: 4,
            plan: KernelPlan::Split,
            watchdog: None,
            halo_timeout: None,
        }
    }

    /// The Figure 8 weak-scaling input for a given core count: the
    /// single-core grid is 128³ and doubles with the cores
    /// (x first, then y, then z, as in the paper), sheet fixed at 104×104
    /// fiber nodes.
    pub fn fig8(cores: usize) -> Self {
        assert!(
            cores.is_power_of_two() && cores >= 1,
            "cores must be a power of two"
        );
        let mut dims = [128usize, 128, 128];
        let mut c = cores;
        let mut axis = 0;
        while c > 1 {
            dims[axis] *= 2;
            axis = (axis + 1) % 3;
            c /= 2;
        }
        Self {
            nx: dims[0],
            ny: dims[1],
            nz: dims[2],
            tau: 0.8,
            body_force: [2e-8, 0.0, 0.0],
            bc: BoundaryConfig::tunnel(),
            delta: DeltaKind::Peskin4,
            sheet: SheetConfig::square(
                104,
                40.0,
                [
                    dims[0] as f64 / 4.0,
                    dims[1] as f64 / 2.0,
                    dims[2] as f64 / 2.0,
                ],
            ),
            cube_k: 4,
            plan: KernelPlan::Split,
            watchdog: None,
            halo_timeout: None,
        }
    }

    /// Like [`SimulationConfig::fig8`] but scaled down by `shrink` along
    /// every dimension, for machines where a 128³ × cores run is too slow.
    pub fn fig8_scaled(cores: usize, shrink: usize) -> Self {
        let mut c = Self::fig8(cores);
        c.nx = (c.nx / shrink).max(c.cube_k * 2);
        c.ny = (c.ny / shrink).max(c.cube_k * 2);
        c.nz = (c.nz / shrink).max(c.cube_k * 2);
        let n = (104 / shrink).max(8);
        c.sheet = SheetConfig::square(
            n,
            (40.0 / shrink as f64).max(4.0),
            [c.nx as f64 / 4.0, c.ny as f64 / 2.0, c.nz as f64 / 2.0],
        );
        c
    }
}

/// Fluent construction of a [`SimulationConfig`] that defers every check
/// to [`ConfigBuilder::build`], so callers get a `Result` instead of the
/// panics the raw struct mutation style can run into later.
///
/// ```
/// use lbm_ib::config::{KernelPlan, SimulationConfig};
/// let config = SimulationConfig::builder()
///     .dims(32, 16, 16)
///     .tau(0.9)
///     .plan(KernelPlan::Fused)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(config.nx, 32);
/// ```
#[derive(Clone, Debug)]
pub struct ConfigBuilder {
    config: SimulationConfig,
}

impl ConfigBuilder {
    /// Sets all three grid extents.
    pub fn dims(mut self, nx: usize, ny: usize, nz: usize) -> Self {
        self.config.nx = nx;
        self.config.ny = ny;
        self.config.nz = nz;
        self
    }

    /// Sets the BGK relaxation time.
    pub fn tau(mut self, tau: f64) -> Self {
        self.config.tau = tau;
        self
    }

    /// Sets the uniform driving force.
    pub fn body_force(mut self, g: [f64; 3]) -> Self {
        self.config.body_force = g;
        self
    }

    /// Sets the boundary configuration.
    pub fn bc(mut self, bc: BoundaryConfig) -> Self {
        self.config.bc = bc;
        self
    }

    /// Sets the delta kernel for the fluid–structure coupling.
    pub fn delta(mut self, delta: DeltaKind) -> Self {
        self.config.delta = delta;
        self
    }

    /// Sets the immersed sheet.
    pub fn sheet(mut self, sheet: SheetConfig) -> Self {
        self.config.sheet = sheet;
        self
    }

    /// Sets the cube edge for the cube-centric solver.
    pub fn cube_k(mut self, k: usize) -> Self {
        self.config.cube_k = k;
        self
    }

    /// Sets the collide/stream schedule.
    pub fn plan(mut self, plan: KernelPlan) -> Self {
        self.config.plan = plan;
        self
    }

    /// Enables (or disables, with `None`) the in-solver health watchdog.
    pub fn watchdog(mut self, watchdog: Option<WatchdogConfig>) -> Self {
        self.config.watchdog = watchdog;
        self
    }

    /// Sets the distributed halo-exchange receive timeout (`None` waits
    /// forever, the historical behaviour).
    pub fn halo_timeout(mut self, halo_timeout: Option<std::time::Duration>) -> Self {
        self.config.halo_timeout = halo_timeout;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<SimulationConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        SimulationConfig::quick_test().validate().unwrap();
        SimulationConfig::table1().validate().unwrap();
        for cores in [1, 2, 4, 8, 16, 32, 64] {
            SimulationConfig::fig8(cores).validate().unwrap();
            SimulationConfig::fig8_scaled(cores, 8).validate().unwrap();
        }
    }

    #[test]
    fn table1_matches_paper_input() {
        let c = SimulationConfig::table1();
        assert_eq!((c.nx, c.ny, c.nz), (124, 64, 64));
        assert_eq!(c.sheet.num_fibers, 52);
        assert_eq!(c.sheet.nodes_per_fiber, 52);
        assert!((c.sheet.width - 20.0).abs() < 1e-12);
        let (sheet, tethers) = c.sheet.build();
        assert_eq!(sheet.n(), 52 * 52);
        assert!(
            !tethers.is_empty(),
            "Table I plate is fastened in the middle"
        );
    }

    #[test]
    fn fig8_doubles_grid_with_cores() {
        let c1 = SimulationConfig::fig8(1);
        assert_eq!((c1.nx, c1.ny, c1.nz), (128, 128, 128));
        let c2 = SimulationConfig::fig8(2);
        assert_eq!((c2.nx, c2.ny, c2.nz), (256, 128, 128));
        let c4 = SimulationConfig::fig8(4);
        assert_eq!((c4.nx, c4.ny, c4.nz), (256, 256, 128));
        let c8 = SimulationConfig::fig8(8);
        assert_eq!((c8.nx, c8.ny, c8.nz), (256, 256, 256));
        let c64 = SimulationConfig::fig8(64);
        assert_eq!(
            c64.nx * c64.ny * c64.nz,
            64 * 128 * 128 * 128,
            "total nodes scale with cores"
        );
        // Fixed sheet size across the sweep.
        assert_eq!(c64.sheet.num_fibers, 104);
    }

    #[test]
    fn bad_tau_rejected() {
        let mut c = SimulationConfig::quick_test();
        c.tau = 0.5;
        let err = c.validate().unwrap_err();
        assert_eq!(err, ConfigError::InvalidTau { tau: 0.5 });
        assert!(err.to_string().contains("tau"), "{err}");
    }

    #[test]
    fn indivisible_cube_rejected() {
        let mut c = SimulationConfig::quick_test();
        c.cube_k = 5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn sheet_near_wall_rejected() {
        let mut c = SimulationConfig::quick_test();
        c.sheet.center[1] = 1.0; // sheet half-height 2 + delta support 2 > 1
        assert!(c.validate().is_err());
    }

    #[test]
    fn excessive_body_force_rejected() {
        let mut c = SimulationConfig::quick_test();
        c.body_force = [1e-2, 0.0, 0.0];
        let err = c.validate().unwrap_err();
        assert!(
            matches!(err, ConfigError::UnstableBodyForce { .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("unstable"), "{err}");
    }

    #[test]
    fn indivisible_cube_is_typed() {
        let mut c = SimulationConfig::quick_test();
        c.cube_k = 5;
        assert!(matches!(
            c.validate().unwrap_err(),
            ConfigError::DimNotDivisibleByCube { cube_k: 5, .. }
        ));
    }

    #[test]
    fn multiple_problems_reported_together() {
        let mut c = SimulationConfig::quick_test();
        c.tau = 0.4;
        c.cube_k = 7;
        let err = c.validate().unwrap_err();
        let ConfigError::Multiple(list) = &err else {
            panic!("expected Multiple, got {err:?}");
        };
        assert_eq!(list.len(), 2);
        let msg = err.to_string();
        assert!(msg.contains("tau") && msg.contains("cube edge"), "{msg}");
    }

    #[test]
    fn builder_validates_at_build() {
        let config = SimulationConfig::builder()
            .dims(32, 16, 16)
            .tau(0.9)
            .plan(KernelPlan::Fused)
            .build()
            .unwrap();
        assert_eq!((config.nx, config.ny, config.nz), (32, 16, 16));
        assert_eq!(config.plan, KernelPlan::Fused);

        let err = SimulationConfig::builder().tau(0.3).build().unwrap_err();
        assert_eq!(err, ConfigError::InvalidTau { tau: 0.3 });
    }

    #[test]
    fn plan_defaults_to_split() {
        assert_eq!(KernelPlan::default(), KernelPlan::Split);
        assert_eq!(SimulationConfig::quick_test().plan, KernelPlan::Split);
    }

    #[test]
    fn watchdog_defaults_off_and_builds_on() {
        assert_eq!(SimulationConfig::quick_test().watchdog, None);
        assert_eq!(WatchdogConfig::default().check_every, 64);
        let c = SimulationConfig::builder()
            .watchdog(Some(WatchdogConfig { check_every: 10 }))
            .build()
            .unwrap();
        assert_eq!(c.watchdog, Some(WatchdogConfig { check_every: 10 }));
    }

    #[test]
    fn sheet_config_build_geometry() {
        let sc = SheetConfig::square(5, 8.0, [10.0, 12.0, 14.0]);
        let (sheet, _) = sc.build();
        let (lo, hi) = sheet.bounding_box();
        assert!((lo[1] - 8.0).abs() < 1e-12 && (hi[1] - 16.0).abs() < 1e-12);
        assert!((lo[2] - 10.0).abs() < 1e-12 && (hi[2] - 18.0).abs() < 1e-12);
        assert!((lo[0] - 10.0).abs() < 1e-12 && (hi[0] - 10.0).abs() < 1e-12);
        assert!((sheet.ds_node - 2.0).abs() < 1e-12);
    }

    #[test]
    fn config_is_copy_and_debug() {
        // The config stays a cheap Copy value that workers can capture by
        // value without reference counting.
        fn assert_copy<T: Copy + Send + Sync + 'static>() {}
        assert_copy::<SimulationConfig>();
        let c = SimulationConfig::table1();
        let c2 = c;
        assert_eq!(format!("{c:?}"), format!("{c2:?}"));
    }
}
