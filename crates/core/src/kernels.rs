//! The nine computational kernels of Section III-B as sequential reference
//! implementations over [`SimState`]. Function names follow the paper.
//!
//! Kernel order per time step (Algorithm 1):
//! 1–3 fiber forces, 4 spread, 5 collision, 6 stream, 7 velocity update,
//! 8 move fibers, 9 buffer copy. Collision relaxes toward the equilibrium
//! built on the *shift* velocity stored by kernel 7 of the previous step,
//! so the spread force is read only by kernel 7 — the dependency structure
//! Algorithm 4's three barriers rely on.

use ib::forces;
use ib::interp;
use ib::spread;
use lbm::boundary::{add_uniform_body_force, stream_push_bounded};
use lbm::collision::bgk_collide_node;
use lbm::lattice::Q;
use lbm::macroscopic::update_velocity_shifted;

use crate::state::SimState;

/// Kernel 1: bending force of every fiber node (8-neighbour stencil).
pub fn compute_bending_force_in_fibers(state: &mut SimState) {
    forces::compute_bending_force(&mut state.sheet);
}

/// Kernel 2: stretching force of every fiber node (4 neighbours).
pub fn compute_stretching_force_in_fibers(state: &mut SimState) {
    forces::compute_stretching_force(&mut state.sheet);
}

/// Kernel 3: elastic force = bending + stretching (+ tether anchors).
pub fn compute_elastic_force_in_fibers(state: &mut SimState) {
    forces::compute_elastic_force(&mut state.sheet);
    let tethers = state.tethers.clone();
    tethers.apply(&mut state.sheet);
}

/// Kernel 4: reset the Eulerian force to the driving body force, then
/// spread every fiber node's elastic force over its 4×4×4 influential
/// domain.
pub fn spread_force_from_fibers_to_fluid(state: &mut SimState) {
    state.fluid.clear_force();
    if state.config.body_force != [0.0; 3] {
        add_uniform_body_force(&mut state.fluid, state.config.body_force);
    }
    let dims = state.config.dims();
    spread::spread_forces(
        &state.sheet,
        state.config.delta,
        dims,
        &state.config.bc,
        &mut state.fluid,
    );
}

/// Kernel 5: BGK collision at every fluid node in the 19 D3Q19 directions,
/// relaxing toward the equilibrium at the stored shift velocity.
pub fn compute_fluid_collision(state: &mut SimState) {
    let tau = state.config.tau;
    let g = &mut state.fluid;
    for node in 0..g.dims.n() {
        let rho = g.rho[node];
        let ueq = [g.ueqx[node], g.ueqy[node], g.ueqz[node]];
        bgk_collide_node(&mut g.f[node * Q..node * Q + Q], rho, ueq, [0.0; 3], tau);
    }
}

/// Kernel 6: stream the post-collision populations to the 18 neighbours
/// (push formulation, with wall bounce-back fused in).
pub fn stream_fluid_velocity_distribution(state: &mut SimState) {
    stream_push_bounded(&mut state.fluid, &state.config.bc);
}

/// Fused kernels 5+6: collide every node in registers and push the
/// post-collision populations straight into `f_new` (periodic wrap and
/// bounce-back in the same inner loop). Bit-identical to running
/// [`compute_fluid_collision`] then [`stream_fluid_velocity_distribution`],
/// except `f` keeps its pre-collision values — which kernels 7 and 9 never
/// read before overwriting.
pub fn fused_collide_stream(state: &mut SimState) {
    lbm::fused::fused_collide_stream_grid(&mut state.fluid, &state.config.bc, state.config.tau);
}

/// Kernel 7: new density and velocity from the streamed populations and the
/// spread elastic force (physical velocity with F/2, shift velocity
/// with τF).
pub fn update_fluid_velocity(state: &mut SimState) {
    update_velocity_shifted(&mut state.fluid, state.config.tau);
}

/// Kernel 8: interpolate fluid velocity at every fiber node and move it.
pub fn move_fibers(state: &mut SimState) {
    let dims = state.config.dims();
    // Split-borrow the state so the sheet can move while reading the fluid.
    let SimState {
        fluid,
        sheet,
        config,
        ..
    } = state;
    interp::move_fibers(sheet, config.delta, dims, &config.bc, fluid, 1.0);
}

/// Kernel 9: copy the new-distribution buffer into the present buffer.
pub fn copy_fluid_velocity_distribution(state: &mut SimState) {
    state.fluid.copy_distributions();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimulationConfig;

    fn state() -> SimState {
        SimState::new(SimulationConfig::quick_test())
    }

    #[test]
    fn kernel4_resets_then_spreads() {
        let mut s = state();
        // Pollute the force field; kernel 4 must reset it to the body force
        // plus the spread contribution (zero here: sheet at rest).
        s.fluid.fx.fill(9.0);
        spread_force_from_fibers_to_fluid(&mut s);
        let g = s.config.body_force[0];
        assert!(s.fluid.fx.iter().all(|&v| (v - g).abs() < 1e-15));
    }

    #[test]
    fn kernel4_spreads_elastic_force_on_top_of_body_force() {
        let mut s = state();
        s.sheet.elastic[10] = [1.0, 0.0, 0.0];
        spread_force_from_fibers_to_fluid(&mut s);
        let g = s.config.body_force[0];
        let total: f64 = s.fluid.fx.iter().sum();
        let expected = g * s.fluid.n() as f64 + s.sheet.area_element();
        assert!((total - expected).abs() < 1e-9, "{total} vs {expected}");
    }

    #[test]
    fn kernel5_preserves_mass() {
        let mut s = state();
        let before = s.fluid.total_mass();
        compute_fluid_collision(&mut s);
        let after = s.fluid.total_mass();
        assert!((before - after).abs() < 1e-9);
    }

    #[test]
    fn kernel8_keeps_sheet_still_in_quiescent_fluid() {
        let mut s = state();
        let before = s.sheet.pos.clone();
        move_fibers(&mut s);
        assert_eq!(s.sheet.pos, before);
    }

    #[test]
    fn kernel9_copies_buffers() {
        let mut s = state();
        for (i, v) in s.fluid.f_new.iter_mut().enumerate() {
            *v = i as f64;
        }
        copy_fluid_velocity_distribution(&mut s);
        assert_eq!(s.fluid.f, s.fluid.f_new);
    }

    #[test]
    fn tethers_enter_via_kernel3() {
        use crate::config::TetherConfig;
        let mut c = SimulationConfig::quick_test();
        c.sheet.tether = TetherConfig::CenterRegion {
            radius: 1.0,
            stiffness: 2.0,
        };
        let mut s = SimState::new(c);
        // Displace a tethered node and recompute the elastic force.
        let node = s.tethers.tethers[0].node;
        s.sheet.pos[node][0] += 0.1;
        compute_bending_force_in_fibers(&mut s);
        compute_stretching_force_in_fibers(&mut s);
        compute_elastic_force_in_fibers(&mut s);
        assert!(s.sheet.elastic[node][0] < 0.0, "tether must pull back");
    }
}
