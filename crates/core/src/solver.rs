//! The unified [`Solver`] interface over the four drivers.
//!
//! Every solver — sequential (Algorithm 1), OpenMP-style slab-parallel,
//! cube-centric (Algorithm 4) and the distributed prototype — advances the
//! same physics; this module gives them one API so the binary, the
//! examples and the verification harness can drive any of them through a
//! `Box<dyn Solver>` instead of duplicated match arms.

use std::time::{Duration, Instant};

use crate::config::{ConfigError, WatchdogConfig};
use crate::cube::CubeSolver;
use crate::distributed::DistributedSolver;
use crate::openmp::OpenMpSolver;
use crate::profiling::KernelProfile;
use crate::sequential::SequentialSolver;
use crate::state::SimState;
use crate::telemetry::{RunTelemetry, Watchdog};

/// What a completed [`Solver::run`] did: how many steps, how long the
/// whole run took on the wall clock (including barriers and thread spawn
/// for the parallel solvers), and — when enabled via
/// [`Solver::set_telemetry`] — the per-thread kernel/barrier breakdown.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Time steps executed by this call.
    pub steps: u64,
    /// Wall-clock time of the whole call.
    pub wall: Duration,
    /// Per-thread telemetry, present when collection was enabled.
    pub telemetry: Option<RunTelemetry>,
    /// Recovery events, present when the run went through a
    /// [`crate::supervisor::Supervisor`] (empty-event reports mean the
    /// supervisor was on but never had to intervene).
    pub recovery: Option<crate::supervisor::RecoveryReport>,
}

impl RunReport {
    /// Steps per wall-clock second (0 for an empty or instantaneous run).
    pub fn steps_per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.steps as f64 / secs
        } else {
            0.0
        }
    }

    /// Merges a subsequent report into this one (telemetry and recovery
    /// events included).
    pub fn merge(&mut self, other: RunReport) {
        self.steps += other.steps;
        self.wall += other.wall;
        match (&mut self.telemetry, other.telemetry) {
            (Some(mine), Some(theirs)) => mine.merge(&theirs),
            (mine @ None, theirs @ Some(_)) => *mine = theirs,
            _ => {}
        }
        match (&mut self.recovery, other.recovery) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (mine @ None, theirs @ Some(_)) => *mine = theirs,
            _ => {}
        }
    }
}

/// Why a solver could not be built or run.
#[derive(Clone, Debug, PartialEq)]
pub enum SolverError {
    /// The simulation configuration failed validation.
    Config(ConfigError),
    /// A parallel solver was asked for zero threads/ranks.
    ZeroThreads,
    /// The distributed solver needs the x axis periodic to slice it.
    NonPeriodicX,
    /// More ranks than x planes to distribute.
    TooManyRanks { ranks: usize, nx: usize },
    /// The solver name is not one of `seq|omp|cube|dist`.
    UnknownSolver(String),
    /// The in-run watchdog found the simulation blowing up (NaN fields,
    /// runaway velocity or mass drift) at `step`.
    Unstable { step: u64, reason: String },
    /// A cube-solver worker thread panicked. The barrier was poisoned so
    /// every sibling unwound instead of hanging; the step counter was not
    /// advanced.
    WorkerPanicked {
        /// Worker thread index.
        thread: usize,
        /// The phase the worker died in (one of
        /// [`crate::cube::WORKER_PHASES`]).
        phase: &'static str,
    },
    /// A distributed rank waited longer than the configured
    /// [`crate::config::SimulationConfig::halo_timeout`] for a message.
    HaloTimeout { rank: usize, peer: usize },
    /// A distributed rank's channel to a peer disconnected (peer gone).
    RankDisconnected { rank: usize, peer: usize },
    /// A periodic checkpoint save failed (the run stops rather than keep
    /// computing steps that could never be recovered).
    Checkpoint { detail: String },
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::Config(e) => write!(f, "{e}"),
            SolverError::ZeroThreads => write!(f, "need at least one thread"),
            SolverError::NonPeriodicX => write!(
                f,
                "the distributed decomposition slices the periodic x axis"
            ),
            SolverError::TooManyRanks { ranks, nx } => {
                write!(f, "{ranks} ranks but only {nx} x planes to distribute")
            }
            SolverError::UnknownSolver(name) => {
                write!(f, "unknown solver '{name}' (expected seq|omp|cube|dist)")
            }
            SolverError::Unstable { step, reason } => {
                write!(f, "simulation unstable at step {step}: {reason}")
            }
            SolverError::WorkerPanicked { thread, phase } => {
                write!(f, "worker thread {thread} panicked in phase {phase}")
            }
            SolverError::HaloTimeout { rank, peer } => {
                write!(
                    f,
                    "rank {rank} timed out waiting for a message from rank {peer}"
                )
            }
            SolverError::RankDisconnected { rank, peer } => {
                write!(f, "rank {rank} lost its channel to rank {peer}")
            }
            SolverError::Checkpoint { detail } => {
                write!(f, "checkpoint save failed: {detail}")
            }
        }
    }
}

impl std::error::Error for SolverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolverError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SolverError {
    fn from(e: ConfigError) -> Self {
        SolverError::Config(e)
    }
}

/// A coupled LBM-IB time-stepping driver. All four implementations advance
/// identical physics (`verify::cross_check` holds them to ≤1e-12 of each
/// other under both kernel plans); they differ only in how the work is
/// scheduled over threads.
pub trait Solver {
    /// Short name matching the `--solver` flag (`seq`, `omp`, `cube`,
    /// `dist`).
    fn name(&self) -> &'static str;

    /// Advances one time step.
    fn step(&mut self);

    /// Advances `n` time steps, reporting steps and wall time.
    fn run(&mut self, n: u64) -> Result<RunReport, SolverError>;

    /// A flat-layout snapshot of the current state (cheap clone for the
    /// flat solvers, a gather for the cube/distributed layouts).
    fn to_state(&self) -> SimState;

    /// The per-kernel profile, if this solver keeps one.
    fn profile(&self) -> Option<&KernelProfile>;

    /// Turns per-thread telemetry collection on or off. When on, every
    /// subsequent [`Solver::run`] attaches a
    /// [`crate::telemetry::RunTelemetry`] to its report.
    fn set_telemetry(&mut self, enabled: bool);
}

/// Shared watchdog harness for the trait-level `run` implementations:
/// without a watchdog the whole run is one `chunk` call; with one, the run
/// is split into `check_every`-step chunks with a stability check between
/// them (chunked runs are bit-exact re-entries for every solver, so the
/// physics is unchanged). The starting state arms the reference mass.
fn run_watched<S>(
    solver: &mut S,
    n: u64,
    watchdog: Option<WatchdogConfig>,
    mut chunk: impl FnMut(&mut S, u64) -> Result<RunReport, SolverError>,
    check: impl Fn(&S, &mut Watchdog) -> Result<(), SolverError>,
) -> Result<RunReport, SolverError> {
    let Some(cfg) = watchdog.filter(|c| c.check_every > 0) else {
        return chunk(solver, n);
    };
    let mut dog = Watchdog::new();
    check(solver, &mut dog)?;
    let mut report = RunReport::default();
    while report.steps < n {
        let len = cfg.check_every.min(n - report.steps);
        report.merge(chunk(solver, len)?);
        check(solver, &mut dog)?;
    }
    Ok(report)
}

impl Solver for SequentialSolver {
    fn name(&self) -> &'static str {
        "seq"
    }
    fn step(&mut self) {
        SequentialSolver::step(self);
    }
    fn run(&mut self, n: u64) -> Result<RunReport, SolverError> {
        let watchdog = self.state.config.watchdog;
        run_watched(
            self,
            n,
            watchdog,
            |s, len| Ok(SequentialSolver::run(s, len)),
            |s, dog| dog.observe(&s.state),
        )
    }
    fn to_state(&self) -> SimState {
        self.state.clone()
    }
    fn profile(&self) -> Option<&KernelProfile> {
        Some(&self.profile)
    }
    fn set_telemetry(&mut self, enabled: bool) {
        self.telemetry_enabled = enabled;
    }
}

impl Solver for OpenMpSolver {
    fn name(&self) -> &'static str {
        "omp"
    }
    fn step(&mut self) {
        OpenMpSolver::step(self);
    }
    fn run(&mut self, n: u64) -> Result<RunReport, SolverError> {
        let watchdog = self.state.config.watchdog;
        run_watched(
            self,
            n,
            watchdog,
            |s, len| Ok(OpenMpSolver::run(s, len)),
            |s, dog| dog.observe(&s.state),
        )
    }
    fn to_state(&self) -> SimState {
        self.state.clone()
    }
    fn profile(&self) -> Option<&KernelProfile> {
        Some(&self.profile)
    }
    fn set_telemetry(&mut self, enabled: bool) {
        self.telemetry_enabled = enabled;
    }
}

impl Solver for CubeSolver {
    fn name(&self) -> &'static str {
        "cube"
    }
    fn step(&mut self) {
        CubeSolver::run(self, 1);
    }
    fn run(&mut self, n: u64) -> Result<RunReport, SolverError> {
        let watchdog = self.config.watchdog;
        run_watched(self, n, watchdog, CubeSolver::try_run, |s, dog| {
            // Gathering the blocked layout costs one flat copy, paid only
            // every `check_every` steps.
            dog.observe(&s.to_state())
        })
    }
    fn to_state(&self) -> SimState {
        CubeSolver::to_state(self)
    }
    fn profile(&self) -> Option<&KernelProfile> {
        Some(&self.profile)
    }
    fn set_telemetry(&mut self, enabled: bool) {
        self.telemetry_enabled = enabled;
    }
}

impl Solver for DistributedSolver {
    fn name(&self) -> &'static str {
        "dist"
    }
    fn step(&mut self) {
        DistributedSolver::try_run(self, 1)
            .expect("distributed rank failed (use try_run for the typed error)");
    }
    fn run(&mut self, n: u64) -> Result<RunReport, SolverError> {
        let watchdog = self.config.watchdog;
        run_watched(self, n, watchdog, DistributedSolver::try_run, |s, dog| {
            dog.observe(&s.to_state())
        })
    }
    fn to_state(&self) -> SimState {
        DistributedSolver::to_state(self)
    }
    fn profile(&self) -> Option<&KernelProfile> {
        // The distributed prototype keeps per-rank timings out of scope.
        None
    }
    fn set_telemetry(&mut self, enabled: bool) {
        self.telemetry_enabled = enabled;
    }
}

/// Builds the solver named by `kind` (`seq|omp|cube|dist`) over `state`,
/// with `threads` workers/ranks for the parallel drivers. All failure
/// modes — bad name, bad thread count, a decomposition the state cannot
/// support — come back as [`SolverError`] instead of a panic.
pub fn build_solver(
    kind: &str,
    state: SimState,
    threads: usize,
) -> Result<Box<dyn Solver>, SolverError> {
    match kind {
        "seq" => Ok(Box::new(SequentialSolver::from_state(state))),
        "omp" => Ok(Box::new(OpenMpSolver::try_from_state(state, threads)?)),
        "cube" => Ok(Box::new(CubeSolver::try_from_state(state, threads)?)),
        "dist" => Ok(Box::new(DistributedSolver::try_from_state(state, threads)?)),
        other => Err(SolverError::UnknownSolver(other.to_string())),
    }
}

/// Periodic auto-checkpointing policy for [`run_with_checkpoints`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Save cadence in time steps (0 = a single save at the end of the
    /// run).
    pub every: u64,
    /// Destination file. Saves are crash-consistent: written to a temp
    /// file, fsynced and atomically renamed over `path`, with the previous
    /// good checkpoint rotated to `<path>.prev`
    /// (see [`crate::checkpoint::save`]).
    pub path: std::path::PathBuf,
}

/// Runs `n` steps in `policy.every`-step chunks, saving a crash-consistent
/// checkpoint after each chunk. Chunked re-entry is bit-exact for every
/// solver, so a run resumed from any of these checkpoints reproduces the
/// uninterrupted run bit for bit. A failed save stops the run with
/// [`SolverError::Checkpoint`] instead of silently computing on.
pub fn run_with_checkpoints<S: Solver + ?Sized>(
    solver: &mut S,
    n: u64,
    policy: &CheckpointPolicy,
) -> Result<RunReport, SolverError> {
    let every = if policy.every == 0 { n } else { policy.every };
    let mut report = RunReport::default();
    while report.steps < n {
        let len = every.min(n - report.steps);
        report.merge(solver.run(len)?);
        crate::checkpoint::save(&solver.to_state(), &policy.path).map_err(|e| {
            SolverError::Checkpoint {
                detail: e.to_string(),
            }
        })?;
    }
    Ok(report)
}

/// Times `n` steps of any closure-driven stepper — shared by the inherent
/// `run` implementations that loop over `step`.
pub(crate) fn timed_steps(n: u64, mut step: impl FnMut()) -> RunReport {
    let t0 = Instant::now();
    for _ in 0..n {
        step();
    }
    RunReport {
        steps: n,
        wall: t0.elapsed(),
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{KernelPlan, SimulationConfig};
    use crate::verify::compare_states;

    #[test]
    fn build_solver_covers_all_four() {
        let config = SimulationConfig::quick_test();
        for kind in ["seq", "omp", "cube", "dist"] {
            let state = SimState::new(config);
            let mut s = build_solver(kind, state, 2).unwrap();
            assert_eq!(s.name(), kind);
            let report = s.run(2).unwrap();
            assert_eq!(report.steps, 2);
            assert_eq!(s.to_state().step, 2);
            // Only the distributed prototype lacks a profile.
            assert_eq!(s.profile().is_some(), kind != "dist");
        }
    }

    #[test]
    fn unknown_solver_is_an_error_not_a_panic() {
        let state = SimState::new(SimulationConfig::quick_test());
        let err = build_solver("mpi", state, 2).err().expect("must fail");
        assert_eq!(err, SolverError::UnknownSolver("mpi".into()));
        assert!(err.to_string().contains("mpi"));
    }

    #[test]
    fn zero_threads_is_an_error_not_a_panic() {
        for kind in ["omp", "cube", "dist"] {
            let state = SimState::new(SimulationConfig::quick_test());
            assert_eq!(
                build_solver(kind, state, 0).err().expect("must fail"),
                SolverError::ZeroThreads,
                "{kind}"
            );
        }
    }

    #[test]
    fn distributed_preconditions_are_typed() {
        let mut c = SimulationConfig::quick_test();
        c.bc = lbm::boundary::BoundaryConfig {
            x: lbm::boundary::AxisBoundary::no_slip(),
            ..c.bc
        };
        // A non-periodic x axis combined with the quick_test sheet stays
        // valid (the sheet has zero x extent well inside the box).
        let state = SimState::new(c);
        assert_eq!(
            DistributedSolver::try_from_state(state, 2)
                .err()
                .expect("must fail"),
            SolverError::NonPeriodicX
        );

        let state = SimState::new(SimulationConfig::quick_test());
        let nx = state.config.nx;
        assert_eq!(
            DistributedSolver::try_from_state(state, nx + 1)
                .err()
                .expect("must fail"),
            SolverError::TooManyRanks { ranks: nx + 1, nx }
        );
    }

    #[test]
    fn trait_object_steps_match_inherent_run() {
        let config = SimulationConfig::quick_test();
        let mut by_steps = build_solver("seq", SimState::new(config), 1).unwrap();
        for _ in 0..4 {
            by_steps.step();
        }
        let mut by_run = SequentialSolver::new(config);
        by_run.run(4);
        assert_eq!(
            compare_states(&by_steps.to_state(), &by_run.state).worst(),
            0.0
        );
    }

    #[test]
    fn run_report_arithmetic() {
        let mut r = RunReport {
            steps: 10,
            wall: Duration::from_secs(2),
            ..Default::default()
        };
        assert_eq!(r.steps_per_second(), 5.0);
        r.merge(RunReport {
            steps: 5,
            wall: Duration::from_secs(1),
            ..Default::default()
        });
        assert_eq!(r.steps, 15);
        assert_eq!(r.wall, Duration::from_secs(3));
        assert_eq!(RunReport::default().steps_per_second(), 0.0);
    }

    #[test]
    fn watchdog_catches_instability_through_the_trait() {
        use crate::config::WatchdogConfig;
        // Seed an already-poisoned state; with check_every = 1 the first
        // post-chunk check must trip, typed, on every solver.
        for kind in ["seq", "omp", "cube", "dist"] {
            let mut config = SimulationConfig::quick_test();
            config.watchdog = Some(WatchdogConfig { check_every: 1 });
            let mut state = SimState::new(config);
            state.fluid.ux[3] = 0.9; // far beyond the velocity limit
            let mut s = build_solver(kind, state, 2).unwrap();
            match s.run(10) {
                Err(SolverError::Unstable { reason, .. }) => {
                    assert!(reason.contains("velocity"), "{kind}: {reason}")
                }
                other => panic!("{kind}: expected Unstable, got {other:?}"),
            }
        }
    }

    #[test]
    fn watchdog_passes_healthy_runs_unchanged() {
        use crate::config::WatchdogConfig;
        use crate::verify::compare_states;
        let mut config = SimulationConfig::quick_test();
        let mut plain = build_solver("seq", SimState::new(config), 1).unwrap();
        let plain_report = plain.run(10).unwrap();
        config.watchdog = Some(WatchdogConfig { check_every: 3 });
        let mut watched = build_solver("seq", SimState::new(config), 1).unwrap();
        let report = watched.run(10).unwrap();
        assert_eq!(report.steps, 10);
        assert_eq!(plain_report.steps, 10);
        // Chunked re-entry is bit-exact: watched physics == unwatched.
        assert_eq!(
            compare_states(&plain.to_state(), &watched.to_state()).worst(),
            0.0
        );
    }

    #[test]
    fn run_with_checkpoints_saves_and_matches_plain_run() {
        let dir = std::env::temp_dir().join(format!("lbmib_rwc_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let config = SimulationConfig::quick_test();

        let mut plain = build_solver("seq", SimState::new(config), 1).unwrap();
        plain.run(9).unwrap();

        let mut ckpt = build_solver("seq", SimState::new(config), 1).unwrap();
        let policy = CheckpointPolicy {
            every: 4,
            path: path.clone(),
        };
        let report = run_with_checkpoints(ckpt.as_mut(), 9, &policy).unwrap();
        assert_eq!(report.steps, 9);

        // The final checkpoint holds step 9 and bit-identical state; the
        // rotation left the step-8 save in `.prev`.
        let (resumed, source) = crate::checkpoint::resume(&path).unwrap();
        assert_eq!(source, crate::checkpoint::ResumeSource::Primary);
        assert_eq!(resumed.step, 9);
        assert_eq!(resumed.fluid.f, plain.to_state().fluid.f);
        let prev = crate::checkpoint::load(&crate::checkpoint::prev_path(&path)).unwrap();
        assert_eq!(prev.step, 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fused_plan_runs_through_the_trait() {
        let config = SimulationConfig::builder()
            .plan(KernelPlan::Fused)
            .build()
            .unwrap();
        let mut s = build_solver("seq", SimState::new(config), 1).unwrap();
        let report = s.run(3).unwrap();
        assert_eq!(report.steps, 3);
        assert!(!s.to_state().has_nan());
    }
}
