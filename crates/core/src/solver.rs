//! The unified [`Solver`] interface over the four drivers.
//!
//! Every solver — sequential (Algorithm 1), OpenMP-style slab-parallel,
//! cube-centric (Algorithm 4) and the distributed prototype — advances the
//! same physics; this module gives them one API so the binary, the
//! examples and the verification harness can drive any of them through a
//! `Box<dyn Solver>` instead of duplicated match arms.

use std::time::{Duration, Instant};

use crate::config::ConfigError;
use crate::cube::CubeSolver;
use crate::distributed::DistributedSolver;
use crate::openmp::OpenMpSolver;
use crate::profiling::KernelProfile;
use crate::sequential::SequentialSolver;
use crate::state::SimState;

/// What a completed [`Solver::run`] did: how many steps, and how long the
/// whole run took on the wall clock (including barriers and thread spawn
/// for the parallel solvers).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Time steps executed by this call.
    pub steps: u64,
    /// Wall-clock time of the whole call.
    pub wall: Duration,
}

impl RunReport {
    /// Steps per wall-clock second (0 for an empty or instantaneous run).
    pub fn steps_per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.steps as f64 / secs
        } else {
            0.0
        }
    }

    /// Merges a subsequent report into this one.
    pub fn merge(&mut self, other: RunReport) {
        self.steps += other.steps;
        self.wall += other.wall;
    }
}

/// Why a solver could not be built or run.
#[derive(Clone, Debug, PartialEq)]
pub enum SolverError {
    /// The simulation configuration failed validation.
    Config(ConfigError),
    /// A parallel solver was asked for zero threads/ranks.
    ZeroThreads,
    /// The distributed solver needs the x axis periodic to slice it.
    NonPeriodicX,
    /// More ranks than x planes to distribute.
    TooManyRanks { ranks: usize, nx: usize },
    /// The solver name is not one of `seq|omp|cube|dist`.
    UnknownSolver(String),
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::Config(e) => write!(f, "{e}"),
            SolverError::ZeroThreads => write!(f, "need at least one thread"),
            SolverError::NonPeriodicX => write!(
                f,
                "the distributed decomposition slices the periodic x axis"
            ),
            SolverError::TooManyRanks { ranks, nx } => {
                write!(f, "{ranks} ranks but only {nx} x planes to distribute")
            }
            SolverError::UnknownSolver(name) => {
                write!(f, "unknown solver '{name}' (expected seq|omp|cube|dist)")
            }
        }
    }
}

impl std::error::Error for SolverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolverError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SolverError {
    fn from(e: ConfigError) -> Self {
        SolverError::Config(e)
    }
}

/// A coupled LBM-IB time-stepping driver. All four implementations advance
/// identical physics (`verify::cross_check` holds them to ≤1e-12 of each
/// other under both kernel plans); they differ only in how the work is
/// scheduled over threads.
pub trait Solver {
    /// Short name matching the `--solver` flag (`seq`, `omp`, `cube`,
    /// `dist`).
    fn name(&self) -> &'static str;

    /// Advances one time step.
    fn step(&mut self);

    /// Advances `n` time steps, reporting steps and wall time.
    fn run(&mut self, n: u64) -> Result<RunReport, SolverError>;

    /// A flat-layout snapshot of the current state (cheap clone for the
    /// flat solvers, a gather for the cube/distributed layouts).
    fn to_state(&self) -> SimState;

    /// The per-kernel profile, if this solver keeps one.
    fn profile(&self) -> Option<&KernelProfile>;
}

impl Solver for SequentialSolver {
    fn name(&self) -> &'static str {
        "seq"
    }
    fn step(&mut self) {
        SequentialSolver::step(self);
    }
    fn run(&mut self, n: u64) -> Result<RunReport, SolverError> {
        Ok(SequentialSolver::run(self, n))
    }
    fn to_state(&self) -> SimState {
        self.state.clone()
    }
    fn profile(&self) -> Option<&KernelProfile> {
        Some(&self.profile)
    }
}

impl Solver for OpenMpSolver {
    fn name(&self) -> &'static str {
        "omp"
    }
    fn step(&mut self) {
        OpenMpSolver::step(self);
    }
    fn run(&mut self, n: u64) -> Result<RunReport, SolverError> {
        Ok(OpenMpSolver::run(self, n))
    }
    fn to_state(&self) -> SimState {
        self.state.clone()
    }
    fn profile(&self) -> Option<&KernelProfile> {
        Some(&self.profile)
    }
}

impl Solver for CubeSolver {
    fn name(&self) -> &'static str {
        "cube"
    }
    fn step(&mut self) {
        CubeSolver::run(self, 1);
    }
    fn run(&mut self, n: u64) -> Result<RunReport, SolverError> {
        Ok(CubeSolver::run(self, n))
    }
    fn to_state(&self) -> SimState {
        CubeSolver::to_state(self)
    }
    fn profile(&self) -> Option<&KernelProfile> {
        Some(&self.profile)
    }
}

impl Solver for DistributedSolver {
    fn name(&self) -> &'static str {
        "dist"
    }
    fn step(&mut self) {
        DistributedSolver::run(self, 1);
    }
    fn run(&mut self, n: u64) -> Result<RunReport, SolverError> {
        Ok(DistributedSolver::run(self, n))
    }
    fn to_state(&self) -> SimState {
        DistributedSolver::to_state(self)
    }
    fn profile(&self) -> Option<&KernelProfile> {
        // The distributed prototype keeps per-rank timings out of scope.
        None
    }
}

/// Builds the solver named by `kind` (`seq|omp|cube|dist`) over `state`,
/// with `threads` workers/ranks for the parallel drivers. All failure
/// modes — bad name, bad thread count, a decomposition the state cannot
/// support — come back as [`SolverError`] instead of a panic.
pub fn build_solver(
    kind: &str,
    state: SimState,
    threads: usize,
) -> Result<Box<dyn Solver>, SolverError> {
    match kind {
        "seq" => Ok(Box::new(SequentialSolver::from_state(state))),
        "omp" => Ok(Box::new(OpenMpSolver::try_from_state(state, threads)?)),
        "cube" => Ok(Box::new(CubeSolver::try_from_state(state, threads)?)),
        "dist" => Ok(Box::new(DistributedSolver::try_from_state(state, threads)?)),
        other => Err(SolverError::UnknownSolver(other.to_string())),
    }
}

impl SimState {
    /// Like [`SimState::new`] but returns the validation problem instead
    /// of panicking.
    pub fn try_new(config: crate::config::SimulationConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Self::new(config))
    }
}

impl OpenMpSolver {
    /// Like [`OpenMpSolver::from_state`] but returns an error instead of
    /// panicking on a zero thread count.
    pub fn try_from_state(state: SimState, n_threads: usize) -> Result<Self, SolverError> {
        if n_threads == 0 {
            return Err(SolverError::ZeroThreads);
        }
        Ok(Self::from_state(state, n_threads))
    }
}

impl CubeSolver {
    /// Like [`CubeSolver::from_state`] but returns an error instead of
    /// panicking on a zero thread count or an indivisible grid.
    pub fn try_from_state(state: SimState, n_threads: usize) -> Result<Self, SolverError> {
        if n_threads == 0 {
            return Err(SolverError::ZeroThreads);
        }
        state.config.validate()?;
        Ok(Self::from_state(state, n_threads))
    }
}

impl DistributedSolver {
    /// Like [`DistributedSolver::from_state`] but returns an error instead
    /// of panicking on a non-periodic x axis or a bad rank count.
    pub fn try_from_state(state: SimState, n_ranks: usize) -> Result<Self, SolverError> {
        if !state.config.bc.x.is_periodic() {
            return Err(SolverError::NonPeriodicX);
        }
        if n_ranks == 0 {
            return Err(SolverError::ZeroThreads);
        }
        if n_ranks > state.config.nx {
            return Err(SolverError::TooManyRanks {
                ranks: n_ranks,
                nx: state.config.nx,
            });
        }
        Ok(Self::from_state(state, n_ranks))
    }
}

/// Times `n` steps of any closure-driven stepper — shared by the inherent
/// `run` implementations that loop over `step`.
pub(crate) fn timed_steps(n: u64, mut step: impl FnMut()) -> RunReport {
    let t0 = Instant::now();
    for _ in 0..n {
        step();
    }
    RunReport {
        steps: n,
        wall: t0.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{KernelPlan, SimulationConfig};
    use crate::verify::compare_states;

    #[test]
    fn build_solver_covers_all_four() {
        let config = SimulationConfig::quick_test();
        for kind in ["seq", "omp", "cube", "dist"] {
            let state = SimState::new(config);
            let mut s = build_solver(kind, state, 2).unwrap();
            assert_eq!(s.name(), kind);
            let report = s.run(2).unwrap();
            assert_eq!(report.steps, 2);
            assert_eq!(s.to_state().step, 2);
            // Only the distributed prototype lacks a profile.
            assert_eq!(s.profile().is_some(), kind != "dist");
        }
    }

    #[test]
    fn unknown_solver_is_an_error_not_a_panic() {
        let state = SimState::new(SimulationConfig::quick_test());
        let err = build_solver("mpi", state, 2).err().expect("must fail");
        assert_eq!(err, SolverError::UnknownSolver("mpi".into()));
        assert!(err.to_string().contains("mpi"));
    }

    #[test]
    fn zero_threads_is_an_error_not_a_panic() {
        for kind in ["omp", "cube", "dist"] {
            let state = SimState::new(SimulationConfig::quick_test());
            assert_eq!(
                build_solver(kind, state, 0).err().expect("must fail"),
                SolverError::ZeroThreads,
                "{kind}"
            );
        }
    }

    #[test]
    fn distributed_preconditions_are_typed() {
        let mut c = SimulationConfig::quick_test();
        c.bc = lbm::boundary::BoundaryConfig {
            x: lbm::boundary::AxisBoundary::no_slip(),
            ..c.bc
        };
        // A non-periodic x axis combined with the quick_test sheet stays
        // valid (the sheet has zero x extent well inside the box).
        let state = SimState::new(c);
        assert_eq!(
            DistributedSolver::try_from_state(state, 2)
                .err()
                .expect("must fail"),
            SolverError::NonPeriodicX
        );

        let state = SimState::new(SimulationConfig::quick_test());
        let nx = state.config.nx;
        assert_eq!(
            DistributedSolver::try_from_state(state, nx + 1)
                .err()
                .expect("must fail"),
            SolverError::TooManyRanks { ranks: nx + 1, nx }
        );
    }

    #[test]
    fn try_new_reports_instead_of_panicking() {
        let mut c = SimulationConfig::quick_test();
        c.tau = 0.2;
        assert!(matches!(
            SimState::try_new(c),
            Err(ConfigError::InvalidTau { .. })
        ));
        assert!(SimState::try_new(SimulationConfig::quick_test()).is_ok());
    }

    #[test]
    fn trait_object_steps_match_inherent_run() {
        let config = SimulationConfig::quick_test();
        let mut by_steps = build_solver("seq", SimState::new(config), 1).unwrap();
        for _ in 0..4 {
            by_steps.step();
        }
        let mut by_run = SequentialSolver::new(config);
        by_run.run(4);
        assert_eq!(
            compare_states(&by_steps.to_state(), &by_run.state).worst(),
            0.0
        );
    }

    #[test]
    fn run_report_arithmetic() {
        let mut r = RunReport {
            steps: 10,
            wall: Duration::from_secs(2),
        };
        assert_eq!(r.steps_per_second(), 5.0);
        r.merge(RunReport {
            steps: 5,
            wall: Duration::from_secs(1),
        });
        assert_eq!(r.steps, 15);
        assert_eq!(r.wall, Duration::from_secs(3));
        assert_eq!(RunReport::default().steps_per_second(), 0.0);
    }

    #[test]
    fn fused_plan_runs_through_the_trait() {
        let config = SimulationConfig::builder()
            .plan(KernelPlan::Fused)
            .build()
            .unwrap();
        let mut s = build_solver("seq", SimState::new(config), 1).unwrap();
        let report = s.run(3).unwrap();
        assert_eq!(report.steps, 3);
        assert!(!s.to_state().has_nan());
    }
}
