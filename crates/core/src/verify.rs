//! Cross-version verification, the paper's "all the numerical results have
//! been verified to be correct by comparing the new result to that of the
//! sequential implementation".

use crate::state::SimState;

/// Error norms between two simulation states.
#[derive(Clone, Copy, Debug, Default)]
pub struct StateDiff {
    /// Max absolute difference over the present distribution buffers.
    pub f_linf: f64,
    /// Max absolute difference over the macroscopic velocity fields.
    pub u_linf: f64,
    /// RMS difference over the velocity fields.
    pub u_l2: f64,
    /// Max absolute difference over the densities.
    pub rho_linf: f64,
    /// Max absolute difference over the fiber node positions.
    pub pos_linf: f64,
}

impl StateDiff {
    /// The largest of all tracked norms.
    pub fn worst(&self) -> f64 {
        self.f_linf
            .max(self.u_linf)
            .max(self.rho_linf)
            .max(self.pos_linf)
    }

    /// True if every norm is below `tol`.
    pub fn within(&self, tol: f64) -> bool {
        self.worst() <= tol
    }
}

/// Computes norms of the difference between two states. Panics if the
/// states have different shapes.
pub fn compare_states(a: &SimState, b: &SimState) -> StateDiff {
    assert_eq!(a.fluid.dims, b.fluid.dims, "grid shape mismatch");
    assert_eq!(a.sheet.n(), b.sheet.n(), "sheet shape mismatch");
    let linf = |x: &[f64], y: &[f64]| -> f64 {
        x.iter()
            .zip(y)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f64::max)
    };
    let mut u_l2 = 0.0;
    let n = a.fluid.n();
    for i in 0..n {
        let dx = a.fluid.ux[i] - b.fluid.ux[i];
        let dy = a.fluid.uy[i] - b.fluid.uy[i];
        let dz = a.fluid.uz[i] - b.fluid.uz[i];
        u_l2 += dx * dx + dy * dy + dz * dz;
    }
    let pos_linf = a
        .sheet
        .pos
        .iter()
        .zip(&b.sheet.pos)
        .flat_map(|(p, q)| (0..3).map(move |i| (p[i] - q[i]).abs()))
        .fold(0.0f64, f64::max);
    StateDiff {
        f_linf: linf(&a.fluid.f, &b.fluid.f),
        u_linf: linf(&a.fluid.ux, &b.fluid.ux)
            .max(linf(&a.fluid.uy, &b.fluid.uy))
            .max(linf(&a.fluid.uz, &b.fluid.uz)),
        u_l2: (u_l2 / n as f64).sqrt(),
        rho_linf: linf(&a.fluid.rho, &b.fluid.rho),
        pos_linf,
    }
}

/// Runs all three solvers for `steps` on `config` with `threads` workers
/// and returns (seq-vs-omp, seq-vs-cube) diffs — the library's end-to-end
/// self-check.
pub fn verify_all_solvers(
    config: crate::config::SimulationConfig,
    steps: u64,
    threads: usize,
) -> (StateDiff, StateDiff) {
    let mut seq = crate::sequential::SequentialSolver::new(config);
    seq.run(steps);
    let mut omp = crate::openmp::OpenMpSolver::new(config, threads);
    omp.run(steps);
    let mut cube = crate::cube::CubeSolver::new(config, threads);
    cube.run(steps);
    (
        compare_states(&seq.state, &omp.state),
        compare_states(&seq.state, &cube.to_state()),
    )
}

/// Runs every solver under the split *and* the fused kernel plan and
/// returns `(solver name, split-vs-fused diff)` per solver. The fused
/// sweep performs the same f64 arithmetic as split collision + streaming,
/// so every diff should be identically zero; `verify` asserts ≤ 1e-12 to
/// leave headroom for future reassociating optimisations.
pub fn cross_check(
    config: crate::config::SimulationConfig,
    steps: u64,
    threads: usize,
) -> Vec<(&'static str, StateDiff)> {
    use crate::config::KernelPlan;
    use crate::solver::build_solver;
    let mut out = Vec::new();
    for kind in ["seq", "omp", "cube", "dist"] {
        let mut states = [KernelPlan::Split, KernelPlan::Fused].map(|plan| {
            let mut cfg = config;
            cfg.plan = plan;
            let state = SimState::new(cfg);
            let mut solver = build_solver(kind, state, threads).expect("buildable solver");
            solver.run(steps).expect("run succeeds");
            solver.to_state()
        });
        let [split, fused] = &mut states;
        out.push((kind, compare_states(split, fused)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimulationConfig;

    #[test]
    fn identical_states_have_zero_diff() {
        let s = SimState::new(SimulationConfig::quick_test());
        let d = compare_states(&s, &s.clone());
        assert_eq!(d.worst(), 0.0);
        assert!(d.within(0.0));
    }

    #[test]
    fn perturbation_is_detected_in_each_field() {
        let base = SimState::new(SimulationConfig::quick_test());

        let mut s = base.clone();
        s.fluid.f[3] += 1e-6;
        assert!(compare_states(&base, &s).f_linf > 0.0);

        let mut s = base.clone();
        s.fluid.ux[3] += 1e-6;
        let d = compare_states(&base, &s);
        assert!(d.u_linf > 0.0 && d.u_l2 > 0.0);

        let mut s = base.clone();
        s.fluid.rho[3] += 1e-6;
        assert!(compare_states(&base, &s).rho_linf > 0.0);

        let mut s = base.clone();
        s.sheet.pos[3][1] += 1e-6;
        let got = compare_states(&base, &s).pos_linf;
        assert!((got - 1e-6).abs() < 1e-12, "{got}");
    }

    #[test]
    fn end_to_end_three_solver_verification() {
        let (omp_diff, cube_diff) = verify_all_solvers(SimulationConfig::quick_test(), 5, 3);
        assert!(omp_diff.within(1e-12), "openmp diverged: {omp_diff:?}");
        assert!(cube_diff.within(1e-12), "cube diverged: {cube_diff:?}");
    }

    #[test]
    fn fused_plan_matches_split_on_every_solver() {
        for (kind, diff) in cross_check(SimulationConfig::quick_test(), 5, 3) {
            assert!(
                diff.within(1e-12),
                "{kind}: fused diverged from split: {diff:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "grid shape mismatch")]
    fn shape_mismatch_panics() {
        let a = SimState::new(SimulationConfig::quick_test());
        let mut cfg = SimulationConfig::quick_test();
        cfg.nx = 16;
        cfg.sheet.center = [8.0, 8.0, 8.0];
        let b = SimState::new(cfg);
        compare_states(&a, &b);
    }
}
