//! Shared-memory views for the cube-centric solver: the cube-blocked fluid
//! grid and the fiber arrays, wrapped so that a fixed team of worker
//! threads can access them through raw (unchecked-aliasing) cells.
//!
//! # Safety model
//!
//! Rust's borrow checker cannot express Algorithm 4's ownership discipline
//! ("each cube is written only by its owner thread, except spreading which
//! takes the owner's lock, with phases separated by barriers"), so this
//! module provides `unsafe` indexed access and the *solver* upholds the
//! discipline:
//!
//! * a location is written by at most one thread per phase, or all writes
//!   to it are protected by its owner's mutex;
//! * no location is read and written concurrently within a phase;
//! * phases are separated by barriers (or mutex acquire/release), which
//!   provide the happens-before edges.
//!
//! Each accessor documents which rule makes it sound at its call site.

use std::cell::UnsafeCell;

/// A `Sync` slice of `T` with unchecked interior mutability.
///
/// `T` is constrained to `Copy` values (we store `f64` and `[f64; 3]`);
/// per-location data-race freedom is the caller's obligation.
#[repr(transparent)]
pub struct SharedSlice<T>(Box<[UnsafeCell<T>]>);

// SAFETY: access is raw and the solver guarantees per-location exclusion;
// the type itself adds no thread affinity.
unsafe impl<T: Send> Sync for SharedSlice<T> {}
unsafe impl<T: Send> Send for SharedSlice<T> {}

impl<T: Copy> SharedSlice<T> {
    /// Takes ownership of a vector.
    pub fn from_vec(v: Vec<T>) -> Self {
        // SAFETY: UnsafeCell<T> has the same in-memory representation as T.
        let boxed: Box<[T]> = v.into_boxed_slice();
        let len = boxed.len();
        let ptr = Box::into_raw(boxed) as *mut UnsafeCell<T>;
        unsafe { Self(Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, len))) }
    }

    /// Releases the storage back into a vector.
    pub fn into_vec(self) -> Vec<T> {
        let len = self.0.len();
        let ptr = Box::into_raw(self.0) as *mut T;
        // SAFETY: inverse of `from_vec`.
        unsafe { Vec::from_raw_parts(ptr, len, len) }
    }

    /// Length of the slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Reads element `i`.
    ///
    /// # Safety
    /// No thread may be concurrently writing element `i`.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> T {
        debug_assert!(i < self.0.len());
        *self.0.get_unchecked(i).get()
    }

    /// Writes element `i`.
    ///
    /// # Safety
    /// No other thread may be concurrently reading or writing element `i`.
    #[inline]
    pub unsafe fn set(&self, i: usize, v: T) {
        debug_assert!(i < self.0.len());
        *self.0.get_unchecked(i).get() = v;
    }

    /// Exclusive safe view (requires `&mut`, i.e. no other users).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        let len = self.0.len();
        let ptr = self.0.as_mut_ptr() as *mut T;
        // SAFETY: &mut self guarantees exclusivity; layouts match.
        unsafe { std::slice::from_raw_parts_mut(ptr, len) }
    }

    /// Borrows the storage as a plain slice for a read-only phase.
    ///
    /// # Safety
    /// No thread may write any element for the lifetime of the returned
    /// slice (e.g. fiber positions during loop 1 of Algorithm 4).
    #[inline]
    pub unsafe fn as_slice_unchecked(&self) -> &[T] {
        std::slice::from_raw_parts(self.0.as_ptr() as *const T, self.0.len())
    }
}

impl SharedSlice<f64> {
    /// Adds `v` to element `i` (non-atomic read-modify-write).
    ///
    /// # Safety
    /// The caller must hold the lock that protects element `i` (or be the
    /// only thread able to touch it in this phase).
    #[inline]
    pub unsafe fn add(&self, i: usize, v: f64) {
        debug_assert!(i < self.0.len());
        let p = self.0.get_unchecked(i).get();
        *p += v;
    }

    /// Copies `len` elements from `src[offset..offset+len]` into the same
    /// range of `self` (kernel 9 restricted to one cube's block).
    ///
    /// # Safety
    /// No thread may concurrently access either range.
    #[inline]
    pub unsafe fn copy_from(&self, src: &SharedSlice<f64>, offset: usize, len: usize) {
        debug_assert!(offset + len <= self.0.len());
        debug_assert!(offset + len <= src.0.len());
        let dst = self.0[offset].get();
        let s = src.0[offset].get() as *const f64;
        std::ptr::copy_nonoverlapping(s, dst, len);
    }
}

/// The cube-blocked fluid state as shared slices, plus the cube geometry.
/// Built from (and torn back down into) a [`lbm::cube_grid::CubeFluidGrid`].
pub struct SharedCubeGrid {
    pub cdims: lbm::cube_grid::CubeDims,
    pub f: SharedSlice<f64>,
    pub f_new: SharedSlice<f64>,
    pub rho: SharedSlice<f64>,
    pub ux: SharedSlice<f64>,
    pub uy: SharedSlice<f64>,
    pub uz: SharedSlice<f64>,
    pub ueqx: SharedSlice<f64>,
    pub ueqy: SharedSlice<f64>,
    pub ueqz: SharedSlice<f64>,
    pub fx: SharedSlice<f64>,
    pub fy: SharedSlice<f64>,
    pub fz: SharedSlice<f64>,
}

impl SharedCubeGrid {
    /// Wraps a cube grid for shared access.
    pub fn new(grid: lbm::cube_grid::CubeFluidGrid) -> Self {
        Self {
            cdims: grid.cdims,
            f: SharedSlice::from_vec(grid.f),
            f_new: SharedSlice::from_vec(grid.f_new),
            rho: SharedSlice::from_vec(grid.rho),
            ux: SharedSlice::from_vec(grid.ux),
            uy: SharedSlice::from_vec(grid.uy),
            uz: SharedSlice::from_vec(grid.uz),
            ueqx: SharedSlice::from_vec(grid.ueqx),
            ueqy: SharedSlice::from_vec(grid.ueqy),
            ueqz: SharedSlice::from_vec(grid.ueqz),
            fx: SharedSlice::from_vec(grid.fx),
            fy: SharedSlice::from_vec(grid.fy),
            fz: SharedSlice::from_vec(grid.fz),
        }
    }

    /// Unwraps back into the owned cube grid.
    pub fn into_inner(self) -> lbm::cube_grid::CubeFluidGrid {
        lbm::cube_grid::CubeFluidGrid {
            cdims: self.cdims,
            f: self.f.into_vec(),
            f_new: self.f_new.into_vec(),
            rho: self.rho.into_vec(),
            ux: self.ux.into_vec(),
            uy: self.uy.into_vec(),
            uz: self.uz.into_vec(),
            ueqx: self.ueqx.into_vec(),
            ueqy: self.ueqy.into_vec(),
            ueqz: self.ueqz.into_vec(),
            fx: self.fx.into_vec(),
            fy: self.fy.into_vec(),
            fz: self.fz.into_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm::cube_grid::{CubeDims, CubeFluidGrid};
    use lbm::grid::Dims;

    #[test]
    fn from_into_vec_round_trip() {
        let s = SharedSlice::from_vec(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        unsafe {
            assert_eq!(s.get(1), 2.0);
            s.set(1, 5.0);
            s.add(2, 0.5);
        }
        assert_eq!(s.into_vec(), vec![1.0, 5.0, 3.5]);
    }

    #[test]
    fn as_mut_slice_gives_safe_access() {
        let mut s = SharedSlice::from_vec(vec![0u64; 4]);
        s.as_mut_slice()[2] = 9;
        assert_eq!(s.into_vec(), vec![0, 0, 9, 0]);
    }

    #[test]
    fn vec3_storage_works() {
        let s = SharedSlice::from_vec(vec![[1.0f64, 2.0, 3.0]; 2]);
        unsafe {
            let mut v = s.get(0);
            v[1] += 1.0;
            s.set(0, v);
            assert_eq!(s.get(0), [1.0, 3.0, 3.0]);
        }
    }

    #[test]
    fn shared_grid_round_trip_preserves_data() {
        let cdims = CubeDims::new(Dims::new(4, 4, 4), 2);
        let mut g = CubeFluidGrid::new(cdims);
        for (i, v) in g.f.iter_mut().enumerate() {
            *v = i as f64;
        }
        g.rho[7] = 3.25;
        let shared = SharedCubeGrid::new(g);
        unsafe {
            assert_eq!(shared.rho.get(7), 3.25);
            assert_eq!(shared.f.get(10), 10.0);
            shared.ux.set(0, -1.0);
        }
        let back = shared.into_inner();
        assert_eq!(back.rho[7], 3.25);
        assert_eq!(back.ux[0], -1.0);
        assert_eq!(back.f[10], 10.0);
    }

    #[test]
    fn concurrent_disjoint_writes_are_visible_after_join() {
        let s = SharedSlice::from_vec(vec![0.0f64; 8]);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = &s;
                scope.spawn(move || {
                    // Each thread owns two disjoint slots.
                    for i in [t, t + 4] {
                        unsafe { s.set(i, (i + 1) as f64) };
                    }
                });
            }
        });
        let v = s.into_vec();
        assert_eq!(v, (1..=8).map(|i| i as f64).collect::<Vec<_>>());
    }
}
