//! Shared-memory views for the cube-centric solver: the cube-blocked fluid
//! grid and the fiber arrays, wrapped so that a fixed team of worker
//! threads can access them through raw (unchecked-aliasing) cells.
//!
//! # Safety model
//!
//! Rust's borrow checker cannot express Algorithm 4's ownership discipline
//! ("each cube is written only by its owner thread, except spreading which
//! takes the owner's lock, with phases separated by barriers"), so this
//! module provides `unsafe` indexed access and the *solver* upholds the
//! discipline:
//!
//! * a location is written by at most one thread per phase, or all writes
//!   to it are protected by its owner's mutex;
//! * no location is read and written concurrently within a phase;
//! * phases are separated by barriers (or mutex acquire/release), which
//!   provide the happens-before edges.
//!
//! Each accessor documents which rule makes it sound at its call site.
//! With the `racecheck` feature enabled, every accessor additionally
//! records its access into the [`crate::racecheck`] shadow log so the
//! discipline can be audited after a run.

#[cfg(loom)]
use loom::cell::UnsafeCell;
#[cfg(not(loom))]
use std::cell::UnsafeCell;

/// A `Sync` slice of `T` with unchecked interior mutability.
///
/// `T` is constrained to `Copy` values (we store `f64` and `[f64; 3]`);
/// per-location data-race freedom is the caller's obligation.
pub struct SharedSlice<T> {
    cells: Box<[UnsafeCell<T>]>,
    #[cfg(feature = "racecheck")]
    track: crate::racecheck::TrackId,
}

// SAFETY: access is raw and the solver guarantees per-location exclusion;
// the type itself adds no thread affinity.
unsafe impl<T: Send> Sync for SharedSlice<T> {}
// SAFETY: the slice owns its cells outright; moving it across threads
// moves the `T`s wholesale, exactly as for `Vec<T>: Send`.
unsafe impl<T: Send> Send for SharedSlice<T> {}

impl<T: Copy> SharedSlice<T> {
    /// Takes ownership of a vector.
    #[cfg(not(loom))]
    pub fn from_vec(v: Vec<T>) -> Self {
        let boxed: Box<[T]> = v.into_boxed_slice();
        let len = boxed.len();
        let ptr = Box::into_raw(boxed) as *mut UnsafeCell<T>;
        // SAFETY: `UnsafeCell<T>` is `repr(transparent)` over `T`, so the
        // allocation's size, alignment, and element layout are unchanged;
        // `ptr` came from `Box::into_raw` of that same allocation.
        let cells = unsafe { Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, len)) };
        Self {
            cells,
            #[cfg(feature = "racecheck")]
            track: crate::racecheck::TrackId::register(),
        }
    }

    /// Takes ownership of a vector (loom build: element-wise wrap, since
    /// the model-checked cell is not layout-compatible with `T`).
    #[cfg(loom)]
    pub fn from_vec(v: Vec<T>) -> Self {
        Self {
            cells: v.into_iter().map(UnsafeCell::new).collect(),
            #[cfg(feature = "racecheck")]
            track: crate::racecheck::TrackId::register(),
        }
    }

    /// Releases the storage back into a vector.
    #[cfg(not(loom))]
    pub fn into_vec(self) -> Vec<T> {
        let len = self.cells.len();
        let ptr = Box::into_raw(self.cells) as *mut T;
        // SAFETY: inverse of `from_vec`: same allocation, same layout
        // (`UnsafeCell<T>` is `repr(transparent)` over `T`), and `self` is
        // consumed so no cell access can outlive the transfer.
        unsafe { Vec::from_raw_parts(ptr, len, len) }
    }

    /// Releases the storage back into a vector (loom build).
    #[cfg(loom)]
    pub fn into_vec(self) -> Vec<T> {
        self.cells
            .into_vec()
            .into_iter()
            .map(UnsafeCell::into_inner)
            .collect()
    }

    /// Length of the slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Reads element `i`.
    ///
    /// # Safety
    /// No thread may be concurrently writing element `i`.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> T {
        debug_assert!(i < self.cells.len());
        #[cfg(feature = "racecheck")]
        crate::racecheck::record(self.track, i, crate::racecheck::AccessKind::Read);
        #[cfg(not(loom))]
        // SAFETY: `i` is in bounds (callers index within `len`, checked in
        // debug builds); the caller guarantees no concurrent writer, so the
        // plain read does not race.
        return unsafe { *self.cells.get_unchecked(i).get() };
        #[cfg(loom)]
        // SAFETY: loom validates the no-concurrent-writer claim; the raw
        // pointer is valid for the closure's duration.
        return self.cells[i].with(|p| unsafe { *p });
    }

    /// Writes element `i`.
    ///
    /// # Safety
    /// No other thread may be concurrently reading or writing element `i`.
    #[inline]
    pub unsafe fn set(&self, i: usize, v: T) {
        debug_assert!(i < self.cells.len());
        #[cfg(feature = "racecheck")]
        crate::racecheck::record(self.track, i, crate::racecheck::AccessKind::Write);
        #[cfg(not(loom))]
        // SAFETY: `i` is in bounds; the caller guarantees exclusive access
        // to this element for the duration of the write.
        unsafe {
            *self.cells.get_unchecked(i).get() = v;
        }
        #[cfg(loom)]
        // SAFETY: loom validates the exclusivity claim; the raw pointer is
        // valid for the closure's duration.
        self.cells[i].with_mut(|p| unsafe { *p = v })
    }

    /// Exclusive safe view (requires `&mut`, i.e. no other users).
    #[cfg(not(loom))]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        let len = self.cells.len();
        let ptr = self.cells.as_mut_ptr() as *mut T;
        // SAFETY: `&mut self` guarantees exclusivity, and `UnsafeCell<T>`
        // has the same layout as `T` (`repr(transparent)`).
        unsafe { std::slice::from_raw_parts_mut(ptr, len) }
    }

    /// Borrows the storage as a plain slice for a read-only phase.
    ///
    /// # Safety
    /// No thread may write any element for the lifetime of the returned
    /// slice (e.g. fiber positions during loop 1 of Algorithm 4).
    #[cfg(not(loom))]
    #[inline]
    pub unsafe fn as_slice_unchecked(&self) -> &[T] {
        // The borrow makes every element readable for the phase; record it
        // as a whole-array read.
        #[cfg(feature = "racecheck")]
        crate::racecheck::record_range(
            self.track,
            0..self.cells.len(),
            crate::racecheck::AccessKind::Read,
        );
        // SAFETY: the caller guarantees the slice is read-only for the
        // returned lifetime, and `UnsafeCell<T>` has the same layout as `T`.
        unsafe { std::slice::from_raw_parts(self.cells.as_ptr() as *const T, self.cells.len()) }
    }

    /// Loom builds cannot hand out an untracked borrow of tracked cells;
    /// the solvers that use this path never run under the model.
    ///
    /// # Safety
    /// Never returns (the loom tests use [`SharedSlice::get`] instead).
    #[cfg(loom)]
    pub unsafe fn as_slice_unchecked(&self) -> &[T] {
        unimplemented!("as_slice_unchecked has no loom model; use get()")
    }

    /// Loom counterpart of the exclusive view; see `as_slice_unchecked`.
    #[cfg(loom)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        unimplemented!("as_mut_slice has no loom model; use get()/set()")
    }

    /// Names this array in racecheck audit reports.
    #[cfg(feature = "racecheck")]
    pub fn name_for_racecheck(&self, name: &str) {
        self.track.set_name(name);
    }
}

impl SharedSlice<f64> {
    /// Adds `v` to element `i` (non-atomic read-modify-write).
    ///
    /// # Safety
    /// The caller must hold the lock that protects element `i` (or be the
    /// only thread able to touch it in this phase).
    #[inline]
    pub unsafe fn add(&self, i: usize, v: f64) {
        debug_assert!(i < self.cells.len());
        #[cfg(feature = "racecheck")]
        crate::racecheck::record(self.track, i, crate::racecheck::AccessKind::Write);
        #[cfg(not(loom))]
        // SAFETY: `i` is in bounds; the caller holds the protecting lock
        // (or is the sole accessor), so the read-modify-write is exclusive.
        unsafe {
            let p = self.cells.get_unchecked(i).get();
            *p += v;
        }
        #[cfg(loom)]
        // SAFETY: loom validates the exclusivity claim; the raw pointer is
        // valid for the closure's duration.
        self.cells[i].with_mut(|p| unsafe { *p += v })
    }

    /// Copies `len` elements from `src[offset..offset+len]` into the same
    /// range of `self` (kernel 9 restricted to one cube's block).
    ///
    /// # Safety
    /// No thread may concurrently access either range.
    #[inline]
    pub unsafe fn copy_from(&self, src: &SharedSlice<f64>, offset: usize, len: usize) {
        debug_assert!(offset + len <= self.cells.len());
        debug_assert!(offset + len <= src.cells.len());
        #[cfg(feature = "racecheck")]
        {
            crate::racecheck::record_range(
                src.track,
                offset..offset + len,
                crate::racecheck::AccessKind::Read,
            );
            crate::racecheck::record_range(
                self.track,
                offset..offset + len,
                crate::racecheck::AccessKind::Write,
            );
        }
        #[cfg(not(loom))]
        // SAFETY: both ranges are in bounds (debug-checked against both
        // lengths), the cells are contiguous (`UnsafeCell<f64>` has `f64`'s
        // layout), the two slices never alias (distinct allocations from
        // `from_vec`), and the caller guarantees no concurrent access.
        unsafe {
            let dst = self.cells[offset].get();
            let s = src.cells[offset].get() as *const f64;
            std::ptr::copy_nonoverlapping(s, dst, len);
        }
        #[cfg(loom)]
        for k in offset..offset + len {
            // SAFETY: loom validates the no-concurrent-access claim per
            // element; the raw pointers are valid inside the closures.
            let v = src.cells[k].with(|p| unsafe { *p });
            self.cells[k].with_mut(|p| unsafe { *p = v });
        }
    }
}

/// A `Sync` cell whose exclusivity is enforced by the solver's phase
/// discipline rather than the borrow checker: during a given phase exactly
/// one thread may hold the `&mut` from [`PhaseCell::get_mut`] (or many may
/// hold [`PhaseCell::get_ref`], but never both), with barriers providing
/// the happens-before edges between phases.
///
/// The cube solver uses one cell per (producer, owner) thread pair for its
/// deterministic spread buffers: the producer fills the cell in loop 1,
/// the owner drains it in loop 3 (after barrier 1), and the producer
/// clears it again at the start of the *next* step's loop 1 (after
/// barriers 2 and 3).
pub struct PhaseCell<T> {
    cell: std::cell::UnsafeCell<T>,
}

// SAFETY: access is raw and the solver's phase discipline guarantees
// exclusion; the type itself adds no thread affinity.
unsafe impl<T: Send> Sync for PhaseCell<T> {}

impl<T> PhaseCell<T> {
    /// Wraps a value.
    pub fn new(v: T) -> Self {
        Self {
            cell: std::cell::UnsafeCell::new(v),
        }
    }

    /// Exclusive access for the current phase.
    ///
    /// # Safety
    /// No other thread may access this cell (read or write) until the
    /// returned borrow ends, and a barrier must separate this phase from
    /// any other thread's accesses.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn get_mut(&self) -> &mut T {
        // SAFETY: the caller guarantees phase-exclusive access.
        unsafe { &mut *self.cell.get() }
    }

    /// Shared read access for the current phase.
    ///
    /// # Safety
    /// No thread may mutate this cell until the returned borrow ends, and
    /// a barrier must separate this phase from the writer's phase.
    #[inline]
    pub unsafe fn get_ref(&self) -> &T {
        // SAFETY: the caller guarantees no concurrent mutation.
        unsafe { &*self.cell.get() }
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.cell.into_inner()
    }
}

/// The cube-blocked fluid state as shared slices, plus the cube geometry.
/// Built from (and torn back down into) a [`lbm::cube_grid::CubeFluidGrid`].
pub struct SharedCubeGrid {
    pub cdims: lbm::cube_grid::CubeDims,
    pub f: SharedSlice<f64>,
    pub f_new: SharedSlice<f64>,
    pub rho: SharedSlice<f64>,
    pub ux: SharedSlice<f64>,
    pub uy: SharedSlice<f64>,
    pub uz: SharedSlice<f64>,
    pub ueqx: SharedSlice<f64>,
    pub ueqy: SharedSlice<f64>,
    pub ueqz: SharedSlice<f64>,
    pub fx: SharedSlice<f64>,
    pub fy: SharedSlice<f64>,
    pub fz: SharedSlice<f64>,
}

impl SharedCubeGrid {
    /// Wraps a cube grid for shared access.
    pub fn new(grid: lbm::cube_grid::CubeFluidGrid) -> Self {
        let s = Self {
            cdims: grid.cdims,
            f: SharedSlice::from_vec(grid.f),
            f_new: SharedSlice::from_vec(grid.f_new),
            rho: SharedSlice::from_vec(grid.rho),
            ux: SharedSlice::from_vec(grid.ux),
            uy: SharedSlice::from_vec(grid.uy),
            uz: SharedSlice::from_vec(grid.uz),
            ueqx: SharedSlice::from_vec(grid.ueqx),
            ueqy: SharedSlice::from_vec(grid.ueqy),
            ueqz: SharedSlice::from_vec(grid.ueqz),
            fx: SharedSlice::from_vec(grid.fx),
            fy: SharedSlice::from_vec(grid.fy),
            fz: SharedSlice::from_vec(grid.fz),
        };
        #[cfg(feature = "racecheck")]
        {
            s.f.name_for_racecheck("f");
            s.f_new.name_for_racecheck("f_new");
            s.rho.name_for_racecheck("rho");
            s.ux.name_for_racecheck("ux");
            s.uy.name_for_racecheck("uy");
            s.uz.name_for_racecheck("uz");
            s.ueqx.name_for_racecheck("ueqx");
            s.ueqy.name_for_racecheck("ueqy");
            s.ueqz.name_for_racecheck("ueqz");
            s.fx.name_for_racecheck("fx");
            s.fy.name_for_racecheck("fy");
            s.fz.name_for_racecheck("fz");
        }
        s
    }

    /// Unwraps back into the owned cube grid.
    pub fn into_inner(self) -> lbm::cube_grid::CubeFluidGrid {
        lbm::cube_grid::CubeFluidGrid {
            cdims: self.cdims,
            f: self.f.into_vec(),
            f_new: self.f_new.into_vec(),
            rho: self.rho.into_vec(),
            ux: self.ux.into_vec(),
            uy: self.uy.into_vec(),
            uz: self.uz.into_vec(),
            ueqx: self.ueqx.into_vec(),
            ueqy: self.ueqy.into_vec(),
            ueqz: self.ueqz.into_vec(),
            fx: self.fx.into_vec(),
            fy: self.fy.into_vec(),
            fz: self.fz.into_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm::cube_grid::{CubeDims, CubeFluidGrid};
    use lbm::grid::Dims;

    #[test]
    fn from_into_vec_round_trip() {
        let s = SharedSlice::from_vec(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        // SAFETY: single-threaded test, no concurrent access.
        unsafe {
            assert_eq!(s.get(1), 2.0);
            s.set(1, 5.0);
            s.add(2, 0.5);
        }
        assert_eq!(s.into_vec(), vec![1.0, 5.0, 3.5]);
    }

    #[test]
    fn as_mut_slice_gives_safe_access() {
        let mut s = SharedSlice::from_vec(vec![0u64; 4]);
        s.as_mut_slice()[2] = 9;
        assert_eq!(s.into_vec(), vec![0, 0, 9, 0]);
    }

    #[test]
    fn vec3_storage_works() {
        let s = SharedSlice::from_vec(vec![[1.0f64, 2.0, 3.0]; 2]);
        // SAFETY: single-threaded test, no concurrent access.
        unsafe {
            let mut v = s.get(0);
            v[1] += 1.0;
            s.set(0, v);
            assert_eq!(s.get(0), [1.0, 3.0, 3.0]);
        }
    }

    #[test]
    fn shared_grid_round_trip_preserves_data() {
        let cdims = CubeDims::new(Dims::new(4, 4, 4), 2);
        let mut g = CubeFluidGrid::new(cdims);
        for (i, v) in g.f.iter_mut().enumerate() {
            *v = i as f64;
        }
        g.rho[7] = 3.25;
        let shared = SharedCubeGrid::new(g);
        // SAFETY: single-threaded test, no concurrent access.
        unsafe {
            assert_eq!(shared.rho.get(7), 3.25);
            assert_eq!(shared.f.get(10), 10.0);
            shared.ux.set(0, -1.0);
        }
        let back = shared.into_inner();
        assert_eq!(back.rho[7], 3.25);
        assert_eq!(back.ux[0], -1.0);
        assert_eq!(back.f[10], 10.0);
    }

    #[test]
    fn phase_cell_round_trip() {
        let c = PhaseCell::new(Vec::<u32>::new());
        // SAFETY: single-threaded test, no concurrent access.
        unsafe { c.get_mut().push(7) };
        // SAFETY: no writer while the shared borrow lives.
        unsafe { assert_eq!(c.get_ref().as_slice(), &[7]) };
        assert_eq!(c.into_inner(), vec![7]);
    }

    #[test]
    fn concurrent_disjoint_writes_are_visible_after_join() {
        let s = SharedSlice::from_vec(vec![0.0f64; 8]);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = &s;
                scope.spawn(move || {
                    // Each thread owns two disjoint slots.
                    for i in [t, t + 4] {
                        // SAFETY: slot sets {t, t+4} are disjoint across
                        // threads, so each element has a single writer.
                        unsafe { s.set(i, (i + 1) as f64) };
                    }
                });
            }
        });
        let v = s.into_vec();
        assert_eq!(v, (1..=8).map(|i| i as f64).collect::<Vec<_>>());
    }
}
