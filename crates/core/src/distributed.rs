//! Prototype of the paper's first stated future work: extending the
//! LBM-IB solvers "from shared memory manycore systems to extreme-scale
//! distributed memory manycore systems".
//!
//! This solver runs `n_ranks` workers that share **no** fluid state: each
//! rank owns a contiguous slab of x-planes plus two ghost planes of the
//! distribution buffer, and all communication flows through bounded
//! `std::sync::mpsc` messages — the in-process stand-in for MPI:
//!
//! * **halo exchange** — after collision each rank sends its first and
//!   last owned planes to its ring neighbours, so pull streaming can read
//!   upwind populations across rank boundaries;
//! * **structure replication + all-reduce** — every rank holds the whole
//!   (small) fiber sheet and computes its forces redundantly (Table I
//!   shows fiber kernels are ~0.05% of the work); spreading writes only
//!   the rank's own slab, and the velocity interpolation produces partial
//!   sums that are reduced in rank order (deterministically) and broadcast
//!   back, exactly the scheme distributed IB codes use over MPI.
//!
//! The x axis must be periodic (the paper's tunnel is); y/z walls are
//! handled locally by each rank.

use ib::delta::for_each_influence;
use ib::forces::{bending_at, stretching_at};
use ib::sheet::FiberSheet;
use ib::tether::TetherSet;
use lbm::boundary::{moving_wall_correction, CoordRoute, StreamRouter};
use lbm::collision::bgk_collide_node;
use lbm::grid::{wrap_axis, FluidGrid};
use lbm::lattice::{OPPOSITE, Q};
use lbm::macroscopic::node_moments_shifted;
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender as Sender};
use std::time::Duration;

use crate::config::{KernelPlan, SimulationConfig};
use crate::openmp::balanced_ranges;
use crate::profiling::KernelId;
use crate::solver::{RunReport, SolverError};
use crate::state::SimState;
use crate::telemetry::{MetricsRegistry, ThreadSlot};

/// A communication failure observed by one rank mid-step. Converted to a
/// [`SolverError`] (with the observing rank attached) by
/// [`DistributedSolver::try_run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RankFault {
    /// No message from `peer` within the configured `halo_timeout`.
    Timeout { peer: usize },
    /// The channel to/from `peer` is disconnected (peer thread gone).
    PeerGone { peer: usize },
    /// The rank's step loop panicked; caught inside the rank thread so
    /// the slab comes back (contents unspecified mid-step) and the panic
    /// surfaces as [`SolverError::WorkerPanicked`] instead of unwinding
    /// through `join`.
    Panicked,
}

impl RankFault {
    /// Root-cause ordering for multi-rank faults: a panic names the rank
    /// that actually died, a timeout names the rank that first saw the
    /// silence, and disconnects are the cascade everyone else observes.
    fn severity(&self) -> u8 {
        match self {
            RankFault::Panicked => 2,
            RankFault::Timeout { .. } => 1,
            RankFault::PeerGone { .. } => 0,
        }
    }
}

/// Everything one rank owns. `f` carries two ghost planes (local plane 0 =
/// global `x0 − 1`, local plane `w + 1` = global `x1`); all other fields
/// cover only the `w` owned planes.
struct RankData {
    /// Owned global x-planes `x0..x1`.
    x0: usize,
    w: usize,
    /// Distributions with ghosts: `(w + 2) * ny * nz * Q`.
    f: Vec<f64>,
    /// Streamed distributions, owned planes only: `w * ny * nz * Q`.
    f_new: Vec<f64>,
    rho: Vec<f64>,
    ux: Vec<f64>,
    uy: Vec<f64>,
    uz: Vec<f64>,
    ueqx: Vec<f64>,
    ueqy: Vec<f64>,
    ueqz: Vec<f64>,
    fx: Vec<f64>,
    fy: Vec<f64>,
    fz: Vec<f64>,
}

impl RankData {
    /// A structurally valid slab of zeros for `w` planes at `x0` — the
    /// replacement for a slab lost to a panic that escaped the rank
    /// thread's catch. Physically garbage, but it keeps the solver's
    /// "contents unspecified mid-step" failure contract intact.
    fn zeroed(x0: usize, w: usize, plane: usize) -> Self {
        Self {
            x0,
            w,
            f: vec![0.0; (w + 2) * plane * Q],
            f_new: vec![0.0; w * plane * Q],
            rho: vec![0.0; w * plane],
            ux: vec![0.0; w * plane],
            uy: vec![0.0; w * plane],
            uz: vec![0.0; w * plane],
            ueqx: vec![0.0; w * plane],
            ueqy: vec![0.0; w * plane],
            ueqz: vec![0.0; w * plane],
            fx: vec![0.0; w * plane],
            fy: vec![0.0; w * plane],
            fz: vec![0.0; w * plane],
        }
    }
}

/// Messages exchanged between ranks.
enum Msg {
    /// One plane of distributions (`ny * nz * Q` values).
    Halo(Vec<f64>),
    /// Partial interpolated velocities for every fiber node.
    Partial(Vec<[f64; 3]>),
    /// Reduced velocities broadcast back from rank 0.
    Reduced(Vec<[f64; 3]>),
}

/// Channel fabric: `mesh[from][to]`.
struct Fabric {
    tx: Vec<Vec<Sender<Msg>>>,
    rx: Vec<Vec<Receiver<Msg>>>,
}

impl Fabric {
    fn new(n: usize) -> Self {
        let mut tx: Vec<Vec<Sender<Msg>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
        let mut rx: Vec<Vec<Receiver<Msg>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
        for from in 0..n {
            for _to in 0..n {
                let (s, r) = sync_channel(4);
                tx[from].push(s);
                rx[from].push(r);
            }
        }
        // rx[from][to] currently holds the receiver paired with tx[from][to];
        // re-index so rx[to][from] receives what tx[from][to] sends.
        let mut rx_by_dest: Vec<Vec<Option<Receiver<Msg>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for (from, row) in rx.into_iter().enumerate() {
            for (to, r) in row.into_iter().enumerate() {
                rx_by_dest[to][from] = Some(r);
            }
        }
        let rx = rx_by_dest
            .into_iter()
            .map(|row| row.into_iter().map(Option::unwrap).collect())
            .collect();
        Self { tx, rx }
    }
}

/// The distributed-memory prototype solver.
pub struct DistributedSolver {
    pub config: SimulationConfig,
    n_ranks: usize,
    ranks: Vec<RankData>,
    pub sheet: FiberSheet,
    tethers: TetherSet,
    pub step: u64,
    /// When true, [`DistributedSolver::try_run`] attaches per-rank telemetry
    /// (kernel section times plus blocking-receive wait) to its report.
    pub telemetry_enabled: bool,
}

impl DistributedSolver {
    /// Builds the solver, slicing the initial state into rank slabs.
    /// Panics unless the x axis is periodic and every rank gets at least
    /// one plane.
    pub fn new(config: SimulationConfig, n_ranks: usize) -> Self {
        Self::from_state(SimState::new(config), n_ranks)
    }

    /// Builds from an existing flat state.
    pub fn from_state(state: SimState, n_ranks: usize) -> Self {
        let config = state.config;
        assert!(
            config.bc.x.is_periodic(),
            "the distributed decomposition slices the periodic x axis"
        );
        assert!(n_ranks >= 1 && n_ranks <= config.nx, "need 1..=nx ranks");
        let dims = config.dims();
        let plane = dims.ny * dims.nz;
        let ranges = balanced_ranges(dims.nx, n_ranks);
        assert!(
            ranges.iter().all(|r| !r.is_empty()),
            "every rank needs at least one plane"
        );

        let g = &state.fluid;
        let ranks = ranges
            .iter()
            .map(|r| {
                let w = r.len();
                let mut rank = RankData {
                    x0: r.start,
                    w,
                    f: vec![0.0; (w + 2) * plane * Q],
                    f_new: vec![0.0; w * plane * Q],
                    rho: vec![0.0; w * plane],
                    ux: vec![0.0; w * plane],
                    uy: vec![0.0; w * plane],
                    uz: vec![0.0; w * plane],
                    ueqx: vec![0.0; w * plane],
                    ueqy: vec![0.0; w * plane],
                    ueqz: vec![0.0; w * plane],
                    fx: vec![0.0; w * plane],
                    fy: vec![0.0; w * plane],
                    fz: vec![0.0; w * plane],
                };
                for lx in 0..w {
                    let gx = r.start + lx;
                    for yz in 0..plane {
                        let gnode = gx * plane + yz;
                        let lnode = lx * plane + yz;
                        rank.f[(lx + 1) * plane * Q + yz * Q..(lx + 1) * plane * Q + yz * Q + Q]
                            .copy_from_slice(&g.f[gnode * Q..gnode * Q + Q]);
                        rank.f_new[lnode * Q..lnode * Q + Q]
                            .copy_from_slice(&g.f_new[gnode * Q..gnode * Q + Q]);
                        rank.rho[lnode] = g.rho[gnode];
                        rank.ux[lnode] = g.ux[gnode];
                        rank.uy[lnode] = g.uy[gnode];
                        rank.uz[lnode] = g.uz[gnode];
                        rank.ueqx[lnode] = g.ueqx[gnode];
                        rank.ueqy[lnode] = g.ueqy[gnode];
                        rank.ueqz[lnode] = g.ueqz[gnode];
                    }
                }
                rank
            })
            .collect();

        Self {
            config,
            n_ranks,
            ranks,
            sheet: state.sheet,
            tethers: state.tethers,
            step: state.step,
            telemetry_enabled: false,
        }
    }

    /// Like [`DistributedSolver::from_state`] but returns an error instead
    /// of panicking on a non-periodic x axis or a bad rank count.
    pub fn try_from_state(state: SimState, n_ranks: usize) -> Result<Self, SolverError> {
        if !state.config.bc.x.is_periodic() {
            return Err(SolverError::NonPeriodicX);
        }
        if n_ranks == 0 {
            return Err(SolverError::ZeroThreads);
        }
        if n_ranks > state.config.nx {
            return Err(SolverError::TooManyRanks {
                ranks: n_ranks,
                nx: state.config.nx,
            });
        }
        Ok(Self::from_state(state, n_ranks))
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Reassembles the global flat state (gather) for verification/output.
    pub fn to_state(&self) -> SimState {
        let dims = self.config.dims();
        let plane = dims.ny * dims.nz;
        let mut fluid = FluidGrid::new(dims);
        for rank in &self.ranks {
            for lx in 0..rank.w {
                let gx = rank.x0 + lx;
                for yz in 0..plane {
                    let gnode = gx * plane + yz;
                    let lnode = lx * plane + yz;
                    fluid.f[gnode * Q..gnode * Q + Q].copy_from_slice(
                        &rank.f[(lx + 1) * plane * Q + yz * Q..(lx + 1) * plane * Q + yz * Q + Q],
                    );
                    fluid.f_new[gnode * Q..gnode * Q + Q]
                        .copy_from_slice(&rank.f_new[lnode * Q..lnode * Q + Q]);
                    fluid.rho[gnode] = rank.rho[lnode];
                    fluid.ux[gnode] = rank.ux[lnode];
                    fluid.uy[gnode] = rank.uy[lnode];
                    fluid.uz[gnode] = rank.uz[lnode];
                    fluid.ueqx[gnode] = rank.ueqx[lnode];
                    fluid.ueqy[gnode] = rank.ueqy[lnode];
                    fluid.ueqz[gnode] = rank.ueqz[lnode];
                    fluid.fx[gnode] = rank.fx[lnode];
                    fluid.fy[gnode] = rank.fy[lnode];
                    fluid.fz[gnode] = rank.fz[lnode];
                }
            }
        }
        SimState {
            config: self.config,
            fluid,
            sheet: self.sheet.clone(),
            tethers: self.tethers.clone(),
            step: self.step,
        }
    }

    /// Runs `n_steps`, surfacing communication faults as typed errors:
    /// with [`SimulationConfig::halo_timeout`] set, a rank that waits
    /// longer than the timeout on a halo plane or on the velocity
    /// reduction returns [`SolverError::HaloTimeout`]; a disconnected peer
    /// returns [`SolverError::RankDisconnected`]; a rank whose step loop
    /// panics returns [`SolverError::WorkerPanicked`]. On a fault every
    /// rank unwinds at its next receive (its peers stop sending, so the
    /// timeout cascades), the slab and sheet buffers are restored
    /// (contents unspecified mid-step), and the step counter is left
    /// where the last *completed* call put it.
    pub fn try_run(&mut self, n_steps: u64) -> Result<RunReport, SolverError> {
        if n_steps == 0 {
            return Ok(RunReport::default());
        }
        let t0 = std::time::Instant::now();
        let n = self.n_ranks;
        let config = self.config;
        let sheet_template = self.sheet.clone();
        let tethers = self.tethers.clone();
        let fabric = Fabric::new(n);

        let ranks = std::mem::take(&mut self.ranks);
        // Slab layouts survive the move so a rank lost to an escaped panic
        // can be rebuilt as a structurally valid (zeroed) slab below.
        let layouts: Vec<(usize, usize)> = ranks.iter().map(|r| (r.x0, r.w)).collect();
        let plane = config.dims().ny * config.dims().nz;
        let registry = self.telemetry_enabled.then(|| MetricsRegistry::new(n));
        if let Some(registry) = &registry {
            // "cubes" for a rank are its owned x-planes; the sheet is
            // replicated, so every rank owns every fiber.
            for (id, rank) in ranks.iter().enumerate() {
                registry
                    .slot(id)
                    .set_ownership(rank.w as u64, sheet_template.num_fibers as u64);
            }
        }
        let Fabric {
            tx: tx_mesh,
            rx: rx_mesh,
        } = fabric;
        let results: Vec<(RankData, FiberSheet, Result<(), RankFault>)> =
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(n);
                for ((id, rank), rx) in ranks.into_iter().enumerate().zip(rx_mesh) {
                    let tx: Vec<Sender<Msg>> = tx_mesh[id].clone();
                    let sheet = sheet_template.clone();
                    let tethers = tethers.clone();
                    let slot = registry.as_ref().map(|r| r.slot(id));
                    handles.push(scope.spawn(move || {
                        rank_main(id, n, rank, sheet, tethers, config, n_steps, tx, &rx, slot)
                    }));
                }
                // Drop the original sender mesh so a rank that returns
                // early (fault) disconnects its outgoing channels and its
                // peers observe `PeerGone` instead of waiting out their
                // full timeout.
                drop(tx_mesh);
                handles
                    .into_iter()
                    .enumerate()
                    .map(|(id, h)| match h.join() {
                        Ok(result) => result,
                        // `rank_main` catches unwinds, so a failed join
                        // means the panic escaped the catch (e.g. from a
                        // Drop). The slab is gone; hand back a zeroed one
                        // so the solver stays structurally valid, and
                        // surface the typed fault instead of panicking.
                        Err(_) => (
                            RankData::zeroed(layouts[id].0, layouts[id].1, plane),
                            sheet_template.clone(),
                            Err(RankFault::Panicked),
                        ),
                    })
                    .collect()
            });

        // Restore the state unconditionally — also on the failure path, so
        // the solver keeps structurally valid (if physically mid-step)
        // buffers.
        let mut fault: Option<(usize, RankFault)> = None;
        let mut new_ranks = Vec::with_capacity(n);
        let mut sheet_out = None;
        for (id, (rank, sheet, res)) in results.into_iter().enumerate() {
            new_ranks.push(rank);
            // All ranks hold identical replicated sheets; keep rank 0's.
            if sheet_out.is_none() {
                sheet_out = Some(sheet);
            }
            if let Err(f) = res {
                // Keep the most root-cause fault: a panic over the timeout
                // it causes, a timeout over the disconnects it cascades
                // into (see [`RankFault::severity`]).
                if fault
                    .as_ref()
                    .is_none_or(|(_, held)| f.severity() > held.severity())
                {
                    fault = Some((id, f));
                }
            }
        }
        self.ranks = new_ranks;
        // Every rank hands its sheet back even on the failure path; the
        // template only remains if a panic escaped `rank_main`'s catch.
        self.sheet = sheet_out.unwrap_or(sheet_template);

        if let Some((rank, f)) = fault {
            return Err(match f {
                RankFault::Timeout { peer } => SolverError::HaloTimeout { rank, peer },
                RankFault::PeerGone { peer } => SolverError::RankDisconnected { rank, peer },
                RankFault::Panicked => SolverError::WorkerPanicked {
                    thread: rank,
                    phase: "rank-step",
                },
            });
        }
        self.step += n_steps;
        let wall = t0.elapsed();
        Ok(RunReport {
            steps: n_steps,
            wall,
            telemetry: registry.map(|r| r.snapshot("dist", n_steps, wall.as_secs_f64())),
            recovery: None,
        })
    }
}

/// Receives one message, charging the blocked time to the rank's
/// communication-wait accumulators (the distributed analogue of barrier
/// wait: the rank is stalled on a neighbour or on the reduction root).
/// With a `timeout`, a silent or disconnected peer becomes a typed
/// [`RankFault`] instead of an indefinite block.
fn recv_counted(
    rx: &Receiver<Msg>,
    peer: usize,
    timeout: Option<Duration>,
    wait_s: &mut f64,
    waits: &mut u64,
) -> Result<Msg, RankFault> {
    let t0 = std::time::Instant::now();
    let msg = match timeout {
        None => rx.recv().map_err(|_| RankFault::PeerGone { peer })?,
        Some(d) => rx.recv_timeout(d).map_err(|e| match e {
            RecvTimeoutError::Timeout => RankFault::Timeout { peer },
            RecvTimeoutError::Disconnected => RankFault::PeerGone { peer },
        })?,
    };
    *wait_s += t0.elapsed().as_secs_f64();
    *waits += 1;
    Ok(msg)
}

/// One rank's execution: runs the step loop and hands the slab and sheet
/// back even when the loop bailed on a communication fault, so the solver
/// can restore its buffers.
#[allow(clippy::too_many_arguments)]
fn rank_main(
    id: usize,
    n_ranks: usize,
    mut rank: RankData,
    mut sheet: FiberSheet,
    tethers: TetherSet,
    config: SimulationConfig,
    n_steps: u64,
    tx: Vec<Sender<Msg>>,
    rx: &[Receiver<Msg>],
    slot: Option<&ThreadSlot>,
) -> (RankData, FiberSheet, Result<(), RankFault>) {
    // Catch a panicking step loop inside the rank thread: the slab and
    // sheet come back (contents unspecified mid-step, same contract as a
    // communication fault), the panic surfaces as a typed fault, and
    // returning drops `tx` so peers observe the disconnect and unwind
    // instead of waiting out their full timeout.
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rank_steps(
            id, n_ranks, &mut rank, &mut sheet, &tethers, config, n_steps, &tx, rx, slot,
        )
    }))
    .unwrap_or(Err(RankFault::Panicked));
    (rank, sheet, res)
}

/// The rank step loop; `Err` means a receive timed out or a peer vanished
/// and this rank stopped mid-step.
#[allow(clippy::too_many_arguments)]
fn rank_steps(
    id: usize,
    n_ranks: usize,
    rank: &mut RankData,
    sheet: &mut FiberSheet,
    tethers: &TetherSet,
    config: SimulationConfig,
    n_steps: u64,
    tx: &[Sender<Msg>],
    rx: &[Receiver<Msg>],
    slot: Option<&ThreadSlot>,
) -> Result<(), RankFault> {
    let dims = config.dims();
    let plane = dims.ny * dims.nz;
    let topo = sheet.topology();
    let nn = topo.nodes_per_fiber;
    let tau = config.tau;
    let bc = config.bc;
    let delta = config.delta;
    let timeout = config.halo_timeout;
    let area = sheet.area_element();
    let router = StreamRouter::new(dims, &bc);
    let left = (id + n_ranks - 1) % n_ranks;
    let right = (id + 1) % n_ranks;
    let x0 = rank.x0;
    let w = rank.w;
    let x1 = x0 + w; // exclusive

    // Local plane index of a global x that this rank can see (owned or
    // ghost), or None.
    let local_plane = |gx: usize| -> Option<usize> {
        if gx >= x0 && gx < x1 {
            Some(gx - x0 + 1)
        } else if gx == wrap_axis(x0, -1, dims.nx) {
            Some(0)
        } else if gx == wrap_axis(x1 - 1, 1, dims.nx) {
            Some(w + 1)
        } else {
            None
        }
    };

    // Per-rank telemetry: kernel section times plus blocking-receive wait,
    // flushed to the registry slot once after the step loop.
    let mut busy = [0.0f64; KernelId::COUNT];
    let mut comm_wait_s = 0.0f64;
    let mut comm_waits = 0u64;

    for _step in 0..n_steps {
        // Kernels 1–3 (+ tethers): replicated on every rank.
        let mut mark = std::time::Instant::now();
        for fiber in 0..topo.num_fibers {
            for node in 0..nn {
                let i = fiber * nn + node;
                sheet.bending[i] = bending_at(&topo, &sheet.pos, fiber, node);
            }
        }
        busy[KernelId::BendingForce.index()] += mark.elapsed().as_secs_f64();
        mark = std::time::Instant::now();
        for fiber in 0..topo.num_fibers {
            for node in 0..nn {
                let i = fiber * nn + node;
                sheet.stretching[i] = stretching_at(&topo, &sheet.pos, fiber, node);
            }
        }
        busy[KernelId::StretchingForce.index()] += mark.elapsed().as_secs_f64();
        mark = std::time::Instant::now();
        for i in 0..sheet.n() {
            for a in 0..3 {
                sheet.elastic[i][a] = sheet.bending[i][a] + sheet.stretching[i][a];
            }
        }
        tethers.apply(sheet);
        busy[KernelId::ElasticForce.index()] += mark.elapsed().as_secs_f64();

        // Kernel 4: reset to body force, spread only into owned planes.
        mark = std::time::Instant::now();
        rank.fx.fill(config.body_force[0]);
        rank.fy.fill(config.body_force[1]);
        rank.fz.fill(config.body_force[2]);
        for i in 0..sheet.n() {
            let e = sheet.elastic[i];
            let f_l = [e[0] * area, e[1] * area, e[2] * area];
            if f_l == [0.0, 0.0, 0.0] {
                continue;
            }
            for_each_influence(sheet.pos[i], delta, dims, &bc, |inf| {
                if inf.x >= rank.x0 && inf.x < x1 {
                    let lnode = (inf.x - rank.x0) * plane + inf.y * dims.nz + inf.z;
                    rank.fx[lnode] += f_l[0] * inf.weight;
                    rank.fy[lnode] += f_l[1] * inf.weight;
                    rank.fz[lnode] += f_l[2] * inf.weight;
                }
            });
        }
        busy[KernelId::SpreadForce.index()] += mark.elapsed().as_secs_f64();

        mark = std::time::Instant::now();
        match config.plan {
            KernelPlan::Split => {
                // Kernel 5: collision on owned planes.
                for lx in 0..w {
                    for yz in 0..plane {
                        let lnode = lx * plane + yz;
                        let fi = (lx + 1) * plane * Q + yz * Q;
                        let ueq = [rank.ueqx[lnode], rank.ueqy[lnode], rank.ueqz[lnode]];
                        let rho = rank.rho[lnode];
                        bgk_collide_node(&mut rank.f[fi..fi + Q], rho, ueq, [0.0; 3], tau);
                    }
                }
            }
            KernelPlan::Fused => {
                // Fused kernels 5+6, slab-local part: collide every owned
                // node in registers and push the results straight into the
                // owned slots of f_new. Only the two boundary planes write
                // their post-collision values back into rank.f — the halo
                // exchange ships exactly those planes to the neighbours.
                // Populations whose destination plane belongs to another
                // rank are dropped here; the owning rank reconstructs them
                // from its ghost planes after the exchange (see the fix-up
                // pass below).
                for lx in 0..w {
                    let gx = rank.x0 + lx;
                    let boundary = lx == 0 || lx == w - 1;
                    for y in 0..dims.ny {
                        for z in 0..dims.nz {
                            let yz = y * dims.nz + z;
                            let fi = ((lx + 1) * plane + yz) * Q;
                            let lnode = lx * plane + yz;
                            let mut regs = [0.0f64; Q];
                            regs.copy_from_slice(&rank.f[fi..fi + Q]);
                            let ueq = [rank.ueqx[lnode], rank.ueqy[lnode], rank.ueqz[lnode]];
                            bgk_collide_node(&mut regs, rank.rho[lnode], ueq, [0.0; 3], tau);
                            if boundary {
                                rank.f[fi..fi + Q].copy_from_slice(&regs);
                            }
                            rank.f_new[lnode * Q] = regs[0];
                            for i in 1..Q {
                                match router.route(gx, y, z, i) {
                                    CoordRoute::Neighbor(d) => {
                                        if d[0] >= rank.x0 && d[0] < x1 {
                                            let dnode =
                                                (d[0] - rank.x0) * plane + d[1] * dims.nz + d[2];
                                            rank.f_new[dnode * Q + i] = regs[i];
                                        }
                                    }
                                    CoordRoute::BounceBack {
                                        opposite,
                                        wall_velocity,
                                    } => {
                                        // x is periodic here, so walls are
                                        // y/z only: the reflected slot is
                                        // the origin node's own — owned.
                                        rank.f_new[lnode * Q + opposite] =
                                            regs[i] - moving_wall_correction(i, wall_velocity);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        let collide_slot = match config.plan {
            KernelPlan::Split => KernelId::Collision,
            KernelPlan::Fused => KernelId::FusedCollideStream,
        };
        busy[collide_slot.index()] += mark.elapsed().as_secs_f64();

        // Halo exchange: my first owned plane → left neighbour's right
        // ghost; my last owned plane → right neighbour's left ghost.
        let first_plane = rank.f[plane * Q..2 * plane * Q].to_vec();
        let last_plane = rank.f[w * plane * Q..(w + 1) * plane * Q].to_vec();
        if n_ranks == 1 {
            rank.f[(w + 1) * plane * Q..(w + 2) * plane * Q].copy_from_slice(&first_plane);
            rank.f[0..plane * Q].copy_from_slice(&last_plane);
        } else {
            // Chaos-test failpoints (empty unless the `faultinject`
            // feature is on): a delayed or silently dropped halo send.
            if let Some(d) = crate::faultinject::halo_send_delay(id) {
                std::thread::sleep(d);
            }
            if !crate::faultinject::drop_halo_send(id) {
                tx[left]
                    .send(Msg::Halo(first_plane))
                    .map_err(|_| RankFault::PeerGone { peer: left })?;
                tx[right]
                    .send(Msg::Halo(last_plane))
                    .map_err(|_| RankFault::PeerGone { peer: right })?;
            }
            // Receive: from right neighbour their first plane (my right
            // ghost), from left neighbour their last plane (my left ghost).
            match recv_counted(
                &rx[right],
                right,
                timeout,
                &mut comm_wait_s,
                &mut comm_waits,
            )? {
                Msg::Halo(p) => {
                    rank.f[(w + 1) * plane * Q..(w + 2) * plane * Q].copy_from_slice(&p)
                }
                _ => panic!("protocol error: expected halo"),
            }
            match recv_counted(&rx[left], left, timeout, &mut comm_wait_s, &mut comm_waits)? {
                Msg::Halo(p) => rank.f[0..plane * Q].copy_from_slice(&p),
                _ => panic!("protocol error: expected halo"),
            }
        }

        mark = std::time::Instant::now();
        match config.plan {
            KernelPlan::Split => {
                // Kernel 6: pull streaming into owned f_new, reading ghosts.
                for lx in 0..w {
                    let gx = rank.x0 + lx;
                    for y in 0..dims.ny {
                        for z in 0..dims.nz {
                            let lnode = lx * plane + y * dims.nz + z;
                            let out = &mut rank.f_new[lnode * Q..lnode * Q + Q];
                            // Rest population.
                            out[0] = rank.f[((lx + 1) * plane + y * dims.nz + z) * Q];
                            for i in 1..Q {
                                let o = OPPOSITE[i];
                                match router.route(gx, y, z, o) {
                                    CoordRoute::Neighbor(d) => {
                                        let lp = local_plane(d[0]).expect("upwind plane visible");
                                        let src = (lp * plane + d[1] * dims.nz + d[2]) * Q + i;
                                        out[i] = rank.f[src];
                                    }
                                    CoordRoute::BounceBack { wall_velocity, .. } => {
                                        let own = ((lx + 1) * plane + y * dims.nz + z) * Q + o;
                                        out[i] =
                                            rank.f[own] - moving_wall_correction(o, wall_velocity);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            KernelPlan::Fused => {
                // Fused kernels 5+6, ghost fix-up: populations pushed
                // toward my boundary planes by neighbouring ranks never
                // arrived (the push above is rank-local), but their
                // post-collision sources now sit in my ghost planes. Pull
                // exactly those entries — every other slot of f_new was
                // already written by the push. With one rank the push
                // covered the wrap too, and this pass matches nothing.
                let boundary_planes: &[usize] = if w == 1 { &[0] } else { &[0, w - 1] };
                for &lx in boundary_planes {
                    let gx = rank.x0 + lx;
                    for y in 0..dims.ny {
                        for z in 0..dims.nz {
                            let lnode = lx * plane + y * dims.nz + z;
                            for i in 1..Q {
                                let o = OPPOSITE[i];
                                if let CoordRoute::Neighbor(d) = router.route(gx, y, z, o) {
                                    if d[0] < rank.x0 || d[0] >= x1 {
                                        let lp = local_plane(d[0]).expect("upwind plane visible");
                                        let src = (lp * plane + d[1] * dims.nz + d[2]) * Q + i;
                                        rank.f_new[lnode * Q + i] = rank.f[src];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        let stream_slot = match config.plan {
            KernelPlan::Split => KernelId::Stream,
            KernelPlan::Fused => KernelId::FusedCollideStream,
        };
        busy[stream_slot.index()] += mark.elapsed().as_secs_f64();

        // Kernel 7: macroscopic update on owned planes.
        mark = std::time::Instant::now();
        for lnode in 0..w * plane {
            let force = [rank.fx[lnode], rank.fy[lnode], rank.fz[lnode]];
            let (rho, u, ueq) =
                node_moments_shifted(&rank.f_new[lnode * Q..lnode * Q + Q], force, tau);
            rank.rho[lnode] = rho;
            rank.ux[lnode] = u[0];
            rank.uy[lnode] = u[1];
            rank.uz[lnode] = u[2];
            rank.ueqx[lnode] = ueq[0];
            rank.ueqy[lnode] = ueq[1];
            rank.ueqz[lnode] = ueq[2];
        }
        busy[KernelId::UpdateVelocity.index()] += mark.elapsed().as_secs_f64();

        // Kernel 8: partial interpolation over owned planes, then a
        // deterministic all-reduce (rank order) through rank 0. The local
        // work is charged to MoveFibers; time blocked in the reduction is
        // communication wait.
        mark = std::time::Instant::now();
        let mut partial = vec![[0.0f64; 3]; sheet.n()];
        for (i, p) in sheet.pos.iter().enumerate() {
            let mut u = [0.0; 3];
            for_each_influence(*p, delta, dims, &bc, |inf| {
                if inf.x >= rank.x0 && inf.x < x1 {
                    let lnode = (inf.x - rank.x0) * plane + inf.y * dims.nz + inf.z;
                    u[0] += rank.ux[lnode] * inf.weight;
                    u[1] += rank.uy[lnode] * inf.weight;
                    u[2] += rank.uz[lnode] * inf.weight;
                }
            });
            partial[i] = u;
        }
        busy[KernelId::MoveFibers.index()] += mark.elapsed().as_secs_f64();
        let reduced = if n_ranks == 1 {
            partial
        } else if id == 0 {
            let mut acc = partial;
            // Sum in rank order for determinism.
            let mut others: Vec<(usize, Vec<[f64; 3]>)> = Vec::with_capacity(n_ranks - 1);
            for r in 1..n_ranks {
                match recv_counted(&rx[r], r, timeout, &mut comm_wait_s, &mut comm_waits)? {
                    Msg::Partial(p) => others.push((r, p)),
                    _ => panic!("protocol error: expected partial"),
                }
            }
            others.sort_by_key(|(r, _)| *r);
            for (_, p) in others {
                for (a, b) in acc.iter_mut().zip(p) {
                    a[0] += b[0];
                    a[1] += b[1];
                    a[2] += b[2];
                }
            }
            for r in 1..n_ranks {
                tx[r]
                    .send(Msg::Reduced(acc.clone()))
                    .map_err(|_| RankFault::PeerGone { peer: r })?;
            }
            acc
        } else {
            tx[0]
                .send(Msg::Partial(partial))
                .map_err(|_| RankFault::PeerGone { peer: 0 })?;
            match recv_counted(&rx[0], 0, timeout, &mut comm_wait_s, &mut comm_waits)? {
                Msg::Reduced(v) => v,
                _ => panic!("protocol error: expected reduced"),
            }
        };
        mark = std::time::Instant::now();
        for (p, u) in sheet.pos.iter_mut().zip(&reduced) {
            p[0] += u[0];
            p[1] += u[1];
            p[2] += u[2];
        }
        busy[KernelId::MoveFibers.index()] += mark.elapsed().as_secs_f64();

        // Kernel 9: copy owned f_new back into the (ghosted) f buffer.
        mark = std::time::Instant::now();
        for lx in 0..w {
            let dst = (lx + 1) * plane * Q;
            let src = lx * plane * Q;
            rank.f[dst..dst + plane * Q].copy_from_slice(&rank.f_new[src..src + plane * Q]);
        }
        busy[KernelId::CopyDistributions.index()] += mark.elapsed().as_secs_f64();
    }

    if let Some(slot) = slot {
        slot.store_kernel_seconds(&busy);
        slot.store_barrier_wait(comm_wait_s, comm_waits);
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialSolver;
    use crate::verify::compare_states;

    #[test]
    fn distributed_matches_sequential() {
        let cfg = SimulationConfig::quick_test();
        let mut seq = SequentialSolver::new(cfg);
        seq.run(8);
        for ranks in [1, 2, 3, 4] {
            let mut dist = DistributedSolver::new(cfg, ranks);
            dist.try_run(8).unwrap();
            let d = compare_states(&seq.state, &dist.to_state());
            assert!(d.within(1e-11), "{ranks} ranks: {d:?}");
        }
    }

    #[test]
    fn split_runs_continue_exactly() {
        let cfg = SimulationConfig::quick_test();
        let mut once = DistributedSolver::new(cfg, 3);
        once.try_run(6).unwrap();
        let mut twice = DistributedSolver::new(cfg, 3);
        twice.try_run(3).unwrap();
        twice.try_run(3).unwrap();
        let d = compare_states(&once.to_state(), &twice.to_state());
        assert!(d.within(1e-12), "{d:?}");
        assert_eq!(once.step, twice.step);
    }

    #[test]
    fn fused_plan_is_bit_identical_to_split() {
        let cfg = SimulationConfig::quick_test();
        let mut fused_cfg = cfg;
        fused_cfg.plan = KernelPlan::Fused;
        for ranks in [1, 2, 3, 4] {
            let mut split = DistributedSolver::new(cfg, ranks);
            let split_report = split.try_run(8).unwrap();
            let mut fused = DistributedSolver::new(fused_cfg, ranks);
            let fused_report = fused.try_run(8).unwrap();
            assert_eq!(split_report.steps, 8);
            assert_eq!(fused_report.steps, 8);
            let s = split.to_state();
            let f = fused.to_state();
            assert_eq!(s.fluid.f, f.fluid.f, "{ranks} ranks: f diverged");
            assert_eq!(s.fluid.ux, f.fluid.ux, "{ranks} ranks: ux diverged");
            assert_eq!(s.sheet.pos, f.sheet.pos, "{ranks} ranks: sheet diverged");
        }
    }

    #[test]
    #[should_panic(expected = "periodic x axis")]
    fn non_periodic_x_rejected() {
        let mut cfg = SimulationConfig::quick_test();
        cfg.bc.x = lbm::boundary::AxisBoundary::no_slip();
        cfg.sheet.center[0] = 12.0;
        DistributedSolver::new(cfg, 2);
    }

    #[test]
    fn halo_timeout_does_not_trip_on_healthy_runs() {
        let mut cfg = SimulationConfig::quick_test();
        cfg.halo_timeout = Some(Duration::from_secs(30));
        let mut dist = DistributedSolver::new(cfg, 3);
        let report = dist.try_run(4).expect("healthy run");
        assert_eq!(report.steps, 4);
        assert_eq!(dist.step, 4);
        assert!(!dist.to_state().has_nan());
    }

    #[test]
    fn gather_round_trip_before_any_step() {
        let cfg = SimulationConfig::quick_test();
        let reference = crate::state::SimState::new(cfg);
        let dist = DistributedSolver::new(cfg, 4);
        let gathered = dist.to_state();
        assert_eq!(gathered.fluid.f, reference.fluid.f);
        assert_eq!(gathered.fluid.rho, reference.fluid.rho);
    }
}
