//! The OpenMP-style parallel solver of Section IV, built on the local
//! scoped [`ThreadPool`] (the workspace's rayon stand-in).
//!
//! Fluid kernels mirror Algorithm 2: the grid is cut into contiguous
//! x-slabs (static schedule, one slab per thread), each slab handled by one
//! task; the implicit join at the end of each parallel region is OpenMP's
//! implicit barrier. Fiber kernels mirror Algorithm 3 (parallel over
//! fibers). Force spreading is a two-phase produce/apply: fiber chunks
//! stage (node, force) contributions into per-(chunk, slab) buckets, then
//! slab owners apply them in chunk order — deterministic (bit-exact
//! reruns, and independent of thread count and schedule), unlike an
//! atomic-add scatter whose per-node addition order depends on timing.
//!
//! Every region records per-thread busy time, feeding the
//! [`ImbalanceTracker`] that reproduces Table II's load-imbalance column.

use std::ops::Range;
use std::time::Instant;

use ib::forces::{bending_at, stretching_at};
use ib::interp::{interpolate_velocity, VelocityField};
use ib::spread::{spread_node, ForceSink};
use lbm::boundary::{moving_wall_correction, stream_pull_routed_node, CoordRoute, StreamRouter};
use lbm::collision::bgk_collide_node;
use lbm::fused::collide_to_registers;
use lbm::grid::Dims;
use lbm::lattice::Q;
use lbm::macroscopic::node_moments_shifted;

use crate::atomicf64::{as_atomic_f64, AtomicF64};
use crate::config::KernelPlan;
use crate::profiling::{ImbalanceTracker, KernelId, KernelProfile};
use crate::solver::{RunReport, SolverError};
use crate::state::SimState;
use crate::telemetry::MetricsRegistry;
use crate::threadpool::{current_thread_index, ThreadPool};

/// Splits `0..n` into `chunks` balanced contiguous ranges (static schedule).
/// The first `n % chunks` ranges get one extra element; empty ranges are
/// returned when `chunks > n` so thread identity is stable.
pub fn balanced_ranges(n: usize, chunks: usize) -> Vec<Range<usize>> {
    assert!(chunks > 0);
    let base = n / chunks;
    let rem = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for t in 0..chunks {
        let len = base + usize::from(t < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Splits a mutable slice into the sub-slices described by `ranges`
/// (which must be contiguous, ascending and within bounds).
fn split_by_ranges<'a, T>(mut slice: &'a mut [T], ranges: &[Range<usize>]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut consumed = 0;
    for r in ranges {
        debug_assert!(r.start == consumed, "ranges must tile the slice");
        let (head, tail) = slice.split_at_mut(r.end - consumed);
        out.push(head);
        slice = tail;
        consumed = r.end;
    }
    out
}

/// Read-only view of the fluid velocity for the interpolation kernel.
struct GridView<'a> {
    dims: Dims,
    ux: &'a [f64],
    uy: &'a [f64],
    uz: &'a [f64],
}

impl VelocityField for GridView<'_> {
    #[inline]
    fn velocity_at(&self, x: usize, y: usize, z: usize) -> [f64; 3] {
        let n = self.dims.idx(x, y, z);
        [self.ux[n], self.uy[n], self.uz[n]]
    }
}

/// One staged spread contribution: flat node index plus the force delta.
type SpreadEntry = (u32, [f64; 3]);

/// Force sink that stages contributions into per-destination-slab buckets
/// instead of touching the grid, for the deterministic two-phase spread of
/// kernel 4. The slab of a node index under [`balanced_ranges`]`(n, k)` is
/// computed in closed form.
struct BucketSink<'a> {
    dims: Dims,
    /// `n / k` and `n % k` of the slab decomposition.
    base: usize,
    rem: usize,
    buckets: &'a mut [Vec<SpreadEntry>],
}

impl ForceSink for BucketSink<'_> {
    #[inline]
    fn add_force(&mut self, x: usize, y: usize, z: usize, df: [f64; 3]) {
        let idx = self.dims.idx(x, y, z);
        // First `rem` slabs hold `base + 1` nodes, the rest `base` (when
        // `base == 0`, every index falls in the first branch).
        let slab = if idx < (self.base + 1) * self.rem {
            idx / (self.base + 1)
        } else {
            self.rem + (idx - (self.base + 1) * self.rem) / self.base
        };
        self.buckets[slab].push((idx as u32, df));
    }
}

/// Loop scheduling policy, mirroring OpenMP's `schedule` clause. The paper
/// used static scheduling and notes that dynamic scheduling "obtained the
/// same performance"; both are provided.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Schedule {
    /// One contiguous chunk per thread (OpenMP `schedule(static)`).
    #[default]
    Static,
    /// `factor` chunks per thread, work-stolen by idle workers
    /// (OpenMP `schedule(dynamic)` with a coarse chunk size).
    Dynamic { factor: usize },
}

/// The OpenMP-style solver: state + a dedicated thread pool.
pub struct OpenMpSolver {
    pub state: SimState,
    pub profile: KernelProfile,
    pub imbalance: ImbalanceTracker,
    /// Loop scheduling policy (static by default, as in the paper).
    pub schedule: Schedule,
    /// When true, [`OpenMpSolver::run`] attaches per-thread telemetry
    /// (derived from the imbalance tracker) to its report.
    pub telemetry_enabled: bool,
    pool: ThreadPool,
    n_threads: usize,
}

impl OpenMpSolver {
    /// Creates the solver with `n_threads` worker threads.
    pub fn new(config: crate::config::SimulationConfig, n_threads: usize) -> Self {
        Self::from_state(SimState::new(config), n_threads)
    }

    /// Wraps an existing state.
    pub fn from_state(state: SimState, n_threads: usize) -> Self {
        assert!(n_threads > 0, "need at least one thread");
        let pool = ThreadPool::new(n_threads, "lbmib-omp");
        Self {
            state,
            profile: KernelProfile::new(),
            imbalance: ImbalanceTracker::new(n_threads),
            schedule: Schedule::default(),
            telemetry_enabled: false,
            pool,
            n_threads,
        }
    }

    /// Like [`OpenMpSolver::from_state`] but returns an error instead of
    /// panicking on a zero thread count.
    pub fn try_from_state(state: SimState, n_threads: usize) -> Result<Self, SolverError> {
        if n_threads == 0 {
            return Err(SolverError::ZeroThreads);
        }
        Ok(Self::from_state(state, n_threads))
    }

    /// Number of worker threads.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Number of chunks each parallel loop is cut into under the current
    /// scheduling policy.
    fn n_chunks(&self) -> usize {
        match self.schedule {
            Schedule::Static => self.n_threads,
            Schedule::Dynamic { factor } => self.n_threads * factor.max(1),
        }
    }

    /// One full time step: Algorithm 1's kernels, each parallelised per
    /// Algorithms 2–3 (kernels 5+6 as one fused region under
    /// [`KernelPlan::Fused`]).
    pub fn step(&mut self) {
        self.fiber_force_kernels();
        self.spread_kernel();
        match self.state.config.plan {
            KernelPlan::Split => {
                self.collision_kernel();
                self.stream_kernel();
            }
            KernelPlan::Fused => self.fused_kernel(),
        }
        self.update_velocity_kernel();
        self.move_fibers_kernel();
        self.copy_kernel();
        self.state.step += 1;
    }

    /// Runs `n` time steps and reports the wall time spent.
    pub fn run(&mut self, n: u64) -> RunReport {
        if !self.telemetry_enabled {
            return crate::solver::timed_steps(n, || self.step());
        }
        // Per-thread telemetry is the imbalance tracker's delta over this
        // call: busy seconds per kernel, and the wait each thread would
        // spend at the region-closing (implicit OpenMP) barriers.
        let busy0 = self.imbalance.busy_by_thread().to_vec();
        let wait0 = self.imbalance.wait_by_thread().to_vec();
        let regions0 = self.imbalance.regions();
        let mut report = crate::solver::timed_steps(n, || self.step());
        let registry = MetricsRegistry::new(self.n_threads);
        let region_waits = self.imbalance.regions() - regions0;
        let fiber_ranges = balanced_ranges(self.state.sheet.num_fibers, self.n_threads);
        for t in 0..self.n_threads {
            let slot = registry.slot(t);
            let delta: [f64; KernelId::COUNT] =
                std::array::from_fn(|k| self.imbalance.busy_by_thread()[t][k] - busy0[t][k]);
            slot.store_kernel_seconds(&delta);
            slot.store_barrier_wait(self.imbalance.wait_by_thread()[t] - wait0[t], region_waits);
            slot.set_ownership(0, fiber_ranges[t].len() as u64);
        }
        report.telemetry = Some(registry.snapshot("omp", n, report.wall.as_secs_f64()));
        report
    }

    /// Kernels 1–3: parallel over fibers (first loop of Algorithm 3); the
    /// cross-fiber pass is folded into the per-node gather, so a single
    /// region per kernel suffices.
    fn fiber_force_kernels(&mut self) {
        let n_threads = self.n_threads;
        let n_chunks = self.n_chunks();
        let topo = self.state.sheet.topology();
        let nn = topo.nodes_per_fiber;
        let fiber_ranges = balanced_ranges(topo.num_fibers, n_chunks);
        let node_ranges: Vec<Range<usize>> = fiber_ranges
            .iter()
            .map(|r| r.start * nn..r.end * nn)
            .collect();

        // Kernel 1: bending.
        {
            let sheet = &mut self.state.sheet;
            let pos_snapshot = sheet.pos.clone();
            let chunks = split_by_ranges(&mut sheet.bending, &node_ranges);
            let items: Vec<_> = chunks
                .into_iter()
                .zip(fiber_ranges.iter().cloned())
                .collect();
            let pos = &pos_snapshot;
            Self::region_static(
                &self.pool,
                &mut self.profile,
                &mut self.imbalance,
                n_threads,
                KernelId::BendingForce,
                items,
                |_t, (out, fibers)| {
                    for (i, fiber) in fibers.clone().enumerate() {
                        for node in 0..nn {
                            out[i * nn + node] = bending_at(&topo, pos, fiber, node);
                        }
                    }
                },
            );
        }

        // Kernel 2: stretching.
        {
            let sheet = &mut self.state.sheet;
            let pos_snapshot = sheet.pos.clone();
            let chunks = split_by_ranges(&mut sheet.stretching, &node_ranges);
            let items: Vec<_> = chunks
                .into_iter()
                .zip(fiber_ranges.iter().cloned())
                .collect();
            let pos = &pos_snapshot;
            Self::region_static(
                &self.pool,
                &mut self.profile,
                &mut self.imbalance,
                n_threads,
                KernelId::StretchingForce,
                items,
                |_t, (out, fibers)| {
                    for (i, fiber) in fibers.clone().enumerate() {
                        for node in 0..nn {
                            out[i * nn + node] = stretching_at(&topo, pos, fiber, node);
                        }
                    }
                },
            );
        }

        // Kernel 3: elastic = bending + stretching, then tethers (cheap,
        // applied inside the same timed kernel, sequentially).
        {
            let t0 = Instant::now();
            let sheet = &mut self.state.sheet;
            let bending = &sheet.bending;
            let stretching = &sheet.stretching;
            let chunks = split_by_ranges(&mut sheet.elastic, &node_ranges);
            let items: Vec<_> = chunks
                .into_iter()
                .zip(node_ranges.iter().cloned())
                .collect();
            let busy: Vec<AtomicF64> = (0..n_threads).map(|_| AtomicF64::new(0.0)).collect();
            self.pool.scope(|scope| {
                for (out, nodes) in items {
                    let busy = &busy;
                    scope.spawn(move || {
                        let b0 = Instant::now();
                        for (i, node) in nodes.enumerate() {
                            for a in 0..3 {
                                out[i][a] = bending[node][a] + stretching[node][a];
                            }
                        }
                        let w = current_thread_index().unwrap_or(0);
                        busy[w].fetch_add(b0.elapsed().as_secs_f64());
                    });
                }
            });
            let tethers = self.state.tethers.clone();
            tethers.apply(&mut self.state.sheet);
            self.profile.record(KernelId::ElasticForce, t0.elapsed());
            let busy_vals: Vec<f64> = busy.iter().map(|b| b.load()).collect();
            self.imbalance
                .record_region(KernelId::ElasticForce, &busy_vals);
        }
    }

    /// Helper mirroring [`OpenMpSolver::region`] usable while `self.state`
    /// is partially borrowed.
    fn region_static<I, F>(
        pool: &ThreadPool,
        profile: &mut KernelProfile,
        imbalance: &mut ImbalanceTracker,
        n_threads: usize,
        kernel: KernelId,
        items: Vec<I>,
        work: F,
    ) where
        I: Send,
        F: Fn(usize, I) + Sync,
    {
        // Busy time is attributed to the *worker thread* that ran each
        // chunk, so the accounting works for both static (1 chunk/thread)
        // and dynamic (many stolen chunks) schedules.
        let busy: Vec<AtomicF64> = (0..n_threads).map(|_| AtomicF64::new(0.0)).collect();
        let t0 = Instant::now();
        pool.scope(|scope| {
            for (t, item) in items.into_iter().enumerate() {
                let busy = &busy;
                let work = &work;
                scope.spawn(move || {
                    let b0 = Instant::now();
                    work(t, item);
                    let w = current_thread_index().unwrap_or(0);
                    busy[w].fetch_add(b0.elapsed().as_secs_f64());
                });
            }
        });
        profile.record(kernel, t0.elapsed());
        let busy_vals: Vec<f64> = busy.iter().map(|b| b.load()).collect();
        imbalance.record_region(kernel, &busy_vals);
    }

    /// Kernel 4: clear to body force in parallel slabs, then spread the
    /// fiber forces in two deterministic phases — fiber chunks *produce*
    /// per-(chunk, slab) contribution buckets, slab owners *apply* them in
    /// chunk order. Chunks are ascending contiguous fiber ranges, so the
    /// per-node addition order is global fiber order: bit-identical to the
    /// sequential spread, for every thread count and schedule.
    fn spread_kernel(&mut self) {
        let n_threads = self.n_threads;
        let n_chunks = self.n_chunks();
        let t0 = Instant::now();
        let dims = self.state.config.dims();
        let bc = self.state.config.bc;
        let delta = self.state.config.delta;
        let body = self.state.config.body_force;
        let n = dims.n();
        let node_ranges = balanced_ranges(n, n_chunks);

        // Phase A: reset the force arrays to the body force (parallel fill).
        {
            let fluid = &mut self.state.fluid;
            let fx = split_by_ranges(&mut fluid.fx, &node_ranges);
            let fy = split_by_ranges(&mut fluid.fy, &node_ranges);
            let fz = split_by_ranges(&mut fluid.fz, &node_ranges);
            let items: Vec<_> = fx.into_iter().zip(fy).zip(fz).collect();
            self.pool.scope(|scope| {
                for ((cx, cy), cz) in items {
                    scope.spawn(move || {
                        cx.fill(body[0]);
                        cy.fill(body[1]);
                        cz.fill(body[2]);
                    });
                }
            });
        }

        let busy: Vec<AtomicF64> = (0..n_threads).map(|_| AtomicF64::new(0.0)).collect();
        // Phase B1 (produce): parallel over fiber chunks; each chunk owns
        // one row of buckets, keyed by destination slab.
        let mut buckets: Vec<Vec<Vec<SpreadEntry>>> =
            (0..n_chunks).map(|_| vec![Vec::new(); n_chunks]).collect();
        {
            let sheet = &self.state.sheet;
            let area = sheet.area_element();
            let nn = sheet.nodes_per_fiber;
            let fiber_ranges = balanced_ranges(sheet.num_fibers, n_chunks);
            let pos = &sheet.pos;
            let elastic = &sheet.elastic;
            let base = n / n_chunks;
            let rem = n % n_chunks;
            self.pool.scope(|scope| {
                for (row, fibers) in buckets.iter_mut().zip(fiber_ranges) {
                    let busy = &busy;
                    scope.spawn(move || {
                        let b0 = Instant::now();
                        let mut sink = BucketSink {
                            dims,
                            base,
                            rem,
                            buckets: row,
                        };
                        for fiber in fibers {
                            for node in 0..nn {
                                let i = fiber * nn + node;
                                let f = elastic[i];
                                let f_l = [f[0] * area, f[1] * area, f[2] * area];
                                spread_node(pos[i], f_l, delta, dims, &bc, &mut sink);
                            }
                        }
                        let w = current_thread_index().unwrap_or(0);
                        busy[w].fetch_add(b0.elapsed().as_secs_f64());
                    });
                }
            });
        }

        // Phase B2 (apply): parallel over node slabs; each slab owner
        // drains every chunk's bucket aimed at it, in chunk order.
        {
            let fluid = &mut self.state.fluid;
            let fx = split_by_ranges(&mut fluid.fx, &node_ranges);
            let fy = split_by_ranges(&mut fluid.fy, &node_ranges);
            let fz = split_by_ranges(&mut fluid.fz, &node_ranges);
            let items: Vec<_> = fx
                .into_iter()
                .zip(fy)
                .zip(fz)
                .zip(node_ranges.iter().map(|r| r.start))
                .enumerate()
                .collect();
            let buckets = &buckets;
            self.pool.scope(|scope| {
                for (slab, (((cx, cy), cz), start)) in items {
                    let busy = &busy;
                    scope.spawn(move || {
                        let b0 = Instant::now();
                        for row in buckets {
                            for &(idx, df) in &row[slab] {
                                let i = idx as usize - start;
                                cx[i] += df[0];
                                cy[i] += df[1];
                                cz[i] += df[2];
                            }
                        }
                        let w = current_thread_index().unwrap_or(0);
                        busy[w].fetch_add(b0.elapsed().as_secs_f64());
                    });
                }
            });
        }
        self.profile.record(KernelId::SpreadForce, t0.elapsed());
        let busy_vals: Vec<f64> = busy.iter().map(|b| b.load()).collect();
        self.imbalance
            .record_region(KernelId::SpreadForce, &busy_vals);
    }

    /// Kernel 5: collision, parallel over x-slabs (Algorithm 2).
    fn collision_kernel(&mut self) {
        let n_threads = self.n_threads;
        let n_chunks = self.n_chunks();
        let tau = self.state.config.tau;
        let dims = self.state.config.dims();
        let plane = dims.ny * dims.nz;
        let plane_ranges = balanced_ranges(dims.nx, n_chunks);
        let node_ranges: Vec<Range<usize>> = plane_ranges
            .iter()
            .map(|r| r.start * plane..r.end * plane)
            .collect();
        let f_ranges: Vec<Range<usize>> =
            node_ranges.iter().map(|r| r.start * Q..r.end * Q).collect();

        let fluid = &mut self.state.fluid;
        let rho = &fluid.rho;
        let ueqx = &fluid.ueqx;
        let ueqy = &fluid.ueqy;
        let ueqz = &fluid.ueqz;
        let f_chunks = split_by_ranges(&mut fluid.f, &f_ranges);
        let items: Vec<_> = f_chunks
            .into_iter()
            .zip(node_ranges.iter().cloned())
            .collect();
        Self::region_static(
            &self.pool,
            &mut self.profile,
            &mut self.imbalance,
            n_threads,
            KernelId::Collision,
            items,
            |_t, (f_chunk, nodes)| {
                for (i, node) in nodes.enumerate() {
                    let ueq = [ueqx[node], ueqy[node], ueqz[node]];
                    bgk_collide_node(
                        &mut f_chunk[i * Q..i * Q + Q],
                        rho[node],
                        ueq,
                        [0.0; 3],
                        tau,
                    );
                }
            },
        );
    }

    /// Fused kernels 5+6: each slab collides its own nodes in registers
    /// and pushes the results straight into `f_new`, skipping both the
    /// post-collision write-back of `f` and its re-read by streaming.
    ///
    /// Push streaming writes each `(destination node, direction)` slot of
    /// `f_new` exactly once across the whole grid — interior/periodic
    /// routes keep their direction and map origin nodes injectively, and a
    /// bounce-back writes the origin's own `(node, opposite)` slot, whose
    /// upwind route crossed a wall and therefore never produces a neighbour
    /// write. Slots owned by no wall-adjacent node are still unique per
    /// direction, so threads never store to the same location; the relaxed
    /// atomic stores only make the cross-slab writes race-free in the
    /// memory model, and the pool's implicit join publishes them before
    /// kernel 7 reads `f_new`.
    fn fused_kernel(&mut self) {
        let n_threads = self.n_threads;
        let n_chunks = self.n_chunks();
        let tau = self.state.config.tau;
        let dims = self.state.config.dims();
        let bc = self.state.config.bc;
        let plane = dims.ny * dims.nz;
        let plane_ranges = balanced_ranges(dims.nx, n_chunks);
        let node_ranges: Vec<Range<usize>> = plane_ranges
            .iter()
            .map(|r| r.start * plane..r.end * plane)
            .collect();

        let router = StreamRouter::new(dims, &bc);
        let router = &router;
        let fluid = &mut self.state.fluid;
        let rho = &fluid.rho;
        let ueqx = &fluid.ueqx;
        let ueqy = &fluid.ueqy;
        let ueqz = &fluid.ueqz;
        let f = &fluid.f;
        let f_new = as_atomic_f64(&mut fluid.f_new);
        Self::region_static(
            &self.pool,
            &mut self.profile,
            &mut self.imbalance,
            n_threads,
            KernelId::FusedCollideStream,
            node_ranges,
            |_t, nodes| {
                for node in nodes {
                    let ueq = [ueqx[node], ueqy[node], ueqz[node]];
                    let regs =
                        collide_to_registers(&f[node * Q..node * Q + Q], rho[node], ueq, tau);
                    let (x, y, z) = dims.coords(node);
                    f_new[node * Q].store(regs[0]);
                    for i in 1..Q {
                        match router.route(x, y, z, i) {
                            CoordRoute::Neighbor(d) => {
                                let dst = (d[0] * dims.ny + d[1]) * dims.nz + d[2];
                                f_new[dst * Q + i].store(regs[i]);
                            }
                            CoordRoute::BounceBack {
                                opposite,
                                wall_velocity,
                            } => {
                                f_new[node * Q + opposite]
                                    .store(regs[i] - moving_wall_correction(i, wall_velocity));
                            }
                        }
                    }
                }
            },
        );
    }

    /// Kernel 6: streaming, pull formulation (every write owned by the
    /// slab's thread), parallel over x-slabs.
    fn stream_kernel(&mut self) {
        let n_threads = self.n_threads;
        let n_chunks = self.n_chunks();
        let dims = self.state.config.dims();
        let bc = self.state.config.bc;
        let plane = dims.ny * dims.nz;
        let plane_ranges = balanced_ranges(dims.nx, n_chunks);
        let node_ranges: Vec<Range<usize>> = plane_ranges
            .iter()
            .map(|r| r.start * plane..r.end * plane)
            .collect();
        let f_ranges: Vec<Range<usize>> =
            node_ranges.iter().map(|r| r.start * Q..r.end * Q).collect();

        let router = StreamRouter::new(dims, &bc);
        let router = &router;
        let fluid = &mut self.state.fluid;
        let f = &fluid.f;
        let chunks = split_by_ranges(&mut fluid.f_new, &f_ranges);
        let items: Vec<_> = chunks
            .into_iter()
            .zip(node_ranges.iter().cloned())
            .collect();
        Self::region_static(
            &self.pool,
            &mut self.profile,
            &mut self.imbalance,
            n_threads,
            KernelId::Stream,
            items,
            |_t, (out, nodes)| {
                for (i, node) in nodes.enumerate() {
                    let (x, y, z) = dims.coords(node);
                    stream_pull_routed_node(dims, router, f, &mut out[i * Q..i * Q + Q], x, y, z);
                }
            },
        );
    }

    /// Kernel 7: macroscopic update, parallel over x-slabs.
    fn update_velocity_kernel(&mut self) {
        let n_threads = self.n_threads;
        let n_chunks = self.n_chunks();
        let tau = self.state.config.tau;
        let dims = self.state.config.dims();
        let plane = dims.ny * dims.nz;
        let plane_ranges = balanced_ranges(dims.nx, n_chunks);
        let node_ranges: Vec<Range<usize>> = plane_ranges
            .iter()
            .map(|r| r.start * plane..r.end * plane)
            .collect();

        struct UpdateChunk<'a> {
            nodes: Range<usize>,
            rho: &'a mut [f64],
            ux: &'a mut [f64],
            uy: &'a mut [f64],
            uz: &'a mut [f64],
            ueqx: &'a mut [f64],
            ueqy: &'a mut [f64],
            ueqz: &'a mut [f64],
        }

        let fluid = &mut self.state.fluid;
        let f_new = &fluid.f_new;
        let fx = &fluid.fx;
        let fy = &fluid.fy;
        let fz = &fluid.fz;
        let rho = split_by_ranges(&mut fluid.rho, &node_ranges);
        let ux = split_by_ranges(&mut fluid.ux, &node_ranges);
        let uy = split_by_ranges(&mut fluid.uy, &node_ranges);
        let uz = split_by_ranges(&mut fluid.uz, &node_ranges);
        let ueqx = split_by_ranges(&mut fluid.ueqx, &node_ranges);
        let ueqy = split_by_ranges(&mut fluid.ueqy, &node_ranges);
        let ueqz = split_by_ranges(&mut fluid.ueqz, &node_ranges);

        let mut items = Vec::with_capacity(n_threads);
        for (((((((nodes, rho), ux), uy), uz), ueqx), ueqy), ueqz) in node_ranges
            .iter()
            .cloned()
            .zip(rho)
            .zip(ux)
            .zip(uy)
            .zip(uz)
            .zip(ueqx)
            .zip(ueqy)
            .zip(ueqz)
        {
            items.push(UpdateChunk {
                nodes,
                rho,
                ux,
                uy,
                uz,
                ueqx,
                ueqy,
                ueqz,
            });
        }

        Self::region_static(
            &self.pool,
            &mut self.profile,
            &mut self.imbalance,
            n_threads,
            KernelId::UpdateVelocity,
            items,
            |_t, c| {
                for (i, node) in c.nodes.clone().enumerate() {
                    let force = [fx[node], fy[node], fz[node]];
                    let (rho, u, ueq) =
                        node_moments_shifted(&f_new[node * Q..node * Q + Q], force, tau);
                    c.rho[i] = rho;
                    c.ux[i] = u[0];
                    c.uy[i] = u[1];
                    c.uz[i] = u[2];
                    c.ueqx[i] = ueq[0];
                    c.ueqy[i] = ueq[1];
                    c.ueqz[i] = ueq[2];
                }
            },
        );
    }

    /// Kernel 8: move fibers, parallel over fibers.
    fn move_fibers_kernel(&mut self) {
        let n_threads = self.n_threads;
        let n_chunks = self.n_chunks();
        let dims = self.state.config.dims();
        let bc = self.state.config.bc;
        let delta = self.state.config.delta;
        let nn = self.state.sheet.nodes_per_fiber;
        let fiber_ranges = balanced_ranges(self.state.sheet.num_fibers, n_chunks);
        let node_ranges: Vec<Range<usize>> = fiber_ranges
            .iter()
            .map(|r| r.start * nn..r.end * nn)
            .collect();

        let SimState { fluid, sheet, .. } = &mut self.state;
        let view = GridView {
            dims,
            ux: &fluid.ux,
            uy: &fluid.uy,
            uz: &fluid.uz,
        };
        let chunks = split_by_ranges(&mut sheet.pos, &node_ranges);
        let view_ref = &view;
        Self::region_static(
            &self.pool,
            &mut self.profile,
            &mut self.imbalance,
            n_threads,
            KernelId::MoveFibers,
            chunks,
            |_t, chunk| {
                for p in chunk.iter_mut() {
                    let u = interpolate_velocity(*p, delta, dims, &bc, view_ref);
                    p[0] += u[0];
                    p[1] += u[1];
                    p[2] += u[2];
                }
            },
        );
    }

    /// Kernel 9: buffer copy, parallel over slabs (memory bound).
    fn copy_kernel(&mut self) {
        let n_threads = self.n_threads;
        let n_chunks = self.n_chunks();
        let n = self.state.fluid.f.len();
        let ranges = balanced_ranges(n, n_chunks);
        let fluid = &mut self.state.fluid;
        let src = &fluid.f_new;
        let chunks = split_by_ranges(&mut fluid.f, &ranges);
        let items: Vec<_> = chunks.into_iter().zip(ranges.iter().cloned()).collect();
        Self::region_static(
            &self.pool,
            &mut self.profile,
            &mut self.imbalance,
            n_threads,
            KernelId::CopyDistributions,
            items,
            |_t, (dst, range)| {
                dst.copy_from_slice(&src[range]);
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimulationConfig;
    use crate::sequential::SequentialSolver;

    #[test]
    fn balanced_ranges_tile_exactly() {
        for (n, c) in [(10, 3), (7, 7), (5, 8), (0, 2), (64, 4)] {
            let rs = balanced_ranges(n, c);
            assert_eq!(rs.len(), c);
            assert_eq!(rs.first().unwrap().start, 0);
            assert_eq!(rs.last().unwrap().end, n);
            for w in rs.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            let max = rs.iter().map(|r| r.len()).max().unwrap_or(0);
            let min = rs.iter().map(|r| r.len()).min().unwrap_or(0);
            assert!(max - min <= 1, "({n},{c}): {rs:?}");
        }
    }

    #[test]
    fn matches_sequential_solver() {
        let cfg = SimulationConfig::quick_test();
        let mut seq = SequentialSolver::new(cfg);
        let mut omp = OpenMpSolver::new(cfg, 3);
        seq.run(8);
        omp.run(8);
        let max_f_err = seq
            .state
            .fluid
            .f
            .iter()
            .zip(&omp.state.fluid.f)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_f_err < 1e-12, "distribution mismatch {max_f_err}");
        let max_pos_err = seq
            .state
            .sheet
            .pos
            .iter()
            .zip(&omp.state.sheet.pos)
            .flat_map(|(a, b)| (0..3).map(move |i| (a[i] - b[i]).abs()))
            .fold(0.0f64, f64::max);
        assert!(max_pos_err < 1e-12, "sheet mismatch {max_pos_err}");
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let cfg = SimulationConfig::quick_test();
        let mut a = OpenMpSolver::new(cfg, 1);
        let mut b = OpenMpSolver::new(cfg, 4);
        a.run(6);
        b.run(6);
        // The bucketed spread applies contributions in global fiber order
        // regardless of the chunk decomposition, so the agreement across
        // thread counts is exact, not approximate.
        assert_eq!(a.state.fluid.f, b.state.fluid.f);
        assert_eq!(a.state.fluid.ux, b.state.fluid.ux);
        assert_eq!(a.state.sheet.pos, b.state.sheet.pos);
    }

    #[test]
    fn reruns_are_bit_identical() {
        let cfg = SimulationConfig::quick_test();
        let mut a = OpenMpSolver::new(cfg, 4);
        let mut b = OpenMpSolver::new(cfg, 4);
        a.run(6);
        b.run(6);
        assert_eq!(a.state.fluid.f, b.state.fluid.f);
        assert_eq!(a.state.sheet.pos, b.state.sheet.pos);
    }

    #[test]
    fn profiler_and_imbalance_populated() {
        let mut omp = OpenMpSolver::new(SimulationConfig::quick_test(), 2);
        let report = omp.run(3);
        assert_eq!(report.steps, 3);
        for k in KernelId::ALL {
            let expect = if k == KernelId::FusedCollideStream {
                0
            } else {
                3
            };
            assert_eq!(omp.profile.calls(k), expect, "{k:?}");
        }
        assert!(omp.imbalance.total_critical() > 0.0);
        assert!(omp.imbalance.imbalance_percent() >= 0.0);
        assert_eq!(omp.n_threads(), 2);
    }

    #[test]
    fn fused_plan_is_bit_identical_to_split() {
        // The fused sweep performs the same f64 arithmetic and stores the
        // same values at the same slots, so the agreement is exact, not
        // approximate.
        let split_cfg = SimulationConfig::quick_test();
        let mut fused_cfg = split_cfg;
        fused_cfg.plan = crate::config::KernelPlan::Fused;
        let mut split = OpenMpSolver::new(split_cfg, 3);
        let mut fused = OpenMpSolver::new(fused_cfg, 3);
        split.run(8);
        fused.run(8);
        assert_eq!(split.state.fluid.f, fused.state.fluid.f);
        assert_eq!(split.state.fluid.ux, fused.state.fluid.ux);
        assert_eq!(split.state.sheet.pos, fused.state.sheet.pos);
        assert_eq!(fused.profile.calls(KernelId::FusedCollideStream), 8);
        assert_eq!(fused.profile.calls(KernelId::Collision), 0);
    }

    #[test]
    fn dynamic_schedule_matches_static() {
        let cfg = SimulationConfig::quick_test();
        let mut stat = OpenMpSolver::new(cfg, 3);
        let mut dynamic = OpenMpSolver::new(cfg, 3);
        dynamic.schedule = Schedule::Dynamic { factor: 4 };
        stat.run(8);
        dynamic.run(8);
        // Buckets are keyed by chunk index, not worker, so even the
        // work-stolen dynamic schedule is bit-exact against static.
        assert_eq!(stat.state.fluid.f, dynamic.state.fluid.f);
        assert_eq!(stat.state.sheet.pos, dynamic.state.sheet.pos);
    }

    #[test]
    fn more_threads_than_fibers_is_fine() {
        let mut cfg = SimulationConfig::quick_test();
        cfg.sheet.num_fibers = 3;
        cfg.sheet.nodes_per_fiber = 8;
        let mut omp = OpenMpSolver::new(cfg, 6);
        omp.run(2);
        assert!(!omp.state.has_nan());
    }
}
