//! The cube-centric parallel LBM-IB solver of Section V (Algorithm 4).
//!
//! The fluid grid is stored cube-blocked ([`lbm::cube_grid::CubeFluidGrid`]),
//! cubes are statically assigned to a 3D thread mesh by `cube2thread`
//! (block distribution by default) and fibers by `fiber2thread`. `run()`
//! launches one long-lived worker per thread; each time step every worker
//! executes the five loops of Algorithm 4 over *its own* cubes and fibers,
//! with exactly three barriers:
//!
//! ```text
//! loop 1  fibers:  kernels 1–4 (spread *produces* per-(producer, owner)
//!                  contribution buffers — no grid writes, no locks)
//! loop 2  cubes:   kernel 5 (collision) + kernel 6 (push streaming;
//!                  cross-cube writes hit unique (node, direction) slots,
//!                  so they are per-location exclusive without locks)
//! ───────────────── barrier 1 (streamed populations in place)
//! loop 3  cubes:   spread *apply* (each owner drains the buffers aimed at
//!                  it, in producer-tid order) + kernel 7 (velocity update)
//! ───────────────── barrier 2 (velocities in place)
//! loop 4  fibers:  kernel 8 (move fibers; reads velocities anywhere,
//!                  writes only its own fibers)
//! loop 5  cubes:   kernel 9 (buffer copy) + force reset for next step
//! ───────────────── barrier 3 (end of time step)
//! ```
//!
//! # Determinism
//!
//! Spreading used to scatter under per-owner mutexes, so the per-node
//! addition order depended on lock-acquisition timing and reruns differed
//! in the last ulp. The buffered scheme applies contributions in producer
//! tid order, which (fibers are block-distributed) is global fiber order —
//! a fixed order for a fixed thread count. Runs are therefore bit-exactly
//! reproducible, which the checkpoint/resume equivalence guarantee relies
//! on.
//!
//! # Panic safety
//!
//! A panicking worker poisons the shared [`PhaseBarrier`] before
//! unwinding; siblings blocked at (or arriving at) a barrier bail out
//! instead of spinning forever. [`CubeSolver::try_run`] then restores the
//! solver's buffers — without advancing the step counter — and returns
//! [`SolverError::WorkerPanicked`] naming the thread and phase.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use ib::delta::for_each_influence;
use ib::forces::{bending_at, stretching_at, SheetTopology};
use ib::interp::VelocityField;
use ib::sheet::FiberSheet;
use ib::tether::{Tether, TetherSet};
use lbm::boundary::{moving_wall_correction, CoordRoute, StreamRouter};
use lbm::collision::bgk_collide_node;
use lbm::cube_grid::{CubeDims, CubeFluidGrid};
use lbm::distribution::{CubeDistribution, FiberDistribution, Policy, ThreadMesh};
use lbm::grid::Dims;
use lbm::lattice::Q;
use lbm::macroscopic::node_moments_shifted;

use crate::barrier::{BarrierKind, BarrierPoisoned, PhaseBarrier};
use crate::config::{KernelPlan, SimulationConfig};
use crate::profiling::{ImbalanceTracker, KernelId, KernelProfile};
use crate::sharedgrid::{PhaseCell, SharedCubeGrid, SharedSlice};
use crate::solver::{RunReport, SolverError};
use crate::state::SimState;
use crate::telemetry::{MetricsRegistry, ThreadSlot};

/// Worker phase names, in loop order, used for panic attribution
/// ([`SolverError::WorkerPanicked`]) and fault-injection targeting.
pub const WORKER_PHASES: [&str; 5] = [
    "fiber-forces",
    "collide-stream",
    "velocity-update",
    "move-fibers",
    "copy-reseed",
];

/// One fiber node's force contribution to one fluid node, staged in a
/// per-(producer, owner) buffer during loop 1 and applied by the owner at
/// the start of loop 3.
type SpreadEntry = (u32, [f64; 3]);

/// Read-only fluid-velocity view for the interpolation of loop 4.
///
/// Reads are sound during loop 4 because the velocity arrays are written
/// only in loop 3, separated from loop 4 by barrier 2 (and from the next
/// step's loop 3 by barriers 3 and 1).
struct CubeVelocityView<'a> {
    cdims: CubeDims,
    ux: &'a SharedSlice<f64>,
    uy: &'a SharedSlice<f64>,
    uz: &'a SharedSlice<f64>,
}

impl VelocityField for CubeVelocityView<'_> {
    #[inline]
    fn velocity_at(&self, x: usize, y: usize, z: usize) -> [f64; 3] {
        let i = self.cdims.flat_of_global(x, y, z);
        // SAFETY: phase invariant documented on the type.
        unsafe { [self.ux.get(i), self.uy.get(i), self.uz.get(i)] }
    }
}

/// Precomputed coordinate→flat-index tables for the cube layout, avoiding
/// the div/mod of [`CubeDims::flat_of_global`] in the streaming hot loop.
struct CubeIndexer {
    cy: usize,
    cz: usize,
    k: usize,
    npc: usize,
    cube_of: [Vec<usize>; 3],
    local_of: [Vec<usize>; 3],
}

impl CubeIndexer {
    fn new(cdims: CubeDims) -> Self {
        let ext = [cdims.dims.nx, cdims.dims.ny, cdims.dims.nz];
        let mut cube_of: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut local_of: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for a in 0..3 {
            cube_of[a] = (0..ext[a]).map(|v| v / cdims.k).collect();
            local_of[a] = (0..ext[a]).map(|v| v % cdims.k).collect();
        }
        Self {
            cy: cdims.cy,
            cz: cdims.cz,
            k: cdims.k,
            npc: cdims.nodes_per_cube(),
            cube_of,
            local_of,
        }
    }

    #[inline]
    fn flat(&self, x: usize, y: usize, z: usize) -> usize {
        let cube =
            (self.cube_of[0][x] * self.cy + self.cube_of[1][y]) * self.cz + self.cube_of[2][z];
        let local =
            (self.local_of[0][x] * self.k + self.local_of[1][y]) * self.k + self.local_of[2][z];
        cube * self.npc + local
    }
}

/// Per-step work description for one worker thread.
struct WorkerPlan {
    tid: usize,
    my_cubes: Vec<usize>,
    my_fibers: Vec<usize>,
    my_tethers: Vec<Tether>,
}

/// The cube-centric solver.
pub struct CubeSolver {
    pub config: SimulationConfig,
    n_threads: usize,
    /// Barrier flavour (spin by default; `Std` for the ablation).
    pub barrier_kind: BarrierKind,
    /// Cube distribution policy (block by default, as in the paper).
    pub policy: Policy,
    cdims: CubeDims,
    grid: CubeFluidGrid,
    pub sheet: FiberSheet,
    tethers: TetherSet,
    pub step: u64,
    pub profile: KernelProfile,
    pub imbalance: ImbalanceTracker,
    /// When true, [`CubeSolver::run`] collects per-worker telemetry (kernel
    /// busy time, per-barrier wait, cube/fiber ownership) into its report.
    pub telemetry_enabled: bool,
}

impl CubeSolver {
    /// Builds the solver with `n_threads` workers laid out on a near-cubic
    /// thread mesh.
    pub fn new(config: SimulationConfig, n_threads: usize) -> Self {
        Self::from_state(SimState::new(config), n_threads)
    }

    /// Builds the solver from an existing flat state (reordering the fluid
    /// into cube-blocked storage).
    pub fn from_state(state: SimState, n_threads: usize) -> Self {
        assert!(n_threads > 0, "need at least one thread");
        let config = state.config;
        let cdims = CubeDims::new(config.dims(), config.cube_k);
        let mut grid = CubeFluidGrid::from_flat(&state.fluid, config.cube_k);
        // Loop 1 spreads *into* the force field, so it must start each step
        // pre-filled with the body force; loop 5 re-fills it for the next
        // step, and this seeds step 0.
        grid.fx.fill(config.body_force[0]);
        grid.fy.fill(config.body_force[1]);
        grid.fz.fill(config.body_force[2]);
        Self {
            config,
            n_threads,
            barrier_kind: BarrierKind::default(),
            policy: Policy::Block,
            cdims,
            grid,
            sheet: state.sheet,
            tethers: state.tethers,
            step: state.step,
            profile: KernelProfile::new(),
            imbalance: ImbalanceTracker::new(n_threads),
            telemetry_enabled: false,
        }
    }

    /// Like [`CubeSolver::from_state`] but returns an error instead of
    /// panicking on a zero thread count or an indivisible grid.
    pub fn try_from_state(state: SimState, n_threads: usize) -> Result<Self, SolverError> {
        if n_threads == 0 {
            return Err(SolverError::ZeroThreads);
        }
        state.config.validate()?;
        Ok(Self::from_state(state, n_threads))
    }

    /// Number of worker threads.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// The thread mesh used by `cube2thread`.
    pub fn thread_mesh(&self) -> ThreadMesh {
        ThreadMesh::for_threads(self.n_threads)
    }

    /// Converts the current cube-blocked state back to a flat [`SimState`]
    /// (for verification against the other solvers and for output).
    pub fn to_state(&self) -> SimState {
        let mut fluid = self.grid.to_flat();
        // The flat solvers keep the force buffer as "last spread" rather
        // than "pre-seeded for next step"; zero the difference out of the
        // comparison by leaving forces as-is (verify ignores forces).
        let _ = &mut fluid;
        SimState {
            config: self.config,
            fluid,
            sheet: self.sheet.clone(),
            tethers: self.tethers.clone(),
            step: self.step,
        }
    }

    /// Runs `n_steps` time steps with the full worker team (Algorithm 4),
    /// reporting steps and wall time. Panics if a worker panics; use
    /// [`CubeSolver::try_run`] to get the typed error instead.
    pub fn run(&mut self, n_steps: u64) -> RunReport {
        self.try_run(n_steps)
            .expect("cube worker failed (try_run surfaces this as a value)")
    }

    /// Runs `n_steps` time steps, surfacing a panicking worker as
    /// [`SolverError::WorkerPanicked`] instead of a panic or a hang: the
    /// panicking thread poisons the phase barrier, the remaining workers
    /// unwind at their next barrier wait, the fluid/sheet buffers are
    /// restored (contents unspecified mid-step), and the step counter is
    /// left where the last *completed* call put it.
    pub fn try_run(&mut self, n_steps: u64) -> Result<RunReport, SolverError> {
        if n_steps == 0 {
            return Ok(RunReport::default());
        }
        let n_threads = self.n_threads;
        let cdims = self.cdims;
        let dims = cdims.dims;
        let config = self.config;
        let topo = self.sheet.topology();
        let nn = topo.nodes_per_fiber;
        let step0 = self.step;

        // Static data distribution (the paper's cube2thread / fiber2thread).
        let dist = CubeDistribution {
            mesh: self.thread_mesh(),
            policy: self.policy,
        };
        let owner = dist.ownership_table(&cdims);
        let fdist = FiberDistribution {
            n_threads,
            policy: Policy::Block,
        };

        let mut plans: Vec<WorkerPlan> = (0..n_threads)
            .map(|tid| WorkerPlan {
                tid,
                my_cubes: Vec::new(),
                my_fibers: Vec::new(),
                my_tethers: Vec::new(),
            })
            .collect();
        for (cube, &o) in owner.iter().enumerate() {
            plans[o].my_cubes.push(cube);
        }
        for fiber in 0..topo.num_fibers {
            plans[fdist.fiber2thread(fiber, topo.num_fibers)]
                .my_fibers
                .push(fiber);
        }
        for t in &self.tethers.tethers {
            let fiber = t.node / nn;
            plans[fdist.fiber2thread(fiber, topo.num_fibers)]
                .my_tethers
                .push(*t);
        }

        // Move the state into shared form for the worker team.
        let grid =
            SharedCubeGrid::new(std::mem::replace(&mut self.grid, CubeFluidGrid::new(cdims)));
        let sheet_pos = SharedSlice::from_vec(std::mem::take(&mut self.sheet.pos));
        let sheet_bend = SharedSlice::from_vec(std::mem::take(&mut self.sheet.bending));
        let sheet_stretch = SharedSlice::from_vec(std::mem::take(&mut self.sheet.stretching));
        let sheet_elastic = SharedSlice::from_vec(std::mem::take(&mut self.sheet.elastic));

        // Per-(producer, owner) spread buffers: `bufs[producer * T + owner]`.
        // Written by the producer in loop 1, drained by the owner in loop 3,
        // with barriers separating the phases (see the module docs).
        let spread_bufs: Vec<PhaseCell<Vec<SpreadEntry>>> = (0..n_threads * n_threads)
            .map(|_| PhaseCell::new(Vec::new()))
            .collect();

        let barrier = PhaseBarrier::new(self.barrier_kind, n_threads);
        // Panic bookkeeping: each worker publishes its current phase index;
        // a panicking worker's wrapper records (tid, phase) here (first one
        // wins) and poisons the barrier.
        let phase_flags: Vec<AtomicUsize> = (0..n_threads).map(|_| AtomicUsize::new(0)).collect();
        let panic_note: Mutex<Option<(usize, usize)>> = Mutex::new(None);

        // Per-worker telemetry slots: the static data assignment is known
        // before spawn; the workers flush busy/wait running totals into
        // their own slot every step (single writer, lock-free).
        let registry = self
            .telemetry_enabled
            .then(|| MetricsRegistry::new(n_threads));
        if let Some(registry) = &registry {
            for plan in &plans {
                registry
                    .slot(plan.tid)
                    .set_ownership(plan.my_cubes.len() as u64, plan.my_fibers.len() as u64);
            }
        }

        let t0 = Instant::now();
        let busy_times: Vec<[f64; KernelId::COUNT]> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n_threads);
            for plan in plans {
                let tid = plan.tid;
                let grid = &grid;
                let sheet_pos = &sheet_pos;
                let sheet_bend = &sheet_bend;
                let sheet_stretch = &sheet_stretch;
                let sheet_elastic = &sheet_elastic;
                let spread_bufs = &spread_bufs[..];
                let barrier = &barrier;
                let owner = &owner;
                let phase_flag = &phase_flags[tid];
                let panic_note = &panic_note;
                let slot = registry.as_ref().map(|r| r.slot(tid));
                handles.push(scope.spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        worker(
                            plan,
                            n_steps,
                            step0,
                            config,
                            cdims,
                            dims,
                            topo,
                            grid,
                            sheet_pos,
                            sheet_bend,
                            sheet_stretch,
                            sheet_elastic,
                            spread_bufs,
                            n_threads,
                            barrier,
                            owner,
                            slot,
                            phase_flag,
                        )
                    }));
                    match result {
                        Ok(r) => r,
                        Err(_payload) => {
                            // Record which phase this thread died in, then
                            // release every sibling blocked at the barrier.
                            let phase = phase_flag.load(Ordering::Relaxed);
                            panic_note
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .get_or_insert((tid, phase));
                            barrier.poison();
                            Err(BarrierPoisoned)
                        }
                    }
                }));
            }
            handles
                .into_iter()
                .filter_map(|h| match h.join() {
                    Ok(Ok(busy)) => Some(busy),
                    // Worker bailed (own panic was caught above, or a
                    // sibling poisoned the barrier): no busy record.
                    Ok(Err(BarrierPoisoned)) | Err(_) => None,
                })
                .collect()
        });
        let wall = t0.elapsed();

        // Tear the shared state back down — also on the failure path, so
        // the solver keeps structurally valid (if physically mid-step)
        // buffers instead of the empty placeholders.
        self.grid = grid.into_inner();
        self.sheet.pos = sheet_pos.into_vec();
        self.sheet.bending = sheet_bend.into_vec();
        self.sheet.stretching = sheet_stretch.into_vec();
        self.sheet.elastic = sheet_elastic.into_vec();

        if let Some((thread, phase)) = panic_note.into_inner().unwrap_or_else(|e| e.into_inner()) {
            return Err(SolverError::WorkerPanicked {
                thread,
                phase: WORKER_PHASES[phase.min(WORKER_PHASES.len() - 1)],
            });
        }
        self.step += n_steps;

        // Account profiling: per kernel, the critical path is the max busy
        // time across threads; imbalance comes from the spread of busy
        // times (one aggregated region per kernel for this run).
        for k in KernelId::ALL {
            let i = k.index();
            let busy: Vec<f64> = busy_times.iter().map(|b| b[i]).collect();
            let max = busy.iter().copied().fold(0.0, f64::max);
            self.profile
                .record(k, std::time::Duration::from_secs_f64(max));
            self.imbalance.record_region(k, &busy);
        }
        Ok(RunReport {
            steps: n_steps,
            wall,
            telemetry: registry.map(|r| r.snapshot("cube", n_steps, wall.as_secs_f64())),
            recovery: None,
        })
    }
}

/// One barrier wait, timed into the worker's accumulators only when
/// telemetry is on (`timed`), so telemetry-off runs keep the bare wait.
/// `Err` means the barrier is poisoned: a sibling panicked and this worker
/// must unwind.
#[inline]
fn sync_barrier(
    barrier: &PhaseBarrier,
    timed: bool,
    wait_s: &mut f64,
    waits: &mut u64,
) -> Result<(), BarrierPoisoned> {
    if timed {
        let (_, waited) = barrier.wait_timed_checked()?;
        *wait_s += waited.as_secs_f64();
        *waits += 1;
    } else {
        barrier.wait_checked()?;
    }
    Ok(())
}

/// One worker's execution of Algorithm 4. Returns accumulated busy seconds
/// per kernel, or bails with [`BarrierPoisoned`] when a sibling panicked.
#[allow(clippy::too_many_arguments)]
fn worker(
    plan: WorkerPlan,
    n_steps: u64,
    step0: u64,
    config: SimulationConfig,
    cdims: CubeDims,
    dims: Dims,
    topo: SheetTopology,
    grid: &SharedCubeGrid,
    sheet_pos: &SharedSlice<[f64; 3]>,
    sheet_bend: &SharedSlice<[f64; 3]>,
    sheet_stretch: &SharedSlice<[f64; 3]>,
    sheet_elastic: &SharedSlice<[f64; 3]>,
    spread_bufs: &[PhaseCell<Vec<SpreadEntry>>],
    n_threads: usize,
    barrier: &PhaseBarrier,
    owner: &[usize],
    slot: Option<&ThreadSlot>,
    phase_flag: &AtomicUsize,
) -> Result<[f64; KernelId::COUNT], BarrierPoisoned> {
    let mut busy = [0.0f64; KernelId::COUNT];
    let timed = slot.is_some();
    let mut barrier_wait_s = 0.0f64;
    let mut barrier_waits = 0u64;
    #[cfg(feature = "racecheck")]
    crate::racecheck::set_thread(plan.tid);
    #[cfg(feature = "racecheck")]
    let mut rc_phase: u64 = 0;
    #[cfg(feature = "racecheck")]
    crate::racecheck::set_phase(rc_phase);
    let nn = topo.nodes_per_fiber;
    let npc = cdims.nodes_per_cube();
    let router = StreamRouter::new(dims, &config.bc);
    let indexer = CubeIndexer::new(cdims);
    let bc = config.bc;
    let tau = config.tau;
    let delta = config.delta;
    let area = topo.ds_node * topo.ds_fiber;
    let body = config.body_force;

    for local_step in 0..n_steps {
        let abs_step = step0 + local_step;
        // ─── Loop 1: fiber kernels 1–4 on my fibers ───
        phase_flag.store(0, Ordering::Relaxed);
        crate::faultinject::maybe_panic(plan.tid, abs_step, WORKER_PHASES[0]);
        {
            // SAFETY: during loop 1 every thread only *reads* positions
            // (written last in loop 4 of the previous step, published by
            // barrier 3).
            let pos: &[[f64; 3]] = unsafe { sheet_pos.as_slice_unchecked() };

            // Kernel 1: bending.
            let t0 = Instant::now();
            for &fiber in &plan.my_fibers {
                for node in 0..nn {
                    let i = fiber * nn + node;
                    // SAFETY: node i belongs to my fiber; sole writer.
                    unsafe { sheet_bend.set(i, bending_at(&topo, pos, fiber, node)) };
                }
            }
            busy[0] += t0.elapsed().as_secs_f64();

            // Kernel 2: stretching.
            let t0 = Instant::now();
            for &fiber in &plan.my_fibers {
                for node in 0..nn {
                    let i = fiber * nn + node;
                    // SAFETY: sole writer (my fiber).
                    unsafe { sheet_stretch.set(i, stretching_at(&topo, pos, fiber, node)) };
                }
            }
            busy[1] += t0.elapsed().as_secs_f64();

            // Kernel 3: elastic = bending + stretching (+ my tethers).
            let t0 = Instant::now();
            for &fiber in &plan.my_fibers {
                for node in 0..nn {
                    let i = fiber * nn + node;
                    // SAFETY: sole reader/writer of my fiber's force slots
                    // in this phase.
                    unsafe {
                        let b = sheet_bend.get(i);
                        let s = sheet_stretch.get(i);
                        sheet_elastic.set(i, [b[0] + s[0], b[1] + s[1], b[2] + s[2]]);
                    }
                }
            }
            for t in &plan.my_tethers {
                // SAFETY: tether nodes belong to my fibers.
                unsafe {
                    let p = sheet_pos.get(t.node);
                    let mut e = sheet_elastic.get(t.node);
                    for a in 0..3 {
                        e[a] -= t.stiffness * (p[a] - t.anchor[a]);
                    }
                    sheet_elastic.set(t.node, e);
                }
            }
            busy[2] += t0.elapsed().as_secs_f64();

            // Kernel 4 (produce): stage my fibers' elastic-force
            // contributions into per-owner buffers instead of scattering
            // into the grid under locks. The owner applies them at the
            // start of loop 3, in producer-tid order, which makes the
            // per-node addition order deterministic (see module docs).
            let t0 = Instant::now();
            let row = plan.tid * n_threads;
            for o in 0..n_threads {
                // SAFETY: buffer (me → o) is written only by me in loop 1;
                // the owner's loop-3 reads of the previous step are
                // separated from this clear by barriers 2 and 3.
                unsafe { spread_bufs[row + o].get_mut().clear() };
            }
            for &fiber in &plan.my_fibers {
                for node in 0..nn {
                    let i = fiber * nn + node;
                    // SAFETY: my fiber's slots; no concurrent writers.
                    let p = unsafe { sheet_pos.get(i) };
                    // SAFETY: same — only this worker touches its fibers.
                    let e = unsafe { sheet_elastic.get(i) };
                    let f_l = [e[0] * area, e[1] * area, e[2] * area];
                    if f_l == [0.0, 0.0, 0.0] {
                        continue;
                    }
                    for_each_influence(p, delta, dims, &bc, |inf| {
                        let (cube, local) = cdims.split(inf.x, inf.y, inf.z);
                        let flat = cdims.flat(cube, local) as u32;
                        let w = inf.weight;
                        // SAFETY: buffer (me → owner) is mine to write
                        // during loop 1; the borrow ends with the push.
                        unsafe {
                            spread_bufs[row + owner[cube]]
                                .get_mut()
                                .push((flat, [f_l[0] * w, f_l[1] * w, f_l[2] * w]));
                        }
                    });
                }
            }
            busy[3] += t0.elapsed().as_secs_f64();
        }

        // ─── Loop 2: collision + streaming on my cubes ───
        phase_flag.store(1, Ordering::Relaxed);
        crate::faultinject::maybe_panic(plan.tid, abs_step, WORKER_PHASES[1]);
        if config.plan == KernelPlan::Fused {
            // Fused kernels 5+6: collide each of my nodes in registers and
            // push the result straight into f_new, one pass per cube.
            let t0 = Instant::now();
            for &cube in &plan.my_cubes {
                for local in 0..npc {
                    let flat = cdims.flat(cube, local);
                    let (x, y, z) = cdims.join(cube, local);
                    // SAFETY: reads my own pre-collision f / rho / ueq
                    // (sole toucher this phase); writes exactly the f_new
                    // slots the split streaming pass would (per-location
                    // exclusive — see the kernel 6 argument below), and no
                    // thread reads f_new before barrier 1. Skipping the f
                    // write-back is invisible: loop 3 reads f_new and loop
                    // 5 overwrites f wholesale.
                    unsafe {
                        let mut fvals = [0.0f64; Q];
                        for i in 0..Q {
                            fvals[i] = grid.f.get(flat * Q + i);
                        }
                        let rho = grid.rho.get(flat);
                        let ueq = [
                            grid.ueqx.get(flat),
                            grid.ueqy.get(flat),
                            grid.ueqz.get(flat),
                        ];
                        bgk_collide_node(&mut fvals, rho, ueq, [0.0; 3], tau);
                        grid.f_new.set(flat * Q, fvals[0]);
                        for i in 1..Q {
                            match router.route(x, y, z, i) {
                                CoordRoute::Neighbor(d) => {
                                    let dflat = indexer.flat(d[0], d[1], d[2]);
                                    grid.f_new.set(dflat * Q + i, fvals[i]);
                                }
                                CoordRoute::BounceBack {
                                    opposite,
                                    wall_velocity,
                                } => {
                                    grid.f_new.set(
                                        flat * Q + opposite,
                                        fvals[i] - moving_wall_correction(i, wall_velocity),
                                    );
                                }
                            }
                        }
                    }
                }
            }
            busy[9] += t0.elapsed().as_secs_f64();
        } else {
            for &cube in &plan.my_cubes {
                // Kernel 5: collision within the cube.
                let t0 = Instant::now();
                for local in 0..npc {
                    let flat = cdims.flat(cube, local);
                    // SAFETY: my cube's f / rho / ueq; sole toucher this phase.
                    unsafe {
                        let mut fvals = [0.0f64; Q];
                        for i in 0..Q {
                            fvals[i] = grid.f.get(flat * Q + i);
                        }
                        let rho = grid.rho.get(flat);
                        let ueq = [
                            grid.ueqx.get(flat),
                            grid.ueqy.get(flat),
                            grid.ueqz.get(flat),
                        ];
                        bgk_collide_node(&mut fvals, rho, ueq, [0.0; 3], tau);
                        for i in 0..Q {
                            grid.f.set(flat * Q + i, fvals[i]);
                        }
                    }
                }
                busy[4] += t0.elapsed().as_secs_f64();

                // Kernel 6: push streaming out of the cube. Cross-cube writes
                // are per-location exclusive: for a fixed direction the
                // source→destination map is injective, and bounce-back targets
                // (node, opposite) slots nothing else writes.
                let t0 = Instant::now();
                for local in 0..npc {
                    let flat = cdims.flat(cube, local);
                    let (x, y, z) = cdims.join(cube, local);
                    // SAFETY: reads of my own post-collision f; writes to
                    // unique f_new slots (argument above); no f_new reads until
                    // after barrier 1.
                    unsafe {
                        grid.f_new.set(flat * Q, grid.f.get(flat * Q));
                        for i in 1..Q {
                            let v = grid.f.get(flat * Q + i);
                            match router.route(x, y, z, i) {
                                CoordRoute::Neighbor(d) => {
                                    let dflat = indexer.flat(d[0], d[1], d[2]);
                                    grid.f_new.set(dflat * Q + i, v);
                                }
                                CoordRoute::BounceBack {
                                    opposite,
                                    wall_velocity,
                                } => {
                                    grid.f_new.set(
                                        flat * Q + opposite,
                                        v - moving_wall_correction(i, wall_velocity),
                                    );
                                }
                            }
                        }
                    }
                }
                busy[5] += t0.elapsed().as_secs_f64();
            }
        }

        // Barrier 1: all streamed populations in place.
        sync_barrier(barrier, timed, &mut barrier_wait_s, &mut barrier_waits)?;
        #[cfg(feature = "racecheck")]
        {
            rc_phase += 1;
            crate::racecheck::set_phase(rc_phase);
        }

        // ─── Loop 3: spread apply + velocity update on my cubes ───
        phase_flag.store(2, Ordering::Relaxed);
        crate::faultinject::maybe_panic(plan.tid, abs_step, WORKER_PHASES[2]);

        // Kernel 4 (apply): drain every producer's buffer aimed at me, in
        // tid order. With block fiber distribution, producer-tid order is
        // global fiber order, so the per-node addition order is the
        // sequential solver's — deterministic and thread-count-stable for
        // the force values themselves.
        let t0 = Instant::now();
        for producer in 0..n_threads {
            // SAFETY: buffer (producer → me) was finalized in loop 1,
            // separated from this read by barrier 1; the producer will not
            // touch it again until the next step's loop 1, separated by
            // barriers 2 and 3.
            let entries = unsafe { spread_bufs[producer * n_threads + plan.tid].get_ref() };
            for &(flat, df) in entries.iter() {
                let flat = flat as usize;
                // SAFETY: every staged node lies in a cube I own (the
                // buffer was keyed by `owner[cube]`), so I am the only
                // thread touching these force slots in this phase.
                unsafe {
                    grid.fx.add(flat, df[0]);
                    grid.fy.add(flat, df[1]);
                    grid.fz.add(flat, df[2]);
                }
            }
        }
        busy[3] += t0.elapsed().as_secs_f64();

        // Kernel 7: velocity update.
        let t0 = Instant::now();
        for &cube in &plan.my_cubes {
            for local in 0..npc {
                let flat = cdims.flat(cube, local);
                // SAFETY: my cube; f_new complete (barrier 1); force
                // complete (applied above by me, the owner); sole writer of
                // my macroscopic fields.
                unsafe {
                    let mut fvals = [0.0f64; Q];
                    for i in 0..Q {
                        fvals[i] = grid.f_new.get(flat * Q + i);
                    }
                    let force = [grid.fx.get(flat), grid.fy.get(flat), grid.fz.get(flat)];
                    let (rho, u, ueq) = node_moments_shifted(&fvals, force, tau);
                    grid.rho.set(flat, rho);
                    grid.ux.set(flat, u[0]);
                    grid.uy.set(flat, u[1]);
                    grid.uz.set(flat, u[2]);
                    grid.ueqx.set(flat, ueq[0]);
                    grid.ueqy.set(flat, ueq[1]);
                    grid.ueqz.set(flat, ueq[2]);
                }
            }
        }
        busy[6] += t0.elapsed().as_secs_f64();

        // Barrier 2: all velocities in place.
        sync_barrier(barrier, timed, &mut barrier_wait_s, &mut barrier_waits)?;
        #[cfg(feature = "racecheck")]
        {
            rc_phase += 1;
            crate::racecheck::set_phase(rc_phase);
        }

        // ─── Loop 4: move my fibers (kernel 8) ───
        phase_flag.store(3, Ordering::Relaxed);
        crate::faultinject::maybe_panic(plan.tid, abs_step, WORKER_PHASES[3]);
        let t0 = Instant::now();
        {
            let view = CubeVelocityView {
                cdims,
                ux: &grid.ux,
                uy: &grid.uy,
                uz: &grid.uz,
            };
            for &fiber in &plan.my_fibers {
                for node in 0..nn {
                    let i = fiber * nn + node;
                    // SAFETY: my fiber's position; velocities read-only in
                    // this phase (barrier 2 / barrier 3 + 1 separation).
                    unsafe {
                        let mut p = sheet_pos.get(i);
                        let u = ib::interp::interpolate_velocity(p, delta, dims, &bc, &view);
                        p[0] += u[0];
                        p[1] += u[1];
                        p[2] += u[2];
                        sheet_pos.set(i, p);
                    }
                }
            }
        }
        busy[7] += t0.elapsed().as_secs_f64();

        // ─── Loop 5: buffer copy (kernel 9) + force reseed on my cubes ───
        phase_flag.store(4, Ordering::Relaxed);
        crate::faultinject::maybe_panic(plan.tid, abs_step, WORKER_PHASES[4]);
        let t0 = Instant::now();
        for &cube in &plan.my_cubes {
            let a = cube * npc * Q;
            // SAFETY: my cube's blocks; nobody else touches f or f_new of
            // my cubes in this phase, and force writes (loop 3 of the next
            // step) are separated by barriers 3 and 1.
            unsafe {
                grid.f.copy_from(&grid.f_new, a, npc * Q);
                let base = cube * npc;
                for l in 0..npc {
                    grid.fx.set(base + l, body[0]);
                    grid.fy.set(base + l, body[1]);
                    grid.fz.set(base + l, body[2]);
                }
            }
        }
        busy[8] += t0.elapsed().as_secs_f64();

        // Barrier 3: end of time step.
        sync_barrier(barrier, timed, &mut barrier_wait_s, &mut barrier_waits)?;
        #[cfg(feature = "racecheck")]
        {
            rc_phase += 1;
            crate::racecheck::set_phase(rc_phase);
        }

        // Flush running totals into my registry slot (single writer).
        if let Some(slot) = slot {
            slot.store_kernel_seconds(&busy);
            slot.store_barrier_wait(barrier_wait_s, barrier_waits);
        }
    }

    Ok(busy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialSolver;

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn single_thread_matches_sequential() {
        let cfg = SimulationConfig::quick_test();
        let mut seq = SequentialSolver::new(cfg);
        let mut cube = CubeSolver::new(cfg, 1);
        seq.run(6);
        cube.run(6);
        let cube_state = cube.to_state();
        assert_eq!(cube_state.step, 6);
        let err = max_abs_diff(&seq.state.fluid.f, &cube_state.fluid.f);
        assert!(err < 1e-13, "distribution mismatch {err}");
        let pos_err = seq
            .state
            .sheet
            .pos
            .iter()
            .zip(&cube_state.sheet.pos)
            .flat_map(|(a, b)| (0..3).map(move |i| (a[i] - b[i]).abs()))
            .fold(0.0f64, f64::max);
        assert!(pos_err < 1e-13, "sheet mismatch {pos_err}");
    }

    #[test]
    fn multi_thread_matches_sequential() {
        let cfg = SimulationConfig::quick_test();
        let mut seq = SequentialSolver::new(cfg);
        seq.run(6);
        for threads in [2, 4, 8] {
            let mut cube = CubeSolver::new(cfg, threads);
            cube.run(6);
            let cs = cube.to_state();
            let err = max_abs_diff(&seq.state.fluid.ux, &cs.fluid.ux);
            assert!(err < 1e-12, "{threads} threads: velocity mismatch {err}");
            let pos_err = seq
                .state
                .sheet
                .pos
                .iter()
                .zip(&cs.sheet.pos)
                .flat_map(|(a, b)| (0..3).map(move |i| (a[i] - b[i]).abs()))
                .fold(0.0f64, f64::max);
            assert!(
                pos_err < 1e-12,
                "{threads} threads: sheet mismatch {pos_err}"
            );
        }
    }

    #[test]
    fn split_runs_match_one_run() {
        let cfg = SimulationConfig::quick_test();
        let mut a = CubeSolver::new(cfg, 2);
        let mut b = CubeSolver::new(cfg, 2);
        a.run(6);
        b.run(3);
        b.run(3);
        assert_eq!(a.step, b.step);
        let sa = a.to_state();
        let sb = b.to_state();
        // The buffered spread applies contributions in a fixed order, so
        // restarting the worker team must be *bit-exact* — the property
        // checkpoint/resume equivalence rests on.
        assert_eq!(
            sa.fluid.f, sb.fluid.f,
            "restarting the worker team changed results"
        );
        assert_eq!(sa.sheet.pos, sb.sheet.pos);
    }

    #[test]
    fn reruns_are_bit_identical() {
        // Determinism for a fixed thread count: same input, same thread
        // count, same bits — no dependence on lock timing remains.
        let cfg = SimulationConfig::quick_test();
        let mut a = CubeSolver::new(cfg, 4);
        let mut b = CubeSolver::new(cfg, 4);
        a.run(6);
        b.run(6);
        let sa = a.to_state();
        let sb = b.to_state();
        assert_eq!(sa.fluid.f, sb.fluid.f);
        assert_eq!(sa.fluid.ux, sb.fluid.ux);
        assert_eq!(sa.sheet.pos, sb.sheet.pos);
    }

    #[test]
    fn std_barrier_flavour_matches() {
        let cfg = SimulationConfig::quick_test();
        let mut a = CubeSolver::new(cfg, 3);
        let mut b = CubeSolver::new(cfg, 3);
        b.barrier_kind = BarrierKind::Std;
        a.run(4);
        b.run(4);
        let err = max_abs_diff(&a.to_state().fluid.f, &b.to_state().fluid.f);
        assert!(err < 1e-13, "barrier flavour changed results: {err}");
    }

    #[test]
    fn cyclic_distribution_matches_block() {
        let cfg = SimulationConfig::quick_test();
        let mut a = CubeSolver::new(cfg, 4);
        let mut b = CubeSolver::new(cfg, 4);
        b.policy = Policy::Cyclic;
        a.run(5);
        b.run(5);
        let sa = a.to_state();
        let sb = b.to_state();
        let err = max_abs_diff(&sa.fluid.ux, &sb.fluid.ux);
        assert!(err < 1e-12, "distribution policy changed physics: {err}");
    }

    #[test]
    fn profiling_is_populated() {
        let mut cube = CubeSolver::new(SimulationConfig::quick_test(), 2);
        let report = cube.run(3);
        assert!(cube.profile.total(KernelId::Collision).as_nanos() > 0);
        assert_eq!(report.steps, 3);
        assert!(report.wall.as_nanos() > 0);
        assert!(cube.imbalance.total_critical() > 0.0);
    }

    #[test]
    fn fused_plan_is_bit_identical_to_split() {
        let split_cfg = SimulationConfig::quick_test();
        let mut fused_cfg = split_cfg;
        fused_cfg.plan = KernelPlan::Fused;
        for threads in [1, 4] {
            let mut split = CubeSolver::new(split_cfg, threads);
            let mut fused = CubeSolver::new(fused_cfg, threads);
            split.run(6);
            fused.run(6);
            let ss = split.to_state();
            let fs = fused.to_state();
            // Same arithmetic, same slots: exact agreement per thread count.
            assert_eq!(ss.fluid.f, fs.fluid.f, "{threads} threads");
            assert_eq!(ss.sheet.pos, fs.sheet.pos, "{threads} threads");
            assert_eq!(fused.profile.calls(KernelId::FusedCollideStream), 1);
            assert_eq!(fused.profile.calls(KernelId::Stream), 1); // zero-duration slot
            assert!(fused.profile.total(KernelId::Stream).is_zero());
            assert!(fused.profile.total(KernelId::FusedCollideStream).as_nanos() > 0);
        }
    }

    #[test]
    fn zero_steps_is_a_noop() {
        let mut cube = CubeSolver::new(SimulationConfig::quick_test(), 2);
        let before = cube.to_state();
        cube.run(0);
        let after = cube.to_state();
        assert_eq!(before.fluid.f, after.fluid.f);
        assert_eq!(before.step, after.step);
    }

    #[test]
    fn try_run_is_ok_on_healthy_runs() {
        let mut cube = CubeSolver::new(SimulationConfig::quick_test(), 2);
        let report = cube.try_run(3).unwrap();
        assert_eq!(report.steps, 3);
        assert_eq!(cube.step, 3);
    }
}
