//! The cube-centric parallel LBM-IB solver of Section V (Algorithm 4).
//!
//! The fluid grid is stored cube-blocked ([`lbm::cube_grid::CubeFluidGrid`]),
//! cubes are statically assigned to a 3D thread mesh by `cube2thread`
//! (block distribution by default) and fibers by `fiber2thread`. `run()`
//! launches one long-lived worker per thread; each time step every worker
//! executes the five loops of Algorithm 4 over *its own* cubes and fibers,
//! with exactly three barriers:
//!
//! ```text
//! loop 1  fibers:  kernels 1–4 (spread takes the destination cube
//!                  owner's lock — the only phase with write sharing)
//! loop 2  cubes:   kernel 5 (collision) + kernel 6 (push streaming;
//!                  cross-cube writes hit unique (node, direction) slots,
//!                  so they are per-location exclusive without locks)
//! ───────────────── barrier 1 (streamed populations in place)
//! loop 3  cubes:   kernel 7 (velocity update)
//! ───────────────── barrier 2 (velocities in place)
//! loop 4  fibers:  kernel 8 (move fibers; reads velocities anywhere,
//!                  writes only its own fibers)
//! loop 5  cubes:   kernel 9 (buffer copy) + force reset for next step
//! ───────────────── barrier 3 (end of time step)
//! ```

use std::time::Instant;

use ib::delta::for_each_influence;
use ib::forces::{bending_at, stretching_at, SheetTopology};
use ib::interp::VelocityField;
use ib::sheet::FiberSheet;
use ib::tether::{Tether, TetherSet};
use lbm::boundary::{moving_wall_correction, CoordRoute, StreamRouter};
use lbm::collision::bgk_collide_node;
use lbm::cube_grid::{CubeDims, CubeFluidGrid};
use lbm::distribution::{CubeDistribution, FiberDistribution, Policy, ThreadMesh};
use lbm::grid::Dims;
use lbm::lattice::Q;
use lbm::macroscopic::node_moments_shifted;
use std::sync::Mutex;

use crate::barrier::{BarrierKind, PhaseBarrier};
use crate::config::{KernelPlan, SimulationConfig};
use crate::profiling::{ImbalanceTracker, KernelId, KernelProfile};
use crate::sharedgrid::{SharedCubeGrid, SharedSlice};
use crate::solver::RunReport;
use crate::state::SimState;
use crate::telemetry::{MetricsRegistry, ThreadSlot};

/// Read-only fluid-velocity view for the interpolation of loop 4.
///
/// Reads are sound during loop 4 because the velocity arrays are written
/// only in loop 3, separated from loop 4 by barrier 2 (and from the next
/// step's loop 3 by barriers 3 and 1).
struct CubeVelocityView<'a> {
    cdims: CubeDims,
    ux: &'a SharedSlice<f64>,
    uy: &'a SharedSlice<f64>,
    uz: &'a SharedSlice<f64>,
}

impl VelocityField for CubeVelocityView<'_> {
    #[inline]
    fn velocity_at(&self, x: usize, y: usize, z: usize) -> [f64; 3] {
        let i = self.cdims.flat_of_global(x, y, z);
        // SAFETY: phase invariant documented on the type.
        unsafe { [self.ux.get(i), self.uy.get(i), self.uz.get(i)] }
    }
}

/// Precomputed coordinate→flat-index tables for the cube layout, avoiding
/// the div/mod of [`CubeDims::flat_of_global`] in the streaming hot loop.
struct CubeIndexer {
    cy: usize,
    cz: usize,
    k: usize,
    npc: usize,
    cube_of: [Vec<usize>; 3],
    local_of: [Vec<usize>; 3],
}

impl CubeIndexer {
    fn new(cdims: CubeDims) -> Self {
        let ext = [cdims.dims.nx, cdims.dims.ny, cdims.dims.nz];
        let mut cube_of: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut local_of: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for a in 0..3 {
            cube_of[a] = (0..ext[a]).map(|v| v / cdims.k).collect();
            local_of[a] = (0..ext[a]).map(|v| v % cdims.k).collect();
        }
        Self {
            cy: cdims.cy,
            cz: cdims.cz,
            k: cdims.k,
            npc: cdims.nodes_per_cube(),
            cube_of,
            local_of,
        }
    }

    #[inline]
    fn flat(&self, x: usize, y: usize, z: usize) -> usize {
        let cube =
            (self.cube_of[0][x] * self.cy + self.cube_of[1][y]) * self.cz + self.cube_of[2][z];
        let local =
            (self.local_of[0][x] * self.k + self.local_of[1][y]) * self.k + self.local_of[2][z];
        cube * self.npc + local
    }
}

/// Per-step work description for one worker thread.
struct WorkerPlan {
    tid: usize,
    my_cubes: Vec<usize>,
    my_fibers: Vec<usize>,
    my_tethers: Vec<Tether>,
}

/// The cube-centric solver.
pub struct CubeSolver {
    pub config: SimulationConfig,
    n_threads: usize,
    /// Barrier flavour (spin by default; `Std` for the ablation).
    pub barrier_kind: BarrierKind,
    /// Cube distribution policy (block by default, as in the paper).
    pub policy: Policy,
    cdims: CubeDims,
    grid: CubeFluidGrid,
    pub sheet: FiberSheet,
    tethers: TetherSet,
    pub step: u64,
    pub profile: KernelProfile,
    pub imbalance: ImbalanceTracker,
    /// When true, [`CubeSolver::run`] collects per-worker telemetry (kernel
    /// busy time, per-barrier wait, cube/fiber ownership) into its report.
    pub telemetry_enabled: bool,
}

impl CubeSolver {
    /// Builds the solver with `n_threads` workers laid out on a near-cubic
    /// thread mesh.
    pub fn new(config: SimulationConfig, n_threads: usize) -> Self {
        Self::from_state(SimState::new(config), n_threads)
    }

    /// Builds the solver from an existing flat state (reordering the fluid
    /// into cube-blocked storage).
    pub fn from_state(state: SimState, n_threads: usize) -> Self {
        assert!(n_threads > 0, "need at least one thread");
        let config = state.config;
        let cdims = CubeDims::new(config.dims(), config.cube_k);
        let mut grid = CubeFluidGrid::from_flat(&state.fluid, config.cube_k);
        // Loop 1 spreads *into* the force field, so it must start each step
        // pre-filled with the body force; loop 5 re-fills it for the next
        // step, and this seeds step 0.
        grid.fx.fill(config.body_force[0]);
        grid.fy.fill(config.body_force[1]);
        grid.fz.fill(config.body_force[2]);
        Self {
            config,
            n_threads,
            barrier_kind: BarrierKind::default(),
            policy: Policy::Block,
            cdims,
            grid,
            sheet: state.sheet,
            tethers: state.tethers,
            step: state.step,
            profile: KernelProfile::new(),
            imbalance: ImbalanceTracker::new(n_threads),
            telemetry_enabled: false,
        }
    }

    /// Number of worker threads.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// The thread mesh used by `cube2thread`.
    pub fn thread_mesh(&self) -> ThreadMesh {
        ThreadMesh::for_threads(self.n_threads)
    }

    /// Converts the current cube-blocked state back to a flat [`SimState`]
    /// (for verification against the other solvers and for output).
    pub fn to_state(&self) -> SimState {
        let mut fluid = self.grid.to_flat();
        // The flat solvers keep the force buffer as "last spread" rather
        // than "pre-seeded for next step"; zero the difference out of the
        // comparison by leaving forces as-is (verify ignores forces).
        let _ = &mut fluid;
        SimState {
            config: self.config,
            fluid,
            sheet: self.sheet.clone(),
            tethers: self.tethers.clone(),
            step: self.step,
        }
    }

    /// Runs `n_steps` time steps with the full worker team (Algorithm 4),
    /// reporting steps and wall time.
    pub fn run(&mut self, n_steps: u64) -> RunReport {
        if n_steps == 0 {
            return RunReport::default();
        }
        let n_threads = self.n_threads;
        let cdims = self.cdims;
        let dims = cdims.dims;
        let config = self.config;
        let topo = self.sheet.topology();
        let nn = topo.nodes_per_fiber;

        // Static data distribution (the paper's cube2thread / fiber2thread).
        let dist = CubeDistribution {
            mesh: self.thread_mesh(),
            policy: self.policy,
        };
        let owner = dist.ownership_table(&cdims);
        let fdist = FiberDistribution {
            n_threads,
            policy: Policy::Block,
        };

        let mut plans: Vec<WorkerPlan> = (0..n_threads)
            .map(|tid| WorkerPlan {
                tid,
                my_cubes: Vec::new(),
                my_fibers: Vec::new(),
                my_tethers: Vec::new(),
            })
            .collect();
        for (cube, &o) in owner.iter().enumerate() {
            plans[o].my_cubes.push(cube);
        }
        for fiber in 0..topo.num_fibers {
            plans[fdist.fiber2thread(fiber, topo.num_fibers)]
                .my_fibers
                .push(fiber);
        }
        for t in &self.tethers.tethers {
            let fiber = t.node / nn;
            plans[fdist.fiber2thread(fiber, topo.num_fibers)]
                .my_tethers
                .push(*t);
        }

        // Move the state into shared form for the worker team.
        let grid =
            SharedCubeGrid::new(std::mem::replace(&mut self.grid, CubeFluidGrid::new(cdims)));
        let sheet_pos = SharedSlice::from_vec(std::mem::take(&mut self.sheet.pos));
        let sheet_bend = SharedSlice::from_vec(std::mem::take(&mut self.sheet.bending));
        let sheet_stretch = SharedSlice::from_vec(std::mem::take(&mut self.sheet.stretching));
        let sheet_elastic = SharedSlice::from_vec(std::mem::take(&mut self.sheet.elastic));

        let locks: Vec<Mutex<()>> = (0..n_threads).map(|_| Mutex::new(())).collect();
        let barrier = PhaseBarrier::new(self.barrier_kind, n_threads);

        // Per-worker telemetry slots: the static data assignment is known
        // before spawn; the workers flush busy/wait running totals into
        // their own slot every step (single writer, lock-free).
        let registry = self
            .telemetry_enabled
            .then(|| MetricsRegistry::new(n_threads));
        if let Some(registry) = &registry {
            for plan in &plans {
                registry
                    .slot(plan.tid)
                    .set_ownership(plan.my_cubes.len() as u64, plan.my_fibers.len() as u64);
            }
        }

        let t0 = Instant::now();
        let busy_times: Vec<[f64; KernelId::COUNT]> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n_threads);
            for plan in plans {
                let grid = &grid;
                let sheet_pos = &sheet_pos;
                let sheet_bend = &sheet_bend;
                let sheet_stretch = &sheet_stretch;
                let sheet_elastic = &sheet_elastic;
                let locks = &locks;
                let barrier = &barrier;
                let owner = &owner;
                let slot = registry.as_ref().map(|r| r.slot(plan.tid));
                handles.push(scope.spawn(move || {
                    worker(
                        plan,
                        n_steps,
                        config,
                        cdims,
                        dims,
                        topo,
                        grid,
                        sheet_pos,
                        sheet_bend,
                        sheet_stretch,
                        sheet_elastic,
                        locks,
                        barrier,
                        owner,
                        slot,
                    )
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let wall = t0.elapsed();

        // Tear the shared state back down.
        self.grid = grid.into_inner();
        self.sheet.pos = sheet_pos.into_vec();
        self.sheet.bending = sheet_bend.into_vec();
        self.sheet.stretching = sheet_stretch.into_vec();
        self.sheet.elastic = sheet_elastic.into_vec();
        self.step += n_steps;

        // Account profiling: per kernel, the critical path is the max busy
        // time across threads; imbalance comes from the spread of busy
        // times (one aggregated region per kernel for this run).
        for k in KernelId::ALL {
            let i = k.index();
            let busy: Vec<f64> = busy_times.iter().map(|b| b[i]).collect();
            let max = busy.iter().copied().fold(0.0, f64::max);
            self.profile
                .record(k, std::time::Duration::from_secs_f64(max));
            self.imbalance.record_region(k, &busy);
        }
        RunReport {
            steps: n_steps,
            wall,
            telemetry: registry.map(|r| r.snapshot("cube", n_steps, wall.as_secs_f64())),
        }
    }
}

/// One barrier wait, timed into the worker's accumulators only when
/// telemetry is on (`timed`), so telemetry-off runs keep the bare wait.
#[inline]
fn sync_barrier(barrier: &PhaseBarrier, timed: bool, wait_s: &mut f64, waits: &mut u64) {
    if timed {
        let (_, waited) = barrier.wait_timed();
        *wait_s += waited.as_secs_f64();
        *waits += 1;
    } else {
        barrier.wait();
    }
}

/// One worker's execution of Algorithm 4. Returns accumulated busy seconds
/// per kernel.
#[allow(clippy::too_many_arguments)]
fn worker(
    plan: WorkerPlan,
    n_steps: u64,
    config: SimulationConfig,
    cdims: CubeDims,
    dims: Dims,
    topo: SheetTopology,
    grid: &SharedCubeGrid,
    sheet_pos: &SharedSlice<[f64; 3]>,
    sheet_bend: &SharedSlice<[f64; 3]>,
    sheet_stretch: &SharedSlice<[f64; 3]>,
    sheet_elastic: &SharedSlice<[f64; 3]>,
    locks: &[Mutex<()>],
    barrier: &PhaseBarrier,
    owner: &[usize],
    slot: Option<&ThreadSlot>,
) -> [f64; KernelId::COUNT] {
    let mut busy = [0.0f64; KernelId::COUNT];
    let timed = slot.is_some();
    let mut barrier_wait_s = 0.0f64;
    let mut barrier_waits = 0u64;
    #[cfg(feature = "racecheck")]
    crate::racecheck::set_thread(plan.tid);
    #[cfg(feature = "racecheck")]
    let mut rc_phase: u64 = 0;
    #[cfg(feature = "racecheck")]
    crate::racecheck::set_phase(rc_phase);
    let nn = topo.nodes_per_fiber;
    let npc = cdims.nodes_per_cube();
    let router = StreamRouter::new(dims, &config.bc);
    let indexer = CubeIndexer::new(cdims);
    let bc = config.bc;
    let tau = config.tau;
    let delta = config.delta;
    let area = topo.ds_node * topo.ds_fiber;
    let body = config.body_force;

    for _step in 0..n_steps {
        // ─── Loop 1: fiber kernels 1–4 on my fibers ───
        {
            // SAFETY: during loop 1 every thread only *reads* positions
            // (written last in loop 4 of the previous step, published by
            // barrier 3).
            let pos: &[[f64; 3]] = unsafe { sheet_pos.as_slice_unchecked() };

            // Kernel 1: bending.
            let t0 = Instant::now();
            for &fiber in &plan.my_fibers {
                for node in 0..nn {
                    let i = fiber * nn + node;
                    // SAFETY: node i belongs to my fiber; sole writer.
                    unsafe { sheet_bend.set(i, bending_at(&topo, pos, fiber, node)) };
                }
            }
            busy[0] += t0.elapsed().as_secs_f64();

            // Kernel 2: stretching.
            let t0 = Instant::now();
            for &fiber in &plan.my_fibers {
                for node in 0..nn {
                    let i = fiber * nn + node;
                    // SAFETY: sole writer (my fiber).
                    unsafe { sheet_stretch.set(i, stretching_at(&topo, pos, fiber, node)) };
                }
            }
            busy[1] += t0.elapsed().as_secs_f64();

            // Kernel 3: elastic = bending + stretching (+ my tethers).
            let t0 = Instant::now();
            for &fiber in &plan.my_fibers {
                for node in 0..nn {
                    let i = fiber * nn + node;
                    // SAFETY: sole reader/writer of my fiber's force slots
                    // in this phase.
                    unsafe {
                        let b = sheet_bend.get(i);
                        let s = sheet_stretch.get(i);
                        sheet_elastic.set(i, [b[0] + s[0], b[1] + s[1], b[2] + s[2]]);
                    }
                }
            }
            for t in &plan.my_tethers {
                // SAFETY: tether nodes belong to my fibers.
                unsafe {
                    let p = sheet_pos.get(t.node);
                    let mut e = sheet_elastic.get(t.node);
                    for a in 0..3 {
                        e[a] -= t.stiffness * (p[a] - t.anchor[a]);
                    }
                    sheet_elastic.set(t.node, e);
                }
            }
            busy[2] += t0.elapsed().as_secs_f64();

            // Kernel 4: spread my fibers' elastic forces, locking the
            // destination cube's owner per cube batch.
            let t0 = Instant::now();
            let mut entries: Vec<(u32, u32, f64)> = Vec::with_capacity(128);
            for &fiber in &plan.my_fibers {
                for node in 0..nn {
                    let i = fiber * nn + node;
                    // SAFETY: my fiber's slots; no concurrent writers.
                    let p = unsafe { sheet_pos.get(i) };
                    // SAFETY: same — only this worker touches its fibers.
                    let e = unsafe { sheet_elastic.get(i) };
                    let f_l = [e[0] * area, e[1] * area, e[2] * area];
                    if f_l == [0.0, 0.0, 0.0] {
                        continue;
                    }
                    entries.clear();
                    for_each_influence(p, delta, dims, &bc, |inf| {
                        let (cube, local) = cdims.split(inf.x, inf.y, inf.z);
                        entries.push((cube as u32, local as u32, inf.weight));
                    });
                    entries.sort_unstable_by_key(|e| e.0);
                    let mut s = 0;
                    while s < entries.len() {
                        let cube = entries[s].0;
                        let mut e_end = s + 1;
                        while e_end < entries.len() && entries[e_end].0 == cube {
                            e_end += 1;
                        }
                        // Acquire the owner's private lock for this cube
                        // batch (the paper's mutual-exclusion scheme).
                        let guard = locks[owner[cube as usize]]
                            .lock()
                            .expect("owner lock poisoned");
                        #[cfg(feature = "racecheck")]
                        let _rc_lock = crate::racecheck::lock_scope();
                        for &(c, l, w) in &entries[s..e_end] {
                            let flat = cdims.flat(c as usize, l as usize);
                            // SAFETY: force slots are only written during
                            // loop 1, and every loop-1 writer holds the
                            // owner's lock.
                            unsafe {
                                grid.fx.add(flat, f_l[0] * w);
                                grid.fy.add(flat, f_l[1] * w);
                                grid.fz.add(flat, f_l[2] * w);
                            }
                        }
                        drop(guard);
                        s = e_end;
                    }
                }
            }
            busy[3] += t0.elapsed().as_secs_f64();
        }

        // ─── Loop 2: collision + streaming on my cubes ───
        if config.plan == KernelPlan::Fused {
            // Fused kernels 5+6: collide each of my nodes in registers and
            // push the result straight into f_new, one pass per cube.
            let t0 = Instant::now();
            for &cube in &plan.my_cubes {
                for local in 0..npc {
                    let flat = cdims.flat(cube, local);
                    let (x, y, z) = cdims.join(cube, local);
                    // SAFETY: reads my own pre-collision f / rho / ueq
                    // (sole toucher this phase); writes exactly the f_new
                    // slots the split streaming pass would (per-location
                    // exclusive — see the kernel 6 argument below), and no
                    // thread reads f_new before barrier 1. Skipping the f
                    // write-back is invisible: loop 3 reads f_new and loop
                    // 5 overwrites f wholesale.
                    unsafe {
                        let mut fvals = [0.0f64; Q];
                        for i in 0..Q {
                            fvals[i] = grid.f.get(flat * Q + i);
                        }
                        let rho = grid.rho.get(flat);
                        let ueq = [
                            grid.ueqx.get(flat),
                            grid.ueqy.get(flat),
                            grid.ueqz.get(flat),
                        ];
                        bgk_collide_node(&mut fvals, rho, ueq, [0.0; 3], tau);
                        grid.f_new.set(flat * Q, fvals[0]);
                        for i in 1..Q {
                            match router.route(x, y, z, i) {
                                CoordRoute::Neighbor(d) => {
                                    let dflat = indexer.flat(d[0], d[1], d[2]);
                                    grid.f_new.set(dflat * Q + i, fvals[i]);
                                }
                                CoordRoute::BounceBack {
                                    opposite,
                                    wall_velocity,
                                } => {
                                    grid.f_new.set(
                                        flat * Q + opposite,
                                        fvals[i] - moving_wall_correction(i, wall_velocity),
                                    );
                                }
                            }
                        }
                    }
                }
            }
            busy[9] += t0.elapsed().as_secs_f64();
        } else {
            for &cube in &plan.my_cubes {
                // Kernel 5: collision within the cube.
                let t0 = Instant::now();
                for local in 0..npc {
                    let flat = cdims.flat(cube, local);
                    // SAFETY: my cube's f / rho / ueq; sole toucher this phase.
                    unsafe {
                        let mut fvals = [0.0f64; Q];
                        for i in 0..Q {
                            fvals[i] = grid.f.get(flat * Q + i);
                        }
                        let rho = grid.rho.get(flat);
                        let ueq = [
                            grid.ueqx.get(flat),
                            grid.ueqy.get(flat),
                            grid.ueqz.get(flat),
                        ];
                        bgk_collide_node(&mut fvals, rho, ueq, [0.0; 3], tau);
                        for i in 0..Q {
                            grid.f.set(flat * Q + i, fvals[i]);
                        }
                    }
                }
                busy[4] += t0.elapsed().as_secs_f64();

                // Kernel 6: push streaming out of the cube. Cross-cube writes
                // are per-location exclusive: for a fixed direction the
                // source→destination map is injective, and bounce-back targets
                // (node, opposite) slots nothing else writes.
                let t0 = Instant::now();
                for local in 0..npc {
                    let flat = cdims.flat(cube, local);
                    let (x, y, z) = cdims.join(cube, local);
                    // SAFETY: reads of my own post-collision f; writes to
                    // unique f_new slots (argument above); no f_new reads until
                    // after barrier 1.
                    unsafe {
                        grid.f_new.set(flat * Q, grid.f.get(flat * Q));
                        for i in 1..Q {
                            let v = grid.f.get(flat * Q + i);
                            match router.route(x, y, z, i) {
                                CoordRoute::Neighbor(d) => {
                                    let dflat = indexer.flat(d[0], d[1], d[2]);
                                    grid.f_new.set(dflat * Q + i, v);
                                }
                                CoordRoute::BounceBack {
                                    opposite,
                                    wall_velocity,
                                } => {
                                    grid.f_new.set(
                                        flat * Q + opposite,
                                        v - moving_wall_correction(i, wall_velocity),
                                    );
                                }
                            }
                        }
                    }
                }
                busy[5] += t0.elapsed().as_secs_f64();
            }
        }

        // Barrier 1: all streamed populations in place.
        sync_barrier(barrier, timed, &mut barrier_wait_s, &mut barrier_waits);
        #[cfg(feature = "racecheck")]
        {
            rc_phase += 1;
            crate::racecheck::set_phase(rc_phase);
        }

        // ─── Loop 3: velocity update on my cubes (kernel 7) ───
        let t0 = Instant::now();
        for &cube in &plan.my_cubes {
            for local in 0..npc {
                let flat = cdims.flat(cube, local);
                // SAFETY: my cube; f_new complete (barrier 1); force
                // complete (spread ended before barrier 1); sole writer of
                // my macroscopic fields.
                unsafe {
                    let mut fvals = [0.0f64; Q];
                    for i in 0..Q {
                        fvals[i] = grid.f_new.get(flat * Q + i);
                    }
                    let force = [grid.fx.get(flat), grid.fy.get(flat), grid.fz.get(flat)];
                    let (rho, u, ueq) = node_moments_shifted(&fvals, force, tau);
                    grid.rho.set(flat, rho);
                    grid.ux.set(flat, u[0]);
                    grid.uy.set(flat, u[1]);
                    grid.uz.set(flat, u[2]);
                    grid.ueqx.set(flat, ueq[0]);
                    grid.ueqy.set(flat, ueq[1]);
                    grid.ueqz.set(flat, ueq[2]);
                }
            }
        }
        busy[6] += t0.elapsed().as_secs_f64();

        // Barrier 2: all velocities in place.
        sync_barrier(barrier, timed, &mut barrier_wait_s, &mut barrier_waits);
        #[cfg(feature = "racecheck")]
        {
            rc_phase += 1;
            crate::racecheck::set_phase(rc_phase);
        }

        // ─── Loop 4: move my fibers (kernel 8) ───
        let t0 = Instant::now();
        {
            let view = CubeVelocityView {
                cdims,
                ux: &grid.ux,
                uy: &grid.uy,
                uz: &grid.uz,
            };
            for &fiber in &plan.my_fibers {
                for node in 0..nn {
                    let i = fiber * nn + node;
                    // SAFETY: my fiber's position; velocities read-only in
                    // this phase (barrier 2 / barrier 3 + 1 separation).
                    unsafe {
                        let mut p = sheet_pos.get(i);
                        let u = ib::interp::interpolate_velocity(p, delta, dims, &bc, &view);
                        p[0] += u[0];
                        p[1] += u[1];
                        p[2] += u[2];
                        sheet_pos.set(i, p);
                    }
                }
            }
        }
        busy[7] += t0.elapsed().as_secs_f64();

        // ─── Loop 5: buffer copy (kernel 9) + force reseed on my cubes ───
        let t0 = Instant::now();
        for &cube in &plan.my_cubes {
            let a = cube * npc * Q;
            // SAFETY: my cube's blocks; nobody else touches f or f_new of
            // my cubes in this phase, and force writes (loop 1 of the next
            // step) are separated by barrier 3.
            unsafe {
                grid.f.copy_from(&grid.f_new, a, npc * Q);
                let base = cube * npc;
                for l in 0..npc {
                    grid.fx.set(base + l, body[0]);
                    grid.fy.set(base + l, body[1]);
                    grid.fz.set(base + l, body[2]);
                }
            }
        }
        busy[8] += t0.elapsed().as_secs_f64();

        // Barrier 3: end of time step.
        sync_barrier(barrier, timed, &mut barrier_wait_s, &mut barrier_waits);
        #[cfg(feature = "racecheck")]
        {
            rc_phase += 1;
            crate::racecheck::set_phase(rc_phase);
        }

        // Flush running totals into my registry slot (single writer).
        if let Some(slot) = slot {
            slot.store_kernel_seconds(&busy);
            slot.store_barrier_wait(barrier_wait_s, barrier_waits);
        }
    }

    let _ = plan.tid;
    busy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialSolver;

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn single_thread_matches_sequential() {
        let cfg = SimulationConfig::quick_test();
        let mut seq = SequentialSolver::new(cfg);
        let mut cube = CubeSolver::new(cfg, 1);
        seq.run(6);
        cube.run(6);
        let cube_state = cube.to_state();
        assert_eq!(cube_state.step, 6);
        let err = max_abs_diff(&seq.state.fluid.f, &cube_state.fluid.f);
        assert!(err < 1e-13, "distribution mismatch {err}");
        let pos_err = seq
            .state
            .sheet
            .pos
            .iter()
            .zip(&cube_state.sheet.pos)
            .flat_map(|(a, b)| (0..3).map(move |i| (a[i] - b[i]).abs()))
            .fold(0.0f64, f64::max);
        assert!(pos_err < 1e-13, "sheet mismatch {pos_err}");
    }

    #[test]
    fn multi_thread_matches_sequential() {
        let cfg = SimulationConfig::quick_test();
        let mut seq = SequentialSolver::new(cfg);
        seq.run(6);
        for threads in [2, 4, 8] {
            let mut cube = CubeSolver::new(cfg, threads);
            cube.run(6);
            let cs = cube.to_state();
            let err = max_abs_diff(&seq.state.fluid.ux, &cs.fluid.ux);
            assert!(err < 1e-12, "{threads} threads: velocity mismatch {err}");
            let pos_err = seq
                .state
                .sheet
                .pos
                .iter()
                .zip(&cs.sheet.pos)
                .flat_map(|(a, b)| (0..3).map(move |i| (a[i] - b[i]).abs()))
                .fold(0.0f64, f64::max);
            assert!(
                pos_err < 1e-12,
                "{threads} threads: sheet mismatch {pos_err}"
            );
        }
    }

    #[test]
    fn split_runs_match_one_run() {
        let cfg = SimulationConfig::quick_test();
        let mut a = CubeSolver::new(cfg, 2);
        let mut b = CubeSolver::new(cfg, 2);
        a.run(6);
        b.run(3);
        b.run(3);
        assert_eq!(a.step, b.step);
        let sa = a.to_state();
        let sb = b.to_state();
        // Lock-acquisition order can regroup floating-point adds during
        // spreading, so compare with a rounding-level tolerance.
        let err = max_abs_diff(&sa.fluid.f, &sb.fluid.f);
        assert!(
            err < 1e-13,
            "restarting the worker team changed results: {err}"
        );
        let pos_err = sa
            .sheet
            .pos
            .iter()
            .zip(&sb.sheet.pos)
            .flat_map(|(p, q)| (0..3).map(move |i| (p[i] - q[i]).abs()))
            .fold(0.0f64, f64::max);
        assert!(pos_err < 1e-13, "{pos_err}");
    }

    #[test]
    fn std_barrier_flavour_matches() {
        let cfg = SimulationConfig::quick_test();
        let mut a = CubeSolver::new(cfg, 3);
        let mut b = CubeSolver::new(cfg, 3);
        b.barrier_kind = BarrierKind::Std;
        a.run(4);
        b.run(4);
        let err = max_abs_diff(&a.to_state().fluid.f, &b.to_state().fluid.f);
        assert!(err < 1e-13, "barrier flavour changed results: {err}");
    }

    #[test]
    fn cyclic_distribution_matches_block() {
        let cfg = SimulationConfig::quick_test();
        let mut a = CubeSolver::new(cfg, 4);
        let mut b = CubeSolver::new(cfg, 4);
        b.policy = Policy::Cyclic;
        a.run(5);
        b.run(5);
        let sa = a.to_state();
        let sb = b.to_state();
        let err = max_abs_diff(&sa.fluid.ux, &sb.fluid.ux);
        assert!(err < 1e-12, "distribution policy changed physics: {err}");
    }

    #[test]
    fn profiling_is_populated() {
        let mut cube = CubeSolver::new(SimulationConfig::quick_test(), 2);
        let report = cube.run(3);
        assert!(cube.profile.total(KernelId::Collision).as_nanos() > 0);
        assert_eq!(report.steps, 3);
        assert!(report.wall.as_nanos() > 0);
        assert!(cube.imbalance.total_critical() > 0.0);
    }

    #[test]
    fn fused_plan_is_bit_identical_to_split() {
        let split_cfg = SimulationConfig::quick_test();
        let mut fused_cfg = split_cfg;
        fused_cfg.plan = KernelPlan::Fused;
        for threads in [1, 4] {
            let mut split = CubeSolver::new(split_cfg, threads);
            let mut fused = CubeSolver::new(fused_cfg, threads);
            split.run(6);
            fused.run(6);
            let ss = split.to_state();
            let fs = fused.to_state();
            // Same arithmetic, same slots: exact agreement per thread count.
            assert_eq!(ss.fluid.f, fs.fluid.f, "{threads} threads");
            assert_eq!(ss.sheet.pos, fs.sheet.pos, "{threads} threads");
            assert_eq!(fused.profile.calls(KernelId::FusedCollideStream), 1);
            assert_eq!(fused.profile.calls(KernelId::Stream), 1); // zero-duration slot
            assert!(fused.profile.total(KernelId::Stream).is_zero());
            assert!(fused.profile.total(KernelId::FusedCollideStream).as_nanos() > 0);
        }
    }

    #[test]
    fn zero_steps_is_a_noop() {
        let mut cube = CubeSolver::new(SimulationConfig::quick_test(), 2);
        let before = cube.to_state();
        cube.run(0);
        let after = cube.to_state();
        assert_eq!(before.fluid.f, after.fluid.f);
        assert_eq!(before.step, after.step);
    }
}
