//! Self-healing supervision: rollback-and-retry recovery with backoff
//! and graceful degradation.
//!
//! PR 3's watchdog *detects* a blown-up run and PR 4's typed failures
//! (`Unstable`, `WorkerPanicked`, `HaloTimeout`, `RankDisconnected`) stop
//! it cleanly — but every one of those errors still killed the run. The
//! [`Supervisor`] composes the existing pieces into a runtime that heals
//! instead of dying: it wraps any [`Solver`] and, on a typed error,
//!
//! 1. **rolls back** to the last good state — the crash-consistent
//!    on-disk checkpoint (CRC + `.prev` rotation, see
//!    [`crate::checkpoint`]) when [`RecoveryPolicy::checkpoint`] is set,
//!    the in-memory last-good snapshot otherwise;
//! 2. **retries** under a bounded per-rung budget
//!    ([`RecoveryPolicy::retry_limit`]) with jitter-free exponential
//!    backoff ([`backoff_delay`]) — deterministic delays keep healed runs
//!    reproducible;
//! 3. **degrades** when the same rung keeps failing, walking a ladder:
//!    a repeatedly-panicking cube worker is quarantined by shrinking the
//!    thread mesh (`cube2thread`/`fiber2thread` remap to `threads − 1`,
//!    same 3-barrier Algorithm-4 structure), then the backend falls back
//!    across `dist → cube → omp → seq`. For the distributed prototype
//!    this means timed-out halo exchanges are retried with backoff first,
//!    and only a persistently silent peer is declared dead (the run
//!    continues on a shared-memory backend).
//!
//! Every intervention is recorded in a typed [`RecoveryReport`], surfaced
//! through [`RunReport::recovery`] and the CLI's `--metrics` JSON.
//!
//! Determinism: all four backends are bit-deterministic for a fixed
//! thread count, and rollback restores a committed boundary state, so a
//! healed run whose mesh and backend never changed is **bit-identical**
//! to a fault-free run. After a mesh remap or backend switch the physics
//! agrees to the usual cross-solver tolerance (≤1e-12 per step,
//! `verify::cross_check`).

use std::time::Duration;

use crate::config::RecoveryPolicy;
use crate::solver::{build_solver, RunReport, Solver, SolverError};
use crate::state::SimState;
use crate::telemetry::RunTelemetry;

/// What the degradation ladder did after one failed attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Rolled back and retried on the same backend and thread mesh.
    Retry,
    /// Quarantined a repeatedly-panicking cube worker by remapping
    /// `cube2thread`/`fiber2thread` onto a shrunk thread mesh.
    RemapMesh { from: usize, to: usize },
    /// Fell back to the next backend down the ladder.
    SwitchBackend { from: String, to: String },
    /// Retry budget and ladder exhausted; the error was returned to the
    /// caller.
    GiveUp,
}

/// One recovery intervention: the error that triggered it, where the run
/// was rolled back to, the backoff served, and what the ladder did.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryEvent {
    /// 1-based failed-attempt number within this report.
    pub attempt: u32,
    /// Stable slug of the error variant (e.g. `worker_panicked`).
    pub error_kind: &'static str,
    /// Display form of the triggering error.
    pub error: String,
    /// Step of the restored snapshot.
    pub rollback_step: u64,
    /// Where the snapshot came from: `memory`, `disk`, or `disk-prev`
    /// (the rotated fallback after a torn primary).
    pub rollback_source: &'static str,
    /// Deterministic delay served before this retry.
    pub backoff: Duration,
    /// What the ladder did next.
    pub action: RecoveryAction,
}

/// Everything the supervisor did across a run: attempts, the full event
/// log, the backoff total, and where the ladder ended up.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryReport {
    /// Failed attempts observed (equals `events.len()`).
    pub attempts: u32,
    /// True when the retry budget and ladder were exhausted and the last
    /// error was returned to the caller.
    pub gave_up: bool,
    /// Backend the run finished (or gave up) on.
    pub final_backend: String,
    /// Thread/rank count the run finished (or gave up) on.
    pub final_threads: usize,
    /// Sum of all backoff delays served.
    pub total_backoff: Duration,
    /// One entry per failed attempt, in order.
    pub events: Vec<RecoveryEvent>,
}

impl RecoveryReport {
    /// Merges a subsequent run's report into this one (events appended;
    /// the final backend/mesh is the later run's).
    pub fn merge(&mut self, other: RecoveryReport) {
        self.attempts += other.attempts;
        self.gave_up |= other.gave_up;
        self.total_backoff += other.total_backoff;
        self.events.extend(other.events);
        self.final_backend = other.final_backend;
        self.final_threads = other.final_threads;
    }

    /// Serialises the report as a JSON value (two-space-indented to sit
    /// under a `"recovery"` key at the top level of the `--metrics`
    /// document; see [`metrics_document`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n");
        out.push_str(&format!("    \"attempts\": {},\n", self.attempts));
        out.push_str(&format!("    \"gave_up\": {},\n", self.gave_up));
        out.push_str(&format!(
            "    \"final_backend\": \"{}\",\n",
            json_escape(&self.final_backend)
        ));
        out.push_str(&format!("    \"final_threads\": {},\n", self.final_threads));
        out.push_str(&format!(
            "    \"total_backoff_ms\": {},\n",
            self.total_backoff.as_millis()
        ));
        out.push_str("    \"events\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            let action = match &e.action {
                RecoveryAction::Retry => "\"action\": \"retry\"".to_string(),
                RecoveryAction::RemapMesh { from, to } => format!(
                    "\"action\": \"remap-mesh\", \"from_threads\": {from}, \"to_threads\": {to}"
                ),
                RecoveryAction::SwitchBackend { from, to } => format!(
                    "\"action\": \"switch-backend\", \"from_backend\": \"{}\", \"to_backend\": \"{}\"",
                    json_escape(from),
                    json_escape(to)
                ),
                RecoveryAction::GiveUp => "\"action\": \"give-up\"".to_string(),
            };
            out.push_str(&format!(
                "      {{\"attempt\": {}, \"error_kind\": \"{}\", \"error\": \"{}\", \"rollback_step\": {}, \"rollback_source\": \"{}\", \"backoff_ms\": {}, {}}}{}\n",
                e.attempt,
                e.error_kind,
                json_escape(&e.error),
                e.rollback_step,
                e.rollback_source,
                e.backoff.as_millis(),
                action,
                if i + 1 < self.events.len() { "," } else { "" }
            ));
        }
        out.push_str("    ]\n  }");
        out
    }
}

/// Minimal JSON string escaping for error messages and backend names.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Stable slug for a [`SolverError`] variant, used in the recovery JSON
/// so downstream tooling can match on kinds without parsing messages.
pub fn error_kind(e: &SolverError) -> &'static str {
    match e {
        SolverError::Config(_) => "config",
        SolverError::ZeroThreads => "zero_threads",
        SolverError::NonPeriodicX => "non_periodic_x",
        SolverError::TooManyRanks { .. } => "too_many_ranks",
        SolverError::UnknownSolver(_) => "unknown_solver",
        SolverError::Unstable { .. } => "unstable",
        SolverError::WorkerPanicked { .. } => "worker_panicked",
        SolverError::HaloTimeout { .. } => "halo_timeout",
        SolverError::RankDisconnected { .. } => "rank_disconnected",
        SolverError::Checkpoint { .. } => "checkpoint",
    }
}

/// The jitter-free exponential backoff schedule: `backoff × 2^(k−1)` for
/// the `k`-th consecutive failure, capped at
/// [`RecoveryPolicy::max_backoff`]. Deterministic by design — recovery
/// must never introduce a source of run-to-run variation.
pub fn backoff_delay(policy: &RecoveryPolicy, consecutive_failures: u32) -> Duration {
    if consecutive_failures == 0 || policy.backoff.is_zero() {
        return Duration::ZERO;
    }
    let exp = consecutive_failures.saturating_sub(1).min(20);
    policy
        .backoff
        .saturating_mul(1u32 << exp)
        .min(policy.max_backoff)
}

/// Composes the CLI's `--metrics` JSON document from the telemetry
/// snapshot and the recovery report, either of which may be absent.
pub fn metrics_document(
    telemetry: Option<&RunTelemetry>,
    recovery: Option<&RecoveryReport>,
) -> String {
    match (telemetry, recovery) {
        (Some(t), Some(r)) => t.to_json_with_sections(&[("recovery", r.to_json())]),
        (Some(t), None) => t.to_json(),
        (None, Some(r)) => format!("{{\n  \"recovery\": {}\n}}\n", r.to_json()),
        (None, None) => "{}\n".to_string(),
    }
}

/// Wraps any solver in the automatic recovery loop described in the
/// module docs. Implements [`Solver`] itself, so callers drive it exactly
/// like the solver it supervises.
pub struct Supervisor {
    policy: RecoveryPolicy,
    /// Current rung: backend name (`seq|omp|cube|dist`) …
    backend: String,
    /// … and thread/rank count.
    threads: usize,
    solver: Box<dyn Solver>,
    /// State at the last committed chunk boundary — the in-memory
    /// rollback anchor (mirrored to disk when the policy has a
    /// checkpoint path).
    last_good: SimState,
    telemetry: bool,
    /// Cumulative report across all `run` calls.
    total: RecoveryReport,
}

impl Supervisor {
    /// Builds a supervisor over the backend named by `kind` (same names
    /// as [`build_solver`]). When the policy carries a checkpoint path,
    /// the initial state is saved immediately so a failure in the very
    /// first chunk can roll back through the on-disk machinery.
    pub fn new(
        kind: &str,
        state: SimState,
        threads: usize,
        policy: RecoveryPolicy,
    ) -> Result<Self, SolverError> {
        let last_good = state.clone();
        let solver = build_solver(kind, state, threads)?;
        if let Some(path) = &policy.checkpoint {
            crate::checkpoint::save(&last_good, path).map_err(|e| SolverError::Checkpoint {
                detail: e.to_string(),
            })?;
        }
        Ok(Self {
            policy,
            backend: kind.to_string(),
            threads,
            solver,
            last_good,
            telemetry: false,
            total: RecoveryReport {
                final_backend: kind.to_string(),
                final_threads: threads,
                ..Default::default()
            },
        })
    }

    /// The cumulative recovery record across every `run` call — also
    /// available after a give-up, when the per-run report inside
    /// [`RunReport::recovery`] was lost with the error.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.total
    }

    /// Current backend rung (`seq|omp|cube|dist`).
    pub fn backend(&self) -> &str {
        &self.backend
    }

    /// Current thread/rank count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Commits the current solver state as the rollback anchor.
    fn commit(&mut self) -> Result<(), SolverError> {
        self.last_good = self.solver.to_state();
        if let Some(path) = &self.policy.checkpoint {
            crate::checkpoint::save(&self.last_good, path).map_err(|e| {
                SolverError::Checkpoint {
                    detail: e.to_string(),
                }
            })?;
        }
        Ok(())
    }

    /// Restores the last good state: from disk (exercising the CRC check
    /// and `.prev` rotation fallback) when configured and readable, from
    /// the in-memory snapshot otherwise.
    fn rollback(&self) -> (SimState, &'static str) {
        if let Some(path) = &self.policy.checkpoint {
            match crate::checkpoint::resume_with_runtime(path, &self.last_good.config) {
                Ok((state, crate::checkpoint::ResumeSource::Primary)) => return (state, "disk"),
                Ok((state, crate::checkpoint::ResumeSource::Fallback)) => {
                    return (state, "disk-prev")
                }
                Err(_) => {} // both snapshots unreadable; memory still holds
            }
        }
        (self.last_good.clone(), "memory")
    }

    /// Rebuilds the solver for the current rung over `state`.
    fn rebuild(&mut self, state: SimState) -> Result<(), SolverError> {
        self.solver = build_solver(&self.backend, state, self.threads)?;
        self.solver.set_telemetry(self.telemetry);
        Ok(())
    }

    /// Walks one step down the degradation ladder and rebuilds there:
    /// quarantine-shrink the cube mesh after a worker panic, otherwise
    /// fall back `dist → cube → omp → seq` (skipping rungs the state
    /// cannot build on). `None` means the ladder is exhausted.
    fn degrade_and_rebuild(
        &mut self,
        err: &SolverError,
        state: &SimState,
    ) -> Option<RecoveryAction> {
        if matches!(err, SolverError::WorkerPanicked { .. })
            && self.backend == "cube"
            && self.threads > 1
        {
            let from = self.threads;
            self.threads -= 1;
            if self.rebuild(state.clone()).is_ok() {
                return Some(RecoveryAction::RemapMesh {
                    from,
                    to: self.threads,
                });
            }
        }
        let from = self.backend.clone();
        loop {
            let next = match self.backend.as_str() {
                "dist" => "cube",
                "cube" => "omp",
                "omp" => "seq",
                _ => return None,
            };
            self.backend = next.to_string();
            if self.rebuild(state.clone()).is_ok() {
                return Some(RecoveryAction::SwitchBackend {
                    from,
                    to: next.to_string(),
                });
            }
        }
    }

    /// Advances `n` steps under supervision. On success the report's
    /// [`RunReport::recovery`] holds this call's interventions (possibly
    /// none). On give-up the last error is returned and the interventions
    /// remain readable through [`Supervisor::recovery_report`].
    pub fn run_supervised(&mut self, n: u64) -> Result<RunReport, SolverError> {
        let start = self.last_good.step;
        let mut report = RunReport::default();
        let mut delta = RecoveryReport {
            final_backend: self.backend.clone(),
            final_threads: self.threads,
            ..Default::default()
        };
        // Failures since the last committed progress (drives backoff) and
        // since the last rung change (drives the ladder).
        let mut consecutive = 0u32;
        let mut rung_fails = 0u32;
        while self.last_good.step - start < n {
            let remaining = n - (self.last_good.step - start);
            match self.solver.run(remaining) {
                Ok(chunk) => {
                    // A failed disk commit stops the run (the same
                    // contract as `run_with_checkpoints`: never compute
                    // steps that could not be recovered).
                    let committed = self.commit();
                    self.finish_or(committed, &mut delta)?;
                    report.merge(chunk);
                    consecutive = 0;
                    rung_fails = 0;
                }
                Err(e) => {
                    consecutive += 1;
                    rung_fails += 1;
                    delta.attempts += 1;
                    let backoff = backoff_delay(&self.policy, consecutive);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    delta.total_backoff += backoff;
                    let (state, rollback_source) = self.rollback();
                    let rollback_step = state.step;
                    let action = if rung_fails <= self.policy.retry_limit
                        && self.rebuild(state.clone()).is_ok()
                    {
                        Some(RecoveryAction::Retry)
                    } else if self.policy.degrade {
                        let a = self.degrade_and_rebuild(&e, &state);
                        if a.is_some() {
                            rung_fails = 0;
                        }
                        a
                    } else {
                        None
                    };
                    let action = action.unwrap_or(RecoveryAction::GiveUp);
                    let gave_up = action == RecoveryAction::GiveUp;
                    delta.events.push(RecoveryEvent {
                        attempt: delta.attempts,
                        error_kind: error_kind(&e),
                        error: e.to_string(),
                        rollback_step,
                        rollback_source,
                        backoff,
                        action,
                    });
                    if gave_up {
                        delta.gave_up = true;
                        self.finish_or(Err(e), &mut delta)?;
                        unreachable!("finish_or returns the error");
                    }
                }
            }
        }
        delta.final_backend = self.backend.clone();
        delta.final_threads = self.threads;
        self.total.merge(delta.clone());
        report.recovery = Some(delta);
        Ok(report)
    }

    /// On `Err`, folds the per-call delta into the cumulative report
    /// (so [`Supervisor::recovery_report`] still tells the story the
    /// returned error loses) and propagates.
    fn finish_or(
        &mut self,
        result: Result<(), SolverError>,
        delta: &mut RecoveryReport,
    ) -> Result<(), SolverError> {
        if let Err(e) = result {
            delta.final_backend = self.backend.clone();
            delta.final_threads = self.threads;
            self.total.merge(std::mem::take(delta));
            return Err(e);
        }
        Ok(())
    }
}

impl Solver for Supervisor {
    fn name(&self) -> &'static str {
        self.solver.name()
    }
    /// Single steps bypass supervision (there is no chunk boundary to
    /// roll back to); use [`Solver::run`] for healed execution.
    fn step(&mut self) {
        self.solver.step();
    }
    fn run(&mut self, n: u64) -> Result<RunReport, SolverError> {
        self.run_supervised(n)
    }
    fn to_state(&self) -> SimState {
        self.solver.to_state()
    }
    fn profile(&self) -> Option<&crate::profiling::KernelProfile> {
        self.solver.profile()
    }
    fn set_telemetry(&mut self, enabled: bool) {
        self.telemetry = enabled;
        self.solver.set_telemetry(enabled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SimulationConfig, WatchdogConfig};
    use crate::verify::compare_states;

    fn cfg() -> SimulationConfig {
        let mut c = SimulationConfig::quick_test();
        c.body_force = [3e-6, 0.0, 0.0];
        c
    }

    fn policy() -> RecoveryPolicy {
        RecoveryPolicy {
            backoff: Duration::ZERO,
            ..Default::default()
        }
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lbmib_sup_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Supervision must be free on healthy runs: bit-identical physics on
    /// every backend, and an empty (but present) recovery record.
    #[test]
    fn fault_free_supervised_run_is_bit_identical_on_every_backend() {
        for kind in ["seq", "omp", "cube", "dist"] {
            let mut plain = build_solver(kind, SimState::new(cfg()), 2).unwrap();
            plain.run(6).unwrap();

            let mut sup = Supervisor::new(kind, SimState::new(cfg()), 2, policy()).unwrap();
            let report = sup.run_supervised(6).unwrap();
            assert_eq!(report.steps, 6, "{kind}");
            let rec = report.recovery.expect("supervised reports carry recovery");
            assert_eq!(rec.attempts, 0, "{kind}");
            assert!(rec.events.is_empty(), "{kind}");
            assert_eq!(rec.final_backend, kind);
            assert_eq!(
                compare_states(&plain.to_state(), &sup.to_state()).worst(),
                0.0,
                "{kind}: supervision changed the physics"
            );
        }
    }

    /// The backoff schedule is a pure function: doubling, capped, zero
    /// when disabled.
    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let p = RecoveryPolicy {
            backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(500),
            ..Default::default()
        };
        assert_eq!(backoff_delay(&p, 0), Duration::ZERO);
        assert_eq!(backoff_delay(&p, 1), Duration::from_millis(100));
        assert_eq!(backoff_delay(&p, 2), Duration::from_millis(200));
        assert_eq!(backoff_delay(&p, 3), Duration::from_millis(400));
        assert_eq!(backoff_delay(&p, 4), Duration::from_millis(500)); // capped
        assert_eq!(backoff_delay(&p, 32), Duration::from_millis(500));
        let off = RecoveryPolicy {
            backoff: Duration::ZERO,
            ..Default::default()
        };
        assert_eq!(backoff_delay(&off, 7), Duration::ZERO);
    }

    /// With degradation off, a persistent failure exhausts the retry
    /// budget and surfaces the typed error; the give-up is recorded.
    #[test]
    fn gives_up_with_typed_error_when_unrecoverable() {
        let mut config = cfg();
        config.watchdog = Some(WatchdogConfig { check_every: 1 });
        let mut state = SimState::new(config);
        state.fluid.ux[3] = 0.9; // permanently unstable: every replay trips
        let mut sup = Supervisor::new(
            "seq",
            state,
            1,
            RecoveryPolicy {
                retry_limit: 2,
                degrade: false,
                backoff: Duration::ZERO,
                ..Default::default()
            },
        )
        .unwrap();
        let err = sup.run_supervised(10).unwrap_err();
        assert!(matches!(err, SolverError::Unstable { .. }), "{err}");
        let rec = sup.recovery_report();
        assert!(rec.gave_up);
        assert_eq!(rec.attempts, 3); // 2 retries + the give-up attempt
        assert_eq!(rec.events.last().unwrap().action, RecoveryAction::GiveUp);
        assert!(rec.events[..2]
            .iter()
            .all(|e| e.action == RecoveryAction::Retry));
    }

    /// With degradation on, an error no backend can outrun walks the full
    /// ladder before giving up — proving the backend-fallback rung.
    #[test]
    fn ladder_walks_backends_before_giving_up() {
        let mut config = cfg();
        config.watchdog = Some(WatchdogConfig { check_every: 1 });
        let mut state = SimState::new(config);
        state.fluid.ux[3] = 0.9;
        let mut sup = Supervisor::new(
            "omp",
            state,
            2,
            RecoveryPolicy {
                retry_limit: 1,
                backoff: Duration::ZERO,
                ..Default::default()
            },
        )
        .unwrap();
        let err = sup.run_supervised(10).unwrap_err();
        assert!(matches!(err, SolverError::Unstable { .. }), "{err}");
        let rec = sup.recovery_report();
        assert!(rec.gave_up);
        assert_eq!(rec.final_backend, "seq", "ladder must end on seq");
        assert!(
            rec.events.iter().any(|e| e.action
                == RecoveryAction::SwitchBackend {
                    from: "omp".into(),
                    to: "seq".into(),
                }),
            "expected an omp → seq fallback, got {:?}",
            rec.events
        );
    }

    /// With a checkpoint path configured, rollback goes through the
    /// on-disk machinery (and records that it did).
    #[test]
    fn rollback_uses_disk_checkpoint_when_configured() {
        let dir = scratch("disk");
        let path = dir.join("sup.ckpt");
        let mut config = cfg();
        config.watchdog = Some(WatchdogConfig { check_every: 1 });
        let mut state = SimState::new(config);
        state.fluid.ux[3] = 0.9;
        let mut sup = Supervisor::new(
            "seq",
            state,
            1,
            RecoveryPolicy {
                retry_limit: 1,
                degrade: false,
                backoff: Duration::ZERO,
                checkpoint: Some(path.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(path.exists(), "the initial anchor must be saved eagerly");
        let _ = sup.run_supervised(10).unwrap_err();
        let rec = sup.recovery_report();
        assert!(rec
            .events
            .iter()
            .all(|e| e.rollback_source == "disk" && e.rollback_step == 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_report_merge_accumulates() {
        let mut a = RecoveryReport {
            attempts: 1,
            final_backend: "cube".into(),
            final_threads: 4,
            total_backoff: Duration::from_millis(5),
            ..Default::default()
        };
        a.merge(RecoveryReport {
            attempts: 2,
            gave_up: false,
            final_backend: "omp".into(),
            final_threads: 3,
            total_backoff: Duration::from_millis(7),
            events: Vec::new(),
        });
        assert_eq!(a.attempts, 3);
        assert_eq!(a.final_backend, "omp");
        assert_eq!(a.final_threads, 3);
        assert_eq!(a.total_backoff, Duration::from_millis(12));
    }

    /// The composed metrics document is well-formed in all four shapes.
    #[test]
    fn metrics_document_composes_all_shapes() {
        let rec = RecoveryReport {
            attempts: 1,
            final_backend: "cube".into(),
            final_threads: 4,
            events: vec![RecoveryEvent {
                attempt: 1,
                error_kind: "worker_panicked",
                error: "worker thread 1 panicked in phase \"x\"".into(),
                rollback_step: 0,
                rollback_source: "memory",
                backoff: Duration::from_millis(1),
                action: RecoveryAction::RemapMesh { from: 4, to: 3 },
            }],
            ..Default::default()
        };
        let doc = metrics_document(None, Some(&rec));
        assert!(doc.starts_with("{\n  \"recovery\": {"));
        assert!(doc.contains("\"remap-mesh\""));
        assert!(doc.contains("\\\"x\\\""), "quotes must be escaped: {doc}");
        assert_eq!(metrics_document(None, None), "{}\n");

        // Telemetry + recovery: the section lands before the closing
        // brace of the telemetry document.
        let mut sup = Supervisor::new("cube", SimState::new(cfg()), 2, policy()).unwrap();
        sup.set_telemetry(true);
        let report = sup.run_supervised(2).unwrap();
        let doc = metrics_document(report.telemetry.as_ref(), report.recovery.as_ref());
        assert!(doc.contains("\"threads\": ["));
        assert!(doc.contains("\"recovery\": {"));
        assert!(doc.trim_end().ends_with('}'));
    }

    /// Re-entry across supervised `run` calls stays bit-exact, like every
    /// other solver.
    #[test]
    fn split_supervised_runs_continue_exactly() {
        let mut once = Supervisor::new("cube", SimState::new(cfg()), 2, policy()).unwrap();
        once.run_supervised(6).unwrap();
        let mut twice = Supervisor::new("cube", SimState::new(cfg()), 2, policy()).unwrap();
        twice.run_supervised(3).unwrap();
        twice.run_supervised(3).unwrap();
        assert_eq!(
            compare_states(&once.to_state(), &twice.to_state()).worst(),
            0.0
        );
    }
}
