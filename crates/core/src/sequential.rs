//! Algorithm 1: the sequential LBM-IB solver, with built-in per-kernel
//! profiling (the paper's Table I is this profiler's output).

use crate::config::KernelPlan;
use crate::kernels;
use crate::profiling::{KernelId, KernelProfile};
use crate::solver::RunReport;
use crate::state::SimState;
use crate::telemetry::MetricsRegistry;

/// Sequential coupled solver.
pub struct SequentialSolver {
    pub state: SimState,
    pub profile: KernelProfile,
    /// When true, [`SequentialSolver::run`] attaches single-thread
    /// telemetry (derived from the kernel profile) to its report.
    pub telemetry_enabled: bool,
}

impl SequentialSolver {
    /// Creates the solver with a fresh state from the configuration.
    pub fn new(config: crate::config::SimulationConfig) -> Self {
        Self::from_state(SimState::new(config))
    }

    /// Wraps an existing state.
    pub fn from_state(state: SimState) -> Self {
        Self {
            state,
            profile: KernelProfile::new(),
            telemetry_enabled: false,
        }
    }

    /// Executes one full time step: the nine kernels in Algorithm 1 order
    /// (with kernels 5+6 replaced by one fused sweep under
    /// [`KernelPlan::Fused`]).
    pub fn step(&mut self) {
        let s = &mut self.state;
        let p = &mut self.profile;
        p.time(KernelId::BendingForce, || {
            kernels::compute_bending_force_in_fibers(s)
        });
        p.time(KernelId::StretchingForce, || {
            kernels::compute_stretching_force_in_fibers(s)
        });
        p.time(KernelId::ElasticForce, || {
            kernels::compute_elastic_force_in_fibers(s)
        });
        p.time(KernelId::SpreadForce, || {
            kernels::spread_force_from_fibers_to_fluid(s)
        });
        match s.config.plan {
            KernelPlan::Split => {
                p.time(KernelId::Collision, || kernels::compute_fluid_collision(s));
                p.time(KernelId::Stream, || {
                    kernels::stream_fluid_velocity_distribution(s)
                });
            }
            KernelPlan::Fused => {
                p.time(KernelId::FusedCollideStream, || {
                    kernels::fused_collide_stream(s)
                });
            }
        }
        p.time(KernelId::UpdateVelocity, || {
            kernels::update_fluid_velocity(s)
        });
        p.time(KernelId::MoveFibers, || kernels::move_fibers(s));
        p.time(KernelId::CopyDistributions, || {
            kernels::copy_fluid_velocity_distribution(s)
        });
        // Chaos-test failpoint (empty unless the `faultinject` feature is
        // on): poison the state so the watchdog path is exercised.
        if crate::faultinject::take_nan_at(s.step) {
            s.fluid.ux[0] = f64::NAN;
        }
        s.step += 1;
    }

    /// Runs `n` time steps and reports the wall time spent.
    pub fn run(&mut self, n: u64) -> RunReport {
        let before = self
            .telemetry_enabled
            .then(|| self.profile.totals_seconds());
        let t0 = std::time::Instant::now();
        for _ in 0..n {
            self.step();
        }
        let wall = t0.elapsed();
        // Single-thread telemetry is the profile delta of this call; the
        // one "thread" owns every fiber and no cubes (flat layout).
        let telemetry = before.map(|before| {
            let after = self.profile.totals_seconds();
            let delta: [f64; KernelId::COUNT] = std::array::from_fn(|i| after[i] - before[i]);
            let registry = MetricsRegistry::new(1);
            registry.slot(0).store_kernel_seconds(&delta);
            registry
                .slot(0)
                .set_ownership(0, self.state.sheet.num_fibers as u64);
            registry.snapshot("seq", n, wall.as_secs_f64())
        });
        RunReport {
            steps: n,
            wall,
            telemetry,
            recovery: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SimulationConfig, TetherConfig};

    #[test]
    fn steps_advance_and_stay_finite() {
        let mut s = SequentialSolver::new(SimulationConfig::quick_test());
        s.run(10);
        assert_eq!(s.state.step, 10);
        assert!(!s.state.has_nan());
        // The body force must have started the channel moving.
        let mean: f64 = s.state.fluid.ux.iter().sum::<f64>() / s.state.fluid.n() as f64;
        assert!(mean > 0.0, "flow should start: mean ux = {mean}");
    }

    #[test]
    fn mass_conserved_through_coupled_steps() {
        let mut s = SequentialSolver::new(SimulationConfig::quick_test());
        let m0 = s.state.fluid.total_mass();
        s.run(25);
        let m1 = s.state.fluid.total_mass();
        assert!((m1 - m0).abs() / m0 < 1e-12, "mass drifted {m0} -> {m1}");
    }

    #[test]
    fn sheet_is_advected_downstream() {
        let mut c = SimulationConfig::quick_test();
        c.body_force = [5e-6, 0.0, 0.0];
        let mut s = SequentialSolver::new(c);
        let x0 = s.state.sheet.centroid()[0];
        s.run(120);
        let x1 = s.state.sheet.centroid()[0];
        assert!(
            x1 > x0 + 1e-4,
            "sheet should move with the flow: {x0} -> {x1}"
        );
        assert!(!s.state.has_nan());
    }

    #[test]
    fn tethered_sheet_stays_put() {
        let mut c = SimulationConfig::quick_test();
        c.body_force = [5e-6, 0.0, 0.0];
        c.sheet.tether = TetherConfig::CenterRegion {
            radius: 100.0,
            stiffness: 0.5,
        };
        let mut s = SequentialSolver::new(c);
        let x0 = s.state.sheet.centroid()[0];
        s.run(120);
        let x1 = s.state.sheet.centroid()[0];

        let mut free = SimulationConfig::quick_test();
        free.body_force = [5e-6, 0.0, 0.0];
        let mut sf = SequentialSolver::from_state(crate::state::SimState::new(free));
        let xf0 = sf.state.sheet.centroid()[0];
        sf.run(120);
        let xf1 = sf.state.sheet.centroid()[0];
        assert!(
            (x1 - x0).abs() < 0.5 * (xf1 - xf0).abs() + 1e-9,
            "fully tethered sheet ({}) should drift much less than free sheet ({})",
            x1 - x0,
            xf1 - xf0
        );
    }

    #[test]
    fn profiler_sees_every_kernel() {
        let mut s = SequentialSolver::new(SimulationConfig::quick_test());
        let report = s.run(3);
        assert_eq!(report.steps, 3);
        for k in KernelId::ALL {
            let expect = if k == KernelId::FusedCollideStream {
                0
            } else {
                3
            };
            assert_eq!(s.profile.calls(k), expect, "{k:?}");
        }
        assert!(s.profile.grand_total().as_nanos() > 0);
    }

    #[test]
    fn fused_plan_charges_the_fused_slot() {
        let mut c = SimulationConfig::quick_test();
        c.plan = crate::config::KernelPlan::Fused;
        let mut s = SequentialSolver::new(c);
        s.run(3);
        assert_eq!(s.profile.calls(KernelId::FusedCollideStream), 3);
        assert_eq!(s.profile.calls(KernelId::Collision), 0);
        assert_eq!(s.profile.calls(KernelId::Stream), 0);
        assert!(!s.state.has_nan());
    }

    #[test]
    fn fluid_dominant_kernels_dominate_profile() {
        // Even at test scale, the fluid kernels (5, 7, 9, 6) must outweigh
        // the fiber kernels (1, 2, 3) — the core observation of Table I.
        let mut s = SequentialSolver::new(SimulationConfig::quick_test());
        s.run(5);
        let fluid_time = s.profile.total(KernelId::Collision)
            + s.profile.total(KernelId::UpdateVelocity)
            + s.profile.total(KernelId::Stream)
            + s.profile.total(KernelId::CopyDistributions);
        let fiber_time = s.profile.total(KernelId::BendingForce)
            + s.profile.total(KernelId::StretchingForce)
            + s.profile.total(KernelId::ElasticForce);
        assert!(
            fluid_time > fiber_time,
            "fluid kernels {fluid_time:?} vs fiber kernels {fiber_time:?}"
        );
    }
}
