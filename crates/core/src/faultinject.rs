//! Deterministic fault injection for chaos-testing the recovery paths.
//!
//! Compiled out by default: without the `faultinject` feature every hook
//! in this module is an empty `#[inline]` function the optimizer deletes,
//! so the hot loops pay nothing. With the feature on, tests [`arm`] a
//! [`FaultPlan`] describing exactly where a failure fires — a worker
//! panic at a (thread, step, phase) triple, a NaN poisoning the fluid
//! state, a torn or bit-flipped checkpoint write, a dropped or delayed
//! halo message — and the solvers trip over it reproducibly.
//!
//! Failpoints are process-global; [`arm`] holds a static lock for the
//! lifetime of the returned [`Armed`] guard so concurrent chaos tests
//! serialize instead of interfering.

use std::path::Path;
use std::time::Duration;

/// Fire a panic inside a parallel worker at one exact point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PanicAt {
    /// Worker thread index (cube solver tid).
    pub thread: usize,
    /// Absolute simulation step (the solver's global step counter).
    pub step: u64,
    /// Phase name as used by the cube worker loop, e.g. `"velocity-update"`.
    pub phase: &'static str,
}

/// Damage applied to the checkpoint temp file after its fsync, modelling
/// a torn physical write that the atomic-rename protocol must survive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointFault {
    /// Chop this many bytes off the end of the file.
    TruncateTail(u64),
    /// XOR `mask` into the byte at `offset_from_end` bytes before EOF.
    FlipBit { offset_from_end: u64, mask: u8 },
}

/// Misbehaviour on the distributed prototype's message fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HaloFault {
    /// Rank `from` silently drops its outgoing halo planes. Neighbours
    /// configured with a `halo_timeout` surface `SolverError::HaloTimeout`
    /// instead of hanging.
    DropSend { from: usize },
    /// Rank `from` sleeps before each halo send.
    DelaySend { from: usize, delay: Duration },
}

/// Everything a chaos test wants to go wrong, in one armed plan.
///
/// Failpoints model *transient* faults by default: the panic, NaN and
/// dropped-halo triggers are consumed the first time they fire, so a
/// supervisor that rolls back and replays the same steps sails past the
/// fault on the retry (the checkpoint fault was always one-shot). Set
/// [`FaultPlan::sticky`] to keep a trigger armed across retries and model
/// a *persistent* fault — the case the degradation ladder exists for.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultPlan {
    pub panic_at: Option<PanicAt>,
    /// Overwrite `ux[0]` with NaN at the end of this sequential-solver
    /// step (absolute step counter), so the watchdog path is exercised.
    pub nan_at_step: Option<u64>,
    /// One-shot: consumed by the first checkpoint save after arming.
    pub checkpoint: Option<CheckpointFault>,
    pub halo: Option<HaloFault>,
    /// Keep the panic/NaN/halo-drop triggers armed after they fire
    /// (persistent fault) instead of consuming them (transient fault).
    pub sticky: bool,
}

#[cfg(feature = "faultinject")]
mod imp {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
    static ARM_LOCK: Mutex<()> = Mutex::new(());

    /// Keeps the armed plan alive; disarms (and releases the global test
    /// serialization lock) on drop.
    pub struct Armed {
        _serial: MutexGuard<'static, ()>,
    }

    impl Drop for Armed {
        fn drop(&mut self) {
            *lock(&PLAN) = None;
        }
    }

    /// Locks ignoring poisoning: chaos tests panic on purpose, and a
    /// poisoned failpoint store must not cascade into later tests.
    fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn arm(plan: FaultPlan) -> Armed {
        let serial = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        *lock(&PLAN) = Some(plan);
        Armed { _serial: serial }
    }

    fn plan() -> Option<FaultPlan> {
        *lock(&PLAN)
    }

    pub fn maybe_panic(thread: usize, step: u64, phase: &'static str) {
        // Match and (unless sticky) consume under one lock so exactly one
        // worker fires; the lock is released before the panic unwinds.
        let fire = {
            let mut guard = lock(&PLAN);
            match guard.as_mut() {
                Some(plan) => match plan.panic_at {
                    Some(p) if p.thread == thread && p.step == step && p.phase == phase => {
                        if !plan.sticky {
                            plan.panic_at = None;
                        }
                        true
                    }
                    _ => false,
                },
                None => false,
            }
        };
        if fire {
            panic!("fault injected: thread {thread} panics at step {step} in {phase}");
        }
    }

    /// True when a NaN should be injected at the end of `step`; consumes
    /// the trigger unless the plan is sticky.
    pub fn take_nan_at(step: u64) -> bool {
        let mut guard = lock(&PLAN);
        match guard.as_mut() {
            Some(plan) if plan.nan_at_step == Some(step) => {
                if !plan.sticky {
                    plan.nan_at_step = None;
                }
                true
            }
            _ => false,
        }
    }

    pub fn corrupt_checkpoint_file(path: &Path) -> std::io::Result<()> {
        let fault = match lock(&PLAN).as_mut().and_then(|p| p.checkpoint.take()) {
            Some(f) => f,
            None => return Ok(()),
        };
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)?;
        let len = file.metadata()?.len();
        match fault {
            CheckpointFault::TruncateTail(n) => file.set_len(len.saturating_sub(n))?,
            CheckpointFault::FlipBit {
                offset_from_end,
                mask,
            } => {
                use std::io::{Read, Seek, SeekFrom, Write};
                let pos = len.saturating_sub(offset_from_end.max(1));
                let mut file = file;
                file.seek(SeekFrom::Start(pos))?;
                let mut b = [0u8; 1];
                file.read_exact(&mut b)?;
                b[0] ^= mask;
                file.seek(SeekFrom::Start(pos))?;
                file.write_all(&b)?;
                file.sync_all()?;
            }
        }
        Ok(())
    }

    /// True when rank `from` should drop its outgoing halo planes this
    /// step; consumes the trigger unless the plan is sticky.
    pub fn drop_halo_send(from: usize) -> bool {
        let mut guard = lock(&PLAN);
        match guard.as_mut() {
            Some(plan) => match plan.halo {
                Some(HaloFault::DropSend { from: f }) if f == from => {
                    if !plan.sticky {
                        plan.halo = None;
                    }
                    true
                }
                _ => false,
            },
            None => false,
        }
    }

    pub fn halo_send_delay(from: usize) -> Option<Duration> {
        match plan().and_then(|p| p.halo) {
            Some(HaloFault::DelaySend { from: f, delay }) if f == from => Some(delay),
            _ => None,
        }
    }
}

#[cfg(feature = "faultinject")]
pub use imp::{arm, Armed};

#[cfg(feature = "faultinject")]
pub(crate) use imp::{
    corrupt_checkpoint_file, drop_halo_send, halo_send_delay, maybe_panic, take_nan_at,
};

// ---------------------------------------------------------------------------
// Feature off: every hook is an empty inline function, deleted by the
// optimizer — zero cost on the hot paths.
// ---------------------------------------------------------------------------

#[cfg(not(feature = "faultinject"))]
mod stubs {
    use super::*;

    #[inline(always)]
    pub(crate) fn maybe_panic(_thread: usize, _step: u64, _phase: &'static str) {}

    #[inline(always)]
    pub(crate) fn take_nan_at(_step: u64) -> bool {
        false
    }

    #[inline(always)]
    pub(crate) fn corrupt_checkpoint_file(_path: &Path) -> std::io::Result<()> {
        Ok(())
    }

    #[inline(always)]
    pub(crate) fn drop_halo_send(_from: usize) -> bool {
        false
    }

    #[inline(always)]
    pub(crate) fn halo_send_delay(_from: usize) -> Option<Duration> {
        None
    }
}

#[cfg(not(feature = "faultinject"))]
pub(crate) use stubs::*;
