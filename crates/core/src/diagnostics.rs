//! Physical diagnostics of a coupled simulation: conserved quantities,
//! energy, structure geometry. Used by the examples for progress reporting
//! and by the integration tests as invariants.

use crate::state::SimState;

/// Largest velocity magnitude considered stable. The lattice sound speed
/// is c_s = 1/√3 ≈ 0.577; beyond ~0.4 the low-Mach expansion behind BGK
/// collision is invalid and the run is already garbage. Shared with the
/// in-solver watchdog ([`crate::telemetry::Watchdog`]) so the CLI and
/// in-run checks cannot diverge.
pub const MAX_VELOCITY_LIMIT: f64 = 0.4;

/// Largest tolerated relative mass drift `|m − m₀| / m₀`. Streaming and
/// bounce-back conserve mass exactly; anything above round-off accumulation
/// means a kernel bug or blow-up. Shared with the watchdog.
pub const MASS_DRIFT_LIMIT: f64 = 1e-9;

/// A snapshot of the physically meaningful summary quantities.
#[derive(Clone, Copy, Debug)]
pub struct Diagnostics {
    pub step: u64,
    /// Total fluid mass `Σ f`.
    pub mass: f64,
    /// Total fluid momentum (from the present distributions).
    pub momentum: [f64; 3],
    /// Total kinetic energy `½ Σ ρ |u|²`.
    pub kinetic_energy: f64,
    /// Largest velocity magnitude on the grid (stability monitor; should
    /// stay well below c_s ≈ 0.577).
    pub max_velocity: f64,
    /// Fiber sheet centroid.
    pub sheet_centroid: [f64; 3],
    /// Fiber sheet bounding-box extents.
    pub sheet_extent: [f64; 3],
    /// Total elastic force currently on the structure.
    pub elastic_force: [f64; 3],
    /// True if any field contains a non-finite value.
    pub nan_detected: bool,
}

/// Computes all diagnostics for a state.
pub fn diagnostics(state: &SimState) -> Diagnostics {
    let g = &state.fluid;
    let mut ke = 0.0;
    let mut max_v2 = 0.0f64;
    for i in 0..g.n() {
        let v2 = g.ux[i] * g.ux[i] + g.uy[i] * g.uy[i] + g.uz[i] * g.uz[i];
        ke += 0.5 * g.rho[i] * v2;
        max_v2 = max_v2.max(v2);
    }
    let (lo, hi) = state.sheet.bounding_box();
    Diagnostics {
        step: state.step,
        mass: g.total_mass(),
        momentum: g.total_momentum(),
        kinetic_energy: ke,
        max_velocity: max_v2.sqrt(),
        sheet_centroid: state.sheet.centroid(),
        sheet_extent: [hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]],
        elastic_force: state.sheet.total_elastic_force(),
        nan_detected: state.has_nan(),
    }
}

impl Diagnostics {
    /// One-line human-readable summary for progress logs.
    pub fn summary(&self) -> String {
        format!(
            "step {:>6}  mass {:.6e}  KE {:.6e}  max|u| {:.4}  sheet x {:.3} extent ({:.2},{:.2},{:.2}){}",
            self.step,
            self.mass,
            self.kinetic_energy,
            self.max_velocity,
            self.sheet_centroid[0],
            self.sheet_extent[0],
            self.sheet_extent[1],
            self.sheet_extent[2],
            if self.nan_detected { "  [NaN!]" } else { "" }
        )
    }

    /// Checks the stability invariants, returning a description of the
    /// first violation.
    pub fn check_stability(&self, initial_mass: f64) -> Result<(), String> {
        if self.nan_detected {
            return Err(format!("NaN detected at step {}", self.step));
        }
        if self.max_velocity > MAX_VELOCITY_LIMIT {
            return Err(format!(
                "max velocity {} approaches lattice sound speed at step {}",
                self.max_velocity, self.step
            ));
        }
        // A zero/negative/non-finite reference mass would make the drift
        // ratio below NaN or ±inf, silently passing (NaN comparisons are
        // false) or spuriously failing — reject it outright.
        if !initial_mass.is_finite() || initial_mass <= 0.0 {
            return Err(format!(
                "reference mass {initial_mass} is not a positive finite value (step {})",
                self.step
            ));
        }
        let drift = (self.mass - initial_mass).abs() / initial_mass;
        if !drift.is_finite() || drift > MASS_DRIFT_LIMIT {
            return Err(format!("mass drifted by {drift:.3e} at step {}", self.step));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimulationConfig;
    use crate::sequential::SequentialSolver;

    #[test]
    fn quiescent_state_diagnostics() {
        let s = crate::state::SimState::new(SimulationConfig::quick_test());
        let d = diagnostics(&s);
        assert_eq!(d.step, 0);
        assert_eq!(d.kinetic_energy, 0.0);
        assert_eq!(d.max_velocity, 0.0);
        assert!(!d.nan_detected);
        let n = s.fluid.n() as f64;
        assert!((d.mass - n).abs() / n < 1e-11);
        d.check_stability(d.mass).unwrap();
    }

    #[test]
    fn diagnostics_track_simulation() {
        let mut solver = SequentialSolver::new(SimulationConfig::quick_test());
        let m0 = diagnostics(&solver.state).mass;
        solver.run(20);
        let d = diagnostics(&solver.state);
        assert_eq!(d.step, 20);
        assert!(d.kinetic_energy > 0.0, "flow started");
        assert!(d.max_velocity > 0.0 && d.max_velocity < 0.1);
        d.check_stability(m0).unwrap();
        assert!(d.summary().contains("step"));
    }

    #[test]
    fn stability_check_flags_nan() {
        let mut s = crate::state::SimState::new(SimulationConfig::quick_test());
        s.fluid.ux[0] = f64::NAN;
        let d = diagnostics(&s);
        assert!(d.nan_detected);
        assert!(d.check_stability(d.mass.max(1.0)).is_err());
    }

    #[test]
    fn stability_check_rejects_degenerate_reference_mass() {
        let s = crate::state::SimState::new(SimulationConfig::quick_test());
        let d = diagnostics(&s);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = d.check_stability(bad).unwrap_err();
            assert!(err.contains("reference mass"), "mass {bad}: {err}");
        }
        // A sane reference still passes.
        d.check_stability(d.mass).unwrap();
    }

    #[test]
    fn stability_limits_are_named_constants() {
        assert_eq!(MAX_VELOCITY_LIMIT, 0.4);
        assert_eq!(MASS_DRIFT_LIMIT, 1e-9);
    }

    #[test]
    fn stability_check_flags_runaway_velocity() {
        let mut s = crate::state::SimState::new(SimulationConfig::quick_test());
        s.fluid.ux[0] = 0.5;
        let d = diagnostics(&s);
        let err = d.check_stability(d.mass).unwrap_err();
        assert!(err.contains("sound speed"), "{err}");
    }
}
