//! The complete state of a coupled LBM-IB simulation: the Eulerian fluid
//! grid plus the Lagrangian structure, as created by the paper's
//! `create_fluid_grid()` and `create_fiber_shape()`.

use ib::sheet::FiberSheet;
use ib::tether::TetherSet;
use lbm::grid::FluidGrid;
use lbm::macroscopic::initialize_equilibrium;

use crate::config::{ConfigError, SimulationConfig};

/// Coupled simulation state in the flat (node-major) layout used by the
/// sequential and OpenMP-style solvers. The cube solver converts to/from
/// cube-blocked storage at its boundary.
#[derive(Clone, Debug)]
pub struct SimState {
    pub config: SimulationConfig,
    pub fluid: FluidGrid,
    pub sheet: FiberSheet,
    pub tethers: TetherSet,
    /// Completed time steps.
    pub step: u64,
}

impl SimState {
    /// Builds the initial state: fluid at rest at unit density, sheet flat
    /// at its configured position. Panics on an invalid configuration —
    /// use [`SimState::try_new`] to get the validation problem as a value.
    pub fn new(config: SimulationConfig) -> Self {
        Self::try_new(config).expect("invalid simulation configuration")
    }

    /// Like [`SimState::new`] but returns the validation problem instead
    /// of panicking. Every library and CLI construction path routes
    /// through here; only `new` converts the error into a panic.
    pub fn try_new(config: SimulationConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let mut fluid = FluidGrid::new(config.dims());
        initialize_equilibrium(&mut fluid, |_, _, _| 1.0, |_, _, _| [0.0; 3]);
        let (sheet, tethers) = config.sheet.build();
        Ok(Self {
            config,
            fluid,
            sheet,
            tethers,
            step: 0,
        })
    }

    /// True if any fluid or structure value has gone non-finite.
    pub fn has_nan(&self) -> bool {
        self.sheet.has_nan()
            || self.fluid.rho.iter().any(|v| !v.is_finite())
            || self.fluid.ux.iter().any(|v| !v.is_finite())
            || self.fluid.uy.iter().any(|v| !v.is_finite())
            || self.fluid.uz.iter().any(|v| !v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_state_is_quiescent_and_consistent() {
        let s = SimState::new(SimulationConfig::quick_test());
        assert_eq!(s.step, 0);
        assert!(!s.has_nan());
        assert!(s.fluid.ux.iter().all(|&v| v == 0.0));
        let n = s.fluid.n() as f64;
        assert!((s.fluid.total_mass() - n).abs() / n < 1e-11);
        assert_eq!(s.sheet.n(), 8 * 8);
    }

    #[test]
    #[should_panic(expected = "invalid simulation configuration")]
    fn invalid_config_panics() {
        let mut c = SimulationConfig::quick_test();
        c.tau = 0.1;
        SimState::new(c);
    }

    #[test]
    fn try_new_reports_instead_of_panicking() {
        let mut c = SimulationConfig::quick_test();
        c.tau = 0.2;
        assert!(matches!(
            SimState::try_new(c),
            Err(ConfigError::InvalidTau { .. })
        ));
        assert!(SimState::try_new(SimulationConfig::quick_test()).is_ok());
    }

    #[test]
    fn nan_detection_covers_fluid() {
        let mut s = SimState::new(SimulationConfig::quick_test());
        s.fluid.rho[5] = f64::NAN;
        assert!(s.has_nan());
    }

    #[test]
    fn nan_detection_covers_all_velocity_components() {
        // uy/uz used to be skipped, so a NaN confined to them went unseen.
        for field in 0..3 {
            let mut s = SimState::new(SimulationConfig::quick_test());
            match field {
                0 => s.fluid.ux[2] = f64::NAN,
                1 => s.fluid.uy[2] = f64::NAN,
                _ => s.fluid.uz[2] = f64::INFINITY,
            }
            assert!(s.has_nan(), "component {field} not detected");
        }
    }
}
