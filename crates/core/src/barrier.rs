//! A centralized spinning barrier with generation counting (the classic
//! sense-reversing design, see *Rust Atomics and Locks* ch. 9 for the
//! memory-ordering reasoning). Algorithm 4 executes three of these per time
//! step; for fine-grained HPC phases a spinning barrier beats the parking
//! `std::sync::Barrier`, which the solver also supports for comparison
//! (the barrier ablation benchmark measures the difference).

use crate::sync_shim::{spin_wait, yield_wait, AtomicUsize, Ordering};

/// Spinning barrier for a fixed set of `n` threads.
///
/// Correctness: each arriving thread increments `count` with `AcqRel`; the
/// RMW chain makes every earlier thread's writes visible to the last
/// arriver, which publishes them to the waiters through the `Release`
/// increment of `generation` that each waiter `Acquire`-loads. Thus all
/// writes before the barrier happen-before all reads after it, for every
/// thread pair.
pub struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// Barrier for `n` threads.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one thread");
        Self {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Number of participating threads.
    pub fn n_threads(&self) -> usize {
        self.n
    }

    /// Blocks (spinning) until all `n` threads have called `wait` for the
    /// current generation. Returns `true` on exactly one thread per
    /// generation (the "leader", the last arriver).
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins < 64 {
                    spin_wait();
                } else {
                    // Be polite on oversubscribed machines: after a short
                    // spin, yield the time slice so the remaining threads
                    // can run (essential when threads > cores, which is how
                    // the scaling harnesses run on small machines).
                    yield_wait();
                }
            }
            false
        }
    }
}

/// The barrier flavours the cube solver can synchronise with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BarrierKind {
    /// [`SpinBarrier`] (default; spin-then-yield).
    #[default]
    Spin,
    /// `std::sync::Barrier` (parks the thread in the OS).
    Std,
}

/// Either barrier behind one `wait()` interface.
pub enum PhaseBarrier {
    Spin(SpinBarrier),
    Std(std::sync::Barrier),
}

impl PhaseBarrier {
    /// Builds the requested flavour for `n` threads.
    pub fn new(kind: BarrierKind, n: usize) -> Self {
        match kind {
            BarrierKind::Spin => PhaseBarrier::Spin(SpinBarrier::new(n)),
            BarrierKind::Std => PhaseBarrier::Std(std::sync::Barrier::new(n)),
        }
    }

    /// Waits for all threads; returns `true` on one leader thread.
    pub fn wait(&self) -> bool {
        match self {
            PhaseBarrier::Spin(b) => b.wait(),
            PhaseBarrier::Std(b) => b.wait().is_leader(),
        }
    }

    /// [`PhaseBarrier::wait`] plus the time this thread spent inside the
    /// wait — the telemetry probe for the paper's three-barriers-per-step
    /// overhead. The timing is per-caller: the last arriver (the leader)
    /// measures ~0, the first arriver measures the full straggler gap.
    pub fn wait_timed(&self) -> (bool, std::time::Duration) {
        let t0 = std::time::Instant::now();
        let leader = self.wait();
        (leader, t0.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_thread_is_always_leader() {
        let b = SpinBarrier::new(1);
        for _ in 0..5 {
            assert!(b.wait());
        }
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        let b = SpinBarrier::new(4);
        let leaders = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn barrier_publishes_writes() {
        // Each round, every thread writes its slot before the barrier and
        // checks everyone's slot after it — any missed synchronisation
        // shows up as a stale read.
        const THREADS: usize = 4;
        const ROUNDS: usize = 200;
        let b = SpinBarrier::new(THREADS);
        // Plain (non-atomic would be UB here) relaxed atomics as the data;
        // the *ordering* must come from the barrier alone.
        let slots: Vec<AtomicU64> = (0..THREADS).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let slots = &slots;
                let b = &b;
                s.spawn(move || {
                    for round in 1..=ROUNDS as u64 {
                        slots[t].store(round, Ordering::Relaxed);
                        b.wait();
                        for (i, slot) in slots.iter().enumerate() {
                            let v = slot.load(Ordering::Relaxed);
                            assert!(v >= round, "thread {t} saw stale slot {i}: {v} < {round}");
                        }
                        b.wait(); // end-of-round barrier before next write
                    }
                });
            }
        });
    }

    #[test]
    fn phase_barrier_std_flavour_works() {
        let b = PhaseBarrier::new(BarrierKind::Std, 3);
        let leaders = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..10 {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn wait_timed_reports_leader_and_duration() {
        let b = PhaseBarrier::new(BarrierKind::Spin, 2);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| b.wait_timed());
            // Give the waiter a head start so it measurably blocks.
            std::thread::sleep(std::time::Duration::from_millis(20));
            let (_, releaser_wait) = b.wait_timed();
            let (_, waited) = waiter.join().unwrap();
            assert!(
                waited >= std::time::Duration::from_millis(5),
                "first arriver should have blocked, waited {waited:?}"
            );
            assert!(releaser_wait < waited);
        });
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        SpinBarrier::new(0);
    }
}
