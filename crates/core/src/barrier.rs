//! A centralized spinning barrier with generation counting (the classic
//! sense-reversing design, see *Rust Atomics and Locks* ch. 9 for the
//! memory-ordering reasoning). Algorithm 4 executes three of these per time
//! step; for fine-grained HPC phases a spinning barrier beats a parking
//! barrier, which the solver also supports for comparison (the barrier
//! ablation benchmark measures the difference).
//!
//! Both flavours support **poisoning**: a worker that panics marks the
//! barrier dead before unwinding, and every sibling blocked (or about to
//! block) in `wait_checked` returns [`BarrierPoisoned`] instead of
//! spinning forever on a rendezvous that can no longer complete. A
//! poisoned barrier stays poisoned.

use crate::sync_shim::{spin_wait, yield_wait, AtomicUsize, Ordering};

/// A sibling thread panicked: the rendezvous can never complete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BarrierPoisoned;

impl std::fmt::Display for BarrierPoisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "barrier poisoned: a participating thread panicked")
    }
}

impl std::error::Error for BarrierPoisoned {}

/// Spinning barrier for a fixed set of `n` threads.
///
/// Correctness: each arriving thread increments `count` with `AcqRel`; the
/// RMW chain makes every earlier thread's writes visible to the last
/// arriver, which publishes them to the waiters through the `Release`
/// increment of `generation` that each waiter `Acquire`-loads. Thus all
/// writes before the barrier happen-before all reads after it, for every
/// thread pair.
pub struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
    /// 0 = healthy, 1 = poisoned. Checked on entry and inside the spin
    /// loop so a panicking sibling releases every waiter.
    poison: AtomicUsize,
}

impl SpinBarrier {
    /// Barrier for `n` threads.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one thread");
        Self {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poison: AtomicUsize::new(0),
        }
    }

    /// Number of participating threads.
    pub fn n_threads(&self) -> usize {
        self.n
    }

    /// Marks the barrier permanently dead, releasing all current and
    /// future waiters with [`BarrierPoisoned`]. Called by a panicking
    /// worker *before* it unwinds past its barrier discipline.
    pub fn poison(&self) {
        self.poison.store(1, Ordering::Release);
    }

    /// True once any participant has poisoned the barrier.
    pub fn is_poisoned(&self) -> bool {
        self.poison.load(Ordering::Acquire) != 0
    }

    /// Blocks (spinning) until all `n` threads have called `wait` for the
    /// current generation. Returns `true` on exactly one thread per
    /// generation (the "leader", the last arriver).
    ///
    /// Panics if the barrier is (or becomes) poisoned — use
    /// [`SpinBarrier::wait_checked`] to handle that as a value.
    pub fn wait(&self) -> bool {
        self.wait_checked().expect("barrier poisoned")
    }

    /// [`SpinBarrier::wait`], but a poisoned barrier returns
    /// `Err(BarrierPoisoned)` instead of panicking — on entry and from
    /// inside the spin loop, so no thread is left spinning on a
    /// rendezvous a dead sibling can never join.
    pub fn wait_checked(&self) -> Result<bool, BarrierPoisoned> {
        if self.is_poisoned() {
            return Err(BarrierPoisoned);
        }
        let gen = self.generation.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
            Ok(true)
        } else {
            let mut spins = 0u32;
            loop {
                // Poison first, generation last: the generation probe must
                // be the final visible operation before the spin hint, so
                // that (under the loom model, where every atomic access is
                // a scheduling point) a release of the barrier landing
                // between the probe and the park still wakes this waiter.
                if self.is_poisoned() {
                    return Err(BarrierPoisoned);
                }
                if self.generation.load(Ordering::Acquire) != gen {
                    break;
                }
                spins += 1;
                if spins < 64 {
                    spin_wait();
                } else {
                    // Be polite on oversubscribed machines: after a short
                    // spin, yield the time slice so the remaining threads
                    // can run (essential when threads > cores, which is how
                    // the scaling harnesses run on small machines).
                    yield_wait();
                }
            }
            Ok(false)
        }
    }
}

/// Parking barrier (mutex + condvar) with the same poisoning protocol as
/// [`SpinBarrier`]. Replaces `std::sync::Barrier`, which cannot be
/// poisoned and therefore hangs forever when a participant dies.
pub struct ParkingBarrier {
    n: usize,
    state: std::sync::Mutex<ParkState>,
    cv: std::sync::Condvar,
}

struct ParkState {
    count: usize,
    generation: u64,
    poisoned: bool,
}

impl ParkingBarrier {
    /// Barrier for `n` threads.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one thread");
        Self {
            n,
            state: std::sync::Mutex::new(ParkState {
                count: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: std::sync::Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ParkState> {
        // The barrier's own poison flag is the failure channel; a
        // lock-poisoning panic inside this module can't leave the state
        // torn (all mutations are single assignments).
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Marks the barrier permanently dead and wakes every parked waiter.
    pub fn poison(&self) {
        self.lock().poisoned = true;
        self.cv.notify_all();
    }

    /// Parks until all `n` threads arrive; `Err(BarrierPoisoned)` if the
    /// barrier is (or becomes) poisoned.
    pub fn wait_checked(&self) -> Result<bool, BarrierPoisoned> {
        let mut s = self.lock();
        if s.poisoned {
            return Err(BarrierPoisoned);
        }
        s.count += 1;
        if s.count == self.n {
            s.count = 0;
            s.generation += 1;
            self.cv.notify_all();
            return Ok(true);
        }
        let gen = s.generation;
        loop {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
            if s.poisoned {
                return Err(BarrierPoisoned);
            }
            if s.generation != gen {
                return Ok(false);
            }
        }
    }
}

/// The barrier flavours the cube solver can synchronise with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BarrierKind {
    /// [`SpinBarrier`] (default; spin-then-yield).
    #[default]
    Spin,
    /// [`ParkingBarrier`] (parks the thread in the OS).
    Std,
}

/// Either barrier behind one `wait()` interface.
pub enum PhaseBarrier {
    Spin(SpinBarrier),
    Std(ParkingBarrier),
}

impl PhaseBarrier {
    /// Builds the requested flavour for `n` threads.
    pub fn new(kind: BarrierKind, n: usize) -> Self {
        match kind {
            BarrierKind::Spin => PhaseBarrier::Spin(SpinBarrier::new(n)),
            BarrierKind::Std => PhaseBarrier::Std(ParkingBarrier::new(n)),
        }
    }

    /// Marks the barrier permanently dead, releasing every waiter with
    /// [`BarrierPoisoned`].
    pub fn poison(&self) {
        match self {
            PhaseBarrier::Spin(b) => b.poison(),
            PhaseBarrier::Std(b) => b.poison(),
        }
    }

    /// Waits for all threads; returns `true` on one leader thread.
    /// Panics if the barrier is poisoned.
    pub fn wait(&self) -> bool {
        self.wait_checked().expect("barrier poisoned")
    }

    /// Waits for all threads, surfacing poisoning as a value.
    pub fn wait_checked(&self) -> Result<bool, BarrierPoisoned> {
        match self {
            PhaseBarrier::Spin(b) => b.wait_checked(),
            PhaseBarrier::Std(b) => b.wait_checked(),
        }
    }

    /// [`PhaseBarrier::wait_checked`] plus the time this thread spent
    /// inside the wait — the telemetry probe for the paper's
    /// three-barriers-per-step overhead. The timing is per-caller: the
    /// last arriver (the leader) measures ~0, the first arriver measures
    /// the full straggler gap.
    pub fn wait_timed_checked(&self) -> Result<(bool, std::time::Duration), BarrierPoisoned> {
        let t0 = std::time::Instant::now();
        let leader = self.wait_checked()?;
        Ok((leader, t0.elapsed()))
    }

    /// [`PhaseBarrier::wait_timed_checked`], panicking on poison.
    pub fn wait_timed(&self) -> (bool, std::time::Duration) {
        self.wait_timed_checked().expect("barrier poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_thread_is_always_leader() {
        let b = SpinBarrier::new(1);
        for _ in 0..5 {
            assert!(b.wait());
        }
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        let b = SpinBarrier::new(4);
        let leaders = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn barrier_publishes_writes() {
        // Each round, every thread writes its slot before the barrier and
        // checks everyone's slot after it — any missed synchronisation
        // shows up as a stale read.
        const THREADS: usize = 4;
        const ROUNDS: usize = 200;
        let b = SpinBarrier::new(THREADS);
        // Plain (non-atomic would be UB here) relaxed atomics as the data;
        // the *ordering* must come from the barrier alone.
        let slots: Vec<AtomicU64> = (0..THREADS).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let slots = &slots;
                let b = &b;
                s.spawn(move || {
                    for round in 1..=ROUNDS as u64 {
                        slots[t].store(round, Ordering::Relaxed);
                        b.wait();
                        for (i, slot) in slots.iter().enumerate() {
                            let v = slot.load(Ordering::Relaxed);
                            assert!(v >= round, "thread {t} saw stale slot {i}: {v} < {round}");
                        }
                        b.wait(); // end-of-round barrier before next write
                    }
                });
            }
        });
    }

    #[test]
    fn phase_barrier_std_flavour_works() {
        let b = PhaseBarrier::new(BarrierKind::Std, 3);
        let leaders = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..10 {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn wait_timed_reports_leader_and_duration() {
        let b = PhaseBarrier::new(BarrierKind::Spin, 2);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| b.wait_timed());
            // Give the waiter a head start so it measurably blocks.
            std::thread::sleep(std::time::Duration::from_millis(20));
            let (_, releaser_wait) = b.wait_timed();
            let (_, waited) = waiter.join().unwrap();
            assert!(
                waited >= std::time::Duration::from_millis(5),
                "first arriver should have blocked, waited {waited:?}"
            );
            assert!(releaser_wait < waited);
        });
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        SpinBarrier::new(0);
    }

    #[test]
    fn poison_releases_spinning_waiter() {
        let b = SpinBarrier::new(2);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| b.wait_checked());
            // Let the waiter enter the spin loop, then kill the barrier
            // instead of ever arriving (as a panicking sibling would).
            std::thread::sleep(std::time::Duration::from_millis(10));
            b.poison();
            assert_eq!(waiter.join().unwrap(), Err(BarrierPoisoned));
        });
        // The barrier stays dead for all future arrivals.
        assert_eq!(b.wait_checked(), Err(BarrierPoisoned));
        assert!(b.is_poisoned());
    }

    #[test]
    fn poison_releases_parked_waiter() {
        let b = ParkingBarrier::new(2);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| b.wait_checked());
            std::thread::sleep(std::time::Duration::from_millis(10));
            b.poison();
            assert_eq!(waiter.join().unwrap(), Err(BarrierPoisoned));
        });
        assert_eq!(b.wait_checked(), Err(BarrierPoisoned));
    }

    #[test]
    fn phase_barrier_poison_is_an_error_not_a_hang() {
        for kind in [BarrierKind::Spin, BarrierKind::Std] {
            let b = PhaseBarrier::new(kind, 3);
            b.poison();
            assert_eq!(b.wait_checked(), Err(BarrierPoisoned));
            assert!(b.wait_timed_checked().is_err());
        }
    }
}
