//! Auto-tuning, the paper's stated future work ("performing auto-tuning
//! and code optimizations on individual computational kernels"): pick the
//! cube edge `k` — the knob that trades per-cube working-set size against
//! cube-boundary overhead — by timing short probe runs of the real solver.

use std::time::Instant;

use crate::config::SimulationConfig;
use crate::cube::CubeSolver;

/// Result of one probe in the tuning sweep.
#[derive(Clone, Copy, Debug)]
pub struct ProbeResult {
    pub cube_k: usize,
    pub seconds_per_step: f64,
}

/// Report of an auto-tuning sweep: every candidate probed, best first.
#[derive(Clone, Debug)]
pub struct TuneReport {
    pub probes: Vec<ProbeResult>,
}

/// Why an auto-tuning sweep could not produce a result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TuneError {
    /// No cube edge ≥ 2 divides every grid extent (or none of the caller's
    /// candidates does), so there is nothing to probe.
    NoLegalCubeEdge { nx: usize, ny: usize, nz: usize },
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::NoLegalCubeEdge { nx, ny, nz } => {
                write!(f, "no legal cube edge for grid {nx}x{ny}x{nz}")
            }
        }
    }
}

impl std::error::Error for TuneError {}

impl TuneReport {
    /// The winning cube edge, or `None` for an empty sweep (a report from
    /// [`autotune_cube_k`] always has at least one probe).
    pub fn best_k(&self) -> Option<usize> {
        self.probes.first().map(|p| p.cube_k)
    }

    /// Human-readable table.
    pub fn table(&self) -> String {
        let mut out = String::from("cube_k | s/step\n-------+---------\n");
        for p in &self.probes {
            out.push_str(&format!("{:>6} | {:.5}\n", p.cube_k, p.seconds_per_step));
        }
        out
    }
}

/// Cube edges that evenly divide all three grid extents (the legal values
/// of `cube_k`), smallest to largest, excluding 1 (degenerate) and edges
/// larger than the smallest extent.
pub fn legal_cube_edges(config: &SimulationConfig) -> Vec<usize> {
    let min_ext = config.nx.min(config.ny).min(config.nz);
    (2..=min_ext)
        .filter(|k| config.nx % k == 0 && config.ny % k == 0 && config.nz % k == 0)
        .collect()
}

/// Times `probe_steps` of the cube solver for each legal cube edge (or the
/// given candidates) and returns the sweep sorted by speed. The probes run
/// the real solver on the real input, so the choice reflects the machine
/// it runs on — the point of auto-tuning. An empty candidate set (a prime
/// grid, or caller candidates that all fail to divide it) is a
/// [`TuneError`], not a panic.
pub fn autotune_cube_k(
    config: SimulationConfig,
    n_threads: usize,
    candidates: Option<&[usize]>,
    probe_steps: u64,
) -> Result<TuneReport, TuneError> {
    let legal = legal_cube_edges(&config);
    let ks: Vec<usize> = match candidates {
        Some(c) => c.iter().copied().filter(|k| legal.contains(k)).collect(),
        None => legal,
    };
    if ks.is_empty() {
        return Err(TuneError::NoLegalCubeEdge {
            nx: config.nx,
            ny: config.ny,
            nz: config.nz,
        });
    }
    let mut probes = Vec::with_capacity(ks.len());
    for k in ks {
        let mut cfg = config;
        cfg.cube_k = k;
        let mut solver = CubeSolver::new(cfg, n_threads);
        solver.run(1); // warm the worker paths and page in the grid
        let t0 = Instant::now();
        solver.run(probe_steps);
        probes.push(ProbeResult {
            cube_k: k,
            seconds_per_step: t0.elapsed().as_secs_f64() / probe_steps as f64,
        });
    }
    probes.sort_by(|a, b| a.seconds_per_step.total_cmp(&b.seconds_per_step));
    Ok(TuneReport { probes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_edges_divide_all_extents() {
        let mut cfg = SimulationConfig::quick_test(); // 24x16x16
        cfg.cube_k = 4;
        let ks = legal_cube_edges(&cfg);
        assert_eq!(ks, vec![2, 4, 8]);
        for k in ks {
            assert_eq!(cfg.nx % k, 0);
            assert_eq!(cfg.ny % k, 0);
            assert_eq!(cfg.nz % k, 0);
        }
    }

    #[test]
    fn autotune_probes_all_candidates_and_picks_fastest() {
        let cfg = SimulationConfig::quick_test();
        let report = autotune_cube_k(cfg, 2, Some(&[2, 4, 8]), 2).unwrap();
        assert_eq!(report.probes.len(), 3);
        // Sorted ascending by time; the best is first.
        for w in report.probes.windows(2) {
            assert!(w[0].seconds_per_step <= w[1].seconds_per_step);
        }
        assert_eq!(report.best_k(), Some(report.probes[0].cube_k));
        assert!(report.table().contains("cube_k"));
    }

    #[test]
    fn illegal_candidates_are_filtered() {
        let cfg = SimulationConfig::quick_test(); // 24x16x16: 5 never divides
        let report = autotune_cube_k(cfg, 1, Some(&[4, 5]), 1).unwrap();
        assert_eq!(report.probes.len(), 1);
        assert_eq!(report.best_k(), Some(4));
    }

    #[test]
    fn empty_candidate_set_is_an_error_not_a_panic() {
        let cfg = SimulationConfig::quick_test();
        let err = autotune_cube_k(cfg, 1, Some(&[5, 7]), 1).unwrap_err();
        assert_eq!(
            err,
            TuneError::NoLegalCubeEdge {
                nx: 24,
                ny: 16,
                nz: 16
            }
        );
        assert!(err.to_string().contains("no legal cube edge"), "{err}");
    }

    #[test]
    fn empty_report_has_no_best_k() {
        let report = TuneReport { probes: Vec::new() };
        assert_eq!(report.best_k(), None); // used to index probes[0] and panic
        assert!(report.table().contains("cube_k"));
    }
}
