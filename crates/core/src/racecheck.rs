//! Phase-ownership race auditor for the cube-centric solver.
//!
//! Algorithm 4's safety argument is a *discipline*, not a type: each
//! location is written by at most one thread per phase (or all its writers
//! hold the owning thread's lock), no location is read and written by
//! different threads within a phase, and phases are separated by barriers.
//! The `unsafe` accessors of [`crate::sharedgrid::SharedSlice`] assert this
//! discipline in comments; this module *checks* it.
//!
//! With the `racecheck` feature enabled, every `SharedSlice` access records
//! `(array, index, thread, phase, read|write, lock-held)` into a lock-free
//! append-only log. After a run, [`audit`] replays the log and reports
//! every pair of accesses that violates the discipline. With the feature
//! off, this module does not exist and the accessors compile to the same
//! code as before — zero overhead.
//!
//! The tracker is *phase-local*: it deliberately ignores cross-phase
//! conflicts, because the barrier between phases provides the
//! happens-before edge that makes them safe. It is therefore a checker for
//! the ownership discipline, not a general happens-before race detector
//! (that is what the loom model and ThreadSanitizer are for).
//!
//! Usage (see `crates/core/tests/racecheck.rs`):
//!
//! ```text
//! racecheck::begin();
//! /* run the solver */
//! racecheck::audit().assert_clean();
//! ```

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Identifies one tracked array (a `SharedSlice` allocation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrackId(u32);

/// Read or write, from the accessor's point of view (`add` is a write).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
}

// Record layout (one u64):
//   [0..28)  index        (up to 268M elements per array)
//   [28..44) phase        (up to 65k phases; 3 per time step)
//   [44..56) array        (up to 4096 tracked arrays per process)
//   [56..62) thread       (up to 62 tracked worker threads)
//   [62]     kind         (0 = read, 1 = write)
//   [63]     lock-held
const INDEX_BITS: u32 = 28;
const PHASE_BITS: u32 = 16;
const ARRAY_BITS: u32 = 12;
const THREAD_BITS: u32 = 6;
const KIND_SHIFT: u32 = 62;
const LOCK_SHIFT: u32 = 63;

/// Sentinel for threads that never called [`set_thread`]; their accesses
/// (setup, teardown, the coordinating main thread) are not recorded.
const UNTRACKED: u64 = (1 << THREAD_BITS) - 1;

thread_local! {
    static THREAD: Cell<u64> = const { Cell::new(UNTRACKED) };
    static PHASE: Cell<u64> = const { Cell::new(0) };
    static LOCK_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Registers the calling thread as tracked worker `tid`.
pub fn set_thread(tid: usize) {
    assert!(
        (tid as u64) < UNTRACKED,
        "racecheck supports at most 62 tracked threads"
    );
    THREAD.with(|t| t.set(tid as u64));
}

/// Sets the calling thread's current phase. Workers advance this after
/// every barrier, so all threads agree on the phase number of each region.
pub fn set_phase(phase: u64) {
    PHASE.with(|p| p.set(phase & ((1 << PHASE_BITS) - 1)));
}

/// Marks the calling thread as holding an owner lock until the returned
/// scope is dropped; accesses made inside are exempt from the
/// single-writer rule (they are serialised by the lock instead).
pub fn lock_scope() -> LockScope {
    LOCK_DEPTH.with(|d| d.set(d.get() + 1));
    LockScope
}

/// RAII token from [`lock_scope`].
pub struct LockScope;

impl Drop for LockScope {
    fn drop(&mut self) {
        LOCK_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

struct Registry {
    names: Vec<String>,
}

static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();

fn registry() -> &'static Mutex<Registry> {
    REGISTRY.get_or_init(|| Mutex::new(Registry { names: Vec::new() }))
}

impl TrackId {
    /// Allocates a fresh id. Arrays beyond the id space are registered but
    /// not recorded (see `record`).
    pub fn register() -> TrackId {
        let mut reg = registry().lock().expect("racecheck registry poisoned");
        let id = reg.names.len() as u32;
        reg.names.push(format!("array{id}"));
        TrackId(id)
    }

    /// Attaches a human-readable name for audit reports.
    pub fn set_name(self, name: &str) {
        let mut reg = registry().lock().expect("racecheck registry poisoned");
        if let Some(slot) = reg.names.get_mut(self.0 as usize) {
            *slot = name.to_string();
        }
    }
}

fn array_name(id: u32) -> String {
    let reg = registry().lock().expect("racecheck registry poisoned");
    reg.names
        .get(id as usize)
        .cloned()
        .unwrap_or_else(|| format!("array{id}"))
}

struct Log {
    slots: Box<[AtomicU64]>,
    cursor: AtomicUsize,
    dropped: AtomicUsize,
}

static LOG: OnceLock<Log> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);

fn log() -> &'static Log {
    LOG.get_or_init(|| {
        let capacity = std::env::var("RACECHECK_LOG_CAPACITY")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(1 << 22);
        let mut v = Vec::with_capacity(capacity);
        v.resize_with(capacity, || AtomicU64::new(0));
        Log {
            slots: v.into_boxed_slice(),
            cursor: AtomicUsize::new(0),
            dropped: AtomicUsize::new(0),
        }
    })
}

/// Clears the log and starts recording. Not reentrant: callers (tests)
/// must serialise begin/audit pairs.
pub fn begin() {
    let l = log();
    l.cursor.store(0, Ordering::Relaxed);
    l.dropped.store(0, Ordering::Relaxed);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Appends one access record; called by the `SharedSlice` accessors.
#[inline]
pub fn record(track: TrackId, index: usize, kind: AccessKind) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let thread = THREAD.with(|t| t.get());
    if thread == UNTRACKED {
        return;
    }
    if (track.0 as u64) >= (1 << ARRAY_BITS) || (index as u64) >= (1 << INDEX_BITS) {
        log().dropped.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let phase = PHASE.with(|p| p.get());
    let locked = LOCK_DEPTH.with(|d| d.get()) > 0;
    let packed = (index as u64)
        | (phase << INDEX_BITS)
        | ((track.0 as u64) << (INDEX_BITS + PHASE_BITS))
        | (thread << (INDEX_BITS + PHASE_BITS + ARRAY_BITS))
        | (((kind == AccessKind::Write) as u64) << KIND_SHIFT)
        | ((locked as u64) << LOCK_SHIFT);
    let l = log();
    let i = l.cursor.fetch_add(1, Ordering::Relaxed);
    if i < l.slots.len() {
        l.slots[i].store(packed, Ordering::Release);
    } else {
        l.dropped.fetch_add(1, Ordering::Relaxed);
    }
}

/// Records an access to every element of a range (bulk borrows such as
/// `as_slice_unchecked`, which make the whole array readable for a phase).
pub fn record_range(track: TrackId, range: std::ops::Range<usize>, kind: AccessKind) {
    for i in range {
        record(track, i, kind);
    }
}

/// One discipline violation found by [`audit`].
pub struct Violation {
    pub phase: u64,
    pub array: String,
    pub index: usize,
    /// Human-readable description of the conflicting accesses.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "phase {}: {}[{}]: {}",
            self.phase, self.array, self.index, self.detail
        )
    }
}

/// Result of an [`audit`] pass.
pub struct Report {
    pub violations: Vec<Violation>,
    /// Records examined.
    pub records: usize,
    /// Records lost to log overflow (a full log makes the audit
    /// incomplete, not wrong — surviving records are still checked).
    pub dropped: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with a formatted listing if any violation was found.
    pub fn assert_clean(&self) {
        if !self.is_clean() {
            let mut msg = format!(
                "racecheck: {} phase-ownership violation(s) in {} records:\n",
                self.violations.len(),
                self.records
            );
            for v in self.violations.iter().take(20) {
                msg.push_str(&format!("  {v}\n"));
            }
            if self.violations.len() > 20 {
                msg.push_str(&format!("  ... and {} more\n", self.violations.len() - 20));
            }
            panic!("{msg}");
        }
    }
}

// Per-(location, thread) access summary bits.
const WROTE_UNLOCKED: u8 = 1;
const WROTE_LOCKED: u8 = 2;
const READ_UNLOCKED: u8 = 4;
const READ_LOCKED: u8 = 8;

/// True if thread `a`'s accesses conflict with thread `b`'s at the same
/// location in the same phase. A write races with any other access unless
/// *both* sides held the owner lock.
fn conflicts(a: u8, b: u8) -> bool {
    let unlocked = |f: u8| f & (WROTE_UNLOCKED | READ_UNLOCKED) != 0;
    if a & WROTE_UNLOCKED != 0 && b != 0 {
        return true;
    }
    if b & WROTE_UNLOCKED != 0 && a != 0 {
        return true;
    }
    if a & WROTE_LOCKED != 0 && unlocked(b) {
        return true;
    }
    if b & WROTE_LOCKED != 0 && unlocked(a) {
        return true;
    }
    false
}

fn describe(flags: u8) -> &'static str {
    match (
        flags & (WROTE_UNLOCKED | WROTE_LOCKED) != 0,
        flags & WROTE_UNLOCKED != 0,
    ) {
        (true, true) => "writes without the owner lock",
        (true, false) => "writes under the owner lock",
        (false, _) => "reads",
    }
}

/// Stops recording, replays the log, and checks every (phase, array,
/// index) group against the ownership discipline.
pub fn audit() -> Report {
    ENABLED.store(false, Ordering::SeqCst);
    let l = log();
    let n = l.cursor.load(Ordering::Relaxed).min(l.slots.len());
    let dropped = l.dropped.load(Ordering::Relaxed);

    // (phase, array, index) -> thread -> summary flags.
    let mut groups: HashMap<u64, HashMap<u8, u8>> = HashMap::new();
    for slot in &l.slots[..n] {
        let rec = slot.load(Ordering::Acquire);
        let thread = ((rec >> (INDEX_BITS + PHASE_BITS + ARRAY_BITS)) & (UNTRACKED)) as u8;
        let key = rec & ((1 << (INDEX_BITS + PHASE_BITS + ARRAY_BITS)) - 1);
        let write = rec >> KIND_SHIFT & 1 == 1;
        let locked = rec >> LOCK_SHIFT & 1 == 1;
        let flag = match (write, locked) {
            (true, false) => WROTE_UNLOCKED,
            (true, true) => WROTE_LOCKED,
            (false, false) => READ_UNLOCKED,
            (false, true) => READ_LOCKED,
        };
        *groups.entry(key).or_default().entry(thread).or_insert(0) |= flag;
    }

    let mut violations = Vec::new();
    for (key, threads) in &groups {
        if threads.len() < 2 {
            continue;
        }
        let summary: Vec<(u8, u8)> = {
            let mut v: Vec<_> = threads.iter().map(|(&t, &f)| (t, f)).collect();
            v.sort_unstable();
            v
        };
        let mut racy = false;
        'pairs: for (i, &(_, fa)) in summary.iter().enumerate() {
            for &(_, fb) in &summary[i + 1..] {
                if conflicts(fa, fb) {
                    racy = true;
                    break 'pairs;
                }
            }
        }
        if racy {
            let index = (key & ((1 << INDEX_BITS) - 1)) as usize;
            let phase = (key >> INDEX_BITS) & ((1 << PHASE_BITS) - 1);
            let array_id = ((key >> (INDEX_BITS + PHASE_BITS)) & ((1 << ARRAY_BITS) - 1)) as u32;
            let detail = summary
                .iter()
                .map(|&(t, f)| format!("thread {t} {}", describe(f)))
                .collect::<Vec<_>>()
                .join("; ");
            violations.push(Violation {
                phase,
                array: array_name(array_id),
                index,
                detail,
            });
        }
    }
    violations.sort_by(|a, b| (a.phase, &a.array, a.index).cmp(&(b.phase, &b.array, b.index)));
    Report {
        violations,
        records: n,
        dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_table_is_symmetric_and_correct() {
        // Two unlocked writers: race.
        assert!(conflicts(WROTE_UNLOCKED, WROTE_UNLOCKED));
        // Unlocked writer vs reader: race.
        assert!(conflicts(WROTE_UNLOCKED, READ_UNLOCKED));
        assert!(conflicts(READ_UNLOCKED, WROTE_UNLOCKED));
        // Unlocked writer vs locked anything: still a race (the lock only
        // helps if everyone takes it).
        assert!(conflicts(WROTE_UNLOCKED, WROTE_LOCKED));
        assert!(conflicts(WROTE_UNLOCKED, READ_LOCKED));
        // Two locked writers: serialised, clean.
        assert!(!conflicts(WROTE_LOCKED, WROTE_LOCKED));
        assert!(!conflicts(WROTE_LOCKED, READ_LOCKED));
        // Locked writer vs unlocked reader: race.
        assert!(conflicts(WROTE_LOCKED, READ_UNLOCKED));
        // Readers never race with readers.
        assert!(!conflicts(READ_UNLOCKED, READ_UNLOCKED));
        assert!(!conflicts(READ_UNLOCKED, READ_LOCKED));
    }
}
