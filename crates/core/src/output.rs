//! Simulation output writers: CSV time series of the structure and legacy
//! VTK snapshots of fluid slices and the sheet, which is how the examples
//! reproduce the visualisations of Figures 1 and 7.

use std::io::{self, Write};
use std::path::Path;

use crate::state::SimState;

/// Failures of the output writers. I/O problems and caller mistakes (like
/// asking for a slice outside the grid) are values, not panics, so a failed
/// snapshot cannot take down a long simulation run.
#[derive(Debug)]
pub enum OutputError {
    /// The underlying writer failed.
    Io(io::Error),
    /// The requested x-normal slice lies outside the fluid grid.
    SliceOutOfRange {
        /// Requested slice index.
        x: usize,
        /// Grid extent along x; valid slices are `0..nx`.
        nx: usize,
    },
}

impl std::fmt::Display for OutputError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "output write failed: {e}"),
            Self::SliceOutOfRange { x, nx } => {
                write!(f, "slice x={x} out of range (grid has nx={nx})")
            }
        }
    }
}

impl std::error::Error for OutputError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::SliceOutOfRange { .. } => None,
        }
    }
}

impl From<io::Error> for OutputError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Writes the sheet node positions as CSV (`fiber,node,x,y,z`).
pub fn write_sheet_csv<W: Write>(state: &SimState, mut w: W) -> io::Result<()> {
    writeln!(w, "fiber,node,x,y,z")?;
    let nn = state.sheet.nodes_per_fiber;
    for fiber in 0..state.sheet.num_fibers {
        for node in 0..nn {
            let p = state.sheet.pos[fiber * nn + node];
            writeln!(w, "{fiber},{node},{:.9},{:.9},{:.9}", p[0], p[1], p[2])?;
        }
    }
    Ok(())
}

/// Appends one row per call to a trajectory CSV
/// (`step,cx,cy,cz,ex,ey,ez`): the sheet centroid and extents over time.
pub fn append_trajectory_row<W: Write>(state: &SimState, mut w: W) -> io::Result<()> {
    let c = state.sheet.centroid();
    let (lo, hi) = state.sheet.bounding_box();
    writeln!(
        w,
        "{},{:.9},{:.9},{:.9},{:.9},{:.9},{:.9}",
        state.step,
        c[0],
        c[1],
        c[2],
        hi[0] - lo[0],
        hi[1] - lo[1],
        hi[2] - lo[2]
    )
}

/// Header for the trajectory CSV.
pub fn trajectory_header<W: Write>(mut w: W) -> io::Result<()> {
    writeln!(w, "step,cx,cy,cz,ex,ey,ez")
}

/// Writes the sheet as a legacy-VTK structured grid of points with a quad
/// connectivity (viewable in ParaView).
pub fn write_sheet_vtk<W: Write>(state: &SimState, mut w: W) -> io::Result<()> {
    let sheet = &state.sheet;
    let nf = sheet.num_fibers;
    let nn = sheet.nodes_per_fiber;
    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "LBM-IB fiber sheet, step {}", state.step)?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET STRUCTURED_GRID")?;
    writeln!(w, "DIMENSIONS {nn} {nf} 1")?;
    writeln!(w, "POINTS {} double", nf * nn)?;
    for fiber in 0..nf {
        for node in 0..nn {
            let p = sheet.pos[fiber * nn + node];
            writeln!(w, "{:.9} {:.9} {:.9}", p[0], p[1], p[2])?;
        }
    }
    writeln!(w, "POINT_DATA {}", nf * nn)?;
    writeln!(w, "VECTORS elastic_force double")?;
    for f in &sheet.elastic {
        writeln!(w, "{:.9} {:.9} {:.9}", f[0], f[1], f[2])?;
    }
    Ok(())
}

/// Writes one x-normal slice of the fluid velocity as CSV
/// (`y,z,ux,uy,uz,rho`). An out-of-range `x` is reported as
/// [`OutputError::SliceOutOfRange`] rather than a panic.
pub fn write_fluid_slice_csv<W: Write>(
    state: &SimState,
    x: usize,
    mut w: W,
) -> Result<(), OutputError> {
    let dims = state.fluid.dims;
    if x >= dims.nx {
        return Err(OutputError::SliceOutOfRange { x, nx: dims.nx });
    }
    writeln!(w, "y,z,ux,uy,uz,rho")?;
    for y in 0..dims.ny {
        for z in 0..dims.nz {
            let n = dims.idx(x, y, z);
            writeln!(
                w,
                "{y},{z},{:.9e},{:.9e},{:.9e},{:.9}",
                state.fluid.ux[n], state.fluid.uy[n], state.fluid.uz[n], state.fluid.rho[n]
            )?;
        }
    }
    Ok(())
}

/// Convenience: writes a sheet VTK snapshot to a numbered file in `dir`.
pub fn dump_sheet_snapshot(
    state: &SimState,
    dir: &Path,
    index: usize,
) -> io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("sheet_{index:05}.vtk"));
    let file = std::fs::File::create(&path)?;
    write_sheet_vtk(state, io::BufWriter::new(file))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimulationConfig;

    fn state() -> SimState {
        SimState::new(SimulationConfig::quick_test())
    }

    #[test]
    fn sheet_csv_has_all_rows() {
        let s = state();
        let mut buf = Vec::new();
        write_sheet_csv(&s, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 1 + s.sheet.n());
        assert!(text.starts_with("fiber,node,x,y,z"));
    }

    #[test]
    fn trajectory_rows_accumulate() {
        let s = state();
        let mut buf = Vec::new();
        trajectory_header(&mut buf).unwrap();
        append_trajectory_row(&s, &mut buf).unwrap();
        append_trajectory_row(&s, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.lines().nth(1).unwrap().starts_with("0,"));
    }

    #[test]
    fn vtk_structure_is_wellformed() {
        let s = state();
        let mut buf = Vec::new();
        write_sheet_vtk(&s, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("DATASET STRUCTURED_GRID"));
        assert!(text.contains(&format!("POINTS {} double", s.sheet.n())));
        assert!(text.contains("VECTORS elastic_force double"));
        // Header + points + point data sections all present.
        let point_lines = text
            .lines()
            .skip_while(|l| !l.starts_with("POINTS"))
            .skip(1)
            .take_while(|l| !l.starts_with("POINT_DATA"))
            .count();
        assert_eq!(point_lines, s.sheet.n());
    }

    #[test]
    fn fluid_slice_covers_plane() {
        let s = state();
        let mut buf = Vec::new();
        write_fluid_slice_csv(&s, 2, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 1 + s.fluid.dims.ny * s.fluid.dims.nz);
    }

    #[test]
    fn slice_out_of_range_is_a_typed_error() {
        let s = state();
        let mut buf = Vec::new();
        let err = write_fluid_slice_csv(&s, 999, &mut buf).unwrap_err();
        match &err {
            OutputError::SliceOutOfRange { x: 999, nx } => assert_eq!(*nx, s.fluid.dims.nx),
            other => panic!("expected SliceOutOfRange, got {other:?}"),
        }
        assert!(buf.is_empty(), "nothing is written on a rejected slice");
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn snapshot_file_written() {
        let s = state();
        let dir = std::env::temp_dir().join("lbmib_test_snapshots");
        let path = dump_sheet_snapshot(&s, &dir, 3).unwrap();
        assert!(path.to_string_lossy().ends_with("sheet_00003.vtk"));
        assert!(path.exists());
        std::fs::remove_file(path).ok();
    }
}
