//! # lbm-ib — the coupled LBM-IB fluid–structure interaction library
//!
//! Rust reproduction of *"LBM-IB: A Parallel Library to Solve 3D
//! Fluid-Structure Interaction Problems on Manycore Systems"* (Nagar, Song,
//! Zhu, Lin — ICPP 2015). Three solvers share one configuration and one
//! physics:
//!
//! * [`sequential::SequentialSolver`] — Algorithm 1, the nine kernels.
//! * [`openmp::OpenMpSolver`] — Section IV's loop-parallel design (rayon
//!   standing in for OpenMP, static x-slab schedule).
//! * [`cube::CubeSolver`] — Section V's cube-centric data-centric design:
//!   long-lived worker threads, cube-blocked storage, `cube2thread`
//!   distribution, owner locks and three barriers per step (Algorithm 4).
//!
//! Supporting machinery: per-kernel profiling (the gprof/OmpP replacement
//! behind Tables I–II), cross-solver verification, diagnostics, and
//! CSV/VTK output.
//!
//! ## Quick example
//!
//! All four drivers implement the [`solver::Solver`] trait, so generic
//! code holds a `Box<dyn Solver>` and never matches on the kind:
//!
//! ```
//! use lbm_ib::solver::build_solver;
//! use lbm_ib::{SimState, SimulationConfig};
//!
//! let config = SimulationConfig::quick_test();
//! let mut solver = build_solver("seq", SimState::new(config), 1)?;
//! let report = solver.run(5)?;
//! assert_eq!(report.steps, 5);
//! assert!(!solver.to_state().has_nan());
//! println!("{}", solver.profile().unwrap().table()); // the Table I layout
//! # Ok::<(), lbm_ib::solver::SolverError>(())
//! ```

pub mod atomicf64;
pub mod barrier;
pub mod checkpoint;
pub mod config;
pub mod cube;
pub mod diagnostics;
pub mod distributed;
pub mod faultinject;
pub mod kernels;
pub mod openmp;
pub mod output;
pub mod profiling;
#[cfg(feature = "racecheck")]
pub mod racecheck;
pub mod sequential;
pub mod sharedgrid;
pub mod solver;
pub mod state;
pub mod supervisor;
pub mod sync_shim;
pub mod telemetry;
pub mod threadpool;
pub mod tuning;
pub mod verify;

pub use checkpoint::{CheckpointError, ResumeSource};
pub use config::{
    ConfigError, KernelPlan, RecoveryPolicy, SheetConfig, SimulationConfig, TetherConfig,
    WatchdogConfig,
};
pub use cube::CubeSolver;
pub use distributed::DistributedSolver;
pub use openmp::OpenMpSolver;
pub use output::OutputError;
pub use sequential::SequentialSolver;
pub use solver::{
    build_solver, run_with_checkpoints, CheckpointPolicy, RunReport, Solver, SolverError,
};
pub use state::SimState;
pub use supervisor::{metrics_document, RecoveryAction, RecoveryEvent, RecoveryReport, Supervisor};
pub use telemetry::{MetricsRegistry, RunTelemetry, ThreadTelemetry, Watchdog};
