//! Primitive selection for model checking: the concurrency building blocks
//! ([`crate::barrier`], [`crate::atomicf64`], [`crate::sharedgrid`]) import
//! their atomics and spin hints from here, so that compiling the crate with
//! `RUSTFLAGS="--cfg loom"` swaps in the loom model checker's doubles while
//! ordinary builds get the real `std` types with zero indirection.
//!
//! Run the exhaustive interleaving tests with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p lbm-ib --test loom --release
//! ```

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One spin-loop iteration (`std::hint::spin_loop`, or loom's modeled park
/// that keeps busy-wait loops finite for the explorer).
#[inline]
pub fn spin_wait() {
    #[cfg(loom)]
    loom::hint::spin_loop();
    #[cfg(not(loom))]
    std::hint::spin_loop();
}

/// Yield the time slice (`std::thread::yield_now`, or loom's modeled park).
#[inline]
pub fn yield_wait() {
    #[cfg(loom)]
    loom::thread::yield_now();
    #[cfg(not(loom))]
    std::thread::yield_now();
}
