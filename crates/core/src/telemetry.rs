//! Per-thread run telemetry and the in-solver run-health watchdog.
//!
//! The paper's whole evaluation (Table I, Figures 8–11) rests on
//! per-kernel time breakdowns, barrier overhead and thread-load balance —
//! numbers a `&mut self` profiler cannot collect from inside the cube
//! solver's worker team. This module provides the missing plumbing:
//!
//! * [`MetricsRegistry`] — a lock-free registry with one cache-line-padded
//!   [`ThreadSlot`] per worker. Workers write only their own slot (plain
//!   `Relaxed` atomics, single writer per slot, so there is never
//!   contention or false sharing); readers merge all slots into a
//!   [`RunTelemetry`] snapshot on demand.
//! * [`RunTelemetry`] — the merged view attached to
//!   [`crate::solver::RunReport`]: per-kernel totals over all nine
//!   Algorithm-1 kernels (plus the fused sweep), per-thread busy/wait
//!   breakdowns, barrier-wait share, cube/fiber ownership counts from
//!   `cube2thread`/`fiber2thread`, and the load-imbalance ratio. It
//!   serialises itself to JSON (hand-rolled; the workspace has no serde)
//!   for `lbmib --metrics <path>` and the bench harness.
//! * [`Watchdog`] — an in-solver health check driven by
//!   [`crate::config::WatchdogConfig`]: every `check_every` steps the
//!   solver's state is inspected for NaN, mass drift and runaway velocity
//!   (the exact limits of [`crate::diagnostics`], shared constants so the
//!   CLI and in-run checks cannot diverge), turning silent garbage into a
//!   typed [`SolverError::Unstable`].

use std::sync::atomic::{AtomicU64, Ordering};

use crate::diagnostics::diagnostics;
use crate::profiling::KernelId;
use crate::solver::SolverError;
use crate::state::SimState;

/// One worker's private metrics slot. `#[repr(align(128))]` keeps slots on
/// distinct cache lines (128 covers the common 64-byte line and the
/// 128-byte prefetch pairs of recent x86), so per-step flushes from
/// different workers never false-share.
///
/// Seconds are stored as `f64` bit patterns inside `AtomicU64`s; every
/// slot has exactly one writer (its worker), so `Relaxed` read-modify
/// sequences are race-free, and readers merging mid-run see a consistent
/// monotone prefix of each counter.
#[repr(align(128))]
#[derive(Debug)]
pub struct ThreadSlot {
    /// Accumulated busy seconds per kernel (f64 bits).
    kernel_seconds: [AtomicU64; KernelId::COUNT],
    /// Accumulated seconds spent inside barrier/communication waits (f64
    /// bits).
    barrier_wait_seconds: AtomicU64,
    /// Number of barrier waits (or blocking receives) performed.
    barrier_waits: AtomicU64,
    /// Cubes assigned to this worker by `cube2thread` (x-planes for the
    /// distributed solver; 0 for the slab/sequential decompositions).
    cubes_owned: AtomicU64,
    /// Fibers assigned by `fiber2thread`.
    fibers_owned: AtomicU64,
}

impl ThreadSlot {
    fn new() -> Self {
        Self {
            kernel_seconds: std::array::from_fn(|_| AtomicU64::new(0f64.to_bits())),
            barrier_wait_seconds: AtomicU64::new(0f64.to_bits()),
            barrier_waits: AtomicU64::new(0),
            cubes_owned: AtomicU64::new(0),
            fibers_owned: AtomicU64::new(0),
        }
    }

    /// Overwrites the per-kernel busy totals (the worker's running sums).
    pub fn store_kernel_seconds(&self, totals: &[f64; KernelId::COUNT]) {
        for (slot, &v) in self.kernel_seconds.iter().zip(totals) {
            slot.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds busy seconds to one kernel (single-writer accumulate).
    pub fn add_kernel_seconds(&self, kernel: KernelId, seconds: f64) {
        let slot = &self.kernel_seconds[kernel.index()];
        let cur = f64::from_bits(slot.load(Ordering::Relaxed));
        slot.store((cur + seconds).to_bits(), Ordering::Relaxed);
    }

    /// Overwrites the barrier-wait running totals.
    pub fn store_barrier_wait(&self, seconds: f64, waits: u64) {
        self.barrier_wait_seconds
            .store(seconds.to_bits(), Ordering::Relaxed);
        self.barrier_waits.store(waits, Ordering::Relaxed);
    }

    /// Records this worker's static data assignment.
    pub fn set_ownership(&self, cubes: u64, fibers: u64) {
        self.cubes_owned.store(cubes, Ordering::Relaxed);
        self.fibers_owned.store(fibers, Ordering::Relaxed);
    }

    /// Reads the slot into a plain value (merge-on-read).
    pub fn read(&self) -> ThreadTelemetry {
        let mut kernel_seconds = [0.0; KernelId::COUNT];
        for (out, slot) in kernel_seconds.iter_mut().zip(&self.kernel_seconds) {
            *out = f64::from_bits(slot.load(Ordering::Relaxed));
        }
        ThreadTelemetry {
            kernel_seconds,
            barrier_wait_seconds: f64::from_bits(self.barrier_wait_seconds.load(Ordering::Relaxed)),
            barrier_waits: self.barrier_waits.load(Ordering::Relaxed),
            cubes_owned: self.cubes_owned.load(Ordering::Relaxed),
            fibers_owned: self.fibers_owned.load(Ordering::Relaxed),
        }
    }
}

/// Lock-free per-thread metrics registry: one padded slot per worker,
/// merged on read by [`MetricsRegistry::snapshot`].
#[derive(Debug)]
pub struct MetricsRegistry {
    slots: Box<[ThreadSlot]>,
}

impl MetricsRegistry {
    /// Registry for `n_threads` workers.
    pub fn new(n_threads: usize) -> Self {
        assert!(n_threads > 0, "registry needs at least one thread");
        Self {
            slots: (0..n_threads).map(|_| ThreadSlot::new()).collect(),
        }
    }

    /// Number of slots.
    pub fn n_threads(&self) -> usize {
        self.slots.len()
    }

    /// Thread `tid`'s private slot.
    pub fn slot(&self, tid: usize) -> &ThreadSlot {
        &self.slots[tid]
    }

    /// Merges every slot into a [`RunTelemetry`] snapshot.
    pub fn snapshot(&self, solver: &'static str, steps: u64, wall_seconds: f64) -> RunTelemetry {
        RunTelemetry {
            solver,
            steps,
            wall_seconds,
            per_thread: self.slots.iter().map(ThreadSlot::read).collect(),
        }
    }
}

/// One thread's merged telemetry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ThreadTelemetry {
    /// Busy seconds per kernel, [`KernelId::ALL`] order.
    pub kernel_seconds: [f64; KernelId::COUNT],
    /// Seconds spent waiting at barriers (cube solver: the three
    /// `SpinBarrier::wait`s per step; omp: the implicit region joins;
    /// dist: blocking halo/reduce receives).
    pub barrier_wait_seconds: f64,
    /// How many such waits were performed.
    pub barrier_waits: u64,
    /// Cubes owned (`cube2thread`; x-planes for dist, 0 for seq/omp).
    pub cubes_owned: u64,
    /// Fibers owned (`fiber2thread`).
    pub fibers_owned: u64,
}

impl ThreadTelemetry {
    /// Total busy seconds across all kernels.
    pub fn busy_seconds(&self) -> f64 {
        self.kernel_seconds.iter().sum()
    }

    fn merge(&mut self, other: &ThreadTelemetry) {
        for (a, b) in self.kernel_seconds.iter_mut().zip(&other.kernel_seconds) {
            *a += b;
        }
        self.barrier_wait_seconds += other.barrier_wait_seconds;
        self.barrier_waits += other.barrier_waits;
        // Ownership is a static property of the run, not a sum.
        self.cubes_owned = self.cubes_owned.max(other.cubes_owned);
        self.fibers_owned = self.fibers_owned.max(other.fibers_owned);
    }
}

/// Merged telemetry of one [`crate::solver::Solver::run`] call, carried in
/// [`crate::solver::RunReport::telemetry`].
#[derive(Clone, Debug, PartialEq)]
pub struct RunTelemetry {
    /// Solver short name (`seq|omp|cube|dist`).
    pub solver: &'static str,
    /// Steps covered by this snapshot.
    pub steps: u64,
    /// Wall-clock seconds of the covered run.
    pub wall_seconds: f64,
    /// One entry per worker thread / rank.
    pub per_thread: Vec<ThreadTelemetry>,
}

impl RunTelemetry {
    /// Number of threads covered.
    pub fn n_threads(&self) -> usize {
        self.per_thread.len()
    }

    /// CPU seconds spent in one kernel, summed over threads.
    pub fn kernel_seconds(&self, kernel: KernelId) -> f64 {
        self.per_thread
            .iter()
            .map(|t| t.kernel_seconds[kernel.index()])
            .sum()
    }

    /// Per-kernel CPU-second totals in [`KernelId::ALL`] order.
    pub fn kernel_totals(&self) -> [f64; KernelId::COUNT] {
        let mut out = [0.0; KernelId::COUNT];
        for t in &self.per_thread {
            for (o, v) in out.iter_mut().zip(&t.kernel_seconds) {
                *o += v;
            }
        }
        out
    }

    /// Total busy CPU seconds over all threads and kernels.
    pub fn busy_seconds(&self) -> f64 {
        self.per_thread
            .iter()
            .map(ThreadTelemetry::busy_seconds)
            .sum()
    }

    /// Total barrier-wait seconds over all threads.
    pub fn barrier_wait_seconds(&self) -> f64 {
        self.per_thread.iter().map(|t| t.barrier_wait_seconds).sum()
    }

    /// Total number of barrier waits over all threads.
    pub fn barrier_waits(&self) -> u64 {
        self.per_thread.iter().map(|t| t.barrier_waits).sum()
    }

    /// Barrier-wait share of the total accounted thread time:
    /// `wait / (busy + wait)`, in `[0, 1]` (0 for a wait-free run).
    pub fn barrier_wait_share(&self) -> f64 {
        let wait = self.barrier_wait_seconds();
        let denom = self.busy_seconds() + wait;
        if denom > 0.0 {
            wait / denom
        } else {
            0.0
        }
    }

    /// Load-imbalance ratio: max per-thread busy time over the mean
    /// (1.0 = perfectly balanced; the paper's Table II pathology shows up
    /// as ratios well above 1).
    pub fn imbalance_ratio(&self) -> f64 {
        let busy: Vec<f64> = self
            .per_thread
            .iter()
            .map(ThreadTelemetry::busy_seconds)
            .collect();
        let max = busy.iter().copied().fold(0.0, f64::max);
        let mean = busy.iter().sum::<f64>() / busy.len().max(1) as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Merges a subsequent run's telemetry into this one (per-thread sums;
    /// the thread lists are padded to the longer of the two).
    pub fn merge(&mut self, other: &RunTelemetry) {
        if other.per_thread.len() > self.per_thread.len() {
            self.per_thread
                .resize(other.per_thread.len(), ThreadTelemetry::default());
        }
        for (a, b) in self.per_thread.iter_mut().zip(&other.per_thread) {
            a.merge(b);
        }
        self.steps += other.steps;
        self.wall_seconds += other.wall_seconds;
    }

    /// One-line human summary for progress logs.
    pub fn summary(&self) -> String {
        format!(
            "telemetry: {} threads, busy {:.3}s, barrier wait {:.3}s ({:.1}% share, {} waits), imbalance ratio {:.3}",
            self.n_threads(),
            self.busy_seconds(),
            self.barrier_wait_seconds(),
            100.0 * self.barrier_wait_share(),
            self.barrier_waits(),
            self.imbalance_ratio()
        )
    }

    /// Serialises the snapshot as a self-contained JSON document (no serde
    /// in the workspace; numbers use Rust's shortest-round-trip `Debug`
    /// float form, which is valid JSON; non-finite values become `null`).
    pub fn to_json(&self) -> String {
        self.to_json_with_sections(&[])
    }

    /// [`RunTelemetry::to_json`] with extra top-level `"name": <value>`
    /// sections appended before the closing brace. Each value must already
    /// be serialised JSON — this is how the CLI composes the `--metrics`
    /// document out of the telemetry snapshot and the supervisor's
    /// recovery block without a serde dependency.
    pub fn to_json_with_sections(&self, sections: &[(&str, String)]) -> String {
        let totals = self.kernel_totals();
        let total_busy: f64 = totals.iter().sum();
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str(&format!("  \"solver\": \"{}\",\n", self.solver));
        out.push_str(&format!("  \"steps\": {},\n", self.steps));
        out.push_str(&format!("  \"wall_seconds\": {},\n", jf(self.wall_seconds)));
        out.push_str(&format!("  \"n_threads\": {},\n", self.n_threads()));
        out.push_str(&format!(
            "  \"imbalance_ratio\": {},\n",
            jf(self.imbalance_ratio())
        ));
        out.push_str(&format!(
            "  \"barrier_wait_seconds\": {},\n",
            jf(self.barrier_wait_seconds())
        ));
        out.push_str(&format!(
            "  \"barrier_wait_share\": {},\n",
            jf(self.barrier_wait_share())
        ));
        out.push_str(&format!(
            "  \"total_barrier_waits\": {},\n",
            self.barrier_waits()
        ));
        out.push_str("  \"kernels\": [\n");
        for (i, k) in KernelId::ALL.iter().enumerate() {
            let share = if total_busy > 0.0 {
                totals[k.index()] / total_busy
            } else {
                0.0
            };
            out.push_str(&format!(
                "    {{\"kernel\": {}, \"name\": \"{}\", \"seconds\": {}, \"share\": {}}}{}\n",
                k.paper_number(),
                k.paper_name(),
                jf(totals[k.index()]),
                jf(share),
                if i + 1 < KernelId::COUNT { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"threads\": [\n");
        for (t, tt) in self.per_thread.iter().enumerate() {
            let kernels: Vec<String> = tt.kernel_seconds.iter().map(|&s| jf(s)).collect();
            out.push_str(&format!(
                "    {{\"thread\": {}, \"busy_seconds\": {}, \"barrier_wait_seconds\": {}, \"barrier_waits\": {}, \"cubes_owned\": {}, \"fibers_owned\": {}, \"kernel_seconds\": [{}]}}{}\n",
                t,
                jf(tt.busy_seconds()),
                jf(tt.barrier_wait_seconds),
                tt.barrier_waits,
                tt.cubes_owned,
                tt.fibers_owned,
                kernels.join(", "),
                if t + 1 < self.per_thread.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]");
        for (name, value) in sections {
            out.push_str(&format!(",\n  \"{name}\": {value}"));
        }
        out.push_str("\n}\n");
        out
    }
}

/// JSON float formatting: shortest round-trip form, `null` for non-finite.
fn jf(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// In-solver run-health checks, configured by
/// [`crate::config::WatchdogConfig`]. The first [`Watchdog::observe`] call
/// arms the reference mass; every later call re-checks the stability
/// invariants and converts the first violation into
/// [`SolverError::Unstable`].
#[derive(Debug)]
pub struct Watchdog {
    initial_mass: Option<f64>,
}

impl Watchdog {
    /// Fresh, unarmed watchdog.
    pub fn new() -> Self {
        Self { initial_mass: None }
    }

    /// Checks `state` against the stability invariants (NaN, max
    /// velocity, mass drift — the shared limits in [`crate::diagnostics`]).
    /// The first call records the reference mass.
    pub fn observe(&mut self, state: &SimState) -> Result<(), SolverError> {
        let d = diagnostics(state);
        let initial = *self.initial_mass.get_or_insert(d.mass);
        d.check_stability(initial)
            .map_err(|reason| SolverError::Unstable {
                step: d.step,
                reason,
            })
    }
}

impl Default for Watchdog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new(2);
        reg.slot(0)
            .store_kernel_seconds(&[1.0, 0.0, 0.0, 0.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        reg.slot(0).store_barrier_wait(0.5, 30);
        reg.slot(0).set_ownership(6, 4);
        reg.slot(1)
            .store_kernel_seconds(&[0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 1.0, 0.0, 0.0, 0.0]);
        reg.slot(1).store_barrier_wait(1.5, 30);
        reg.slot(1).set_ownership(2, 4);
        reg
    }

    #[test]
    fn slots_are_cache_line_padded() {
        assert_eq!(std::mem::align_of::<ThreadSlot>(), 128);
        assert_eq!(std::mem::size_of::<ThreadSlot>() % 128, 0);
    }

    #[test]
    fn snapshot_merges_on_read() {
        let t = filled_registry().snapshot("cube", 10, 4.5);
        assert_eq!(t.n_threads(), 2);
        assert_eq!(t.steps, 10);
        assert_eq!(t.kernel_seconds(KernelId::Collision), 4.0);
        assert_eq!(t.kernel_seconds(KernelId::BendingForce), 1.0);
        assert_eq!(t.busy_seconds(), 6.0);
        assert_eq!(t.barrier_wait_seconds(), 2.0);
        assert_eq!(t.barrier_waits(), 60);
        // wait / (busy + wait) = 2 / 8.
        assert!((t.barrier_wait_share() - 0.25).abs() < 1e-12);
        // busy: [4, 2] → max 4, mean 3 → ratio 4/3.
        assert!((t.imbalance_ratio() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.per_thread[0].cubes_owned, 6);
        assert_eq!(t.per_thread[1].fibers_owned, 4);
    }

    #[test]
    fn add_kernel_seconds_accumulates() {
        let reg = MetricsRegistry::new(1);
        reg.slot(0).add_kernel_seconds(KernelId::Stream, 0.25);
        reg.slot(0).add_kernel_seconds(KernelId::Stream, 0.5);
        let t = reg.snapshot("seq", 1, 1.0);
        assert_eq!(t.kernel_seconds(KernelId::Stream), 0.75);
    }

    #[test]
    fn merge_accumulates_chunks() {
        let mut a = filled_registry().snapshot("cube", 10, 4.5);
        let b = filled_registry().snapshot("cube", 5, 1.5);
        a.merge(&b);
        assert_eq!(a.steps, 15);
        assert_eq!(a.wall_seconds, 6.0);
        assert_eq!(a.busy_seconds(), 12.0);
        assert_eq!(a.barrier_waits(), 120);
        // Ownership is static, not summed.
        assert_eq!(a.per_thread[0].cubes_owned, 6);
    }

    #[test]
    fn degenerate_telemetry_has_safe_ratios() {
        let t = MetricsRegistry::new(3).snapshot("cube", 0, 0.0);
        assert_eq!(t.barrier_wait_share(), 0.0);
        assert_eq!(t.imbalance_ratio(), 1.0);
    }

    #[test]
    fn json_has_all_kernels_and_threads() {
        let json = filled_registry().snapshot("cube", 10, 4.5).to_json();
        assert!(json.contains("\"solver\": \"cube\""));
        assert!(json.contains("\"barrier_wait_share\""));
        assert!(json.contains("\"imbalance_ratio\""));
        assert!(json.contains("compute_fluid_collision"));
        assert!(json.contains("fused_collide_stream"));
        assert_eq!(json.matches("\"kernel\":").count(), KernelId::COUNT);
        assert_eq!(json.matches("\"thread\":").count(), 2);
        // Structural sanity: balanced braces/brackets, even quote count.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches('"').count() % 2, 0);
    }

    #[test]
    fn json_floats_are_finite_or_null() {
        assert_eq!(jf(1.5), "1.5");
        assert_eq!(jf(1e-7), "1e-7");
        assert_eq!(jf(f64::NAN), "null");
        assert_eq!(jf(f64::INFINITY), "null");
    }

    #[test]
    fn watchdog_arms_then_flags_nan() {
        use crate::config::SimulationConfig;
        let state = SimState::new(SimulationConfig::quick_test());
        let mut dog = Watchdog::new();
        dog.observe(&state).unwrap();
        let mut bad = state.clone();
        bad.fluid.ux[7] = f64::NAN;
        match dog.observe(&bad) {
            Err(SolverError::Unstable { reason, .. }) => {
                assert!(reason.contains("NaN"), "{reason}")
            }
            other => panic!("expected Unstable, got {other:?}"),
        }
        // The original state still passes.
        dog.observe(&state).unwrap();
    }
}
