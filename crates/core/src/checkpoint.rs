//! Checkpoint / restart: save a full [`SimState`] to disk and resume it
//! bit-exactly. Long FSI runs (the paper's inputs run for hours) need
//! this in practice.
//!
//! The format is a versioned little-endian binary layout written by this
//! module (no external serialization crate): magic, version, config,
//! fluid arrays, structure arrays, step counter, and a trailing length
//! guard. Loading validates magic, version and sizes and fails loudly on
//! corruption or truncation.

use std::io::{self, Read, Write};
use std::path::Path;

use ib::delta::DeltaKind;
use ib::sheet::FiberSheet;
use ib::tether::{Tether, TetherSet};
use lbm::boundary::{AxisBoundary, BoundaryConfig};
use lbm::grid::FluidGrid;

use crate::config::{SheetConfig, SimulationConfig, TetherConfig};
use crate::state::SimState;

const MAGIC: &[u8; 8] = b"LBMIB\0\0\x01";
const VERSION: u64 = 1;

/// Sanity bounds on header dimensions, checked **before** any allocation
/// sized from them. A corrupt or hostile header used to drive
/// `FluidGrid::new(nx * ny * nz)` directly: `u64::MAX` extents overflowed
/// the product (a panic in debug builds, an absurd allocation in release).
const MAX_EXTENT: u64 = 1 << 16;
const MAX_GRID_NODES: u64 = 1 << 31;
const MAX_FIBER_COUNT: u64 = 1 << 20;
const MAX_NODES_PER_FIBER: u64 = 1 << 20;
const MAX_SHEET_NODES: u64 = 1 << 26;

/// Rejects zero or out-of-bounds header dimensions with a format error.
fn bounded(v: u64, max: u64, what: &str) -> Result<usize, CheckpointError> {
    if v == 0 || v > max {
        return Err(CheckpointError::Format(format!(
            "{what} = {v} outside sane range 1..={max}"
        )));
    }
    Ok(v as usize)
}

/// Errors from loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    Io(io::Error),
    /// Not a checkpoint file, or a different format version.
    Format(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(m) => write!(f, "invalid checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

struct Enc<W: Write>(W);

impl<W: Write> Enc<W> {
    fn u64(&mut self, v: u64) -> io::Result<()> {
        self.0.write_all(&v.to_le_bytes())
    }
    fn f64(&mut self, v: f64) -> io::Result<()> {
        self.0.write_all(&v.to_le_bytes())
    }
    fn f64s(&mut self, v: &[f64]) -> io::Result<()> {
        self.u64(v.len() as u64)?;
        let mut buf = Vec::with_capacity(8192);
        for chunk in v.chunks(1024) {
            buf.clear();
            for x in chunk {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            self.0.write_all(&buf)?;
        }
        Ok(())
    }
    fn vec3s(&mut self, v: &[[f64; 3]]) -> io::Result<()> {
        self.u64(v.len() as u64)?;
        for p in v {
            for c in p {
                self.f64(*c)?;
            }
        }
        Ok(())
    }
    fn axis(&mut self, a: AxisBoundary) -> io::Result<()> {
        match a {
            AxisBoundary::Periodic => self.u64(0),
            AxisBoundary::Walls { lo, hi } => {
                self.u64(1)?;
                for c in lo.iter().chain(hi.iter()) {
                    self.f64(*c)?;
                }
                Ok(())
            }
        }
    }
}

struct Dec<R: Read>(R);

impl<R: Read> Dec<R> {
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let mut b = [0u8; 8];
        self.0.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        let mut b = [0u8; 8];
        self.0.read_exact(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }
    fn f64s(&mut self, expect: usize) -> Result<Vec<f64>, CheckpointError> {
        let n = self.u64()? as usize;
        if n != expect {
            return Err(CheckpointError::Format(format!(
                "array length {n}, expected {expect}"
            )));
        }
        let mut out = vec![0.0; n];
        let mut buf = vec![0u8; 8 * 1024.min(n.max(1))];
        let mut i = 0;
        while i < n {
            let take = (n - i).min(1024);
            let bytes = &mut buf[..take * 8];
            self.0.read_exact(bytes)?;
            for (j, chunk) in bytes.chunks_exact(8).enumerate() {
                out[i + j] = f64::from_le_bytes(chunk.try_into().unwrap());
            }
            i += take;
        }
        Ok(out)
    }
    fn vec3s(&mut self, expect: usize) -> Result<Vec<[f64; 3]>, CheckpointError> {
        let n = self.u64()? as usize;
        if n != expect {
            return Err(CheckpointError::Format(format!(
                "node count {n}, expected {expect}"
            )));
        }
        let mut out = vec![[0.0; 3]; n];
        for p in out.iter_mut() {
            for c in p.iter_mut() {
                *c = self.f64()?;
            }
        }
        Ok(out)
    }
    fn axis(&mut self) -> Result<AxisBoundary, CheckpointError> {
        match self.u64()? {
            0 => Ok(AxisBoundary::Periodic),
            1 => {
                let mut v = [0.0; 6];
                for c in v.iter_mut() {
                    *c = self.f64()?;
                }
                Ok(AxisBoundary::Walls {
                    lo: [v[0], v[1], v[2]],
                    hi: [v[3], v[4], v[5]],
                })
            }
            k => Err(CheckpointError::Format(format!("unknown axis kind {k}"))),
        }
    }
}

fn delta_code(d: DeltaKind) -> u64 {
    match d {
        DeltaKind::Peskin4 => 0,
        DeltaKind::Peskin4Poly => 1,
        DeltaKind::Hat2 => 2,
        DeltaKind::Roma3 => 3,
    }
}

fn delta_from(code: u64) -> Result<DeltaKind, CheckpointError> {
    Ok(match code {
        0 => DeltaKind::Peskin4,
        1 => DeltaKind::Peskin4Poly,
        2 => DeltaKind::Hat2,
        3 => DeltaKind::Roma3,
        k => return Err(CheckpointError::Format(format!("unknown delta kind {k}"))),
    })
}

/// Writes a checkpoint of `state` to `w`.
pub fn write_checkpoint<W: Write>(state: &SimState, w: W) -> io::Result<()> {
    let mut e = Enc(io::BufWriter::new(w));
    e.0.write_all(MAGIC)?;
    e.u64(VERSION)?;

    // Config.
    let c = &state.config;
    e.u64(c.nx as u64)?;
    e.u64(c.ny as u64)?;
    e.u64(c.nz as u64)?;
    e.f64(c.tau)?;
    for g in c.body_force {
        e.f64(g)?;
    }
    e.axis(c.bc.x)?;
    e.axis(c.bc.y)?;
    e.axis(c.bc.z)?;
    e.u64(delta_code(c.delta))?;
    e.u64(c.cube_k as u64)?;
    // Sheet config.
    let s = &c.sheet;
    e.u64(s.num_fibers as u64)?;
    e.u64(s.nodes_per_fiber as u64)?;
    e.f64(s.width)?;
    e.f64(s.height)?;
    for v in s.center {
        e.f64(v)?;
    }
    e.f64(s.k_bend)?;
    e.f64(s.k_stretch)?;
    match s.tether {
        TetherConfig::None => e.u64(0)?,
        TetherConfig::CenterRegion { radius, stiffness } => {
            e.u64(1)?;
            e.f64(radius)?;
            e.f64(stiffness)?;
        }
        TetherConfig::LeadingEdge { stiffness } => {
            e.u64(2)?;
            e.f64(stiffness)?;
        }
    }

    // Fluid arrays.
    let g = &state.fluid;
    e.f64s(&g.f)?;
    e.f64s(&g.f_new)?;
    e.f64s(&g.rho)?;
    e.f64s(&g.ux)?;
    e.f64s(&g.uy)?;
    e.f64s(&g.uz)?;
    e.f64s(&g.ueqx)?;
    e.f64s(&g.ueqy)?;
    e.f64s(&g.ueqz)?;
    e.f64s(&g.fx)?;
    e.f64s(&g.fy)?;
    e.f64s(&g.fz)?;

    // Structure.
    let sh = &state.sheet;
    e.f64(sh.ds_node)?;
    e.f64(sh.ds_fiber)?;
    e.f64(sh.k_bend)?;
    e.f64(sh.k_stretch)?;
    e.vec3s(&sh.pos)?;
    e.vec3s(&sh.bending)?;
    e.vec3s(&sh.stretching)?;
    e.vec3s(&sh.elastic)?;

    // Tethers (runtime set, not just config, so anchors are preserved).
    e.u64(state.tethers.tethers.len() as u64)?;
    for t in &state.tethers.tethers {
        e.u64(t.node as u64)?;
        for v in t.anchor {
            e.f64(v)?;
        }
        e.f64(t.stiffness)?;
    }

    e.u64(state.step)?;
    e.u64(0xC0DA_F00D_u64)?; // trailing guard
    e.0.flush()
}

/// Reads a checkpoint from `r`.
pub fn read_checkpoint<R: Read>(r: R) -> Result<SimState, CheckpointError> {
    let mut d = Dec(io::BufReader::new(r));
    let mut magic = [0u8; 8];
    d.0.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    if d.u64()? != VERSION {
        return Err(CheckpointError::Format("unsupported version".into()));
    }

    let nx = bounded(d.u64()?, MAX_EXTENT, "nx")?;
    let ny = bounded(d.u64()?, MAX_EXTENT, "ny")?;
    let nz = bounded(d.u64()?, MAX_EXTENT, "nz")?;
    let grid_nodes = (nx as u64) * (ny as u64) * (nz as u64);
    if grid_nodes > MAX_GRID_NODES {
        return Err(CheckpointError::Format(format!(
            "grid {nx}x{ny}x{nz} has {grid_nodes} nodes, limit {MAX_GRID_NODES}"
        )));
    }
    let tau = d.f64()?;
    let body_force = [d.f64()?, d.f64()?, d.f64()?];
    let bc = BoundaryConfig {
        x: d.axis()?,
        y: d.axis()?,
        z: d.axis()?,
    };
    let delta = delta_from(d.u64()?)?;
    let cube_k = d.u64()? as usize;
    let num_fibers = bounded(d.u64()?, MAX_FIBER_COUNT, "num_fibers")?;
    let nodes_per_fiber = bounded(d.u64()?, MAX_NODES_PER_FIBER, "nodes_per_fiber")?;
    let sheet_nodes = (num_fibers as u64) * (nodes_per_fiber as u64);
    if sheet_nodes > MAX_SHEET_NODES {
        return Err(CheckpointError::Format(format!(
            "sheet {num_fibers}x{nodes_per_fiber} has {sheet_nodes} nodes, limit {MAX_SHEET_NODES}"
        )));
    }
    let width = d.f64()?;
    let height = d.f64()?;
    let center = [d.f64()?, d.f64()?, d.f64()?];
    let k_bend = d.f64()?;
    let k_stretch = d.f64()?;
    let tether = match d.u64()? {
        0 => TetherConfig::None,
        1 => TetherConfig::CenterRegion {
            radius: d.f64()?,
            stiffness: d.f64()?,
        },
        2 => TetherConfig::LeadingEdge {
            stiffness: d.f64()?,
        },
        k => return Err(CheckpointError::Format(format!("unknown tether kind {k}"))),
    };
    let config = SimulationConfig {
        nx,
        ny,
        nz,
        tau,
        body_force,
        bc,
        delta,
        sheet: SheetConfig {
            num_fibers,
            nodes_per_fiber,
            width,
            height,
            center,
            k_bend,
            k_stretch,
            tether,
        },
        cube_k,
        // The kernel plan and watchdog cadence are runtime execution
        // choices, not physics: a resumed run uses whatever the caller
        // configures.
        plan: crate::config::KernelPlan::Split,
        watchdog: None,
    };
    config
        .validate()
        .map_err(|e| CheckpointError::Format(e.to_string()))?;

    let n = nx * ny * nz;
    let mut fluid = FluidGrid::new(lbm::grid::Dims::new(nx, ny, nz));
    fluid.f = d.f64s(n * lbm::Q)?;
    fluid.f_new = d.f64s(n * lbm::Q)?;
    fluid.rho = d.f64s(n)?;
    fluid.ux = d.f64s(n)?;
    fluid.uy = d.f64s(n)?;
    fluid.uz = d.f64s(n)?;
    fluid.ueqx = d.f64s(n)?;
    fluid.ueqy = d.f64s(n)?;
    fluid.ueqz = d.f64s(n)?;
    fluid.fx = d.f64s(n)?;
    fluid.fy = d.f64s(n)?;
    fluid.fz = d.f64s(n)?;

    let n_nodes = num_fibers * nodes_per_fiber;
    let ds_node = d.f64()?;
    let ds_fiber = d.f64()?;
    let sheet_k_bend = d.f64()?;
    let sheet_k_stretch = d.f64()?;
    let sheet = FiberSheet {
        num_fibers,
        nodes_per_fiber,
        ds_node,
        ds_fiber,
        k_bend: sheet_k_bend,
        k_stretch: sheet_k_stretch,
        pos: d.vec3s(n_nodes)?,
        bending: d.vec3s(n_nodes)?,
        stretching: d.vec3s(n_nodes)?,
        elastic: d.vec3s(n_nodes)?,
    };

    let n_tethers = d.u64()? as usize;
    if n_tethers > n_nodes {
        return Err(CheckpointError::Format(format!(
            "{n_tethers} tethers for {n_nodes} nodes"
        )));
    }
    let mut tethers = Vec::with_capacity(n_tethers);
    for _ in 0..n_tethers {
        let node = d.u64()? as usize;
        if node >= n_nodes {
            return Err(CheckpointError::Format(format!(
                "tether node {node} out of range"
            )));
        }
        let anchor = [d.f64()?, d.f64()?, d.f64()?];
        let stiffness = d.f64()?;
        tethers.push(Tether {
            node,
            anchor,
            stiffness,
        });
    }

    let step = d.u64()?;
    if d.u64()? != 0xC0DA_F00D_u64 {
        return Err(CheckpointError::Format(
            "trailing guard mismatch (truncated?)".into(),
        ));
    }

    Ok(SimState {
        config,
        fluid,
        sheet,
        tethers: TetherSet { tethers },
        step,
    })
}

/// Saves a checkpoint file.
pub fn save(state: &SimState, path: &Path) -> io::Result<()> {
    write_checkpoint(state, std::fs::File::create(path)?)
}

/// Loads a checkpoint file.
pub fn load(path: &Path) -> Result<SimState, CheckpointError> {
    read_checkpoint(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialSolver;
    use crate::verify::compare_states;

    fn evolved_state() -> SimState {
        let mut cfg = SimulationConfig::quick_test();
        cfg.sheet.tether = TetherConfig::CenterRegion {
            radius: 2.0,
            stiffness: 0.1,
        };
        let mut s = SequentialSolver::new(cfg);
        s.run(7);
        s.state
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let state = evolved_state();
        let mut buf = Vec::new();
        write_checkpoint(&state, &mut buf).unwrap();
        let loaded = read_checkpoint(&buf[..]).unwrap();
        assert_eq!(loaded.step, state.step);
        assert_eq!(loaded.fluid.f, state.fluid.f);
        assert_eq!(loaded.fluid.ueqy, state.fluid.ueqy);
        assert_eq!(loaded.sheet.pos, state.sheet.pos);
        assert_eq!(loaded.tethers.tethers.len(), state.tethers.tethers.len());
        assert_eq!(compare_states(&state, &loaded).worst(), 0.0);
    }

    #[test]
    fn resumed_run_matches_uninterrupted_run() {
        let cfg = SimulationConfig::quick_test();
        let mut full = SequentialSolver::new(cfg);
        full.run(12);

        let mut first = SequentialSolver::new(cfg);
        first.run(6);
        let mut buf = Vec::new();
        write_checkpoint(&first.state, &mut buf).unwrap();
        let mut resumed = SequentialSolver::from_state(read_checkpoint(&buf[..]).unwrap());
        resumed.run(6);

        assert_eq!(resumed.state.step, full.state.step);
        assert_eq!(
            resumed.state.fluid.f, full.state.fluid.f,
            "resume must be bit-exact"
        );
        assert_eq!(resumed.state.sheet.pos, full.state.sheet.pos);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_checkpoint(&evolved_state(), &mut buf).unwrap();
        buf[0] ^= 0xFF;
        match read_checkpoint(&buf[..]) {
            Err(CheckpointError::Format(m)) => assert!(m.contains("magic")),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_rejected() {
        let mut buf = Vec::new();
        write_checkpoint(&evolved_state(), &mut buf).unwrap();
        buf.truncate(buf.len() - 9);
        assert!(read_checkpoint(&buf[..]).is_err());
    }

    #[test]
    fn corrupted_length_rejected() {
        let state = evolved_state();
        let mut buf = Vec::new();
        write_checkpoint(&state, &mut buf).unwrap();
        // The first array length sits right after the config block; flip a
        // byte deep in the file instead and require *some* failure, then
        // specifically corrupt the trailing guard.
        let guard_pos = buf.len() - 8;
        buf[guard_pos] ^= 0x01;
        match read_checkpoint(&buf[..]) {
            Err(CheckpointError::Format(m)) => assert!(m.contains("guard")),
            other => panic!("expected guard failure, got {other:?}"),
        }
    }

    /// Little-endian u64 patch helper for header-corruption tests.
    fn patch_u64(buf: &mut [u8], offset: usize, value: u64) {
        buf[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
    }

    fn read_u64(buf: &[u8], offset: usize) -> u64 {
        u64::from_le_bytes(buf[offset..offset + 8].try_into().unwrap())
    }

    // Header layout for quick_test: magic(8) version(8) nx@16 ny@24 nz@32
    // tau(8) body_force(24) bc.x periodic(8) bc.y walls(56) bc.z walls(56)
    // delta(8) cube_k(8) num_fibers@208.
    const NX_OFF: usize = 16;
    const NY_OFF: usize = 24;
    const NZ_OFF: usize = 32;
    const NUM_FIBERS_OFF: usize = 208;

    #[test]
    fn absurd_grid_extent_rejected_before_allocating() {
        let mut buf = Vec::new();
        write_checkpoint(&evolved_state(), &mut buf).unwrap();
        assert_eq!(read_u64(&buf, NX_OFF), 24, "nx offset drifted");
        // Pre-fix this drove `nx * ny * nz` (overflow) straight into
        // `FluidGrid::new`; now it must fail fast on the header bound.
        patch_u64(&mut buf, NX_OFF, u64::MAX);
        match read_checkpoint(&buf[..]) {
            Err(CheckpointError::Format(m)) => assert!(m.contains("nx"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn grid_node_product_overflow_rejected() {
        let mut buf = Vec::new();
        write_checkpoint(&evolved_state(), &mut buf).unwrap();
        // Each extent passes the per-axis bound; the product must not.
        patch_u64(&mut buf, NX_OFF, 1 << 16);
        patch_u64(&mut buf, NY_OFF, 1 << 16);
        patch_u64(&mut buf, NZ_OFF, 1 << 16);
        match read_checkpoint(&buf[..]) {
            Err(CheckpointError::Format(m)) => assert!(m.contains("nodes"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn zero_extent_rejected() {
        let mut buf = Vec::new();
        write_checkpoint(&evolved_state(), &mut buf).unwrap();
        patch_u64(&mut buf, NZ_OFF, 0);
        match read_checkpoint(&buf[..]) {
            Err(CheckpointError::Format(m)) => assert!(m.contains("nz"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn absurd_fiber_count_rejected_before_allocating() {
        let mut buf = Vec::new();
        write_checkpoint(&evolved_state(), &mut buf).unwrap();
        assert_eq!(
            read_u64(&buf, NUM_FIBERS_OFF),
            8,
            "num_fibers offset drifted"
        );
        patch_u64(&mut buf, NUM_FIBERS_OFF, u64::MAX);
        match read_checkpoint(&buf[..]) {
            Err(CheckpointError::Format(m)) => assert!(m.contains("num_fibers"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_tether_node_rejected() {
        let state = evolved_state();
        assert!(
            !state.tethers.tethers.is_empty(),
            "test state must carry tethers"
        );
        let mut buf = Vec::new();
        write_checkpoint(&state, &mut buf).unwrap();
        // Trailing layout: ... last tether (node@-56, anchor, stiffness),
        // step(8), guard(8).
        let node_off = buf.len() - 16 - 40;
        let old = read_u64(&buf, node_off);
        assert!(old < 64, "tether node offset drifted (read {old})");
        patch_u64(&mut buf, node_off, 1 << 40);
        match read_checkpoint(&buf[..]) {
            Err(CheckpointError::Format(m)) => assert!(m.contains("tether node"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn file_save_load() {
        let state = evolved_state();
        let path = std::env::temp_dir().join("lbmib_checkpoint_test.ckpt");
        save(&state, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.fluid.f, state.fluid.f);
        std::fs::remove_file(&path).ok();
    }
}
