//! Checkpoint / restart: save a full [`SimState`] to disk and resume it
//! bit-exactly. Long FSI runs (the paper's inputs run for hours) need
//! this in practice.
//!
//! The format is a versioned little-endian binary layout written by this
//! module (no external serialization crate): magic, version, config,
//! fluid arrays, structure arrays, step counter, a trailing length
//! guard, and a CRC-32 over everything before it. Loading validates
//! magic, version, sizes and the checksum and fails loudly on corruption
//! or truncation.
//!
//! # Crash consistency
//!
//! [`save`] never leaves a torn file at the final path: the checkpoint is
//! written to a temporary sibling, fsynced, and atomically renamed into
//! place. An existing checkpoint is first rotated to `<path>.prev`, and
//! [`resume`] falls back to that previous snapshot when the primary file
//! is corrupt or missing (e.g. the process was killed between the two
//! renames).

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use ib::delta::DeltaKind;
use ib::sheet::FiberSheet;
use ib::tether::{Tether, TetherSet};
use lbm::boundary::{AxisBoundary, BoundaryConfig};
use lbm::grid::FluidGrid;

use crate::config::{SheetConfig, SimulationConfig, TetherConfig};
use crate::state::SimState;

const MAGIC: &[u8; 8] = b"LBMIB\0\0\x01";
const VERSION: u64 = 2;

/// Sanity bounds on header dimensions, checked **before** any allocation
/// sized from them. A corrupt or hostile header used to drive
/// `FluidGrid::new(nx * ny * nz)` directly: `u64::MAX` extents overflowed
/// the product (a panic in debug builds, an absurd allocation in release).
const MAX_EXTENT: u64 = 1 << 16;
const MAX_GRID_NODES: u64 = 1 << 31;
const MAX_FIBER_COUNT: u64 = 1 << 20;
const MAX_NODES_PER_FIBER: u64 = 1 << 20;
const MAX_SHEET_NODES: u64 = 1 << 26;

/// Rejects zero or out-of-bounds header dimensions with a format error.
fn bounded(v: u64, max: u64, what: &str) -> Result<usize, CheckpointError> {
    if v == 0 || v > max {
        return Err(CheckpointError::Format(format!(
            "{what} = {v} outside sane range 1..={max}"
        )));
    }
    Ok(v as usize)
}

/// Errors from loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    Io(io::Error),
    /// Not a checkpoint file, or a different format version.
    Format(String),
    /// The payload decoded but its CRC-32 does not match: silent on-disk
    /// corruption (bit rot, torn write that still parses).
    Crc {
        expected: u32,
        found: u32,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(m) => write!(f, "invalid checkpoint: {m}"),
            CheckpointError::Crc { expected, found } => write!(
                f,
                "checkpoint CRC mismatch: payload hashes to {expected:#010x}, trailer says {found:#010x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, table-driven, no external crates).
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = CRC_TABLE[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

/// Writer that folds every byte it forwards into a running CRC-32.
struct CrcWriter<W: Write> {
    inner: W,
    state: u32,
}

impl<W: Write> CrcWriter<W> {
    fn new(inner: W) -> Self {
        Self {
            inner,
            state: 0xFFFF_FFFF,
        }
    }
    fn digest(&self) -> u32 {
        !self.state
    }
    /// Direct access to the underlying writer, bypassing the CRC (used to
    /// append the CRC trailer itself).
    fn raw(&mut self) -> &mut W {
        &mut self.inner
    }
}

impl<W: Write> Write for CrcWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.state = crc32_update(self.state, &buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Reader that folds every byte it yields into a running CRC-32.
struct CrcReader<R: Read> {
    inner: R,
    state: u32,
}

impl<R: Read> CrcReader<R> {
    fn new(inner: R) -> Self {
        Self {
            inner,
            state: 0xFFFF_FFFF,
        }
    }
    fn digest(&self) -> u32 {
        !self.state
    }
    /// Direct access to the underlying reader, bypassing the CRC (used to
    /// read the CRC trailer itself).
    fn raw(&mut self) -> &mut R {
        &mut self.inner
    }
}

impl<R: Read> Read for CrcReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.state = crc32_update(self.state, &buf[..n]);
        Ok(n)
    }
}

struct Enc<W: Write>(W);

impl<W: Write> Enc<W> {
    fn u64(&mut self, v: u64) -> io::Result<()> {
        self.0.write_all(&v.to_le_bytes())
    }
    fn f64(&mut self, v: f64) -> io::Result<()> {
        self.0.write_all(&v.to_le_bytes())
    }
    fn f64s(&mut self, v: &[f64]) -> io::Result<()> {
        self.u64(v.len() as u64)?;
        let mut buf = Vec::with_capacity(8192);
        for chunk in v.chunks(1024) {
            buf.clear();
            for x in chunk {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            self.0.write_all(&buf)?;
        }
        Ok(())
    }
    fn vec3s(&mut self, v: &[[f64; 3]]) -> io::Result<()> {
        self.u64(v.len() as u64)?;
        for p in v {
            for c in p {
                self.f64(*c)?;
            }
        }
        Ok(())
    }
    fn axis(&mut self, a: AxisBoundary) -> io::Result<()> {
        match a {
            AxisBoundary::Periodic => self.u64(0),
            AxisBoundary::Walls { lo, hi } => {
                self.u64(1)?;
                for c in lo.iter().chain(hi.iter()) {
                    self.f64(*c)?;
                }
                Ok(())
            }
        }
    }
}

struct Dec<R: Read>(R);

impl<R: Read> Dec<R> {
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let mut b = [0u8; 8];
        self.0.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        let mut b = [0u8; 8];
        self.0.read_exact(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }
    fn f64s(&mut self, expect: usize) -> Result<Vec<f64>, CheckpointError> {
        let n = self.u64()? as usize;
        if n != expect {
            return Err(CheckpointError::Format(format!(
                "array length {n}, expected {expect}"
            )));
        }
        let mut out = vec![0.0; n];
        let mut buf = vec![0u8; 8 * 1024.min(n.max(1))];
        let mut i = 0;
        while i < n {
            let take = (n - i).min(1024);
            let bytes = &mut buf[..take * 8];
            self.0.read_exact(bytes)?;
            for (j, chunk) in bytes.chunks_exact(8).enumerate() {
                out[i + j] = f64::from_le_bytes(chunk.try_into().unwrap());
            }
            i += take;
        }
        Ok(out)
    }
    fn vec3s(&mut self, expect: usize) -> Result<Vec<[f64; 3]>, CheckpointError> {
        let n = self.u64()? as usize;
        if n != expect {
            return Err(CheckpointError::Format(format!(
                "node count {n}, expected {expect}"
            )));
        }
        let mut out = vec![[0.0; 3]; n];
        for p in out.iter_mut() {
            for c in p.iter_mut() {
                *c = self.f64()?;
            }
        }
        Ok(out)
    }
    fn axis(&mut self) -> Result<AxisBoundary, CheckpointError> {
        match self.u64()? {
            0 => Ok(AxisBoundary::Periodic),
            1 => {
                let mut v = [0.0; 6];
                for c in v.iter_mut() {
                    *c = self.f64()?;
                }
                Ok(AxisBoundary::Walls {
                    lo: [v[0], v[1], v[2]],
                    hi: [v[3], v[4], v[5]],
                })
            }
            k => Err(CheckpointError::Format(format!("unknown axis kind {k}"))),
        }
    }
}

fn delta_code(d: DeltaKind) -> u64 {
    match d {
        DeltaKind::Peskin4 => 0,
        DeltaKind::Peskin4Poly => 1,
        DeltaKind::Hat2 => 2,
        DeltaKind::Roma3 => 3,
    }
}

fn delta_from(code: u64) -> Result<DeltaKind, CheckpointError> {
    Ok(match code {
        0 => DeltaKind::Peskin4,
        1 => DeltaKind::Peskin4Poly,
        2 => DeltaKind::Hat2,
        3 => DeltaKind::Roma3,
        k => return Err(CheckpointError::Format(format!("unknown delta kind {k}"))),
    })
}

/// Writes a checkpoint of `state` to `w`.
pub fn write_checkpoint<W: Write>(state: &SimState, w: W) -> io::Result<()> {
    let mut e = Enc(CrcWriter::new(io::BufWriter::new(w)));
    e.0.write_all(MAGIC)?;
    e.u64(VERSION)?;

    // Config.
    let c = &state.config;
    e.u64(c.nx as u64)?;
    e.u64(c.ny as u64)?;
    e.u64(c.nz as u64)?;
    e.f64(c.tau)?;
    for g in c.body_force {
        e.f64(g)?;
    }
    e.axis(c.bc.x)?;
    e.axis(c.bc.y)?;
    e.axis(c.bc.z)?;
    e.u64(delta_code(c.delta))?;
    e.u64(c.cube_k as u64)?;
    // Sheet config.
    let s = &c.sheet;
    e.u64(s.num_fibers as u64)?;
    e.u64(s.nodes_per_fiber as u64)?;
    e.f64(s.width)?;
    e.f64(s.height)?;
    for v in s.center {
        e.f64(v)?;
    }
    e.f64(s.k_bend)?;
    e.f64(s.k_stretch)?;
    match s.tether {
        TetherConfig::None => e.u64(0)?,
        TetherConfig::CenterRegion { radius, stiffness } => {
            e.u64(1)?;
            e.f64(radius)?;
            e.f64(stiffness)?;
        }
        TetherConfig::LeadingEdge { stiffness } => {
            e.u64(2)?;
            e.f64(stiffness)?;
        }
    }

    // Fluid arrays.
    let g = &state.fluid;
    e.f64s(&g.f)?;
    e.f64s(&g.f_new)?;
    e.f64s(&g.rho)?;
    e.f64s(&g.ux)?;
    e.f64s(&g.uy)?;
    e.f64s(&g.uz)?;
    e.f64s(&g.ueqx)?;
    e.f64s(&g.ueqy)?;
    e.f64s(&g.ueqz)?;
    e.f64s(&g.fx)?;
    e.f64s(&g.fy)?;
    e.f64s(&g.fz)?;

    // Structure.
    let sh = &state.sheet;
    e.f64(sh.ds_node)?;
    e.f64(sh.ds_fiber)?;
    e.f64(sh.k_bend)?;
    e.f64(sh.k_stretch)?;
    e.vec3s(&sh.pos)?;
    e.vec3s(&sh.bending)?;
    e.vec3s(&sh.stretching)?;
    e.vec3s(&sh.elastic)?;

    // Tethers (runtime set, not just config, so anchors are preserved).
    e.u64(state.tethers.tethers.len() as u64)?;
    for t in &state.tethers.tethers {
        e.u64(t.node as u64)?;
        for v in t.anchor {
            e.f64(v)?;
        }
        e.f64(t.stiffness)?;
    }

    e.u64(state.step)?;
    e.u64(0xC0DA_F00D_u64)?; // trailing guard

    // CRC-32 over everything above, appended outside the digest.
    let crc = e.0.digest();
    e.0.raw().write_all(&(crc as u64).to_le_bytes())?;
    e.0.flush()
}

/// Reads a checkpoint from `r`.
pub fn read_checkpoint<R: Read>(r: R) -> Result<SimState, CheckpointError> {
    let mut d = Dec(CrcReader::new(io::BufReader::new(r)));
    let mut magic = [0u8; 8];
    d.0.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let version = d.u64()?;
    if version != VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported version {version} (expected {VERSION})"
        )));
    }

    let nx = bounded(d.u64()?, MAX_EXTENT, "nx")?;
    let ny = bounded(d.u64()?, MAX_EXTENT, "ny")?;
    let nz = bounded(d.u64()?, MAX_EXTENT, "nz")?;
    let grid_nodes = (nx as u64) * (ny as u64) * (nz as u64);
    if grid_nodes > MAX_GRID_NODES {
        return Err(CheckpointError::Format(format!(
            "grid {nx}x{ny}x{nz} has {grid_nodes} nodes, limit {MAX_GRID_NODES}"
        )));
    }
    let tau = d.f64()?;
    let body_force = [d.f64()?, d.f64()?, d.f64()?];
    let bc = BoundaryConfig {
        x: d.axis()?,
        y: d.axis()?,
        z: d.axis()?,
    };
    let delta = delta_from(d.u64()?)?;
    let cube_k = d.u64()? as usize;
    let num_fibers = bounded(d.u64()?, MAX_FIBER_COUNT, "num_fibers")?;
    let nodes_per_fiber = bounded(d.u64()?, MAX_NODES_PER_FIBER, "nodes_per_fiber")?;
    let sheet_nodes = (num_fibers as u64) * (nodes_per_fiber as u64);
    if sheet_nodes > MAX_SHEET_NODES {
        return Err(CheckpointError::Format(format!(
            "sheet {num_fibers}x{nodes_per_fiber} has {sheet_nodes} nodes, limit {MAX_SHEET_NODES}"
        )));
    }
    let width = d.f64()?;
    let height = d.f64()?;
    let center = [d.f64()?, d.f64()?, d.f64()?];
    let k_bend = d.f64()?;
    let k_stretch = d.f64()?;
    let tether = match d.u64()? {
        0 => TetherConfig::None,
        1 => TetherConfig::CenterRegion {
            radius: d.f64()?,
            stiffness: d.f64()?,
        },
        2 => TetherConfig::LeadingEdge {
            stiffness: d.f64()?,
        },
        k => return Err(CheckpointError::Format(format!("unknown tether kind {k}"))),
    };
    let config = SimulationConfig {
        nx,
        ny,
        nz,
        tau,
        body_force,
        bc,
        delta,
        sheet: SheetConfig {
            num_fibers,
            nodes_per_fiber,
            width,
            height,
            center,
            k_bend,
            k_stretch,
            tether,
        },
        cube_k,
        // The kernel plan, watchdog cadence and halo timeout are runtime
        // execution choices, not physics: a resumed run uses whatever the
        // caller configures.
        plan: crate::config::KernelPlan::Split,
        watchdog: None,
        halo_timeout: None,
    };
    config
        .validate()
        .map_err(|e| CheckpointError::Format(e.to_string()))?;

    let n = nx * ny * nz;
    let mut fluid = FluidGrid::new(lbm::grid::Dims::new(nx, ny, nz));
    fluid.f = d.f64s(n * lbm::Q)?;
    fluid.f_new = d.f64s(n * lbm::Q)?;
    fluid.rho = d.f64s(n)?;
    fluid.ux = d.f64s(n)?;
    fluid.uy = d.f64s(n)?;
    fluid.uz = d.f64s(n)?;
    fluid.ueqx = d.f64s(n)?;
    fluid.ueqy = d.f64s(n)?;
    fluid.ueqz = d.f64s(n)?;
    fluid.fx = d.f64s(n)?;
    fluid.fy = d.f64s(n)?;
    fluid.fz = d.f64s(n)?;

    let n_nodes = num_fibers * nodes_per_fiber;
    let ds_node = d.f64()?;
    let ds_fiber = d.f64()?;
    let sheet_k_bend = d.f64()?;
    let sheet_k_stretch = d.f64()?;
    let sheet = FiberSheet {
        num_fibers,
        nodes_per_fiber,
        ds_node,
        ds_fiber,
        k_bend: sheet_k_bend,
        k_stretch: sheet_k_stretch,
        pos: d.vec3s(n_nodes)?,
        bending: d.vec3s(n_nodes)?,
        stretching: d.vec3s(n_nodes)?,
        elastic: d.vec3s(n_nodes)?,
    };

    let n_tethers = d.u64()? as usize;
    if n_tethers > n_nodes {
        return Err(CheckpointError::Format(format!(
            "{n_tethers} tethers for {n_nodes} nodes"
        )));
    }
    let mut tethers = Vec::with_capacity(n_tethers);
    for _ in 0..n_tethers {
        let node = d.u64()? as usize;
        if node >= n_nodes {
            return Err(CheckpointError::Format(format!(
                "tether node {node} out of range"
            )));
        }
        let anchor = [d.f64()?, d.f64()?, d.f64()?];
        let stiffness = d.f64()?;
        tethers.push(Tether {
            node,
            anchor,
            stiffness,
        });
    }

    let step = d.u64()?;
    if d.u64()? != 0xC0DA_F00D_u64 {
        return Err(CheckpointError::Format(
            "trailing guard mismatch (truncated?)".into(),
        ));
    }

    // CRC trailer: everything up to here contributed to the digest; the
    // trailer itself is read around the hasher.
    let expected = d.0.digest();
    let mut trailer = [0u8; 8];
    d.0.raw().read_exact(&mut trailer)?;
    let found = u64::from_le_bytes(trailer) as u32;
    if found != expected {
        return Err(CheckpointError::Crc { expected, found });
    }

    Ok(SimState {
        config,
        fluid,
        sheet,
        tethers: TetherSet { tethers },
        step,
    })
}

/// The sibling path an existing checkpoint is rotated to before the new
/// one is renamed into place. [`resume`] falls back to it.
pub fn prev_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".prev");
    path.with_file_name(name)
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Fsyncs the directory containing `path` so the renames themselves are
/// durable. Best-effort: not every platform lets you open a directory.
fn sync_parent_dir(path: &Path) {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Saves a checkpoint file crash-consistently.
///
/// Protocol: write `<path>.tmp`, flush + fsync it, rotate any existing
/// checkpoint to `<path>.prev`, then atomically rename the temp file into
/// place and fsync the directory. A crash at any point leaves either the
/// old checkpoint at `path`, or the new one at `path` (possibly with the
/// old one at `.prev`) — never a torn file at the final path.
pub fn save(state: &SimState, path: &Path) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let file = std::fs::File::create(&tmp)?;
        write_checkpoint(state, &file)?;
        file.sync_all()?;
    }
    // Deterministic corruption point for the chaos tests: damage the temp
    // file *after* the fsync, as a torn physical write would.
    crate::faultinject::corrupt_checkpoint_file(&tmp)?;
    if path.exists() {
        std::fs::rename(path, prev_path(path))?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// Loads a checkpoint file (the exact file named — no fallback).
pub fn load(path: &Path) -> Result<SimState, CheckpointError> {
    read_checkpoint(std::fs::File::open(path)?)
}

/// Which snapshot [`resume`] actually loaded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResumeSource {
    /// The checkpoint at the requested path.
    Primary,
    /// The rotated `<path>.prev` snapshot — the primary was corrupt,
    /// truncated, or missing.
    Fallback,
}

/// Loads `path`, falling back to the rotated `<path>.prev` snapshot when
/// the primary is unreadable (torn, bit-flipped, or missing after a crash
/// between the two renames of [`save`]). Returns the primary's error when
/// both fail.
pub fn resume(path: &Path) -> Result<(SimState, ResumeSource), CheckpointError> {
    let primary_err = match load(path) {
        Ok(state) => return Ok((state, ResumeSource::Primary)),
        Err(e) => e,
    };
    match load(&prev_path(path)) {
        Ok(state) => Ok((state, ResumeSource::Fallback)),
        Err(_) => Err(primary_err),
    }
}

/// [`resume`], then re-apply the runtime-only choices a checkpoint does
/// not carry (kernel plan, watchdog cadence, halo timeout — see
/// [`read_checkpoint`]'s reset) from `runtime`. This is the rollback used
/// by the [`crate::supervisor::Supervisor`]: the restored state must
/// replay under the *same* runtime configuration as the failed attempt,
/// or the healed run would not be bit-identical to a fault-free one.
pub fn resume_with_runtime(
    path: &Path,
    runtime: &crate::config::SimulationConfig,
) -> Result<(SimState, ResumeSource), CheckpointError> {
    let (mut state, source) = resume(path)?;
    state.config.plan = runtime.plan;
    state.config.watchdog = runtime.watchdog;
    state.config.halo_timeout = runtime.halo_timeout;
    Ok((state, source))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialSolver;
    use crate::verify::compare_states;

    fn evolved_state() -> SimState {
        let mut cfg = SimulationConfig::quick_test();
        cfg.sheet.tether = TetherConfig::CenterRegion {
            radius: 2.0,
            stiffness: 0.1,
        };
        let mut s = SequentialSolver::new(cfg);
        s.run(7);
        s.state
    }

    /// Unique scratch directory per test so parallel tests don't collide.
    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lbmib_ckpt_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let state = evolved_state();
        let mut buf = Vec::new();
        write_checkpoint(&state, &mut buf).unwrap();
        let loaded = read_checkpoint(&buf[..]).unwrap();
        assert_eq!(loaded.step, state.step);
        assert_eq!(loaded.fluid.f, state.fluid.f);
        assert_eq!(loaded.fluid.ueqy, state.fluid.ueqy);
        assert_eq!(loaded.sheet.pos, state.sheet.pos);
        assert_eq!(loaded.tethers.tethers.len(), state.tethers.tethers.len());
        assert_eq!(compare_states(&state, &loaded).worst(), 0.0);
    }

    #[test]
    fn resumed_run_matches_uninterrupted_run() {
        let cfg = SimulationConfig::quick_test();
        let mut full = SequentialSolver::new(cfg);
        full.run(12);

        let mut first = SequentialSolver::new(cfg);
        first.run(6);
        let mut buf = Vec::new();
        write_checkpoint(&first.state, &mut buf).unwrap();
        let mut resumed = SequentialSolver::from_state(read_checkpoint(&buf[..]).unwrap());
        resumed.run(6);

        assert_eq!(resumed.state.step, full.state.step);
        assert_eq!(
            resumed.state.fluid.f, full.state.fluid.f,
            "resume must be bit-exact"
        );
        assert_eq!(resumed.state.sheet.pos, full.state.sheet.pos);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_checkpoint(&evolved_state(), &mut buf).unwrap();
        buf[0] ^= 0xFF;
        match read_checkpoint(&buf[..]) {
            Err(CheckpointError::Format(m)) => assert!(m.contains("magic")),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn old_version_rejected() {
        let mut buf = Vec::new();
        write_checkpoint(&evolved_state(), &mut buf).unwrap();
        patch_u64(&mut buf, 8, 1);
        match read_checkpoint(&buf[..]) {
            Err(CheckpointError::Format(m)) => assert!(m.contains("version"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_rejected() {
        let mut buf = Vec::new();
        write_checkpoint(&evolved_state(), &mut buf).unwrap();
        buf.truncate(buf.len() - 9);
        assert!(read_checkpoint(&buf[..]).is_err());
    }

    #[test]
    fn corrupted_length_rejected() {
        let state = evolved_state();
        let mut buf = Vec::new();
        write_checkpoint(&state, &mut buf).unwrap();
        // The first array length sits right after the config block; flip a
        // byte deep in the file instead and require *some* failure, then
        // specifically corrupt the trailing guard (now followed by the
        // 8-byte CRC trailer).
        let guard_pos = buf.len() - 16;
        buf[guard_pos] ^= 0x01;
        match read_checkpoint(&buf[..]) {
            Err(CheckpointError::Format(m)) => assert!(m.contains("guard")),
            other => panic!("expected guard failure, got {other:?}"),
        }
    }

    #[test]
    fn payload_bit_flip_caught_by_crc() {
        let mut buf = Vec::new();
        write_checkpoint(&evolved_state(), &mut buf).unwrap();
        // Deep inside the `f` distribution array: the flipped f64 still
        // decodes, every length check passes, the guard matches — only the
        // checksum can catch it.
        let pos = buf.len() / 2;
        buf[pos] ^= 0x10;
        match read_checkpoint(&buf[..]) {
            Err(CheckpointError::Crc { expected, found }) => assert_ne!(expected, found),
            other => panic!("expected CRC failure, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_crc_trailer_rejected() {
        let mut buf = Vec::new();
        write_checkpoint(&evolved_state(), &mut buf).unwrap();
        let last = buf.len() - 8;
        buf[last] ^= 0x01;
        match read_checkpoint(&buf[..]) {
            Err(CheckpointError::Crc { .. }) => {}
            other => panic!("expected CRC failure, got {other:?}"),
        }
    }

    /// Little-endian u64 patch helper for header-corruption tests.
    fn patch_u64(buf: &mut [u8], offset: usize, value: u64) {
        buf[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
    }

    fn read_u64(buf: &[u8], offset: usize) -> u64 {
        u64::from_le_bytes(buf[offset..offset + 8].try_into().unwrap())
    }

    // Header layout for quick_test: magic(8) version(8) nx@16 ny@24 nz@32
    // tau(8) body_force(24) bc.x periodic(8) bc.y walls(56) bc.z walls(56)
    // delta(8) cube_k(8) num_fibers@208.
    const NX_OFF: usize = 16;
    const NY_OFF: usize = 24;
    const NZ_OFF: usize = 32;
    const NUM_FIBERS_OFF: usize = 208;

    #[test]
    fn absurd_grid_extent_rejected_before_allocating() {
        let mut buf = Vec::new();
        write_checkpoint(&evolved_state(), &mut buf).unwrap();
        assert_eq!(read_u64(&buf, NX_OFF), 24, "nx offset drifted");
        // Pre-fix this drove `nx * ny * nz` (overflow) straight into
        // `FluidGrid::new`; now it must fail fast on the header bound.
        patch_u64(&mut buf, NX_OFF, u64::MAX);
        match read_checkpoint(&buf[..]) {
            Err(CheckpointError::Format(m)) => assert!(m.contains("nx"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn grid_node_product_overflow_rejected() {
        let mut buf = Vec::new();
        write_checkpoint(&evolved_state(), &mut buf).unwrap();
        // Each extent passes the per-axis bound; the product must not.
        patch_u64(&mut buf, NX_OFF, 1 << 16);
        patch_u64(&mut buf, NY_OFF, 1 << 16);
        patch_u64(&mut buf, NZ_OFF, 1 << 16);
        match read_checkpoint(&buf[..]) {
            Err(CheckpointError::Format(m)) => assert!(m.contains("nodes"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn zero_extent_rejected() {
        let mut buf = Vec::new();
        write_checkpoint(&evolved_state(), &mut buf).unwrap();
        patch_u64(&mut buf, NZ_OFF, 0);
        match read_checkpoint(&buf[..]) {
            Err(CheckpointError::Format(m)) => assert!(m.contains("nz"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn absurd_fiber_count_rejected_before_allocating() {
        let mut buf = Vec::new();
        write_checkpoint(&evolved_state(), &mut buf).unwrap();
        assert_eq!(
            read_u64(&buf, NUM_FIBERS_OFF),
            8,
            "num_fibers offset drifted"
        );
        patch_u64(&mut buf, NUM_FIBERS_OFF, u64::MAX);
        match read_checkpoint(&buf[..]) {
            Err(CheckpointError::Format(m)) => assert!(m.contains("num_fibers"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_tether_node_rejected() {
        let state = evolved_state();
        assert!(
            !state.tethers.tethers.is_empty(),
            "test state must carry tethers"
        );
        let mut buf = Vec::new();
        write_checkpoint(&state, &mut buf).unwrap();
        // Trailing layout: ... last tether (node@-64, anchor, stiffness),
        // step(8), guard(8), crc(8).
        let node_off = buf.len() - 24 - 40;
        let old = read_u64(&buf, node_off);
        assert!(old < 64, "tether node offset drifted (read {old})");
        patch_u64(&mut buf, node_off, 1 << 40);
        match read_checkpoint(&buf[..]) {
            Err(CheckpointError::Format(m)) => assert!(m.contains("tether node"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn file_save_load() {
        let state = evolved_state();
        let dir = scratch_dir("save_load");
        let path = dir.join("test.ckpt");
        save(&state, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.fluid.f, state.fluid.f);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_rotates_previous_checkpoint() {
        let dir = scratch_dir("rotate");
        let path = dir.join("run.ckpt");

        let cfg = SimulationConfig::quick_test();
        let mut s = SequentialSolver::new(cfg);
        s.run(3);
        save(&s.state, &path).unwrap();
        s.run(3);
        save(&s.state, &path).unwrap();

        let primary = load(&path).unwrap();
        let previous = load(&prev_path(&path)).unwrap();
        assert_eq!(primary.step, 6);
        assert_eq!(previous.step, 3);
        assert!(!tmp_path(&path).exists(), "temp file must not linger");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_falls_back_to_previous_good_checkpoint() {
        let dir = scratch_dir("fallback");
        let path = dir.join("run.ckpt");

        let cfg = SimulationConfig::quick_test();
        let mut s = SequentialSolver::new(cfg);
        s.run(3);
        save(&s.state, &path).unwrap();
        s.run(3);
        save(&s.state, &path).unwrap();

        // Tear the primary: truncate it mid-payload.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len / 2).unwrap();
        drop(f);

        assert!(load(&path).is_err(), "torn primary must not load");
        let (state, source) = resume(&path).unwrap();
        assert_eq!(source, ResumeSource::Fallback);
        assert_eq!(state.step, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_prefers_primary_and_reports_both_failures() {
        let dir = scratch_dir("both_bad");
        let path = dir.join("run.ckpt");

        let cfg = SimulationConfig::quick_test();
        let mut s = SequentialSolver::new(cfg);
        s.run(2);
        save(&s.state, &path).unwrap();
        let (state, source) = resume(&path).unwrap();
        assert_eq!(source, ResumeSource::Primary);
        assert_eq!(state.step, 2);

        // With the primary gone and no .prev, resume surfaces the
        // primary's error (NotFound) rather than panicking.
        std::fs::remove_file(&path).unwrap();
        match resume(&path) {
            Err(CheckpointError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::NotFound),
            other => panic!("expected io error, got {:?}", other.map(|(_, s)| s)),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
