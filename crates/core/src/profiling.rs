//! Built-in kernel profiling: the library's replacement for the paper's
//! gprof (Table I: per-kernel share of run time) and OmpP (Table II: load
//! imbalance relative to the whole program).

use std::time::{Duration, Instant};

/// The nine computational kernels of Section III-B in Algorithm 1 order,
/// plus the fused collide–stream sweep that replaces kernels 5+6 under
/// [`crate::config::KernelPlan::Fused`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelId {
    BendingForce,
    StretchingForce,
    ElasticForce,
    SpreadForce,
    Collision,
    Stream,
    UpdateVelocity,
    MoveFibers,
    CopyDistributions,
    FusedCollideStream,
}

impl KernelId {
    /// Number of kernel slots (profiling array size).
    pub const COUNT: usize = 10;

    /// All kernels, the Algorithm 1 nine first, then the fused sweep.
    pub const ALL: [KernelId; KernelId::COUNT] = [
        KernelId::BendingForce,
        KernelId::StretchingForce,
        KernelId::ElasticForce,
        KernelId::SpreadForce,
        KernelId::Collision,
        KernelId::Stream,
        KernelId::UpdateVelocity,
        KernelId::MoveFibers,
        KernelId::CopyDistributions,
        KernelId::FusedCollideStream,
    ];

    /// Index 0..[`KernelId::COUNT`] (position in [`KernelId::ALL`]).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            KernelId::BendingForce => 0,
            KernelId::StretchingForce => 1,
            KernelId::ElasticForce => 2,
            KernelId::SpreadForce => 3,
            KernelId::Collision => 4,
            KernelId::Stream => 5,
            KernelId::UpdateVelocity => 6,
            KernelId::MoveFibers => 7,
            KernelId::CopyDistributions => 8,
            KernelId::FusedCollideStream => 9,
        }
    }

    /// The paper's kernel number (1-based, Algorithm 1); the fused sweep
    /// reports as 10 (it stands in for kernels 5 and 6).
    pub fn paper_number(self) -> usize {
        self.index() + 1
    }

    /// The function name used in the paper.
    pub fn paper_name(self) -> &'static str {
        match self {
            KernelId::BendingForce => "compute_bending_force_in_fibers",
            KernelId::StretchingForce => "compute_stretching_force_in_fibers",
            KernelId::ElasticForce => "compute_elastic_force_in_fibers",
            KernelId::SpreadForce => "spread_force_from_fibers_to_fluid",
            KernelId::Collision => "compute_fluid_collision",
            KernelId::Stream => "stream_fluid_velocity_distribution",
            KernelId::UpdateVelocity => "update_fluid_velocity",
            KernelId::MoveFibers => "move_fibers",
            KernelId::CopyDistributions => "copy_fluid_velocity_distribution",
            KernelId::FusedCollideStream => "fused_collide_stream (kernels 5+6)",
        }
    }
}

/// Accumulated per-kernel wall time — the gprof replacement.
#[derive(Clone, Debug, Default)]
pub struct KernelProfile {
    totals: [Duration; KernelId::COUNT],
    calls: [u64; KernelId::COUNT],
}

impl KernelProfile {
    /// Empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one execution of `kernel`.
    pub fn record(&mut self, kernel: KernelId, elapsed: Duration) {
        self.totals[kernel.index()] += elapsed;
        self.calls[kernel.index()] += 1;
    }

    /// Times `f` and charges it to `kernel`, returning its result.
    #[inline]
    pub fn time<T>(&mut self, kernel: KernelId, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.record(kernel, t0.elapsed());
        out
    }

    /// Total time of one kernel.
    pub fn total(&self, kernel: KernelId) -> Duration {
        self.totals[kernel.index()]
    }

    /// Call count of one kernel.
    pub fn calls(&self, kernel: KernelId) -> u64 {
        self.calls[kernel.index()]
    }

    /// Sum over all kernels.
    pub fn grand_total(&self) -> Duration {
        self.totals.iter().sum()
    }

    /// Per-kernel totals in seconds, [`KernelId::ALL`] order (telemetry
    /// export).
    pub fn totals_seconds(&self) -> [f64; KernelId::COUNT] {
        std::array::from_fn(|i| self.totals[i].as_secs_f64())
    }

    /// Kernels sorted by descending share of total time, with their
    /// percentage — the rows of Table I.
    pub fn ranked(&self) -> Vec<(KernelId, Duration, f64)> {
        let total = self.grand_total().as_secs_f64().max(1e-12);
        let mut rows: Vec<_> = KernelId::ALL
            .iter()
            .map(|&k| {
                (
                    k,
                    self.total(k),
                    100.0 * self.total(k).as_secs_f64() / total,
                )
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        rows
    }

    /// Renders the Table I layout.
    pub fn table(&self) -> String {
        let mut out = String::from("Kernel | Kernel Name                          | % of Total\n");
        out.push_str("-------+--------------------------------------+-----------\n");
        for (k, _, pct) in self.ranked() {
            out.push_str(&format!(
                "{:>5}) | {:<36} | {:>8.2}%\n",
                k.paper_number(),
                k.paper_name(),
                pct
            ));
        }
        out.push_str(&format!(
            "total execution time = {:.3} s\n",
            self.grand_total().as_secs_f64()
        ));
        out
    }

    /// Merges another profile into this one.
    pub fn merge(&mut self, other: &KernelProfile) {
        for i in 0..KernelId::COUNT {
            self.totals[i] += other.totals[i];
            self.calls[i] += other.calls[i];
        }
    }
}

/// Per-thread, per-parallel-region busy times — the OmpP replacement for
/// measuring load imbalance.
///
/// For each parallel region instance (one kernel invocation across all
/// threads), the imbalance time is `Σ_t (max_busy − busy_t) / n_threads`:
/// the average time a thread spends waiting at the region's closing
/// barrier. The Table II metric is that total relative to wall-clock time.
#[derive(Clone, Debug)]
pub struct ImbalanceTracker {
    n_threads: usize,
    /// Per-kernel accumulated busy time per thread.
    busy: Vec<[f64; KernelId::COUNT]>,
    /// Per-kernel accumulated imbalance (average wait) time.
    imbalance: [f64; KernelId::COUNT],
    /// Per-kernel accumulated max-thread (critical path) time.
    critical: [f64; KernelId::COUNT],
    /// Per-thread accumulated wait time `Σ (max_busy − busy_t)` over all
    /// recorded regions (each thread's time at closing barriers).
    wait_by_thread: Vec<f64>,
    /// Number of parallel-region instances recorded.
    regions: u64,
}

impl ImbalanceTracker {
    /// Tracker for `n_threads` threads.
    pub fn new(n_threads: usize) -> Self {
        assert!(n_threads > 0);
        Self {
            n_threads,
            busy: vec![[0.0; KernelId::COUNT]; n_threads],
            imbalance: [0.0; KernelId::COUNT],
            critical: [0.0; KernelId::COUNT],
            wait_by_thread: vec![0.0; n_threads],
            regions: 0,
        }
    }

    /// Number of threads being tracked.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Records one parallel region: `busy[t]` is the busy seconds of
    /// thread `t` in this instance of `kernel`.
    pub fn record_region(&mut self, kernel: KernelId, busy: &[f64]) {
        assert_eq!(busy.len(), self.n_threads);
        let max = busy.iter().copied().fold(0.0, f64::max);
        let wait: f64 = busy.iter().map(|b| max - b).sum::<f64>() / self.n_threads as f64;
        let k = kernel.index();
        self.imbalance[k] += wait;
        self.critical[k] += max;
        for (t, &b) in busy.iter().enumerate() {
            self.busy[t][k] += b;
            self.wait_by_thread[t] += max - b;
        }
        self.regions += 1;
    }

    /// Per-thread accumulated busy seconds per kernel (telemetry export).
    pub fn busy_by_thread(&self) -> &[[f64; KernelId::COUNT]] {
        &self.busy
    }

    /// Per-thread accumulated wait seconds at region-closing barriers.
    pub fn wait_by_thread(&self) -> &[f64] {
        &self.wait_by_thread
    }

    /// Number of parallel-region instances recorded so far.
    pub fn regions(&self) -> u64 {
        self.regions
    }

    /// Total imbalance (average wait) time across all kernels, seconds.
    pub fn total_imbalance(&self) -> f64 {
        self.imbalance.iter().sum()
    }

    /// Total critical-path time across all kernels, seconds.
    pub fn total_critical(&self) -> f64 {
        self.critical.iter().sum()
    }

    /// The Table II metric: imbalance as a percentage of the program's
    /// parallel-region time.
    pub fn imbalance_percent(&self) -> f64 {
        let c = self.total_critical();
        if c <= 0.0 {
            0.0
        } else {
            100.0 * self.total_imbalance() / c
        }
    }

    /// Per-kernel imbalance percentages (diagnostics beyond the paper).
    pub fn per_kernel_percent(&self) -> Vec<(KernelId, f64)> {
        KernelId::ALL
            .iter()
            .map(|&k| {
                let i = k.index();
                let pct = if self.critical[i] > 0.0 {
                    100.0 * self.imbalance[i] / self.critical[i]
                } else {
                    0.0
                };
                (k, pct)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_ids_cover_paper_numbers() {
        for (i, k) in KernelId::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(k.paper_number(), i + 1);
        }
        assert_eq!(KernelId::Collision.paper_number(), 5);
        assert_eq!(KernelId::CopyDistributions.paper_number(), 9);
        assert_eq!(KernelId::Collision.paper_name(), "compute_fluid_collision");
        assert_eq!(KernelId::COUNT, KernelId::ALL.len());
        assert_eq!(KernelId::FusedCollideStream.index(), 9);
    }

    #[test]
    fn profile_accumulates_and_ranks() {
        let mut p = KernelProfile::new();
        p.record(KernelId::Collision, Duration::from_millis(730));
        p.record(KernelId::UpdateVelocity, Duration::from_millis(126));
        p.record(KernelId::CopyDistributions, Duration::from_millis(59));
        p.record(KernelId::Stream, Duration::from_millis(54));
        let rows = p.ranked();
        assert_eq!(rows[0].0, KernelId::Collision);
        assert!(rows[0].2 > 70.0, "collision share {}", rows[0].2);
        assert_eq!(rows[1].0, KernelId::UpdateVelocity);
        assert_eq!(p.calls(KernelId::Collision), 1);
        let table = p.table();
        assert!(table.contains("compute_fluid_collision"));
    }

    #[test]
    fn time_closure_returns_value() {
        let mut p = KernelProfile::new();
        let v = p.time(KernelId::Stream, || 40 + 2);
        assert_eq!(v, 42);
        assert_eq!(p.calls(KernelId::Stream), 1);
    }

    #[test]
    fn merge_adds_profiles() {
        let mut a = KernelProfile::new();
        a.record(KernelId::Collision, Duration::from_secs(1));
        let mut b = KernelProfile::new();
        b.record(KernelId::Collision, Duration::from_secs(2));
        b.record(KernelId::Stream, Duration::from_secs(1));
        a.merge(&b);
        assert_eq!(a.total(KernelId::Collision), Duration::from_secs(3));
        assert_eq!(a.calls(KernelId::Collision), 2);
        assert_eq!(a.total(KernelId::Stream), Duration::from_secs(1));
    }

    #[test]
    fn perfectly_balanced_region_has_zero_imbalance() {
        let mut t = ImbalanceTracker::new(4);
        t.record_region(KernelId::Collision, &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(t.total_imbalance(), 0.0);
        assert_eq!(t.imbalance_percent(), 0.0);
    }

    #[test]
    fn single_thread_never_imbalanced() {
        let mut t = ImbalanceTracker::new(1);
        t.record_region(KernelId::Collision, &[3.0]);
        assert_eq!(t.imbalance_percent(), 0.0);
    }

    #[test]
    fn skewed_region_measures_wait_share() {
        let mut t = ImbalanceTracker::new(2);
        // Thread 0 busy 2 s, thread 1 busy 1 s: waits are (0, 1), average
        // 0.5 s against a 2 s critical path → 25%.
        t.record_region(KernelId::Collision, &[2.0, 1.0]);
        assert!((t.total_imbalance() - 0.5).abs() < 1e-12);
        assert!((t.imbalance_percent() - 25.0).abs() < 1e-9);
        // Per-thread view: thread 0 never waited, thread 1 waited 1 s.
        assert_eq!(t.wait_by_thread(), &[0.0, 1.0]);
        assert_eq!(t.busy_by_thread()[0][KernelId::Collision.index()], 2.0);
        assert_eq!(t.regions(), 1);
    }

    #[test]
    fn imbalance_relative_to_whole_program() {
        let mut t = ImbalanceTracker::new(2);
        t.record_region(KernelId::Collision, &[2.0, 1.0]); // 0.5 wait, 2 crit
        t.record_region(KernelId::Stream, &[3.0, 3.0]); // balanced, 3 crit
                                                        // 0.5 / 5.0 = 10%.
        assert!((t.imbalance_percent() - 10.0).abs() < 1e-9);
        let per = t.per_kernel_percent();
        assert!((per[KernelId::Collision.index()].1 - 25.0).abs() < 1e-9);
        assert_eq!(per[KernelId::Stream.index()].1, 0.0);
    }
}
