//! A small fixed-size thread pool with rayon-style scoped tasks, standing
//! in for `rayon::ThreadPool` (unavailable in the offline build).
//!
//! The OpenMP-style solver needs exactly three things from a pool:
//!
//! 1. a fixed team of `n` long-lived workers (thread identity is stable, so
//!    per-thread busy-time accounting works across regions);
//! 2. `scope(|s| { s.spawn(...); ... })` where tasks may borrow the
//!    caller's stack, with an implicit barrier at scope end (OpenMP's
//!    implicit join);
//! 3. [`current_thread_index`] inside tasks, for busy-time attribution.
//!
//! Tasks are distributed from one shared FIFO, so a `scope` with more
//! tasks than workers behaves like OpenMP's `schedule(dynamic)`: idle
//! workers pull the next chunk.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

thread_local! {
    static WORKER_INDEX: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Index of the current pool worker (`0..n_threads`), or `None` when called
/// outside a pool task (mirrors `rayon::current_thread_index`).
pub fn current_thread_index() -> Option<usize> {
    WORKER_INDEX.with(|i| i.get())
}

/// A queued task, lifetime-erased. See the safety argument on
/// [`Scope::spawn`].
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<(VecDeque<Job>, bool /* shutdown */)>,
    work_available: Condvar,
}

/// Synchronisation state of one `scope` call: the count of not-yet-finished
/// tasks and the first captured task panic.
struct ScopeSync {
    remaining: Mutex<usize>,
    all_done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Fixed team of worker threads.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    n_threads: usize,
}

impl ThreadPool {
    /// Spawns `n_threads` workers named `{name_prefix}-{i}`.
    pub fn new(n_threads: usize, name_prefix: &str) -> Self {
        assert!(n_threads > 0, "pool needs at least one thread");
        let shared = Arc::new(PoolShared {
            queue: Mutex::new((VecDeque::new(), false)),
            work_available: Condvar::new(),
        });
        let workers = (0..n_threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("{name_prefix}-{i}"))
                    .spawn(move || {
                        WORKER_INDEX.with(|idx| idx.set(Some(i)));
                        loop {
                            let job = {
                                let mut q = shared.queue.lock().unwrap();
                                loop {
                                    if let Some(job) = q.0.pop_front() {
                                        break job;
                                    }
                                    if q.1 {
                                        return;
                                    }
                                    q = shared.work_available.wait(q).unwrap();
                                }
                            };
                            job();
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers,
            n_threads,
        }
    }

    /// Number of workers.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Queues a job without the `scope` panic wrapper, so a panicking job
    /// kills its worker thread. Exists only to test the teardown path.
    #[cfg(test)]
    fn inject_raw_job(&self, job: Job) {
        let mut q = self.shared.queue.lock().unwrap();
        q.0.push_back(job);
        drop(q);
        self.shared.work_available.notify_one();
    }

    /// Runs `f`, which may spawn borrowing tasks on the pool via the given
    /// [`Scope`]; returns only after every spawned task has finished (the
    /// implicit barrier). The first task panic is propagated here.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let sync = Arc::new(ScopeSync {
            remaining: Mutex::new(0),
            all_done: Condvar::new(),
            panic: Mutex::new(None),
        });
        let scope = Scope {
            pool: self,
            sync: Arc::clone(&sync),
            _env: std::marker::PhantomData,
        };
        // The wait must happen even if `f` itself panics after spawning
        // tasks — otherwise borrowed stack frames would be freed while
        // tasks still run — so it lives in a drop guard.
        struct WaitGuard<'a>(&'a ScopeSync);
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                let mut remaining = self.0.remaining.lock().unwrap();
                while *remaining > 0 {
                    remaining = self.0.all_done.wait(remaining).unwrap();
                }
            }
        }
        let result = {
            let _guard = WaitGuard(&sync);
            f(&scope)
        };
        if let Some(p) = sync.panic.lock().unwrap().take() {
            resume_unwind(p);
        }
        result
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Ignore mutex poisoning here: teardown must proceed even if some
        // thread panicked while holding the queue lock, or the workers
        // would never see the shutdown flag and `join` would hang.
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .1 = true;
        self.shared.work_available.notify_all();
        for w in self.workers.drain(..) {
            if let Err(p) = w.join() {
                // A worker thread died (its panic escaped the per-task
                // `catch_unwind`). Surface it — but never while already
                // unwinding: a panic from `drop` during unwind is a double
                // panic and aborts the whole process.
                if !std::thread::panicking() {
                    resume_unwind(p);
                }
            }
        }
    }
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`]. `'env` is
/// the lifetime of borrows the tasks may capture.
pub struct Scope<'pool, 'env> {
    pool: &'pool ThreadPool,
    sync: Arc<ScopeSync>,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Queues `f` on the pool. It runs on some worker before the enclosing
    /// `scope` call returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        *self.sync.remaining.lock().unwrap() += 1;
        let sync = Arc::clone(&self.sync);
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let outcome = catch_unwind(AssertUnwindSafe(f));
            if let Err(p) = outcome {
                sync.panic.lock().unwrap().get_or_insert(p);
            }
            let mut remaining = sync.remaining.lock().unwrap();
            *remaining -= 1;
            if *remaining == 0 {
                sync.all_done.notify_all();
            }
        });
        // SAFETY: the only non-'static captures in `task` live at least for
        // 'env. `ThreadPool::scope` does not return before `remaining`
        // drops to zero (enforced by its drop guard, so it holds even when
        // the scope closure panics), and `remaining` is decremented only
        // after the task has finished running — therefore the erased
        // borrows are never used after their referents are dropped.
        let task: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send + 'static>>(
                task,
            )
        };
        let mut q = self.pool.shared.queue.lock().unwrap();
        q.0.push_back(task);
        drop(q);
        self.pool.shared.work_available.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_borrowing_tasks_with_barrier() {
        let pool = ThreadPool::new(4, "tp-test");
        let mut data = vec![0usize; 64];
        pool.scope(|s| {
            for chunk in data.chunks_mut(16) {
                s.spawn(move || {
                    for v in chunk {
                        *v += 1;
                    }
                });
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn worker_indices_are_stable_and_bounded() {
        let pool = ThreadPool::new(3, "tp-idx");
        let seen: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        pool.scope(|s| {
            for _ in 0..32 {
                let seen = &seen;
                s.spawn(move || {
                    let i = current_thread_index().expect("task runs on a worker");
                    seen[i].fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        let total: usize = seen.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 32);
        assert_eq!(current_thread_index(), None, "caller is not a worker");
    }

    #[test]
    fn task_panic_propagates_after_all_tasks_finish() {
        let pool = ThreadPool::new(2, "tp-panic");
        let done = AtomicUsize::new(0);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
                for _ in 0..8 {
                    let done = &done;
                    s.spawn(move || {
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(outcome.is_err(), "panic must propagate out of scope");
        assert_eq!(done.load(Ordering::Relaxed), 8, "other tasks still ran");
        // The pool survives a panicked scope.
        pool.scope(|s| s.spawn(|| ()));
    }

    #[test]
    fn drop_surfaces_a_dead_worker() {
        let outcome = catch_unwind(|| {
            let pool = ThreadPool::new(1, "tp-dead");
            pool.inject_raw_job(Box::new(|| panic!("worker dies")));
            drop(pool);
        });
        let payload = outcome.expect_err("drop must propagate the worker's panic");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"worker dies"));
    }

    #[test]
    fn drop_does_not_double_panic_while_unwinding() {
        // If `Drop` re-panicked during unwind this would abort the whole
        // test process; reaching the assertions below is the regression
        // check.
        let outcome = catch_unwind(|| {
            let pool = ThreadPool::new(1, "tp-unwind");
            pool.inject_raw_job(Box::new(|| panic!("worker dies")));
            panic!("outer teardown panic");
        });
        let payload = outcome.expect_err("outer panic must win");
        assert_eq!(
            payload.downcast_ref::<&str>(),
            Some(&"outer teardown panic")
        );
    }

    #[test]
    fn dynamic_distribution_more_tasks_than_workers() {
        let pool = ThreadPool::new(2, "tp-dyn");
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }
}
