//! Atomic `f64` accumulation for the OpenMP-style solver's force spreading.
//!
//! Adjacent fiber nodes on different threads can target the same fluid node
//! in kernel 4, so the parallel scatter needs atomic adds. Rust (like C++)
//! has no native atomic f64 add; the standard technique is a
//! compare-exchange loop over the bit pattern in an `AtomicU64`
//! (see *Rust Atomics and Locks*, ch. 2–3).

use crate::sync_shim::{AtomicU64, Ordering};

/// An `f64` supporting lock-free atomic addition.
#[cfg_attr(not(loom), repr(transparent))]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// Creates a new atomic with the given value.
    pub fn new(v: f64) -> Self {
        Self(AtomicU64::new(v.to_bits()))
    }

    /// Relaxed load.
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Relaxed store.
    #[inline]
    pub fn store(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed)
    }

    /// Atomically adds `v` via a CAS loop. Relaxed ordering is sufficient:
    /// the spreading phase only needs atomicity per slot; cross-phase
    /// visibility is established by the join/barrier that ends the phase.
    #[inline]
    pub fn fetch_add(&self, v: f64) -> f64 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return f64::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Reinterprets an exclusive `f64` slice as a shared slice of [`AtomicF64`].
///
/// Sound because: (1) `AtomicF64` is `repr(transparent)` over `AtomicU64`,
/// which has the same size and alignment as `u64`/`f64`; (2) the `&mut`
/// input guarantees no other live references alias the data for the
/// returned lifetime; (3) all access through the result is atomic.
/// This is the zero-copy bridge that lets the parallel spread write into
/// the grid's ordinary `Vec<f64>` force arrays.
#[cfg(not(loom))]
pub fn as_atomic_f64(slice: &mut [f64]) -> &[AtomicF64] {
    const _: () = assert!(std::mem::size_of::<AtomicF64>() == std::mem::size_of::<f64>());
    const _: () = assert!(std::mem::align_of::<AtomicF64>() == std::mem::align_of::<f64>());
    let len = slice.len();
    let ptr = slice.as_mut_ptr() as *const AtomicF64;
    // SAFETY: size/align match (checked above), exclusivity from &mut,
    // atomics permit shared mutation.
    unsafe { std::slice::from_raw_parts(ptr, len) }
}

/// Under loom the model-checked `AtomicU64` is not layout-compatible with
/// `f64`, so the zero-copy view cannot exist; the loom tests exercise
/// [`AtomicF64`] directly and the solvers never run under the model.
#[cfg(loom)]
pub fn as_atomic_f64(_slice: &mut [f64]) -> &[AtomicF64] {
    unimplemented!("as_atomic_f64 has no loom model; test AtomicF64 directly")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_load_store_add() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(-2.0);
        assert_eq!(a.load(), -2.0);
        let prev = a.fetch_add(0.5);
        assert_eq!(prev, -2.0);
        assert_eq!(a.load(), -1.5);
    }

    #[test]
    fn handles_special_values() {
        let a = AtomicF64::new(0.0);
        a.fetch_add(f64::INFINITY);
        assert_eq!(a.load(), f64::INFINITY);
        let b = AtomicF64::new(-0.0);
        assert_eq!(b.load(), 0.0);
    }

    #[test]
    fn concurrent_adds_lose_nothing() {
        use std::sync::Arc;
        let a = Arc::new(AtomicF64::new(0.0));
        let threads = 8;
        let adds_per_thread = 10_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..adds_per_thread {
                        a.fetch_add(1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.load(), (threads * adds_per_thread) as f64);
    }

    #[test]
    fn atomic_view_of_plain_slice() {
        let mut data = vec![1.0, 2.0, 3.0];
        {
            let view = as_atomic_f64(&mut data);
            view[0].fetch_add(10.0);
            view[2].store(0.5);
        }
        assert_eq!(data, vec![11.0, 2.0, 0.5]);
    }

    #[test]
    fn concurrent_adds_through_view() {
        let mut data = vec![0.0f64; 4];
        let view = as_atomic_f64(&mut data);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let view = &view;
                scope.spawn(move || {
                    for i in 0..1000 {
                        view[(t + i) % 4].fetch_add(1.0);
                    }
                });
            }
        });
        let total: f64 = data.iter().sum();
        assert_eq!(total, 4000.0);
    }
}
