//! Std-thread stress tests for the concurrency primitives, plus the
//! `AtomicF64` partition property. These complement the loom tests
//! (`tests/loom.rs`): loom proves small interleavings exhaustively, these
//! hammer the real primitives at scale.

use lbm_ib::atomicf64::AtomicF64;
use lbm_ib::barrier::SpinBarrier;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A one-thread barrier must be trivially reusable: its sole participant
/// is the leader of every generation.
#[test]
fn spin_barrier_single_thread_reuse_many_generations() {
    let b = SpinBarrier::new(1);
    for generation in 0..100 {
        assert!(
            b.wait(),
            "thread-count-1 barrier not leader in generation {generation}"
        );
    }
}

/// Leader-flag uniqueness per generation (not just in total): across many
/// reused generations, each generation elects exactly one leader. A
/// sense-reversal bug that let two threads claim leadership in one
/// generation while skipping another would keep the total right but fail
/// the per-generation counts.
#[test]
fn spin_barrier_leader_unique_per_generation_stress() {
    const THREADS: usize = 8;
    const GENERATIONS: usize = 48;
    let barrier = SpinBarrier::new(THREADS);
    let leaders: Vec<AtomicUsize> = (0..GENERATIONS).map(|_| AtomicUsize::new(0)).collect();

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let (barrier, leaders) = (&barrier, &leaders);
            scope.spawn(move || {
                for counter in leaders {
                    if barrier.wait() {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                    // Second wait: leaders of generation g must not outrun
                    // slow waiters into generation g+1's election.
                    barrier.wait();
                }
            });
        }
    });

    for (generation, counter) in leaders.iter().enumerate() {
        assert_eq!(
            counter.load(Ordering::Relaxed),
            1,
            "generation {generation} elected a wrong number of leaders"
        );
    }
}

proptest! {
    /// `AtomicF64::fetch_add` from N threads over a random partition of
    /// random values must equal the sequential sum to within accumulation
    /// tolerance (addition order differs across schedules, so exact
    /// equality is not demanded — but every update must land).
    #[test]
    fn atomicf64_partitioned_sum_matches_sequential(
        n_threads in 1usize..=8,
        len in 1usize..=512,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = TestRng::new(seed);
        let values: Vec<f64> = (0..len).map(|_| rng.next_f64() * 2.0 - 1.0).collect();
        let sequential: f64 = values.iter().sum();

        // Random partition: each value is assigned to one of the threads.
        let assignment: Vec<usize> = (0..len).map(|_| rng.below(n_threads as u64) as usize).collect();

        let total = AtomicF64::new(0.0);
        std::thread::scope(|scope| {
            for t in 0..n_threads {
                let (total, values, assignment) = (&total, &values, &assignment);
                scope.spawn(move || {
                    for (v, &owner) in values.iter().zip(assignment) {
                        if owner == t {
                            total.fetch_add(*v);
                        }
                    }
                });
            }
        });

        let got = total.load();
        let tolerance = 1e-12 * (len as f64).max(1.0);
        prop_assert!(
            (got - sequential).abs() <= tolerance,
            "partitioned sum {got} != sequential {sequential} (len {len}, {n_threads} threads)"
        );
    }
}
