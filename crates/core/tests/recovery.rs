//! Recovery tests: armed failpoints under the self-healing supervisor.
//!
//! Compiled (and run in CI's `recovery-smoke` job) only with
//! `--features faultinject`. Where chaos.rs proves each fault surfaces as
//! a *typed error*, these tests prove the [`lbm_ib::Supervisor`] turns
//! that error back into a *completed run*: rollback-and-retry for
//! transient faults (one-shot failpoints), mesh quarantine and backend
//! fallback for persistent ones (sticky failpoints) — with healed physics
//! checked against an uninterrupted run.
//!
//! Determinism assertions: when the mesh and backend never change, the
//! healed state must be **bit-identical** to the fault-free run. After a
//! remap or backend switch the supervisor replays from the rollback
//! anchor (step 0 here — single-chunk runs), so the healed state is
//! bit-identical to a fault-free run *on the final rung*.

#![cfg(feature = "faultinject")]

use std::time::Duration;

use lbm_ib::faultinject::{arm, FaultPlan, HaloFault, PanicAt};
use lbm_ib::supervisor::RecoveryAction;
use lbm_ib::verify::compare_states;
use lbm_ib::{
    build_solver, RecoveryPolicy, SimState, SimulationConfig, Solver, SolverError, Supervisor,
    WatchdogConfig,
};

/// Serializes the whole test body, not just the armed section: the
/// fault-free baselines must never observe a plan armed by a concurrently
/// running test (the global `ARM_LOCK` inside `faultinject` only covers
/// the span between `arm()` and the guard's drop).
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn cfg() -> SimulationConfig {
    let mut c = SimulationConfig::quick_test();
    c.body_force = [4e-6, 0.0, 0.0];
    c
}

/// Zero-backoff policy so tests run at full speed; the schedule itself is
/// unit-tested in the supervisor module.
fn policy() -> RecoveryPolicy {
    RecoveryPolicy {
        backoff: Duration::ZERO,
        ..Default::default()
    }
}

fn fault_free(kind: &str, config: SimulationConfig, threads: usize, steps: u64) -> SimState {
    let mut solver = build_solver(kind, SimState::new(config), threads).unwrap();
    solver.run(steps).unwrap();
    solver.to_state()
}

/// A transient worker panic (one-shot failpoint) heals by rollback and
/// retry on the same mesh — the acceptance case: final state bit-identical
/// to the fault-free run.
#[test]
fn one_shot_worker_panic_heals_bitwise_on_cube() {
    let _serial = serial();
    let baseline = fault_free("cube", cfg(), 4, 30);
    let _armed = arm(FaultPlan {
        panic_at: Some(PanicAt {
            thread: 1,
            step: 12,
            phase: "collide-stream",
        }),
        ..Default::default()
    });
    let mut sup = Supervisor::new("cube", SimState::new(cfg()), 4, policy()).unwrap();
    let report = sup.run_supervised(30).expect("supervisor heals the panic");
    assert_eq!(report.steps, 30);
    let rec = report.recovery.unwrap();
    assert_eq!(rec.attempts, 1);
    assert_eq!(rec.events[0].action, RecoveryAction::Retry);
    assert_eq!(rec.events[0].error_kind, "worker_panicked");
    assert_eq!(rec.final_backend, "cube");
    assert_eq!(rec.final_threads, 4);
    assert_eq!(
        compare_states(&baseline, &sup.to_state()).worst(),
        0.0,
        "healed run must match the fault-free run bit for bit"
    );
}

/// A *sticky* panic pinned to a non-zero worker defeats plain retry; the
/// ladder quarantines the worker by shrinking the cube mesh, and the run
/// finishes on the remapped mesh.
#[test]
fn sticky_panic_quarantines_worker_via_mesh_remap() {
    let _serial = serial();
    let baseline = fault_free("cube", cfg(), 3, 30);
    let _armed = arm(FaultPlan {
        panic_at: Some(PanicAt {
            thread: 3,
            step: 12,
            phase: "velocity-update",
        }),
        sticky: true,
        ..Default::default()
    });
    let mut sup = Supervisor::new(
        "cube",
        SimState::new(cfg()),
        4,
        RecoveryPolicy {
            retry_limit: 1,
            backoff: Duration::ZERO,
            ..Default::default()
        },
    )
    .unwrap();
    let report = sup
        .run_supervised(30)
        .expect("mesh remap escapes the fault");
    let rec = report.recovery.unwrap();
    assert!(
        rec.events
            .iter()
            .any(|e| e.action == RecoveryAction::RemapMesh { from: 4, to: 3 }),
        "expected a 4 → 3 quarantine remap, got {:?}",
        rec.events
    );
    assert_eq!(rec.final_backend, "cube");
    assert_eq!(rec.final_threads, 3);
    // Thread 3 never spawns on the shrunk mesh, so the replay from the
    // step-0 anchor is exactly a fault-free 3-thread run.
    assert_eq!(compare_states(&baseline, &sup.to_state()).worst(), 0.0);
}

/// A sticky panic on thread 0 cannot be quarantined away (the mesh
/// bottoms out at one thread, which is thread 0) — the ladder must fall
/// back to the OpenMP-style backend, whose workers carry no panic hooks.
#[test]
fn sticky_panic_on_thread_zero_falls_back_to_openmp() {
    let _serial = serial();
    let baseline = fault_free("omp", cfg(), 1, 20);
    let _armed = arm(FaultPlan {
        panic_at: Some(PanicAt {
            thread: 0,
            step: 5,
            phase: "fiber-forces",
        }),
        sticky: true,
        ..Default::default()
    });
    let mut sup = Supervisor::new(
        "cube",
        SimState::new(cfg()),
        2,
        RecoveryPolicy {
            retry_limit: 0,
            backoff: Duration::ZERO,
            ..Default::default()
        },
    )
    .unwrap();
    let report = sup.run_supervised(20).expect("backend fallback escapes");
    let rec = report.recovery.unwrap();
    assert!(rec
        .events
        .iter()
        .any(|e| e.action == RecoveryAction::RemapMesh { from: 2, to: 1 }));
    assert!(rec.events.iter().any(|e| e.action
        == RecoveryAction::SwitchBackend {
            from: "cube".into(),
            to: "omp".into(),
        }));
    assert_eq!(rec.final_backend, "omp");
    assert_eq!(compare_states(&baseline, &sup.to_state()).worst(), 0.0);
}

/// A transient NaN injection caught by the in-solver watchdog rolls back
/// and replays cleanly on the sequential backend.
#[test]
fn one_shot_nan_injection_heals_on_sequential() {
    let _serial = serial();
    let mut config = cfg();
    config.watchdog = Some(WatchdogConfig { check_every: 1 });
    let baseline = fault_free("seq", config.clone(), 1, 20);
    let _armed = arm(FaultPlan {
        nan_at_step: Some(7),
        ..Default::default()
    });
    let mut sup = Supervisor::new("seq", SimState::new(config), 1, policy()).unwrap();
    let report = sup.run_supervised(20).expect("supervisor heals the NaN");
    let rec = report.recovery.unwrap();
    assert_eq!(rec.attempts, 1);
    assert_eq!(rec.events[0].error_kind, "unstable");
    assert_eq!(rec.events[0].action, RecoveryAction::Retry);
    assert_eq!(compare_states(&baseline, &sup.to_state()).worst(), 0.0);
}

/// A transiently dropped halo send times out, is rolled back, and the
/// retried exchange goes through — the distributed prototype's "retry
/// before declaring the peer dead" rung.
#[test]
fn one_shot_halo_drop_heals_distributed() {
    let _serial = serial();
    let mut config = cfg();
    config.halo_timeout = Some(Duration::from_millis(250));
    let baseline = fault_free("dist", config.clone(), 2, 10);
    // Drop from rank 0: its victim then deadlocks into a clean timeout
    // (dropping from a non-zero rank desequences the reduction protocol
    // and surfaces as a rank panic instead — also healed, but a
    // different rung).
    let _armed = arm(FaultPlan {
        halo: Some(HaloFault::DropSend { from: 0 }),
        ..Default::default()
    });
    let mut sup = Supervisor::new("dist", SimState::new(config), 2, policy()).unwrap();
    let report = sup.run_supervised(10).expect("halo retry heals");
    let rec = report.recovery.unwrap();
    assert_eq!(rec.attempts, 1);
    assert!(
        matches!(
            rec.events[0].error_kind,
            "halo_timeout" | "rank_disconnected"
        ),
        "{:?}",
        rec.events[0]
    );
    assert_eq!(rec.final_backend, "dist");
    assert_eq!(compare_states(&baseline, &sup.to_state()).worst(), 0.0);
}

/// A rank that *keeps* dropping its sends is eventually declared dead:
/// the ladder abandons the distributed prototype for the cube solver.
#[test]
fn sticky_halo_drop_declares_peer_dead_and_degrades() {
    let _serial = serial();
    let baseline = fault_free("cube", cfg(), 2, 10);
    let _armed = arm(FaultPlan {
        halo: Some(HaloFault::DropSend { from: 0 }),
        sticky: true,
        ..Default::default()
    });
    let mut config = cfg();
    config.halo_timeout = Some(Duration::from_millis(250));
    let mut sup = Supervisor::new(
        "dist",
        SimState::new(config),
        2,
        RecoveryPolicy {
            retry_limit: 0,
            backoff: Duration::ZERO,
            ..Default::default()
        },
    )
    .unwrap();
    let report = sup.run_supervised(10).expect("backend fallback escapes");
    let rec = report.recovery.unwrap();
    assert!(rec.events.iter().any(|e| e.action
        == RecoveryAction::SwitchBackend {
            from: "dist".into(),
            to: "cube".into(),
        }));
    assert_eq!(rec.final_backend, "cube");
    // The cube replay runs with the dist config (halo_timeout is inert
    // there); physics must match the plain cube run bit for bit.
    assert_eq!(compare_states(&baseline, &sup.to_state()).worst(), 0.0);
}

/// With degradation off, a sticky fault exhausts the retry budget and the
/// typed error reaches the caller; the give-up is on the record.
#[test]
fn sticky_fault_with_degrade_off_gives_up_with_typed_error() {
    let _serial = serial();
    let mut config = cfg();
    config.watchdog = Some(WatchdogConfig { check_every: 1 });
    let _armed = arm(FaultPlan {
        nan_at_step: Some(3),
        sticky: true,
        ..Default::default()
    });
    let mut sup = Supervisor::new(
        "seq",
        SimState::new(config),
        1,
        RecoveryPolicy {
            retry_limit: 2,
            degrade: false,
            backoff: Duration::ZERO,
            ..Default::default()
        },
    )
    .unwrap();
    let err = sup.run_supervised(20).unwrap_err();
    assert!(matches!(err, SolverError::Unstable { .. }), "{err}");
    let rec = sup.recovery_report();
    assert!(rec.gave_up);
    assert_eq!(rec.attempts, 3);
    assert_eq!(rec.events.last().unwrap().action, RecoveryAction::GiveUp);
}

/// With a checkpoint path configured, rollback after a real injected
/// fault goes through the on-disk machinery (CRC check, `.prev`
/// rotation) and still heals bit-identically.
#[test]
fn disk_rollback_after_injected_panic_heals_bitwise() {
    let _serial = serial();
    let dir = std::env::temp_dir().join(format!("lbmib_recovery_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sup.ckpt");
    let baseline = fault_free("cube", cfg(), 4, 30);
    let _armed = arm(FaultPlan {
        panic_at: Some(PanicAt {
            thread: 2,
            step: 9,
            phase: "move-fibers",
        }),
        ..Default::default()
    });
    let mut sup = Supervisor::new(
        "cube",
        SimState::new(cfg()),
        4,
        RecoveryPolicy {
            backoff: Duration::ZERO,
            checkpoint: Some(path.clone()),
            ..Default::default()
        },
    )
    .unwrap();
    let report = sup.run_supervised(30).expect("disk rollback heals");
    let rec = report.recovery.unwrap();
    assert_eq!(rec.attempts, 1);
    assert_eq!(rec.events[0].rollback_source, "disk");
    assert_eq!(rec.events[0].rollback_step, 0);
    assert_eq!(compare_states(&baseline, &sup.to_state()).worst(), 0.0);
    std::fs::remove_dir_all(&dir).ok();
}
