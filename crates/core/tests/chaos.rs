//! Chaos tests: deterministic fault injection against the recovery paths.
//!
//! Compiled (and run in CI's `chaos-smoke` job) only with
//! `--features faultinject`; the hooks these tests arm are inlined away
//! in default builds. Each test arms one [`FaultPlan`], drives a solver
//! into the failure, and asserts the typed error the runtime must
//! surface — a hang or a poisoned-lock cascade is the regression.

#![cfg(feature = "faultinject")]

use std::time::Duration;

use lbm_ib::barrier::BarrierKind;
use lbm_ib::checkpoint::{self, ResumeSource};
use lbm_ib::faultinject::{arm, CheckpointFault, FaultPlan, HaloFault, PanicAt};
use lbm_ib::{
    build_solver, CheckpointError, CubeSolver, DistributedSolver, SimState, SimulationConfig,
    SolverError, WatchdogConfig,
};

fn cfg() -> SimulationConfig {
    let mut c = SimulationConfig::quick_test();
    c.body_force = [4e-6, 0.0, 0.0];
    c
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lbmib_chaos_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A worker panic mid-step must poison the barriers and surface as a
/// typed error — with either barrier implementation — instead of leaving
/// the surviving workers spinning forever.
#[test]
fn cube_worker_panic_surfaces_typed_error_not_hang() {
    for kind in [BarrierKind::Spin, BarrierKind::Std] {
        let armed = arm(FaultPlan {
            panic_at: Some(PanicAt {
                thread: 1,
                step: 2,
                phase: "velocity-update",
            }),
            ..Default::default()
        });
        let mut solver = CubeSolver::new(cfg(), 4);
        solver.barrier_kind = kind;

        // Run on a watcher thread so a teardown hang fails the test in
        // bounded time instead of wedging the whole suite.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let r = solver.try_run(5);
            tx.send((r, solver)).ok();
        });
        let (res, solver) = rx
            .recv_timeout(Duration::from_secs(120))
            .unwrap_or_else(|_| panic!("{kind:?}: cube teardown hung after a worker panic"));

        assert_eq!(
            res.unwrap_err(),
            SolverError::WorkerPanicked {
                thread: 1,
                phase: "velocity-update",
            },
            "{kind:?}"
        );
        assert_eq!(
            solver.to_state().step,
            0,
            "{kind:?}: a failed run must not claim progress"
        );

        // Disarmed, the same solver recovers: try_run builds fresh
        // barriers, and the state was restored on the failure path.
        drop(armed);
        let mut solver = solver;
        let report = solver.try_run(3).expect("solver recovers once disarmed");
        assert_eq!(report.steps, 3);
        assert!(!solver.to_state().has_nan());
    }
}

/// A save torn after its fsync (the temp file is damaged before the
/// renames) must leave the rotated previous snapshot loadable.
#[test]
fn torn_checkpoint_write_falls_back_to_previous_snapshot() {
    let dir = scratch_dir("torn");
    let path = dir.join("run.ckpt");
    let mut solver = build_solver("seq", SimState::new(cfg()), 1).unwrap();
    solver.run(3).unwrap();
    checkpoint::save(&solver.to_state(), &path).unwrap();
    solver.run(3).unwrap();

    let armed = arm(FaultPlan {
        checkpoint: Some(CheckpointFault::TruncateTail(64)),
        ..Default::default()
    });
    checkpoint::save(&solver.to_state(), &path).unwrap();
    drop(armed);

    assert!(
        matches!(checkpoint::load(&path), Err(CheckpointError::Io(_))),
        "the torn primary must be rejected"
    );
    let (state, source) = checkpoint::resume(&path).unwrap();
    assert_eq!(source, ResumeSource::Fallback);
    assert_eq!(state.step, 3);
    std::fs::remove_dir_all(&dir).ok();
}

/// A payload bit flip decodes fine and passes the length guard — only the
/// CRC trailer can catch it, and it must.
#[test]
fn bit_flipped_checkpoint_is_caught_by_crc() {
    let dir = scratch_dir("flip");
    let path = dir.join("run.ckpt");
    let mut solver = build_solver("seq", SimState::new(cfg()), 1).unwrap();
    solver.run(2).unwrap();

    let armed = arm(FaultPlan {
        checkpoint: Some(CheckpointFault::FlipBit {
            offset_from_end: 1000,
            mask: 0x10,
        }),
        ..Default::default()
    });
    checkpoint::save(&solver.to_state(), &path).unwrap();
    drop(armed);

    match checkpoint::load(&path) {
        Err(CheckpointError::Crc { expected, found }) => assert_ne!(expected, found),
        other => panic!("expected a CRC failure, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A rank silently dropping its halo sends must trip the configured
/// receive timeout on its neighbours, not hang the exchange.
#[test]
fn dropped_halo_sends_surface_as_timeout_or_disconnect() {
    let _armed = arm(FaultPlan {
        halo: Some(HaloFault::DropSend { from: 0 }),
        ..Default::default()
    });
    let mut c = cfg();
    c.halo_timeout = Some(Duration::from_millis(200));
    let mut dist = DistributedSolver::new(c, 2);
    let err = dist.try_run(3).unwrap_err();
    // The faulted rank's early exit also closes its channels, so peers
    // may observe the disconnect before their timeout fires.
    assert!(
        matches!(
            err,
            SolverError::HaloTimeout { .. } | SolverError::RankDisconnected { .. }
        ),
        "got {err:?}"
    );
    assert_eq!(
        dist.to_state().step,
        0,
        "a failed run must not claim progress"
    );
}

/// Delayed (but delivered) halo sends stay within a generous timeout: the
/// run completes, no spurious fault.
#[test]
fn delayed_halo_sends_within_timeout_still_complete() {
    let _armed = arm(FaultPlan {
        halo: Some(HaloFault::DelaySend {
            from: 0,
            delay: Duration::from_millis(20),
        }),
        ..Default::default()
    });
    let mut c = cfg();
    c.halo_timeout = Some(Duration::from_secs(30));
    let mut dist = DistributedSolver::new(c, 2);
    let report = dist
        .try_run(3)
        .expect("delays below the timeout are not faults");
    assert_eq!(report.steps, 3);
    assert!(!dist.to_state().has_nan());
}

/// An injected NaN must be caught by the in-solver watchdog as a typed
/// `Unstable` error at its next check, not propagate silently.
#[test]
fn injected_nan_trips_the_watchdog() {
    let _armed = arm(FaultPlan {
        nan_at_step: Some(5),
        ..Default::default()
    });
    let mut c = cfg();
    c.watchdog = Some(WatchdogConfig { check_every: 2 });
    let mut solver = build_solver("seq", SimState::new(c), 1).unwrap();
    let err = solver.run(20).unwrap_err();
    assert!(matches!(err, SolverError::Unstable { .. }), "got {err:?}");
}
