//! Integration tests for the phase-ownership race auditor.
//!
//! Run with:
//!
//! ```text
//! cargo test -p lbm-ib --features racecheck --test racecheck --release
//! ```
#![cfg(feature = "racecheck")]

use lbm_ib::config::SimulationConfig;
use lbm_ib::cube::CubeSolver;
use lbm_ib::racecheck;
use lbm_ib::sharedgrid::SharedSlice;
use std::sync::Mutex;

/// The shadow log is process-global; begin/audit pairs must not overlap.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// The real solver, multi-threaded, must satisfy its own discipline: every
/// access of a full Algorithm-4 time step is recorded and audited. This is
/// the load-bearing positive test — it checks the streaming injectivity
/// argument, the spread locking, and the per-cube ownership of every kernel
/// at once.
#[test]
fn cube_solver_run_is_discipline_clean() {
    let _g = serial();
    let mut solver = CubeSolver::new(SimulationConfig::quick_test(), 3);
    racecheck::begin();
    solver.run(2);
    let report = racecheck::audit();
    assert!(
        report.dropped == 0,
        "log overflow: {} dropped",
        report.dropped
    );
    assert!(
        report.records > 100_000,
        "suspiciously few records: {}",
        report.records
    );
    report.assert_clean();
}

/// The fused kernel plan merges collision and streaming into one lock-free
/// per-cube pass whose cross-face pushes rely on push-streaming
/// injectivity — each `(destination node, direction)` slot of `f_new` has
/// exactly one writer. The auditor must find that discipline intact over a
/// full multi-threaded run.
#[test]
fn fused_cube_solver_run_is_discipline_clean() {
    let _g = serial();
    let mut cfg = SimulationConfig::quick_test();
    cfg.plan = lbm_ib::config::KernelPlan::Fused;
    let mut solver = CubeSolver::new(cfg, 3);
    racecheck::begin();
    solver.run(2);
    let report = racecheck::audit();
    assert!(
        report.dropped == 0,
        "log overflow: {} dropped",
        report.dropped
    );
    assert!(
        report.records > 100_000,
        "suspiciously few records: {}",
        report.records
    );
    report.assert_clean();
}

/// Deliberately-seeded violation: two tracked threads write the same slot
/// in the same phase with no lock. The auditor must fire.
#[test]
fn seeded_unlocked_double_write_is_reported() {
    let _g = serial();
    let s = SharedSlice::from_vec(vec![0.0f64; 4]);
    s.name_for_racecheck("seeded");
    racecheck::begin();
    std::thread::scope(|scope| {
        for t in 0..2 {
            let s = &s;
            scope.spawn(move || {
                racecheck::set_thread(t);
                racecheck::set_phase(0);
                // SAFETY: deliberately violated — the auditor must fire.
                unsafe { s.set(1, t as f64) };
            });
        }
    });
    let report = racecheck::audit();
    assert_eq!(report.violations.len(), 1, "expected exactly one violation");
    let v = &report.violations[0];
    assert_eq!(v.array, "seeded");
    assert_eq!(v.index, 1);
    assert_eq!(v.phase, 0);
    assert!(
        v.detail.contains("without the owner lock"),
        "detail: {}",
        v.detail
    );
}

/// The same double write under the owner lock is the spreading pattern of
/// Algorithm 4 and must be accepted.
#[test]
fn locked_double_write_is_clean() {
    let _g = serial();
    let s = SharedSlice::from_vec(vec![0.0f64; 4]);
    let lock = Mutex::new(());
    racecheck::begin();
    std::thread::scope(|scope| {
        for t in 0..2 {
            let (s, lock) = (&s, &lock);
            scope.spawn(move || {
                racecheck::set_thread(t);
                racecheck::set_phase(0);
                let _guard = lock.lock().unwrap();
                let _rc = racecheck::lock_scope();
                // SAFETY: serialised by the lock (the spreading rule).
                unsafe { s.add(2, 1.0) };
            });
        }
    });
    racecheck::audit().assert_clean();
}

/// A cross-thread read/write pair in one phase is a violation even with a
/// single writer: the reader has no happens-before edge to the write.
#[test]
fn seeded_read_write_overlap_is_reported() {
    let _g = serial();
    let s = SharedSlice::from_vec(vec![0.0f64; 4]);
    racecheck::begin();
    std::thread::scope(|scope| {
        let s0 = &s;
        scope.spawn(move || {
            racecheck::set_thread(0);
            racecheck::set_phase(7);
            // SAFETY: deliberately violated — the auditor must fire.
            unsafe { s0.set(3, 1.0) };
        });
        let s1 = &s;
        scope.spawn(move || {
            racecheck::set_thread(1);
            racecheck::set_phase(7);
            // SAFETY: deliberately violated — the auditor must fire.
            let _ = unsafe { s1.get(3) };
        });
    });
    let report = racecheck::audit();
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].phase, 7);
    assert_eq!(report.violations[0].index, 3);
}

/// The same accesses in *different* phases are separated by a barrier and
/// must be accepted — the auditor is phase-local by design.
#[test]
fn cross_phase_accesses_are_clean() {
    let _g = serial();
    let s = SharedSlice::from_vec(vec![0.0f64; 4]);
    racecheck::begin();
    std::thread::scope(|scope| {
        let s0 = &s;
        scope.spawn(move || {
            racecheck::set_thread(0);
            racecheck::set_phase(0);
            // SAFETY: sole writer in phase 0.
            unsafe { s0.set(3, 1.0) };
        });
        let s1 = &s;
        scope.spawn(move || {
            racecheck::set_thread(1);
            racecheck::set_phase(1);
            // SAFETY: phase 1 reads are separated from the phase-0 write by
            // the barrier that advanced the phase.
            let _ = unsafe { s1.get(3) };
        });
    });
    racecheck::audit().assert_clean();
}

/// Untracked threads (setup and teardown on the main thread) are ignored.
#[test]
fn untracked_threads_are_not_recorded() {
    let _g = serial();
    let s = SharedSlice::from_vec(vec![0.0f64; 4]);
    racecheck::begin();
    // SAFETY: single-threaded access.
    unsafe {
        s.set(0, 1.0);
        let _ = s.get(0);
    }
    let report = racecheck::audit();
    assert_eq!(report.records, 0);
    report.assert_clean();
}
