//! Exhaustive interleaving tests for the cube solver's concurrency
//! primitives, model-checked with the in-tree loom stand-in.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p lbm-ib --test loom --release
//! ```
//!
//! Under ordinary builds this file compiles to an empty test crate.
#![cfg(loom)]

use lbm_ib::atomicf64::AtomicF64;
use lbm_ib::barrier::SpinBarrier;
use lbm_ib::sharedgrid::SharedSlice;
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

/// The barrier must publish every pre-barrier write to every post-barrier
/// reader. If `SpinBarrier::wait` lost its Release/Acquire pairing (e.g.
/// relaxed generation counter), loom would report the slot read as a data
/// race — the test is falsifiable, not just a smoke check.
#[test]
fn spin_barrier_publishes_writes_and_elects_one_leader() {
    loom::model(|| {
        let barrier = Arc::new(SpinBarrier::new(2));
        let slots = Arc::new(SharedSlice::from_vec(vec![0u64; 2]));
        let leaders = Arc::new(AtomicUsize::new(0));

        let participate =
            |t: usize, barrier: &SpinBarrier, slots: &SharedSlice<u64>, leaders: &AtomicUsize| {
                // SAFETY: slot `t` is written only by participant `t` before
                // the barrier; nobody reads it until after the barrier.
                unsafe { slots.set(t, (t + 1) as u64) };
                if barrier.wait() {
                    leaders.fetch_add(1, Ordering::Relaxed);
                }
                for i in 0..2 {
                    // SAFETY: writes stopped at the barrier; the barrier's
                    // happens-before edge is exactly what's being verified.
                    let v = unsafe { slots.get(i) };
                    assert_eq!(v, (i + 1) as u64, "stale read of slot {i}");
                }
            };

        let (b2, s2, l2) = (
            Arc::clone(&barrier),
            Arc::clone(&slots),
            Arc::clone(&leaders),
        );
        let h = thread::spawn(move || participate(1, &b2, &s2, &l2));
        participate(0, &barrier, &slots, &leaders);
        h.join().unwrap();
        assert_eq!(
            leaders.load(Ordering::Relaxed),
            1,
            "exactly one leader per generation"
        );
    });
}

/// Sense-reversal reuse: the same barrier instance must work for several
/// consecutive generations, electing exactly one leader each time and
/// publishing each round's writes before the next round reads them.
#[test]
fn spin_barrier_generations_reuse() {
    loom::model(|| {
        const ROUNDS: u64 = 2;
        let barrier = Arc::new(SpinBarrier::new(2));
        let slots = Arc::new(SharedSlice::from_vec(vec![0u64; 2]));
        let leaders = Arc::new(AtomicUsize::new(0));

        let participate =
            |t: usize, barrier: &SpinBarrier, slots: &SharedSlice<u64>, leaders: &AtomicUsize| {
                for round in 1..=ROUNDS {
                    // SAFETY: participant `t` is the only writer of slot `t`,
                    // and the end-of-round barrier separates these writes from
                    // the previous round's reads.
                    unsafe { slots.set(t, round) };
                    if barrier.wait() {
                        leaders.fetch_add(1, Ordering::Relaxed);
                    }
                    for i in 0..2 {
                        // SAFETY: reads are separated from writes by the
                        // barriers on both sides of the round.
                        let v = unsafe { slots.get(i) };
                        assert_eq!(v, round, "slot {i} stale in round {round}");
                    }
                    barrier.wait(); // end-of-round barrier
                }
            };

        let (b2, s2, l2) = (
            Arc::clone(&barrier),
            Arc::clone(&slots),
            Arc::clone(&leaders),
        );
        let h = thread::spawn(move || participate(1, &b2, &s2, &l2));
        participate(0, &barrier, &slots, &leaders);
        h.join().unwrap();
        // Only the mid-round wait counts leaders: one per round.
        assert_eq!(
            leaders.load(Ordering::Relaxed) as u64,
            ROUNDS,
            "one leader per round"
        );
    });
}

/// A single-thread barrier is always its own leader and trivially
/// reusable.
#[test]
fn spin_barrier_single_thread_reuse() {
    loom::model(|| {
        let b = SpinBarrier::new(1);
        for _ in 0..3 {
            assert!(b.wait());
        }
    });
}

/// `AtomicF64::fetch_add` is a CAS-retry loop; loom drives interfering
/// schedules through the retry path and verifies no update is lost.
#[test]
fn atomicf64_fetch_add_loses_no_updates() {
    loom::model(|| {
        let a = Arc::new(AtomicF64::new(0.0));
        let a2 = Arc::clone(&a);
        let h = thread::spawn(move || {
            a2.fetch_add(1.0);
            a2.fetch_add(2.0);
        });
        a.fetch_add(4.0);
        h.join().unwrap();
        assert_eq!(a.load(), 7.0, "an interleaving lost an add");
    });
}

/// Miniature Algorithm 4: two worker threads, two cubes, the three-phase
/// structure of the cube solver's time step.
///
/// Phase A (spread): every thread contributes to *both* cubes' force
/// accumulators, taking the destination cube owner's lock — the only
/// write-shared phase of the algorithm.
/// Phase B (update): each thread reads its own cube's force and writes its
/// own cube's velocity — per-cube ownership, no locks.
/// Phase C (stream): each thread reads *both* cubes' velocities — the
/// neighbour reads that make the preceding barrier load-bearing.
///
/// Loom verifies that the owner locks serialise phase A's shared writes
/// and that the barriers publish each phase to the next; weaken either and
/// this test reports a race.
#[test]
fn algorithm4_phase_sequence_two_cubes() {
    loom::model(|| {
        let force = Arc::new(SharedSlice::from_vec(vec![0.0f64; 2]));
        let vel = Arc::new(SharedSlice::from_vec(vec![0.0f64; 2]));
        let locks = Arc::new([Mutex::new(()), Mutex::new(())]);
        let barrier = Arc::new(SpinBarrier::new(2));

        let worker = |t: usize,
                      force: &SharedSlice<f64>,
                      vel: &SharedSlice<f64>,
                      locks: &[Mutex<()>; 2],
                      barrier: &SpinBarrier| {
            // Phase A: spread under the destination owner's lock.
            for c in 0..2 {
                let _guard = locks[c].lock().unwrap();
                // SAFETY: all writers of force[c] hold lock c (the
                // spreading rule of Algorithm 4).
                unsafe { force.add(c, (t + 1) as f64) };
            }
            barrier.wait();
            // Phase B: exclusive per-cube update.
            // SAFETY: after the barrier, only cube t's owner (this thread)
            // touches force[t] and vel[t] in this phase.
            let f = unsafe { force.get(t) };
            assert_eq!(f, 3.0, "cube {t} lost a spread contribution");
            // SAFETY: as above — exclusive owner write.
            unsafe { vel.set(t, 0.5 * f) };
            barrier.wait();
            // Phase C: read both cubes' velocities (neighbour access).
            for c in 0..2 {
                // SAFETY: all vel writes happened before the barrier; this
                // phase only reads.
                let v = unsafe { vel.get(c) };
                assert_eq!(v, 1.5, "cube {c} velocity not published");
            }
        };

        let (f2, v2, l2, b2) = (
            Arc::clone(&force),
            Arc::clone(&vel),
            Arc::clone(&locks),
            Arc::clone(&barrier),
        );
        let h = thread::spawn(move || worker(1, &f2, &v2, &l2, &b2));
        worker(0, &force, &vel, &locks, &barrier);
        h.join().unwrap();
    });
}

/// Fused collide–stream across a shared cube face: two workers each
/// collide their own cube's population in registers and push one result
/// into the *other* cube's `f_new` slot — the cross-face write the fused
/// plan performs with no locks. Safety rests on push-streaming
/// injectivity: each `(destination node, direction)` slot has exactly one
/// writer grid-wide, so the writes are per-location exclusive, and the
/// post-sweep barrier publishes them to the kernel-7 readers. Loom
/// verifies both halves of that argument: distinct slots race-free during
/// the sweep, barrier edge before the read-back.
#[test]
fn fused_push_across_cube_face_is_race_free() {
    loom::model(|| {
        // f_new slots: index c = (cube c, incoming direction from the
        // other cube). Each is written by exactly one worker — the one
        // that owns the *source* cube.
        let f = Arc::new(SharedSlice::from_vec(vec![1.0f64, 2.0]));
        let f_new = Arc::new(SharedSlice::from_vec(vec![0.0f64; 2]));
        let barrier = Arc::new(SpinBarrier::new(2));

        let worker =
            |t: usize, f: &SharedSlice<f64>, f_new: &SharedSlice<f64>, barrier: &SpinBarrier| {
                // Collide in registers: read own cube's pre-collision value
                // (exclusive — nobody writes f during the fused sweep).
                // SAFETY: f is read-only in this phase.
                let reg = unsafe { f.get(t) } * 0.5;
                // Push across the face into the neighbour cube's slot.
                // SAFETY: slot `1 - t` has this worker as its unique writer
                // (push injectivity); no reads until after the barrier.
                unsafe { f_new.set(1 - t, reg) };
                barrier.wait();
                // Kernel 7 reads everything after the barrier.
                for c in 0..2 {
                    // SAFETY: writes stopped at the barrier.
                    let v = unsafe { f_new.get(c) };
                    let expect = if c == 0 { 1.0 } else { 0.5 };
                    assert_eq!(v, expect, "slot {c} not published to kernel 7");
                }
            };

        let (f2, n2, b2) = (Arc::clone(&f), Arc::clone(&f_new), Arc::clone(&barrier));
        let h = thread::spawn(move || worker(1, &f2, &n2, &b2));
        worker(0, &f, &f_new, &barrier);
        h.join().unwrap();
    });
}

/// Falsifiability check for the harness itself: the same slot written by
/// two threads with *no* synchronisation must be reported as a race.
#[test]
#[should_panic(expected = "data race")]
fn unsynchronized_slot_writes_are_reported() {
    loom::model(|| {
        let s = Arc::new(SharedSlice::from_vec(vec![0.0f64; 1]));
        let s2 = Arc::clone(&s);
        let h = thread::spawn(move || {
            // SAFETY: deliberately violated — loom must reject this.
            unsafe { s2.set(0, 1.0) };
        });
        // SAFETY: deliberately violated — loom must reject this.
        unsafe { s.set(0, 2.0) };
        h.join().unwrap();
    });
}
