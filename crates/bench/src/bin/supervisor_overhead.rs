//! Measures the cost of running fault-free under the self-healing
//! supervisor: every solver runs the same workload bare and wrapped in
//! [`lbm_ib::Supervisor`] (in-memory rollback anchor, no disk
//! checkpoint), and the harness reports the wall-time overhead in
//! `BENCH_supervisor.json`.
//!
//! The acceptance bar is <= 2% overhead on the fault-free quick_test: the
//! only work supervision adds to a healthy run is one `to_state()`
//! snapshot per committed chunk, so a single-chunk run pays one snapshot
//! per `run()` call.
//!
//! Usage: `supervisor_overhead [--steps N] [--reps N] [--threads N] [--out PATH]`

use lbm_ib::solver::build_solver;
use lbm_ib::{RecoveryPolicy, SimState, SimulationConfig, Solver, Supervisor};
use lbm_ib_bench::Args;

/// Median wall seconds of `reps` fresh runs of `steps` steps.
fn median_run_secs(
    solver_name: &str,
    config: SimulationConfig,
    threads: usize,
    steps: u64,
    reps: usize,
    supervised: bool,
) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let mut solver: Box<dyn Solver> = if supervised {
                Box::new(
                    Supervisor::new(
                        solver_name,
                        SimState::new(config),
                        threads,
                        RecoveryPolicy::default(),
                    )
                    .expect("build supervisor"),
                )
            } else {
                build_solver(solver_name, SimState::new(config), threads).expect("build solver")
            };
            solver.run(2).expect("warm-up"); // warm caches and thread pools
            let report = solver.run(steps).expect("measured run");
            report.wall.as_secs_f64()
        })
        .collect();
    times.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

struct Row {
    solver: &'static str,
    bare_s: f64,
    supervised_s: f64,
}

impl Row {
    fn overhead_percent(&self) -> f64 {
        100.0 * (self.supervised_s - self.bare_s) / self.bare_s
    }
}

fn main() {
    let args = Args::parse();
    let steps: u64 = args.get_or("steps", 40);
    let reps: usize = args.get_or("reps", 9);
    let threads: usize = args.get_or("threads", 4);
    let out: String = args.get_or("out", "BENCH_supervisor.json".to_string());
    let config = SimulationConfig::quick_test();

    println!(
        "supervisor overhead, quick_test, {steps} steps, {reps} reps (median), {threads} threads"
    );
    println!("{}", lbm_ib_bench::rule(72));

    let rows: Vec<Row> = ["seq", "omp", "cube", "dist"]
        .into_iter()
        .map(|name| Row {
            solver: name,
            bare_s: median_run_secs(name, config, threads, steps, reps, false),
            supervised_s: median_run_secs(name, config, threads, steps, reps, true),
        })
        .collect();
    for r in &rows {
        println!(
            "{:<5} bare {:>9.2} ms  supervised {:>9.2} ms  overhead {:>+6.2}%",
            r.solver,
            r.bare_s * 1e3,
            r.supervised_s * 1e3,
            r.overhead_percent()
        );
    }

    // Hand-rolled JSON (the workspace is offline: no serde).
    let solver_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"solver\": \"{}\", \"bare_s\": {:e}, \"supervised_s\": {:e}, \"overhead_percent\": {:.3}}}",
                r.solver,
                r.bare_s,
                r.supervised_s,
                r.overhead_percent()
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"supervisor_overhead\",\n",
            "  \"steps\": {},\n",
            "  \"reps\": {},\n",
            "  \"threads\": {},\n",
            "  \"solvers\": [\n{}\n  ]\n",
            "}}\n"
        ),
        steps,
        reps,
        threads,
        solver_rows.join(",\n"),
    );
    std::fs::write(&out, json).expect("write json");
    println!("wrote {out}");
}
