//! Reproduces **Table I**: per-kernel share of sequential execution time.
//!
//! Paper input: 124×64×64 fluid grid, 52×52 fiber nodes, 500 time steps
//! (967 s total on their AMD Opteron). Default here: the same grid with a
//! reduced step count (the percentage breakdown stabilises after a handful
//! of steps); pass `--full` for the paper's 500 steps.
//!
//! Usage: `table1_kernel_breakdown [--steps N] [--shrink S] [--full]`

use lbm_ib::profiling::KernelId;
use lbm_ib::{SequentialSolver, SimulationConfig};
use lbm_ib_bench::{timed, Args, PAPER_TABLE1};

fn main() {
    let args = Args::parse();
    let full = args.flag("full");
    let shrink: usize = args.get_or("shrink", 1);
    let steps: u64 = if full { 500 } else { args.get_or("steps", 10) };

    let mut config = SimulationConfig::table1();
    if shrink > 1 {
        config.nx = (config.nx / shrink / 4).max(2) * 4;
        config.ny = (config.ny / shrink / 4).max(2) * 4;
        config.nz = (config.nz / shrink / 4).max(2) * 4;
        let n = (52 / shrink).max(4);
        config.sheet = lbm_ib::SheetConfig::square(
            n,
            (20.0 / shrink as f64).max(2.0),
            [
                config.nx as f64 / 4.0,
                config.ny as f64 / 2.0,
                config.nz as f64 / 2.0,
            ],
        );
    }
    config.validate().expect("config");

    println!("Table I reproduction: sequential LBM-IB kernel breakdown");
    println!(
        "input: {}x{}x{} fluid, {}x{} fiber nodes, {} steps{}",
        config.nx,
        config.ny,
        config.nz,
        config.sheet.num_fibers,
        config.sheet.nodes_per_fiber,
        steps,
        if full { " (paper-scale)" } else { "" }
    );

    let mut solver = SequentialSolver::new(config);
    let (_, secs) = timed(|| solver.run(steps));
    println!("total execution time = {secs:.2} s\n");

    let measured = solver.profile.ranked();
    println!(
        "{:<6} {:<36} {:>10} {:>10}",
        "Kernel", "Kernel Name", "measured%", "paper%"
    );
    println!("{}", lbm_ib_bench::rule(66));
    for (k, _, pct) in &measured {
        let paper = PAPER_TABLE1
            .iter()
            .find(|r| r.0 == k.paper_number())
            .map(|r| r.2)
            .unwrap_or(f64::NAN);
        println!(
            "{:<6} {:<36} {:>9.2}% {:>9.2}%",
            format!("{})", k.paper_number()),
            k.paper_name(),
            pct,
            paper
        );
    }

    // Shape checks the paper's narrative rests on: the kernels that visit
    // every fluid node dominate, the fiber kernels are negligible.
    let pct = |k: KernelId| measured.iter().find(|r| r.0 == k).map(|r| r.2).unwrap();
    let fluid4 = pct(KernelId::Collision)
        + pct(KernelId::UpdateVelocity)
        + pct(KernelId::CopyDistributions)
        + pct(KernelId::Stream);
    println!("\nshape checks (paper narrative):");
    println!(
        "  4 fluid-node kernels (5,6,7,9) >= 90%: {} ({fluid4:.1}%)",
        fluid4 >= 90.0
    );
    let fiber =
        pct(KernelId::BendingForce) + pct(KernelId::StretchingForce) + pct(KernelId::ElasticForce);
    println!(
        "  fiber force kernels (1,2,3) <= 2%:     {} ({fiber:.2}%)",
        fiber <= 2.0
    );
    println!(
        "  collision among top-2 kernels:         {} ({:.1}%)",
        measured[..2].iter().any(|r| r.0 == KernelId::Collision),
        pct(KernelId::Collision)
    );
    println!(
        "\nnote: the paper's 2012-era cores made the flop-heavy collision kernel 73%\n\
         of run time; on modern hardware the vectorised collision is several times\n\
         leaner while the scattered-write streaming kernel is memory-latency bound,\n\
         so the ordering *within* the fluid kernels shifts. The paper's argument —\n\
         every-fluid-node kernels dominate and must be parallelised — is unchanged."
    );
}
