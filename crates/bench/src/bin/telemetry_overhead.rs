//! Measures the cost of the per-thread kernel telemetry added in the
//! metrics subsystem: every solver runs the same workload with telemetry
//! off and on, and the harness reports the wall-time overhead plus one
//! captured `RunTelemetry` snapshot in `BENCH_telemetry.json`.
//!
//! The acceptance bar is <= 3% overhead on the cube solver: the only hot
//! paths the instrumentation touches are one `Instant::now()` pair per
//! kernel section and per barrier, and one relaxed atomic flush per
//! thread per step.
//!
//! Usage: `telemetry_overhead [--steps N] [--reps N] [--threads N] [--out PATH]`

use lbm_ib::solver::build_solver;
use lbm_ib::{SimState, SimulationConfig};
use lbm_ib_bench::Args;

/// Median wall seconds of `reps` fresh runs of `steps` steps.
fn median_run_secs(
    solver_name: &str,
    config: SimulationConfig,
    threads: usize,
    steps: u64,
    reps: usize,
    telemetry: bool,
) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let mut solver =
                build_solver(solver_name, SimState::new(config), threads).expect("build solver");
            solver.run(2).expect("warm-up"); // warm caches and thread pools
            solver.set_telemetry(telemetry);
            let report = solver.run(steps).expect("measured run");
            report.wall.as_secs_f64()
        })
        .collect();
    times.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

struct Row {
    solver: &'static str,
    off_s: f64,
    on_s: f64,
}

impl Row {
    fn overhead_percent(&self) -> f64 {
        100.0 * (self.on_s - self.off_s) / self.off_s
    }
}

fn main() {
    let args = Args::parse();
    let steps: u64 = args.get_or("steps", 40);
    let reps: usize = args.get_or("reps", 9);
    let threads: usize = args.get_or("threads", 4);
    let out: String = args.get_or("out", "BENCH_telemetry.json".to_string());
    let config = SimulationConfig::quick_test();

    println!(
        "telemetry overhead, quick_test, {steps} steps, {reps} reps (median), {threads} threads"
    );
    println!("{}", lbm_ib_bench::rule(72));

    let rows: Vec<Row> = ["seq", "omp", "cube", "dist"]
        .into_iter()
        .map(|name| Row {
            solver: name,
            off_s: median_run_secs(name, config, threads, steps, reps, false),
            on_s: median_run_secs(name, config, threads, steps, reps, true),
        })
        .collect();
    for r in &rows {
        println!(
            "{:<5} off {:>9.2} ms  on {:>9.2} ms  overhead {:>+6.2}%",
            r.solver,
            r.off_s * 1e3,
            r.on_s * 1e3,
            r.overhead_percent()
        );
    }

    // Capture one telemetry snapshot (cube solver) for the JSON report.
    let mut cube = build_solver("cube", SimState::new(config), threads).expect("build cube");
    cube.set_telemetry(true);
    let report = cube.run(steps).expect("telemetry run");
    let telemetry = report.telemetry.expect("cube telemetry enabled");
    println!("{}", lbm_ib_bench::rule(72));
    println!("{}", telemetry.summary());

    // Hand-rolled JSON (the workspace is offline: no serde).
    let solver_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"solver\": \"{}\", \"off_s\": {:e}, \"on_s\": {:e}, \"overhead_percent\": {:.3}}}",
                r.solver,
                r.off_s,
                r.on_s,
                r.overhead_percent()
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"telemetry_overhead\",\n",
            "  \"steps\": {},\n",
            "  \"reps\": {},\n",
            "  \"threads\": {},\n",
            "  \"solvers\": [\n{}\n  ],\n",
            "  \"telemetry\": {}\n",
            "}}\n"
        ),
        steps,
        reps,
        threads,
        solver_rows.join(",\n"),
        telemetry.to_json(),
    );
    std::fs::write(&out, json).expect("write json");
    println!("wrote {out}");
}
