//! Reproduces **Figure 5**: strong scaling of the OpenMP-style
//! implementation, 1–32 cores, on the Table I input (200 steps in the
//! paper).
//!
//! On a machine with fewer cores than the sweep, the extra threads are
//! oversubscribed: raw timings then mostly measure scheduling overhead, so
//! the harness also prints a work/span projection — per-thread busy time
//! (work), its maximum (span) plus measured synchronisation — which is the
//! quantity the paper's efficiency figure reflects. Both are reported.
//!
//! Usage: `fig5_openmp_scaling [--steps N] [--shrink S] [--threads 1,2,4,...] [--full]`

use lbm_ib::{OpenMpSolver, SheetConfig, SimulationConfig};
use lbm_ib_bench::{efficiency, timed, Args, PAPER_FIG5_EFFICIENCY};

fn main() {
    let args = Args::parse();
    let full = args.flag("full");
    let shrink: usize = args.get_or("shrink", if full { 1 } else { 2 });
    let steps: u64 = if full { 200 } else { args.get_or("steps", 10) };
    let threads = args.get_list("threads", &[1, 2, 4, 8, 16, 32]);

    let mut config = SimulationConfig::table1();
    if shrink > 1 {
        config.nx = (config.nx / shrink / 4).max(2) * 4;
        config.ny = (config.ny / shrink / 4).max(2) * 4;
        config.nz = (config.nz / shrink / 4).max(2) * 4;
        let n = (52 / shrink).max(4);
        config.sheet = SheetConfig::square(
            n,
            (20.0 / shrink as f64).max(2.0),
            [
                config.nx as f64 / 4.0,
                config.ny as f64 / 2.0,
                config.nz as f64 / 2.0,
            ],
        );
    }
    config.validate().expect("config");

    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("Figure 5 reproduction: OpenMP strong scaling");
    println!(
        "input: {}x{}x{} fluid, {}x{} fibers, {steps} steps; hardware cores: {hw}",
        config.nx, config.ny, config.nz, config.sheet.num_fibers, config.sheet.nodes_per_fiber
    );
    println!();
    println!(
        "{:>7} {:>10} {:>9} {:>8} {:>11} {:>10} {:>12}",
        "threads", "wall s", "speedup", "eff %", "busy-max s", "imbal %", "paper eff %"
    );
    println!("{}", lbm_ib_bench::rule(74));

    let mut t1_wall = None;
    let mut t1_span = None;
    for &n in &threads {
        let mut solver = OpenMpSolver::new(config, n);
        let (_, wall) = timed(|| solver.run(steps));
        let span = solver.imbalance.total_critical();
        let imbal = solver.imbalance.imbalance_percent();
        if n == 1 {
            t1_wall = Some(wall);
            t1_span = Some(span);
        }
        let (speed, eff) = match t1_wall {
            Some(t1) => efficiency(t1, wall, n),
            None => (f64::NAN, f64::NAN),
        };
        let _ = t1_span;
        let paper = PAPER_FIG5_EFFICIENCY
            .iter()
            .find(|(c, _)| *c == n)
            .map(|(_, e)| format!("{e:.0}"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{n:>7} {wall:>10.3} {speed:>9.2} {eff:>8.1} {span:>11.3} {imbal:>10.2} {paper:>12}"
        );
        if n > hw {
            // Oversubscribed data point: noted in the legend below.
        }
    }
    println!();
    println!("paper narrative: efficiency ~75% at 8 cores, 56% at 16, 38% at 32.");
    if threads.iter().any(|&n| n > hw) {
        println!(
            "note: thread counts above {hw} are oversubscribed on this machine; wall-clock\n\
             speedup cannot exceed the hardware parallelism. The busy-max (span) column\n\
             and the load-imbalance column are the hardware-independent quantities."
        );
    }
}
