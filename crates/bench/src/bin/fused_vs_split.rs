//! Measures the fused collide–stream sweep against the split kernel 5 +
//! kernel 6 pair and records the numbers in `BENCH_fused.json`:
//!
//! * **sweep pair** — wall time of one collision+streaming pass (split) vs
//!   one fused pass over a warmed state, single-threaded, median of
//!   `--reps` repetitions on the quick_test and 32³ grids;
//! * **full step** — one whole 9-kernel time step of the sequential solver
//!   under each [`KernelPlan`];
//! * **cachesim probe** — the `cachesim` hierarchy replaying the flat
//!   split vs fused address traces, showing the distribution-array
//!   traffic the fusion removes (no post-collision write-back of `f`, no
//!   re-read by streaming).
//!
//! Usage: `fused_vs_split [--reps N] [--steps N] [--out PATH]`

use cachesim::trace::{simulate_flat, simulate_flat_fused};
use lbm_ib::config::KernelPlan;
use lbm_ib::kernels;
use lbm_ib::{SequentialSolver, SheetConfig, SimState, SimulationConfig};
use lbm_ib_bench::Args;

fn warmed(config: SimulationConfig) -> SimState {
    let mut s = SequentialSolver::new(config);
    s.run(3);
    s.state
}

fn grid_32() -> SimulationConfig {
    let mut c = SimulationConfig::quick_test();
    c.nx = 32;
    c.ny = 32;
    c.nz = 32;
    c.sheet = SheetConfig::square(16, 8.0, [12.0, 16.0, 16.0]);
    c
}

/// Median wall time in seconds of `reps` runs of `f`, each on a fresh
/// clone of `state`.
fn median_secs(state: &SimState, reps: usize, mut f: impl FnMut(&mut SimState)) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let mut s = state.clone();
            let t0 = std::time::Instant::now();
            f(&mut s);
            std::hint::black_box(&s.fluid.f_new);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

struct SweepResult {
    grid: &'static str,
    dims: [usize; 3],
    split_s: f64,
    fused_s: f64,
    step_split_s: f64,
    step_fused_s: f64,
}

fn measure_sweeps(name: &'static str, config: SimulationConfig, reps: usize) -> SweepResult {
    let state = warmed(config);
    let split_s = median_secs(&state, reps, |s| {
        kernels::compute_fluid_collision(s);
        kernels::stream_fluid_velocity_distribution(s);
    });
    let fused_s = median_secs(&state, reps, kernels::fused_collide_stream);

    let full = |plan: KernelPlan| {
        let mut cfg = config;
        cfg.plan = plan;
        let mut solver = SequentialSolver::new(cfg);
        solver.run(3); // warm-up
        let mut times: Vec<f64> = (0..reps)
            .map(|_| solver.run(1).wall.as_secs_f64())
            .collect();
        times.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite times"));
        times[times.len() / 2]
    };

    SweepResult {
        grid: name,
        dims: [config.nx, config.ny, config.nz],
        split_s,
        fused_s,
        step_split_s: full(KernelPlan::Split),
        step_fused_s: full(KernelPlan::Fused),
    }
}

fn main() {
    let args = Args::parse();
    let reps: usize = args.get_or("reps", 31);
    let cache_steps: usize = args.get_or("steps", 2);
    let out: String = args.get_or("out", "BENCH_fused.json".to_string());

    println!("fused vs split collide–stream, single thread, {reps} reps (median)");
    println!("{}", lbm_ib_bench::rule(72));

    let results = [
        measure_sweeps("quick_test", SimulationConfig::quick_test(), reps),
        measure_sweeps("32cubed", grid_32(), reps),
    ];
    for r in &results {
        println!(
            "{:<12} sweep: split {:>9.1}us fused {:>9.1}us  speedup {:.2}x",
            r.grid,
            r.split_s * 1e6,
            r.fused_s * 1e6,
            r.split_s / r.fused_s
        );
        println!(
            "{:<12} step : split {:>9.1}us fused {:>9.1}us  speedup {:.2}x",
            "",
            r.step_split_s * 1e6,
            r.step_fused_s * 1e6,
            r.step_split_s / r.step_fused_s
        );
    }

    // Cache probe: whole-grid single-thread trace on the 32³ grid.
    let dims = grid_32().dims();
    let split_miss = simulate_flat(dims, 0..dims.nx, 1, cache_steps);
    let fused_miss = simulate_flat_fused(dims, 0..dims.nx, 1, cache_steps);
    println!("{}", lbm_ib_bench::rule(72));
    println!(
        "cachesim 32cubed x{cache_steps} steps: split {} accesses / {} L1 misses / {} L2 misses",
        split_miss.accesses, split_miss.l1_misses, split_miss.l2_misses
    );
    println!(
        "cachesim 32cubed x{cache_steps} steps: fused {} accesses / {} L1 misses / {} L2 misses",
        fused_miss.accesses, fused_miss.l1_misses, fused_miss.l2_misses
    );
    println!(
        "distribution-array traffic cut: {:.1}% of split accesses removed",
        100.0 * (1.0 - fused_miss.accesses as f64 / split_miss.accesses as f64)
    );

    // Hand-rolled JSON (the workspace is offline: no serde).
    let sweep_json: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"grid\": \"{}\", \"dims\": [{}, {}, {}], ",
                    "\"split_sweep_s\": {:e}, \"fused_sweep_s\": {:e}, ",
                    "\"sweep_speedup\": {:.4}, ",
                    "\"split_step_s\": {:e}, \"fused_step_s\": {:e}, ",
                    "\"step_speedup\": {:.4}}}"
                ),
                r.grid,
                r.dims[0],
                r.dims[1],
                r.dims[2],
                r.split_s,
                r.fused_s,
                r.split_s / r.fused_s,
                r.step_split_s,
                r.step_fused_s,
                r.step_split_s / r.step_fused_s,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"fused_vs_split\",\n",
            "  \"threads\": 1,\n",
            "  \"reps\": {},\n",
            "  \"sweeps\": [\n{}\n  ],\n",
            "  \"cachesim\": {{\n",
            "    \"dims\": [{}, {}, {}],\n",
            "    \"steps\": {},\n",
            "    \"split\": {{\"accesses\": {}, \"l1_misses\": {}, \"l2_misses\": {}}},\n",
            "    \"fused\": {{\"accesses\": {}, \"l1_misses\": {}, \"l2_misses\": {}}},\n",
            "    \"access_reduction_percent\": {:.2}\n",
            "  }}\n",
            "}}\n"
        ),
        reps,
        sweep_json.join(",\n"),
        dims.nx,
        dims.ny,
        dims.nz,
        cache_steps,
        split_miss.accesses,
        split_miss.l1_misses,
        split_miss.l2_misses,
        fused_miss.accesses,
        fused_miss.l1_misses,
        fused_miss.l2_misses,
        100.0 * (1.0 - fused_miss.accesses as f64 / split_miss.accesses as f64),
    );
    std::fs::write(&out, json).expect("write json");
    println!("wrote {out}");
}
