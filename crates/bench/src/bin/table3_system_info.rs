//! Reproduces **Tables III and IV**: the experimental machine description
//! (processors, cache hierarchy, NUMA layout and node distances). The
//! paper's tables describe the 64-core `thog` system; this harness prints
//! the same rows for the machine it runs on, read from /proc and /sys.
//!
//! Usage: `table3_system_info`

use std::fs;
use std::path::Path;

fn read(path: &str) -> Option<String> {
    fs::read_to_string(path).ok().map(|s| s.trim().to_string())
}

fn cpuinfo_field(field: &str) -> Option<String> {
    let text = fs::read_to_string("/proc/cpuinfo").ok()?;
    text.lines()
        .find(|l| l.starts_with(field))
        .and_then(|l| l.split(':').nth(1))
        .map(|v| v.trim().to_string())
}

fn main() {
    println!("Table III reproduction: this machine (paper columns in brackets)");
    println!("{}", "-".repeat(72));

    let model = cpuinfo_field("model name").unwrap_or_else(|| "unknown".into());
    println!("Processor type        : {model}  [AMD Opteron 6380 2.5 GHz]");

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("Logical cores         : {cores}  [4 processors x 16 cores = 64]");

    // Cache hierarchy from sysfs (cpu0's view).
    let cache_dir = "/sys/devices/system/cpu/cpu0/cache";
    if Path::new(cache_dir).exists() {
        for idx in 0..6 {
            let base = format!("{cache_dir}/index{idx}");
            if !Path::new(&base).exists() {
                break;
            }
            let level = read(&format!("{base}/level")).unwrap_or_default();
            let kind = read(&format!("{base}/type")).unwrap_or_default();
            let size = read(&format!("{base}/size")).unwrap_or_default();
            let shared = read(&format!("{base}/shared_cpu_list")).unwrap_or_default();
            println!("L{level} {kind:<12} cache : {size:<8} shared by CPUs {shared}");
        }
    } else {
        println!("cache topology        : not exposed by this kernel");
    }
    println!("  [paper: L1 16 KB/core; L2 8 x 2 MB per 2 cores; L3 2 x 12 MB per 8 cores]");

    // Memory.
    if let Some(mem) = read("/proc/meminfo").and_then(|t| t.lines().next().map(|l| l.to_string())) {
        println!("Memory                : {mem}  [256 GB total, 32 GB per NUMA node]");
    }

    // Table IV: NUMA node distances.
    println!();
    println!("Table IV reproduction: NUMA node distances (numactl --hardware equivalent)");
    println!("{}", "-".repeat(72));
    let node_dir = "/sys/devices/system/node";
    let mut nodes: Vec<usize> = Vec::new();
    if let Ok(entries) = fs::read_dir(node_dir) {
        for e in entries.flatten() {
            let name = e.file_name().to_string_lossy().to_string();
            if let Some(id) = name.strip_prefix("node").and_then(|s| s.parse().ok()) {
                nodes.push(id);
            }
        }
    }
    nodes.sort_unstable();
    if nodes.is_empty() {
        println!("no NUMA information exposed (single-node machine or container)");
        println!("  [paper: 8 NUMA nodes; local distance 10, remote 16 or 22]");
    } else {
        print!("node ");
        for n in &nodes {
            print!("{n:>4}");
        }
        println!();
        for n in &nodes {
            let dist = read(&format!("{node_dir}/node{n}/distance")).unwrap_or_default();
            println!("{n:>4}: {dist}");
        }
        println!("  [paper: 8 nodes, distances 10 local / 16 / 22 remote — up to 2.2x]");
    }

    println!();
    println!(
        "OS                    : {}",
        read("/proc/sys/kernel/osrelease").unwrap_or_default()
    );
    println!("  [paper: Linux 3.9.0, gcc 4.6.3, compiled -O3, run with numactl --interleave=all]");
}
