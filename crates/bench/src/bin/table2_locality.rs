//! Reproduces **Table II**: L1/L2 data-cache miss rates and load imbalance
//! of the OpenMP implementation versus core count.
//!
//! The paper measured miss rates with PAPI hardware counters. This harness
//! substitutes the `cachesim` crate: a set-associative LRU L1→L2 hierarchy
//! with the `thog` machine's geometry (16 KB L1/core, 2 MB L2 per two
//! cores, stream prefetcher), replaying the address trace of one thread's
//! slab for one time step. The L1 rate is calibrated with a dynamic-access
//! multiplier (PAPI counts every load/store the compiled code issues; the
//! trace counts each scalar once — see `MissReport::with_access_multiplier`).
//! Load imbalance is *measured directly* from the real OpenMP solver's
//! per-thread busy times.
//!
//! Usage: `table2_locality [--steps N] [--shrink S] [--cores 1,2,...] [--multiplier R]`

use cachesim::trace::simulate_flat;
use lbm_ib::{OpenMpSolver, SheetConfig, SimulationConfig};
use lbm_ib_bench::{Args, PAPER_TABLE2};

fn main() {
    let args = Args::parse();
    let shrink: usize = args.get_or("shrink", if args.flag("full") { 1 } else { 2 });
    let steps: u64 = args.get_or("steps", 5);
    let cores = args.get_list("cores", &[1, 2, 4, 8, 16, 32]);
    let multiplier: f64 = args.get_or("multiplier", 14.0);

    let mut config = SimulationConfig::table1();
    if shrink > 1 {
        config.nx = (config.nx / shrink / 4).max(2) * 4;
        config.ny = (config.ny / shrink / 4).max(2) * 4;
        config.nz = (config.nz / shrink / 4).max(2) * 4;
        let n = (52 / shrink).max(4);
        config.sheet = SheetConfig::square(
            n,
            (20.0 / shrink as f64).max(2.0),
            [
                config.nx as f64 / 4.0,
                config.ny as f64 / 2.0,
                config.nz as f64 / 2.0,
            ],
        );
    }
    config.validate().expect("config");
    let dims = config.dims();

    println!("Table II reproduction: OpenMP locality and load balance");
    println!(
        "input: {}x{}x{} fluid (per-thread slab of the x axis), access multiplier {multiplier}",
        dims.nx, dims.ny, dims.nz
    );
    println!();
    println!(
        "{:>6} {:>9} {:>9} {:>11} | {:>9} {:>9} {:>11}",
        "cores", "L1 miss%", "L2 miss%", "imbalance%", "paper L1", "paper L2", "paper imbal"
    );
    println!("{}", lbm_ib_bench::rule(76));

    for &n in &cores {
        // Cache model: thread 0's slab; L2 shared by two cores when more
        // than one core is active on the socket.
        let planes = lbm_ib::openmp::balanced_ranges(dims.nx, n)[0].clone();
        let sharers = if n > 1 { 2 } else { 1 };
        let report = simulate_flat(dims, planes, sharers, 2).with_access_multiplier(multiplier);

        // Load imbalance: measured from the real solver.
        let mut solver = OpenMpSolver::new(config, n);
        solver.run(steps);
        let imbal = solver.imbalance.imbalance_percent();

        let paper = PAPER_TABLE2.iter().find(|r| r.0 == n);
        let (p1, p2, pi) = paper
            .map(|r| (r.1, r.2, r.3))
            .unwrap_or((f64::NAN, f64::NAN, f64::NAN));
        println!(
            "{n:>6} {:>9.2} {:>9.2} {:>11.2} | {p1:>9.2} {p2:>9.2} {pi:>11.1}",
            report.l1_miss_percent, report.l2_miss_percent, imbal
        );
    }

    println!();
    println!("shape checks (paper narrative):");
    println!("  - L1 miss rate is small and insensitive to core count");
    println!("  - L2 miss rate is an order of magnitude larger (poor locality)");
    println!("  - load imbalance grows with the core count");
}
