//! Reproduces **Figure 6**: mapping a 4×4×4 fluid grid (2×2×2 cubes of
//! edge 2) onto a 2×2×2 thread mesh with the block `cube2thread`
//! distribution — each thread owns exactly one cube.
//!
//! Also prints the distribution for arbitrary sizes and policies.
//!
//! Usage: `fig6_cube_mapping [--nx 4 --ny 4 --nz 4 --k 2 --threads 8] [--policy block|cyclic]`

use lbm::cube_grid::CubeDims;
use lbm::distribution::{CubeDistribution, Policy, ThreadMesh};
use lbm::grid::Dims;
use lbm_ib_bench::Args;

fn main() {
    let args = Args::parse();
    let nx: usize = args.get_or("nx", 4);
    let ny: usize = args.get_or("ny", 4);
    let nz: usize = args.get_or("nz", 4);
    let k: usize = args.get_or("k", 2);
    let threads: usize = args.get_or("threads", 8);
    let policy = match args.get::<String>("policy").as_deref() {
        Some("cyclic") => Policy::Cyclic,
        Some("blockcyclic") => Policy::BlockCyclic {
            block: args.get_or("block", 2),
        },
        _ => Policy::Block,
    };

    let cdims = CubeDims::new(Dims::new(nx, ny, nz), k);
    let mesh = ThreadMesh::for_threads(threads);
    let dist = CubeDistribution { mesh, policy };

    println!("Figure 6 reproduction: cube2thread mapping");
    println!(
        "fluid grid {nx}x{ny}x{nz}, cube edge {k} -> {}x{}x{} cubes; thread mesh {}x{}x{} ({} threads), {policy:?}",
        cdims.cx, cdims.cy, cdims.cz, mesh.p, mesh.q, mesh.r, mesh.n()
    );
    println!();

    for ci in 0..cdims.cx {
        println!("cube layer ci = {ci}:");
        for cj in 0..cdims.cy {
            let row: Vec<String> = (0..cdims.cz)
                .map(|ck| format!("T{}", dist.cube2thread(&cdims, ci, cj, ck)))
                .collect();
            println!("  {}", row.join(" "));
        }
    }

    let loads = dist.loads(&cdims);
    println!();
    println!("cubes per thread: {loads:?}");
    let max = loads.iter().max().unwrap();
    let min = loads.iter().min().unwrap();
    println!("load balance: min {min}, max {max} cubes/thread");
    if nx == 4 && ny == 4 && nz == 4 && k == 2 && threads == 8 {
        assert!(
            loads.iter().all(|&l| l == 1),
            "Figure 6: each thread owns exactly one cube"
        );
        println!("figure-6 check: each thread owns exactly one cube ✓");
    }
}
