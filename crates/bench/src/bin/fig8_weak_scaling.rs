//! Reproduces **Figure 8**: weak scaling of the OpenMP-style versus the
//! cube-based implementation, 1–64 cores. Per core the fluid grid is fixed
//! (128³ in the paper; scaled down by `--shrink`, default 8); the sheet is
//! fixed at 104×104 fiber nodes (scaled likewise). Ideal weak scaling is a
//! flat execution-time curve; the paper reports the OpenMP curve growing
//! much faster than the cube curve, with the cube version up to 53% better
//! at 64 cores.
//!
//! With fewer hardware cores than the sweep the wall-clock numbers measure
//! oversubscription; the harness therefore also reports per-thread busy
//! time (work/cores — the hardware-independent weak-scaling quantity) and
//! the synchronisation + imbalance overhead each design pays, which is
//! where the paper's gap comes from.
//!
//! Usage: `fig8_weak_scaling [--steps N] [--shrink S] [--cores 1,2,...] [--full]`

use cachesim::trace::{simulate_cube, simulate_flat};
use lbm::cube_grid::CubeDims;
use lbm::distribution::CubeDistribution;
use lbm_ib::barrier::BarrierKind;
use lbm_ib::{CubeSolver, OpenMpSolver, SimulationConfig};
use lbm_ib_bench::{timed, Args, PAPER_FIG8_FINAL_GAP_PERCENT};

fn main() {
    let args = Args::parse();
    let full = args.flag("full");
    let shrink: usize = if full { 1 } else { args.get_or("shrink", 8) };
    let steps: u64 = args.get_or("steps", if full { 200 } else { 5 });
    let cores = args.get_list("cores", &[1, 2, 4, 8, 16, 32, 64]);

    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("Figure 8 reproduction: weak scaling, OpenMP vs cube-based");
    println!(
        "per-core grid: {}^3 / shrink {shrink}; {steps} steps; hardware cores: {hw}",
        128
    );
    println!();
    println!(
        "{:>6} {:>16} | {:>10} {:>10} {:>8} | {:>10} {:>10} {:>8} | {:>7}",
        "cores",
        "grid",
        "omp wall",
        "omp busy",
        "omp im%",
        "cube wall",
        "cube busy",
        "cube im%",
        "gap %"
    );
    println!("{}", lbm_ib_bench::rule(104));

    let mut rows = Vec::new();
    for &n in &cores {
        if !n.is_power_of_two() {
            eprintln!("skipping non-power-of-two core count {n}");
            continue;
        }
        let config = SimulationConfig::fig8_scaled(n, shrink);
        config.validate().expect("config");
        let label = format!("{}x{}x{}", config.nx, config.ny, config.nz);

        let mut omp = OpenMpSolver::new(config, n);
        let (_, omp_wall) = timed(|| omp.run(steps));
        let omp_busy = omp.imbalance.total_critical();
        let omp_im = omp.imbalance.imbalance_percent();

        let mut cube = CubeSolver::new(config, n);
        if args.flag("std-barrier") {
            cube.barrier_kind = BarrierKind::Std;
        }
        let (_, cube_wall) = timed(|| cube.run(steps));
        let cube_busy = cube.imbalance.total_critical();
        let cube_im = cube.imbalance.imbalance_percent();

        // The paper's metric: how much slower OpenMP is than cube-based.
        let gap = 100.0 * (omp_wall - cube_wall) / cube_wall;
        println!(
            "{n:>6} {label:>16} | {omp_wall:>10.3} {omp_busy:>10.3} {omp_im:>8.2} | {cube_wall:>10.3} {cube_busy:>10.3} {cube_im:>8.2} | {gap:>7.1}"
        );
        rows.push((n, omp_wall, cube_wall));
    }

    println!();
    if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
        let omp_growth = 100.0 * (last.1 / first.1 - 1.0);
        let cube_growth = 100.0 * (last.2 / first.2 - 1.0);
        println!(
            "execution-time growth {}→{} cores: OpenMP +{omp_growth:.0}%, cube +{cube_growth:.0}%",
            first.0, last.0
        );
        println!(
            "final gap: {:.1}% (paper: up to {PAPER_FIG8_FINAL_GAP_PERCENT:.0}% at 64 cores)",
            100.0 * (last.1 - last.2) / last.2
        );
    }
    if cores.iter().any(|&n| n > hw) {
        println!(
            "note: counts above {hw} are oversubscribed here; on such points the wall\n\
             numbers include scheduler noise — the paper's curve shape should be judged\n\
             from the busy columns and the imbalance/synchronisation overheads."
        );
    }

    if args.flag("cachesim") {
        // The paper attributes the cube version's win to locality: a
        // smaller working set easing the memory-bandwidth bottleneck.
        // Replay one thread's per-step access trace of each layout through
        // the simulated thog cache hierarchy at each weak-scaling point.
        println!();
        println!(
            "locality mechanism (cache simulator, one thread's work, L2 shared when cores > 1):"
        );
        println!("DRAM B/node = bytes fetched from memory per owned fluid node per step —");
        println!("the bandwidth-bottleneck quantity the paper's argument rests on.");
        println!(
            "{:>6} {:>16} | {:>9} {:>9} {:>11} | {:>9} {:>9} {:>11}",
            "cores",
            "grid",
            "flat L1%",
            "flat L2%",
            "flat DRAM/n",
            "cube L1%",
            "cube L2%",
            "cube DRAM/n"
        );
        println!("{}", lbm_ib_bench::rule(96));
        for &n in &cores {
            if !n.is_power_of_two() {
                continue;
            }
            let config = SimulationConfig::fig8_scaled(n, shrink);
            let dims = config.dims();
            let sharers = if n > 1 { 2 } else { 1 };
            let slab = lbm_ib::openmp::balanced_ranges(dims.nx, n)[0].clone();
            let flat = simulate_flat(dims, slab, sharers, 1);
            let cdims = CubeDims::new(dims, config.cube_k);
            let dist = CubeDistribution::block(n);
            let owner = dist.ownership_table(&cdims);
            let my_cubes: Vec<usize> = (0..cdims.num_cubes()).filter(|&c| owner[c] == 0).collect();
            let cube = simulate_cube(cdims, &my_cubes, sharers, 1);
            let flat_nodes = (dims.n() / n).max(1) as f64;
            let cube_nodes = (my_cubes.len() * cdims.nodes_per_cube()).max(1) as f64;
            println!(
                "{n:>6} {:>16} | {:>9.2} {:>9.2} {:>11.1} | {:>9.2} {:>9.2} {:>11.1}",
                format!("{}x{}x{}", dims.nx, dims.ny, dims.nz),
                flat.l1_miss_percent,
                flat.l2_miss_percent,
                flat.l2_misses as f64 * 64.0 / flat_nodes,
                cube.l1_miss_percent,
                cube.l2_miss_percent,
                cube.l2_misses as f64 * 64.0 / cube_nodes,
            );
        }
    }
}
