//! Shared helpers for the reproduction harnesses: a tiny flag parser and
//! table-printing utilities. One binary per paper table/figure lives in
//! `src/bin/`; criterion microbenchmarks live in `benches/`.

use std::time::Instant;

/// Minimal `--flag value` parser over `std::env::args`.
///
/// Every harness accepts `--steps N` (time steps per measurement),
/// `--shrink N` (divide the paper's problem size by N per axis) and
/// `--full` (run the paper's exact sizes and step counts; slow).
#[derive(Clone, Debug)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn parse() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// For tests: build from a list.
    pub fn from_list(list: &[&str]) -> Self {
        Self {
            raw: list.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// True if `--name` is present.
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == &format!("--{name}"))
    }

    /// Value of `--name <v>`, parsed.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        let key = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &key)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
    }

    /// `--name` with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name).unwrap_or(default)
    }

    /// Comma-separated list value, e.g. `--threads 1,2,4,8`.
    pub fn get_list(&self, name: &str, default: &[usize]) -> Vec<usize> {
        let key = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &key)
            .and_then(|i| self.raw.get(i + 1))
            .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
            .unwrap_or_else(|| default.to_vec())
    }
}

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

/// Formats a speedup/efficiency row.
pub fn efficiency(t1: f64, tn: f64, n: usize) -> (f64, f64) {
    let speedup = t1 / tn;
    (speedup, 100.0 * speedup / n as f64)
}

/// The paper's Table I percentages, for side-by-side printing.
pub const PAPER_TABLE1: [(usize, &str, f64); 9] = [
    (5, "compute_fluid_collision", 73.2),
    (7, "update_fluid_velocity", 12.6),
    (9, "copy_fluid_velocity_distribution", 5.9),
    (6, "stream_fluid_velocity_distribution", 5.4),
    (4, "spread_force_from_fibers_to_fluid", 1.4),
    (8, "move_fibers", 0.7),
    (1, "compute_bending_force_in_fibers", 0.03),
    (2, "compute_stretching_force_in_fibers", 0.02),
    (3, "compute_elastic_force_in_fibers", 0.00),
];

/// The paper's Table II rows: (cores, L1 miss %, L2 miss %, imbalance %).
pub const PAPER_TABLE2: [(usize, f64, f64, f64); 6] = [
    (1, 1.76, 26.1, 0.0),
    (2, 1.75, 26.1, 1.8),
    (4, 1.75, 26.1, 1.4),
    (8, 1.75, 26.2, 5.1),
    (16, 1.74, 27.1, 11.0),
    (32, 1.76, 27.6, 13.0),
];

/// The paper's Figure 5 parallel efficiencies (strong scaling, OpenMP).
pub const PAPER_FIG5_EFFICIENCY: [(usize, f64); 4] =
    [(1, 100.0), (8, 75.0), (16, 56.0), (32, 38.0)];

/// The paper's Figure 8 narrative: per-doubling execution-time growth of
/// each implementation (percent increase when cores double), and the final
/// gap. OpenMP: +25% (2→4), +36% (4→8), ~+22% (8→32 per doubling), +42%
/// (32→64). Cube: +3% (1→2), ~+13% (2→32 per doubling), +18% (32→64);
/// cube beats OpenMP by up to 53% at 64 cores.
pub const PAPER_FIG8_FINAL_GAP_PERCENT: f64 = 53.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_flags_and_values() {
        let a = Args::from_list(&["--steps", "20", "--full", "--threads", "1,2,4"]);
        assert!(a.flag("full"));
        assert!(!a.flag("quick"));
        assert_eq!(a.get::<u64>("steps"), Some(20));
        assert_eq!(a.get_or::<u64>("missing", 7), 7);
        assert_eq!(a.get_list("threads", &[9]), vec![1, 2, 4]);
        assert_eq!(a.get_list("other", &[9]), vec![9]);
    }

    #[test]
    fn efficiency_math() {
        let (s, e) = efficiency(8.0, 2.0, 8);
        assert_eq!(s, 4.0);
        assert_eq!(e, 50.0);
    }

    #[test]
    fn paper_constants_are_consistent() {
        let total: f64 = PAPER_TABLE1.iter().map(|r| r.2).sum();
        assert!(
            total > 99.0 && total <= 100.5,
            "Table I sums to ~100%: {total}"
        );
        assert_eq!(PAPER_TABLE2.len(), 6);
    }
}
