//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! copy-vs-swap (kernel 9), cube distribution policy, barrier flavour,
//! delta-kernel support width, cube edge length, and cache-layout effects
//! via the cachesim substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cachesim::trace::{simulate_cube, simulate_flat};
use ib::delta::DeltaKind;
use lbm::cube_grid::CubeDims;
use lbm::distribution::Policy;
use lbm::grid::Dims;
use lbm_ib::barrier::BarrierKind;
use lbm_ib::openmp::Schedule;
use lbm_ib::{CubeSolver, OpenMpSolver, SimulationConfig};

fn config_with_k(k: usize) -> SimulationConfig {
    let mut c = SimulationConfig::quick_test();
    c.nx = 32;
    c.ny = 32;
    c.nz = 32;
    c.cube_k = k;
    c.sheet = lbm_ib::SheetConfig::square(16, 8.0, [12.0, 16.0, 16.0]);
    c
}

fn cube_edge_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cube_edge_k");
    group.sample_size(10);
    for k in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut solver = CubeSolver::new(config_with_k(k), 2);
            solver.run(1);
            b.iter(|| solver.run(2));
        });
    }
    group.finish();
}

fn distribution_policy_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cube_policy");
    group.sample_size(10);
    for (name, policy) in [
        ("block", Policy::Block),
        ("cyclic", Policy::Cyclic),
        ("block_cyclic_2", Policy::BlockCyclic { block: 2 }),
    ] {
        group.bench_function(name, |b| {
            let mut solver = CubeSolver::new(config_with_k(4), 4);
            solver.policy = policy;
            solver.run(1);
            b.iter(|| solver.run(2));
        });
    }
    group.finish();
}

fn barrier_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier_kind");
    group.sample_size(10);
    for (name, kind) in [("spin", BarrierKind::Spin), ("std", BarrierKind::Std)] {
        group.bench_function(name, |b| {
            let mut solver = CubeSolver::new(config_with_k(4), 4);
            solver.barrier_kind = kind;
            solver.run(1);
            b.iter(|| solver.run(2));
        });
    }
    group.finish();
}

fn delta_support_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_kind_step");
    group.sample_size(10);
    for (name, kind) in [
        ("hat2", DeltaKind::Hat2),
        ("roma3", DeltaKind::Roma3),
        ("peskin4", DeltaKind::Peskin4),
        ("peskin4poly", DeltaKind::Peskin4Poly),
    ] {
        group.bench_function(name, |b| {
            let mut cfg = config_with_k(4);
            cfg.delta = kind;
            let mut solver = lbm_ib::SequentialSolver::new(cfg);
            solver.run(2);
            b.iter(|| solver.step());
        });
    }
    group.finish();
}

fn schedule_ablation(c: &mut Criterion) {
    // The paper tried static vs dynamic OpenMP scheduling and saw no
    // difference on balanced inputs; verify that here.
    let mut group = c.benchmark_group("openmp_schedule");
    group.sample_size(10);
    for (name, schedule) in [
        ("static", Schedule::Static),
        ("dynamic_x4", Schedule::Dynamic { factor: 4 }),
    ] {
        group.bench_function(name, |b| {
            let mut solver = OpenMpSolver::new(config_with_k(4), 2);
            solver.schedule = schedule;
            solver.run(2);
            b.iter(|| solver.step());
        });
    }
    group.finish();
}

fn layout_cache_ablation(c: &mut Criterion) {
    // Not a timing ablation: replays the cache simulator for both layouts
    // and benches the simulator itself (trace replay throughput).
    let mut group = c.benchmark_group("cachesim_replay");
    group.sample_size(10);
    let dims = Dims::new(32, 32, 32);
    group.bench_function("flat_layout", |b| {
        b.iter(|| simulate_flat(dims, 0..32, 2, 1));
    });
    group.bench_function("cube_layout", |b| {
        let cdims = CubeDims::new(dims, 4);
        let cubes: Vec<usize> = (0..cdims.num_cubes()).collect();
        b.iter(|| simulate_cube(cdims, &cubes, 2, 1));
    });
    group.finish();
}

criterion_group!(
    benches,
    cube_edge_ablation,
    distribution_policy_ablation,
    barrier_ablation,
    delta_support_ablation,
    schedule_ablation,
    layout_cache_ablation
);
criterion_main!(benches);
