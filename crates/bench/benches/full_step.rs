//! Criterion benchmarks of the full coupled time step for all three
//! solvers — the per-step cost behind Figures 5 and 8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lbm_ib::{CubeSolver, OpenMpSolver, SequentialSolver, SimulationConfig};

fn config() -> SimulationConfig {
    let mut c = SimulationConfig::quick_test();
    c.nx = 32;
    c.ny = 32;
    c.nz = 32;
    c.sheet = lbm_ib::SheetConfig::square(16, 8.0, [12.0, 16.0, 16.0]);
    c
}

fn sequential_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_step");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        let mut solver = SequentialSolver::new(config());
        solver.run(2); // warm
        b.iter(|| solver.step());
    });
    group.finish();
}

fn openmp_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_step_openmp");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &n| {
            let mut solver = OpenMpSolver::new(config(), n);
            solver.run(2);
            b.iter(|| solver.step());
        });
    }
    group.finish();
}

fn cube_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_step_cube");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &n| {
            let mut solver = CubeSolver::new(config(), n);
            solver.run(2);
            // One run() call per iteration batch: the cube solver's unit of
            // work is a worker-team launch, so measure runs of 4 steps.
            b.iter(|| solver.run(4));
        });
    }
    group.finish();
}

criterion_group!(benches, sequential_step, openmp_step, cube_step);
criterion_main!(benches);
