//! Split collide+stream pair vs the fused single-sweep kernel, per sweep
//! and per full time step, on the warmed quick_test and 32³ states. The
//! `fused_vs_split` bin distills the same comparison into
//! `BENCH_fused.json`; this group keeps the criterion-side history.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use lbm_ib::config::KernelPlan;
use lbm_ib::kernels;
use lbm_ib::{SequentialSolver, SimState, SimulationConfig};

fn warmed(config: SimulationConfig) -> SimState {
    let mut s = SequentialSolver::new(config);
    s.run(3);
    s.state
}

fn bench_32() -> SimulationConfig {
    let mut c = SimulationConfig::quick_test();
    c.nx = 32;
    c.ny = 32;
    c.nz = 32;
    c.sheet = lbm_ib::SheetConfig::square(16, 8.0, [12.0, 16.0, 16.0]);
    c
}

fn sweep_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_vs_split/sweep");
    group.sample_size(20);
    for (name, config) in [
        ("quick_test", SimulationConfig::quick_test()),
        ("32cubed", bench_32()),
    ] {
        group.bench_function(format!("split/{name}"), |b| {
            b.iter_batched(
                || warmed(config),
                |mut s| {
                    kernels::compute_fluid_collision(&mut s);
                    kernels::stream_fluid_velocity_distribution(&mut s);
                    s
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_function(format!("fused/{name}"), |b| {
            b.iter_batched(
                || warmed(config),
                |mut s| {
                    kernels::fused_collide_stream(&mut s);
                    s
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn full_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_vs_split/full_step");
    group.sample_size(10);
    for plan in [KernelPlan::Split, KernelPlan::Fused] {
        let label = match plan {
            KernelPlan::Split => "split",
            KernelPlan::Fused => "fused",
        };
        group.bench_function(format!("seq/{label}"), |b| {
            b.iter_batched(
                || {
                    let mut config = bench_32();
                    config.plan = plan;
                    let mut s = SequentialSolver::new(config);
                    s.run(3);
                    s
                },
                |mut s| {
                    s.run(1);
                    s
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, sweep_pair, full_step);
criterion_main!(benches);
