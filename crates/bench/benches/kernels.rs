//! Criterion microbenchmarks of the nine LBM-IB kernels (Table I's rows as
//! individually measurable units) plus the coupling primitives.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use ib::delta::DeltaKind;
use ib::forces;
use ib::sheet::FiberSheet;
use lbm::boundary::BoundaryConfig;
use lbm::collision::{bgk_collide_node, collide_grid, trt_collide_node, Relaxation};
use lbm::grid::{Dims, FluidGrid};
use lbm::lattice::Q;
use lbm::macroscopic::{initialize_equilibrium, update_velocity_shifted};
use lbm::streaming::{stream_pull, stream_push};
use lbm_ib::kernels;
use lbm_ib::{SimState, SimulationConfig};

fn bench_config() -> SimulationConfig {
    let mut c = SimulationConfig::quick_test();
    c.nx = 32;
    c.ny = 32;
    c.nz = 32;
    c.sheet = lbm_ib::SheetConfig::square(16, 8.0, [12.0, 16.0, 16.0]);
    c
}

fn warmed_state() -> SimState {
    let mut s = lbm_ib::SequentialSolver::new(bench_config());
    s.run(3);
    s.state
}

fn grid_32() -> FluidGrid {
    let mut g = FluidGrid::new(Dims::new(32, 32, 32));
    initialize_equilibrium(
        &mut g,
        |_, _, _| 1.0,
        |x, y, _| {
            [
                0.01 * (x as f64 * 0.2).sin(),
                0.01 * (y as f64 * 0.3).cos(),
                0.0,
            ]
        },
    );
    g
}

fn node_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("node");
    group.sample_size(20);
    let mut f = [0.0f64; Q];
    for (i, v) in f.iter_mut().enumerate() {
        *v = lbm::lattice::W[i];
    }
    group.bench_function("bgk_collide_node", |b| {
        b.iter(|| {
            let mut fl = f;
            bgk_collide_node(
                black_box(&mut fl),
                1.0,
                [0.01, 0.02, 0.0],
                [1e-5, 0.0, 0.0],
                0.8,
            );
            fl
        })
    });
    group.bench_function("trt_collide_node", |b| {
        b.iter(|| {
            let mut fl = f;
            trt_collide_node(
                black_box(&mut fl),
                1.0,
                [0.01, 0.02, 0.0],
                [1e-5, 0.0, 0.0],
                0.8,
            );
            fl
        })
    });
    group.bench_function("delta_peskin4_eval3", |b| {
        b.iter(|| DeltaKind::Peskin4.eval3(black_box(0.3), black_box(-0.7), black_box(1.2)))
    });
    group.finish();
}

fn fluid_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("fluid_32cubed");
    group.sample_size(10);
    group.bench_function("k5_collision", |b| {
        b.iter_batched(
            grid_32,
            |mut g| {
                collide_grid(&mut g, Relaxation::new(0.8));
                g
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("k6_stream_push", |b| {
        b.iter_batched(
            grid_32,
            |mut g| {
                stream_push(&mut g);
                g
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("k6_stream_pull", |b| {
        b.iter_batched(
            grid_32,
            |mut g| {
                stream_pull(&mut g);
                g
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("k7_update_velocity", |b| {
        b.iter_batched(
            grid_32,
            |mut g| {
                update_velocity_shifted(&mut g, 0.8);
                g
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("k9_copy", |b| {
        b.iter_batched(
            grid_32,
            |mut g| {
                g.copy_distributions();
                g
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("k9_swap_alternative", |b| {
        b.iter_batched(
            grid_32,
            |mut g| {
                g.swap_distributions();
                g
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn fiber_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("fiber_52x52");
    group.sample_size(20);
    let make_sheet = || {
        let mut s = FiberSheet::paper_sheet(52, 20.0, [30.0, 32.0, 32.0], 1e-3, 3e-2);
        for (i, p) in s.pos.iter_mut().enumerate() {
            p[0] += 0.01 * ((i % 17) as f64 - 8.0);
        }
        s
    };
    group.bench_function("k1_bending", |b| {
        b.iter_batched(
            make_sheet,
            |mut s| {
                forces::compute_bending_force(&mut s);
                s
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("k2_stretching", |b| {
        b.iter_batched(
            make_sheet,
            |mut s| {
                forces::compute_stretching_force(&mut s);
                s
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("k3_elastic", |b| {
        b.iter_batched(
            make_sheet,
            |mut s| {
                forces::compute_elastic_force(&mut s);
                s
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn coupling_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("coupling");
    group.sample_size(10);
    group.bench_function("k4_spread", |b| {
        b.iter_batched(
            warmed_state,
            |mut s| {
                kernels::spread_force_from_fibers_to_fluid(&mut s);
                s
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("k8_move_fibers", |b| {
        b.iter_batched(
            warmed_state,
            |mut s| {
                kernels::move_fibers(&mut s);
                s
            },
            BatchSize::LargeInput,
        )
    });
    let bc = BoundaryConfig::periodic();
    let g = grid_32();
    group.bench_function("interpolate_velocity_one_node", |b| {
        b.iter(|| {
            ib::interp::interpolate_velocity(
                black_box([12.3, 15.7, 16.1]),
                DeltaKind::Peskin4,
                Dims::new(32, 32, 32),
                &bc,
                &g,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    node_kernels,
    fluid_kernels,
    fiber_kernels,
    coupling_kernels
);
criterion_main!(benches);
