//! Minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, so the workspace's `harness = false` benches build and run in
//! an offline container.
//!
//! It implements the slice of the API the benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros — with straightforward
//! wall-clock timing: a short warm-up, then `sample_size` samples whose
//! median and spread are printed. No statistical analysis, plotting, or
//! baseline storage; runs are honest but coarse, good enough for the
//! relative comparisons the paper's tables make.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stand-in always runs one
/// setup per measured batch, so the variants only tune batch length.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// The measurement driver handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Skip the warm-up call (set in `--test` mode, where each benchmark
    /// body must run exactly once).
    warmup: bool,
    /// Collected per-iteration times, filled by `iter`/`iter_batched`.
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` repeatedly (one warm-up call, then `samples`
    /// measured calls).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.warmup {
            std_black_box(routine());
        }
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std_black_box(routine());
            self.results.push(t0.elapsed());
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.warmup {
            std_black_box(routine(setup()));
        }
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            std_black_box(routine(input));
            self.results.push(t0.elapsed());
        }
    }
}

fn report(group: &str, name: &str, results: &mut [Duration]) {
    if results.is_empty() {
        println!("{group}/{name}: no samples");
        return;
    }
    results.sort_unstable();
    let median = results[results.len() / 2];
    let lo = results[0];
    let hi = results[results.len() - 1];
    let full = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    println!(
        "{full:<44} median {median:>12.3?}   range [{lo:.3?} .. {hi:.3?}]   n={}",
        results.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    test_mode: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark (ignored in
    /// `--test` mode, which pins everything to a single iteration).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.test_mode {
            self.samples = n.max(1);
        }
        self
    }

    /// Sets a target measurement time. The stand-in ignores it (sample
    /// count alone bounds the run) but keeps the API.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            warmup: !self.test_mode,
            results: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &id.id, &mut b.results);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            warmup: !self.test_mode,
            results: Vec::new(),
        };
        f(&mut b, input);
        report(&self.name, &id.id, &mut b.results);
        self
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    default_samples: usize,
    test_mode: bool,
}

impl Criterion {
    /// Driver with the stand-in's default sample count (20). Mirroring real
    /// criterion, a `--test` argument on the bench binary switches to test
    /// mode: every benchmark body runs exactly once, unmeasured-in-spirit —
    /// CI smoke jobs use this to prove the benches still execute without
    /// paying measurement time.
    pub fn new() -> Self {
        Self {
            default_samples: 20,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }

    /// Forces or clears test mode regardless of the command line.
    pub fn with_test_mode(mut self, test_mode: bool) -> Self {
        self.test_mode = test_mode;
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.test_mode {
            1
        } else if self.default_samples == 0 {
            20
        } else {
            self.default_samples
        };
        BenchmarkGroup {
            name: name.into(),
            samples,
            test_mode: self.test_mode,
            _parent: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.test_mode {
            1
        } else if self.default_samples == 0 {
            20
        } else {
            self.default_samples
        };
        let mut b = Bencher {
            samples,
            warmup: !self.test_mode,
            results: Vec::new(),
        };
        f(&mut b);
        report("", name, &mut b.results);
        self
    }
}

/// Declares a benchmark group function list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        // one warm-up + three samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn test_mode_pins_every_benchmark_to_one_iteration() {
        let mut c = Criterion::new().with_test_mode(true);
        let mut runs = 0;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1, "ungrouped bench must run exactly once");

        let mut group = c.benchmark_group("g");
        group.sample_size(50); // ignored in test mode
        let mut grouped_runs = 0;
        group.bench_function("once", |b| b.iter(|| grouped_runs += 1));
        assert_eq!(grouped_runs, 1, "grouped bench must run exactly once");
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut setups = 0;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter_batched(
                || {
                    setups += 1;
                    x
                },
                |v| v * 2,
                BatchSize::LargeInput,
            )
        });
        assert_eq!(setups, 3);
    }
}
