//! Memory-trace generators replaying the access patterns of the four
//! fluid-dominant LBM-IB kernels (collision, streaming, velocity update,
//! buffer copy — 97% of the run time per Table I) on both storage layouts.
//!
//! The trace is what one *thread* touches during one time step: the flat
//! layout walks its x-slab once per kernel (the OpenMP version), the cube
//! layout walks its cubes with collision and streaming fused per cube
//! (loop 2 of Algorithm 4). Fiber kernels are omitted: they account for
//! ~2% of accesses at the paper's sheet sizes.
//!
//! Address map: the fluid arrays are laid out back to back in one virtual
//! allocation, elements of 8 bytes, matching the solver structs.

use lbm::cube_grid::CubeDims;
use lbm::grid::Dims;
use lbm::lattice::{E, Q};

use crate::hierarchy::Hierarchy;

/// Byte-address map of the fluid arrays for a grid of `n` nodes.
#[derive(Clone, Copy, Debug)]
pub struct MemoryMap {
    n: u64,
    base_f: u64,
    base_f_new: u64,
    base_rho: u64,
    base_u: u64,     // ux, uy, uz consecutive arrays
    base_ueq: u64,   // ueqx..z
    base_force: u64, // fx..z
}

impl MemoryMap {
    /// Builds the map for `n` nodes.
    pub fn new(n: usize) -> Self {
        let n = n as u64;
        let f_bytes = n * Q as u64 * 8;
        let s_bytes = n * 8;
        let base_f = 0;
        let base_f_new = base_f + f_bytes;
        let base_rho = base_f_new + f_bytes;
        let base_u = base_rho + s_bytes;
        let base_ueq = base_u + 3 * s_bytes;
        let base_force = base_ueq + 3 * s_bytes;
        Self {
            n,
            base_f,
            base_f_new,
            base_rho,
            base_u,
            base_ueq,
            base_force,
        }
    }

    #[inline]
    pub fn f(&self, node: usize, dir: usize) -> u64 {
        self.base_f + (node as u64 * Q as u64 + dir as u64) * 8
    }
    #[inline]
    pub fn f_new(&self, node: usize, dir: usize) -> u64 {
        self.base_f_new + (node as u64 * Q as u64 + dir as u64) * 8
    }
    #[inline]
    pub fn rho(&self, node: usize) -> u64 {
        self.base_rho + node as u64 * 8
    }
    #[inline]
    pub fn u(&self, axis: usize, node: usize) -> u64 {
        self.base_u + (axis as u64 * self.n + node as u64) * 8
    }
    #[inline]
    pub fn ueq(&self, axis: usize, node: usize) -> u64 {
        self.base_ueq + (axis as u64 * self.n + node as u64) * 8
    }
    #[inline]
    pub fn force(&self, axis: usize, node: usize) -> u64 {
        self.base_force + (axis as u64 * self.n + node as u64) * 8
    }
}

/// Emits the collision accesses for one node (kernel 5): macroscopic reads,
/// then a read-modify-write of the 19 populations.
#[inline]
fn emit_collision(map: &MemoryMap, node: usize, emit: &mut impl FnMut(u64)) {
    emit(map.rho(node));
    for a in 0..3 {
        emit(map.ueq(a, node));
    }
    for i in 0..Q {
        emit(map.f(node, i));
        emit(map.f(node, i)); // write back
    }
}

/// Emits the push-streaming accesses for one node (kernel 6): read each
/// population, write it into the (periodically wrapped) neighbour's slot.
#[inline]
fn emit_stream(
    map: &MemoryMap,
    dims: Dims,
    node_of: &impl Fn(usize, usize, usize) -> usize,
    x: usize,
    y: usize,
    z: usize,
    node: usize,
    emit: &mut impl FnMut(u64),
) {
    emit(map.f(node, 0));
    emit(map.f_new(node, 0));
    for (i, e) in E.iter().enumerate().skip(1) {
        emit(map.f(node, i));
        let (xn, yn, zn) = dims.wrap(x, y, z, e[0], e[1], e[2]);
        emit(map.f_new(node_of(xn, yn, zn), i));
    }
}

/// Emits the fused collide–stream accesses for one node (kernels 5+6 in a
/// single sweep): macroscopic reads, one read of each population (the BGK
/// relaxation happens in registers), and the streamed write into the
/// neighbour's `f_new` slot. Relative to [`emit_collision`] +
/// [`emit_stream`], the `Q` post-collision write-backs into `f` and the
/// `Q` re-reads of `f` disappear — the distribution arrays are touched
/// twice per node instead of four times.
#[inline]
fn emit_fused(
    map: &MemoryMap,
    dims: Dims,
    node_of: &impl Fn(usize, usize, usize) -> usize,
    x: usize,
    y: usize,
    z: usize,
    node: usize,
    emit: &mut impl FnMut(u64),
) {
    emit(map.rho(node));
    for a in 0..3 {
        emit(map.ueq(a, node));
    }
    emit(map.f(node, 0));
    emit(map.f_new(node, 0));
    for (i, e) in E.iter().enumerate().skip(1) {
        emit(map.f(node, i));
        let (xn, yn, zn) = dims.wrap(x, y, z, e[0], e[1], e[2]);
        emit(map.f_new(node_of(xn, yn, zn), i));
    }
}

/// Emits the velocity-update accesses for one node (kernel 7).
#[inline]
fn emit_update(map: &MemoryMap, node: usize, emit: &mut impl FnMut(u64)) {
    for i in 0..Q {
        emit(map.f_new(node, i));
    }
    for a in 0..3 {
        emit(map.force(a, node));
    }
    emit(map.rho(node));
    for a in 0..3 {
        emit(map.u(a, node));
        emit(map.ueq(a, node));
    }
}

/// Emits the buffer-copy accesses for one node (kernel 9).
#[inline]
fn emit_copy(map: &MemoryMap, node: usize, emit: &mut impl FnMut(u64)) {
    for i in 0..Q {
        emit(map.f_new(node, i));
        emit(map.f(node, i));
    }
}

/// One time step of the OpenMP (flat, node-major) layout for the thread
/// owning the x-planes `x_range`: four separate whole-slab passes.
pub fn flat_step_trace(dims: Dims, x_range: std::ops::Range<usize>, mut emit: impl FnMut(u64)) {
    let map = MemoryMap::new(dims.n());
    let node_of = |x: usize, y: usize, z: usize| dims.idx(x, y, z);
    // Kernel 5.
    for x in x_range.clone() {
        for y in 0..dims.ny {
            for z in 0..dims.nz {
                emit_collision(&map, dims.idx(x, y, z), &mut emit);
            }
        }
    }
    // Kernel 6.
    for x in x_range.clone() {
        for y in 0..dims.ny {
            for z in 0..dims.nz {
                let node = dims.idx(x, y, z);
                emit_stream(&map, dims, &node_of, x, y, z, node, &mut emit);
            }
        }
    }
    // Kernel 7.
    for x in x_range.clone() {
        for y in 0..dims.ny {
            for z in 0..dims.nz {
                emit_update(&map, dims.idx(x, y, z), &mut emit);
            }
        }
    }
    // Kernel 9.
    for x in x_range {
        for y in 0..dims.ny {
            for z in 0..dims.nz {
                emit_copy(&map, dims.idx(x, y, z), &mut emit);
            }
        }
    }
}

/// One time step of the flat layout under the fused kernel plan: kernels
/// 5+6 collapse into one sweep (see [`emit_fused`]); kernels 7 and 9 are
/// unchanged.
pub fn flat_fused_step_trace(
    dims: Dims,
    x_range: std::ops::Range<usize>,
    mut emit: impl FnMut(u64),
) {
    let map = MemoryMap::new(dims.n());
    let node_of = |x: usize, y: usize, z: usize| dims.idx(x, y, z);
    // Fused kernels 5+6.
    for x in x_range.clone() {
        for y in 0..dims.ny {
            for z in 0..dims.nz {
                let node = dims.idx(x, y, z);
                emit_fused(&map, dims, &node_of, x, y, z, node, &mut emit);
            }
        }
    }
    // Kernel 7.
    for x in x_range.clone() {
        for y in 0..dims.ny {
            for z in 0..dims.nz {
                emit_update(&map, dims.idx(x, y, z), &mut emit);
            }
        }
    }
    // Kernel 9.
    for x in x_range {
        for y in 0..dims.ny {
            for z in 0..dims.nz {
                emit_copy(&map, dims.idx(x, y, z), &mut emit);
            }
        }
    }
}

/// One time step of the cube-centric layout for the thread owning `cubes`:
/// collision and streaming fused per cube (loop 2 of Algorithm 4), then a
/// cube loop for the update, then a cube loop for the copy.
pub fn cube_step_trace(cdims: CubeDims, cubes: &[usize], mut emit: impl FnMut(u64)) {
    let dims = cdims.dims;
    let map = MemoryMap::new(dims.n());
    let npc = cdims.nodes_per_cube();
    let node_of = |x: usize, y: usize, z: usize| cdims.flat_of_global(x, y, z);
    // Loop 2: collide + stream per cube.
    for &cube in cubes {
        for local in 0..npc {
            emit_collision(&map, cdims.flat(cube, local), &mut emit);
        }
        for local in 0..npc {
            let node = cdims.flat(cube, local);
            let (x, y, z) = cdims.join(cube, local);
            emit_stream(&map, dims, &node_of, x, y, z, node, &mut emit);
        }
    }
    // Loop 3: update per cube.
    for &cube in cubes {
        for local in 0..npc {
            emit_update(&map, cdims.flat(cube, local), &mut emit);
        }
    }
    // Loop 5: copy per cube.
    for &cube in cubes {
        for local in 0..npc {
            emit_copy(&map, cdims.flat(cube, local), &mut emit);
        }
    }
}

/// Result of replaying a trace through the hierarchy.
#[derive(Clone, Copy, Debug)]
pub struct MissReport {
    pub accesses: u64,
    pub l1_miss_percent: f64,
    pub l2_miss_percent: f64,
    /// Absolute L1 miss count (= L2 demand accesses).
    pub l1_misses: u64,
    /// Absolute L2 demand miss count — the DRAM-traffic quantity the
    /// paper's memory-bandwidth argument is about (each is a 64-byte line
    /// fetch on the memory bus).
    pub l2_misses: u64,
}

impl MissReport {
    /// Rescales the L1 miss rate by a dynamic-access multiplier.
    ///
    /// The trace generator emits each scalar access once, whereas a
    /// hardware counter (the paper used PAPI) counts every dynamic load and
    /// store the compiled code issues — temporaries, spills, address
    /// arithmetic — which all hit L1. Those extra accesses dilute the L1
    /// miss *rate* without changing the number of L1 misses, so L2 traffic
    /// and the L2 miss rate are unaffected. The Table II harness calibrates
    /// `r` so the single-core L1 rate matches the paper's 1.75%.
    pub fn with_access_multiplier(self, r: f64) -> MissReport {
        assert!(r >= 1.0);
        MissReport {
            accesses: (self.accesses as f64 * r) as u64,
            l1_miss_percent: self.l1_miss_percent / r,
            ..self
        }
    }
}

/// Replays `steps` flat-layout time steps (one thread's slab) through a
/// fresh `thog` hierarchy and reports miss rates. `l2_sharers` models how
/// many active cores share the L2 (1 on a single-core run, 2 otherwise).
pub fn simulate_flat(
    dims: Dims,
    x_range: std::ops::Range<usize>,
    l2_sharers: usize,
    steps: usize,
) -> MissReport {
    let mut h = Hierarchy::thog(l2_sharers);
    for _ in 0..steps {
        flat_step_trace(dims, x_range.clone(), |a| h.access(a));
    }
    MissReport {
        accesses: h.l1.accesses(),
        l1_miss_percent: h.l1_miss_percent(),
        l2_miss_percent: h.l2_miss_percent(),
        l1_misses: h.l1.misses,
        l2_misses: h.l2.misses,
    }
}

/// Replays `steps` fused-plan flat-layout time steps through a fresh
/// `thog` hierarchy and reports miss rates — the counterpart of
/// [`simulate_flat`] for the fused collide–stream sweep.
pub fn simulate_flat_fused(
    dims: Dims,
    x_range: std::ops::Range<usize>,
    l2_sharers: usize,
    steps: usize,
) -> MissReport {
    let mut h = Hierarchy::thog(l2_sharers);
    for _ in 0..steps {
        flat_fused_step_trace(dims, x_range.clone(), |a| h.access(a));
    }
    MissReport {
        accesses: h.l1.accesses(),
        l1_miss_percent: h.l1_miss_percent(),
        l2_miss_percent: h.l2_miss_percent(),
        l1_misses: h.l1.misses,
        l2_misses: h.l2.misses,
    }
}

/// Replays `steps` cube-layout time steps (one thread's cube set) through a
/// fresh `thog` hierarchy and reports miss rates.
pub fn simulate_cube(
    cdims: CubeDims,
    cubes: &[usize],
    l2_sharers: usize,
    steps: usize,
) -> MissReport {
    let mut h = Hierarchy::thog(l2_sharers);
    for _ in 0..steps {
        cube_step_trace(cdims, cubes, |a| h.access(a));
    }
    MissReport {
        accesses: h.l1.accesses(),
        l1_miss_percent: h.l1_miss_percent(),
        l2_miss_percent: h.l2_miss_percent(),
        l1_misses: h.l1.misses,
        l2_misses: h.l2.misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_map_arrays_are_disjoint() {
        let n = 100;
        let m = MemoryMap::new(n);
        // Last byte of f < first of f_new, etc.
        assert!(m.f(n - 1, Q - 1) + 8 <= m.f_new(0, 0));
        assert!(m.f_new(n - 1, Q - 1) + 8 <= m.rho(0));
        assert!(m.rho(n - 1) + 8 <= m.u(0, 0));
        assert!(m.u(2, n - 1) + 8 <= m.ueq(0, 0));
        assert!(m.ueq(2, n - 1) + 8 <= m.force(0, 0));
    }

    #[test]
    fn access_counts_match_kernel_model() {
        let dims = Dims::new(8, 8, 8);
        let mut count = 0u64;
        flat_step_trace(dims, 0..8, |_| count += 1);
        // Per node: collision 4+38, stream 38, update 29, copy 38 = 147.
        assert_eq!(count, 147 * 512);
    }

    #[test]
    fn fused_trace_drops_the_writeback_and_reread() {
        let dims = Dims::new(8, 8, 8);
        let mut count = 0u64;
        flat_fused_step_trace(dims, 0..8, |_| count += 1);
        // Per node: fused 4+19+19, update 29, copy 38 = 109 — the split
        // schedule's 147 minus the 19 f write-backs and 19 f re-reads.
        assert_eq!(count, 109 * 512);
    }

    #[test]
    fn fused_trace_reduces_distribution_array_traffic() {
        let dims = Dims::new(16, 16, 16);
        let split = simulate_flat(dims, 0..16, 1, 2);
        let fused = simulate_flat_fused(dims, 0..16, 1, 2);
        assert!(fused.accesses < split.accesses);
        assert!(
            fused.l1_misses <= split.l1_misses,
            "fused must not add misses: {} vs {}",
            fused.l1_misses,
            split.l1_misses
        );
    }

    #[test]
    fn cube_trace_touches_same_multiset_of_kernel_work() {
        // Same access count as flat for the same node set.
        let dims = Dims::new(8, 8, 8);
        let cdims = CubeDims::new(dims, 4);
        let mut flat_count = 0u64;
        flat_step_trace(dims, 0..8, |_| flat_count += 1);
        let cubes: Vec<usize> = (0..cdims.num_cubes()).collect();
        let mut cube_count = 0u64;
        cube_step_trace(cdims, &cubes, |_| cube_count += 1);
        assert_eq!(flat_count, cube_count);
    }

    #[test]
    fn cube_layout_beats_flat_at_l1() {
        // Cube-blocked storage keeps the streaming writes inside small
        // contiguous blocks, reusing L1 lines the flat layout scatters.
        let dims = Dims::new(16, 16, 16);
        let r = simulate_flat(dims, 0..16, 1, 2);
        let cdims = CubeDims::new(dims, 4);
        let cubes: Vec<usize> = (0..cdims.num_cubes()).collect();
        let rc = simulate_cube(cdims, &cubes, 1, 2);
        assert!(
            rc.l1_miss_percent < r.l1_miss_percent,
            "cube {} vs flat {}",
            rc.l1_miss_percent,
            r.l1_miss_percent
        );
        assert!(r.l1_miss_percent < 35.0, "flat L1 {}", r.l1_miss_percent);
    }

    #[test]
    fn access_multiplier_calibrates_l1_only() {
        let dims = Dims::new(16, 16, 16);
        let r = simulate_flat(dims, 0..16, 1, 2);
        let c = r.with_access_multiplier(14.0);
        assert!((c.l1_miss_percent - r.l1_miss_percent / 14.0).abs() < 1e-12);
        assert_eq!(c.l2_miss_percent, r.l2_miss_percent);
        // In the paper's regime the calibrated L1 rate lands near 1.75%.
        assert!(c.l1_miss_percent < 3.0, "{}", c.l1_miss_percent);
        assert!(c.l1_miss_percent > 0.5, "{}", c.l1_miss_percent);
    }

    #[test]
    fn cube_layout_has_no_worse_l2_miss_rate_at_scale() {
        // A slab too big for L2: the flat version reloads it per kernel
        // pass; the cube version reuses each cube within loop 2.
        let dims = Dims::new(32, 48, 48); // ~21 MB of fluid state
        let r_flat = simulate_flat(dims, 0..32, 2, 2);
        let cdims = CubeDims::new(dims, 4);
        let cubes: Vec<usize> = (0..cdims.num_cubes()).collect();
        let r_cube = simulate_cube(cdims, &cubes, 2, 2);
        assert!(
            r_cube.l2_miss_percent <= r_flat.l2_miss_percent + 1.0,
            "cube {} vs flat {}",
            r_cube.l2_miss_percent,
            r_flat.l2_miss_percent
        );
    }

    #[test]
    fn sharing_l2_does_not_reduce_miss_rate() {
        let dims = Dims::new(16, 32, 32);
        let full = simulate_flat(dims, 0..16, 1, 2);
        let shared = simulate_flat(dims, 0..16, 2, 2);
        assert!(
            shared.l2_miss_percent >= full.l2_miss_percent - 0.5,
            "shared {} vs full {}",
            shared.l2_miss_percent,
            full.l2_miss_percent
        );
    }
}
